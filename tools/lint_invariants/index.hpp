#pragma once
// Semantic index over the bitio sources — the shared substrate of the
// bitio-analyzer rules (tools/lint_invariants).
//
// PR 4's linter proved that in-tree textual analysis catches real drift,
// but each rule re-read and re-stripped the files it cared about and none
// could answer questions that need *structure*: "which mutexes does this
// class own", "what does this function's body call", "who includes whom".
// The index computes that structure once per run:
//
//   * a comment-stripped, line-preserving copy of every file (legacy rules
//     keep their regex logic on top of it), plus a string-blanked variant;
//   * a token stream per file (raw strings, char/string literals and
//     multi-char operators tokenized correctly — the places where naive
//     regexes lie);
//   * a per-file symbol table: classes with their base classes, data
//     members (name + textual type) and method declarations including
//     thread-safety annotations (REQUIRES/ACQUIRE/EXCLUDES/...), and
//     namespace-scope function definitions with token ranges for their
//     bodies;
//   * the include graph (every #include directive, conditional or not).
//
// The parser is deliberately heuristic — it is not a C++ front end — but
// it is exact for the idioms this codebase uses (and the analyzer's own
// fixture tests pin the tricky cases: raw strings, nested templates in
// signatures, constructor init lists, attribute macros on classes).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bitio::lint {

inline constexpr std::size_t kNoTok = static_cast<std::size_t>(-1);

struct Token {
  enum class Kind : std::uint8_t { ident, number, str, chr, punct };
  Kind kind = Kind::punct;
  std::string text;        // identifiers verbatim; literals include quotes
  std::size_t offset = 0;  // byte offset into FileInfo::raw
  std::size_t line = 0;    // 1-based
};

/// A data member of a class (or struct): `util::Mutex mutex_;`,
/// `std::unique_ptr<bp::Engine> writer_;`, ...
struct MemberVar {
  std::string name;
  std::string type;         // normalized: tokens joined by single spaces
  std::string annotations;  // GUARDED_BY(...) / ACQUIRED_BEFORE(...) text
  std::size_t line = 0;
};

/// A function: method declaration inside a class body (possibly with an
/// inline definition) or a namespace-scope definition (free function or
/// out-of-line `Class::method`).
struct FunctionSym {
  std::string name;         // unqualified ("end_step", "~Writer")
  std::string qualifier;    // "Writer" for `Writer::end_step` definitions
  std::string class_name;   // owning class (qualified) for in-class decls
  std::string return_type;  // textual, best effort
  std::string params;       // parameter list text (without outer parens)
  std::string annotations;  // REQUIRES(...) EXCLUDES(...) ... trailing text
  std::size_t line = 0;
  std::size_t body_begin = kNoTok;  // token index of '{'
  std::size_t body_end = kNoTok;    // token index of matching '}'
  bool has_body() const { return body_begin != kNoTok; }
};

struct ClassSym {
  std::string name;  // namespace/outer-class qualified, e.g. "bp::Writer"
  std::vector<std::string> bases;  // as written ("core::DiagnosticsSink")
  std::vector<MemberVar> members;
  std::vector<FunctionSym> methods;
  std::size_t line = 0;
};

struct IncludeDirective {
  std::string target;  // as written: "bp/engine.hpp" or "vector"
  bool angled = false;
  std::size_t line = 0;
};

struct FileInfo {
  std::string rel;    // forward-slash path relative to the index root
  std::string raw;    // original bytes
  std::string code;   // comments blanked, line structure preserved
  std::string nostr;  // code with string/char literal contents blanked too
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<ClassSym> classes;     // in declaration order, nested included
  std::vector<FunctionSym> functions;  // namespace-scope definitions

  /// Token index of the '}' matching the '{' at `open` (kNoTok if
  /// unbalanced).  Strings/chars are single tokens, so literal braces
  /// cannot desynchronize the match.
  std::size_t match_brace(std::size_t open) const;
};

class SemanticIndex {
public:
  /// Index every C++ source under `<root>/<subdir>` for each listed
  /// subdir that exists.  `root` itself is remembered so rules can find
  /// committed companion files (e.g. the wire-format fingerprint golden).
  static SemanticIndex build(
      const std::string& root,
      const std::vector<std::string>& subdirs = {"src", "bench", "examples"});

  const std::string& root() const { return root_; }
  const std::vector<FileInfo>& files() const { return files_; }

  /// Lookup by exact relative path; nullptr when absent.
  const FileInfo* file(const std::string& rel) const;

  /// Resolve a class by qualified-name suffix: "Writer" and "bp::Writer"
  /// both find "bp::Writer" (nullptr when absent or ambiguous).
  const ClassSym* find_class(const std::string& name) const;

  /// All indexed classes (spanning files), in index order.
  std::vector<const ClassSym*> classes() const;

  /// Definitions (bodies) of `Class::method`: the inline in-class body
  /// and/or out-of-line definitions whose qualifier matches the class
  /// name's last component.  Each result pairs the function with its file.
  struct FnRef {
    const FileInfo* file = nullptr;
    const FunctionSym* fn = nullptr;
  };
  std::vector<FnRef> method_definitions(const ClassSym& cls,
                                        const std::string& method) const;

  /// The in-class *declaration* of a method (where annotations live);
  /// nullptr when the class does not declare it.
  const FunctionSym* method_declaration(const ClassSym& cls,
                                        const std::string& method) const;

private:
  std::string root_;
  std::vector<FileInfo> files_;
};

// --- building blocks, exposed for the analyzer's own unit tests ------------

/// Tokenize one file's text: comments skipped, preprocessor lines skipped
/// (but see scan_includes), string/char/raw-string literals kept as single
/// tokens, `::` and `->` fused.
std::vector<Token> tokenize(const std::string& text);

/// Every #include directive in the text, conditional blocks included (the
/// index does not evaluate the preprocessor — an include behind #if is
/// still an edge a human must reason about).
std::vector<IncludeDirective> scan_includes(const std::string& text);

/// Populate classes/functions of `info` from its token stream.
void parse_symbols(FileInfo& info);

}  // namespace bitio::lint
