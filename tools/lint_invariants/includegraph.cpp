// include-graph — layering checks over the project include graph.
//
// Two invariants: (1) no #include cycles among the files under src/ — a
// cycle means the headers only build by include-guard accident and the
// layering story is broken; (2) the bp writer internals (writer.hpp,
// stream.hpp, format.hpp) are private to src/bp — every other subsystem
// goes through the engine seam (bp/engine.hpp factory, bp/types.hpp,
// bp/reader.hpp, bp/query.hpp), which is what keeps engines pluggable.

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis_util.hpp"
#include "index.hpp"
#include "lint.hpp"

namespace bitio::lint {

namespace {

const char* const kRule = "include-graph";

/// bp headers other subsystems may include.
bool is_bp_seam(const std::string& target) {
  return target == "bp/engine.hpp" || target == "bp/types.hpp" ||
         target == "bp/reader.hpp" || target == "bp/query.hpp";
}

bool is_bp_internal(const std::string& target) {
  return target.rfind("bp/", 0) == 0 && !is_bp_seam(target);
}

}  // namespace

std::vector<Diagnostic> check_include_graph(const SemanticIndex& index) {
  std::vector<Diagnostic> out;

  // Project-file edges: includes are written relative to src/.
  struct EdgeTo {
    std::string to;
    std::size_t line;
  };
  std::map<std::string, std::vector<EdgeTo>> graph;
  std::set<std::string> nodes;
  for (const auto& f : index.files()) {
    if (f.rel.rfind("src/", 0) != 0) continue;
    nodes.insert(f.rel);
    for (const auto& inc : f.includes) {
      if (inc.angled) continue;
      const std::string resolved = "src/" + inc.target;
      if (index.file(resolved))
        graph[f.rel].push_back({resolved, inc.line});
    }
  }

  // Cycle detection (DFS, three colors); one diagnostic per cycle, at the
  // include that closes it.
  std::map<std::string, int> color;
  std::vector<std::string> stack;
  std::set<std::string> reported;
  std::function<void(const std::string&)> visit = [&](const std::string& n) {
    color[n] = 1;
    stack.push_back(n);
    for (const auto& e : graph[n]) {
      if (color[e.to] == 1) {
        auto at = std::find(stack.begin(), stack.end(), e.to);
        std::vector<std::string> cycle(at, stack.end());
        std::vector<std::string> sorted = cycle;
        std::sort(sorted.begin(), sorted.end());
        std::string key;
        for (const auto& c : sorted) key += c + "|";
        if (reported.insert(key).second) {
          std::string path;
          for (const auto& c : cycle) path += c + " -> ";
          path += e.to;
          out.push_back({n, e.line, kRule, "include cycle: " + path});
        }
      } else if (color[e.to] == 0) {
        visit(e.to);
      }
    }
    stack.pop_back();
    color[n] = 2;
  };
  for (const auto& n : nodes)
    if (color[n] == 0) visit(n);

  // Writer-internal seam: outside src/bp, only the seam headers.
  for (const auto& f : index.files()) {
    if (f.rel.rfind("src/", 0) != 0 || f.rel.rfind("src/bp/", 0) == 0)
      continue;
    for (const auto& inc : f.includes) {
      if (inc.angled || !is_bp_internal(inc.target)) continue;
      out.push_back(
          {f.rel, inc.line, kRule,
           "#include \"" + inc.target +
               "\" reaches into the bp writer internals from outside "
               "src/bp — use the engine seam (bp/engine.hpp, bp/types.hpp, "
               "bp/reader.hpp, bp/query.hpp) instead"});
    }
  }

  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.file != b.file ? a.file < b.file : a.line < b.line;
  });
  return out;
}

std::vector<Diagnostic> check_include_graph(const std::string& root) {
  return check_include_graph(SemanticIndex::build(root));
}

}  // namespace bitio::lint
