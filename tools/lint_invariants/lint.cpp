#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <regex>
#include <sstream>

#include "analysis_util.hpp"
#include "index.hpp"

namespace bitio::lint {

namespace {

struct SourceFile {
  std::string rel;   // path relative to the index root
  std::string text;  // comment-stripped contents (FileInfo::code)
};

/// Load one file from the index; missing files yield an empty text (the
/// rules report that as a diagnostic so a renamed file cannot silently
/// disable its checks).
SourceFile load(const SemanticIndex& index, const std::string& rel) {
  const FileInfo* f = index.file(rel);
  return {rel, f && !f->raw.empty() ? f->code : std::string()};
}

void require_loaded(const SourceFile& file, const char* rule,
                    std::vector<Diagnostic>& out) {
  if (file.text.empty())
    out.push_back({file.rel, 1, rule,
                   "expected source file is missing or empty; the " +
                       std::string(rule) + " invariant cannot be checked"});
}

/// Quoted strings captured by `pattern`'s first group inside `body`.
std::vector<std::string> captures(const std::string& body,
                                  const std::regex& pattern) {
  std::vector<std::string> out;
  for (auto it = std::sregex_iterator(body.begin(), body.end(), pattern);
       it != std::sregex_iterator(); ++it)
    out.push_back((*it)[1].str());
  return out;
}

}  // namespace

std::string format_diagnostic(const Diagnostic& diag) {
  return diag.file + ":" + std::to_string(diag.line) + ": [" + diag.rule +
         "] " + diag.message;
}

std::string strip_comments(const std::string& text) {
  std::string out = text;
  enum class State { code, string, chr, line_comment, block_comment };
  State state = State::code;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::code:
        if (c == '/' && next == '/') {
          state = State::line_comment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::block_comment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::string;
        } else if (c == '\'') {
          state = State::chr;
        }
        break;
      case State::string:
        if (c == '\\')
          ++i;
        else if (c == '"')
          state = State::code;
        break;
      case State::chr:
        if (c == '\\')
          ++i;
        else if (c == '\'')
          state = State::code;
        break;
      case State::line_comment:
        if (c == '\n')
          state = State::code;
        else
          out[i] = ' ';
        break;
      case State::block_comment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::string strip_string_literals(const std::string& text) {
  std::string out = text;
  enum class State { code, string, chr };
  State state = State::code;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    switch (state) {
      case State::code:
        if (c == '"')
          state = State::string;
        else if (c == '\'')
          state = State::chr;
        break;
      case State::string:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size() && out[i + 1] != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::chr:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size() && out[i + 1] != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + std::size_t(std::count(text.begin(),
                                    text.begin() +
                                        std::ptrdiff_t(std::min(
                                            pos, text.size())),
                                    '\n'));
}

std::string body_after(const std::string& text, const std::string& anchor,
                       std::size_t* line, std::size_t from) {
  const std::size_t at = text.find(anchor, from);
  if (at == std::string::npos) return {};
  if (line) *line = line_of(text, at);
  const std::size_t open = text.find('{', at + anchor.size());
  if (open == std::string::npos) return {};
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0)
      return text.substr(open + 1, i - open - 1);
  }
  return {};
}

// --- raw-io ----------------------------------------------------------------

std::vector<Diagnostic> check_raw_io(const SemanticIndex& index) {
  std::vector<Diagnostic> out;
  // Tokens that reach the real file system behind fsim's back.  fprintf is
  // allowed only with stderr (console logging); everything else must go
  // through fsim::FsClient so the trace and Darshan capture see it.
  static const std::regex banned(
      R"((\bfopen\s*\()|(\bfwrite\s*\()|(\bfread\s*\()|(\bfscanf\s*\()|(\bfputs\s*\()|(\bstd::ofstream\b)|(\bstd::ifstream\b)|(\bstd::fstream\b)|(\bstd::filesystem\b)|(\bfprintf\s*\(\s*(?!stderr\b)))");
  bool any_src = false;
  for (const auto& f : index.files()) {
    const bool in_src = f.rel.rfind("src/", 0) == 0;
    any_src |= in_src;
    if (!in_src && f.rel.rfind("bench/", 0) != 0 &&
        f.rel.rfind("examples/", 0) != 0)
      continue;
    // fsim is the one layer allowed to model/own file access.
    if (f.rel.rfind("src/fsim/", 0) == 0) continue;
    for (auto it = std::sregex_iterator(f.nostr.begin(), f.nostr.end(),
                                        banned);
         it != std::sregex_iterator(); ++it) {
      const std::size_t line = line_of(f.nostr, std::size_t(it->position()));
      // Host-side probes genuinely outside the simulated storage path may
      // opt out on the line itself.
      if (line_has_marker(f, line, "lint: allow-raw-io")) continue;
      out.push_back(
          {f.rel, line, "raw-io",
           "raw file I/O ('" + it->str() +
               "...') outside src/fsim — route it through fsim::FsClient "
               "so the trace, replay, and Darshan capture observe it, or "
               "annotate '// lint: allow-raw-io' for host-side probes"});
    }
  }
  if (!any_src)
    out.push_back({"src", 1, "raw-io", "no src/ directory under lint root"});
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.file != b.file ? a.file < b.file : a.line < b.line;
  });
  return out;
}

std::vector<Diagnostic> check_raw_io(const std::string& root) {
  return check_raw_io(SemanticIndex::build(root));
}

// --- config-registry -------------------------------------------------------

namespace {

struct ConfigKey {
  std::string key;
  std::string field;
  bool validated = false;
  std::size_t line = 0;  // of the registry row in io_config.hpp
};

std::vector<ConfigKey> parse_config_registry(const std::string& header) {
  std::vector<ConfigKey> rows;
  std::size_t table_line = 0;
  const std::string table =
      body_after(header, "kBit1IoConfigKeys[]", &table_line);
  static const std::regex row(
      R"re(\{\s*"([^"]+)"\s*,\s*"([^"]+)"\s*,\s*(true|false)\s*\})re");
  for (auto it = std::sregex_iterator(table.begin(), table.end(), row);
       it != std::sregex_iterator(); ++it) {
    ConfigKey k;
    k.key = (*it)[1].str();
    k.field = (*it)[2].str();
    k.validated = (*it)[3].str() == "true";
    // Line within the full header: table offset + offset inside the body.
    const std::size_t at = header.find(table);
    k.line = at == std::string::npos
                 ? table_line
                 : line_of(header, at + std::size_t(it->position()));
    rows.push_back(std::move(k));
  }
  return rows;
}

/// Last component of a dotted field path ("striping.stripe_count" ->
/// "stripe_count"): the token validate()/the struct body actually spells.
std::string field_token(const std::string& field) {
  const std::size_t dot = field.rfind('.');
  return dot == std::string::npos ? field : field.substr(dot + 1);
}

bool contains_token(const std::string& body, const std::string& token) {
  const auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  for (std::size_t at = body.find(token); at != std::string::npos;
       at = body.find(token, at + 1)) {
    const bool left_ok = at == 0 || !is_ident(body[at - 1]);
    const std::size_t end = at + token.size();
    const bool right_ok = end >= body.size() || !is_ident(body[end]);
    if (left_ok && right_ok) return true;
  }
  return false;
}

}  // namespace

std::vector<Diagnostic> check_config_registry(const SemanticIndex& index) {
  std::vector<Diagnostic> out;
  const SourceFile header = load(index, "src/core/io_config.hpp");
  const SourceFile impl = load(index, "src/core/io_config.cpp");
  require_loaded(header, "config-registry", out);
  require_loaded(impl, "config-registry", out);
  if (!out.empty()) return out;

  const std::string& header_code = header.text;
  const std::string& impl_code = impl.text;
  const auto rows = parse_config_registry(header_code);
  if (rows.empty()) {
    out.push_back({header.rel, 1, "config-registry",
                   "kBit1IoConfigKeys registry not found or empty"});
    return out;
  }

  std::size_t struct_line = 0, from_line = 0, to_line = 0, validate_line = 0;
  const std::string struct_body =
      body_after(header_code, "struct Bit1IoConfig", &struct_line);
  const std::string from_body =
      body_after(impl_code, "Bit1IoConfig::from_toml", &from_line);
  const std::string to_body =
      body_after(impl_code, "Bit1IoConfig::to_toml", &to_line);
  const std::string validate_body =
      body_after(impl_code, "Bit1IoConfig::validate", &validate_line);
  if (struct_body.empty())
    out.push_back({header.rel, 1, "config-registry",
                   "struct Bit1IoConfig definition not found"});
  for (const auto& [anchor, body, line] :
       {std::tuple{"from_toml", &from_body, from_line},
        std::tuple{"to_toml", &to_body, to_line},
        std::tuple{"validate", &validate_body, validate_line}}) {
    if (body->empty())
      out.push_back({impl.rel, std::max<std::size_t>(line, 1),
                     "config-registry",
                     std::string("Bit1IoConfig::") + anchor +
                         " definition not found"});
  }
  if (!out.empty()) return out;

  for (const auto& row : rows) {
    const std::string token = field_token(row.field);
    if (!contains_token(struct_body, token))
      out.push_back({header.rel, row.line, "config-registry",
                     "registry field '" + row.field +
                         "' is not a Bit1IoConfig member"});
    if (from_body.find('"' + row.key + '"') == std::string::npos)
      out.push_back({impl.rel, from_line, "config-registry",
                     "key '" + row.key +
                         "' from the registry is never parsed in from_toml"});
    if (to_body.find(row.key) == std::string::npos)
      out.push_back({impl.rel, to_line, "config-registry",
                     "key '" + row.key +
                         "' from the registry is never rendered in to_toml"});
    if (row.validated && !contains_token(validate_body, token))
      out.push_back(
          {impl.rel, validate_line, "config-registry",
           "field '" + row.field +
               "' is flagged validated but validate() never checks it"});
  }

  // Reverse direction: a key from_toml reads must be in the registry.
  static const std::regex parsed_key(
      R"(\b(?:io|striping)\s*\.\s*(?:get_or|contains|at)\s*\(\s*"([^"]+)\")");
  for (const auto& key : captures(from_body, parsed_key)) {
    const bool known =
        std::any_of(rows.begin(), rows.end(),
                    [&](const ConfigKey& row) { return row.key == key; });
    if (!known)
      out.push_back({impl.rel, from_line, "config-registry",
                     "from_toml parses key '" + key +
                         "' that is missing from kBit1IoConfigKeys"});
  }
  return out;
}

std::vector<Diagnostic> check_config_registry(const std::string& root) {
  return check_config_registry(SemanticIndex::build(root));
}

// --- darshan-counters ------------------------------------------------------

std::vector<Diagnostic> check_darshan_counters(const SemanticIndex& index) {
  std::vector<Diagnostic> out;
  const SourceFile header = load(index, "src/darshan/darshan.hpp");
  const SourceFile impl = load(index, "src/darshan/darshan.cpp");
  require_loaded(header, "darshan-counters", out);
  require_loaded(impl, "darshan-counters", out);
  if (!out.empty()) return out;

  const std::string& header_code = header.text;
  const std::string& impl_code = impl.text;

  std::size_t table_line = 0;
  const std::string table =
      body_after(header_code, "kFileRecordCounters[]", &table_line);
  static const std::regex quoted(R"re("([^"]+)")re");
  const std::vector<std::string> counters = captures(table, quoted);
  if (counters.empty()) {
    out.push_back({header.rel, 1, "darshan-counters",
                   "kFileRecordCounters table not found or empty"});
    return out;
  }

  std::size_t struct_line = 0, ser_line = 0, parse_line = 0, cap_line = 0;
  const std::string record_body =
      body_after(header_code, "struct FileRecord", &struct_line);
  const std::string ser_body =
      body_after(impl_code, "DarshanLog::serialize", &ser_line);
  const std::string parse_body =
      body_after(impl_code, "DarshanLog::parse", &parse_line);
  const std::string cap_body = body_after(impl_code, "capture(", &cap_line);
  if (record_body.empty()) {
    out.push_back({header.rel, 1, "darshan-counters",
                   "struct FileRecord definition not found"});
    return out;
  }
  if (ser_body.empty() || parse_body.empty()) {
    out.push_back({impl.rel, 1, "darshan-counters",
                   "DarshanLog::serialize/parse definitions not found"});
    return out;
  }
  if (cap_body.empty()) {
    out.push_back({impl.rel, 1, "darshan-counters",
                   "darshan::capture definition not found"});
    return out;
  }

  for (const auto& counter : counters) {
    const std::size_t at = table.find('"' + counter + '"');
    const std::size_t row_line =
        at == std::string::npos
            ? table_line
            : line_of(header_code, header_code.find(table) + at);
    if (!contains_token(record_body, counter))
      out.push_back({header.rel, row_line, "darshan-counters",
                     "counter '" + counter +
                         "' is declared in kFileRecordCounters but is not "
                         "a FileRecord member"});
    for (const auto& [what, body, line] :
         {std::tuple{"serialize()", &ser_body, ser_line},
          std::tuple{"parse()", &parse_body, parse_line}}) {
      if (!contains_token(*body, counter))
        out.push_back({impl.rel, line, "darshan-counters",
                       "counter '" + counter + "' is never referenced by " +
                           std::string(what) +
                           " — it would be dropped from the log format"});
    }
    // capture() is where trace ops become counters: a counter the capture
    // body never touches stays zero in every live log even though it
    // serializes and parses fine.
    if (!contains_token(cap_body, counter))
      out.push_back({impl.rel, cap_line, "darshan-counters",
                     "counter '" + counter +
                         "' is never accumulated by capture() — live logs "
                         "would always report it as zero"});
  }

  // Reverse: every numeric FileRecord member must be declared a counter.
  static const std::regex member(
      R"((?:std::uint64_t|double)\s+([a-zA-Z_]\w*)\s*=)");
  for (const auto& name : captures(record_body, member)) {
    const bool known =
        std::find(counters.begin(), counters.end(), name) != counters.end();
    if (!known)
      out.push_back({header.rel, struct_line, "darshan-counters",
                     "FileRecord member '" + name +
                         "' is missing from kFileRecordCounters"});
  }
  return out;
}

std::vector<Diagnostic> check_darshan_counters(const std::string& root) {
  return check_darshan_counters(SemanticIndex::build(root));
}

// --- traceop-kinds ---------------------------------------------------------

std::vector<Diagnostic> check_traceop_kinds(const SemanticIndex& index) {
  std::vector<Diagnostic> out;
  const SourceFile types = load(index, "src/fsim/types.hpp");
  const SourceFile darshan = load(index, "src/darshan/darshan.cpp");
  require_loaded(types, "traceop-kinds", out);
  require_loaded(darshan, "traceop-kinds", out);
  if (!out.empty()) return out;

  const std::string& types_code = types.text;
  const std::string& darshan_code = darshan.text;

  std::size_t enum_line = 0;
  const std::string enum_body =
      body_after(types_code, "enum class OpKind", &enum_line);
  static const std::regex enumerator(R"(\b([a-z_][a-z0-9_]*)\s*,)");
  const std::vector<std::string> kinds = captures(enum_body, enumerator);
  if (kinds.empty()) {
    out.push_back({types.rel, 1, "traceop-kinds",
                   "enum class OpKind not found or empty"});
    return out;
  }

  const std::string op_name_body = body_after(types_code, "op_name(OpKind");
  const std::string service_body =
      body_after(types_code, "service_class(OpKind");
  // The Darshan capture switch lives inside capture(); take its whole body.
  const std::string capture_body = body_after(darshan_code, "capture(");
  const struct {
    const char* what;
    const std::string* body;
    const SourceFile* in;
  } switches[] = {
      {"op_name()", &op_name_body, &types},
      {"service_class()", &service_body, &types},
      {"the Darshan capture switch", &capture_body, &darshan},
  };
  for (const auto& sw : switches) {
    if (sw.body->empty()) {
      out.push_back({sw.in->rel, 1, "traceop-kinds",
                     std::string(sw.what) + " definition not found"});
      return out;
    }
  }

  for (const auto& kind : kinds) {
    const std::size_t at = enum_body.find(kind);
    const std::size_t kind_line =
        at == std::string::npos
            ? enum_line
            : line_of(types_code, types_code.find(enum_body) + at);
    for (const auto& sw : switches) {
      static const std::string prefix = "case OpKind::";
      bool handled = false;
      for (std::size_t p = sw.body->find(prefix); p != std::string::npos;
           p = sw.body->find(prefix, p + 1)) {
        std::size_t end = p + prefix.size();
        std::size_t stop = end;
        while (stop < sw.body->size() &&
               (std::isalnum(static_cast<unsigned char>((*sw.body)[stop])) ||
                (*sw.body)[stop] == '_'))
          ++stop;
        if (sw.body->compare(end, stop - end, kind) == 0) {
          handled = true;
          break;
        }
      }
      if (!handled)
        out.push_back({sw.in->rel, kind_line, "traceop-kinds",
                       "OpKind::" + kind + " has no case in " + sw.what});
    }
  }
  return out;
}

std::vector<Diagnostic> check_traceop_kinds(const std::string& root) {
  return check_traceop_kinds(SemanticIndex::build(root));
}

// --- engine-registry -------------------------------------------------------

std::vector<Diagnostic> check_engine_registry(const SemanticIndex& index) {
  std::vector<Diagnostic> out;
  const SourceFile header = load(index, "src/core/io_config.hpp");
  const SourceFile config = load(index, "src/core/io_config.cpp");
  const SourceFile engine = load(index, "src/bp/engine.cpp");
  const SourceFile darshan = load(index, "src/darshan/darshan.cpp");
  require_loaded(header, "engine-registry", out);
  require_loaded(config, "engine-registry", out);
  require_loaded(engine, "engine-registry", out);
  require_loaded(darshan, "engine-registry", out);
  if (!out.empty()) return out;

  const std::string& header_code = header.text;
  const std::string& config_code = config.text;
  const std::string& engine_code = engine.text;
  const std::string& darshan_code = darshan.text;

  std::size_t list_line = 0;
  const std::string list =
      body_after(header_code, "kBit1IoEngines[]", &list_line);
  static const std::regex quoted(R"re("([^"]+)")re");
  const std::vector<std::string> names = captures(list, quoted);
  if (names.empty()) {
    out.push_back({header.rel, 1, "engine-registry",
                   "kBit1IoEngines list not found or empty"});
    return out;
  }

  std::size_t factory_line = 0, label_line = 0, tag_line = 0;
  const std::string factory_body =
      body_after(engine_code, "builtin_engines", &factory_line);
  const std::string label_body =
      body_after(config_code, "Bit1IoConfig::label", &label_line);
  const std::string tag_body =
      body_after(darshan_code, "engine_tag", &tag_line);
  const struct {
    const char* what;
    const std::string* body;
    const SourceFile* in;
    std::size_t line;
  } sites[] = {
      {"builtin_engines()", &factory_body, &engine, factory_line},
      {"Bit1IoConfig::label()", &label_body, &config, label_line},
      {"darshan::engine_tag()", &tag_body, &darshan, tag_line},
  };
  for (const auto& site : sites) {
    if (site.body->empty()) {
      out.push_back({site.in->rel, 1, "engine-registry",
                     std::string(site.what) + " definition not found"});
      return out;
    }
  }

  static const std::regex registered(R"re(register_engine\(\s*"([^"]+)")re");
  const std::vector<std::string> factory_names =
      captures(factory_body, registered);
  for (const auto& name : names) {
    const std::string literal = '"' + name + '"';
    if (std::find(factory_names.begin(), factory_names.end(), name) ==
        factory_names.end())
      out.push_back({engine.rel, sites[0].line, "engine-registry",
                     "engine \"" + name +
                         "\" from kBit1IoEngines has no register_engine "
                         "call in builtin_engines() — make_engine(\"" +
                         name + "\", ...) would throw"});
    if (label_body.find(literal) == std::string::npos)
      out.push_back({config.rel, sites[1].line, "engine-registry",
                     "engine \"" + name +
                         "\" from kBit1IoEngines is never spelled by "
                         "Bit1IoConfig::label() — sweep tables would show "
                         "the wrong engine"});
    if (tag_body.find(literal) == std::string::npos)
      out.push_back({darshan.rel, sites[2].line, "engine-registry",
                     "engine \"" + name +
                         "\" from kBit1IoEngines has no tag in "
                         "darshan::engine_tag() — bench JSON would fall "
                         "back to the uppercased raw name"});
  }

  // Reverse direction: a name builtin_engines() registers must be declared
  // in kBit1IoEngines, or the config layer would reject a working engine.
  for (const auto& name : factory_names) {
    const bool known =
        std::find(names.begin(), names.end(), name) != names.end();
    if (!known)
      out.push_back({engine.rel, sites[0].line, "engine-registry",
                     "builtin_engines() registers \"" + name +
                         "\" which is missing from core::kBit1IoEngines — "
                         "Bit1IoConfig::validate() would reject it"});
  }
  return out;
}

std::vector<Diagnostic> check_engine_registry(const std::string& root) {
  return check_engine_registry(SemanticIndex::build(root));
}

// --- topology-registry -----------------------------------------------------

std::vector<Diagnostic> check_topology_registry(const SemanticIndex& index) {
  std::vector<Diagnostic> out;
  const SourceFile header = load(index, "src/core/io_config.hpp");
  const SourceFile writer = load(index, "src/bp/writer.cpp");
  const SourceFile darshan = load(index, "src/darshan/darshan.cpp");
  const SourceFile topo = load(index, "src/topo/topology.cpp");
  require_loaded(header, "topology-registry", out);
  require_loaded(writer, "topology-registry", out);
  require_loaded(darshan, "topology-registry", out);
  require_loaded(topo, "topology-registry", out);
  if (!out.empty()) return out;

  const std::string& header_code = header.text;
  const std::string& writer_code = writer.text;
  const std::string& darshan_code = darshan.text;
  const std::string& topo_code = topo.text;

  static const std::regex quoted(R"re("([^"\\]+)")re");
  std::size_t modes_line = 0, topos_line = 0;
  const std::vector<std::string> modes = captures(
      body_after(header_code, "kBit1IoAggregationModes[]", &modes_line),
      quoted);
  const std::vector<std::string> topologies = captures(
      body_after(header_code, "kBit1IoTopologies[]", &topos_line), quoted);
  if (modes.empty())
    out.push_back({header.rel, 1, "topology-registry",
                   "kBit1IoAggregationModes list not found or empty"});
  if (topologies.empty())
    out.push_back({header.rel, 1, "topology-registry",
                   "kBit1IoTopologies list not found or empty"});
  if (!out.empty()) return out;

  std::size_t tag_line = 0, preset_line = 0;
  const std::string tag_body =
      body_after(darshan_code, "aggregation_tag", &tag_line);
  if (tag_body.empty()) {
    out.push_back({darshan.rel, 1, "topology-registry",
                   "darshan::aggregation_tag() definition not found"});
    return out;
  }
  const std::string preset_body =
      body_after(topo_code, "Cluster::preset", &preset_line);
  if (preset_body.empty()) {
    out.push_back({topo.rel, 1, "topology-registry",
                   "topo::Cluster::preset() definition not found"});
    return out;
  }

  // Every declared aggregation mode must be dispatched by the writer's
  // gather path and tagged for Darshan-side reports.
  for (const auto& mode : modes) {
    const std::string literal = '"' + mode + '"';
    if (writer_code.find(literal) == std::string::npos)
      out.push_back({writer.rel, 1, "topology-registry",
                     "aggregation mode \"" + mode +
                         "\" from kBit1IoAggregationModes is never "
                         "dispatched in src/bp/writer.cpp — the gather "
                         "path would reject or ignore it"});
    if (tag_body.find(literal) == std::string::npos)
      out.push_back({darshan.rel, tag_line, "topology-registry",
                     "aggregation mode \"" + mode +
                         "\" from kBit1IoAggregationModes has no tag in "
                         "darshan::aggregation_tag() — bench JSON would "
                         "fall back to the uppercased raw name"});
  }

  // Every declared topology must have a literal preset branch, and every
  // preset branch must be declared (or the config layer would reject a
  // working preset).
  static const std::regex branch(R"re(name\s*==\s*"([^"]+)")re");
  const std::vector<std::string> branches = captures(preset_body, branch);
  for (const auto& name : topologies)
    if (std::find(branches.begin(), branches.end(), name) == branches.end())
      out.push_back({topo.rel, preset_line, "topology-registry",
                     "topology \"" + name +
                         "\" from kBit1IoTopologies has no branch in "
                         "topo::Cluster::preset() — selecting it would "
                         "throw at engine construction"});
  for (const auto& name : branches)
    if (std::find(topologies.begin(), topologies.end(), name) ==
        topologies.end())
      out.push_back({topo.rel, preset_line, "topology-registry",
                     "topo::Cluster::preset() handles \"" + name +
                         "\" which is missing from core::kBit1IoTopologies "
                         "— Bit1IoConfig::validate() would reject it"});

  // Factory-seam audit: outside src/bp nothing references bp::Writer —
  // engines are constructed through bp::make_engine so the registry and
  // the deprecation shim stay the only doors.
  static const std::regex direct(R"re(\bbp::Writer\b)re");
  for (const auto& f : index.files()) {
    if (f.rel.rfind("src/", 0) != 0 || f.rel.rfind("src/bp/", 0) == 0)
      continue;
    for (auto it = std::sregex_iterator(f.nostr.begin(), f.nostr.end(),
                                        direct);
         it != std::sregex_iterator(); ++it)
      out.push_back({f.rel, line_of(f.nostr, std::size_t(it->position())),
                     "topology-registry",
                     "direct bp::Writer reference outside src/bp — construct "
                     "engines through bp::make_engine so the factory "
                     "registry covers every call site"});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.file != b.file ? a.file < b.file : a.line < b.line;
  });
  return out;
}

std::vector<Diagnostic> check_topology_registry(const std::string& root) {
  return check_topology_registry(SemanticIndex::build(root));
}

// --- driver ----------------------------------------------------------------

std::vector<Diagnostic> run_all(const SemanticIndex& index) {
  std::vector<Diagnostic> out;
  using IndexRule = std::vector<Diagnostic> (*)(const SemanticIndex&);
  for (const IndexRule rule :
       {static_cast<IndexRule>(check_raw_io),
        static_cast<IndexRule>(check_config_registry),
        static_cast<IndexRule>(check_darshan_counters),
        static_cast<IndexRule>(check_traceop_kinds),
        static_cast<IndexRule>(check_engine_registry),
        static_cast<IndexRule>(check_topology_registry),
        static_cast<IndexRule>(check_lock_order),
        static_cast<IndexRule>(check_wire_format),
        static_cast<IndexRule>(check_unchecked_status),
        static_cast<IndexRule>(check_pool_pairing),
        static_cast<IndexRule>(check_submit_reap),
        static_cast<IndexRule>(check_include_graph)}) {
    auto found = rule(index);
    out.insert(out.end(), found.begin(), found.end());
  }
  return out;
}

std::vector<Diagnostic> run_all(const std::string& root) {
  return run_all(SemanticIndex::build(root));
}

std::string diagnostics_json(const std::vector<Diagnostic>& diags) {
  const auto escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c & 0xff);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  };
  std::ostringstream out;
  out << "{\"count\": " << diags.size() << ", \"diagnostics\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out << (i ? ",\n  " : "\n  ") << "{\"file\": \"" << escape(d.file)
        << "\", \"line\": " << d.line << ", \"rule\": \"" << escape(d.rule)
        << "\", \"message\": \"" << escape(d.message) << "\"}";
  }
  out << (diags.empty() ? "]}" : "\n]}") << "\n";
  return out.str();
}

}  // namespace bitio::lint
