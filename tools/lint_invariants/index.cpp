#include "index.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint.hpp"  // strip_comments / strip_string_literals

namespace bitio::lint {

namespace fs = std::filesystem;

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool has_cxx_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

// --- tokenizer -------------------------------------------------------------

std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> out;
  std::size_t i = 0, line = 1;
  bool at_line_start = true;
  const std::size_t n = text.size();

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? text[i + k] : '\0';
  };
  auto push = [&](Token::Kind kind, std::size_t begin, std::size_t end,
                  std::size_t tok_line) {
    out.push_back({kind, text.substr(begin, end - begin), begin, tok_line});
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: swallow the logical line (with backslash
    // continuations).  #include targets are recovered by scan_includes.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (text[i] == '\\' && peek(1) == '\n') {
          i += 2;
          ++line;
          continue;
        }
        if (text[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    if (c == '/' && peek(1) == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      continue;
    }
    // Raw string literal: R"delim( ... )delim" — may span lines and hold
    // anything, including quotes and comment markers.
    if (c == 'R' && peek(1) == '"' &&
        (out.empty() || !is_ident_char(text[i - 1]))) {
      const std::size_t begin = i, tok_line = line;
      std::size_t d = i + 2;
      while (d < n && text[d] != '(') ++d;
      const std::string delim = text.substr(i + 2, d - (i + 2));
      const std::string closer = ")" + delim + "\"";
      std::size_t end = text.find(closer, d);
      if (end == std::string::npos) end = n;
      for (std::size_t k = begin; k < std::min(n, end + closer.size()); ++k)
        if (text[k] == '\n') ++line;
      i = std::min(n, end + closer.size());
      push(Token::Kind::str, begin, i, tok_line);
      continue;
    }
    if (c == '"' || c == '\'') {
      const std::size_t begin = i, tok_line = line;
      const char quote = c;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\') ++i;
        if (i < n && text[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 1);
      push(quote == '"' ? Token::Kind::str : Token::Kind::chr, begin, i,
           tok_line);
      continue;
    }
    if (is_ident_start(c)) {
      const std::size_t begin = i;
      while (i < n && is_ident_char(text[i])) ++i;
      push(Token::Kind::ident, begin, i, line);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t begin = i;
      while (i < n && (is_ident_char(text[i]) || text[i] == '.' ||
                       text[i] == '\''))
        ++i;
      push(Token::Kind::number, begin, i, line);
      continue;
    }
    // Punctuation: fuse the two operators the symbol parser needs whole.
    if (c == ':' && peek(1) == ':') {
      push(Token::Kind::punct, i, i + 2, line);
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      push(Token::Kind::punct, i, i + 2, line);
      i += 2;
      continue;
    }
    push(Token::Kind::punct, i, i + 1, line);
    ++i;
  }
  return out;
}

std::vector<IncludeDirective> scan_includes(const std::string& text) {
  std::vector<IncludeDirective> out;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    // Find start of line, skip horizontal whitespace.
    std::size_t j = i;
    while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
    if (j < n && text[j] == '#') {
      ++j;
      while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
      if (text.compare(j, 7, "include") == 0) {
        j += 7;
        while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
        if (j < n && (text[j] == '"' || text[j] == '<')) {
          const bool angled = text[j] == '<';
          const char closer = angled ? '>' : '"';
          const std::size_t begin = j + 1;
          std::size_t end = begin;
          while (end < n && text[end] != closer && text[end] != '\n') ++end;
          if (end < n && text[end] == closer)
            out.push_back({text.substr(begin, end - begin), angled, line});
        }
      }
    }
    // Advance to the next line.
    while (i < n && text[i] != '\n') ++i;
    if (i < n) {
      ++i;
      ++line;
    }
  }
  return out;
}

std::size_t FileInfo::match_brace(std::size_t open) const {
  if (open >= tokens.size() || tokens[open].text != "{") return kNoTok;
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == "{") ++depth;
    if (tokens[i].text == "}" && --depth == 0) return i;
  }
  return kNoTok;
}

// --- symbol parser ---------------------------------------------------------

namespace {

const char* const kAnnotations[] = {
    "CAPABILITY",      "SCOPED_CAPABILITY", "GUARDED_BY",
    "PT_GUARDED_BY",   "ACQUIRED_BEFORE",   "ACQUIRED_AFTER",
    "REQUIRES",        "REQUIRES_SHARED",   "ACQUIRE",
    "ACQUIRE_SHARED",  "RELEASE",           "RELEASE_SHARED",
    "RELEASE_GENERIC", "TRY_ACQUIRE",       "TRY_ACQUIRE_SHARED",
    "EXCLUDES",        "ASSERT_CAPABILITY", "ASSERT_SHARED_CAPABILITY",
    "RETURN_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS",
};

bool is_annotation(const std::string& name) {
  for (const char* a : kAnnotations)
    if (name == a) return true;
  return false;
}

bool is_decl_keyword(const std::string& t) {
  return t == "static" || t == "mutable" || t == "inline" ||
         t == "constexpr" || t == "consteval" || t == "constinit" ||
         t == "explicit" || t == "virtual" || t == "extern" ||
         t == "typename" || t == "friend";
}

/// Heuristic single-pass parser over a file's token stream.
class Parser {
public:
  explicit Parser(FileInfo& info) : info_(info), toks_(info.tokens) {}

  void run() { parse_scope(0, toks_.size(), {}, nullptr); }

private:
  FileInfo& info_;
  const std::vector<Token>& toks_;

  const std::string& txt(std::size_t i) const { return toks_[i].text; }
  bool is(std::size_t i, const char* s) const {
    return i < toks_.size() && toks_[i].text == s;
  }

  /// Skip a balanced (...) / {...} / [...] / <...> group starting at `i`
  /// (which must be the opener); returns index one past the closer.
  std::size_t skip_balanced(std::size_t i, char open, char close,
                            std::size_t end) const {
    int depth = 0;
    const std::string o(1, open), c(1, close);
    for (; i < end; ++i) {
      if (txt(i) == o) ++depth;
      else if (txt(i) == c && --depth == 0) return i + 1;
    }
    return end;
  }

  /// Skip to the ';' terminating the statement at `i`, balancing every
  /// kind of bracket; returns index one past it.
  std::size_t skip_statement(std::size_t i, std::size_t end) const {
    int paren = 0, brace = 0, square = 0;
    for (; i < end; ++i) {
      const std::string& t = txt(i);
      if (t == "(") ++paren;
      else if (t == ")") --paren;
      else if (t == "{") ++brace;
      else if (t == "}") --brace;
      else if (t == "[") ++square;
      else if (t == "]") --square;
      else if (t == ";" && paren <= 0 && brace <= 0 && square <= 0)
        return i + 1;
    }
    return end;
  }

  static std::string join(const std::vector<std::string>& parts,
                          const char* sep) {
    std::string out;
    for (const auto& p : parts) {
      if (!out.empty()) out += sep;
      out += p;
    }
    return out;
  }

  /// Qualify `name` with the namespace/class nesting, dropping the
  /// project-root `bitio` component so ids read "bp::Writer".
  // Space-separate type tokens, but glue `::` so qualified names read as
  // written ("util::Mutex", not "util :: Mutex").
  static void append_type(std::string& out, const std::string& t) {
    if (!out.empty() && t != "::" &&
        !(out.size() >= 2 && out.compare(out.size() - 2, 2, "::") == 0))
      out += ' ';
    out += t;
  }

  static std::string qualify(const std::vector<std::string>& scopes,
                             const std::string& name) {
    std::vector<std::string> parts;
    for (const auto& s : scopes)
      if (!s.empty() && s != "bitio") parts.push_back(s);
    parts.push_back(name);
    return join(parts, "::");
  }

  // Parse declarations between [begin, end) token indices.  `scopes` is
  // the namespace + outer-class nesting; `cls` is the innermost class
  // being populated (nullptr at namespace scope).
  void parse_scope(std::size_t begin, std::size_t end,
                   std::vector<std::string> scopes, ClassSym* cls) {
    std::size_t i = begin;
    while (i < end) {
      const std::string& t = txt(i);
      if (t == "}" || t == ";") {
        ++i;
        continue;
      }
      if (t == "namespace") {
        std::size_t j = i + 1;
        std::vector<std::string> name_parts;
        while (j < end && toks_[j].kind == Token::Kind::ident) {
          name_parts.push_back(txt(j));
          ++j;
          if (is(j, "::")) ++j;
          else break;
        }
        if (is(j, "{")) {
          const std::size_t close = info_.match_brace(j);
          if (close == kNoTok) return;
          auto inner = scopes;
          for (const auto& p : name_parts) inner.push_back(p);
          parse_scope(j + 1, close, inner, nullptr);
          i = close + 1;
        } else {
          i = skip_statement(i, end);  // namespace alias / using
        }
        continue;
      }
      if (t == "template") {
        // Skip the parameter list; the declaration that follows is parsed
        // as usual (templated classes/functions are indexed like plain
        // ones).
        std::size_t j = i + 1;
        if (is(j, "<")) {
          int depth = 0;
          for (; j < end; ++j) {
            if (txt(j) == "<") ++depth;
            else if (txt(j) == ">" && --depth == 0) {
              ++j;
              break;
            }
          }
        }
        i = j;
        continue;
      }
      if (t == "using" || t == "typedef" || t == "friend" ||
          t == "static_assert" || t == "extern") {
        i = skip_statement(i, end);
        continue;
      }
      if (t == "public" || t == "private" || t == "protected") {
        i += is(i + 1, ":") ? 2 : 1;
        continue;
      }
      if (t == "enum") {
        // enum / enum class: skip the whole declaration.
        std::size_t j = i + 1;
        while (j < end && !is(j, "{") && !is(j, ";")) ++j;
        if (is(j, "{")) j = skip_balanced(j, '{', '}', end);
        i = skip_statement(j, end);
        continue;
      }
      if ((t == "class" || t == "struct") &&
          !(i > begin && txt(i - 1) == "enum")) {
        i = parse_class(i, end, scopes);
        continue;
      }
      i = parse_declaration(i, end, scopes, cls);
    }
  }

  std::size_t parse_class(std::size_t i, std::size_t end,
                          const std::vector<std::string>& scopes) {
    std::size_t j = i + 1;
    std::string name;
    // Skip attribute macros (CAPABILITY("mutex")), alignas, [[...]].
    while (j < end) {
      if (toks_[j].kind == Token::Kind::ident) {
        if (is_annotation(txt(j)) || txt(j) == "alignas") {
          if (is(j + 1, "(")) {
            j = skip_balanced(j + 1, '(', ')', end);
            continue;
          }
        }
        if (txt(j) == "final") {
          ++j;
          continue;
        }
        name = txt(j);
        ++j;
        if (is(j, "final")) ++j;
        break;
      }
      if (is(j, "[") && is(j + 1, "[")) {
        j = skip_balanced(j, '[', ']', end);
        continue;
      }
      break;
    }
    if (name.empty()) return skip_statement(i, end);
    if (is(j, ";")) return j + 1;  // forward declaration
    ClassSym sym;
    sym.name = qualify(scopes, name);
    sym.line = toks_[i].line;
    if (is(j, ":")) {
      ++j;
      std::vector<std::string> base;
      int angle = 0;
      while (j < end && !(is(j, "{") && angle == 0)) {
        const std::string& b = txt(j);
        if (b == "<") ++angle;
        else if (b == ">") angle = std::max(0, angle - 1);
        if (b == ",") {
          if (!base.empty()) sym.bases.push_back(join(base, ""));
          base.clear();
        } else if (b != "public" && b != "private" && b != "protected" &&
                   b != "virtual") {
          base.push_back(b);
        }
        ++j;
      }
      if (!base.empty()) sym.bases.push_back(join(base, ""));
    }
    if (!is(j, "{")) return skip_statement(i, end);
    const std::size_t close = info_.match_brace(j);
    if (close == kNoTok) return end;
    auto inner = scopes;
    inner.push_back(name);
    // Parse into the local first: a nested class pushes onto
    // info_.classes mid-parse, and a reallocation there must not
    // invalidate the pointer the body parse writes through.
    parse_scope(j + 1, close, inner, &sym);
    info_.classes.push_back(std::move(sym));
    return skip_statement(close, end);  // past the trailing ';'
  }

  /// Parse one member/function declaration starting at `i`.  Returns the
  /// index one past it.
  std::size_t parse_declaration(std::size_t i, std::size_t end,
                                const std::vector<std::string>& scopes,
                                ClassSym* cls) {
    std::vector<std::string> head;   // type tokens seen so far
    std::string annotations;
    std::string name, qualifier;
    std::size_t name_line = toks_[i].line;
    int angle = 0;
    std::size_t j = i;
    for (; j < end; ++j) {
      const std::string& t = txt(j);
      // Operator declarations mix punctuation into the declarator; the
      // index does not record them — skip past the body or ';'.
      if (t == "operator") return skip_past(j, end);
      if (t == "[" && is(j + 1, "[")) {  // [[nodiscard]] etc.
        j = skip_balanced(j, '[', ']', end) - 1;
        continue;
      }
      if (t == "<") {
        ++angle;
        head.push_back(t);
        continue;
      }
      if (t == ">") {
        angle = std::max(0, angle - 1);
        head.push_back(t);
        continue;
      }
      if (angle > 0) {
        head.push_back(t);
        continue;
      }
      if (t == "(") {
        const std::string prev = j > i ? txt(j - 1) : "";
        if (is_annotation(prev)) {
          const std::size_t after = skip_balanced(j, '(', ')', end);
          for (std::size_t k = j - 1; k < after; ++k)
            annotations += (annotations.empty() ? "" : " ") + txt(k);
          if (!head.empty()) head.pop_back();  // the macro name
          j = after - 1;
          continue;
        }
        // Function declarator: `prev` is the name; a preceding `A ::`
        // chain is the qualifier, a preceding `~` marks a destructor.
        if (prev.empty() || toks_[j - 1].kind != Token::Kind::ident)
          return skip_past(j, end);
        name = prev;
        name_line = toks_[j - 1].line;
        std::size_t q = j - 1;
        if (q > i && txt(q - 1) == "~") {
          name = "~" + name;
          --q;
        }
        std::vector<std::string> quals;
        while (q >= i + 2 && txt(q - 1) == "::" &&
               toks_[q - 2].kind == Token::Kind::ident) {
          quals.insert(quals.begin(), txt(q - 2));
          q -= 2;
        }
        qualifier = join(quals, "::");
        // Head minus name/qualifier tokens is the return type.
        std::string ret;
        for (std::size_t k = i; k < q; ++k) {
          if (toks_[k].kind == Token::Kind::ident &&
              is_decl_keyword(txt(k)))
            continue;
          append_type(ret, txt(k));
        }
        return finish_function(i, j, end, scopes, cls, name, qualifier, ret,
                               name_line, annotations);
      }
      if (t == "=" || t == "{" || t == ";" || t == ":") {
        // Member variable (or a global we do not record).
        if (t == ":" && !is(j + 1, ":")) {
          // Bitfield or stray label; treat like a member terminator.
        }
        if (cls) {
          std::string mname;
          std::size_t k = j;
          while (k > i) {
            --k;
            if (txt(k) == "]") {
              while (k > i && txt(k) != "[") --k;
              continue;
            }
            if (txt(k) == ")") {  // trailing annotation macro args
              int depth = 1;
              while (k > i && depth > 0) {
                --k;
                if (txt(k) == ")") ++depth;
                else if (txt(k) == "(") --depth;
              }
              continue;
            }
            if (toks_[k].kind == Token::Kind::ident) {
              if (is_annotation(txt(k))) continue;
              mname = txt(k);
              break;
            }
          }
          if (!mname.empty() && k > i) {
            MemberVar var;
            var.name = mname;
            var.annotations = annotations;
            var.line = toks_[k].line;
            std::string type;
            for (std::size_t h = i; h < k; ++h) {
              if (toks_[h].kind == Token::Kind::ident &&
                  is_decl_keyword(txt(h)))
                continue;
              append_type(type, txt(h));
            }
            var.type = type;
            if (!type.empty()) cls->members.push_back(std::move(var));
          }
        }
        if (t == ";") return j + 1;
        return skip_statement(j, end);
      }
      head.push_back(t);
    }
    return end;
  }

  /// Skip past a declaration we do not record: to its body's end if it
  /// has one, else past the ';'.
  std::size_t skip_past(std::size_t from, std::size_t end) {
    std::size_t j = from;
    int paren = 0;
    for (; j < end; ++j) {
      if (txt(j) == "(") ++paren;
      else if (txt(j) == ")") --paren;
      else if (txt(j) == ";" && paren == 0) return j + 1;
      else if (txt(j) == "{" && paren == 0) {
        const std::size_t close = info_.match_brace(j);
        return close == kNoTok ? end : close + 1;
      }
    }
    return end;
  }

  std::size_t finish_function(std::size_t stmt_begin, std::size_t lparen,
                              std::size_t end,
                              const std::vector<std::string>& scopes,
                              ClassSym* cls, const std::string& name,
                              const std::string& qualifier,
                              const std::string& ret, std::size_t name_line,
                              std::string annotations) {
    const std::size_t rparen = skip_balanced(lparen, '(', ')', end) - 1;
    FunctionSym fn;
    fn.name = name;
    fn.qualifier = qualifier;
    fn.return_type = ret;
    fn.line = name_line;
    for (std::size_t k = lparen + 1; k < rparen; ++k)
      fn.params += (fn.params.empty() ? "" : " ") + txt(k);
    // Post-parameter tokens: qualifiers, annotations, trailing return,
    // `= default/delete/0`, constructor init list, then body or ';'.
    std::size_t j = rparen + 1;
    bool decl_only = false;
    while (j < end) {
      const std::string& t = txt(j);
      if (t == ";") {
        decl_only = true;
        ++j;
        break;
      }
      if (t == "{") break;
      if (t == "=") {  // = default / = delete / = 0
        j = skip_statement(j, end);
        decl_only = true;
        break;
      }
      if (t == ":") {  // constructor init list
        ++j;
        while (j < end) {
          // member/base name: idents, '::', template args
          while (j < end && (toks_[j].kind == Token::Kind::ident ||
                             is(j, "::")))
            ++j;
          if (is(j, "<")) {
            int depth = 0;
            for (; j < end; ++j) {
              if (is(j, "<")) ++depth;
              else if (is(j, ">") && --depth == 0) {
                ++j;
                break;
              }
            }
          }
          if (is(j, "(")) j = skip_balanced(j, '(', ')', end);
          else if (is(j, "{")) j = skip_balanced(j, '{', '}', end);
          if (is(j, ",")) {
            ++j;
            continue;
          }
          break;  // next '{' is the body
        }
        continue;
      }
      if (toks_[j].kind == Token::Kind::ident && is_annotation(t) &&
          is(j + 1, "(")) {
        const std::size_t after = skip_balanced(j + 1, '(', ')', end);
        for (std::size_t k = j; k < after; ++k)
          annotations += (annotations.empty() ? "" : " ") + txt(k);
        j = after;
        continue;
      }
      if (toks_[j].kind == Token::Kind::ident && is_annotation(t)) {
        annotations += (annotations.empty() ? "" : " ") + t;
        ++j;
        continue;
      }
      if (t == "[" && is(j + 1, "[")) {
        j = skip_balanced(j, '[', ']', end);
        continue;
      }
      if (t == "->") {  // trailing return type
        ++j;
        continue;
      }
      ++j;  // const / noexcept / override / final / & / && / type tokens
    }
    fn.annotations = std::move(annotations);
    std::size_t next = j;
    if (!decl_only && j < end && is(j, "{")) {
      fn.body_begin = j;
      fn.body_end = info_.match_brace(j);
      if (fn.body_end == kNoTok) fn.body_end = end - 1;
      next = fn.body_end + 1;
    }
    (void)stmt_begin;
    if (cls) {
      fn.class_name = cls->name;
      cls->methods.push_back(std::move(fn));
    } else {
      (void)scopes;
      info_.functions.push_back(std::move(fn));
    }
    return next;
  }
};

}  // namespace

void parse_symbols(FileInfo& info) { Parser(info).run(); }

// --- index -----------------------------------------------------------------

SemanticIndex SemanticIndex::build(const std::string& root,
                                   const std::vector<std::string>& subdirs) {
  SemanticIndex index;
  index.root_ = root;
  for (const auto& sub : subdirs) {
    const fs::path dir = fs::path(root) / sub;
    if (!fs::exists(dir)) continue;
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(dir))
      if (entry.is_regular_file() && has_cxx_extension(entry.path()))
        paths.push_back(entry.path());
    std::sort(paths.begin(), paths.end());
    for (const auto& path : paths) {
      FileInfo info;
      info.rel = fs::relative(path, fs::path(root)).generic_string();
      info.raw = read_file(path);
      info.code = strip_comments(info.raw);
      info.nostr = strip_string_literals(info.code);
      info.tokens = tokenize(info.raw);
      info.includes = scan_includes(info.code);
      parse_symbols(info);
      index.files_.push_back(std::move(info));
    }
  }
  return index;
}

const FileInfo* SemanticIndex::file(const std::string& rel) const {
  for (const auto& f : files_)
    if (f.rel == rel) return &f;
  return nullptr;
}

const ClassSym* SemanticIndex::find_class(const std::string& name) const {
  const ClassSym* found = nullptr;
  for (const auto& f : files_) {
    for (const auto& c : f.classes) {
      const bool match =
          c.name == name ||
          (c.name.size() > name.size() + 2 &&
           c.name.compare(c.name.size() - name.size(), name.size(), name) ==
               0 &&
           c.name.compare(c.name.size() - name.size() - 2, 2, "::") == 0);
      if (!match) continue;
      if (found && found->name != c.name) return nullptr;  // ambiguous
      if (!found) found = &c;
    }
  }
  return found;
}

std::vector<const ClassSym*> SemanticIndex::classes() const {
  std::vector<const ClassSym*> out;
  for (const auto& f : files_)
    for (const auto& c : f.classes) out.push_back(&c);
  return out;
}

namespace {

/// Does the qualified class name `cls` end with the (possibly multi
/// component) `qual` on a `::` boundary?
bool qualifier_matches(const std::string& cls, const std::string& qual) {
  if (qual.empty()) return false;
  if (cls == qual) return true;
  return cls.size() > qual.size() + 2 &&
         cls.compare(cls.size() - qual.size(), qual.size(), qual) == 0 &&
         cls.compare(cls.size() - qual.size() - 2, 2, "::") == 0;
}

}  // namespace

std::vector<SemanticIndex::FnRef> SemanticIndex::method_definitions(
    const ClassSym& cls, const std::string& method) const {
  std::vector<FnRef> out;
  for (const auto& f : files_) {
    for (const auto& c : f.classes) {
      if (&c != &cls) continue;
      for (const auto& m : c.methods)
        if (m.name == method && m.has_body()) out.push_back({&f, &m});
    }
    for (const auto& fn : f.functions) {
      if (fn.name != method || !fn.has_body()) continue;
      if (qualifier_matches(cls.name, fn.qualifier)) out.push_back({&f, &fn});
    }
  }
  return out;
}

const FunctionSym* SemanticIndex::method_declaration(
    const ClassSym& cls, const std::string& method) const {
  for (const auto& m : cls.methods)
    if (m.name == method) return &m;
  return nullptr;
}

}  // namespace bitio::lint
