// lint_invariants — the in-tree invariant linter (see lint.hpp).
//
//   lint_invariants [--rule <id>]... [root]
//
// `root` defaults to the current directory and must be a repository
// checkout (the rules look under <root>/src).  With --rule only the named
// rules run (ids: raw-io, config-registry, darshan-counters,
// traceop-kinds, engine-registry, topology-registry).  Exit status: 0 clean, 1 violations
// found, 2 bad usage.

#include <cstdio>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using bitio::lint::Diagnostic;

struct Rule {
  const char* id;
  std::vector<Diagnostic> (*run)(const std::string&);
};

constexpr Rule kRules[] = {
    {"raw-io", bitio::lint::check_raw_io},
    {"config-registry", bitio::lint::check_config_registry},
    {"darshan-counters", bitio::lint::check_darshan_counters},
    {"traceop-kinds", bitio::lint::check_traceop_kinds},
    {"engine-registry", bitio::lint::check_engine_registry},
    {"topology-registry", bitio::lint::check_topology_registry},
};

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> selected;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rule") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lint_invariants: --rule needs an argument\n");
        return 2;
      }
      selected.emplace_back(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: lint_invariants [--rule <id>]... [root]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "lint_invariants: unknown option '%s'\n",
                   arg.c_str());
      return 2;
    } else {
      root = arg;
    }
  }

  std::vector<Diagnostic> diagnostics;
  int rules_run = 0;
  for (const Rule& rule : kRules) {
    if (!selected.empty()) {
      bool wanted = false;
      for (const auto& id : selected) wanted = wanted || id == rule.id;
      if (!wanted) continue;
    }
    ++rules_run;
    auto found = rule.run(root);
    diagnostics.insert(diagnostics.end(), found.begin(), found.end());
  }
  if (rules_run == 0) {
    std::fprintf(stderr, "lint_invariants: no matching rules\n");
    return 2;
  }

  for (const auto& diag : diagnostics)
    std::fprintf(stderr, "%s\n", bitio::lint::format_diagnostic(diag).c_str());
  std::fprintf(stderr, "lint_invariants: %d rule(s), %zu violation(s)\n",
               rules_run, diagnostics.size());
  return diagnostics.empty() ? 0 : 1;
}
