// bitio-analyzer — the in-tree static analysis driver (see lint.hpp).
//
//   bitio-analyzer [options] [root]
//
//   --rule <id>            run only the named rule (repeatable)
//   --json                 analyze-report mode: dump diagnostics as JSON
//                          on stdout instead of human-readable lines
//   --dot <path>           also write the lock-order acquisition graph as
//                          Graphviz DOT to <path> ("-" for stdout)
//   --update-fingerprints  regenerate tools/lint_invariants/
//                          format_fingerprints.txt (refuses when fields
//                          changed without a version bump)
//   --list                 print the rule ids and exit
//
// `root` defaults to the current directory and must be a repository
// checkout (the rules look under <root>/src).  The semantic index is
// built once and shared by every rule.  Exit status: 0 clean, 1
// violations found, 2 bad usage.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "index.hpp"
#include "lint.hpp"

namespace {

using bitio::lint::Diagnostic;
using bitio::lint::SemanticIndex;

struct Rule {
  const char* id;
  std::vector<Diagnostic> (*run)(const SemanticIndex&);
};

constexpr Rule kRules[] = {
    {"raw-io", bitio::lint::check_raw_io},
    {"config-registry", bitio::lint::check_config_registry},
    {"darshan-counters", bitio::lint::check_darshan_counters},
    {"traceop-kinds", bitio::lint::check_traceop_kinds},
    {"engine-registry", bitio::lint::check_engine_registry},
    {"topology-registry", bitio::lint::check_topology_registry},
    {"lock-order", bitio::lint::check_lock_order},
    {"wire-format", bitio::lint::check_wire_format},
    {"unchecked-status", bitio::lint::check_unchecked_status},
    {"pool-pairing", bitio::lint::check_pool_pairing},
    {"submit-reap", bitio::lint::check_submit_reap},
    {"include-graph", bitio::lint::check_include_graph},
};

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: bitio-analyzer [--rule <id>]... [--json] "
               "[--dot <path>] [--update-fingerprints] [--list] [root]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> selected;
  std::string dot_path;
  bool json = false;
  bool update = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rule" || arg == "--dot") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bitio-analyzer: %s needs an argument\n",
                     arg.c_str());
        return 2;
      }
      if (arg == "--rule")
        selected.emplace_back(argv[++i]);
      else
        dot_path = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--update-fingerprints") {
      update = true;
    } else if (arg == "--list") {
      for (const Rule& rule : kRules) std::printf("%s\n", rule.id);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bitio-analyzer: unknown option '%s'\n",
                   arg.c_str());
      usage(stderr);
      return 2;
    } else {
      root = arg;
    }
  }
  for (const auto& id : selected) {
    bool known = false;
    for (const Rule& rule : kRules) known = known || id == rule.id;
    if (!known) {
      std::fprintf(stderr, "bitio-analyzer: unknown rule '%s' (--list)\n",
                   id.c_str());
      return 2;
    }
  }

  const SemanticIndex index = SemanticIndex::build(root);

  std::vector<Diagnostic> diagnostics;
  int rules_run = 0;
  if (update) {
    // Fingerprint regeneration replaces the check run; other selected
    // rules still run so `--update-fingerprints` cannot hide violations.
    auto found = bitio::lint::update_fingerprints(index);
    diagnostics.insert(diagnostics.end(), found.begin(), found.end());
    ++rules_run;
  }
  for (const Rule& rule : kRules) {
    if (update && std::string(rule.id) == "wire-format") continue;
    if (!selected.empty()) {
      bool wanted = false;
      for (const auto& id : selected) wanted = wanted || id == rule.id;
      if (!wanted) continue;
    }
    ++rules_run;
    auto found = rule.run(index);
    diagnostics.insert(diagnostics.end(), found.begin(), found.end());
  }
  if (rules_run == 0) {
    std::fprintf(stderr, "bitio-analyzer: no matching rules\n");
    return 2;
  }

  if (!dot_path.empty()) {
    const std::string dot = bitio::lint::lock_order_dot(index);
    if (dot_path == "-") {
      std::fputs(dot.c_str(), stdout);
    } else {
      std::ofstream out(dot_path, std::ios::binary | std::ios::trunc);
      out << dot;
      if (!out) {
        std::fprintf(stderr, "bitio-analyzer: cannot write '%s'\n",
                     dot_path.c_str());
        return 2;
      }
    }
  }

  if (json) {
    std::fputs(bitio::lint::diagnostics_json(diagnostics).c_str(), stdout);
  } else {
    for (const auto& diag : diagnostics)
      std::fprintf(stderr, "%s\n",
                   bitio::lint::format_diagnostic(diag).c_str());
    std::fprintf(stderr, "bitio-analyzer: %d rule(s), %zu violation(s)\n",
                 rules_run, diagnostics.size());
  }
  return diagnostics.empty() ? 0 : 1;
}
