// unchecked-status + pool-pairing — call-site rules over the index.
//
// unchecked-status: the fsim and bp read APIs report faults through their
// return values (injected errors, short reads, fd handles, verification
// results).  A call whose result is dropped as a bare expression
// statement silently swallows those signals, which is exactly the failure
// mode the resilience tests exist to catch.  `(void)` casts and
// `// lint: ignore-status` opt out explicitly.
//
// pool-pairing: cz::BufferPool hands out reusable buffers; a buffer bound
// to a plain local must be moved, released, or returned on every path out
// of the function, or steady-state steps start allocating again (the
// whole point of the pool).  `// lint: ignore-pool` opts out.
//
// submit-reap: fsim::SubmissionQueue::submit() replays the batch and
// parks the completions on the queue's completion ring; a submit whose
// cqes are never reaped (reap / reap_all / completions) silently drops
// per-sqe fault results — the mid-batch eio/stall/torn signals the
// queue-pair API exists to deliver.  Handing the queue to a helper by
// reference (the writer's submit_and_reap shape) counts as the reap
// moving there.  `// lint: ignore-reap` opts out.

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "analysis_util.hpp"
#include "index.hpp"
#include "lint.hpp"

namespace bitio::lint {

namespace {

/// Token index just past the ')' matching the '(' at `open`.
std::size_t after_call(const std::vector<Token>& toks, std::size_t open,
                       std::size_t end) {
  int depth = 0;
  for (std::size_t k = open; k < end; ++k) {
    if (toks[k].text == "(") ++depth;
    else if (toks[k].text == ")" && --depth == 0) return k + 1;
  }
  return end;
}

bool in_scope(const std::string& rel) {
  return rel.rfind("src/", 0) == 0 || rel.rfind("bench/", 0) == 0 ||
         rel.rfind("examples/", 0) == 0;
}

// --- unchecked-status ------------------------------------------------------

/// The guarded classes and, per class, its value-returning methods.
std::map<std::string, std::set<std::string>> status_methods(
    const SemanticIndex& index) {
  std::map<std::string, std::set<std::string>> out;
  for (const char* name : {"FsClient", "SharedFs", "Reader"}) {
    const ClassSym* cls = index.find_class(name);
    if (!cls) continue;
    auto& methods = out[cls->name];
    const std::size_t sep = cls->name.rfind("::");
    const std::string last =
        sep == std::string::npos ? cls->name : cls->name.substr(sep + 2);
    for (const auto& m : cls->methods) {
      if (m.return_type.empty() || m.return_type == "void") continue;
      if (m.name == last || m.name[0] == '~')
        continue;  // constructors / destructor
      methods.insert(m.name);
    }
  }
  return out;
}

}  // namespace

std::vector<Diagnostic> check_unchecked_status(const SemanticIndex& index) {
  std::vector<Diagnostic> out;
  const auto guarded = status_methods(index);
  for (const FnDef& def : all_function_definitions(index)) {
    const FileInfo& file = *def.file;
    if (!in_scope(file.rel)) continue;
    // The guarded classes' own sources call siblings internally.
    if (file.rel.rfind("src/fsim/", 0) == 0 ||
        file.rel == "src/bp/reader.cpp" || file.rel == "src/bp/reader.hpp")
      continue;
    const FunctionSym& fn = *def.fn;
    const auto& toks = file.tokens;
    std::map<std::string, std::string> env;
    bool env_built = false;
    for (std::size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
      if (toks[i].kind != Token::Kind::ident || toks[i + 1].text != "(")
        continue;
      const std::string& prev = toks[i - 1].text;
      if (prev != "." && prev != "->") continue;
      // Which guarded classes have a method of this name?
      std::vector<const std::string*> classes;
      for (const auto& [cls_name, methods] : guarded)
        if (methods.count(toks[i].text)) classes.push_back(&cls_name);
      if (classes.empty()) continue;
      // Resolve the receiver to one of the guarded classes.
      const std::size_t s = chain_start(toks, i);
      if (s == i || s < 1) continue;
      if (toks[s - 1].text == "." || toks[s - 1].text == "->") continue;
      if (!env_built) {
        env = collect_var_types(file, fn, def.cls, index);
        env_built = true;
      }
      // Walk the chain left to right: `a . b -> m (` — the receiver of
      // `m` is the type of the last link.
      std::string type;
      {
        const auto it = env.find(toks[s].text);
        if (it == env.end()) continue;
        type = it->second;
        for (std::size_t k = s + 2; k < i; k += 2) {
          const ClassSym* cls = index.find_class(type);
          if (!cls) {
            type.clear();
            break;
          }
          const MemberVar* m = find_member(index, *cls, toks[k].text, nullptr);
          if (!m) {
            type.clear();
            break;
          }
          type = type_core(m->type);
        }
      }
      if (type.empty()) continue;
      const ClassSym* recv = index.find_class(type);
      if (!recv) continue;
      const bool is_guarded =
          std::any_of(classes.begin(), classes.end(),
                      [&](const std::string* c) { return *c == recv->name; });
      if (!is_guarded) continue;
      // Consumed?  The call must be the whole statement to be a drop.
      const std::size_t next = after_call(toks, i + 1, fn.body_end);
      if (next >= fn.body_end || toks[next].text != ";") continue;
      const std::string& before = toks[s - 1].text;
      bool discarded = before == ";" || before == "{" || before == "}" ||
                       before == ":" || before == "else" || before == "do";
      if (before == ")")
        // `(void)` cast consumes; a closing `if (...)` / loop paren does
        // not — the call is still the whole statement.
        discarded = !(s >= 3 && toks[s - 2].text == "void" &&
                      toks[s - 3].text == "(");
      if (!discarded) continue;
      if (line_has_marker(file, toks[i].line, "lint: ignore-status"))
        continue;
      out.push_back(
          {file.rel, toks[i].line, "unchecked-status",
           recv->name + "::" + toks[i].text +
               "() returns a status/result that this statement drops — "
               "consume it, cast to (void), or annotate the line with "
               "'// lint: ignore-status'"});
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.file != b.file ? a.file < b.file : a.line < b.line;
  });
  return out;
}

std::vector<Diagnostic> check_unchecked_status(const std::string& root) {
  return check_unchecked_status(SemanticIndex::build(root));
}

// --- pool-pairing ----------------------------------------------------------

std::vector<Diagnostic> check_pool_pairing(const SemanticIndex& index) {
  std::vector<Diagnostic> out;
  for (const FnDef& def : all_function_definitions(index)) {
    const FileInfo& file = *def.file;
    if (!in_scope(file.rel)) continue;
    if (file.rel.rfind("src/compress/buffer_pool", 0) == 0)
      continue;  // the pool's own implementation
    const FunctionSym& fn = *def.fn;
    const auto& toks = file.tokens;
    std::map<std::string, std::string> env;
    bool env_built = false;
    for (std::size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
      if (toks[i].kind != Token::Kind::ident ||
          (toks[i].text != "acquire" && toks[i].text != "acquire_reserve") ||
          toks[i + 1].text != "(")
        continue;
      const std::string& prev = toks[i - 1].text;
      if (prev != "." && prev != "->") continue;
      const std::size_t s = chain_start(toks, i);
      if (s == i) continue;
      if (!env_built) {
        env = collect_var_types(file, fn, def.cls, index);
        env_built = true;
      }
      const auto it = env.find(toks[s].text);
      if (it == env.end()) continue;
      const ClassSym* recv = index.find_class(it->second);
      if (!recv || recv->name.rfind("BufferPool") ==
                       std::string::npos)  // suffix check: cz::BufferPool
        continue;
      if (line_has_marker(file, toks[i].line, "lint: ignore-pool")) continue;

      const std::size_t call_end = after_call(toks, i + 1, fn.body_end);
      const std::string& before = toks[s - 1].text;
      if (before == ";" || before == "{" || before == "}") {
        out.push_back({file.rel, toks[i].line, "pool-pairing",
                       "buffer acquired from " + recv->name +
                           " is dropped on the spot — bind it and release "
                           "or move it, or annotate '// lint: ignore-pool'"});
        continue;
      }
      if (before != "=") continue;  // argument / return / member init: owned
      // Assignment target.
      if (s < 2) continue;
      const std::size_t tgt = s - 2;
      if (toks[tgt].kind != Token::Kind::ident) continue;
      const std::string& target_prev = toks[tgt - 1].text;
      if (target_prev == "." || target_prev == "->" || target_prev == "]")
        continue;  // member / element target: owned by the structure
      const bool declared_here = toks[tgt - 1].kind == Token::Kind::ident ||
                                 target_prev == ">" || target_prev == "&" ||
                                 target_prev == "*";
      if (!declared_here) continue;  // assignment into a pre-existing lvalue
      if (target_prev == "&") continue;  // reference binding: aliased storage
      const std::string& var = toks[tgt].text;

      // A plain local now owns the buffer: find the hand-off.
      std::size_t consumed_at = kNoTok;
      for (std::size_t k = call_end; k + 1 < fn.body_end; ++k) {
        const std::string& t = toks[k].text;
        const bool hand_off =
            // std::move(var) — into a member, a container, or release()
            (t == "move" && toks[k + 1].text == "(" &&
             k + 2 < fn.body_end && toks[k + 2].text == var) ||
            // pool.release(..., var, ...)
            (t == "release" && toks[k + 1].text == "(") ||
            // return var;
            (t == "return" && toks[k + 1].text == var) ||
            // var.swap(other)
            (t == var && k + 2 < fn.body_end && toks[k + 1].text == "." &&
             toks[k + 2].text == "swap");
        if (!hand_off) continue;
        if (t == "release") {
          // Only counts when var appears among the arguments.
          const std::size_t rend = after_call(toks, k + 1, fn.body_end);
          bool has_var = false;
          for (std::size_t a = k + 2; a < rend; ++a)
            if (toks[a].text == var) has_var = true;
          if (!has_var) continue;
        }
        consumed_at = k;
        break;
      }
      if (consumed_at == kNoTok) {
        out.push_back(
            {file.rel, toks[i].line, "pool-pairing",
             "buffer '" + var + "' acquired from " + recv->name +
                 " is never released, moved, or returned — it leaves the "
                 "pool's steady-state set"});
        continue;
      }
      // `return` strictly between acquisition and hand-off leaks.
      for (std::size_t k = call_end; k < consumed_at; ++k)
        if (toks[k].text == "return") {
          out.push_back(
              {file.rel, toks[k].line, "pool-pairing",
               "early return leaks pooled buffer '" + var +
                   "' (acquired at line " + std::to_string(toks[i].line) +
                   ", handed off only at line " +
                   std::to_string(toks[consumed_at].line) + ")"});
          break;
        }
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.file != b.file ? a.file < b.file : a.line < b.line;
  });
  return out;
}

std::vector<Diagnostic> check_pool_pairing(const std::string& root) {
  return check_pool_pairing(SemanticIndex::build(root));
}

// --- submit-reap -----------------------------------------------------------

std::vector<Diagnostic> check_submit_reap(const SemanticIndex& index) {
  std::vector<Diagnostic> out;
  for (const FnDef& def : all_function_definitions(index)) {
    const FileInfo& file = *def.file;
    if (!in_scope(file.rel)) continue;
    if (file.rel.rfind("src/fsim/posix_fs", 0) == 0)
      continue;  // the queue pair's own implementation
    const FunctionSym& fn = *def.fn;
    const auto& toks = file.tokens;
    std::map<std::string, std::string> env;
    bool env_built = false;
    for (std::size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
      if (toks[i].kind != Token::Kind::ident || toks[i].text != "submit" ||
          toks[i + 1].text != "(")
        continue;
      const std::string& prev = toks[i - 1].text;
      if (prev != "." && prev != "->") continue;
      const std::size_t s = chain_start(toks, i);
      if (s == i) continue;
      if (!env_built) {
        env = collect_var_types(file, fn, def.cls, index);
        env_built = true;
      }
      const auto it = env.find(toks[s].text);
      if (it == env.end()) continue;
      const ClassSym* recv = index.find_class(it->second);
      if (!recv ||
          recv->name.rfind("SubmissionQueue") == std::string::npos)
        continue;  // suffix check: fsim::SubmissionQueue
      if (line_has_marker(file, toks[i].line, "lint: ignore-reap")) continue;

      const std::string& var = toks[s].text;
      const std::size_t call_end = after_call(toks, i + 1, fn.body_end);

      // Find the reap: a reap()/reap_all()/completions() use on the same
      // queue, or the queue escaping by reference into a helper call that
      // reaps on the caller's behalf.
      std::size_t reaped_at = kNoTok;
      for (std::size_t k = call_end; k + 1 < fn.body_end; ++k) {
        if (toks[k].text != var) continue;
        const std::string& next = toks[k + 1].text;
        if ((next == "." || next == "->") && k + 2 < fn.body_end) {
          const std::string& m = toks[k + 2].text;
          if (m == "reap" || m == "reap_all" || m == "completions") {
            reaped_at = k;
            break;
          }
          continue;
        }
        // helper(..., sq, ...) — the queue is a bare call argument.
        const std::string& before = toks[k - 1].text;
        if ((before == "(" || before == ",") && (next == ")" || next == ",")) {
          reaped_at = k;
          break;
        }
      }
      if (reaped_at == kNoTok) {
        out.push_back(
            {file.rel, toks[i].line, "submit-reap",
             "batch submitted on '" + var + "' (" + recv->name +
                 "::submit) is never reaped — consume reap()/reap_all()/"
                 "completions() on the same queue, hand it to a reaping "
                 "helper, or annotate '// lint: ignore-reap'"});
        continue;
      }
      // `return` strictly between submit and reap drops the completions
      // (and any per-sqe fault results) on that path.
      for (std::size_t k = call_end; k < reaped_at; ++k)
        if (toks[k].text == "return") {
          out.push_back(
              {file.rel, toks[k].line, "submit-reap",
               "early return drops the completions of '" + var +
                   "' (submitted at line " + std::to_string(toks[i].line) +
                   ", reaped only at line " +
                   std::to_string(toks[reaped_at].line) + ")"});
          break;
        }
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.file != b.file ? a.file < b.file : a.line < b.line;
  });
  return out;
}

std::vector<Diagnostic> check_submit_reap(const std::string& root) {
  return check_submit_reap(SemanticIndex::build(root));
}

}  // namespace bitio::lint
