#include "analysis_util.hpp"

#include <cctype>
#include <set>
#include <sstream>

namespace bitio::lint {

namespace {

std::vector<std::string> split_ws(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

bool is_ident_tok(const std::string& t) {
  return !t.empty() && (std::isalpha(static_cast<unsigned char>(t[0])) ||
                        t[0] == '_');
}

bool is_cv(const std::string& t) {
  return t == "const" || t == "volatile" || t == "typename" ||
         t == "struct" || t == "class";
}

std::string type_core_tokens(const std::vector<std::string>& toks,
                             std::size_t begin, std::size_t end) {
  std::size_t i = begin;
  while (i < end && (is_cv(toks[i]) || toks[i] == "&" || toks[i] == "*"))
    ++i;
  // First `ident (:: ident)*` chain.
  std::string chain;
  while (i < end && is_ident_tok(toks[i])) {
    chain += toks[i];
    ++i;
    if (i < end && toks[i] == "::") {
      chain += "::";
      ++i;
      continue;
    }
    break;
  }
  if (chain.empty()) return {};
  const bool smart = chain == "std::unique_ptr" || chain == "std::shared_ptr" ||
                     chain == "unique_ptr" || chain == "shared_ptr";
  if (smart && i < end && toks[i] == "<") {
    int depth = 0;
    std::size_t open = i, close = i;
    for (; close < end; ++close) {
      if (toks[close] == "<") ++depth;
      else if (toks[close] == ">" && --depth == 0) break;
    }
    if (close < end) return type_core_tokens(toks, open + 1, close);
  }
  return chain;
}

}  // namespace

std::string type_core(const std::string& type) {
  const auto toks = split_ws(type);
  return type_core_tokens(toks, 0, toks.size());
}

bool is_mutex_type(const std::string& type) {
  const std::string core = type_core(type);
  return core == "util::Mutex" || core == "Mutex" || core == "std::mutex";
}

bool line_has_marker(const FileInfo& file, std::size_t line,
                     const std::string& marker) {
  std::size_t begin = 0;
  for (std::size_t l = 1; l < line; ++l) {
    begin = file.raw.find('\n', begin);
    if (begin == std::string::npos) return false;
    ++begin;
  }
  std::size_t end = file.raw.find('\n', begin);
  if (end == std::string::npos) end = file.raw.size();
  return file.raw.substr(begin, end - begin).find(marker) !=
         std::string::npos;
}

namespace {

void add_class_members(const SemanticIndex& index, const ClassSym& cls,
                       std::map<std::string, std::string>& env, int depth) {
  if (depth > 4) return;  // base-class cycles cannot recurse forever
  for (const auto& m : cls.members) {
    const std::string core = type_core(m.type);
    if (!core.empty() && !env.count(m.name)) env[m.name] = core;
  }
  for (const auto& base : cls.bases) {
    const std::string base_core = type_core(base);
    if (const ClassSym* b = index.find_class(base_core))
      add_class_members(index, *b, env, depth + 1);
  }
}

}  // namespace

std::map<std::string, std::string> collect_var_types(
    const FileInfo& file, const FunctionSym& fn, const ClassSym* cls,
    const SemanticIndex& index) {
  std::map<std::string, std::string> env;

  // Parameters: name is the identifier right before a top-level ',' /
  // '=' / end; its type is everything since the previous boundary.
  const auto ptoks = split_ws(fn.params);
  std::size_t start = 0;
  int depth = 0;
  for (std::size_t i = 0; i <= ptoks.size(); ++i) {
    const bool at_end = i == ptoks.size();
    const std::string t = at_end ? "," : ptoks[i];
    if (t == "<" || t == "(" || t == "[") ++depth;
    if (t == ">" || t == ")" || t == "]") --depth;
    if ((t == "," && depth == 0) || at_end) {
      // name = last identifier before any default value
      std::size_t stop = i;
      for (std::size_t k = start; k < i; ++k)
        if (ptoks[k] == "=") {
          stop = k;
          break;
        }
      if (stop > start && is_ident_tok(ptoks[stop - 1])) {
        const std::string name = ptoks[stop - 1];
        const std::string core =
            type_core_tokens(ptoks, start, stop - 1);
        if (!core.empty() && core != name) env[name] = core;
      }
      start = i + 1;
    }
  }

  // Local declarations: a name identifier preceded by a type chain
  // (idents, ::, <...>, const, &, *) and followed by an initializer,
  // separator, or range-for ':'.  Covers `Foo x = ...`, `Foo& x : xs`,
  // `Foo* x;`, and lambda parameters.  Expression fragments that happen
  // to match resolve to a non-class "type" and fail find_class later, so
  // the call rules stay under-approximate.
  if (fn.has_body()) {
    const auto& toks = file.tokens;
    static const std::set<std::string> banned_cores = {
        "return",   "delete", "throw",    "new",      "else",
        "case",     "goto",   "auto",     "using",    "break",
        "continue", "co_return", "operator", "sizeof", "if",
        "while",    "for",    "switch",   "do"};
    for (std::size_t p = fn.body_begin + 2; p + 1 < fn.body_end; ++p) {
      if (toks[p].kind != Token::Kind::ident) continue;
      const std::string& next = toks[p + 1].text;
      if (next != "(" && next != "=" && next != ";" && next != "{" &&
          next != "," && next != ")" && next != ":")
        continue;
      const Token& before = toks[p - 1];
      if (before.kind != Token::Kind::ident && before.text != ">" &&
          before.text != "&" && before.text != "*")
        continue;
      // Walk the type chain backwards from the token before the name.
      std::size_t b = p;
      int angle = 0;
      while (b > fn.body_begin + 1) {
        const Token& q = toks[b - 1];
        if (q.text == ">") {
          ++angle;
        } else if (q.text == "<") {
          if (angle == 0) break;
          --angle;
        } else if (angle == 0 && q.text != "::" && q.text != "&" &&
                   q.text != "*" && q.text != "const" &&
                   q.kind != Token::Kind::ident) {
          break;
        }
        --b;
      }
      if (b == p) continue;
      std::vector<std::string> ttoks;
      for (std::size_t k = b; k < p; ++k) ttoks.push_back(toks[k].text);
      const std::string core = type_core_tokens(ttoks, 0, ttoks.size());
      const std::string& name = toks[p].text;
      if (!core.empty() && !banned_cores.count(core) && !env.count(name))
        env[name] = core;
    }
  }

  if (cls) {
    env["this"] = cls->name;
    add_class_members(index, *cls, env, 0);
  }
  return env;
}

std::size_t chain_start(const std::vector<Token>& toks,
                        std::size_t method_tok) {
  std::size_t s = method_tok;
  while (s >= 2 && (toks[s - 1].text == "." || toks[s - 1].text == "->") &&
         toks[s - 2].kind == Token::Kind::ident)
    s -= 2;
  return s;
}

const MemberVar* find_member(const SemanticIndex& index, const ClassSym& cls,
                             const std::string& name,
                             const ClassSym** owner) {
  for (const auto& m : cls.members)
    if (m.name == name) {
      if (owner) *owner = &cls;
      return &m;
    }
  for (const auto& base : cls.bases) {
    const std::string core = type_core(base);
    if (const ClassSym* b = index.find_class(core)) {
      if (b == &cls) continue;
      if (const MemberVar* m = find_member(index, *b, name, owner)) return m;
    }
  }
  return nullptr;
}

std::vector<FnDef> all_function_definitions(const SemanticIndex& index) {
  std::vector<FnDef> out;
  for (const auto& f : index.files()) {
    for (const auto& c : f.classes)
      for (const auto& m : c.methods)
        if (m.has_body()) out.push_back({&f, &m, &c});
    for (const auto& fn : f.functions) {
      if (!fn.has_body()) continue;
      const ClassSym* cls =
          fn.qualifier.empty() ? nullptr : index.find_class(fn.qualifier);
      out.push_back({&f, &fn, cls});
    }
  }
  return out;
}

std::string effective_annotations(const SemanticIndex& index,
                                  const FnDef& def) {
  std::string out = def.fn->annotations;
  if (def.cls && def.fn->class_name.empty()) {
    if (const FunctionSym* decl =
            index.method_declaration(*def.cls, def.fn->name)) {
      if (!decl->annotations.empty()) {
        if (!out.empty()) out += ' ';
        out += decl->annotations;
      }
    }
  }
  return out;
}

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace bitio::lint
