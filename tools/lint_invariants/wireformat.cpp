// wire-format — fingerprints of every serialized surface.
//
// Each FormatSurface names the function that writes a wire format and the
// version constant that must move with it.  The fingerprint is an FNV-1a
// hash over the serializer's normalized output-writing statements (token
// text joined by single spaces — whitespace and comments cannot shift
// it), checked against the committed golden
// tools/lint_invariants/format_fingerprints.txt.  The gate this buys:
// serialized fields cannot change silently — a drift with an unchanged
// version constant always fails, and a drift with a bumped version fails
// until the golden is regenerated, so the golden diff (and the version
// bump) are part of the reviewed change.

#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>

#include "analysis_util.hpp"
#include "index.hpp"
#include "lint.hpp"

namespace bitio::lint {

namespace {

const char* const kRule = "wire-format";

struct Entry {
  std::string version;  // "<const>:<value>", value with spaces removed
  std::string fp;       // 16 hex chars
};

std::string hex16(std::uint64_t value) {
  std::ostringstream out;
  out << std::hex;
  for (int shift = 60; shift >= 0; shift -= 4)
    out << "0123456789abcdef"[(value >> shift) & 0xf];
  return out.str();
}

/// The serializer function for `anchor` ("encode_step" or
/// "EpochManifest::to_json") inside `file`; nullptr when absent.
const FunctionSym* find_anchor(const FileInfo& file,
                               const std::string& anchor) {
  std::string qual, name = anchor;
  const std::size_t sep = anchor.rfind("::");
  if (sep != std::string::npos) {
    qual = anchor.substr(0, sep);
    name = anchor.substr(sep + 2);
  }
  for (const auto& fn : file.functions)
    if (fn.name == name && fn.has_body() &&
        (qual.empty() ? fn.qualifier.empty() : fn.qualifier == qual))
      return &fn;
  // Inline in-class definition.
  for (const auto& cls : file.classes)
    for (const auto& fn : cls.methods)
      if (fn.name == name && fn.has_body() &&
          (qual.empty() ||
           cls.name == qual ||
           (cls.name.size() > qual.size() + 2 &&
            cls.name.compare(cls.name.size() - qual.size(), qual.size(),
                             qual) == 0)))
        return &fn;
  return nullptr;
}

bool writes_output(const std::string& ident) {
  // Raw byte-vector emission plus the util::BinWriter method vocabulary
  // (u8/u32/.../dims) the miniBP encoders write through.
  return ident.rfind("put_", 0) == 0 || ident == "push_back" ||
         ident == "insert" || ident == "append" || ident == "emplace_back" ||
         ident == "u8" || ident == "u16" || ident == "u32" ||
         ident == "u64" || ident == "f64" || ident == "str" ||
         ident == "bytes" || ident == "dims";
}

/// Normalized output-writing statements of the serializer body.
std::string surface_text(const FileInfo& file, const FunctionSym& fn) {
  std::string out;
  std::string stmt;
  bool selected = false;
  for (std::size_t i = fn.body_begin + 1;
       i < fn.body_end && i < file.tokens.size(); ++i) {
    const Token& t = file.tokens[i];
    if (t.text == ";") {
      if (selected && !stmt.empty()) {
        out += stmt;
        out += '\n';
      }
      stmt.clear();
      selected = false;
      continue;
    }
    if (t.kind == Token::Kind::str ||
        (t.kind == Token::Kind::ident && writes_output(t.text)))
      selected = true;
    if (!stmt.empty()) stmt += ' ';
    stmt += t.text;
  }
  return out;
}

/// "<const>:<value>" for the surface's version constant, "" when absent.
std::string version_token(const FileInfo& file, const std::string& name) {
  const std::regex def(std::string("\\b") + name + R"(\s*=\s*([^;,}\n]+))");
  std::smatch m;
  if (!std::regex_search(file.code, m, def)) return {};
  std::string value = m[1].str();
  std::string compact;
  for (const char c : value)
    if (!std::isspace(static_cast<unsigned char>(c))) compact += c;
  return name + ":" + compact;
}

/// Compute one surface's golden entry; diagnostics on structural failure.
bool compute_entry(const SemanticIndex& index, const FormatSurface& s,
                   Entry& entry, std::size_t& anchor_line,
                   std::vector<Diagnostic>& out) {
  const FileInfo* file = index.file(s.file);
  if (!file) {
    out.push_back({s.file, 1, kRule,
                   "surface '" + s.id + "': file is missing from the tree"});
    return false;
  }
  const FunctionSym* fn = find_anchor(*file, s.anchor);
  if (!fn) {
    out.push_back({s.file, 1, kRule,
                   "surface '" + s.id + "': serializer '" + s.anchor +
                       "' not found — update the surface table in "
                       "tools/lint_invariants if it moved"});
    return false;
  }
  const FileInfo* vfile = index.file(s.version_file);
  if (!vfile) {
    out.push_back({s.version_file, 1, kRule,
                   "surface '" + s.id + "': version file is missing"});
    return false;
  }
  entry.version = version_token(*vfile, s.version_const);
  if (entry.version.empty()) {
    out.push_back({s.version_file, 1, kRule,
                   "surface '" + s.id + "': version constant '" +
                       s.version_const + "' not found"});
    return false;
  }
  const std::string text = surface_text(*file, *fn);
  if (text.empty()) {
    // An empty extraction would make the fingerprint vacuous — refuse so
    // a refactor onto an unrecognized emit helper cannot hollow the gate.
    out.push_back({s.file, fn->line, kRule,
                   "surface '" + s.id + "': no output-writing statements "
                       "recognized in '" + s.anchor +
                       "' — teach writes_output() the new emit vocabulary"});
    return false;
  }
  entry.fp = hex16(fnv1a64(text));
  anchor_line = fn->line;
  return true;
}

std::map<std::string, Entry> parse_golden(const std::string& text) {
  std::map<std::string, Entry> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::string id, version, fp;
    row >> id >> version >> fp;
    if (id.empty() || version.rfind("version=", 0) != 0 ||
        fp.rfind("fp=", 0) != 0)
      continue;
    out[id] = {version.substr(8), fp.substr(3)};
  }
  return out;
}

std::string read_golden(const SemanticIndex& index,
                        const std::string& golden_rel, bool& exists) {
  const std::filesystem::path path =
      std::filesystem::path(index.root()) / golden_rel;
  std::ifstream in(path, std::ios::binary);
  exists = bool(in);
  if (!exists) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string render_golden(
    const std::vector<std::pair<std::string, Entry>>& entries) {
  std::ostringstream out;
  out << "# Wire-format fingerprints — generated by\n"
         "#   bitio-analyzer --update-fingerprints <repo-root>\n"
         "# One line per serialized surface: the version constant's current\n"
         "# value and an FNV-1a hash of the serializer's output-writing\n"
         "# statements.  The wire-format lint rule fails when a serializer\n"
         "# drifts from this file; see README \"Static analysis\".\n";
  for (const auto& [id, entry] : entries)
    out << id << " version=" << entry.version << " fp=" << entry.fp << "\n";
  return out.str();
}

}  // namespace

const char kFingerprintGoldenRel[] =
    "tools/lint_invariants/format_fingerprints.txt";

const std::vector<FormatSurface>& default_format_surfaces() {
  static const std::vector<FormatSurface> surfaces = {
      {"minibp-step", "src/bp/format.cpp", "encode_step", "src/bp/format.hpp",
       "kMdMagicV6"},
      {"minibp-footer", "src/bp/format.cpp", "encode_footer",
       "src/bp/format.hpp", "kFtrMagic"},
      {"czp1-frame", "src/compress/parallel.cpp",
       "ParallelCodec::compress_append", "src/compress/parallel.cpp",
       "kFrameVersion"},
      {"drsnlog", "src/darshan/darshan.cpp", "DarshanLog::serialize",
       "src/darshan/darshan.cpp", "kLogMagic"},
      {"ckpt-manifest", "src/resil/chain_source.cpp", "EpochManifest::to_json",
       "src/resil/chain_source.hpp", "kManifestVersion"},
  };
  return surfaces;
}

std::vector<Diagnostic> check_wire_format(
    const SemanticIndex& index, const std::vector<FormatSurface>& surfaces,
    const std::string& golden_rel) {
  std::vector<Diagnostic> out;
  bool have_golden = false;
  const auto golden = parse_golden(read_golden(index, golden_rel, have_golden));
  if (!have_golden) {
    out.push_back({golden_rel, 1, kRule,
                   "fingerprint golden is missing — run bitio-analyzer "
                   "--update-fingerprints and commit it"});
    return out;
  }
  for (const FormatSurface& s : surfaces) {
    Entry current;
    std::size_t line = 1;
    if (!compute_entry(index, s, current, line, out)) continue;
    const auto it = golden.find(s.id);
    if (it == golden.end()) {
      out.push_back({golden_rel, 1, kRule,
                     "surface '" + s.id +
                         "' has no golden entry — run --update-fingerprints"});
      continue;
    }
    const Entry& gold = it->second;
    const bool fp_same = current.fp == gold.fp;
    const bool ver_same = current.version == gold.version;
    if (fp_same && ver_same) continue;
    if (!fp_same && ver_same) {
      out.push_back(
          {s.file, line, kRule,
           "surface '" + s.id + "' (" + s.anchor +
               ") changed its serialized fields but " + s.version_const +
               " still reads " + gold.version.substr(gold.version.find(':') + 1) +
               " — bump the version constant and regenerate the golden "
               "(--update-fingerprints)"});
    } else {
      out.push_back(
          {s.file, line, kRule,
           "surface '" + s.id + "' golden entry is stale (" +
               (fp_same ? "version constant moved" : "fields and version moved") +
               ") — rerun --update-fingerprints and commit " + golden_rel});
    }
  }
  return out;
}

std::vector<Diagnostic> check_wire_format(const SemanticIndex& index) {
  return check_wire_format(index, default_format_surfaces(),
                           kFingerprintGoldenRel);
}

std::vector<Diagnostic> check_wire_format(const std::string& root) {
  return check_wire_format(SemanticIndex::build(root));
}

std::vector<Diagnostic> update_fingerprints(
    const SemanticIndex& index, const std::vector<FormatSurface>& surfaces,
    const std::string& golden_rel) {
  std::vector<Diagnostic> out;
  bool have_golden = false;
  const auto golden = parse_golden(read_golden(index, golden_rel, have_golden));
  std::vector<std::pair<std::string, Entry>> entries;
  for (const FormatSurface& s : surfaces) {
    Entry current;
    std::size_t line = 1;
    if (!compute_entry(index, s, current, line, out)) continue;
    if (have_golden) {
      const auto it = golden.find(s.id);
      // The gate --update-fingerprints must not be able to bypass:
      // fields changed, version did not.
      if (it != golden.end() && it->second.fp != current.fp &&
          it->second.version == current.version) {
        out.push_back(
            {s.file, line, kRule,
             "refusing to update surface '" + s.id +
                 "': serialized fields changed but " + s.version_const +
                 " did not — bump the version constant first"});
        continue;
      }
    }
    entries.emplace_back(s.id, current);
  }
  if (!out.empty()) return out;
  const std::filesystem::path path =
      std::filesystem::path(index.root()) / golden_rel;
  std::filesystem::create_directories(path.parent_path());
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file << render_golden(entries);
  if (!file)
    out.push_back({golden_rel, 1, kRule, "failed to write the golden file"});
  return out;
}

std::vector<Diagnostic> update_fingerprints(const SemanticIndex& index) {
  return update_fingerprints(index, default_format_surfaces(),
                             kFingerprintGoldenRel);
}

}  // namespace bitio::lint
