#pragma once
// Shared resolution helpers for the bitio-analyzer cross-file rules
// (lock-order, unchecked-status, pool-pairing).  They answer the small
// set of semantic questions the rules need on top of the SemanticIndex:
// what class does this declaration type name, what type is this local /
// parameter / member, where does a receiver chain start, and does a raw
// source line carry an escape-hatch marker.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "index.hpp"

namespace bitio::lint {

/// Core class name of a declaration type: strips cv-qualifiers and
/// ref/pointer decoration and unwraps std::unique_ptr/shared_ptr, so
/// "const std::unique_ptr<bp::Engine>&" resolves to "bp::Engine" and
/// "util :: Mutex" to "util::Mutex".  Template arguments of other
/// wrappers are not entered ("std::vector<Shard>" stays "std::vector").
std::string type_core(const std::string& type);

/// True when the declaration type names a lockable mutex (util::Mutex or
/// std::mutex).
bool is_mutex_type(const std::string& type);

/// True when the original source line (1-based) contains `marker` —
/// markers live in comments, which tokens and `code` have stripped.
bool line_has_marker(const FileInfo& file, std::size_t line,
                     const std::string& marker);

/// Best-effort variable typing environment for one function body:
/// parameter names, local declarations (ident-ident adjacency over the
/// body tokens), enclosing-class members (bases included), and `this`.
/// Values are type_core() strings.
std::map<std::string, std::string> collect_var_types(
    const FileInfo& file, const FunctionSym& fn, const ClassSym* cls,
    const SemanticIndex& index);

/// Token index where the receiver chain of the method call at
/// `method_tok` starts: for `a . b -> m (...)` with method_tok at `m`,
/// returns the index of `a`.  Returns method_tok itself for a plain
/// unqualified call.
std::size_t chain_start(const std::vector<Token>& toks,
                        std::size_t method_tok);

/// Member lookup walking base classes; sets `*owner` to the class that
/// declares the member (may differ from `cls`).
const MemberVar* find_member(const SemanticIndex& index, const ClassSym& cls,
                             const std::string& name, const ClassSym** owner);

/// Every function definition in the index, with its file and (for
/// methods, inline or out-of-line) its resolved class.
struct FnDef {
  const FileInfo* file = nullptr;
  const FunctionSym* fn = nullptr;
  const ClassSym* cls = nullptr;  // nullptr for free functions
};
std::vector<FnDef> all_function_definitions(const SemanticIndex& index);

/// Thread-safety annotations of a definition including the ones on its
/// in-class declaration (out-of-line definitions carry none themselves).
std::string effective_annotations(const SemanticIndex& index,
                                  const FnDef& def);

/// FNV-1a 64-bit hash, rendered by the wire-format rule as 16 hex chars.
std::uint64_t fnv1a64(const std::string& text);

}  // namespace bitio::lint
