#pragma once
// In-tree invariant linter for the bitio sources (tools/lint_invariants).
//
// The codebase keeps several cross-file invariants that the compiler cannot
// check: all file I/O goes through the fsim layer, the Bit1IoConfig TOML
// surface is driven off one key registry, the Darshan counter set is
// declared in one table, and every TraceOp kind is explicitly classified
// and captured.  Each rule here re-derives one of those invariants from the
// sources textually (comment-aware, brace-matched) and reports violations
// as file:line diagnostics.  The `lint`-labeled ctest runs the whole suite
// over the real tree; tests/lint_test.cpp runs each rule against fixture
// trees with seeded violations.
//
// The rules are deliberately textual, not AST-based: the tree has no
// guaranteed clang on the build host, and the invariants are all "token X
// must appear inside function Y" shapes that survive formatting changes.

#include <cstddef>
#include <string>
#include <vector>

namespace bitio::lint {

/// One violation, pointing at the source line that must change.
struct Diagnostic {
  std::string file;     // path relative to the scanned root
  std::size_t line = 0; // 1-based
  std::string rule;     // rule id: "raw-io", "config-registry", ...
  std::string message;
};

/// `file:line: [rule] message` — the format editors and CI logs understand.
std::string format_diagnostic(const Diagnostic& diag);

// --- source-text helpers (exposed for the fixture tests) -------------------

/// Replace //-comments and /*...*/ comments with spaces, preserving line
/// structure so byte offsets still map to the original line numbers.
std::string strip_comments(const std::string& text);

/// Additionally blank out string and character literals (for rules that
/// must not match tokens inside strings).  Input should already be
/// comment-stripped.
std::string strip_string_literals(const std::string& text);

/// 1-based line number of byte offset `pos` in `text`.
std::size_t line_of(const std::string& text, std::size_t pos);

/// Extract the brace-delimited body following the first occurrence of
/// `anchor` at or after `from`.  Returns the body (without the outer
/// braces) and sets `*line` to the 1-based line of the anchor.  Returns an
/// empty string when the anchor or a matched brace pair is not found.
std::string body_after(const std::string& text, const std::string& anchor,
                       std::size_t* line = nullptr, std::size_t from = 0);

// --- rules -----------------------------------------------------------------

/// raw-io: no naked stdio/iostream file access outside src/fsim.  All file
/// traffic must go through fsim::FsClient so the trace, the timing replay,
/// and the Darshan capture see it.  (fprintf to stderr is allowed: console
/// logging is not file I/O.)
std::vector<Diagnostic> check_raw_io(const std::string& root);

/// config-registry: every row of core::kBit1IoConfigKeys is parsed by
/// Bit1IoConfig::from_toml, rendered by to_toml, declared as a struct
/// field, and (when flagged validated) constrained in validate(); and every
/// key from_toml reads appears in the registry.
std::vector<Diagnostic> check_config_registry(const std::string& root);

/// darshan-counters: every name in darshan::kFileRecordCounters is a
/// FileRecord member referenced by both serialize() and parse(), and every
/// numeric FileRecord member is listed in the table.
std::vector<Diagnostic> check_darshan_counters(const std::string& root);

/// traceop-kinds: every OpKind enumerator has a `case OpKind::<kind>` in
/// op_name(), in service_class() (the replay dispatch), and in the Darshan
/// capture switch.
std::vector<Diagnostic> check_traceop_kinds(const std::string& root);

/// engine-registry: every engine name in core::kBit1IoEngines is registered
/// by bp's builtin_engines() factory block (src/bp/engine.cpp), spelled out
/// by Bit1IoConfig::label(), and tagged by darshan::engine_tag(); and every
/// name builtin_engines() registers is in kBit1IoEngines.  Adding an engine
/// string to one site but not the others fails lint with a file:line
/// diagnostic at the site that is missing it.
std::vector<Diagnostic> check_engine_registry(const std::string& root);

/// topology-registry: every aggregation mode in core::kBit1IoAggregationModes
/// is dispatched by the bp writer gather path (src/bp/writer.cpp) and tagged
/// by darshan::aggregation_tag(); every topology name in kBit1IoTopologies
/// has a literal preset branch in topo::Cluster::preset() — and, reverse,
/// every name preset() compares is declared in the registry.  Also the
/// factory-seam audit: no `bp::Writer` reference outside src/bp — call
/// sites must construct engines through bp::make_engine.
std::vector<Diagnostic> check_topology_registry(const std::string& root);

/// All rules over the tree rooted at `root` (the repository checkout: the
/// rules look under `<root>/src`).  Diagnostics are ordered by rule.
std::vector<Diagnostic> run_all(const std::string& root);

}  // namespace bitio::lint
