#pragma once
// bitio-analyzer — in-tree static analysis for the bitio sources
// (tools/lint_invariants).
//
// The codebase keeps cross-file invariants that the compiler cannot check:
// all file I/O goes through the fsim layer, the Bit1IoConfig TOML surface
// is driven off one key registry, the Darshan counter set is declared in
// one table, every TraceOp kind is explicitly classified and captured,
// mutexes are acquired in one global order, serialized wire formats only
// change together with their version constants, status-returning fsim/bp
// APIs are never silently dropped, pooled buffers are always recycled,
// and batched queue-pair submissions are always reaped.
//
// Every rule runs over one shared SemanticIndex (see index.hpp): the
// legacy PR-4 rules keep their regex logic on the index's pre-stripped
// text, while the cross-file rules (lock-order, wire-format,
// unchecked-status, pool-pairing, include-graph) use its token streams
// and symbol tables.  Violations are file:line diagnostics; the
// `lint`-labeled ctest runs the whole suite over the real tree, and
// tests/lint_test.cpp + tests/analyzer_test.cpp run each rule against
// fixture trees with seeded violations.
//
// The analyses are deliberately heuristic, not AST-based: the tree has no
// guaranteed clang on the build host, and every invariant here survives
// formatting changes at the token level.

#include <cstddef>
#include <string>
#include <vector>

namespace bitio::lint {

class SemanticIndex;  // index.hpp

/// One violation, pointing at the source line that must change.
struct Diagnostic {
  std::string file;     // path relative to the scanned root
  std::size_t line = 0; // 1-based
  std::string rule;     // rule id: "raw-io", "config-registry", ...
  std::string message;
};

/// `file:line: [rule] message` — the format editors and CI logs understand.
std::string format_diagnostic(const Diagnostic& diag);

// --- source-text helpers (exposed for the fixture tests) -------------------

/// Replace //-comments and /*...*/ comments with spaces, preserving line
/// structure so byte offsets still map to the original line numbers.
std::string strip_comments(const std::string& text);

/// Additionally blank out string and character literals (for rules that
/// must not match tokens inside strings).  Input should already be
/// comment-stripped.
std::string strip_string_literals(const std::string& text);

/// 1-based line number of byte offset `pos` in `text`.
std::size_t line_of(const std::string& text, std::size_t pos);

/// Extract the brace-delimited body following the first occurrence of
/// `anchor` at or after `from`.  Returns the body (without the outer
/// braces) and sets `*line` to the 1-based line of the anchor.  Returns an
/// empty string when the anchor or a matched brace pair is not found.
std::string body_after(const std::string& text, const std::string& anchor,
                       std::size_t* line = nullptr, std::size_t from = 0);

// --- rules -----------------------------------------------------------------
//
// Every rule has two overloads: the SemanticIndex one does the work; the
// string one builds a throwaway index over `root` first (fixture tests and
// single-rule CLI runs use it).  run_all builds the index once.

/// raw-io: no naked stdio/iostream file access outside src/fsim, scanned
/// across src/, bench/, and examples/ (tools/ and tests/ are exempt).  All
/// file traffic must go through fsim::FsClient so the trace, the timing
/// replay, and the Darshan capture see it.  (fprintf to stderr is allowed:
/// console logging is not file I/O.)  Escape hatch for host-side probes
/// that are genuinely outside the simulated storage path:
/// `// lint: allow-raw-io` on the flagged line.
std::vector<Diagnostic> check_raw_io(const std::string& root);
std::vector<Diagnostic> check_raw_io(const SemanticIndex& index);

/// config-registry: every row of core::kBit1IoConfigKeys is parsed by
/// Bit1IoConfig::from_toml, rendered by to_toml, declared as a struct
/// field, and (when flagged validated) constrained in validate(); and every
/// key from_toml reads appears in the registry.
std::vector<Diagnostic> check_config_registry(const std::string& root);
std::vector<Diagnostic> check_config_registry(const SemanticIndex& index);

/// darshan-counters: every name in darshan::kFileRecordCounters is a
/// FileRecord member referenced by both serialize() and parse(), and every
/// numeric FileRecord member is listed in the table.
std::vector<Diagnostic> check_darshan_counters(const std::string& root);
std::vector<Diagnostic> check_darshan_counters(const SemanticIndex& index);

/// traceop-kinds: every OpKind enumerator has a `case OpKind::<kind>` in
/// op_name(), in service_class() (the replay dispatch), and in the Darshan
/// capture switch.
std::vector<Diagnostic> check_traceop_kinds(const std::string& root);
std::vector<Diagnostic> check_traceop_kinds(const SemanticIndex& index);

/// engine-registry: every engine name in core::kBit1IoEngines is registered
/// by bp's builtin_engines() factory block (src/bp/engine.cpp), spelled out
/// by Bit1IoConfig::label(), and tagged by darshan::engine_tag(); and every
/// name builtin_engines() registers is in kBit1IoEngines.  Adding an engine
/// string to one site but not the others fails lint with a file:line
/// diagnostic at the site that is missing it.
std::vector<Diagnostic> check_engine_registry(const std::string& root);
std::vector<Diagnostic> check_engine_registry(const SemanticIndex& index);

/// topology-registry: every aggregation mode in core::kBit1IoAggregationModes
/// is dispatched by the bp writer gather path (src/bp/writer.cpp) and tagged
/// by darshan::aggregation_tag(); every topology name in kBit1IoTopologies
/// has a literal preset branch in topo::Cluster::preset() — and, reverse,
/// every name preset() compares is declared in the registry.  Also the
/// factory-seam audit: no `bp::Writer` reference outside src/bp — call
/// sites must construct engines through bp::make_engine.
std::vector<Diagnostic> check_topology_registry(const std::string& root);
std::vector<Diagnostic> check_topology_registry(const SemanticIndex& index);

// --- cross-file analyses (the bitio-analyzer additions) --------------------

/// lock-order: build the mutex acquisition-order graph from MutexLock /
/// lock_guard / unique_lock construction sites, REQUIRES/ACQUIRE
/// annotations, and ACQUIRED_BEFORE declarations, propagated across
/// resolved call sites; fail on any cycle (a cross-function lock-order
/// inversion is a potential deadlock that clang's per-function
/// -Wthread-safety cannot see).
std::vector<Diagnostic> check_lock_order(const std::string& root);
std::vector<Diagnostic> check_lock_order(const SemanticIndex& index);

/// The acquisition-order graph in Graphviz DOT form (declared edges
/// dashed), for embedding in DESIGN.md.
std::string lock_order_dot(const SemanticIndex& index);

/// One serialized wire surface the fingerprint rule guards: the function
/// that writes the format, and the version constant that must move with
/// it.
struct FormatSurface {
  std::string id;             // golden-file key, e.g. "minibp-step"
  std::string file;           // rel path holding the serializer
  std::string anchor;         // serializer name, e.g. "encode_step" or
                              // "EpochManifest::to_json"
  std::string version_file;   // rel path declaring the version constant
  std::string version_const;  // e.g. "kMdMagicV6"
};

/// The five production surfaces: miniBP step metadata + footer, CZP1
/// frame header, Darshan DRSNLOG record table, checkpoint MANIFEST.
const std::vector<FormatSurface>& default_format_surfaces();

/// Path of the committed golden, relative to the index root.
extern const char kFingerprintGoldenRel[];

/// wire-format: fingerprint every surface's serializer (normalized
/// output-writing statements, FNV-1a 64) and compare against the golden.
/// A fingerprint drift with an unchanged version constant fails — fields
/// cannot change without bumping the version; a drift with a bumped
/// version fails until the golden is regenerated (--update-fingerprints),
/// so the golden diff is part of the reviewed change.
std::vector<Diagnostic> check_wire_format(const std::string& root);
std::vector<Diagnostic> check_wire_format(const SemanticIndex& index);
std::vector<Diagnostic> check_wire_format(
    const SemanticIndex& index, const std::vector<FormatSurface>& surfaces,
    const std::string& golden_rel);

/// Regenerate the golden (returns the new content via writing the file).
/// Refuses — returning the blocking diagnostics — when a surface's
/// fingerprint changed while its version constant did not: bump the
/// version first.
std::vector<Diagnostic> update_fingerprints(const SemanticIndex& index);
std::vector<Diagnostic> update_fingerprints(
    const SemanticIndex& index, const std::vector<FormatSurface>& surfaces,
    const std::string& golden_rel);

/// unchecked-status: a call of a value-returning fsim::FsClient /
/// fsim::SharedFs / bp::Reader method must consume the result — dropping
/// it as an expression statement hides injected faults and short reads.
/// Escape hatch: `// lint: ignore-status` on the call line; `(void)`
/// casts count as consumption.
std::vector<Diagnostic> check_unchecked_status(const std::string& root);
std::vector<Diagnostic> check_unchecked_status(const SemanticIndex& index);

/// pool-pairing: a buffer acquired from a cz::BufferPool must be moved,
/// released, or returned on every path out of the acquiring function —
/// an early `return` between acquire and hand-off leaks the buffer out
/// of the pool's steady-state set.  Escape hatch: `// lint: ignore-pool`.
std::vector<Diagnostic> check_pool_pairing(const std::string& root);
std::vector<Diagnostic> check_pool_pairing(const SemanticIndex& index);

/// submit-reap: every fsim::SubmissionQueue::submit() must have a
/// reachable reap — a reap()/reap_all()/completions() use on the same
/// queue (or the queue handed by reference to a helper that reaps) —
/// otherwise the batch's per-sqe fault results are silently dropped.  An
/// early `return` between submit and reap is flagged like pool-pairing's
/// early-return leak.  Escape hatch: `// lint: ignore-reap`.
std::vector<Diagnostic> check_submit_reap(const std::string& root);
std::vector<Diagnostic> check_submit_reap(const SemanticIndex& index);

/// include-graph: no #include cycles under src/, and no file outside
/// src/bp may include the bp writer internals (bp/writer.hpp,
/// bp/stream.hpp, bp/format.hpp) — the engine seam (bp/engine.hpp,
/// bp/types.hpp, bp/reader.hpp, bp/query.hpp) is the supported surface.
std::vector<Diagnostic> check_include_graph(const std::string& root);
std::vector<Diagnostic> check_include_graph(const SemanticIndex& index);

/// All rules.  The string overload builds the index once (the analyzer
/// CLI and the real-tree test use it).  Diagnostics are ordered by rule.
std::vector<Diagnostic> run_all(const std::string& root);
std::vector<Diagnostic> run_all(const SemanticIndex& index);

/// Diagnostics as a JSON report (`analyze-report` mode): an object with a
/// "diagnostics" array of {file, line, rule, message} and a "count".
std::string diagnostics_json(const std::vector<Diagnostic>& diags);

}  // namespace bitio::lint
