// lock-order — cross-function mutex acquisition-order analysis.
//
// Nodes are class-qualified mutex members ("bp::Writer::mutex_").  Edges
// mean "held while acquiring": they come from nested guard constructions
// (MutexLock / std::lock_guard / std::unique_lock / std::scoped_lock),
// from calls made while holding a lock into functions that (transitively)
// acquire other locks, and from explicit ACQUIRED_BEFORE declarations.
// REQUIRES annotations seed the held-set at function entry, ACQUIRE
// annotations count as acquisitions by the annotated function.  Any cycle
// in the resulting graph is a potential deadlock that clang's
// per-function thread-safety analysis cannot see.
//
// The analysis is deliberately under-approximate where it cannot resolve
// a receiver (locals of unknown type, expression receivers): unresolved
// acquisitions add no nodes and no edges, so the rule stays quiet rather
// than noisy.  Nodes are per-class, not per-instance — self-edges
// (lock-coupling over two instances of one class) are ignored.

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "analysis_util.hpp"
#include "index.hpp"
#include "lint.hpp"

namespace bitio::lint {

namespace {

const char* const kRule = "lock-order";

/// Files whose guard/lock tokens are the primitives themselves, not uses.
bool is_primitive_file(const std::string& rel) {
  return rel == "src/util/mutex.hpp" || rel == "src/util/thread_annotations.hpp";
}

bool is_guard_class(const std::string& name) {
  return name == "MutexLock" || name == "lock_guard" ||
         name == "unique_lock" || name == "scoped_lock";
}

bool is_stmt_keyword(const std::string& t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" ||
         t == "return" || t == "sizeof" || t == "catch" || t == "throw" ||
         t == "new" || t == "delete" || t == "assert" || t == "defined" ||
         t == "alignof" || t == "decltype" || t == "static_cast" ||
         t == "co_await" || t == "case";
}

struct Edge {
  std::string from, to;
  std::string file;
  std::size_t line = 0;
  std::string via;  // callee label for call-propagated edges
  bool declared = false;
};

struct CallSite {
  std::vector<std::string> callee_keys;  // candidate "Class::method" keys
  std::vector<std::string> held;
  std::string file;
  std::size_t line = 0;
  std::string label;  // what the source spells, for the message
};

class LockOrderAnalysis {
public:
  explicit LockOrderAnalysis(const SemanticIndex& index) : index_(index) {
    build_derived_map();
    for (const FnDef& def : all_function_definitions(index_)) {
      if (is_primitive_file(def.file->rel)) continue;
      scan_function(def);
    }
    declared_edges();
    propagate();
    call_edges();
  }

  std::vector<Diagnostic> diagnostics() const;
  std::string dot() const;

private:
  const SemanticIndex& index_;
  // class name -> classes that list it (by core name) among their bases
  std::map<std::string, std::vector<const ClassSym*>> derived_;
  // "Class::method" -> mutex nodes it acquires directly
  std::map<std::string, std::set<std::string>> direct_;
  // "Class::method" -> transitive closure (filled by propagate())
  std::map<std::string, std::set<std::string>> trans_;
  // caller key -> its call sites
  std::map<std::string, std::vector<CallSite>> calls_;
  std::vector<Edge> edges_;

  static std::string fn_key(const ClassSym* cls, const std::string& name) {
    return (cls ? cls->name : std::string()) + "::" + name;
  }

  void build_derived_map() {
    for (const ClassSym* c : index_.classes())
      for (const auto& base : c->bases) {
        const std::string core = type_core(base);
        if (const ClassSym* b = index_.find_class(core))
          derived_[b->name].push_back(c);
      }
  }

  /// `cls` plus everything transitively derived from it.
  std::vector<const ClassSym*> with_derived(const ClassSym* cls) const {
    std::vector<const ClassSym*> out{cls};
    for (std::size_t i = 0; i < out.size(); ++i) {
      const auto it = derived_.find(out[i]->name);
      if (it == derived_.end()) continue;
      for (const ClassSym* d : it->second)
        if (std::find(out.begin(), out.end(), d) == out.end())
          out.push_back(d);
    }
    return out;
  }

  /// Resolve a mutex expression (token range [a, b) of `file`) to a node
  /// id, or "" when it cannot be pinned to a class member.
  std::string resolve_mutex(const FileInfo& file, std::size_t a,
                            std::size_t b, const ClassSym* cls,
                            const std::map<std::string, std::string>& env) {
    // Collect the `ident (. ident)*` chain; anything else is unresolved.
    std::vector<std::string> parts;
    for (std::size_t k = a; k < b; ++k) {
      const Token& t = file.tokens[k];
      if (t.kind == Token::Kind::ident) parts.push_back(t.text);
      else if (t.text != "." && t.text != "->" && t.text != "::")
        return {};
    }
    if (parts.empty()) return {};
    if (parts.size() > 1 && parts.front() == "this")
      parts.erase(parts.begin());
    if (parts.size() == 1) {
      if (!cls) return {};
      const ClassSym* owner = nullptr;
      const MemberVar* m = find_member(index_, *cls, parts[0], &owner);
      if (m && is_mutex_type(m->type)) return owner->name + "::" + m->name;
      return {};
    }
    if (parts.size() == 2) {
      const auto it = env.find(parts[0]);
      if (it == env.end()) return {};
      const ClassSym* base = index_.find_class(it->second);
      if (!base) return {};
      const ClassSym* owner = nullptr;
      const MemberVar* m = find_member(index_, *base, parts[1], &owner);
      if (m && is_mutex_type(m->type)) return owner->name + "::" + m->name;
    }
    return {};
  }

  /// Member nodes named by a thread-safety annotation's arguments.
  std::set<std::string> annotation_nodes(const std::string& annotations,
                                         const std::string& keyword,
                                         const ClassSym* cls) {
    std::set<std::string> out;
    if (!cls) return out;
    std::istringstream in(annotations);
    std::string tok;
    std::vector<std::string> toks;
    while (in >> tok) toks.push_back(tok);
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i] != keyword || toks[i + 1] != "(") continue;
      int depth = 0;
      for (std::size_t k = i + 1; k < toks.size(); ++k) {
        if (toks[k] == "(") ++depth;
        else if (toks[k] == ")" && --depth == 0) break;
        else if (depth >= 1 && toks[k] != "," && toks[k][0] != '!') {
          const ClassSym* owner = nullptr;
          const MemberVar* m = find_member(index_, *cls, toks[k], &owner);
          if (m && is_mutex_type(m->type)) out.insert(owner->name + "::" + m->name);
        }
      }
    }
    return out;
  }

  void scan_function(const FnDef& def) {
    const FileInfo& file = *def.file;
    const auto& toks = file.tokens;
    const FunctionSym& fn = *def.fn;
    const std::string key = fn_key(def.cls, fn.name);
    const auto env = collect_var_types(file, fn, def.cls, index_);
    const std::string annos = effective_annotations(index_, def);

    const std::set<std::string> entry_held =
        annotation_nodes(annos, "REQUIRES", def.cls);
    for (const auto& n : annotation_nodes(annos, "ACQUIRE", def.cls))
      direct_[key].insert(n);
    direct_[key];  // ensure the key exists even with no acquisitions

    struct Active {
      std::string node;
      std::size_t scope_end;
    };
    std::vector<Active> active;
    std::vector<std::size_t> braces;  // open-brace token indices

    auto held_now = [&]() {
      std::vector<std::string> held(entry_held.begin(), entry_held.end());
      for (const auto& a : active)
        if (std::find(held.begin(), held.end(), a.node) == held.end())
          held.push_back(a.node);
      return held;
    };
    auto note_acquire = [&](const std::string& node, std::size_t line,
                            std::size_t scope_end) {
      for (const auto& h : held_now())
        if (h != node)
          edges_.push_back({h, node, file.rel, line, "", false});
      active.push_back({node, scope_end});
      direct_[key].insert(node);
    };
    auto match_paren = [&](std::size_t open) {
      int depth = 0;
      for (std::size_t k = open; k < fn.body_end; ++k) {
        if (toks[k].text == "(") ++depth;
        else if (toks[k].text == ")" && --depth == 0) return k;
      }
      return fn.body_end;
    };

    for (std::size_t i = fn.body_begin; i <= fn.body_end && i < toks.size();
         ++i) {
      active.erase(std::remove_if(active.begin(), active.end(),
                                  [&](const Active& a) {
                                    return i > a.scope_end;
                                  }),
                   active.end());
      const std::string& t = toks[i].text;
      if (t == "{") {
        braces.push_back(i);
        continue;
      }
      if (t == "}") {
        if (!braces.empty()) braces.pop_back();
        continue;
      }
      if (toks[i].kind != Token::Kind::ident) continue;

      // Guard construction: MutexLock / lock_guard<...> name(args).
      if (is_guard_class(t)) {
        std::size_t j = i + 1;
        if (j < fn.body_end && toks[j].text == "<") {
          int depth = 0;
          for (; j < fn.body_end; ++j) {
            if (toks[j].text == "<") ++depth;
            else if (toks[j].text == ">" && --depth == 0) {
              ++j;
              break;
            }
          }
        }
        if (j + 1 >= fn.body_end || toks[j].kind != Token::Kind::ident ||
            toks[j + 1].text != "(")
          continue;
        const std::size_t open = j + 1, close = match_paren(open);
        const std::size_t scope_end =
            braces.empty() ? fn.body_end : file.match_brace(braces.back());
        // scoped_lock can take several mutexes: split at top commas.
        std::size_t arg_begin = open + 1;
        int depth = 0;
        for (std::size_t k = open + 1; k <= close; ++k) {
          const std::string& a = toks[k].text;
          if (a == "(" || a == "[" || a == "<") ++depth;
          else if (a == ")" && k != close) --depth;
          else if (a == "]" || a == ">") --depth;
          if ((a == "," && depth == 0) || k == close) {
            const std::string node =
                resolve_mutex(file, arg_begin, k, def.cls, env);
            if (!node.empty())
              note_acquire(node, toks[i].line,
                           scope_end == kNoTok ? fn.body_end : scope_end);
            arg_begin = k + 1;
          }
        }
        i = close;
        continue;
      }

      if (i + 1 >= fn.body_end || toks[i + 1].text != "(") continue;
      const std::string& prev = toks[i - 1].text;

      // Direct `expr.lock()` on a resolvable mutex member.
      if (t == "lock" && (prev == "." || prev == "->")) {
        const std::size_t s = chain_start(toks, i);
        const std::string node =
            resolve_mutex(file, s, i - 1, def.cls, env);
        if (!node.empty()) {
          // Scope: until a matching `.unlock()` on the same receiver
          // text, else the end of the function.
          std::size_t scope_end = fn.body_end;
          for (std::size_t k = i + 2; k + 1 < fn.body_end; ++k)
            if (toks[k].text == "unlock" && toks[k + 1].text == "(" &&
                (toks[k - 1].text == "." || toks[k - 1].text == "->") &&
                chain_start(toks, k) + (i - s) == k &&
                toks[chain_start(toks, k)].text == toks[s].text) {
              scope_end = k;
              break;
            }
          note_acquire(node, toks[i].line, scope_end);
        }
        continue;
      }

      // Call site: record candidates for the transitive pass.
      if (is_stmt_keyword(t) || is_guard_class(t)) continue;
      std::vector<std::string> callee_keys;
      std::string label = t;
      if (prev == "." || prev == "->") {
        const std::size_t s = chain_start(toks, i);
        if (s >= 2 && (toks[s - 1].text == "." || toks[s - 1].text == "->"))
          continue;  // chain off an expression: unresolved
        if (s == i) continue;
        const auto it = env.find(toks[s].text);
        if (it == env.end()) continue;
        const ClassSym* base = index_.find_class(it->second);
        if (!base) continue;
        for (const ClassSym* c : with_derived(base))
          callee_keys.push_back(fn_key(c, t));
        label = it->second + "::" + t;
      } else if (prev == "::") {
        if (i < 2 || toks[i - 2].kind != Token::Kind::ident) continue;
        const ClassSym* base = index_.find_class(toks[i - 2].text);
        if (!base) continue;
        callee_keys.push_back(fn_key(base, t));
        label = base->name + "::" + t;
      } else {
        // Unqualified: a method of the enclosing class, or a free
        // function somewhere in the index.
        if (def.cls && index_.method_declaration(*def.cls, t)) {
          callee_keys.push_back(fn_key(def.cls, t));
          label = def.cls->name + "::" + t;
        } else {
          callee_keys.push_back(std::string("::") + t);
        }
      }
      const auto held = held_now();
      if (!callee_keys.empty())
        calls_[key].push_back(
            {std::move(callee_keys), held, file.rel, toks[i].line, label});
    }
  }

  void declared_edges() {
    for (const auto& f : index_.files())
      for (const auto& c : f.classes)
        for (const auto& m : c.members) {
          if (m.annotations.empty() || !is_mutex_type(m.type)) continue;
          for (const auto& to :
               annotation_nodes(m.annotations, "ACQUIRED_BEFORE", &c))
            edges_.push_back({c.name + "::" + m.name, to, f.rel, m.line,
                              "ACQUIRED_BEFORE", true});
          for (const auto& from :
               annotation_nodes(m.annotations, "ACQUIRED_AFTER", &c))
            edges_.push_back({from, c.name + "::" + m.name, f.rel, m.line,
                              "ACQUIRED_AFTER", true});
        }
  }

  void propagate() {
    trans_ = direct_;
    bool changed = true;
    int guard = 0;
    while (changed && ++guard < 64) {
      changed = false;
      for (const auto& [caller, sites] : calls_) {
        auto& mine = trans_[caller];
        for (const CallSite& site : sites)
          for (const auto& callee : site.callee_keys) {
            const auto it = trans_.find(callee);
            if (it == trans_.end()) continue;
            for (const auto& n : it->second)
              changed |= mine.insert(n).second;
          }
      }
    }
  }

  void call_edges() {
    for (const auto& [caller, sites] : calls_) {
      (void)caller;
      for (const CallSite& site : sites) {
        if (site.held.empty()) continue;
        std::set<std::string> acquired;
        for (const auto& callee : site.callee_keys) {
          const auto it = trans_.find(callee);
          if (it == trans_.end()) continue;
          acquired.insert(it->second.begin(), it->second.end());
        }
        for (const auto& h : site.held)
          for (const auto& n : acquired)
            if (n != h)
              edges_.push_back({h, n, site.file, site.line, site.label,
                                false});
      }
    }
  }

  /// Deduplicated adjacency with the first witness per edge.
  std::map<std::string, std::map<std::string, const Edge*>> adjacency()
      const {
    std::map<std::string, std::map<std::string, const Edge*>> adj;
    for (const Edge& e : edges_) {
      auto& row = adj[e.from];
      if (!row.count(e.to)) row[e.to] = &e;
    }
    return adj;
  }
};

std::vector<Diagnostic> LockOrderAnalysis::diagnostics() const {
  std::vector<Diagnostic> out;
  const auto adj = adjacency();
  // DFS cycle detection; report each cycle once (keyed by its node set).
  std::map<std::string, int> color;  // 0 white, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::set<std::string> reported;

  std::function<void(const std::string&)> visit =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        const auto it = adj.find(node);
        if (it != adj.end()) {
          for (const auto& [to, edge] : it->second) {
            if (color[to] == 1) {
              // Back edge: the cycle is stack[pos(to)..] + to.
              auto at = std::find(stack.begin(), stack.end(), to);
              std::vector<std::string> cycle(at, stack.end());
              std::vector<std::string> sorted = cycle;
              std::sort(sorted.begin(), sorted.end());
              std::string cycle_key;
              for (const auto& n : sorted) cycle_key += n + "|";
              if (reported.insert(cycle_key).second) {
                std::string path;
                for (const auto& n : cycle) path += n + " -> ";
                path += to;
                std::string msg = "lock-order cycle (potential deadlock): " +
                                  path;
                if (!edge->via.empty())
                  msg += " — closing edge via " + edge->via;
                out.push_back({edge->file, edge->line, kRule, msg});
              }
            } else if (color[to] == 0) {
              visit(to);
            }
          }
        }
        stack.pop_back();
        color[node] = 2;
      };
  for (const auto& [node, row] : adj) {
    (void)row;
    if (color[node] == 0) visit(node);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.file != b.file ? a.file < b.file : a.line < b.line;
  });
  return out;
}

std::string LockOrderAnalysis::dot() const {
  const auto adj = adjacency();
  std::ostringstream out;
  out << "digraph lock_order {\n";
  out << "  rankdir=LR;\n";
  out << "  node [shape=box, fontname=\"monospace\", fontsize=10];\n";
  for (const auto& [from, row] : adj)
    for (const auto& [to, edge] : row) {
      out << "  \"" << from << "\" -> \"" << to << "\" [label=\""
          << edge->file << ":" << edge->line << "\"";
      if (edge->declared) out << ", style=dashed";
      out << "];\n";
    }
  out << "}\n";
  return out.str();
}

}  // namespace

std::vector<Diagnostic> check_lock_order(const SemanticIndex& index) {
  return LockOrderAnalysis(index).diagnostics();
}

std::vector<Diagnostic> check_lock_order(const std::string& root) {
  return check_lock_order(SemanticIndex::build(root));
}

std::string lock_order_dot(const SemanticIndex& index) {
  return LockOrderAnalysis(index).dot();
}

}  // namespace bitio::lint
