// Fig 7: BIT1 write throughput with the Blosc compressor and one
// aggregator, Dardel, 1..200 nodes.
//
// Paper shape: original I/O is inconsistent and peaks ~0.54 GiB/s around 40
// nodes; both openPMD+BP4 configurations (with and without Blosc) are
// faster and smoother from 1-10 nodes; with compression + 1 AGGR the curve
// flattens (single-writer bound) and can dip below original at high node
// counts — compression and aggregation trade throughput for storage.
#include "bench_common.hpp"

using namespace bitio;
using namespace bitio::benchkit;

int main() {
  print_header(
      "Fig 7 — write throughput with Blosc + 1 AGGR, Dardel (GiB/s)",
      "openPMD curves smooth; Blosc+1AGGR flattens at the single-writer "
      "bound and can fall below original at high node counts");
  const auto profile = fsim::dardel();
  TextTable table;
  table.header({"Nodes", "Original I/O", "openPMD+BP4+1AGGR",
                "openPMD+BP4+Blosc+1AGGR"});
  for (int nodes : kPaperNodeCounts) {
    const auto spec = core::ScaleSpec::throughput(nodes);
    const auto original = core::run_original_epoch(profile, spec);
    const auto plain =
        core::run_openpmd_epoch(profile, spec, openpmd_config(1));
    const auto blosc =
        core::run_openpmd_epoch(profile, spec, openpmd_config(1, "blosc"));
    table.row({std::to_string(nodes), gibps(original.write_gibps),
               gibps(plain.write_gibps), gibps(blosc.write_gibps)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
