// Topology sweep: flat vs two-level aggregation at 1K / 10K / 50K simulated
// ranks on the Dardel node hierarchy (128 ranks/node), plus a live-mode
// 50K-rank gather run on the event-driven smpi scheduler's bounded worker
// pool.
//
// Model mode drives core::run_openpmd_epoch — every structural piece of the
// write path (aggregation mapping, gather hops, chunk metadata, file
// population) executes for real with size-only payloads, and the queueing
// replay scores the trace.  Three configurations per scale:
//
//   legacy     topology = "flat"    no gather is modelled — the pre-topology
//                                   baseline (trace and container bytes are
//                                   identical to it by construction)
//   flat       topology = "dardel"  every remote rank sends its chunk to its
//                                   aggregator directly over the NIC
//   two_level  topology = "dardel"  ranks fold into their node leader over
//                                   shm, one NIC transfer per node follows
//
// Live mode runs the same two-level gather shape as 50,000 resumable rank
// tasks (send-to-leader, leader fan-in, global exchange of node sums) on a
// bounded pool and checks the reduction plus the OS thread ceiling.
//
// `topo_sweep --json` emits the whole report as JSON
// (scripts/bench_report.sh captures it as BENCH_topo.json).  The sanity
// gate is in-band: on a multi-node topology with >= 16 ranks/node the
// two-level curve must be at least as fast as flat at >= 10K ranks, and the
// live run must finish on the bounded pool — any violation exits nonzero.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "darshan/darshan.hpp"
#include "smpi/sched.hpp"
#include "topo/topology.hpp"
#include "util/json.hpp"

using namespace bitio;
using namespace bitio::benchkit;

namespace {

constexpr int kRanksPerNode = 128;  // Dardel: 2x AMD EPYC 7742

struct SweepRow {
  std::string label;        // legacy | flat | two_level
  std::string topology;
  std::string aggregation;
  int ranks = 0;
  int nodes = 0;
  int aggregators = 0;
  core::EpochResult result;
};

SweepRow run_epoch(const std::string& label, const std::string& topology,
                   const std::string& aggregation, int nodes,
                   int aggregators) {
  SweepRow row;
  row.label = label;
  row.topology = topology;
  row.aggregation = aggregation;
  row.nodes = nodes;
  row.ranks = nodes * kRanksPerNode;
  row.aggregators = aggregators;

  core::Bit1IoConfig config = openpmd_config(aggregators);
  config.aggregation = aggregation;
  config.topology = topology;

  const auto profile = fsim::dardel();
  const auto spec = core::ScaleSpec::throughput(nodes);
  row.result = core::run_openpmd_epoch(profile, spec, config);
  return row;
}

// --- live mode: the two-level gather as 50K scheduler tasks ----------------

std::vector<std::byte> bytes_of_u64(std::uint64_t value) {
  std::vector<std::byte> out(sizeof(value));
  std::memcpy(out.data(), &value, sizeof(value));
  return out;
}

std::uint64_t u64_of(const std::vector<std::byte>& bytes) {
  std::uint64_t value = 0;
  if (bytes.size() == sizeof(value))
    std::memcpy(&value, bytes.data(), sizeof(value));
  return value;
}

/// One rank of the live gather: non-leaders send their contribution to the
/// node leader; leaders fan in, then every rank joins one exchange where
/// leaders publish the node sums; everyone checks the global reduction.
class GatherRank final : public smpi::sched::RankProgram {
 public:
  GatherRank(int nranks, const topo::Mapper& mapper)
      : nranks_(nranks), mapper_(mapper) {}

  smpi::sched::Action step(smpi::sched::RankCtx& ctx) override {
    using smpi::sched::Action;
    ctx.check();
    const int rank = ctx.rank();
    const int leader = mapper_.leader_of(rank);
    if (rank != leader) {
      switch (state_++) {
        case 0:
          return Action::send(leader, bytes_of_u64(std::uint64_t(rank)));
        case 1:
          return Action::exchange({});
        default:
          ok_ = check_total(ctx);
          return Action::finish();
      }
    }
    const int members = mapper_.ranks_on_node(mapper_.node_of(rank));
    if (state_ == 0) sum_ = std::uint64_t(rank);
    if (state_ < members - 1) {
      // Fan in from the node's other ranks, one mailbox at a time; the
      // payload of the recv the previous step parked on arrives first.
      if (state_ > 0) sum_ += u64_of(ctx.take_recv());
      return Action::recv(leader + 1 + state_++);
    }
    switch (state_++ - (members - 1)) {
      case 0:
        if (members > 1) sum_ += u64_of(ctx.take_recv());
        return Action::exchange(bytes_of_u64(sum_));
      default:
        ok_ = check_total(ctx);
        return Action::finish();
    }
  }

  bool ok() const { return ok_; }

 private:
  bool check_total(smpi::sched::RankCtx& ctx) const {
    std::uint64_t total = 0;
    for (const auto& slot : ctx.exchanged()) total += u64_of(slot);
    const std::uint64_t n = std::uint64_t(nranks_);
    return total == n * (n - 1) / 2;
  }

  const int nranks_;
  const topo::Mapper& mapper_;
  int state_ = 0;
  std::uint64_t sum_ = 0;
  bool ok_ = false;
};

int os_thread_count() {
  // Host-side probe of the bench process itself, not simulated storage.
  std::ifstream status("/proc/self/status");  // lint: allow-raw-io
  std::string line;
  while (std::getline(status, line))
    if (line.rfind("Threads:", 0) == 0)
      return std::atoi(line.c_str() + 8);
  return -1;
}

struct LiveRun {
  int ranks = 0;
  int workers = 0;
  double seconds = 0.0;
  int threads_before = 0;
  int peak_threads = 0;
  bool reduction_ok = false;
  bool thread_bound_ok = false;
};

LiveRun run_live(int nranks, int workers) {
  LiveRun live;
  live.ranks = nranks;
  live.workers = workers;

  topo::Cluster cluster = topo::Cluster::preset("dardel");
  const topo::Mapper mapper(cluster, nranks);
  std::vector<GatherRank*> programs(std::size_t(nranks), nullptr);
  smpi::sched::Scheduler scheduler(nranks, [&](int rank) {
    auto program = std::make_unique<GatherRank>(nranks, mapper);
    programs[std::size_t(rank)] = program.get();
    return program;
  });

  live.threads_before = os_thread_count();
  // Sample the process thread count while the scheduler runs: the bound
  // we are demonstrating is the *peak*, not the count after the pool has
  // joined its workers.
  std::atomic<bool> done{false};
  std::atomic<int> peak{live.threads_before};
  std::thread monitor([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const int now = os_thread_count();
      int seen = peak.load(std::memory_order_relaxed);
      while (now > seen &&
             !peak.compare_exchange_weak(seen, now,
                                         std::memory_order_relaxed)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  const auto t0 = std::chrono::steady_clock::now();
  scheduler.run(workers);
  const auto t1 = std::chrono::steady_clock::now();
  done.store(true, std::memory_order_relaxed);
  monitor.join();
  live.peak_threads = peak.load();

  live.seconds = std::chrono::duration<double>(t1 - t0).count();
  live.reduction_ok = true;
  for (const auto* program : programs)
    live.reduction_ok = live.reduction_ok && program && program->ok();
  // The pool holds `workers` threads plus a small constant (the monitor,
  // bookkeeping); 50K ranks must never mean 50K threads.
  live.thread_bound_ok =
      live.peak_threads <= live.threads_before + workers + 4;
  return live;
}

// --- report ----------------------------------------------------------------

int run_sweep(bool as_json) {
  const int node_counts[] = {8, 80, 400};  // 1024 / 10240 / 51200 ranks
  struct Mode {
    const char* label;
    const char* topology;
    const char* aggregation;
  };
  const Mode modes[] = {{"legacy", "flat", "flat"},
                        {"flat", "dardel", "flat"},
                        {"two_level", "dardel", "two_level"}};

  std::vector<SweepRow> rows;
  for (int nodes : node_counts)
    for (const Mode& mode : modes)
      rows.push_back(run_epoch(mode.label, mode.topology, mode.aggregation,
                               nodes, 2 * nodes));

  const int live_workers = 16;
  const LiveRun live = run_live(50'000, live_workers);

  // Sanity gate: with >= 16 ranks/node, two-level must not lose to flat
  // aggregation on the same hierarchical topology at >= 10K ranks.
  bool two_level_ok = true;
  for (const SweepRow& two : rows) {
    if (two.label != "two_level" || two.ranks < 10'000 ||
        kRanksPerNode < 16)
      continue;
    for (const SweepRow& flat : rows)
      if (flat.label == "flat" && flat.ranks == two.ranks &&
          flat.aggregators == two.aggregators)
        two_level_ok = two_level_ok &&
                       two.result.write_gibps >= flat.result.write_gibps;
  }
  const bool live_ok = live.reduction_ok && live.thread_bound_ok;
  const bool all_ok = two_level_ok && live_ok;

  if (as_json) {
    Json doc{JsonObject{}};
    doc["bench"] = "topo_sweep";
    doc["profile"] = "dardel";
    doc["ranks_per_node"] = kRanksPerNode;
    JsonArray sweep;
    for (const SweepRow& row : rows) {
      Json entry{JsonObject{}};
      entry["label"] = row.label;
      entry["topology"] = row.topology;
      entry["aggregation"] = row.aggregation;
      entry["aggregation_tag"] = darshan::aggregation_tag(row.aggregation);
      entry["ranks"] = row.ranks;
      entry["nodes"] = row.nodes;
      entry["aggregators"] = row.aggregators;
      entry["write_gibps"] = row.result.write_gibps;
      entry["makespan_s"] = row.result.makespan_s;
      entry["bytes_written"] = row.result.bytes_written;
      entry["bytes_gathered"] = row.result.bytes_gathered;
      entry["total_files"] = row.result.total_files;
      sweep.push_back(std::move(entry));
    }
    doc["sweep"] = std::move(sweep);
    Json live_doc{JsonObject{}};
    live_doc["ranks"] = live.ranks;
    live_doc["workers"] = live.workers;
    live_doc["seconds"] = live.seconds;
    live_doc["threads_before"] = live.threads_before;
    live_doc["peak_threads"] = live.peak_threads;
    live_doc["reduction_ok"] = live.reduction_ok;
    live_doc["thread_bound_ok"] = live.thread_bound_ok;
    doc["live_50k"] = std::move(live_doc);
    doc["two_level_beats_flat_at_10k"] = two_level_ok;
    doc["all_checks_ok"] = all_ok;
    std::printf("%s\n", doc.dump(2).c_str());
  } else {
    print_header(
        "Topology sweep — flat vs two-level aggregation, Dardel hierarchy",
        "one NIC transfer per node beats per-rank NIC messages once nodes "
        "are wide");
    TextTable table;
    table.header({"mode", "ranks", "nodes", "aggr", "GiB/s", "gathered",
                  "files"});
    for (const SweepRow& row : rows) {
      table.row({row.label, std::to_string(row.ranks),
                 std::to_string(row.nodes), std::to_string(row.aggregators),
                 gibps(row.result.write_gibps),
                 strfmt("%.1f GiB",
                        double(row.result.bytes_gathered) / double(GiB)),
                 std::to_string(row.result.total_files)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "live 50K-rank gather on %d workers: %.2f s, peak threads %d, "
        "reduction %s\n",
        live.workers, live.seconds, live.peak_threads,
        live.reduction_ok ? "ok" : "FAIL");
    std::printf(two_level_ok
                    ? "two-level >= flat at >= 10K ranks: ok\n"
                    : "WARNING: two-level lost to flat at >= 10K ranks\n");
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--json") return run_sweep(true);
  return run_sweep(false);
}
