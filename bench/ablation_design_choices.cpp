// Ablations of the design choices DESIGN.md calls out, beyond the paper's
// own figures:
//   1. BP4 vs BP5 engine (the paper argues BP4's aggressive buffering wins
//      at scale; BP5 trades throughput for bounded host memory).
//   2. Blosc vs bzip2 as the ADIOS2 operator (speed/ratio trade-off).
//   3. Checkpoint aggregation: shared file (1 AGGR) vs node-level.
//   4. The model-driven TuningAdvisor vs the paper's hand-tuned optimum.
#include "bench_common.hpp"

using namespace bitio;
using namespace bitio::benchkit;

int main() {
  const auto profile = fsim::dardel();
  const auto spec = core::ScaleSpec::throughput(200);

  print_header("Ablation 1 — BP4 vs BP5 engine, Dardel, 200 nodes",
               "BP4 chosen by the paper for aggressive I/O optimization");
  {
    TextTable table;
    table.header({"Engine", "GiB/s", "files"});
    for (const char* engine : {"bp4", "bp5"}) {
      const auto result = core::run_openpmd_epoch(
          profile, spec, openpmd_config(400, "none", engine));
      table.row({engine, gibps(result.write_gibps),
                 std::to_string(result.total_files)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  print_header("Ablation 2 — operator choice at 1 AGGR, Dardel, 200 nodes",
               "Blosc: fast, ~11%% smaller; bzip2: slow, ~no gain on BIT1 "
               "data (Table II)");
  {
    TextTable table;
    table.header({"Operator", "GiB/s", "avg file", "compress s (sum)"});
    for (const char* codec : {"none", "blosc", "bzip2"}) {
      const auto result =
          core::run_openpmd_epoch(profile, spec, openpmd_config(1, codec));
      const auto it = result.cpu_by_tag.find("compress");
      table.row({codec, gibps(result.write_gibps),
                 format_bytes(result.avg_file_bytes),
                 strfmt("%.2f", it == result.cpu_by_tag.end() ? 0.0
                                                              : it->second)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  print_header("Ablation 3 — checkpoint aggregation, Dardel, 200 nodes",
               "shared checkpoint file (1 AGGR) vs node-level subfiles");
  {
    TextTable table;
    table.header({"Checkpoint aggregators", "GiB/s", "files"});
    for (int ckpt_agg : {1, 200}) {
      auto config = openpmd_config(400);
      config.checkpoint_aggregators = ckpt_agg;
      const auto result = core::run_openpmd_epoch(profile, spec, config);
      table.row({std::to_string(ckpt_agg), gibps(result.write_gibps),
                 std::to_string(result.total_files)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  print_header("Ablation 4 — TuningAdvisor vs the paper's optimum",
               "the advisor should find ~2 aggregators/node and modest "
               "striping, like Section IV does by hand");
  {
    // Search at a reduced scale so the grid stays cheap.
    auto search_spec = core::ScaleSpec::throughput(20);
    core::TuningSpace space;
    space.aggregators = {1, 20, 40, 80};
    space.stripe_counts = {1, 8};
    space.stripe_sizes = {1 * MiB, 16 * MiB};
    space.codecs = {"none", "blosc"};
    const auto report =
        core::tune_io(profile, search_spec, openpmd_config(0), space);
    std::printf("explored %zu configurations; best: %s at %s GiB/s\n",
                report.explored.size(), report.best.config.label().c_str(),
                gibps(report.best.result.write_gibps).c_str());
    TextTable table;
    table.header({"Configuration", "GiB/s"});
    for (std::size_t i = 0; i < std::min<std::size_t>(5, report.explored.size());
         ++i) {
      table.row({report.explored[i].config.label(),
                 gibps(report.explored[i].result.write_gibps)});
    }
    std::printf("%s", table.render().c_str());
  }
  return 0;
}
