// I/O-path sweep: per-op pwrites vs batched queue-pair submission (with and
// without drain-lane coalescing) on a metadata-heavy stepping workload at
// 64 / 128 / 256 simulated ranks on the Dardel profile.
//
// The workload is the shape that hurts the per-op path most: many small
// steps, so every step pays rank 0's two tiny metadata appends (md.0 record
// + md.idx entry).  On the posix path each of those is a synchronous
// small-record round trip (small_write_meta_s, ~0.55 ms on Dardel) every
// step; the queue pair rides both behind one ring doorbell (batch_setup_s
// + 2 x sqe_overhead_s, microseconds).  On the data lanes the ring submits
// one sqe per marshalled chunk extent — without coalescing each extent is
// its own device record with its own RPC cost, with coalescing adjacent
// extents merge into one vectored record per aggregator step.  Payloads
// are synthetic (size-only) — every structural piece of the write path
// executes for real and the queueing replay scores the trace.
//
// In-band gates (exit nonzero on violation):
//   * determinism: with real payloads, the batched and coalesced containers
//     are byte-identical to the per-op writer's container;
//   * batched >= per-op write throughput at every swept scale (64+ ranks);
//   * batched+coalesced >= 2x per-op write throughput at every scale;
//   * the coalesced run actually records coalesced bytes.
//
// `iopath_sweep --json` emits the report as JSON (scripts/bench_report.sh
// captures it as BENCH_iopath.json).
#include <cstdio>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bp/writer.hpp"
#include "darshan/darshan.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

using namespace bitio;
using namespace bitio::benchkit;

namespace {

constexpr int kSteps = 30;
constexpr std::uint64_t kChunkBytes = 64 * 1024;  // per rank per step
constexpr int kRanksPerAggregator = 8;

struct Mode {
  const char* label;
  int batch_depth;  // 0 = per-op posix path
  bool coalesce;
};

constexpr Mode kModes[] = {{"per_op", 0, false},
                           {"batched", 64, false},
                           {"batched_coalesced", 64, true}};

bp::EngineConfig mode_config(const Mode& mode, int ranks) {
  bp::EngineConfig config;
  config.num_aggregators = std::max(1, ranks / kRanksPerAggregator);
  config.ranks_per_node = 128;
  // Async drain: each aggregator's step buffer (8 x 64 KiB chunk extents)
  // leaves the ring as adjacent sqes — coalescing merges them back into
  // one vectored record per step.
  config.async_write = true;
  config.buffer_chunk_mb = 1;
  config.io_batch_depth = mode.batch_depth;
  config.coalesce_writes = mode.coalesce;
  return config;
}

struct SweepRow {
  std::string label;
  int ranks = 0;
  int aggregators = 0;
  double makespan_s = 0.0;
  double write_gibps = 0.0;
  std::uint64_t bytes_written = 0;
  std::uint64_t batches_submitted = 0;
  std::uint64_t batched_sqes = 0;
  std::uint64_t coalesced_bytes = 0;
};

/// One size-only stepping run: every rank puts one kChunkBytes chunk per
/// step, the writer drains on its async lanes, and the replay scores the
/// trace.  Darshan capture attributes the batch counters.
SweepRow run_case(const Mode& mode, int ranks) {
  SweepRow row;
  row.label = mode.label;
  row.ranks = ranks;

  // 48 OSTs matches the dardel profile's Lustre, so the subfiles spread
  // out instead of piling contention onto a handful of objects.
  fsim::SharedFs fs(48, /*store_data=*/false);
  const bp::EngineConfig config = mode_config(mode, ranks);
  row.aggregators = config.num_aggregators;
  {
    bp::Writer writer =
        bp::Writer::open(fs, "out/iopath.bp4", config, ranks);
    const std::uint64_t elems = kChunkBytes / sizeof(float);
    for (std::uint64_t step = 0; step < kSteps; ++step) {
      writer.begin_step(step);
      for (int r = 0; r < ranks; ++r)
        writer.put_synthetic(r, "vdf", bp::Datatype::float32,
                             {std::uint64_t(ranks) * elems},
                             {std::uint64_t(r) * elems}, {elems});
      writer.end_step();
    }
    writer.close();
  }

  const auto profile = fsim::dardel();
  const auto replay =
      fsim::replay_trace(profile, fs.store(), fs.trace(), ranks);
  row.makespan_s = replay.makespan;
  row.bytes_written = replay.bytes_written;
  row.write_gibps =
      replay.makespan > 0
          ? double(replay.bytes_written) / double(GiB) / replay.makespan
          : 0.0;

  darshan::JobInfo job;
  job.nprocs = std::uint32_t(ranks);
  const darshan::DarshanLog log = darshan::capture(fs, replay, job);
  for (const auto& record : log.records) {
    row.batches_submitted += record.batches_submitted;
    row.batched_sqes += record.batched_sqes;
    row.coalesced_bytes += record.coalesced_bytes;
  }
  return row;
}

/// Real-payload differential: the three modes must store byte-identical
/// containers — batching and coalescing change only the trace shape.
std::map<std::string, std::vector<std::uint8_t>> container_bytes(
    const Mode& mode) {
  const int ranks = 8;
  fsim::SharedFs fs(4);
  bp::EngineConfig config = mode_config(mode, ranks);
  config.num_aggregators = 2;
  bp::Writer writer = bp::Writer::open(fs, "out/ident.bp4", config, ranks);
  for (std::uint64_t step = 0; step < 3; ++step) {
    writer.begin_step(step);
    for (int r = 0; r < ranks; ++r) {
      std::vector<float> local(64);
      std::iota(local.begin(), local.end(), float(r * 64 + step));
      writer.put<float>(r, "density", {std::uint64_t(ranks) * 64},
                        {std::uint64_t(r) * 64}, {64}, local);
    }
    writer.end_step();
  }
  writer.close();
  std::map<std::string, std::vector<std::uint8_t>> bytes;
  for (const fsim::FileNode* node : fs.store().list_recursive("out/ident.bp4"))
    bytes[node->path] = node->data;
  return bytes;
}

int run_sweep(bool as_json) {
  const int rank_counts[] = {64, 128, 256};

  std::vector<SweepRow> rows;
  for (int ranks : rank_counts)
    for (const Mode& mode : kModes) rows.push_back(run_case(mode, ranks));

  const auto row_of = [&](const char* label, int ranks) -> const SweepRow& {
    for (const SweepRow& row : rows)
      if (row.label == label && row.ranks == ranks) return row;
    throw UsageError("iopath_sweep: missing row");
  };

  // Gates (all scales swept here are >= 64 ranks).
  bool batched_ok = true, speedup_ok = true, coalesce_seen = false;
  for (int ranks : rank_counts) {
    const SweepRow& per_op = row_of("per_op", ranks);
    const SweepRow& batched = row_of("batched", ranks);
    const SweepRow& coalesced = row_of("batched_coalesced", ranks);
    batched_ok = batched_ok && batched.write_gibps >= per_op.write_gibps;
    speedup_ok =
        speedup_ok && coalesced.write_gibps >= 2.0 * per_op.write_gibps;
    coalesce_seen = coalesce_seen || coalesced.coalesced_bytes > 0;
  }

  const auto per_op_bytes = container_bytes(kModes[0]);
  const bool identity_ok = !per_op_bytes.empty() &&
                           container_bytes(kModes[1]) == per_op_bytes &&
                           container_bytes(kModes[2]) == per_op_bytes;

  const bool all_ok =
      batched_ok && speedup_ok && coalesce_seen && identity_ok;

  if (as_json) {
    Json doc{JsonObject{}};
    doc["bench"] = "iopath_sweep";
    doc["profile"] = "dardel";
    doc["steps"] = kSteps;
    doc["chunk_bytes"] = kChunkBytes;
    JsonArray sweep;
    for (const SweepRow& row : rows) {
      Json entry{JsonObject{}};
      entry["label"] = row.label;
      entry["ranks"] = row.ranks;
      entry["aggregators"] = row.aggregators;
      entry["makespan_s"] = row.makespan_s;
      entry["write_gibps"] = row.write_gibps;
      entry["bytes_written"] = row.bytes_written;
      entry["batches_submitted"] = row.batches_submitted;
      entry["batched_sqes"] = row.batched_sqes;
      entry["coalesced_bytes"] = row.coalesced_bytes;
      entry["speedup_vs_per_op"] =
          row_of("per_op", row.ranks).makespan_s > 0 && row.makespan_s > 0
              ? row_of("per_op", row.ranks).makespan_s / row.makespan_s
              : 0.0;
      sweep.push_back(std::move(entry));
    }
    doc["sweep"] = std::move(sweep);
    doc["containers_byte_identical"] = identity_ok;
    doc["batched_not_slower_64plus"] = batched_ok;
    doc["coalesced_2x_per_op_64plus"] = speedup_ok;
    doc["coalesced_bytes_observed"] = coalesce_seen;
    doc["all_checks_ok"] = all_ok;
    std::printf("%s\n", doc.dump(2).c_str());
  } else {
    print_header(
        "I/O-path sweep — per-op pwrites vs batched queue-pair submission",
        "one ring doorbell amortizes the per-step metadata round trips; "
        "coalescing merges adjacent drain slices into vectored records");
    TextTable table;
    table.header({"mode", "ranks", "aggr", "makespan", "GiB/s", "batches",
                  "sqes", "coalesced", "speedup"});
    for (const SweepRow& row : rows) {
      const SweepRow& base = row_of("per_op", row.ranks);
      table.row({row.label, std::to_string(row.ranks),
                 std::to_string(row.aggregators),
                 strfmt("%.1f ms", row.makespan_s * 1e3),
                 gibps(row.write_gibps),
                 std::to_string(row.batches_submitted),
                 std::to_string(row.batched_sqes),
                 strfmt("%.1f KiB", double(row.coalesced_bytes) / 1024.0),
                 strfmt("%.2fx", row.makespan_s > 0
                                     ? base.makespan_s / row.makespan_s
                                     : 0.0)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("containers byte-identical across modes: %s\n",
                identity_ok ? "ok" : "FAIL");
    std::printf("batched >= per-op at 64+ ranks: %s\n",
                batched_ok ? "ok" : "FAIL");
    std::printf("batched+coalesced >= 2x per-op at 64+ ranks: %s\n",
                speedup_ok ? "ok" : "FAIL");
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--json") return run_sweep(true);
  return run_sweep(false);
}
