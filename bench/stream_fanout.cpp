// Fan-out study for the miniSST stream engine + in-situ query service: one
// producer publishes diagnostics steps into the bounded channel while a
// deliberately slow direct consumer exercises the slow-reader policy, then
// thousands of simulated concurrent clients (logical clients multiplexed
// over a worker-thread pool) hammer QueryService::query and are served
// decoded blocks from the sharded LRU cache.  `stream_fanout --json` emits
// the clients x policy sweep as JSON (scripts/bench_report.sh captures it
// as BENCH_stream.json).
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "bench_common.hpp"
#include "bp/engine.hpp"
#include "bp/query.hpp"
#include "bp/stream.hpp"
#include "darshan/darshan.hpp"
#include "util/json.hpp"

using namespace bitio;
using namespace bitio::benchkit;

namespace {

constexpr int kRanks = 4;
constexpr std::uint64_t kSteps = 16;
constexpr std::uint64_t kElems = 8192;  // floats per rank per step
constexpr int kQueriesPerClient = 4;

struct FanoutRun {
  std::string policy;
  int clients = 0;
  std::uint64_t queries = 0;
  std::uint64_t null_blocks = 0;  // aged-out / disconnected lookups
  double seconds = 0.0;
  double qps = 0.0;
  double hit_rate = 0.0;
  std::uint64_t bytes_decoded = 0;
  std::uint64_t steps_lost = 0;
  int peak_depth = 0;
  std::uint64_t slow_dropped = 0;
  bool slow_disconnected = false;
  bool payload_ok = true;
  bool policy_ok = true;
};

/// One producer, one slow direct consumer (the policy victim), one query
/// service, `clients` logical clients over a bounded worker pool.
FanoutRun run_fanout(const std::string& policy, int clients) {
  FanoutRun run;
  run.policy = policy;
  run.clients = clients;

  fsim::SharedFs fs(8);
  bp::EngineConfig config;
  config.ranks_per_node = kRanks;
  config.codec = "blosc";
  config.stream_max_steps = 4;
  config.stream_policy = policy;
  auto engine = bp::make_engine("stream", fs, "fanout.stream", config,
                                kRanks);
  auto* stream = dynamic_cast<bp::StreamEngine*>(engine.get());

  bp::QueryService::Options options;
  options.cache_bytes = 128u << 20;
  options.shards = 16;
  options.retain_steps = int(kSteps);  // keep the whole run queryable
  bp::QueryService service(*stream, 0, options);

  // The slow-reader the policy acts on: under `block` it throttles the
  // producer (bounded window), under `drop_oldest` it loses steps, under
  // `disconnect` it gets cut off.
  auto slow = engine->attach(1);
  std::thread slow_thread([&] {
    while (slow->next_step())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });

  for (std::uint64_t step = 0; step < kSteps; ++step) {
    engine->begin_step(step);
    for (int r = 0; r < kRanks; ++r) {
      std::vector<float> local(kElems);
      for (std::uint64_t i = 0; i < kElems; ++i)
        local[i] = float(step) + float(i % 97) * 0.5f;
      engine->put<float>(r, "vdf_e", {kRanks * kElems},
                         {std::uint64_t(r) * kElems}, {kElems}, local);
    }
    engine->end_step();
    // Pace the producer on the in-situ service (the primary consumer, which
    // keeps up); the slow external consumer is the one the policy acts on.
    service.wait_steps(step + 1);
  }
  engine->close();
  slow_thread.join();

  // Fan-out phase: logical clients multiplexed over a worker pool, each
  // issuing a handful of step/variable lookups.
  const int workers =
      std::min(16, std::max(2, int(std::thread::hardware_concurrency())));
  std::atomic<std::uint64_t> issued{0}, nulls{0};
  std::atomic<bool> payload_ok{true};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      for (int client = w; client < clients; client += workers) {
        for (int q = 0; q < kQueriesPerClient; ++q) {
          const std::uint64_t step =
              std::uint64_t(client + q) % kSteps;
          const auto block = service.query(step, "vdf_e");
          issued.fetch_add(1, std::memory_order_relaxed);
          if (!block) {
            nulls.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          float first = 0.f;
          std::memcpy(&first, block->data(), sizeof(float));
          if (block->size() != kRanks * kElems * sizeof(float) ||
              first != float(step))
            payload_ok.store(false, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : pool) thread.join();
  const auto t1 = std::chrono::steady_clock::now();

  run.queries = issued.load();
  run.null_blocks = nulls.load();
  run.seconds = std::chrono::duration<double>(t1 - t0).count();
  run.qps = run.seconds > 0 ? double(run.queries) / run.seconds : 0.0;
  const auto stats = service.stats();
  run.hit_rate = stats.hit_rate();
  run.bytes_decoded = stats.bytes_decoded;
  run.steps_lost = stream->channel().steps_lost();
  run.peak_depth = stream->channel().peak_depth();
  run.slow_dropped = slow->steps_dropped();
  run.slow_disconnected = slow->disconnected();
  run.payload_ok = payload_ok.load() && run.null_blocks == 0;

  // What each policy must have demonstrably done to the slow consumer.
  if (policy == "block")
    run.policy_ok = run.steps_lost == 0 && run.peak_depth <= 4;
  else if (policy == "drop_oldest")
    run.policy_ok = run.slow_dropped > 0 && !run.slow_disconnected;
  else
    run.policy_ok = run.slow_disconnected;
  return run;
}

int run_sweep(bool as_json) {
  const char* policies[] = {"block", "drop_oldest", "disconnect"};
  const int client_counts[] = {250, 1000, 4000};

  std::vector<FanoutRun> runs;
  for (const char* policy : policies)
    for (int clients : client_counts)
      runs.push_back(run_fanout(policy, clients));

  bool all_ok = true;
  bool thousand_ok = false;
  for (const auto& run : runs) {
    const bool ok = run.payload_ok && run.policy_ok;
    all_ok = all_ok && ok;
    if (run.clients >= 1000 && ok) thousand_ok = true;
  }

  if (as_json) {
    Json doc{JsonObject{}};
    doc["bench"] = "stream_fanout";
    doc["engine"] = "stream";
    doc["engine_tag"] = darshan::engine_tag("stream");
    doc["steps"] = kSteps;
    doc["ranks"] = kRanks;
    doc["bytes_per_step"] = kRanks * kElems * sizeof(float);
    doc["queries_per_client"] = kQueriesPerClient;
    JsonArray sweep;
    for (const auto& run : runs) {
      Json row{JsonObject{}};
      row["policy"] = run.policy;
      row["clients"] = run.clients;
      row["queries"] = run.queries;
      row["null_blocks"] = run.null_blocks;
      row["seconds"] = run.seconds;
      row["queries_per_s"] = run.qps;
      row["cache_hit_rate"] = run.hit_rate;
      row["bytes_decoded"] = run.bytes_decoded;
      row["steps_lost"] = run.steps_lost;
      row["peak_window_depth"] = run.peak_depth;
      row["slow_consumer_dropped"] = run.slow_dropped;
      row["slow_consumer_disconnected"] = run.slow_disconnected;
      row["payload_ok"] = run.payload_ok;
      row["policy_ok"] = run.policy_ok;
      sweep.push_back(std::move(row));
    }
    doc["sweep"] = std::move(sweep);
    doc["sustained_1000_clients_ok"] = thousand_ok;
    doc["all_checks_ok"] = all_ok;
    std::printf("%s\n", doc.dump(2).c_str());
  } else {
    print_header(
        "miniSST fan-out — concurrent query clients x slow-reader policy",
        "bounded channel + sharded decoded-block LRU serve thousands of "
        "in-situ clients");
    TextTable table;
    table.header({"policy", "clients", "queries", "kq/s", "hit_rate",
                  "lost", "dropped", "cut", "ok"});
    for (const auto& run : runs) {
      table.row({run.policy, strfmt("%d", run.clients),
                 strfmt("%llu", (unsigned long long)run.queries),
                 strfmt("%.1f", run.qps / 1e3),
                 strfmt("%.3f", run.hit_rate),
                 strfmt("%llu", (unsigned long long)run.steps_lost),
                 strfmt("%llu", (unsigned long long)run.slow_dropped),
                 run.slow_disconnected ? "yes" : "no",
                 run.payload_ok && run.policy_ok ? "ok" : "FAIL"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(thousand_ok
                    ? ">= 1000 concurrent clients sustained\n"
                    : "WARNING: no clean >= 1000-client run\n");
  }
  return all_ok && thousand_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--json") return run_sweep(true);
  return run_sweep(false);
}
