// Incremental-checkpoint sweep: full-vs-delta bytes across
// checkpoint_full_interval, under clean and corrupted-epoch conditions.
//
// Each cell runs the ionization use case on 2 simulated ranks with a
// 4-step checkpoint cadence (10 epochs over 40 steps) through
// resil::CheckpointManager, sweeping checkpoint_full_interval (1 = every
// epoch self-contained, k > 1 = k-1 delta epochs between fulls).  Reported
// per cell: epochs committed, delta epochs, bytes physically stored in the
// epoch payload files, bytes the dedup referenced instead of rewriting,
// and the chain-restore outcome.  The "faulted" cells additionally rot the
// newest epoch's payload before restarting, exercising the chain-by-chain
// fallback.
//
// In-band sanity gates (a violation fails the binary, so a regression
// cannot ship a green BENCH_ckpt.json):
//   - every restore lands bit-exactly: the restored run, advanced to the
//     final step, matches an unfaulted continuous reference run
//     (RNG state, ionization tallies, every particle position);
//   - delta sweeps store no more payload bytes than the all-full sweep;
//   - every delta sweep actually dedups (dedup_bytes_saved > 0);
//   - every faulted cell falls back to an older epoch and still recovers.
#include <cstring>
#include <memory>

#include "bench_common.hpp"
#include "fsim/posix_fs.hpp"
#include "picmc/simulation.hpp"
#include "resil/checkpoint_manager.hpp"

using namespace bitio;
using namespace bitio::benchkit;

namespace {

constexpr std::uint64_t kLastStep = 40;
constexpr std::uint64_t kCadence = 4;  // steps between commits
constexpr int kRanks = 2;

picmc::SimConfig sim_case() {
  auto config = picmc::SimConfig::ionization_case(64, 16);
  config.last_step = kLastStep;
  return config;
}

struct CellResult {
  int full_interval = 0;
  bool faulted = false;
  std::uint64_t epochs = 0;
  std::uint64_t delta_epochs = 0;
  std::uint64_t bytes_stored = 0;      // payload bytes in epoch data files
  std::uint64_t dedup_saved = 0;       // bytes referenced instead of written
  std::uint64_t blocks_restored = 0;   // blocks the chain restore fetched
  std::uint64_t restored_epoch = 0;
  std::uint64_t restored_step = 0;
  bool recovered = false;
  bool bit_exact = false;
};

/// Reference trajectory: rank r of kRanks run continuously to kLastStep,
/// no checkpointing anywhere near it.
std::vector<std::unique_ptr<picmc::Simulation>> reference_run() {
  std::vector<std::unique_ptr<picmc::Simulation>> sims;
  for (int r = 0; r < kRanks; ++r) {
    sims.push_back(
        std::make_unique<picmc::Simulation>(sim_case(), r, kRanks));
    sims.back()->initialize();
    while (sims.back()->current_step() < kLastStep) sims.back()->step();
  }
  return sims;
}

bool matches_reference(picmc::Simulation& sim,
                       picmc::Simulation& reference) {
  if (sim.current_step() != reference.current_step()) return false;
  if (sim.rng().state() != reference.rng().state()) return false;
  if (sim.ionization_events() != reference.ionization_events()) return false;
  if (sim.ionized_weight() != reference.ionized_weight()) return false;
  if (sim.species_count() != reference.species_count()) return false;
  for (std::size_t s = 0; s < reference.species_count(); ++s) {
    const auto& a = sim.species(s).particles;
    const auto& b = reference.species(s).particles;
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i)
      if (a.x()[i] != b.x()[i] || a.vx()[i] != b.vx()[i] ||
          a.w()[i] != b.w()[i])
        return false;
  }
  return true;
}

CellResult run_cell(int full_interval, bool faulted,
                    std::vector<std::unique_ptr<picmc::Simulation>>& refs) {
  fsim::SharedFs fs(8);
  core::Bit1IoConfig io;
  io.checkpoint_interval = int(kCadence);
  io.checkpoint_retain = 100;  // keep every epoch: the sweep measures bytes
  io.checkpoint_full_interval = full_interval;

  std::vector<std::unique_ptr<picmc::Simulation>> sims;
  for (int r = 0; r < kRanks; ++r) {
    sims.push_back(
        std::make_unique<picmc::Simulation>(sim_case(), r, kRanks));
    sims.back()->initialize();
  }
  resil::CheckpointManager manager(fs, "run", io, kRanks);
  for (std::uint64_t step = kCadence; step <= kLastStep; step += kCadence) {
    for (auto& sim : sims) {
      while (sim->current_step() < step) sim->step();
      manager.stage(sim->rank(), *sim);
    }
    manager.commit();
  }

  CellResult cell;
  cell.full_interval = full_interval;
  cell.faulted = faulted;
  cell.epochs = manager.stats().epochs_written;
  cell.delta_epochs = manager.stats().delta_epochs;
  cell.dedup_saved = manager.stats().dedup_bytes_saved;
  for (const std::uint64_t epoch : manager.committed_epochs())
    for (const auto* node : fs.store().list_recursive(manager.epoch_dir(epoch)))
      if (node->path.find("/data.") != std::string::npos)
        cell.bytes_stored += node->size;

  const std::uint64_t newest = manager.committed_epochs().back();
  if (faulted) {
    // Rot the newest epoch's payload: restart must reject it and fall
    // back down the chain.
    for (const auto* node :
         fs.store().list_recursive(manager.epoch_dir(newest))) {
      if (node->path.find("/data.") == std::string::npos || node->size == 0)
        continue;
      fs.store().file(node->path).data[0] ^= 0x10;
      break;
    }
  }

  cell.bit_exact = true;
  for (int r = 0; r < kRanks; ++r) {
    picmc::Simulation restored(sim_case(), r, kRanks);
    restored.initialize();
    const resil::RestartReport report = manager.restore(restored);
    if (!report.recovered) return cell;  // recovered stays false
    cell.restored_epoch = report.epoch;
    cell.restored_step = report.step;
    while (restored.current_step() < kLastStep) restored.step();
    cell.bit_exact = cell.bit_exact && matches_reference(restored, *refs[r]);
  }
  cell.recovered = true;
  if (faulted) cell.bit_exact = cell.bit_exact && cell.restored_epoch < newest;
  cell.blocks_restored = manager.stats().blocks_restored;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bool json_only = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json_only = true;

  if (!json_only)
    print_header(
        "Incremental checkpoints — full interval x fault pressure",
        "delta epochs write only changed blocks; chain restore stays "
        "bit-exact and falls back past a corrupted epoch");

  auto refs = reference_run();

  TextTable table;
  table.header({"full_interval", "faulted", "epochs", "deltas", "stored",
                "dedup_saved", "restored@", "blocks", "bit_exact"});
  JsonArray cells;
  std::uint64_t all_full_bytes = 0;
  bool gates_ok = true;
  for (const bool faulted : {false, true}) {
    for (const int full_interval : {1, 2, 4, 8}) {
      const CellResult cell = run_cell(full_interval, faulted, refs);
      if (full_interval == 1 && !faulted) all_full_bytes = cell.bytes_stored;
      const bool cell_ok =
          cell.recovered && cell.bit_exact &&
          cell.bytes_stored <= all_full_bytes &&
          (full_interval == 1 || cell.dedup_saved > 0);
      gates_ok = gates_ok && cell_ok;
      table.row({strfmt("%d", cell.full_interval), cell.faulted ? "yes" : "no",
                 strfmt("%llu", (unsigned long long)cell.epochs),
                 strfmt("%llu", (unsigned long long)cell.delta_epochs),
                 strfmt("%llu", (unsigned long long)cell.bytes_stored),
                 strfmt("%llu", (unsigned long long)cell.dedup_saved),
                 strfmt("%llu", (unsigned long long)cell.restored_step),
                 strfmt("%llu", (unsigned long long)cell.blocks_restored),
                 cell.bit_exact ? "yes" : "NO"});
      JsonObject row;
      row["checkpoint_full_interval"] = Json(cell.full_interval);
      row["faulted"] = Json(cell.faulted);
      row["epochs_written"] = Json(cell.epochs);
      row["delta_epochs"] = Json(cell.delta_epochs);
      row["bytes_stored"] = Json(cell.bytes_stored);
      row["dedup_bytes_saved"] = Json(cell.dedup_saved);
      row["restored_epoch"] = Json(cell.restored_epoch);
      row["restored_step"] = Json(cell.restored_step);
      row["blocks_restored"] = Json(cell.blocks_restored);
      row["recovered"] = Json(cell.recovered);
      row["restore_bit_exact"] = Json(cell.bit_exact);
      cells.emplace_back(std::move(row));
    }
  }
  if (!json_only) std::printf("%s\n", table.render().c_str());

  JsonObject summary;
  summary["bench"] = Json("ckpt_sweep");
  summary["nranks"] = Json(kRanks);
  summary["last_step"] = Json(kLastStep);
  summary["checkpoint_cadence"] = Json(kCadence);
  summary["all_full_bytes_stored"] = Json(all_full_bytes);
  summary["all_gates_passed"] = Json(gates_ok);
  summary["cells"] = Json(std::move(cells));
  std::printf("%s\n", Json(std::move(summary)).dump(2).c_str());

  if (!json_only)
    std::printf(gates_ok
                    ? "every sweep stored <= all-full bytes and restored "
                      "bit-exactly\n"
                    : "WARNING: a checkpoint sweep violated a sanity gate\n");
  return gates_ok ? 0 : 1;
}
