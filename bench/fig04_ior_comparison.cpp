// Fig 4 + Table I: BIT1 configurations against the IOR upper bounds on
// Dardel, 1..200 nodes.
//
// Paper shape: IOR (file-per-process and shared) bounds everything from
// above; BIT1 openPMD + BP4 tracks the IOR envelope with a notably steep
// rise, while original I/O stays near the bottom.
#include "bench_common.hpp"
#include "ior/ior.hpp"

using namespace bitio;
using namespace bitio::benchkit;

int main() {
  const auto profile = fsim::dardel();

  // Table I: the exact command lines used at 200 nodes.
  print_header("Table I — IOR command lines (Dardel LFS, 200 nodes)",
               "srun -n 25600 ior -N=25600 -a POSIX [-F] -C -e");
  const std::string fpp_args = "-N 25600 -a POSIX -F -C -e";
  const std::string shared_args = "-N 25600 -a POSIX -C -e";
  std::printf("IOR Benchmark (FilePerProc): srun -n 25600 %s\n",
              ior::IorConfig::parse_cli(fpp_args).command_line().c_str());
  std::printf("IOR Benchmark (Shared):      srun -n 25600 %s\n\n",
              ior::IorConfig::parse_cli(shared_args).command_line().c_str());

  print_header("Fig 4 — BIT1 vs IOR write throughput on Dardel (GiB/s)",
               "IOR bounds from above; BIT1 openPMD+BP4 rises steeply; "
               "original stays low");
  TextTable table;
  table.header({"Nodes", "Original I/O", "openPMD + BP4", "IOR FPP",
                "IOR shared"});
  for (int nodes : kPaperNodeCounts) {
    const auto spec = core::ScaleSpec::throughput(nodes);
    const auto original = core::run_original_epoch(profile, spec);
    const auto openpmd =
        core::run_openpmd_epoch(profile, spec, openpmd_config(0));

    // IOR writes the same volume the BIT1 epoch moves, split per task.
    const std::uint64_t volume =
        spec.diag_run_bytes / std::uint64_t(spec.dumps_per_run) *
        std::uint64_t(spec.dat_dumps);
    ior::IorConfig ior_config;
    ior_config.ntasks = spec.ranks();
    ior_config.block_size =
        std::max<std::uint64_t>(1 << 20, volume / std::uint64_t(spec.ranks()));
    ior_config.transfer_size = 1 << 20;
    ior_config.fsync_on_close = true;
    ior_config.reorder_tasks = true;

    ior_config.file_per_proc = true;
    const auto fpp = ior::run_write(profile, ior_config);
    ior_config.file_per_proc = false;
    ior_config.api = "MPIIO";
    const auto shared = ior::run_write(profile, ior_config);
    ior_config.api = "POSIX";

    table.row({std::to_string(nodes), gibps(original.write_gibps),
               gibps(openpmd.write_gibps), gibps(fpp.write_gibps),
               gibps(shared.write_gibps)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
