// Fig 9 + Table III: write time per output flush for BIT1 openPMD + BP4 +
// Blosc + 1 AGGR on Dardel (200 nodes), across Lustre stripe sizes
// {1,2,4,8,16 MiB} and OST (stripe) counts {1,2,4,8,16,32,48}.
//
// Paper findings: best 0.0089 s at 16 MiB / 1 OST; 4 MiB improves ~4% from
// 1 -> 2 OSTs while 16 MiB degrades ~7.9%; beyond a few OSTs returns
// diminish — trends are not uniform, so tuning must be per-configuration.
#include "bench_common.hpp"

using namespace bitio;
using namespace bitio::benchkit;

int main() {
  print_header(
      "Fig 9 — per-flush write time, openPMD+BP4+Blosc+1AGGR, Dardel, "
      "200 nodes (seconds)",
      "best 0.0089 s at 16MiB/1 OST; non-uniform trends across the grid");

  const auto profile = fsim::dardel();
  // The striping study ran the smaller-volume campaign (Table II sizes).
  // The steady-state per-flush time is the makespan difference between a
  // long and a short window, which cancels the startup phase (input reads,
  // file creates).
  auto spec_long = core::ScaleSpec::table2(200);
  spec_long.dat_dumps = 8;
  auto spec_short = spec_long;
  spec_short.dat_dumps = 2;

  const std::vector<std::uint64_t> stripe_sizes = {1 * MiB, 2 * MiB, 4 * MiB,
                                                   8 * MiB, 16 * MiB};
  const std::vector<int> stripe_counts = {1, 2, 4, 8, 16, 32, 48};

  TextTable table;
  {
    std::vector<std::string> header{"stripe size"};
    for (int count : stripe_counts)
      header.push_back(std::to_string(count) + " OST");
    table.header(std::move(header));
  }
  double best = 1e30;
  std::string best_label;
  for (std::uint64_t size : stripe_sizes) {
    std::vector<std::string> row{format_bytes(size)};
    for (int count : stripe_counts) {
      auto config = openpmd_config(1, "blosc");
      config.use_striping = true;
      config.striping = {count, size};
      const auto long_run = core::run_openpmd_epoch(profile, spec_long, config);
      const auto short_run =
          core::run_openpmd_epoch(profile, spec_short, config);
      const double per_flush =
          (long_run.makespan_s - short_run.makespan_s) /
          double(spec_long.dat_dumps - spec_short.dat_dumps);
      row.push_back(strfmt("%.4f", per_flush));
      if (per_flush < best) {
        best = per_flush;
        best_label = format_bytes(size) + " / " + std::to_string(count) +
                     " OST";
      }
    }
    table.row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Best configuration: %s at %.4f s (paper: 16MiB / 1 OST at "
              "0.0089 s)\n",
              best_label.c_str(), best);
  std::printf(
      "\nTable III command for the best run:\n  lfs setstripe -c %d -S %s "
      "io_openPMD\n",
      1, "16M");
  return 0;
}
