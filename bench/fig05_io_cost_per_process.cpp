// Fig 5: average I/O cost per process on Dardel at 200 nodes for reads,
// metadata, and writes — original I/O vs openPMD + BP4, plus the normalized
// bars the paper plots.
//
// Paper anchors: metadata 17.868 s -> 0.014 s (-99.92%); writes 1.043 s ->
// 0.009 s (-99.14%); reads essentially unchanged.
#include "bench_common.hpp"

using namespace bitio;
using namespace bitio::benchkit;

int main() {
  print_header(
      "Fig 5 — average I/O cost per process, Dardel, 200 nodes (seconds)",
      "meta 17.868 -> 0.014 (-99.92%); write 1.043 -> 0.009 (-99.14%); "
      "reads unchanged");

  // The full 200K-step run: 200 diagnostic dumps, 20 checkpoints.
  auto spec = core::ScaleSpec::throughput(200);
  spec.dat_dumps = 200;
  spec.checkpoints = 20;
  const auto profile = fsim::dardel();

  const auto original = core::run_original_epoch(profile, spec);
  const auto openpmd =
      core::run_openpmd_epoch(profile, spec, openpmd_config(0));

  TextTable table;
  table.header({"Category", "Original I/O", "openPMD + BP4", "Reduction"});
  const struct {
    const char* name;
    double before;
    double after;
  } rows[] = {
      {"reads", original.mean_read_s, openpmd.mean_read_s},
      {"metadata", original.mean_meta_s, openpmd.mean_meta_s},
      {"writes", original.mean_write_s, openpmd.mean_write_s},
  };
  for (const auto& row : rows) {
    const double reduction =
        row.before > 0 ? (1.0 - row.after / row.before) * 100.0 : 0.0;
    table.row({row.name, strfmt("%.4f s", row.before),
               strfmt("%.4f s", row.after), strfmt("%.2f%%", reduction)});
  }
  std::printf("%s\n", table.render().c_str());

  // The normalized view the figure plots (each category / its original).
  TextTable normalized("Normalized to Original I/O = 1.0");
  normalized.header({"Category", "Original", "openPMD + BP4"});
  for (const auto& row : rows) {
    normalized.row({row.name, "1.00",
                    strfmt("%.5f", row.before > 0 ? row.after / row.before
                                                  : 0.0)});
  }
  std::printf("%s", normalized.render().c_str());
  return 0;
}
