// Recovery overhead: crash step x checkpoint interval.
//
// Each cell runs the ionization use case on 4 simulated ranks with online
// shrink-recovery enabled (resil::run_resilient_spmd) and a rank_crash
// fault scheduled for rank 1 at `crash_step`.  The run detects the
// failure, agrees, shrinks to 3 survivors, restores the newest verifying
// checkpoint epoch, and re-runs to the end.  Reported per cell: how many
// steps of work the crash cost (crash step minus restored step — bounded
// by the checkpoint interval), the wall time spent inside the recovery,
// and the epochs committed.  A machine-readable JSON summary follows the
// table (or is the only output with --json), shaped like
// resilience_sweep's so the two land side by side.
#include <cstring>

#include "bench_common.hpp"
#include "resil/recovery.hpp"

using namespace bitio;
using namespace bitio::benchkit;

namespace {

constexpr std::uint64_t kLastStep = 60;
constexpr int kRanks = 4;

picmc::SimConfig sim_case() {
  auto config = picmc::SimConfig::ionization_case(64, 16);
  config.last_step = kLastStep;
  config.datfile = 20;
  config.dmpstep = kLastStep;
  return config;
}

struct CellResult {
  std::uint64_t crash_step = 0;
  int interval = 0;
  int recoveries = 0;
  int final_size = 0;
  std::uint64_t restored_step = 0;
  std::uint64_t lost_steps = 0;
  double t_recovery_s = 0.0;
  std::uint64_t epochs = 0;
  std::uint64_t final_step = 0;
  bool completed = false;
};

CellResult run_cell(std::uint64_t crash_step, int interval) {
  fsim::SharedFs fs(8);

  core::Bit1IoConfig io;
  io.checkpoint_interval = interval;
  io.checkpoint_retain = 2;
  io.recovery = "shrink";
  io.fault_plan = fsim::FaultPlan(
      7, {{fsim::FaultKind::rank_crash, "", 0, 0.0, 1, 1, crash_step}});

  resil::ResilientRunConfig cfg;
  cfg.sim = sim_case();
  cfg.io = io;
  cfg.run_dir = "run";
  cfg.nranks = kRanks;

  const auto report = resil::run_resilient_spmd(fs, cfg);

  CellResult cell;
  cell.crash_step = crash_step;
  cell.interval = interval;
  cell.recoveries = report.recoveries;
  cell.final_size = report.final_size;
  cell.restored_step = report.restored_step;
  cell.lost_steps = crash_step - report.restored_step;
  cell.t_recovery_s = report.t_recovery_s;
  cell.epochs = report.stats.epochs_written;
  cell.final_step = report.final_step;
  cell.completed = report.final_step == kLastStep && report.recoveries == 1 &&
                   report.final_size == kRanks - 1;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bool json_only = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json_only = true;

  if (!json_only)
    print_header(
        "Recovery overhead — crash step x checkpoint interval",
        "online shrink-recovery restarts the run from the newest verifying "
        "epoch; the work lost to a crash is bounded by the interval");

  TextTable table;
  table.header({"crash@", "interval", "recoveries", "survivors", "restored@",
                "lost_steps", "t_recovery", "epochs", "completed"});
  JsonArray cells;
  bool all_completed = true;
  for (const std::uint64_t crash_step : {20ull, 45ull}) {
    for (const int interval : {2, 5, 10}) {
      const CellResult cell = run_cell(crash_step, interval);
      all_completed = all_completed && cell.completed;
      table.row({strfmt("%llu", (unsigned long long)cell.crash_step),
                 strfmt("%d", cell.interval),
                 strfmt("%d", cell.recoveries),
                 strfmt("%d", cell.final_size),
                 strfmt("%llu", (unsigned long long)cell.restored_step),
                 strfmt("%llu", (unsigned long long)cell.lost_steps),
                 strfmt("%.4fs", cell.t_recovery_s),
                 strfmt("%llu", (unsigned long long)cell.epochs),
                 cell.completed ? "yes" : "NO"});
      JsonObject row;
      row["crash_step"] = Json(cell.crash_step);
      row["checkpoint_interval"] = Json(cell.interval);
      row["recoveries"] = Json(cell.recoveries);
      row["final_size"] = Json(cell.final_size);
      row["restored_step"] = Json(cell.restored_step);
      row["lost_steps"] = Json(cell.lost_steps);
      row["t_recovery_s"] = Json(cell.t_recovery_s);
      row["epochs_written"] = Json(cell.epochs);
      row["final_step"] = Json(cell.final_step);
      row["completed"] = Json(cell.completed);
      cells.emplace_back(std::move(row));
    }
  }
  if (!json_only) std::printf("%s\n", table.render().c_str());

  JsonObject summary;
  summary["bench"] = Json("recovery_overhead");
  summary["nranks"] = Json(kRanks);
  summary["last_step"] = Json(kLastStep);
  summary["all_runs_completed"] = Json(all_completed);
  summary["cells"] = Json(std::move(cells));
  std::printf("%s\n", Json(std::move(summary)).dump(2).c_str());

  if (!json_only)
    std::printf(all_completed
                    ? "every crashed run shrank and completed\n"
                    : "WARNING: some run failed to recover\n");
  return all_completed ? 0 : 1;
}
