// Table II: file population census on Dardel — total written files, average
// size, and maximum size, for four configurations at 1..200 nodes:
//   BIT1 Original I/O
//   BIT1 openPMD + BP4 (node-level aggregation)
//   BIT1 openPMD + BP4 + 1 AGGR
//   BIT1 openPMD + BP4 + Blosc + 1 AGGR
//
// Paper anchors: original 262 files/1.9MiB avg at 1 node -> 51206/13KiB at
// 200; BP4 node-agg 6 -> 205 files; 1 AGGR fixed at 6 files with avg
// 81MiB -> 326MiB; Blosc shrinks the 1-node average by ~11% and the
// 200-node average by ~3.7% (metadata does not compress).
#include "bench_common.hpp"

using namespace bitio;
using namespace bitio::benchkit;

namespace {

void print_config(const char* title,
                  const std::vector<core::EpochResult>& results,
                  const std::vector<int>& nodes) {
  TextTable table(title);
  std::vector<std::string> header{"Number of Nodes"}, files{"Total Written Files"},
      avg{"Average File Size"}, max{"Max File Size"};
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    header.push_back(std::to_string(nodes[i]));
    files.push_back(std::to_string(results[i].total_files));
    avg.push_back(format_bytes(results[i].avg_file_bytes));
    max.push_back(format_bytes(results[i].max_file_bytes));
  }
  table.header(std::move(header));
  table.row(std::move(files));
  table.row(std::move(avg));
  table.row(std::move(max));
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main() {
  print_header("Table II — BIT1 write-file census on Dardel (full run)",
               "original 262->51206 files, avg 1.9MiB->13KiB; BP4 6->205; "
               "1 AGGR always 6, avg 81->326MiB; Blosc -11%/-3.7%");
  const auto profile = fsim::dardel();

  std::vector<core::EpochResult> original, node_agg, one_agg, blosc_agg;
  for (int nodes : kPaperNodeCounts) {
    const auto spec = core::ScaleSpec::table2(nodes);
    // Census only: no timing replay (a 200-dump trace at 200 nodes would
    // not fit in memory, and Table II reports sizes, not seconds).
    original.push_back(core::run_original_epoch(profile, spec, false));
    node_agg.push_back(
        core::run_openpmd_epoch(profile, spec, openpmd_config(0), false));
    one_agg.push_back(
        core::run_openpmd_epoch(profile, spec, openpmd_config(1), false));
    blosc_agg.push_back(core::run_openpmd_epoch(
        profile, spec, openpmd_config(1, "blosc"), false));
  }
  print_config("BIT1 Original I/O", original, kPaperNodeCounts);
  print_config("BIT1 openPMD + BP4", node_agg, kPaperNodeCounts);
  print_config("BIT1 openPMD + BP4 + 1 AGGR", one_agg, kPaperNodeCounts);
  print_config("BIT1 openPMD + BP4 + Blosc Compress + 1 AGGR", blosc_agg,
               kPaperNodeCounts);
  return 0;
}
