// Fig 3: BIT1 Original File I/O vs openPMD + BP4 write throughput on
// Dardel, 1..200 nodes, GiB/s.
//
// Paper shape: original rises slowly to ~0.41 then stalls as metadata cost
// grows; openPMD + BP4 (node-level aggregation) keeps scaling steeply and
// stays stable at high node counts.
#include "bench_common.hpp"

using namespace bitio;
using namespace bitio::benchkit;

int main() {
  print_header(
      "Fig 3 — Original vs openPMD+BP4 write throughput on Dardel (GiB/s)",
      "original plateaus ~0.4; openPMD+BP4 starts ~0.6 and scales steeply");
  const auto profile = fsim::dardel();
  TextTable table;
  table.header({"Nodes", "Original I/O", "openPMD + BP4"});
  for (int nodes : kPaperNodeCounts) {
    const auto spec = core::ScaleSpec::throughput(nodes);
    const auto original = core::run_original_epoch(profile, spec);
    const auto openpmd =
        core::run_openpmd_epoch(profile, spec, openpmd_config(0));
    table.row({std::to_string(nodes), gibps(original.write_gibps),
               gibps(openpmd.write_gibps)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
