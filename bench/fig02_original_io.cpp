// Fig 2: BIT1 Original File I/O write throughput on Discoverer, Dardel and
// Vega CPU LFS, 1..200 nodes, GiB/s.
//
// Paper shape: Discoverer declines 0.26 -> 0.20 with fluctuation; Dardel
// rises 0.09 -> 0.41; Vega is erratic with no clear scaling.
#include "bench_common.hpp"

using namespace bitio;
using namespace bitio::benchkit;

int main() {
  print_header("Fig 2 — BIT1 Original File I/O write throughput (GiB/s)",
               "Discoverer 0.26->0.20 declining; Dardel 0.09->0.41 rising; "
               "Vega inconsistent");
  TextTable table;
  table.header({"Nodes", "Discoverer", "Dardel", "Vega"});
  for (int nodes : kPaperNodeCounts) {
    std::vector<std::string> row{std::to_string(nodes)};
    for (const char* system : {"discoverer", "dardel", "vega"}) {
      const auto result = core::run_original_epoch(
          fsim::system_profile(system), core::ScaleSpec::throughput(nodes));
      row.push_back(gibps(result.write_gibps));
    }
    table.row(std::move(row));
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
