// Compute/I-O overlap study for the asynchronous aggregation drain (the BP5
// AsyncWrite path): the same diagnostics-heavy window is replayed twice,
// once draining synchronously on the rank critical path and once handing
// each step to the background drain lane while the ranks charge the next
// step's compute.  With enough compute between dumps the async makespan
// approaches max(compute, I/O) instead of compute + I/O.
#include "bench_common.hpp"
#include "bp/engine.hpp"

using namespace bitio;
using namespace bitio::benchkit;

namespace {

struct OverlapRun {
  fsim::ReplayReport replay;
  std::uint64_t bytes = 0;
};

OverlapRun run_window(const fsim::SystemProfile& profile, int nodes,
                      int dumps, double compute_s_per_dump, bool async) {
  const int ranks = nodes * 128;
  fsim::SharedFs fs(profile.ost_count, /*store_data=*/false,
                    profile.default_stripe);
  fs.set_tracing(true);

  bp::EngineConfig config;
  config.num_aggregators = 2 * nodes;  // the paper's sweet spot, 2 per node
  config.ranks_per_node = 128;
  config.mem_bandwidth_bps = profile.client_mem_bandwidth_bps;
  config.async_write = async;
  config.buffer_chunk_mb = 16;

  fsim::FsClient root(fs, 0);
  root.mkdir("run");

  std::uint64_t bytes = 0;
  {
    auto writer = bp::make_engine("bp5", fs, "run/dat_file.bp5", config,
                                  ranks);
    const std::uint64_t elems = 96 * KiB;  // doubles per rank per variable
    const char* species[] = {"e", "D+", "D"};
    for (int dump = 0; dump < dumps; ++dump) {
      writer->begin_step(std::uint64_t(dump));
      for (const char* name : species) {
        const std::string var = std::string("vdf_") + name;
        for (int r = 0; r < ranks; ++r) {
          const std::uint64_t rr = std::uint64_t(r);
          writer->put_synthetic(r, var, bp::Datatype::float64,
                                {std::uint64_t(ranks) * elems}, {rr * elems},
                                {elems});
          bytes += elems * 8;
        }
      }
      writer->end_step();
      // The next PIC step's particle push / collisions, charged on every
      // rank's critical path.  The async drain overlaps with exactly this.
      for (int r = 0; r < ranks; ++r)
        fsim::FsClient(fs, fsim::ClientId(r))
            .charge_cpu(compute_s_per_dump, "compute");
    }
    writer->close();
  }

  OverlapRun run;
  run.replay = replay_trace(profile, fs.store(), fs.trace(), ranks);
  run.bytes = bytes;
  return run;
}

}  // namespace

int main() {
  print_header(
      "Compute/I-O overlap — BP5 AsyncWrite drain vs synchronous end_step",
      "async end_step returns at submit; drain lanes overlap the next "
      "step's compute");
  const auto profile = fsim::dardel();
  const int nodes = 4;
  const int dumps = 8;
  const double compute_s = 0.25;  // per rank, between successive dumps

  TextTable table;
  table.header({"mode", "makespan_s", "GiB/s", "t_drain_mean_s"});
  double sync_makespan = 0.0, async_makespan = 0.0;
  for (const bool async : {false, true}) {
    const auto run =
        run_window(profile, nodes, dumps, compute_s, async);
    (async ? async_makespan : sync_makespan) = run.replay.makespan;
    table.row({async ? "async" : "sync",
               strfmt("%.3f", run.replay.makespan),
               gibps(double(run.bytes) / run.replay.makespan / double(GiB)),
               strfmt("%.4f", run.replay.mean_drain_time())});
  }
  std::printf("%s\n", table.render().c_str());

  const double speedup =
      async_makespan > 0 ? sync_makespan / async_makespan : 0.0;
  std::printf("async/sync makespan: %.3f / %.3f s  (speedup %.2fx)\n",
              async_makespan, sync_makespan, speedup);
  std::printf(async_makespan < sync_makespan
                  ? "overlap verified: async window is shorter\n"
                  : "WARNING: async window is not shorter than sync\n");
  return async_makespan < sync_makespan ? 0 : 1;
}
