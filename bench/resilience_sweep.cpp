// Resilience sweep: checkpoint interval vs injected-fault pressure.
//
// Each cell of the sweep runs the ionization use case under a seeded fault
// plan (transient EIO on the epoch tree plus silent bit flips in the epoch
// data subfiles), checkpointing through resil::CheckpointManager every
// `interval` steps.  The rank "crashes" partway through the run; a fresh
// simulation restarts from the newest verifying epoch and re-runs to the
// end.  Reported per cell: epochs committed, commit retries, corrupt chunks
// caught by the CRC validation pass, steps of work lost to the crash
// (crash step minus restored step), and whether the recovered run finished
// bit-identical to an unfaulted reference.  A machine-readable JSON summary
// follows the table.
#include "bench_common.hpp"
#include "resil/checkpoint_manager.hpp"

using namespace bitio;
using namespace bitio::benchkit;

namespace {

constexpr std::uint64_t kCrashStep = 45;
constexpr std::uint64_t kLastStep = 60;

picmc::SimConfig sim_case() {
  auto config = picmc::SimConfig::ionization_case(64, 16);
  config.last_step = kLastStep;
  return config;
}

struct CellResult {
  int interval = 0;
  double fault_p = 0.0;
  std::uint64_t epochs = 0;
  std::uint64_t retries = 0;
  std::uint64_t corrupt_chunks = 0;
  std::uint64_t commit_failures = 0;  // commits abandoned after max retries
  std::uint64_t restored_step = 0;
  std::uint64_t lost_steps = 0;
  bool recovered = false;
  bool bit_exact = false;
};

CellResult run_cell(int interval, double fault_p,
                    const picmc::Simulation& reference) {
  fsim::SharedFs fs(8);
  if (fault_p > 0.0) {
    // Half the pressure as transient EIO anywhere under the epoch tree,
    // half as silent bit flips inside the epoch data payloads.
    fs.set_fault_plan(fsim::FaultPlan(
        std::uint64_t(interval * 1000 + int(fault_p * 1000)),
        {{fsim::FaultKind::eio, "resil/epoch_", 0, fault_p / 2, 0, -1, 0},
         {fsim::FaultKind::bit_flip, "/data.", 0, fault_p / 2, 0, -1, 0}}));
  }

  core::Bit1IoConfig io_config;
  io_config.checkpoint_interval = interval;
  io_config.checkpoint_retain = 2;

  CellResult cell;
  cell.interval = interval;
  cell.fault_p = fault_p;

  resil::CheckpointManager manager(fs, "run", io_config, 1);
  {
    picmc::Simulation sim(sim_case());
    sim.initialize();
    while (sim.current_step() < kCrashStep) {
      sim.step();
      if (sim.current_step() % std::uint64_t(interval) != 0) continue;
      manager.stage(0, sim);
      try {
        manager.commit();
      } catch (const IoError&) {
        cell.commit_failures += 1;  // this epoch is lost; the run goes on
      }
    }
  }  // the rank dies here

  picmc::Simulation restarted(sim_case());
  restarted.initialize();
  const resil::RestartReport report = manager.restore(restarted);
  cell.recovered = report.recovered;
  cell.restored_step = report.step;
  cell.lost_steps = kCrashStep - report.step;
  while (restarted.current_step() < kLastStep) restarted.step();

  bool exact = restarted.rng().state() ==
                   const_cast<picmc::Simulation&>(reference).rng().state() &&
               restarted.ionization_events() == reference.ionization_events();
  for (std::size_t s = 0; exact && s < reference.species_count(); ++s) {
    const auto& a = reference.species(s).particles;
    const auto& b = restarted.species(s).particles;
    exact = a.x() == b.x() && a.vx() == b.vx() && a.vy() == b.vy() &&
            a.vz() == b.vz() && a.w() == b.w();
  }
  cell.bit_exact = exact;

  cell.epochs = manager.stats().epochs_written;
  cell.retries = manager.stats().write_retries;
  cell.corrupt_chunks = manager.stats().corrupt_chunks_detected;
  return cell;
}

}  // namespace

int main() {
  print_header(
      "Resilience sweep — checkpoint interval vs injected-fault pressure",
      "CRC-validated epoch commits + restart fallback recover the run "
      "bit-exactly under transient and silent write faults");

  picmc::Simulation reference(sim_case());
  reference.initialize();
  while (reference.current_step() < kLastStep) reference.step();

  TextTable table;
  table.header({"interval", "fault_p", "epochs", "retries", "crc_caught",
                "failed_commits", "restored@", "lost_steps", "bit_exact"});
  JsonArray cells;
  bool all_exact = true;
  for (const int interval : {2, 5, 10}) {
    for (const double fault_p : {0.0, 0.02, 0.1}) {
      const CellResult cell = run_cell(interval, fault_p, reference);
      all_exact = all_exact && cell.recovered && cell.bit_exact;
      table.row({strfmt("%d", cell.interval), strfmt("%.2f", cell.fault_p),
                 strfmt("%llu", (unsigned long long)cell.epochs),
                 strfmt("%llu", (unsigned long long)cell.retries),
                 strfmt("%llu", (unsigned long long)cell.corrupt_chunks),
                 strfmt("%llu", (unsigned long long)cell.commit_failures),
                 strfmt("%llu", (unsigned long long)cell.restored_step),
                 strfmt("%llu", (unsigned long long)cell.lost_steps),
                 cell.bit_exact ? "yes" : "NO"});
      JsonObject row;
      row["checkpoint_interval"] = Json(cell.interval);
      row["fault_probability"] = Json(cell.fault_p);
      row["epochs_written"] = Json(cell.epochs);
      row["write_retries"] = Json(cell.retries);
      row["corrupt_chunks_detected"] = Json(cell.corrupt_chunks);
      row["commit_failures"] = Json(cell.commit_failures);
      row["restored_step"] = Json(cell.restored_step);
      row["lost_steps"] = Json(cell.lost_steps);
      row["recovered"] = Json(cell.recovered);
      row["bit_exact"] = Json(cell.bit_exact);
      cells.emplace_back(std::move(row));
    }
  }
  std::printf("%s\n", table.render().c_str());

  JsonObject summary;
  summary["bench"] = Json("resilience_sweep");
  summary["crash_step"] = Json(kCrashStep);
  summary["last_step"] = Json(kLastStep);
  summary["all_recoveries_bit_exact"] = Json(all_exact);
  summary["cells"] = Json(std::move(cells));
  std::printf("%s\n", Json(std::move(summary)).dump(2).c_str());

  std::printf(all_exact
                  ? "every cell recovered and re-ran bit-exactly\n"
                  : "WARNING: some cell failed to recover bit-exactly\n");
  return all_exact ? 0 : 1;
}
