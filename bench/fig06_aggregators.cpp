// Fig 6: BIT1 openPMD + BP4 write throughput vs number of aggregators
// (OPENPMD_ADIOS2_BP5_NumAgg) on Dardel at 200 nodes.
//
// Paper shape: 0.59 GiB/s at 1 aggregator, consistent improvement to a
// peak of 15.80 GiB/s at 400 aggregators (two per node), then decline to
// 3.87 GiB/s at 25600 — still far above original I/O's 0.41 GiB/s with the
// same file count.
#include "bench_common.hpp"

using namespace bitio;
using namespace bitio::benchkit;

int main() {
  print_header(
      "Fig 6 — openPMD+BP4 write throughput vs aggregators, Dardel, "
      "200 nodes (GiB/s)",
      "0.59 @1 AGGR -> peak 15.80 @400 (2/node) -> 3.87 @25600");
  const auto profile = fsim::dardel();
  const auto spec = core::ScaleSpec::throughput(200);

  TextTable table;
  table.header({"Aggregators", "GiB/s", "files"});
  for (int aggregators : {1, 2, 4, 10, 25, 50, 100, 200, 400, 800, 1600,
                          3200, 6400, 12800, 25600}) {
    const auto result =
        core::run_openpmd_epoch(profile, spec, openpmd_config(aggregators));
    table.row({std::to_string(aggregators), gibps(result.write_gibps),
               std::to_string(result.total_files)});
  }
  std::printf("%s\n", table.render().c_str());

  const auto original = core::run_original_epoch(profile, spec);
  std::printf(
      "Original I/O reference at the same scale: %s GiB/s with %llu files\n",
      gibps(original.write_gibps).c_str(),
      static_cast<unsigned long long>(original.total_files));
  return 0;
}
