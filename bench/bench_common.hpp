#pragma once
// Shared helpers for the figure/table reproduction benches.

#include <cstdio>
#include <string>
#include <vector>

#include "core/tuning.hpp"
#include "core/workload.hpp"
#include "fsim/system_profiles.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace bitio::benchkit {

/// The node counts of the paper's scaling studies (Figs 2-4, 7; Table II).
inline const std::vector<int> kPaperNodeCounts = {1,  2,  5,  10, 20,
                                                  30, 40, 50, 100, 200};

inline core::Bit1IoConfig openpmd_config(int aggregators,
                                         const std::string& codec = "none",
                                         const std::string& engine = "bp4") {
  core::Bit1IoConfig config;
  config.mode = core::IoMode::openpmd;
  config.engine = engine;
  config.num_aggregators = aggregators;
  config.codec = codec;
  return config;
}

inline std::string gibps(double value) { return strfmt("%.2f", value); }

inline void print_header(const char* figure, const char* claim) {
  std::printf("==================================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper: %s\n", claim);
  std::printf("==================================================================\n");
}

}  // namespace bitio::benchkit
