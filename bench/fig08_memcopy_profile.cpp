// Fig 8: profiling.json memory-copy times on Dardel at 200 nodes, with and
// without Blosc compression (1 aggregator).
//
// Paper finding: with Blosc the data is compressed straight into the
// aggregation buffer, so the memcopy time recorded by the engine profiler
// is "virtually eliminated"; without compression the marshalling memcopy
// remains.
//
// Extension: the zero-copy marshal path.  A staged put() pays a staging
// memcpy into the writer's pooled buffer and then the warm marshalling
// copy into the aggregation buffer; put_borrowed() defers to the caller's
// buffer and runs one single-pass marshal straight into the aggregation
// buffer, so profiling.json records half the memcopy time and zero
// staging copies for the same container bytes.
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "bp/writer.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

using namespace bitio;
using namespace bitio::benchkit;

namespace {

double tag_seconds(const core::EpochResult& result, const char* tag) {
  const auto it = result.cpu_by_tag.find(tag);
  return it == result.cpu_by_tag.end() ? 0.0 : it->second;
}

struct MarshalProfile {
  double memcopy_us = 0.0;
  std::uint64_t stage_copies = 0;
  std::uint64_t zero_copy_chunks = 0;
};

/// Direct small-scale Writer run with real payloads: every rank puts one
/// 256 KiB chunk per step, staged or borrowed, and the numbers come back
/// out of the container's own profiling.json.
MarshalProfile marshal_profile(bool borrowed) {
  const int ranks = 8;
  const int steps = 4;
  const std::uint64_t elems = 64 * 1024;  // 256 KiB of float32 per rank
  fsim::SharedFs fs(4);
  bp::EngineConfig config;
  config.num_aggregators = 1;
  config.profiling = true;

  // Borrowed chunks must stay valid until the drain completes; keep every
  // step's payloads alive for the writer's whole lifetime.
  std::vector<std::vector<float>> payloads;
  payloads.reserve(std::size_t(ranks) * std::size_t(steps));
  {
    bp::Writer writer = bp::Writer::open(fs, "out/fig08.bp4", config, ranks);
    for (std::uint64_t step = 0; step < std::uint64_t(steps); ++step) {
      writer.begin_step(step);
      for (int r = 0; r < ranks; ++r) {
        auto& local = payloads.emplace_back(std::size_t(elems));
        std::iota(local.begin(), local.end(), float(r) + float(step));
        const bp::Dims shape{std::uint64_t(ranks) * elems};
        const bp::Dims offset{std::uint64_t(r) * elems};
        const bp::Dims count{elems};
        const auto view = bp::ChunkView::of<float>(
            std::span<const float>(local), offset, count);
        if (borrowed)
          writer.put_borrowed(r, "density", shape, view);
        else
          writer.put(r, "density", shape, view);
      }
      writer.end_step();
    }
    writer.close();
  }

  MarshalProfile out;
  for (const fsim::FileNode* node : fs.store().list_recursive("out/fig08.bp4"))
    if (node->path == "out/fig08.bp4/profiling.json") {
      const Json doc = Json::parse(std::string(
          reinterpret_cast<const char*>(node->data.data()),
          node->data.size()));
      const Json& transport = doc.at("transport_0");
      out.memcopy_us = transport.at("memcopy_us").as_number();
      if (transport.contains("stage_copies"))
        out.stage_copies = transport.at("stage_copies").as_uint();
      else
        // An all-staged container keeps the legacy profile (the zero-copy
        // fields are gated out); every put staged exactly one copy.
        out.stage_copies = std::uint64_t(ranks) * std::uint64_t(steps);
      if (transport.contains("zero_copy_chunks"))
        out.zero_copy_chunks = transport.at("zero_copy_chunks").as_uint();
      return out;
    }
  throw UsageError("fig08: profiling.json missing from container");
}

}  // namespace

int main() {
  print_header(
      "Fig 8 — engine profiler memcopy times, Dardel, 200 nodes "
      "(microseconds, summed over ranks)",
      "memcopy eliminated with Blosc; compression cost appears instead");
  const auto profile = fsim::dardel();
  const auto spec = core::ScaleSpec::throughput(200);

  auto plain = openpmd_config(1);
  plain.profiling = true;
  auto blosc = openpmd_config(1, "blosc");
  blosc.profiling = true;

  const auto without = core::run_openpmd_epoch(profile, spec, plain);
  const auto with = core::run_openpmd_epoch(profile, spec, blosc);

  TextTable table;
  table.header({"Configuration", "memcopy (us)", "compress (us)"});
  table.row({"openPMD+BP4+1AGGR (no compression)",
             strfmt("%.1f", tag_seconds(without, "memcopy") * 1e6),
             strfmt("%.1f", tag_seconds(without, "compress") * 1e6)});
  table.row({"openPMD+BP4+Blosc+1AGGR",
             strfmt("%.1f", tag_seconds(with, "memcopy") * 1e6),
             strfmt("%.1f", tag_seconds(with, "compress") * 1e6)});
  std::printf("%s", table.render().c_str());

  // Extension: staged put() vs zero-copy put_borrowed() on real payloads.
  // Same container bytes; the borrowed path skips the staging memcpy and
  // marshals in a single pass, halving the recorded memcopy time.
  const MarshalProfile staged = marshal_profile(/*borrowed=*/false);
  const MarshalProfile borrowed = marshal_profile(/*borrowed=*/true);
  std::printf(
      "\nzero-copy marshal (8 ranks x 4 steps x 256 KiB, profiling.json):\n");
  TextTable marshal;
  marshal.header(
      {"Put path", "memcopy (us)", "stage copies", "zero-copy chunks"});
  marshal.row({"staged put()", strfmt("%.1f", staged.memcopy_us),
               std::to_string(staged.stage_copies),
               std::to_string(staged.zero_copy_chunks)});
  marshal.row({"put_borrowed()", strfmt("%.1f", borrowed.memcopy_us),
               std::to_string(borrowed.stage_copies),
               std::to_string(borrowed.zero_copy_chunks)});
  std::printf("%s", marshal.render().c_str());
  const bool ok = borrowed.stage_copies == 0 && borrowed.zero_copy_chunks > 0 &&
                  borrowed.memcopy_us < staged.memcopy_us;
  std::printf("zero-copy marshal reduces recorded copies: %s\n",
              ok ? "ok" : "FAIL");
  return ok ? 0 : 1;
}
