// Fig 8: profiling.json memory-copy times on Dardel at 200 nodes, with and
// without Blosc compression (1 aggregator).
//
// Paper finding: with Blosc the data is compressed straight into the
// aggregation buffer, so the memcopy time recorded by the engine profiler
// is "virtually eliminated"; without compression the marshalling memcopy
// remains.
#include "bench_common.hpp"

using namespace bitio;
using namespace bitio::benchkit;

namespace {

double tag_seconds(const core::EpochResult& result, const char* tag) {
  const auto it = result.cpu_by_tag.find(tag);
  return it == result.cpu_by_tag.end() ? 0.0 : it->second;
}

}  // namespace

int main() {
  print_header(
      "Fig 8 — engine profiler memcopy times, Dardel, 200 nodes "
      "(microseconds, summed over ranks)",
      "memcopy eliminated with Blosc; compression cost appears instead");
  const auto profile = fsim::dardel();
  const auto spec = core::ScaleSpec::throughput(200);

  auto plain = openpmd_config(1);
  plain.profiling = true;
  auto blosc = openpmd_config(1, "blosc");
  blosc.profiling = true;

  const auto without = core::run_openpmd_epoch(profile, spec, plain);
  const auto with = core::run_openpmd_epoch(profile, spec, blosc);

  TextTable table;
  table.header({"Configuration", "memcopy (us)", "compress (us)"});
  table.row({"openPMD+BP4+1AGGR (no compression)",
             strfmt("%.1f", tag_seconds(without, "memcopy") * 1e6),
             strfmt("%.1f", tag_seconds(without, "compress") * 1e6)});
  table.row({"openPMD+BP4+Blosc+1AGGR",
             strfmt("%.1f", tag_seconds(with, "memcopy") * 1e6),
             strfmt("%.1f", tag_seconds(with, "compress") * 1e6)});
  std::printf("%s", table.render().c_str());
  return 0;
}
