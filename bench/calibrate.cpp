// Calibration utility: prints the model's output at every anchor point the
// paper reports (DESIGN.md Section 5) next to the published value.  Run
// after touching fsim/system_profiles.cpp to check the fit; the figure
// benches assume these anchors are roughly in place.
#include <cstdio>

#include "core/workload.hpp"
#include "fsim/system_profiles.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace bitio;
using core::Bit1IoConfig;
using core::IoMode;
using core::ScaleSpec;

namespace {

ScaleSpec spec_for(int nodes) { return ScaleSpec::throughput(nodes); }

Bit1IoConfig openpmd_config(int aggregators, const char* codec = "none") {
  Bit1IoConfig config;
  config.mode = IoMode::openpmd;
  config.num_aggregators = aggregators;
  config.codec = codec;
  return config;
}

}  // namespace

int main() {
  std::printf("== Fig 2 anchors: original I/O GiB/s ==\n");
  struct Anchor {
    const char* system;
    int nodes;
    double paper;
  };
  const Anchor fig2[] = {
      {"dardel", 1, 0.09},     {"dardel", 200, 0.41},
      {"discoverer", 1, 0.26}, {"discoverer", 200, 0.20},
      {"vega", 1, 0.15},       {"vega", 200, 0.30},
  };
  for (const auto& a : fig2) {
    const auto result = core::run_original_epoch(
        fsim::system_profile(a.system), spec_for(a.nodes));
    std::printf("%-11s %3d nodes: model %6.3f GiB/s  paper ~%.2f  (makespan %.3fs, files %llu)\n",
                a.system, a.nodes, result.write_gibps, a.paper,
                result.makespan_s,
                static_cast<unsigned long long>(result.total_files));
  }

  std::printf("\n== Fig 3/4 anchors: openPMD+BP4 node-agg on dardel ==\n");
  for (int nodes : {1, 10, 50, 100, 200}) {
    const auto result = core::run_openpmd_epoch(
        fsim::dardel(), spec_for(nodes), openpmd_config(0));
    std::printf("%3d nodes: model %7.3f GiB/s  (paper: 0.6 @1 rising steeply; makespan %.4fs)\n",
                nodes, result.write_gibps, result.makespan_s);
  }

  std::printf("\n== Fig 6 anchors: aggregators @200 nodes, dardel ==\n");
  const struct { int agg; double paper; } fig6[] = {
      {1, 0.59}, {25, 0}, {100, 0}, {400, 15.80}, {1600, 0}, {25600, 3.87}};
  for (const auto& a : fig6) {
    const auto result = core::run_openpmd_epoch(fsim::dardel(), spec_for(200),
                                                openpmd_config(a.agg));
    std::printf("%5d agg: model %7.3f GiB/s  paper %s\n", a.agg,
                result.write_gibps,
                a.paper > 0 ? strfmt("%.2f", a.paper).c_str() : "-");
  }

  std::printf("\n== Fig 5 anchors: per-process costs @200 nodes, dardel ==\n");
  {
    // Fig 5 covers a full 200K-step run: 200 dumps + 20 checkpoints.
    ScaleSpec spec = spec_for(200);
    spec.dat_dumps = 200;
    spec.checkpoints = 20;
    const auto original = core::run_original_epoch(fsim::dardel(), spec);
    std::printf("original: read %.4fs meta %.4fs write %.4fs (paper 17.868 meta, 1.043 write)\n",
                original.mean_read_s, original.mean_meta_s,
                original.mean_write_s);
    const auto openpmd = core::run_openpmd_epoch(fsim::dardel(), spec,
                                                 openpmd_config(0));
    std::printf("openpmd : read %.4fs meta %.4fs write %.4fs (paper 0.014 meta, 0.009 write)\n",
                openpmd.mean_read_s, openpmd.mean_meta_s,
                openpmd.mean_write_s);
  }

  std::printf("\n== Table II anchors: file counts/sizes (short diagnostic run) ==\n");
  {
    for (int nodes : {1, 200}) {
      const ScaleSpec spec = ScaleSpec::table2(nodes);
      const auto original = core::run_original_epoch(fsim::dardel(), spec);
      std::printf("original %3dN: files %llu (paper %d) avg %s (paper %s) max %s (paper %s)\n",
                  nodes,
                  static_cast<unsigned long long>(original.total_files),
                  nodes == 1 ? 262 : 51206,
                  format_bytes(original.avg_file_bytes).c_str(),
                  nodes == 1 ? "1.9MiB" : "13KiB",
                  format_bytes(original.max_file_bytes).c_str(),
                  nodes == 1 ? "3.8MiB" : "25KiB");
      const auto bp4 = core::run_openpmd_epoch(fsim::dardel(), spec,
                                               openpmd_config(0));
      std::printf("bp4      %3dN: files %llu (paper %d) avg %s (paper %s) max %s (paper %s)\n",
                  nodes, static_cast<unsigned long long>(bp4.total_files),
                  nodes == 1 ? 6 : 205,
                  format_bytes(bp4.avg_file_bytes).c_str(),
                  nodes == 1 ? "81MiB" : "9.4MiB",
                  format_bytes(bp4.max_file_bytes).c_str(),
                  nodes == 1 ? "476MiB" : "1.1GiB");
    }
  }
  return 0;
}
