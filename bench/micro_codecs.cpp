// google-benchmark microbenchmarks of the compression stack and the BP
// metadata codec — the hot paths of the real (non-synthetic) write path.
#include <benchmark/benchmark.h>

#include <cstring>

#include "bp/format.hpp"
#include "compress/codec.hpp"
#include "compress/shuffle.hpp"
#include "util/rng.hpp"

namespace {

using namespace bitio;

cz::Bytes particle_floats(std::size_t bytes, std::uint64_t seed) {
  Rng rng(seed);
  cz::Bytes out(bytes);
  float x = 1.0f;
  for (std::size_t i = 0; i + 4 <= bytes; i += 4) {
    x += 0.001f * float(rng.normal());
    std::memcpy(&out[i], &x, 4);
  }
  return out;
}

void BM_Shuffle(benchmark::State& state) {
  const auto data = particle_floats(std::size_t(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cz::shuffle(data, 4));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Shuffle)->Arg(64 << 10)->Arg(1 << 20);

void BM_CodecCompress(benchmark::State& state, const char* name) {
  const auto codec = cz::make_codec(name, 4);
  const auto data = particle_floats(std::size_t(state.range(0)), 2);
  std::size_t compressed = 0;
  for (auto _ : state) {
    auto frame = codec->compress(data);
    compressed = frame.size();
    benchmark::DoNotOptimize(frame);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
  state.counters["ratio"] =
      double(compressed) / double(std::size_t(state.range(0)));
}
BENCHMARK_CAPTURE(BM_CodecCompress, blosc, "blosc")
    ->Arg(64 << 10)
    ->Arg(1 << 20);
BENCHMARK_CAPTURE(BM_CodecCompress, bzip2, "bzip2")->Arg(64 << 10);

void BM_CodecRoundTrip(benchmark::State& state, const char* name) {
  const auto codec = cz::make_codec(name, 4);
  const auto data = particle_floats(std::size_t(state.range(0)), 3);
  const auto frame = codec->compress(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->decompress(frame));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK_CAPTURE(BM_CodecRoundTrip, blosc, "blosc")->Arg(1 << 20);
BENCHMARK_CAPTURE(BM_CodecRoundTrip, bzip2, "bzip2")->Arg(64 << 10);

void BM_StepMetadataEncode(benchmark::State& state) {
  // A 200-node diagnostic step: 3 variables x 25600 chunks.
  bp::StepRecord record;
  record.step = 7;
  for (int v = 0; v < 3; ++v) {
    bp::VarRecord var{"vdf_" + std::to_string(v), bp::Datatype::float64,
                      {25600ull * 1229}, {}};
    var.chunks.reserve(25600);
    for (std::uint32_t r = 0; r < 25600; ++r) {
      var.chunks.push_back({{std::uint64_t(r) * 1229},
                            {1229},
                            r,
                            r / 64,
                            std::uint64_t(r) * 9832,
                            9832,
                            9832,
                            "",
                            0.0,
                            1.0});
    }
    record.variables.push_back(std::move(var));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bp::encode_step(record));
  }
}
BENCHMARK(BM_StepMetadataEncode);

}  // namespace

BENCHMARK_MAIN();
