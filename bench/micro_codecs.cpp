// google-benchmark microbenchmarks of the compression stack and the BP
// metadata codec — the hot paths of the real (non-synthetic) write path.
//
// `micro_codecs --json` instead runs a threads x block-size sweep of the
// block-parallel pipeline against the frozen seed kernel and prints one
// JSON document (scripts/bench_report.sh captures it as BENCH_codecs.json).
// The sweep also asserts the pipeline's guarantees while it measures:
// frames byte-identical across thread counts, and every round trip
// verified against the input.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <string>

#include "bp/format.hpp"
#include "compress/codec.hpp"
#include "compress/parallel.hpp"
#include "compress/reference.hpp"
#include "compress/shuffle.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace bitio;

cz::Bytes particle_floats(std::size_t bytes, std::uint64_t seed) {
  Rng rng(seed);
  cz::Bytes out(bytes);
  float x = 1.0f;
  for (std::size_t i = 0; i + 4 <= bytes; i += 4) {
    x += 0.001f * float(rng.normal());
    std::memcpy(&out[i], &x, 4);
  }
  return out;
}

void BM_Shuffle(benchmark::State& state) {
  const auto data = particle_floats(std::size_t(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cz::shuffle(data, 4));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Shuffle)->Arg(64 << 10)->Arg(1 << 20);

void BM_CodecCompress(benchmark::State& state, const char* name) {
  const auto codec = cz::make_codec(name, 4);
  const auto data = particle_floats(std::size_t(state.range(0)), 2);
  std::size_t compressed = 0;
  for (auto _ : state) {
    auto frame = codec->compress(data);
    compressed = frame.size();
    benchmark::DoNotOptimize(frame);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
  state.counters["ratio"] =
      double(compressed) / double(std::size_t(state.range(0)));
}
BENCHMARK_CAPTURE(BM_CodecCompress, blosc, "blosc")
    ->Arg(64 << 10)
    ->Arg(1 << 20);
BENCHMARK_CAPTURE(BM_CodecCompress, bzip2, "bzip2")->Arg(64 << 10);

void BM_CodecRoundTrip(benchmark::State& state, const char* name) {
  const auto codec = cz::make_codec(name, 4);
  const auto data = particle_floats(std::size_t(state.range(0)), 3);
  const auto frame = codec->compress(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->decompress(frame));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK_CAPTURE(BM_CodecRoundTrip, blosc, "blosc")->Arg(1 << 20);
BENCHMARK_CAPTURE(BM_CodecRoundTrip, bzip2, "bzip2")->Arg(64 << 10);

void BM_StepMetadataEncode(benchmark::State& state) {
  // A 200-node diagnostic step: 3 variables x 25600 chunks.
  bp::StepRecord record;
  record.step = 7;
  for (int v = 0; v < 3; ++v) {
    bp::VarRecord var{"vdf_" + std::to_string(v), bp::Datatype::float64,
                      {25600ull * 1229}, {}};
    var.chunks.reserve(25600);
    for (std::uint32_t r = 0; r < 25600; ++r) {
      var.chunks.push_back({{std::uint64_t(r) * 1229},
                            {1229},
                            r,
                            r / 64,
                            std::uint64_t(r) * 9832,
                            9832,
                            9832,
                            "",
                            0.0,
                            1.0});
    }
    record.variables.push_back(std::move(var));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bp::encode_step(record));
  }
}
BENCHMARK(BM_StepMetadataEncode);

// ------------------------------------------------------------ json sweep ----

/// Best-of-N wall time of `fn` in seconds (the box is noisy; the minimum
/// is the least-disturbed run).
template <typename Fn>
double best_of(int n, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < n; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

double mbps(std::size_t bytes, double seconds) {
  return seconds > 0 ? double(bytes) / seconds / 1e6 : 0.0;
}

int run_json_sweep() {
  constexpr std::size_t kBytes = 8 << 20;  // float-particle workload
  constexpr int kReps = 5;
  const auto data = particle_floats(kBytes, 42);
  const cz::ByteSpan input(data.data(), data.size());

  Json doc{JsonObject{}};
  doc["workload"]["kind"] = "float-particle-random-walk";
  doc["workload"]["bytes"] = kBytes;
  doc["workload"]["typesize"] = 4;

  // Frozen seed single-thread pipeline: the acceptance baseline.
  cz::Bytes seed_frame;
  const double seed_s =
      best_of(kReps, [&] { seed_frame = cz::seed_blosc_compress(input, 4); });
  doc["seed_kernel"]["compress_MBps"] = mbps(kBytes, seed_s);
  doc["seed_kernel"]["ratio"] = double(kBytes) / double(seed_frame.size());

  const int thread_counts[] = {1, 2, 4};
  const int block_kbs[] = {256, 1024};
  JsonArray sweep;
  bool all_ok = true;
  double best_t4 = 0.0;
  for (const char* name : {"blosc", "bzip2"}) {
    // bzip2 is ~50x slower; sweep it on a slice so the report stays fast.
    const std::size_t nbytes =
        std::string(name) == "bzip2" ? (256 << 10) : kBytes;
    const cz::ByteSpan in(data.data(), nbytes);
    for (int block_kb : block_kbs) {
      cz::Bytes frame_t1;  // reference frame for the determinism check
      for (int threads : thread_counts) {
        const auto codec = cz::make_parallel_codec(
            cz::make_codec(name, 4), threads, std::size_t(block_kb) << 10);
        cz::Bytes frame;
        const double comp_s =
            best_of(kReps, [&] { frame = codec->compress(in); });
        cz::Bytes back;
        const double dec_s =
            best_of(kReps, [&] { back = codec->decompress(frame); });
        const bool round_trip_ok =
            back.size() == nbytes &&
            std::memcmp(back.data(), in.data(), nbytes) == 0;
        if (threads == 1) frame_t1 = frame;
        const bool identical = frame == frame_t1;
        all_ok = all_ok && round_trip_ok && identical;

        Json row{JsonObject{}};
        row["codec"] = name;
        row["threads"] = threads;
        row["block_kb"] = block_kb;
        row["bytes"] = nbytes;
        row["compress_MBps"] = mbps(nbytes, comp_s);
        row["decompress_MBps"] = mbps(nbytes, dec_s);
        row["ratio"] = double(nbytes) / double(frame.size());
        row["frame_bytes"] = frame.size();
        row["identical_to_t1"] = identical;
        row["round_trip_ok"] = round_trip_ok;
        sweep.push_back(std::move(row));
        if (std::string(name) == "blosc" && threads == 4)
          best_t4 = std::max(best_t4, mbps(nbytes, comp_s));
      }
    }
  }
  doc["sweep"] = std::move(sweep);
  // The acceptance headline: blosc pipeline at 4 threads vs the seed
  // single-thread kernel.
  doc["speedup_vs_seed_t4"] = best_t4 / mbps(kBytes, seed_s);
  doc["all_checks_ok"] = all_ok;
  std::printf("%s\n", doc.dump(2).c_str());
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--json") return run_json_sweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
