# Empty dependencies file for binio_test.
# This may be replaced when dependencies are built.
