file(REMOVE_RECURSE
  "CMakeFiles/picmc_test.dir/picmc_test.cpp.o"
  "CMakeFiles/picmc_test.dir/picmc_test.cpp.o.d"
  "picmc_test"
  "picmc_test.pdb"
  "picmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
