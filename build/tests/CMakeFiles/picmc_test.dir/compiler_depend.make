# Empty compiler generated dependencies file for picmc_test.
# This may be replaced when dependencies are built.
