# Empty dependencies file for smpi_test.
# This may be replaced when dependencies are built.
