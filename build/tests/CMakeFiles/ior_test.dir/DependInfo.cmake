
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ior_test.cpp" "tests/CMakeFiles/ior_test.dir/ior_test.cpp.o" "gcc" "tests/CMakeFiles/ior_test.dir/ior_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ior/CMakeFiles/bitio_ior.dir/DependInfo.cmake"
  "/root/repo/build/src/fsim/CMakeFiles/bitio_fsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bitio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
