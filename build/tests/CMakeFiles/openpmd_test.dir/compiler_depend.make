# Empty compiler generated dependencies file for openpmd_test.
# This may be replaced when dependencies are built.
