file(REMOVE_RECURSE
  "CMakeFiles/openpmd_test.dir/openpmd_test.cpp.o"
  "CMakeFiles/openpmd_test.dir/openpmd_test.cpp.o.d"
  "openpmd_test"
  "openpmd_test.pdb"
  "openpmd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openpmd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
