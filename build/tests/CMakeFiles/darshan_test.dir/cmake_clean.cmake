file(REMOVE_RECURSE
  "CMakeFiles/darshan_test.dir/darshan_test.cpp.o"
  "CMakeFiles/darshan_test.dir/darshan_test.cpp.o.d"
  "darshan_test"
  "darshan_test.pdb"
  "darshan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darshan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
