# Empty compiler generated dependencies file for darshan_test.
# This may be replaced when dependencies are built.
