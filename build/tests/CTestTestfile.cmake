# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/smpi_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/fsim_test[1]_include.cmake")
include("/root/repo/build/tests/darshan_test[1]_include.cmake")
include("/root/repo/build/tests/bp_test[1]_include.cmake")
include("/root/repo/build/tests/openpmd_test[1]_include.cmake")
include("/root/repo/build/tests/picmc_test[1]_include.cmake")
include("/root/repo/build/tests/ior_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/binio_test[1]_include.cmake")
