# Empty dependencies file for io_tuning.
# This may be replaced when dependencies are built.
