# Empty compiler generated dependencies file for darshan_report.
# This may be replaced when dependencies are built.
