file(REMOVE_RECURSE
  "CMakeFiles/darshan_report.dir/darshan_report.cpp.o"
  "CMakeFiles/darshan_report.dir/darshan_report.cpp.o.d"
  "darshan_report"
  "darshan_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darshan_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
