file(REMOVE_RECURSE
  "CMakeFiles/ionization_study.dir/ionization_study.cpp.o"
  "CMakeFiles/ionization_study.dir/ionization_study.cpp.o.d"
  "ionization_study"
  "ionization_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ionization_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
