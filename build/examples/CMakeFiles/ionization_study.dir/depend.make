# Empty dependencies file for ionization_study.
# This may be replaced when dependencies are built.
