
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig07_compression.cpp" "bench/CMakeFiles/fig07_compression.dir/fig07_compression.cpp.o" "gcc" "bench/CMakeFiles/fig07_compression.dir/fig07_compression.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bitio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/openpmd/CMakeFiles/bitio_openpmd.dir/DependInfo.cmake"
  "/root/repo/build/src/bp/CMakeFiles/bitio_bp.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/bitio_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/picmc/CMakeFiles/bitio_picmc.dir/DependInfo.cmake"
  "/root/repo/build/src/fsim/CMakeFiles/bitio_fsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bitio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
