# Empty compiler generated dependencies file for fig07_compression.
# This may be replaced when dependencies are built.
