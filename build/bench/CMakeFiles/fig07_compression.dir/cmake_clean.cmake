file(REMOVE_RECURSE
  "CMakeFiles/fig07_compression.dir/fig07_compression.cpp.o"
  "CMakeFiles/fig07_compression.dir/fig07_compression.cpp.o.d"
  "fig07_compression"
  "fig07_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
