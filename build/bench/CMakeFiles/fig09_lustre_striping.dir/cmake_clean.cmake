file(REMOVE_RECURSE
  "CMakeFiles/fig09_lustre_striping.dir/fig09_lustre_striping.cpp.o"
  "CMakeFiles/fig09_lustre_striping.dir/fig09_lustre_striping.cpp.o.d"
  "fig09_lustre_striping"
  "fig09_lustre_striping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_lustre_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
