# Empty dependencies file for fig09_lustre_striping.
# This may be replaced when dependencies are built.
