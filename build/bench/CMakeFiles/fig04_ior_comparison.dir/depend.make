# Empty dependencies file for fig04_ior_comparison.
# This may be replaced when dependencies are built.
