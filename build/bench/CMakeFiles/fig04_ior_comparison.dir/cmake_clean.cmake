file(REMOVE_RECURSE
  "CMakeFiles/fig04_ior_comparison.dir/fig04_ior_comparison.cpp.o"
  "CMakeFiles/fig04_ior_comparison.dir/fig04_ior_comparison.cpp.o.d"
  "fig04_ior_comparison"
  "fig04_ior_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_ior_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
