file(REMOVE_RECURSE
  "CMakeFiles/fig06_aggregators.dir/fig06_aggregators.cpp.o"
  "CMakeFiles/fig06_aggregators.dir/fig06_aggregators.cpp.o.d"
  "fig06_aggregators"
  "fig06_aggregators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_aggregators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
