# Empty compiler generated dependencies file for fig06_aggregators.
# This may be replaced when dependencies are built.
