# Empty compiler generated dependencies file for fig03_openpmd_vs_original.
# This may be replaced when dependencies are built.
