file(REMOVE_RECURSE
  "CMakeFiles/fig03_openpmd_vs_original.dir/fig03_openpmd_vs_original.cpp.o"
  "CMakeFiles/fig03_openpmd_vs_original.dir/fig03_openpmd_vs_original.cpp.o.d"
  "fig03_openpmd_vs_original"
  "fig03_openpmd_vs_original.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_openpmd_vs_original.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
