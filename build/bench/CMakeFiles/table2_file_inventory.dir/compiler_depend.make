# Empty compiler generated dependencies file for table2_file_inventory.
# This may be replaced when dependencies are built.
