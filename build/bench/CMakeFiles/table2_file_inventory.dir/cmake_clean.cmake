file(REMOVE_RECURSE
  "CMakeFiles/table2_file_inventory.dir/table2_file_inventory.cpp.o"
  "CMakeFiles/table2_file_inventory.dir/table2_file_inventory.cpp.o.d"
  "table2_file_inventory"
  "table2_file_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_file_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
