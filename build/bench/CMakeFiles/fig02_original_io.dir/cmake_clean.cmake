file(REMOVE_RECURSE
  "CMakeFiles/fig02_original_io.dir/fig02_original_io.cpp.o"
  "CMakeFiles/fig02_original_io.dir/fig02_original_io.cpp.o.d"
  "fig02_original_io"
  "fig02_original_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_original_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
