# Empty dependencies file for fig02_original_io.
# This may be replaced when dependencies are built.
