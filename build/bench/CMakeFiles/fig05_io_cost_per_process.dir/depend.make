# Empty dependencies file for fig05_io_cost_per_process.
# This may be replaced when dependencies are built.
