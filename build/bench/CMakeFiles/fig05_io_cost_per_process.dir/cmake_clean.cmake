file(REMOVE_RECURSE
  "CMakeFiles/fig05_io_cost_per_process.dir/fig05_io_cost_per_process.cpp.o"
  "CMakeFiles/fig05_io_cost_per_process.dir/fig05_io_cost_per_process.cpp.o.d"
  "fig05_io_cost_per_process"
  "fig05_io_cost_per_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_io_cost_per_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
