# Empty dependencies file for bitio_darshan.
# This may be replaced when dependencies are built.
