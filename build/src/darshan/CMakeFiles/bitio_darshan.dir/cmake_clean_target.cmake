file(REMOVE_RECURSE
  "libbitio_darshan.a"
)
