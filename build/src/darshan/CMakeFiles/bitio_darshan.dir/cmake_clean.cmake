file(REMOVE_RECURSE
  "CMakeFiles/bitio_darshan.dir/darshan.cpp.o"
  "CMakeFiles/bitio_darshan.dir/darshan.cpp.o.d"
  "libbitio_darshan.a"
  "libbitio_darshan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitio_darshan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
