file(REMOVE_RECURSE
  "CMakeFiles/bitio_fsim.dir/des.cpp.o"
  "CMakeFiles/bitio_fsim.dir/des.cpp.o.d"
  "CMakeFiles/bitio_fsim.dir/object_store.cpp.o"
  "CMakeFiles/bitio_fsim.dir/object_store.cpp.o.d"
  "CMakeFiles/bitio_fsim.dir/posix_fs.cpp.o"
  "CMakeFiles/bitio_fsim.dir/posix_fs.cpp.o.d"
  "CMakeFiles/bitio_fsim.dir/storage_model.cpp.o"
  "CMakeFiles/bitio_fsim.dir/storage_model.cpp.o.d"
  "CMakeFiles/bitio_fsim.dir/system_profiles.cpp.o"
  "CMakeFiles/bitio_fsim.dir/system_profiles.cpp.o.d"
  "libbitio_fsim.a"
  "libbitio_fsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitio_fsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
