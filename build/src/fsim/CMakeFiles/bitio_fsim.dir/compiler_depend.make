# Empty compiler generated dependencies file for bitio_fsim.
# This may be replaced when dependencies are built.
