
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsim/des.cpp" "src/fsim/CMakeFiles/bitio_fsim.dir/des.cpp.o" "gcc" "src/fsim/CMakeFiles/bitio_fsim.dir/des.cpp.o.d"
  "/root/repo/src/fsim/object_store.cpp" "src/fsim/CMakeFiles/bitio_fsim.dir/object_store.cpp.o" "gcc" "src/fsim/CMakeFiles/bitio_fsim.dir/object_store.cpp.o.d"
  "/root/repo/src/fsim/posix_fs.cpp" "src/fsim/CMakeFiles/bitio_fsim.dir/posix_fs.cpp.o" "gcc" "src/fsim/CMakeFiles/bitio_fsim.dir/posix_fs.cpp.o.d"
  "/root/repo/src/fsim/storage_model.cpp" "src/fsim/CMakeFiles/bitio_fsim.dir/storage_model.cpp.o" "gcc" "src/fsim/CMakeFiles/bitio_fsim.dir/storage_model.cpp.o.d"
  "/root/repo/src/fsim/system_profiles.cpp" "src/fsim/CMakeFiles/bitio_fsim.dir/system_profiles.cpp.o" "gcc" "src/fsim/CMakeFiles/bitio_fsim.dir/system_profiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bitio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
