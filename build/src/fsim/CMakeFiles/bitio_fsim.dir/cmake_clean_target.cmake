file(REMOVE_RECURSE
  "libbitio_fsim.a"
)
