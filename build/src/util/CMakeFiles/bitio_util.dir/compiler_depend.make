# Empty compiler generated dependencies file for bitio_util.
# This may be replaced when dependencies are built.
