file(REMOVE_RECURSE
  "libbitio_util.a"
)
