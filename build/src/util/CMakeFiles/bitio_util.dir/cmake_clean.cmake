file(REMOVE_RECURSE
  "CMakeFiles/bitio_util.dir/json.cpp.o"
  "CMakeFiles/bitio_util.dir/json.cpp.o.d"
  "CMakeFiles/bitio_util.dir/logging.cpp.o"
  "CMakeFiles/bitio_util.dir/logging.cpp.o.d"
  "CMakeFiles/bitio_util.dir/stats.cpp.o"
  "CMakeFiles/bitio_util.dir/stats.cpp.o.d"
  "CMakeFiles/bitio_util.dir/table.cpp.o"
  "CMakeFiles/bitio_util.dir/table.cpp.o.d"
  "CMakeFiles/bitio_util.dir/toml.cpp.o"
  "CMakeFiles/bitio_util.dir/toml.cpp.o.d"
  "CMakeFiles/bitio_util.dir/units.cpp.o"
  "CMakeFiles/bitio_util.dir/units.cpp.o.d"
  "libbitio_util.a"
  "libbitio_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitio_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
