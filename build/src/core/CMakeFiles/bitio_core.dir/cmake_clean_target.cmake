file(REMOVE_RECURSE
  "libbitio_core.a"
)
