# Empty dependencies file for bitio_core.
# This may be replaced when dependencies are built.
