file(REMOVE_RECURSE
  "CMakeFiles/bitio_core.dir/adaptor.cpp.o"
  "CMakeFiles/bitio_core.dir/adaptor.cpp.o.d"
  "CMakeFiles/bitio_core.dir/io_config.cpp.o"
  "CMakeFiles/bitio_core.dir/io_config.cpp.o.d"
  "CMakeFiles/bitio_core.dir/tuning.cpp.o"
  "CMakeFiles/bitio_core.dir/tuning.cpp.o.d"
  "CMakeFiles/bitio_core.dir/workload.cpp.o"
  "CMakeFiles/bitio_core.dir/workload.cpp.o.d"
  "libbitio_core.a"
  "libbitio_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitio_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
