file(REMOVE_RECURSE
  "libbitio_openpmd.a"
)
