# Empty compiler generated dependencies file for bitio_openpmd.
# This may be replaced when dependencies are built.
