file(REMOVE_RECURSE
  "CMakeFiles/bitio_openpmd.dir/backend.cpp.o"
  "CMakeFiles/bitio_openpmd.dir/backend.cpp.o.d"
  "CMakeFiles/bitio_openpmd.dir/series.cpp.o"
  "CMakeFiles/bitio_openpmd.dir/series.cpp.o.d"
  "libbitio_openpmd.a"
  "libbitio_openpmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitio_openpmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
