# CMake generated Testfile for 
# Source directory: /root/repo/src/openpmd
# Build directory: /root/repo/build/src/openpmd
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
