file(REMOVE_RECURSE
  "CMakeFiles/bitio_smpi.dir/comm.cpp.o"
  "CMakeFiles/bitio_smpi.dir/comm.cpp.o.d"
  "libbitio_smpi.a"
  "libbitio_smpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitio_smpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
