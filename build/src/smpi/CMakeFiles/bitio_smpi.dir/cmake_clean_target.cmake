file(REMOVE_RECURSE
  "libbitio_smpi.a"
)
