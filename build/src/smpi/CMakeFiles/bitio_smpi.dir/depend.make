# Empty dependencies file for bitio_smpi.
# This may be replaced when dependencies are built.
