# Empty dependencies file for bitio_ior.
# This may be replaced when dependencies are built.
