file(REMOVE_RECURSE
  "CMakeFiles/bitio_ior.dir/ior.cpp.o"
  "CMakeFiles/bitio_ior.dir/ior.cpp.o.d"
  "libbitio_ior.a"
  "libbitio_ior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitio_ior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
