file(REMOVE_RECURSE
  "libbitio_ior.a"
)
