file(REMOVE_RECURSE
  "libbitio_compress.a"
)
