# Empty dependencies file for bitio_compress.
# This may be replaced when dependencies are built.
