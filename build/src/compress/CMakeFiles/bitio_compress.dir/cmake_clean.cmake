file(REMOVE_RECURSE
  "CMakeFiles/bitio_compress.dir/bwt.cpp.o"
  "CMakeFiles/bitio_compress.dir/bwt.cpp.o.d"
  "CMakeFiles/bitio_compress.dir/codec.cpp.o"
  "CMakeFiles/bitio_compress.dir/codec.cpp.o.d"
  "CMakeFiles/bitio_compress.dir/huffman.cpp.o"
  "CMakeFiles/bitio_compress.dir/huffman.cpp.o.d"
  "CMakeFiles/bitio_compress.dir/lz.cpp.o"
  "CMakeFiles/bitio_compress.dir/lz.cpp.o.d"
  "CMakeFiles/bitio_compress.dir/shuffle.cpp.o"
  "CMakeFiles/bitio_compress.dir/shuffle.cpp.o.d"
  "libbitio_compress.a"
  "libbitio_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitio_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
