file(REMOVE_RECURSE
  "CMakeFiles/bitio_bp.dir/format.cpp.o"
  "CMakeFiles/bitio_bp.dir/format.cpp.o.d"
  "CMakeFiles/bitio_bp.dir/reader.cpp.o"
  "CMakeFiles/bitio_bp.dir/reader.cpp.o.d"
  "CMakeFiles/bitio_bp.dir/writer.cpp.o"
  "CMakeFiles/bitio_bp.dir/writer.cpp.o.d"
  "libbitio_bp.a"
  "libbitio_bp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitio_bp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
