
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bp/format.cpp" "src/bp/CMakeFiles/bitio_bp.dir/format.cpp.o" "gcc" "src/bp/CMakeFiles/bitio_bp.dir/format.cpp.o.d"
  "/root/repo/src/bp/reader.cpp" "src/bp/CMakeFiles/bitio_bp.dir/reader.cpp.o" "gcc" "src/bp/CMakeFiles/bitio_bp.dir/reader.cpp.o.d"
  "/root/repo/src/bp/writer.cpp" "src/bp/CMakeFiles/bitio_bp.dir/writer.cpp.o" "gcc" "src/bp/CMakeFiles/bitio_bp.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsim/CMakeFiles/bitio_fsim.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/bitio_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bitio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
