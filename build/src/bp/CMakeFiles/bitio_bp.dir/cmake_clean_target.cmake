file(REMOVE_RECURSE
  "libbitio_bp.a"
)
