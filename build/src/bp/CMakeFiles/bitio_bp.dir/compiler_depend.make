# Empty compiler generated dependencies file for bitio_bp.
# This may be replaced when dependencies are built.
