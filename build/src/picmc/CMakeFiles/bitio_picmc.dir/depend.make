# Empty dependencies file for bitio_picmc.
# This may be replaced when dependencies are built.
