
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/picmc/checkpoint.cpp" "src/picmc/CMakeFiles/bitio_picmc.dir/checkpoint.cpp.o" "gcc" "src/picmc/CMakeFiles/bitio_picmc.dir/checkpoint.cpp.o.d"
  "/root/repo/src/picmc/diagnostics.cpp" "src/picmc/CMakeFiles/bitio_picmc.dir/diagnostics.cpp.o" "gcc" "src/picmc/CMakeFiles/bitio_picmc.dir/diagnostics.cpp.o.d"
  "/root/repo/src/picmc/fields.cpp" "src/picmc/CMakeFiles/bitio_picmc.dir/fields.cpp.o" "gcc" "src/picmc/CMakeFiles/bitio_picmc.dir/fields.cpp.o.d"
  "/root/repo/src/picmc/mc.cpp" "src/picmc/CMakeFiles/bitio_picmc.dir/mc.cpp.o" "gcc" "src/picmc/CMakeFiles/bitio_picmc.dir/mc.cpp.o.d"
  "/root/repo/src/picmc/mover.cpp" "src/picmc/CMakeFiles/bitio_picmc.dir/mover.cpp.o" "gcc" "src/picmc/CMakeFiles/bitio_picmc.dir/mover.cpp.o.d"
  "/root/repo/src/picmc/serial_io.cpp" "src/picmc/CMakeFiles/bitio_picmc.dir/serial_io.cpp.o" "gcc" "src/picmc/CMakeFiles/bitio_picmc.dir/serial_io.cpp.o.d"
  "/root/repo/src/picmc/simulation.cpp" "src/picmc/CMakeFiles/bitio_picmc.dir/simulation.cpp.o" "gcc" "src/picmc/CMakeFiles/bitio_picmc.dir/simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsim/CMakeFiles/bitio_fsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bitio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
