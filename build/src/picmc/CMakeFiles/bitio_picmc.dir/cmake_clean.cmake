file(REMOVE_RECURSE
  "CMakeFiles/bitio_picmc.dir/checkpoint.cpp.o"
  "CMakeFiles/bitio_picmc.dir/checkpoint.cpp.o.d"
  "CMakeFiles/bitio_picmc.dir/diagnostics.cpp.o"
  "CMakeFiles/bitio_picmc.dir/diagnostics.cpp.o.d"
  "CMakeFiles/bitio_picmc.dir/fields.cpp.o"
  "CMakeFiles/bitio_picmc.dir/fields.cpp.o.d"
  "CMakeFiles/bitio_picmc.dir/mc.cpp.o"
  "CMakeFiles/bitio_picmc.dir/mc.cpp.o.d"
  "CMakeFiles/bitio_picmc.dir/mover.cpp.o"
  "CMakeFiles/bitio_picmc.dir/mover.cpp.o.d"
  "CMakeFiles/bitio_picmc.dir/serial_io.cpp.o"
  "CMakeFiles/bitio_picmc.dir/serial_io.cpp.o.d"
  "CMakeFiles/bitio_picmc.dir/simulation.cpp.o"
  "CMakeFiles/bitio_picmc.dir/simulation.cpp.o.d"
  "libbitio_picmc.a"
  "libbitio_picmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitio_picmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
