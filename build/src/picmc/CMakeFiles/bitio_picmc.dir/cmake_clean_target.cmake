file(REMOVE_RECURSE
  "libbitio_picmc.a"
)
