#!/usr/bin/env sh
# Regenerate the machine-dependent benchmark reports at the repo root:
#
#   BENCH_codecs.json   micro_codecs threads x block-size sweep of the
#                       block-parallel compression pipeline (compress /
#                       decompress MB/s, ratio, determinism + round-trip
#                       checks, and the headline speedup vs the frozen seed
#                       kernel)
#   BENCH_stream.json   stream_fanout clients x slow-reader-policy sweep of
#                       the miniSST engine + in-situ query service
#                       (queries/s, cache hit rate, steps lost/dropped,
#                       >= 1000 concurrent clients sustained)
#   BENCH_topo.json     topo_sweep flat vs two-level aggregation curves at
#                       1K/10K/50K simulated ranks on the Dardel hierarchy
#                       plus the live 50K-rank scheduler run (GiB/s,
#                       gathered bytes, bounded-pool thread peak).  The
#                       sweep's sanity gate is in-band: two-level must not
#                       lose to flat at >= 10K ranks on >= 16 ranks/node,
#                       and a violation fails this script.
#   BENCH_ckpt.json     ckpt_sweep full-vs-delta checkpoint sweep across
#                       checkpoint_full_interval, clean and with a rotted
#                       newest epoch (bytes stored, dedup savings, chain
#                       restore outcome).  Sanity gates are in-band: every
#                       restore must land bit-exactly, delta sweeps must
#                       not store more than the all-full sweep, and every
#                       faulted cell must fall back and still recover — a
#                       violation fails this script.
#   BENCH_iopath.json   iopath_sweep per-op vs batched vs batched+coalesced
#                       step-write replay at 64/128/256 ranks on the Dardel
#                       profile (step time, GiB/s, trace record counts,
#                       coalesced bytes).  Sanity gates are in-band:
#                       batching must never lose to the per-op path, the
#                       coalesced path must reach >= 2x per-op throughput
#                       at every scale, and a real-payload batched
#                       container must stay byte-identical to the per-op
#                       writer's — a violation fails this script.
#
# Numbers are machine-dependent; the committed files record the box the
# report was last generated on.
#
#   scripts/bench_report.sh [build-dir]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -S "$repo_root" -B "$build_dir" >/dev/null
cmake --build "$build_dir" --target micro_codecs stream_fanout topo_sweep \
  ckpt_sweep iopath_sweep -j "$(nproc 2>/dev/null || echo 4)"

"$build_dir/bench/micro_codecs" --json > "$repo_root/BENCH_codecs.json"
printf 'wrote %s\n' "$repo_root/BENCH_codecs.json"

"$build_dir/bench/stream_fanout" --json > "$repo_root/BENCH_stream.json"
printf 'wrote %s\n' "$repo_root/BENCH_stream.json"

"$build_dir/bench/topo_sweep" --json > "$repo_root/BENCH_topo.json"
printf 'wrote %s\n' "$repo_root/BENCH_topo.json"

"$build_dir/bench/ckpt_sweep" --json > "$repo_root/BENCH_ckpt.json"
printf 'wrote %s\n' "$repo_root/BENCH_ckpt.json"

"$build_dir/bench/iopath_sweep" --json > "$repo_root/BENCH_iopath.json"
printf 'wrote %s\n' "$repo_root/BENCH_iopath.json"
