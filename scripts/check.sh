#!/usr/bin/env sh
# One-shot static-analysis + test gate: everything a reviewer should run
# before merging.  Fails fast on the first broken stage.
#
#   1. strict build        -Wall -Wextra -Werror over the whole tree
#   2. thread-safety       clang -Wthread-safety (plain build + notice
#                          when the toolchain is GCC-only)
#   3. bitio-analyzer      the semantic-index static analysis suite over
#                          src/, bench/, and examples/ (ctest -L lint, which
#                          also runs the analyzer's own fixture tests)
#   4. clang-tidy          bugprone/performance/concurrency profile, with
#                          --warnings-as-errors so findings fail the gate
#                          (no-op without clang-tidy installed)
#   5. stream suite        engine-registry + miniSST lifecycle/policy tests
#                          (ctest -L stream; the same tests also carry the
#                          `concurrency` label for the TSan preset, and the
#                          fan-out sweep is scripts/bench_report.sh ->
#                          BENCH_stream.json)
#   6. topo suite          topology/aggregation + event-driven scheduler
#                          tests (ctest -L topo), then the same label under
#                          ThreadSanitizer (ctest --preset tsan-topo); the
#                          rank sweep is scripts/bench_report.sh ->
#                          BENCH_topo.json
#   7. ckpt suite          incremental-checkpoint tests (delta cadence,
#                          dedup, chain restore, retention pinning, prune
#                          crash-window scrub; ctest -L ckpt), then the
#                          same label under ASan+UBSan (ctest --preset
#                          san-ckpt); the full/delta sweep is
#                          scripts/bench_report.sh -> BENCH_ckpt.json
#   8. iopath suite        batched queue-pair differential tests (byte
#                          identity vs the per-op writer, CZP1 + two-level
#                          composition, Darshan batch counters; ctest -L
#                          iopath), then the iopath_sweep benchmark whose
#                          in-band sanity gate requires batching to beat
#                          the per-op path at 64+ ranks and the coalesced
#                          path to reach >= 2x (the committed report is
#                          scripts/bench_report.sh -> BENCH_iopath.json)
#   9. full test suite     default preset, all labels (includes the `perf`
#                          smoke test; the full codec sweep is
#                          scripts/bench_report.sh -> BENCH_codecs.json)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

step() { printf '\n== %s ==\n' "$*"; }

step "strict build (-Werror)"
cmake --preset strict >/dev/null
cmake --build --preset strict -j "$(nproc 2>/dev/null || echo 4)"

step "thread-safety analysis (clang only)"
cmake --preset analyze >/dev/null
cmake --build --preset analyze -j "$(nproc 2>/dev/null || echo 4)"

step "bitio-analyzer + fixtures (ctest -L lint)"
cmake --preset default >/dev/null
cmake --build --preset default -j "$(nproc 2>/dev/null || echo 4)"
ctest --preset lint

step "clang-tidy (skips without LLVM)"
"$repo_root/scripts/run_clang_tidy.sh" "$repo_root/build"

step "stream engine suite (ctest -L stream)"
ctest --preset stream

step "topology + scheduler suite (ctest -L topo)"
ctest --preset topo

step "topology suite under ThreadSanitizer (ctest --preset tsan-topo)"
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$(nproc 2>/dev/null || echo 4)"
ctest --preset tsan-topo

step "incremental-checkpoint suite (ctest -L ckpt)"
ctest --preset ckpt

step "checkpoint suite under ASan+UBSan (ctest --preset san-ckpt)"
cmake --preset san >/dev/null
cmake --build --preset san -j "$(nproc 2>/dev/null || echo 4)"
ctest --preset san-ckpt

step "batched I/O path suite (ctest -L iopath)"
ctest --preset iopath

step "batched I/O path sweep gate (iopath_sweep)"
cmake --build --preset default -j "$(nproc 2>/dev/null || echo 4)" \
  --target iopath_sweep
"$repo_root/build/bench/iopath_sweep" >/dev/null

step "full test suite"
ctest --preset default

printf '\ncheck.sh: all gates passed\n'
