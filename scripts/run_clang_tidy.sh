#!/usr/bin/env sh
# Run clang-tidy over the sources using the compilation database that every
# CMake preset exports (CMAKE_EXPORT_COMPILE_COMMANDS).  Exits 0 with a
# notice when clang-tidy is not installed so CI images without LLVM still
# pass the gate; the checks themselves live in .clang-tidy.
#
# Usage: scripts/run_clang_tidy.sh [build-dir]
#   build-dir   directory holding compile_commands.json (default: build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_clang_tidy: clang-tidy not found; skipping (install LLVM to enable)" >&2
    exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "run_clang_tidy: $build_dir/compile_commands.json missing;" >&2
    echo "  configure first, e.g.: cmake --preset default" >&2
    exit 1
fi

# Project sources only — third-party and generated code are out of scope.
files=$(find "$repo_root/src" "$repo_root/tools" -name '*.cpp' | sort)

# --warnings-as-errors promotes every enabled check to an error: clang-tidy
# otherwise exits 0 on findings, which would let violations through the gate.
status=0
for f in $files; do
    clang-tidy -p "$build_dir" --quiet --warnings-as-errors='*' "$f" \
        || status=1
done

if [ "$status" -ne 0 ]; then
    echo "run_clang_tidy: violations found (see above)" >&2
fi
exit "$status"
