// Tests for the event-driven rank scheduler (src/smpi/sched.hpp): basic
// collectives and point-to-point, ULFM failure/recovery under the parked
// wait-state model, recv-deadline timeouts, deadlock detection, and the
// bounded-worker-pool guarantee at 10K simulated ranks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "smpi/comm.hpp"
#include "smpi/sched.hpp"
#include "util/error.hpp"

namespace bitio::smpi::sched {
namespace {

std::vector<std::byte> bytes_of(int value) {
  std::vector<std::byte> out(sizeof value);
  std::memcpy(out.data(), &value, sizeof value);
  return out;
}

int int_of(const std::vector<std::byte>& bytes) {
  int value = 0;
  if (bytes.size() == sizeof value)
    std::memcpy(&value, bytes.data(), sizeof value);
  return value;
}

/// Adapter: a program written as a sequence of (state -> Action) lambdas.
class Steps final : public RankProgram {
 public:
  using Step = std::function<Action(RankCtx&)>;
  explicit Steps(std::vector<Step> steps) : steps_(std::move(steps)) {}

  Action step(RankCtx& ctx) override {
    if (state_ >= steps_.size()) return Action::finish();
    return steps_[state_++](ctx);
  }

 private:
  std::vector<Step> steps_;
  std::size_t state_ = 0;
};

// ------------------------------------------------------------ happy path ---

TEST(Sched, BarrierAndExchangeAcrossAllRanks) {
  const int nranks = 17;
  std::atomic<int> after_barrier{0};
  std::atomic<int> sum_checks{0};

  Scheduler scheduler(nranks, [&](int) {
    return std::make_unique<Steps>(std::vector<Steps::Step>{
        [](RankCtx& ctx) {
          ctx.check();
          return Action::barrier();
        },
        [&](RankCtx& ctx) {
          ctx.check();
          after_barrier.fetch_add(1, std::memory_order_relaxed);
          return Action::exchange(bytes_of(ctx.rank() + 1));
        },
        [&](RankCtx& ctx) {
          ctx.check();
          int sum = 0;
          for (const auto& slot : ctx.exchanged()) sum += int_of(slot);
          EXPECT_EQ(sum, nranks * (nranks + 1) / 2);
          sum_checks.fetch_add(1, std::memory_order_relaxed);
          return Action::finish();
        }});
  });
  const SchedReport report = scheduler.run(4);
  EXPECT_EQ(after_barrier.load(), nranks);
  EXPECT_EQ(sum_checks.load(), nranks);
  EXPECT_EQ(report.final_size, nranks);
  EXPECT_EQ(report.recoveries, 0);
  EXPECT_TRUE(report.crashed_ranks.empty());
}

TEST(Sched, SendRecvRing) {
  // Each rank sends its id to (rank+1) % n and receives from its left
  // neighbor; delivery order and content must match the mailbox model.
  const int nranks = 8;
  std::vector<std::atomic<int>> received(nranks);
  Scheduler scheduler(nranks, [&](int) {
    return std::make_unique<Steps>(std::vector<Steps::Step>{
        [](RankCtx& ctx) {
          ctx.check();
          return Action::send((ctx.rank() + 1) % ctx.size(),
                              bytes_of(ctx.rank()));
        },
        [](RankCtx& ctx) {
          ctx.check();
          return Action::recv((ctx.rank() + ctx.size() - 1) % ctx.size());
        },
        [&](RankCtx& ctx) {
          ctx.check();
          received[std::size_t(ctx.rank())] = int_of(ctx.take_recv());
          return Action::finish();
        }});
  });
  scheduler.run(3);
  for (int r = 0; r < nranks; ++r)
    EXPECT_EQ(received[std::size_t(r)].load(), (r + nranks - 1) % nranks);
}

TEST(Sched, RunTwiceIsAnError) {
  Scheduler scheduler(2, [](int) {
    return std::make_unique<Steps>(std::vector<Steps::Step>{});
  });
  scheduler.run(2);
  EXPECT_THROW(scheduler.run(2), UsageError);
}

// ----------------------------------------------------------------- faults ---

/// ULFM survivor: on RankFailedError from a collective, agree + shrink and
/// re-run the collective in the shrunken world.
class UlfmSurvivor final : public RankProgram {
 public:
  explicit UlfmSurvivor(int crash_rank, std::atomic<int>& recovered)
      : crash_rank_(crash_rank), recovered_(recovered) {}

  Action step(RankCtx& ctx) override {
    try {
      ctx.check();
    } catch (const RankFailedError&) {
      recovering_ = true;
      return Action::agree(true);
    }
    switch (state_++) {
      case 0:
        if (ctx.rank() == crash_rank_) throw RankFailure(ctx.rank(), "injected");
        return Action::barrier();
      case 1:
        if (recovering_) {
          state_ = 2;  // agree completed; now shrink
          return Action::shrink();
        }
        ADD_FAILURE() << "barrier completed despite the dead rank";
        return Action::finish();
      case 2: {
        // Post-shrink world: dense ranks, size reduced by one.
        EXPECT_EQ(ctx.size(), expected_size_after_shrink_);
        EXPECT_LT(ctx.rank(), ctx.size());
        recovered_.fetch_add(1, std::memory_order_relaxed);
        return Action::barrier();
      }
      default:
        return Action::finish();
    }
  }

  static constexpr int expected_size_after_shrink_ = 5;

 private:
  int crash_rank_;
  std::atomic<int>& recovered_;
  int state_ = 0;
  bool recovering_ = false;
};

TEST(Sched, UlfmShrinkAfterRankFailure) {
  const int nranks = 6, crash = 2;
  std::atomic<int> recovered{0};
  Scheduler scheduler(
      nranks, [&](int) { return std::make_unique<UlfmSurvivor>(crash, recovered); });
  const SchedReport report = scheduler.run(3);
  EXPECT_EQ(recovered.load(), nranks - 1);
  EXPECT_EQ(report.final_size, nranks - 1);
  EXPECT_EQ(report.recoveries, 1);
  EXPECT_EQ(report.crashed_ranks, std::vector<int>{crash});
}

TEST(Sched, RecvFromDeadRankDeliversRankFailedError) {
  // Rank 1 parks in recv(0); rank 0 dies.  The parked recv must be woken
  // with RankFailedError instead of hanging.
  std::atomic<bool> saw_error{false};
  Scheduler scheduler(2, [&](int rank) {
    if (rank == 0)
      return std::make_unique<Steps>(std::vector<Steps::Step>{
          [](RankCtx&) -> Action { throw RankFailure(0, "boom"); }});
    return std::make_unique<Steps>(std::vector<Steps::Step>{
        [](RankCtx& ctx) {
          ctx.check();
          return Action::recv(0);
        },
        [&](RankCtx& ctx) {
          try {
            ctx.check();
          } catch (const RankFailedError&) {
            saw_error = true;
          }
          return Action::finish();
        }});
  });
  const SchedReport report = scheduler.run(2);
  EXPECT_TRUE(saw_error.load());
  EXPECT_EQ(report.crashed_ranks, std::vector<int>{0});
}

TEST(Sched, RecvDeadlineTimesOutWhileParked) {
  // Rank 1 never sends; rank 0's recv carries a deadline and must be woken
  // with TimeoutError by the timer machinery, not hang or deadlock-fault.
  std::atomic<bool> timed_out{false};
  Scheduler scheduler(2, [&](int rank) {
    if (rank == 1)
      return std::make_unique<Steps>(std::vector<Steps::Step>{
          [](RankCtx& ctx) {
            ctx.check();
            // Park long enough to outlive rank 0's deadline.
            return Action::recv(0, std::chrono::milliseconds(10'000));
          },
          [&](RankCtx& ctx) {
            try {
              ctx.check();
            } catch (const TimeoutError&) {
            }
            return Action::finish();
          }});
    return std::make_unique<Steps>(std::vector<Steps::Step>{
        [](RankCtx& ctx) {
          ctx.check();
          return Action::recv(1, std::chrono::milliseconds(20));
        },
        [&](RankCtx& ctx) {
          try {
            ctx.check();
          } catch (const TimeoutError& e) {
            timed_out = true;
            EXPECT_NE(std::string(e.what()).find("deadline"),
                      std::string::npos);
          }
          // Unblock rank 1 so the run completes.
          return Action::send(1, bytes_of(0));
        }});
  });
  scheduler.run(2);
  EXPECT_TRUE(timed_out.load());
}

TEST(Sched, WaitStateDeadlockIsDetectedNotHung) {
  // Both ranks park in a recv nobody will ever satisfy (and no deadline is
  // set): the scheduler must diagnose the deadlock instead of hanging.
  Scheduler scheduler(2, [](int) {
    return std::make_unique<Steps>(std::vector<Steps::Step>{
        [](RankCtx& ctx) {
          ctx.check();
          return Action::recv((ctx.rank() + 1) % 2);
        },
        [](RankCtx&) { return Action::finish(); }});
  });
  try {
    scheduler.run(2);
    FAIL() << "deadlock not detected";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------------- pool bound ---

int os_thread_count() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line))
    if (line.rfind("Threads:", 0) == 0)
      return std::stoi(line.substr(std::strlen("Threads:")));
  return -1;
}

TEST(Sched, TenThousandRanksStayOnABoundedPool) {
  // The tentpole guarantee: 10K simulated ranks run on `width` workers —
  // OS thread count never approaches the rank count.  run_spmd would need
  // 10,000 threads for this program.
  const int nranks = 10'000, width = 8;
  const int before = os_thread_count();
  ASSERT_GT(before, 0) << "cannot read /proc/self/status";

  std::atomic<int> peak_threads{0};
  std::atomic<int> finished{0};
  Scheduler scheduler(nranks, [&](int) {
    return std::make_unique<Steps>(std::vector<Steps::Step>{
        [&](RankCtx& ctx) {
          ctx.check();
          int now = os_thread_count();
          int prev = peak_threads.load();
          while (now > prev && !peak_threads.compare_exchange_weak(prev, now)) {
          }
          return Action::exchange(bytes_of(ctx.rank()));
        },
        [&](RankCtx& ctx) {
          ctx.check();
          EXPECT_EQ(ctx.exchanged().size(), std::size_t(nranks));
          return Action::barrier();
        },
        [&](RankCtx& ctx) {
          ctx.check();
          finished.fetch_add(1, std::memory_order_relaxed);
          return Action::finish();
        }});
  });
  const SchedReport report = scheduler.run(width);
  EXPECT_EQ(finished.load(), nranks);
  EXPECT_EQ(report.final_size, nranks);
  // The pool adds at most `width` threads on top of whatever the process
  // already ran (gtest, the shared pool's existing workers); allow slack
  // for the shared ThreadPool's lazily-created workers but stay orders of
  // magnitude below nranks.
  EXPECT_LE(peak_threads.load(), before + width + 4)
      << "scheduler spawned ~per-rank threads";
}

}  // namespace
}  // namespace bitio::smpi::sched
