// Fast performance smoke test (labelled `perf`; run with the `perf` test
// preset or `ctest -L perf`).  Guards the headline property of the
// block-parallel pipeline without the full bench sweep: on an 8 MiB
// float-particle workload the optimized pipeline must round-trip exactly
// and beat the frozen seed kernel even at 2 threads.  The full
// threads x block-size report lives in BENCH_codecs.json
// (scripts/bench_report.sh).
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>

#include "compress/codec.hpp"
#include "compress/parallel.hpp"
#include "compress/reference.hpp"
#include "util/rng.hpp"

namespace bitio {
namespace {

cz::Bytes particle_floats(std::size_t bytes, std::uint64_t seed) {
  Rng rng(seed);
  cz::Bytes out(bytes);
  float x = 1.0f;
  for (std::size_t i = 0; i + 4 <= bytes; i += 4) {
    x += 0.001f * float(rng.normal());
    std::memcpy(&out[i], &x, 4);
  }
  return out;
}

/// Best-of-N wall seconds: the minimum is the least-disturbed run, which
/// deflakes the comparison on noisy shared boxes.
template <typename Fn>
double best_of(int n, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < n; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

TEST(PerfSmoke, PipelineBeatsSeedKernelAtTwoThreads) {
  constexpr std::size_t kBytes = 8 << 20;
  const cz::Bytes data = particle_floats(kBytes, 42);
  const cz::ByteSpan input(data.data(), data.size());

  cz::Bytes seed_frame;
  const double seed_s =
      best_of(3, [&] { seed_frame = cz::seed_blosc_compress(input, 4); });

  const auto codec =
      cz::make_parallel_codec(cz::make_blosc_codec(4), 2, 1 << 20);
  cz::Bytes frame;
  const double pipe_s = best_of(3, [&] { frame = codec->compress(input); });

  const cz::Bytes back = codec->decompress(frame);
  ASSERT_EQ(back.size(), data.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);

  const double speedup = seed_s / pipe_s;
  EXPECT_GT(speedup, 1.0) << "seed " << seed_s << " s vs pipeline " << pipe_s
                          << " s on " << kBytes << " bytes";
}

}  // namespace
}  // namespace bitio
