// Tests for the Darshan-like monitor: counter capture from traces, log
// round trip, per-process cost and file-size roll-ups.
#include <gtest/gtest.h>

#include <cstring>

#include "darshan/darshan.hpp"
#include "fsim/system_profiles.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace bitio::darshan {
namespace {

using fsim::FsClient;
using fsim::OpenMode;
using fsim::SharedFs;

fsim::SystemProfile tiny_profile() {
  auto p = fsim::dardel();
  p.ranks_per_node = 4;
  return p;
}

void populate_two_rank_job(SharedFs& fs) {
  std::vector<std::uint8_t> big(2 * MiB, 1);
  std::vector<std::uint8_t> small(4 * KiB, 2);
  FsClient a(fs, 0), b(fs, 1);
  int fd = a.open("out/rank0.dat", OpenMode::create);
  for (int i = 0; i < 8; ++i) a.write(fd, small);
  a.close(fd);
  fd = b.open("out/rank1.dat", OpenMode::create);
  b.write(fd, big);
  b.fsync(fd);
  b.close(fd);
  fd = a.open("out/rank0.dat", OpenMode::read);
  std::vector<std::uint8_t> buf(1024);
  a.read(fd, buf);
  a.close(fd);
}

TEST(Darshan, CapturesCounters) {
  SharedFs fs(8);
  populate_two_rank_job(fs);
  auto replay = replay_trace(tiny_profile(), fs.store(), fs.trace(), 2);
  auto log = capture(fs, replay, {"bit1", 2, 0.0, "/lustre"});

  EXPECT_EQ(log.job.nprocs, 2u);
  EXPECT_DOUBLE_EQ(log.job.runtime_s, replay.makespan);
  EXPECT_EQ(log.total_bytes_written(), 2 * MiB + 32 * KiB);
  EXPECT_EQ(log.total_bytes_read(), 1024u);
  EXPECT_EQ(log.total_files(), 2u);

  // Find rank 0's record for its file.
  const FileRecord* r0 = nullptr;
  const FileRecord* r1 = nullptr;
  for (const auto& r : log.records) {
    if (r.path == "out/rank0.dat" && r.rank == 0) r0 = &r;
    if (r.path == "out/rank1.dat" && r.rank == 1) r1 = &r;
  }
  ASSERT_NE(r0, nullptr);
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r0->writes, 8u);   // pre-coalescing call count preserved
  EXPECT_EQ(r0->opens, 2u);    // create + reopen for read
  EXPECT_EQ(r0->reads, 1u);
  EXPECT_EQ(r1->fsyncs, 1u);
  EXPECT_EQ(r1->bytes_written, 2 * MiB);
  EXPECT_EQ(r1->max_byte_written, 2 * MiB);
  EXPECT_GT(r1->write_time_s, 0.0);
  EXPECT_GT(r0->meta_time_s, 0.0);
}

TEST(Darshan, LogSerializationRoundTrip) {
  SharedFs fs(8);
  populate_two_rank_job(fs);
  auto replay = replay_trace(tiny_profile(), fs.store(), fs.trace(), 2);
  auto log = capture(fs, replay, {"bit1", 2, 0.0, "/lustre"});

  const auto bytes = log.serialize();
  const DarshanLog back = DarshanLog::parse(bytes);
  EXPECT_EQ(back.job.exe, log.job.exe);
  EXPECT_EQ(back.records.size(), log.records.size());
  EXPECT_EQ(back.total_bytes_written(), log.total_bytes_written());
  EXPECT_DOUBLE_EQ(back.total_write_time(), log.total_write_time());

  auto corrupt = bytes;
  corrupt[0] ^= 0x1;
  EXPECT_THROW(DarshanLog::parse(corrupt), FormatError);
  corrupt = bytes;
  corrupt.pop_back();
  EXPECT_THROW(DarshanLog::parse(corrupt), FormatError);
  corrupt = bytes;
  corrupt.push_back(9);
  EXPECT_THROW(DarshanLog::parse(corrupt), FormatError);
}

TEST(Darshan, RecoveryCountersRoundTripInV4Logs) {
  SharedFs fs(8);
  populate_two_rank_job(fs);
  // The recovery machinery charges zero-cost cpu ops tagged "recovery" /
  // "degrade"; capture() folds them into the job-level counters.
  FsClient(fs, 0).charge_cpu(1.5, "recovery");
  FsClient(fs, 0).charge_cpu(0.0, "degrade");
  FsClient(fs, 0).charge_cpu(0.25, "recovery");
  auto replay = replay_trace(tiny_profile(), fs.store(), fs.trace(), 2);
  auto log = capture(fs, replay, {"bit1", 2, 0.0, "/lustre"});
  EXPECT_EQ(log.job.recoveries, 2u);
  EXPECT_EQ(log.job.degradations, 1u);
  EXPECT_DOUBLE_EQ(log.job.t_recovery_s, 1.75);

  const DarshanLog back = DarshanLog::parse(log.serialize());
  EXPECT_EQ(back.job.recoveries, 2u);
  EXPECT_EQ(back.job.degradations, 1u);
  EXPECT_DOUBLE_EQ(back.job.t_recovery_s, 1.75);
  EXPECT_NE(back.text_report().find("recoveries: 2 degradations: 1"),
            std::string::npos);
}

namespace {

// Byte length of one serialized FileRecord minus its path string: rank +
// the 13 v3-era counters, then (v5+) the 5 gather counters and (v7) the
// 3 batched queue-pair counters.
constexpr std::size_t kRecordFixedV3Bytes = 8 + 13 * 8;
constexpr std::size_t kRecordGatherBytes = 5 * 8;
constexpr std::size_t kRecordBatchBytes = 3 * 8;  // v7 queue-pair counters
constexpr std::size_t kJobRecoveryBytes = 3 * 8;  // v4+ recovery counters
constexpr std::size_t kJobCkptBytes = 4 * 8;      // v6 checkpoint counters
constexpr std::size_t kJobBatchHistBytes = 5 * 8;  // v7 ops-per-batch buckets

/// Rewrite a current (v7) serialized log as an older format: strip the
/// job ops-per-batch histogram and per-record batch counters, the 4 job
/// checkpoint counters, optionally the job recovery counters and the
/// per-record gather counters, and patch the magic's version byte.
std::vector<std::uint8_t> downgrade_log(std::vector<std::uint8_t> bytes,
                                        char version) {
  auto u64_at = [&](std::size_t off) {
    std::uint64_t v = 0;
    std::memcpy(&v, bytes.data() + off, sizeof(v));
    return v;
  };
  auto erase_at = [&](std::size_t off, std::size_t n) {
    bytes.erase(bytes.begin() + std::ptrdiff_t(off),
                bytes.begin() + std::ptrdiff_t(off + n));
  };
  std::size_t off = 8;                      // magic
  off += 8 + u64_at(off);                   // exe
  off += 8;                                 // nprocs
  off += 8;                                 // runtime
  off += 8 + u64_at(off);                   // mount
  if (version == '3') {
    erase_at(off, kJobRecoveryBytes + kJobCkptBytes + kJobBatchHistBytes);
  } else {
    off += kJobRecoveryBytes;               // v4+ keep the recovery counters
    if (version == '6') {
      off += kJobCkptBytes;                 // v6 keeps the ckpt counters
      erase_at(off, kJobBatchHistBytes);
    } else {
      erase_at(off, kJobCkptBytes + kJobBatchHistBytes);
    }
  }
  const std::uint64_t nrecords = u64_at(off);
  off += 8;
  for (std::uint64_t r = 0; r < nrecords; ++r) {
    off += 8 + u64_at(off);                 // path
    off += kRecordFixedV3Bytes;
    if (version == '5' || version == '6')
      off += kRecordGatherBytes;            // v5+ keep the gather counters
    else
      erase_at(off, kRecordGatherBytes);
    erase_at(off, kRecordBatchBytes);       // v7 added the batch counters
  }
  for (std::size_t i = 0; i < 8; ++i)
    if (bytes[i] == std::uint8_t('7')) bytes[i] = std::uint8_t(version);
  return bytes;
}

}  // namespace

TEST(Darshan, ParsesLegacyV3LogsWithZeroRecoveryCounters) {
  SharedFs fs(8);
  populate_two_rank_job(fs);
  auto replay = replay_trace(tiny_profile(), fs.store(), fs.trace(), 2);
  auto log = capture(fs, replay, {"bit1", 2, 0.0, "/lustre"});
  const auto bytes = downgrade_log(log.serialize(), '3');

  const DarshanLog back = DarshanLog::parse(bytes);
  EXPECT_EQ(back.job.exe, log.job.exe);
  EXPECT_EQ(back.records.size(), log.records.size());
  EXPECT_EQ(back.total_bytes_written(), log.total_bytes_written());
  EXPECT_EQ(back.job.recoveries, 0u);
  EXPECT_EQ(back.job.degradations, 0u);
  EXPECT_DOUBLE_EQ(back.job.t_recovery_s, 0.0);
}

TEST(Darshan, ParsesLegacyV4LogsWithZeroGatherCounters) {
  SharedFs fs(8);
  populate_two_rank_job(fs);
  FsClient(fs, 0).charge_cpu(1.5, "recovery");
  auto replay = replay_trace(tiny_profile(), fs.store(), fs.trace(), 2);
  auto log = capture(fs, replay, {"bit1", 2, 0.0, "/lustre"});
  const auto bytes = downgrade_log(log.serialize(), '4');

  const DarshanLog back = DarshanLog::parse(bytes);
  EXPECT_EQ(back.records.size(), log.records.size());
  EXPECT_EQ(back.total_bytes_written(), log.total_bytes_written());
  EXPECT_EQ(back.job.recoveries, 1u);  // v4 keeps the recovery counters
  for (const auto& r : back.records) {
    EXPECT_EQ(r.shm_gathers, 0u);
    EXPECT_EQ(r.net_gathers, 0u);
    EXPECT_EQ(r.shm_gather_bytes, 0u);
    EXPECT_EQ(r.net_gather_bytes, 0u);
    EXPECT_DOUBLE_EQ(r.gather_time_s, 0.0);
  }
}

TEST(Darshan, ParsesLegacyV5LogsWithZeroCheckpointCounters) {
  SharedFs fs(8);
  populate_two_rank_job(fs);
  FsClient(fs, 0).charge_cpu(1.5, "recovery");
  auto replay = replay_trace(tiny_profile(), fs.store(), fs.trace(), 2);
  auto log = capture(fs, replay, {"bit1", 2, 0.0, "/lustre"});
  const auto bytes = downgrade_log(log.serialize(), '5');

  const DarshanLog back = DarshanLog::parse(bytes);
  EXPECT_EQ(back.records.size(), log.records.size());
  EXPECT_EQ(back.total_bytes_written(), log.total_bytes_written());
  EXPECT_EQ(back.job.recoveries, 1u);  // v5 keeps the recovery counters
  EXPECT_EQ(back.job.delta_epochs, 0u);
  EXPECT_EQ(back.job.dedup_bytes_saved, 0u);
  EXPECT_EQ(back.job.blocks_restored, 0u);
  EXPECT_DOUBLE_EQ(back.job.t_restore_s, 0.0);
}

TEST(Darshan, FoldsCheckpointCpuTagsIntoJobCounters) {
  SharedFs fs(8);
  populate_two_rank_job(fs);
  // The checkpoint manager annotates its tagged cpu ops: "delta_commit"
  // counts delta epochs, "dedup" carries the bytes a commit skipped,
  // "restore_chain" carries the restore wall time and block-fetch count.
  FsClient(fs, 0).charge_cpu(0.0, "delta_commit");
  FsClient(fs, 0).charge_cpu(0.0, "dedup", 4096);
  FsClient(fs, 0).charge_cpu(0.0, "delta_commit");
  FsClient(fs, 0).charge_cpu(0.0, "dedup", 1024);
  FsClient(fs, 0).charge_cpu(0.125, "restore_chain", 0, 7);
  auto replay = replay_trace(tiny_profile(), fs.store(), fs.trace(), 2);
  auto log = capture(fs, replay, {"bit1", 2, 0.0, "/lustre"});
  EXPECT_EQ(log.job.delta_epochs, 2u);
  EXPECT_EQ(log.job.dedup_bytes_saved, 5120u);
  EXPECT_EQ(log.job.blocks_restored, 7u);
  EXPECT_DOUBLE_EQ(log.job.t_restore_s, 0.125);

  const DarshanLog back = DarshanLog::parse(log.serialize());
  EXPECT_EQ(back.job.delta_epochs, 2u);
  EXPECT_EQ(back.job.dedup_bytes_saved, 5120u);
  EXPECT_EQ(back.job.blocks_restored, 7u);
  EXPECT_DOUBLE_EQ(back.job.t_restore_s, 0.125);
  EXPECT_NE(back.text_report().find("delta_epochs: 2"), std::string::npos);
}

TEST(Darshan, PerProcessCostSplitsByCategory) {
  SharedFs fs(8);
  populate_two_rank_job(fs);
  auto replay = replay_trace(tiny_profile(), fs.store(), fs.trace(), 2);
  auto log = capture(fs, replay, {"bit1", 2, 0.0, "/lustre"});
  const auto cost = log.per_process_cost();
  EXPECT_GT(cost.write_s, 0.0);
  EXPECT_GT(cost.meta_s, 0.0);
  EXPECT_GT(cost.read_s, 0.0);
  // The total time Darshan attributes across categories must equal the
  // replay's total client I/O time.  (The meta/write split can differ for
  // small-record ops, whose single duration spans both categories.)
  double replay_total = 0.0;
  for (const auto& c : replay.clients)
    replay_total += c.write + c.meta + c.read;
  EXPECT_NEAR((cost.write_s + cost.meta_s + cost.read_s) * 2.0, replay_total,
              1e-9);
}

TEST(Darshan, FileSizeStatsMatchStore) {
  SharedFs fs(8);
  populate_two_rank_job(fs);
  auto replay = replay_trace(tiny_profile(), fs.store(), fs.trace(), 2);
  auto log = capture(fs, replay, {"bit1", 2, 0.0, "/lustre"});
  const auto stats = log.file_size_stats();
  EXPECT_EQ(stats.count, 2u);
  EXPECT_EQ(stats.max, 2 * MiB);
  EXPECT_EQ(stats.average, (2 * MiB + 32 * KiB) / 2);
}

TEST(Darshan, ThroughputIsBytesOverRuntime) {
  SharedFs fs(8);
  populate_two_rank_job(fs);
  auto replay = replay_trace(tiny_profile(), fs.store(), fs.trace(), 2);
  auto log = capture(fs, replay, {"bit1", 2, 0.0, "/lustre"});
  EXPECT_NEAR(log.write_throughput_bps(),
              double(log.total_bytes_written()) / replay.makespan, 1e-6);
}

TEST(Darshan, TextReportContainsHeadline) {
  SharedFs fs(8);
  populate_two_rank_job(fs);
  auto replay = replay_trace(tiny_profile(), fs.store(), fs.trace(), 2);
  auto log = capture(fs, replay, {"bit1", 2, 0.0, "/lustre"});
  const std::string report = log.text_report();
  EXPECT_NE(report.find("agg_perf_by_slowest"), std::string::npos);
  EXPECT_NE(report.find("out/rank0.dat"), std::string::npos);
  EXPECT_NE(report.find("per-process cost"), std::string::npos);
}

TEST(Darshan, RejectsMismatchedReplay) {
  SharedFs fs(8);
  populate_two_rank_job(fs);
  fsim::ReplayReport bogus;
  bogus.op_durations.assign(3, 0.0);  // wrong length
  EXPECT_THROW(capture(fs, bogus, {}), UsageError);
}

TEST(Darshan, DrainLaneTimeAttributedOffCriticalPath) {
  // One rank, two lanes: lane 0 is the critical path, lane 1 the async
  // drain (BP5 AsyncWrite).  Byte/call counters merge; time splits.
  SharedFs fs(8);
  FsClient rank0(fs, 0);
  FsClient drain(fs, 0, /*lane=*/1);
  EXPECT_EQ(drain.lane(), 1u);

  std::vector<std::uint8_t> block(MiB, 7);
  int fd = rank0.open("out/data.0", OpenMode::create);
  rank0.write(fd, block);
  rank0.close(fd);
  fd = drain.open("out/data.0", OpenMode::append);
  for (int i = 0; i < 4; ++i) drain.write(fd, block);
  drain.close(fd);

  const auto replay = replay_trace(tiny_profile(), fs.store(), fs.trace(), 1);
  EXPECT_GT(replay.mean_drain_time(), 0.0);

  const auto log = capture(fs, replay, {"bit1", 1, 0.0, "/lustre"});
  ASSERT_EQ(log.records.size(), 1u);
  const FileRecord& r = log.records[0];
  EXPECT_EQ(r.bytes_written, 5 * MiB);
  EXPECT_EQ(r.writes, 5u);
  EXPECT_GT(r.write_time_s, 0.0);   // the 1 MiB critical-path write
  EXPECT_GT(r.drain_time_s, 0.0);   // the 4 MiB drained in the background
  EXPECT_GT(r.drain_time_s, r.write_time_s);

  const auto cost = log.per_process_cost();
  EXPECT_GT(cost.drain_s, 0.0);
  EXPECT_DOUBLE_EQ(cost.drain_s, r.drain_time_s);

  // drain_time_s survives the binary log round trip.
  const auto back = DarshanLog::parse(log.serialize());
  ASSERT_EQ(back.records.size(), 1u);
  EXPECT_DOUBLE_EQ(back.records[0].drain_time_s, r.drain_time_s);
  // And the text report exposes the new column.
  EXPECT_NE(log.text_report().find("t_drain"), std::string::npos);
}

}  // namespace
}  // namespace bitio::darshan
