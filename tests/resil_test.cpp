// Tests for the resilience subsystem: deterministic fault injection in the
// simulated file system, end-to-end CRC detection of injected corruption,
// and CheckpointManager's commit/retry/retention/scrub/restart-fallback
// behaviour — including the full injected-fault recovery scenario (corrupt
// the newest epoch, recover from the previous one, re-run to a bit-identical
// final state).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <numeric>

#include "bp/engine.hpp"
#include "bp/reader.hpp"
#include "bp/writer.hpp"
#include "darshan/darshan.hpp"
#include "fsim/fault_plan.hpp"
#include "fsim/posix_fs.hpp"
#include "fsim/storage_model.hpp"
#include "fsim/system_profiles.hpp"
#include "picmc/simulation.hpp"
#include "resil/checkpoint_manager.hpp"
#include "util/error.hpp"

namespace bitio::resil {
namespace {

using fsim::FaultKind;
using fsim::FaultPlan;
using fsim::FaultRule;
using fsim::FsClient;
using fsim::SharedFs;
using picmc::SimConfig;
using picmc::Simulation;

std::vector<std::uint8_t> pattern_bytes(std::size_t n) {
  std::vector<std::uint8_t> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = std::uint8_t(i * 37 + 11);
  return data;
}

// ------------------------------------------------------------ fault plan ---

TEST(FaultPlan, ValidatesRules) {
  EXPECT_NO_THROW(
      FaultPlan(1, {{FaultKind::bit_flip, "f", 1, 0.0, 1, -1, 0}}).validate());
  // Probability outside [0, 1].
  EXPECT_THROW(
      FaultPlan(1, {{FaultKind::eio, "", 0, 1.5, 1, -1, 0}}).validate(),
      UsageError);
  // Neither nth nor probability selects a firing write.
  EXPECT_THROW(
      FaultPlan(1, {{FaultKind::bit_flip, "", 0, 0.0, 1, -1, 0}}).validate(),
      UsageError);
  // rank_crash needs a rank.
  EXPECT_THROW(
      FaultPlan(1, {{FaultKind::rank_crash, "", 0, 0.0, 1, -1, 5}}).validate(),
      UsageError);
  // Negative firing bound.
  EXPECT_THROW(
      FaultPlan(1, {{FaultKind::eio, "", 1, 0.0, -2, -1, 0}}).validate(),
      UsageError);
  // Both nth and probability on one rule is ambiguous; the error names the
  // offending rule's index.
  try {
    FaultPlan(1, {{FaultKind::bit_flip, "f", 1, 0.0, 1, -1, 0},
                  {FaultKind::eio, "", 2, 0.5, 1, -1, 0}})
        .validate();
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("rule 1"), std::string::npos);
  }
  // Two rank_crash rules scheduling the same rank cannot both fire.
  try {
    FaultPlan(1, {{FaultKind::rank_crash, "", 0, 0.0, 1, 2, 5},
                  {FaultKind::rank_crash, "", 0, 0.0, 1, 2, 9}})
        .validate();
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("rule 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("rank 2"), std::string::npos);
  }
  // Distinct ranks are fine.
  EXPECT_NO_THROW(
      FaultPlan(1, {{FaultKind::rank_crash, "", 0, 0.0, 1, 2, 5},
                    {FaultKind::rank_crash, "", 0, 0.0, 1, 3, 9}})
          .validate());
}

TEST(FaultPlan, ProbabilisticDrawsAreSeedDeterministic) {
  // Two file systems with the same plan and the same write sequence must
  // inject the same faults at the same ordinals.
  auto fault_sequence = [](std::uint64_t seed) {
    SharedFs fs(4);
    fs.set_fault_plan(
        FaultPlan(seed, {{FaultKind::bit_flip, "", 0, 0.4, 0, -1, 0}}));
    FsClient io(fs, 0);
    for (int f = 0; f < 32; ++f) {
      const int fd = io.open("d/f" + std::to_string(f), fsim::OpenMode::create);
      io.write(fd, pattern_bytes(64));
      io.close(fd);
    }
    std::vector<FaultKind> kinds;
    for (const auto& op : fs.trace())
      if (op.kind == fsim::OpKind::write) kinds.push_back(op.fault);
    return kinds;
  };
  const auto a = fault_sequence(99);
  EXPECT_EQ(a, fault_sequence(99));
  // Some writes fault, some don't (p = 0.4 over 32 writes).
  EXPECT_NE(std::count(a.begin(), a.end(), FaultKind::bit_flip), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), FaultKind::none), 0);
  // A different seed picks a different subset.
  EXPECT_NE(a, fault_sequence(100));
}

TEST(FaultPlan, TornWritePersistsStrictPrefix) {
  SharedFs fs(4);
  fs.set_fault_plan(
      FaultPlan(7, {{FaultKind::torn_write, "victim", 1, 0.0, 1, -1, 0}}));
  FsClient io(fs, 0);
  const auto data = pattern_bytes(256);
  const int fd = io.open("victim", fsim::OpenMode::create);
  io.write(fd, data);  // the caller sees success (classic lost tail)
  io.close(fd);
  EXPECT_EQ(fs.injected_fault_count(), 1u);
  const auto stored = io.read_all("victim");
  ASSERT_LT(stored.size(), data.size());
  // What did land is the unaltered prefix.
  EXPECT_TRUE(std::equal(stored.begin(), stored.end(), data.begin()));
  // The trace records the injection with the persisted byte count.
  bool traced = false;
  for (const auto& op : fs.trace())
    if (op.fault == FaultKind::torn_write) {
      traced = true;
      EXPECT_EQ(op.bytes, stored.size());
    }
  EXPECT_TRUE(traced);
}

TEST(FaultPlan, BitFlipFlipsExactlyOneBit) {
  SharedFs fs(4);
  fs.set_fault_plan(
      FaultPlan(7, {{FaultKind::bit_flip, "victim", 1, 0.0, 1, -1, 0}}));
  FsClient io(fs, 0);
  const auto data = pattern_bytes(128);
  io.write_file("victim", data);
  const auto stored = io.read_all("victim");
  ASSERT_EQ(stored.size(), data.size());
  int flipped_bits = 0;
  for (std::size_t i = 0; i < data.size(); ++i)
    flipped_bits += std::popcount(std::uint8_t(stored[i] ^ data[i]));
  EXPECT_EQ(flipped_bits, 1);
}

TEST(FaultPlan, TransientEioThrowsOnceThenSucceeds) {
  SharedFs fs(4);
  fs.set_fault_plan(
      FaultPlan(7, {{FaultKind::eio, "victim", 1, 0.0, 1, -1, 0}}));
  FsClient io(fs, 0);
  const auto data = pattern_bytes(64);
  const int fd = io.open("victim", fsim::OpenMode::create);
  EXPECT_THROW(io.write(fd, data), IoError);
  io.write(fd, data);  // rule exhausted (times = 1): the retry lands
  io.close(fd);
  EXPECT_EQ(io.read_all("victim").size(), data.size());
}

TEST(FaultPlan, RankCrashIsConsultedAtStepBoundaries) {
  SharedFs fs(4);
  fs.set_fault_plan(
      FaultPlan(7, {{FaultKind::rank_crash, "", 0, 0.0, 1, 2, 5}}));
  EXPECT_TRUE(fs.should_crash(2, 5));
  EXPECT_FALSE(fs.should_crash(2, 4));
  EXPECT_FALSE(fs.should_crash(1, 5));
}

TEST(FaultPlan, DarshanAttributesInjectedFaults) {
  SharedFs fs(4);
  fs.set_fault_plan(
      FaultPlan(7, {{FaultKind::bit_flip, "victim", 1, 0.0, 1, -1, 0}}));
  FsClient io(fs, 0);
  io.write_file("victim", pattern_bytes(64));
  io.write_file("clean", pattern_bytes(64));

  const auto replay = fsim::replay_trace(fsim::dardel(), fs.store(),
                                         fs.trace(), 1);
  const auto log = darshan::capture(fs, replay, {});
  EXPECT_EQ(log.total_faults_injected(), 1u);
  for (const auto& r : log.records)
    EXPECT_EQ(r.faults_injected, r.path == "victim" ? 1u : 0u);
  // Counter survives the binary log round trip (format version 3).
  const auto parsed = darshan::DarshanLog::parse(log.serialize());
  EXPECT_EQ(parsed.total_faults_injected(), 1u);
}

// --------------------------------------------- injected faults vs bp CRCs ---

// Write a small real-payload container with a fault armed against the nth
// write to `target`, then return true iff the reader detects the corruption
// end to end.
bool detection_round(FaultKind kind, const std::string& target,
                     std::uint64_t nth = 1) {
  SharedFs fs(4);
  fs.set_fault_plan(FaultPlan(11, {{kind, target, nth, 0.0, 1, -1, 0}}));
  {
    bp::EngineConfig config;
    config.num_aggregators = 1;
    auto writer = bp::make_engine(fs, "out/c.bp4", config, 1);
    writer->begin_step(0);
    std::vector<float> v(32);
    std::iota(v.begin(), v.end(), 0.f);
    writer->put<float>(0, "x", {32}, {0}, {32},
                       std::span<const float>(v.data(), v.size()));
    writer->end_step();
    writer->close();
  }
  if (fs.injected_fault_count() == 0) return false;  // fault never armed
  // Zap the v6 footer trailer: an intact footer is a self-CRC'd redundant
  // copy of the step metadata, so md.0/md.idx corruption would be *healed*
  // rather than detected.  This matrix is about the scan path's CRCs.
  auto& md = fs.store().file("out/c.bp4/md.0");
  if (!md.data.empty()) md.data.back() ^= 0xFF;
  try {
    bp::Reader reader = bp::Reader::open(fs, 0, "out/c.bp4");
    if (!bp::Reader::all_ok(reader.verify())) return true;
    for (const std::uint64_t step : reader.steps())
      for (const auto& name : reader.variables(step)) reader.read(step, name);
  } catch (const FormatError&) {
    return true;
  }
  return false;
}

TEST(InjectedFaults, CrcCatchesEveryInjectedCorruption) {
  // The detection matrix: silent flips and torn writes against the data
  // subfile and both metadata surfaces must all be caught (the paper's
  // integrity claim for format v5: no undetected corruption).
  EXPECT_TRUE(detection_round(FaultKind::bit_flip, "data.0"));
  EXPECT_TRUE(detection_round(FaultKind::torn_write, "data.0"));
  EXPECT_TRUE(detection_round(FaultKind::bit_flip, "md.0"));
  EXPECT_TRUE(detection_round(FaultKind::torn_write, "md.0"));
  // md.idx write 1 is the reserved header (re-patched at close, so tearing
  // it is harmless by design); write 2 is the step's index entry, whose
  // loss after a committed step must be caught.
  EXPECT_TRUE(detection_round(FaultKind::torn_write, "md.idx", 2));
}

// ------------------------------------------------------ checkpoint manager ---

core::Bit1IoConfig resil_config(int retain = 2) {
  core::Bit1IoConfig config;
  config.checkpoint_interval = 4;
  config.checkpoint_retain = retain;
  return config;
}

SimConfig small_case() {
  auto config = SimConfig::ionization_case(32, 16);
  config.last_step = 10;
  return config;
}

void run_until(Simulation& sim, std::uint64_t step) {
  while (sim.current_step() < step) sim.step();
}

// Flip one bit inside the epoch's data payload without going through the
// write path — corruption that happens *after* commit validation, like
// media decay between checkpoint and restart.
void silently_corrupt_epoch(SharedFs& fs, const CheckpointManager& manager,
                            std::uint64_t epoch) {
  for (const auto* node :
       fs.store().list_recursive(manager.epoch_dir(epoch))) {
    if (node->path.find("/data.") == std::string::npos || node->size == 0)
      continue;
    fs.store().file(node->path).data[0] ^= 0x10;
    return;
  }
  FAIL() << "no data subfile found in epoch " << epoch;
}

TEST(CheckpointManager, CommitWritesManifestAtomically) {
  SharedFs fs(8);
  Simulation sim(small_case());
  sim.initialize();
  CheckpointManager manager(fs, "run", resil_config(), 1);
  manager.stage(0, sim);
  const std::uint64_t epoch = manager.commit();
  EXPECT_EQ(epoch, 1u);
  EXPECT_TRUE(fs.store().file_exists("run/resil/epoch_1/MANIFEST"));
  EXPECT_FALSE(fs.store().file_exists("run/resil/epoch_1/MANIFEST.tmp"));
  FsClient io(fs, 0);
  const auto bytes = io.read_all("run/resil/epoch_1/MANIFEST");
  const Json manifest = Json::parse(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  EXPECT_EQ(manifest.at("epoch").as_uint(), 1u);
  EXPECT_EQ(manifest.at("step").as_uint(), sim.current_step());
  EXPECT_EQ(manifest.at("nranks").as_int(), 1);
  EXPECT_EQ(manager.stats().epochs_written, 1u);
}

TEST(CheckpointManager, RetentionKeepsNewestKEpochs) {
  SharedFs fs(8);
  auto config = small_case();
  config.last_step = 100;
  Simulation sim(config);
  sim.initialize();
  CheckpointManager manager(fs, "run", resil_config(/*retain=*/2), 1);
  for (int i = 0; i < 4; ++i) {
    run_until(sim, std::uint64_t(4 * (i + 1)));
    manager.stage(0, sim);
    manager.commit();
  }
  EXPECT_EQ(manager.committed_epochs(),
            (std::vector<std::uint64_t>{3, 4}));
  EXPECT_EQ(manager.stats().epochs_pruned, 2u);
  // Pruned epochs are gone wholesale, not just de-committed.
  EXPECT_TRUE(fs.store().list_recursive("run/resil/epoch_1").empty());
}

TEST(CheckpointManager, CommitRetriesThroughTransientFaults) {
  SharedFs fs(8);
  // The first write under the epoch tree fails with EIO; the retry runs
  // against an exhausted rule and succeeds.
  fs.set_fault_plan(
      FaultPlan(3, {{FaultKind::eio, "resil/epoch_", 1, 0.0, 1, -1, 0}}));
  Simulation sim(small_case());
  sim.initialize();
  CheckpointManager manager(fs, "run", resil_config(), 1);
  manager.stage(0, sim);
  EXPECT_EQ(manager.commit(), 1u);
  EXPECT_EQ(manager.stats().write_retries, 1u);
  EXPECT_EQ(manager.stats().transient_faults, 1u);
  // The exponential backoff shows up on the rank's timeline.
  bool backoff = false;
  for (const auto& op : fs.trace())
    if (op.kind == fsim::OpKind::cpu && op.tag == "backoff") backoff = true;
  EXPECT_TRUE(backoff);
  // And the epoch that finally landed verifies clean.
  EXPECT_EQ(manager.scrub().corrupt_chunks, 0u);
}

TEST(CheckpointManager, CommitRewritesEpochCorruptedDuringWrite) {
  SharedFs fs(8);
  // A silent bit flip lands in the epoch's data subfile as it is written:
  // commit's validation pass must catch it and rewrite the epoch.
  fs.set_fault_plan(FaultPlan(
      5, {{FaultKind::bit_flip, "resil/epoch_1/dmp_file.bp4/data.", 1, 0.0,
           1, -1, 0}}));
  Simulation sim(small_case());
  sim.initialize();
  CheckpointManager manager(fs, "run", resil_config(), 1);
  manager.stage(0, sim);
  EXPECT_EQ(manager.commit(), 1u);
  EXPECT_GE(manager.stats().corrupt_chunks_detected, 1u);
  EXPECT_EQ(manager.stats().write_retries, 1u);
  EXPECT_EQ(manager.scrub().corrupt_chunks, 0u);
}

TEST(CheckpointManager, CommitGivesUpAfterBoundedRetries) {
  SharedFs fs(8);
  // Every write under the epoch tree fails: commit must stop after
  // kMaxCommitAttempts, not spin forever.
  fs.set_fault_plan(
      FaultPlan(3, {{FaultKind::eio, "resil/epoch_", 0, 1.0, 0, -1, 0}}));
  Simulation sim(small_case());
  sim.initialize();
  CheckpointManager manager(fs, "run", resil_config(), 1);
  manager.stage(0, sim);
  EXPECT_THROW(manager.commit(), IoError);
  EXPECT_EQ(manager.stats().write_retries,
            std::uint64_t(CheckpointManager::kMaxCommitAttempts - 1));
  EXPECT_TRUE(manager.committed_epochs().empty());
}

TEST(CheckpointManager, ScrubReportsCorruptEpochs) {
  SharedFs fs(8);
  auto config = small_case();
  config.last_step = 100;
  Simulation sim(config);
  sim.initialize();
  CheckpointManager manager(fs, "run", resil_config(), 1);
  for (int i = 0; i < 2; ++i) {
    run_until(sim, std::uint64_t(4 * (i + 1)));
    manager.stage(0, sim);
    manager.commit();
  }
  EXPECT_EQ(manager.scrub().epochs_ok, 2);

  silently_corrupt_epoch(fs, manager, 2);
  const ScrubReport report = manager.scrub();
  EXPECT_EQ(report.epochs_scanned, 2);
  EXPECT_EQ(report.epochs_ok, 1);
  EXPECT_EQ(report.corrupt_epochs, (std::vector<std::uint64_t>{2}));
  EXPECT_GE(report.corrupt_chunks, 1u);
}

TEST(CheckpointManager, StatsJsonIsWrittenAndParses) {
  SharedFs fs(8);
  Simulation sim(small_case());
  sim.initialize();
  CheckpointManager manager(fs, "run", resil_config(), 1);
  manager.stage(0, sim);
  manager.commit();
  manager.write_stats_json();
  FsClient io(fs, 0);
  const auto bytes = io.read_all("run/resil/resilience.json");
  const Json stats = Json::parse(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  EXPECT_EQ(stats.at("epochs_written").as_uint(), 1u);
  EXPECT_EQ(stats.at("retained_epochs").as_uint(), 1u);
  EXPECT_EQ(stats.at("write_retries").as_uint(), 0u);
}

// The acceptance scenario: the newest epoch is silently corrupted after a
// validated commit; restart detects it, falls back to the previous epoch,
// and re-running from there reproduces the unfaulted reference bit for bit.
TEST(CheckpointManager, RestartFallsBackPastCorruptEpochBitExactly) {
  const auto config = small_case();

  // Unfaulted reference: one continuous 0 -> 10 run.
  Simulation reference(config);
  reference.initialize();
  run_until(reference, 10);

  // Checkpointed run: epochs at steps 4 and 8.
  SharedFs fs(8);
  CheckpointManager manager(fs, "run", resil_config(), 1);
  {
    Simulation sim(config);
    sim.initialize();
    run_until(sim, 4);
    manager.stage(0, sim);
    manager.commit();  // epoch 1 @ step 4
    run_until(sim, 8);
    manager.stage(0, sim);
    manager.commit();  // epoch 2 @ step 8
    // The rank "crashes" here; afterwards the newest epoch rots on disk.
  }
  silently_corrupt_epoch(fs, manager, 2);

  // Restart: a fresh simulation recovered from the newest *verifying*
  // epoch, which is epoch 1 at step 4.
  Simulation restarted(config);
  restarted.initialize();
  const RestartReport report = manager.restore(restarted);
  ASSERT_TRUE(report.recovered);
  EXPECT_EQ(report.epoch, 1u);
  EXPECT_EQ(report.step, 4u);
  EXPECT_EQ(report.epochs_tried, 2);
  EXPECT_EQ(report.rejected, (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(manager.stats().restore_fallbacks, 1u);
  EXPECT_GE(manager.stats().corrupt_chunks_detected, 1u);

  run_until(restarted, 10);
  EXPECT_EQ(restarted.current_step(), reference.current_step());
  EXPECT_EQ(restarted.rng().state(), reference.rng().state());
  EXPECT_EQ(restarted.ionization_events(), reference.ionization_events());
  EXPECT_EQ(restarted.ionized_weight(), reference.ionized_weight());
  for (std::size_t s = 0; s < reference.species_count(); ++s) {
    const auto& a = reference.species(s).particles;
    const auto& b = restarted.species(s).particles;
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.x(), b.x());
    EXPECT_EQ(a.vx(), b.vx());
    EXPECT_EQ(a.vy(), b.vy());
    EXPECT_EQ(a.vz(), b.vz());
    EXPECT_EQ(a.w(), b.w());
  }
}

TEST(CheckpointManager, RestoreReportsUnrecoverableWhenAllEpochsCorrupt) {
  SharedFs fs(8);
  Simulation sim(small_case());
  sim.initialize();
  CheckpointManager manager(fs, "run", resil_config(), 1);
  manager.stage(0, sim);
  manager.commit();
  silently_corrupt_epoch(fs, manager, 1);

  Simulation restarted(small_case());
  restarted.initialize();
  const RestartReport report = manager.restore(restarted);
  EXPECT_FALSE(report.recovered);
  EXPECT_EQ(report.epochs_tried, 1);
  EXPECT_EQ(report.rejected, (std::vector<std::uint64_t>{1}));
}

TEST(ResilientSink, RoutesCheckpointsThroughEpochs) {
  SharedFs fs(8);
  auto io_config = resil_config();
  auto manager =
      std::make_shared<CheckpointManager>(fs, "run", io_config, 1);
  auto inner = core::make_diagnostics_sink(fs, "run", io_config, 1);
  ResilientSink sink(std::move(inner), manager);
  EXPECT_EQ(sink.sink_name(), "resilient+openpmd");

  Simulation sim(small_case());
  sim.initialize();
  run_until(sim, 4);
  sink.stage_checkpoint(0, sim);
  sink.flush_checkpoint();
  EXPECT_EQ(manager->committed_epochs(), (std::vector<std::uint64_t>{1}));
  sink.close();
  EXPECT_TRUE(fs.store().file_exists("run/resil/resilience.json"));
}

}  // namespace
}  // namespace bitio::resil
