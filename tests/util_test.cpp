// Unit tests for the util module: units, rng, stats, json, toml, table.
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/toml.hpp"
#include "util/units.hpp"

namespace bitio {
namespace {

// ---------------------------------------------------------------- units ---

TEST(Units, FormatBytesMatchesPaperStyle) {
  EXPECT_EQ(format_bytes(13 * KiB), "13KiB");
  EXPECT_EQ(format_bytes(std::uint64_t(1.9 * double(MiB))), "1.9MiB");
  EXPECT_EQ(format_bytes(326 * MiB), "326MiB");
  EXPECT_EQ(format_bytes(std::uint64_t(1.1 * double(GiB))), "1.1GiB");
  EXPECT_EQ(format_bytes(512), "512B");
}

TEST(Units, ParseSizeAcceptsLfsNotation) {
  EXPECT_EQ(parse_size("16M"), 16 * MiB);
  EXPECT_EQ(parse_size("1MB"), 1 * MiB);
  EXPECT_EQ(parse_size("4MiB"), 4 * MiB);
  EXPECT_EQ(parse_size("2G"), 2 * GiB);
  EXPECT_EQ(parse_size("64K"), 64 * KiB);
  EXPECT_EQ(parse_size("123"), 123u);
  EXPECT_EQ(parse_size("1.5K"), 1536u);
}

TEST(Units, ParseSizeRejectsGarbage) {
  EXPECT_THROW(parse_size(""), FormatError);
  EXPECT_THROW(parse_size("abc"), FormatError);
  EXPECT_THROW(parse_size("12Q"), FormatError);
  EXPECT_THROW(parse_size("12Kx"), FormatError);
  EXPECT_THROW(parse_size("-5M"), FormatError);
}

TEST(Units, FormatGibps) {
  EXPECT_EQ(format_gibps(15.80 * double(GiB)), "15.80 GiB/s");
  EXPECT_EQ(format_gibps(0.41 * double(GiB)), "0.41 GiB/s");
}

// ------------------------------------------------------------------ rng ---

TEST(Rng, DeterministicPerSeed) {
  Rng a(42, 0), b(42, 0), c(42, 1);
  EXPECT_EQ(a(), b());
  EXPECT_EQ(a(), b());
  // Different streams diverge immediately with overwhelming probability.
  Rng a2(42, 0);
  EXPECT_NE(a2(), c());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowIsBounded) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, NormalMoments) {
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

// ---------------------------------------------------------------- stats ---

TEST(Stats, RunningBasics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(Stats, MergeEqualsCombined) {
  RunningStats a, b, all;
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 2.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, Percentile) {
  PercentileSampler p;
  for (int i = 1; i <= 100; ++i) p.add(double(i));
  EXPECT_DOUBLE_EQ(p.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(p.percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(p.percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 1.0);
}

TEST(Stats, SizeHistogramBuckets) {
  SizeHistogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.bucket(0), 2u);  // 0 and 1
  EXPECT_EQ(h.bucket(1), 2u);  // 2 and 3
  EXPECT_EQ(h.bucket(10), 1u);
  EXPECT_EQ(h.total(), 5u);
}

// ----------------------------------------------------------------- json ---

TEST(Json, RoundTrip) {
  Json doc{JsonObject{}};
  doc["name"] = "profiling";
  doc["rank"] = 3;
  doc["time_us"] = 12.5;
  doc["ok"] = true;
  doc["missing"] = nullptr;
  doc["list"].push_back(1);
  doc["list"].push_back("two");

  const std::string text = doc.dump(2);
  Json back = Json::parse(text);
  EXPECT_EQ(back, doc);
  EXPECT_EQ(back.at("name").as_string(), "profiling");
  EXPECT_EQ(back.at("rank").as_int(), 3);
  EXPECT_TRUE(back.at("ok").as_bool());
  EXPECT_TRUE(back.at("missing").is_null());
  EXPECT_EQ(back.at("list").size(), 2u);
}

TEST(Json, ParsesEscapesAndNested) {
  Json v = Json::parse(R"({"a": "x\n\"y\"", "b": [1, 2, {"c": -3.5e2}]})");
  EXPECT_EQ(v.at("a").as_string(), "x\n\"y\"");
  EXPECT_DOUBLE_EQ(v.at("b").at(2).at("c").as_number(), -350.0);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse("{"), FormatError);
  EXPECT_THROW(Json::parse("[1,]"), FormatError);
  EXPECT_THROW(Json::parse("{\"a\":1} extra"), FormatError);
  EXPECT_THROW(Json::parse("tru"), FormatError);
}

TEST(Json, TypeErrors) {
  Json v = Json::parse("{\"a\": 1}");
  EXPECT_THROW(v.at("a").as_string(), UsageError);
  EXPECT_THROW(v.at("nope"), UsageError);
  EXPECT_EQ(v.get_or("nope", Json(7)).as_int(), 7);
}

// ----------------------------------------------------------------- toml ---

TEST(Toml, ParsesAdios2StyleConfig) {
  const char* text = R"(
# openPMD dynamic configuration, as the paper's BIT1 integration uses.
[adios2.engine]
type = "bp4"
usesteps = true

[adios2.engine.parameters]
NumAggregators = 400
Profile = "On"

[adios2.dataset]
operators = [ { type = "blosc", level = 5 } ]
)";
  Json cfg = parse_toml(text);
  EXPECT_EQ(cfg.at("adios2").at("engine").at("type").as_string(), "bp4");
  EXPECT_TRUE(cfg.at("adios2").at("engine").at("usesteps").as_bool());
  EXPECT_EQ(cfg.at("adios2")
                .at("engine")
                .at("parameters")
                .at("NumAggregators")
                .as_int(),
            400);
  const auto& ops = cfg.at("adios2").at("dataset").at("operators").as_array();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].at("type").as_string(), "blosc");
}

TEST(Toml, ScalarsAndArrays) {
  Json cfg = parse_toml(
      "a = 1_000\nb = -2.5\nc = 'lit'\nd = [1, 2, 3]\ne = true\n");
  EXPECT_EQ(cfg.at("a").as_int(), 1000);
  EXPECT_DOUBLE_EQ(cfg.at("b").as_number(), -2.5);
  EXPECT_EQ(cfg.at("c").as_string(), "lit");
  EXPECT_EQ(cfg.at("d").size(), 3u);
  EXPECT_TRUE(cfg.at("e").as_bool());
}

TEST(Toml, DottedKeys) {
  Json cfg = parse_toml("x.y.z = 4\nx.w = \"s\"\n");
  EXPECT_EQ(cfg.at("x").at("y").at("z").as_int(), 4);
  EXPECT_EQ(cfg.at("x").at("w").as_string(), "s");
}

TEST(Toml, RejectsDuplicatesAndSyntaxErrors) {
  EXPECT_THROW(parse_toml("a = 1\na = 2\n"), FormatError);
  EXPECT_THROW(parse_toml("[t]\n[t]\n"), FormatError);
  EXPECT_THROW(parse_toml("a 1\n"), FormatError);
  EXPECT_THROW(parse_toml("a = \n"), FormatError);
  EXPECT_THROW(parse_toml("[[arr]]\n"), FormatError);
}

// ---------------------------------------------------------------- table ---

TEST(Table, RendersAligned) {
  TextTable t("Title");
  t.header({"Nodes", "GiB/s"});
  t.row({"1", "0.09"});
  t.row({"200", "15.80"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| Nodes | GiB/s |"), std::string::npos);
  EXPECT_NE(out.find("| 200   | 15.80 |"), std::string::npos);
}

TEST(Table, Strfmt) {
  EXPECT_EQ(strfmt("%d-%s-%.2f", 5, "x", 1.5), "5-x-1.50");
}

}  // namespace
}  // namespace bitio
