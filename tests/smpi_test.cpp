// Unit tests for the simulated MPI subset: collectives have exact MPI
// semantics and are deterministic regardless of thread scheduling.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>

#include "smpi/comm.hpp"

namespace bitio::smpi {
namespace {

TEST(Smpi, SelfCommIsSerial) {
  Comm comm = Comm::self();
  EXPECT_EQ(comm.rank(), 0);
  EXPECT_EQ(comm.size(), 1);
  EXPECT_EQ(comm.allreduce(5, Op::sum), 5);
  EXPECT_EQ(comm.exscan(7), 0);
  EXPECT_EQ(comm.allgather(3.5), std::vector<double>{3.5});
}

TEST(Smpi, AllreduceSumMinMax) {
  run_spmd(8, [](Comm& comm) {
    const int r = comm.rank();
    EXPECT_EQ(comm.allreduce(r, Op::sum), 28);
    EXPECT_EQ(comm.allreduce(r, Op::min), 0);
    EXPECT_EQ(comm.allreduce(r, Op::max), 7);
    EXPECT_DOUBLE_EQ(comm.allreduce(double(r) * 0.5, Op::sum), 14.0);
  });
}

TEST(Smpi, ExscanComputesOffsets) {
  // The exact pattern the openPMD adaptor uses: each rank contributes its
  // local extent; exscan yields its offset in the global array.
  run_spmd(6, [](Comm& comm) {
    const std::uint64_t local = std::uint64_t(comm.rank() + 1) * 10;
    const std::uint64_t offset = comm.exscan(local);
    // offset = 10+20+...+rank*10
    std::uint64_t expect = 0;
    for (int r = 0; r < comm.rank(); ++r) expect += std::uint64_t(r + 1) * 10;
    EXPECT_EQ(offset, expect);
  });
}

TEST(Smpi, AllgatherOrdersByRank) {
  run_spmd(5, [](Comm& comm) {
    const auto all = comm.allgather(comm.rank() * comm.rank());
    ASSERT_EQ(all.size(), 5u);
    for (int r = 0; r < 5; ++r) EXPECT_EQ(all[std::size_t(r)], r * r);
  });
}

TEST(Smpi, GatherOnlyAtRoot) {
  run_spmd(4, [](Comm& comm) {
    const auto at_root = comm.gather(comm.rank() + 100, 2);
    if (comm.rank() == 2) {
      ASSERT_EQ(at_root.size(), 4u);
      EXPECT_EQ(at_root[0], 100);
      EXPECT_EQ(at_root[3], 103);
    } else {
      EXPECT_TRUE(at_root.empty());
    }
  });
}

TEST(Smpi, Broadcast) {
  run_spmd(7, [](Comm& comm) {
    const double v = comm.bcast(comm.rank() == 3 ? 2.75 : -1.0, 3);
    EXPECT_DOUBLE_EQ(v, 2.75);
  });
}

TEST(Smpi, GathervBytesVariableSizes) {
  run_spmd(4, [](Comm& comm) {
    // Rank r contributes r bytes of value r (rank 0 contributes none).
    std::vector<std::byte> local(std::size_t(comm.rank()),
                                 std::byte(comm.rank()));
    const auto gathered = comm.gatherv_bytes(local, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(gathered.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(gathered[std::size_t(r)].size(), std::size_t(r));
        for (auto b : gathered[std::size_t(r)])
          EXPECT_EQ(int(b), r);
      }
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
}

TEST(Smpi, SendRecvPreservesOrder) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        std::vector<std::byte> msg{std::byte(i)};
        comm.send(1, msg);
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        const auto msg = comm.recv(0);
        ASSERT_EQ(msg.size(), 1u);
        EXPECT_EQ(int(msg[0]), i);
      }
    }
  });
}

TEST(Smpi, BarrierIsReusable) {
  std::atomic<int> counter{0};
  run_spmd(4, [&](Comm& comm) {
    for (int iter = 0; iter < 50; ++iter) {
      if (comm.rank() == 0) counter.fetch_add(1);
      comm.barrier();
      EXPECT_EQ(counter.load(), iter + 1);
      comm.barrier();
    }
  });
}

TEST(Smpi, CollectivesInterleaveSafely) {
  // Back-to-back different collectives must not corrupt each other's slots.
  run_spmd(8, [](Comm& comm) {
    for (int iter = 0; iter < 20; ++iter) {
      const int sum = comm.allreduce(1, Op::sum);
      const auto all = comm.allgather(comm.rank() + iter);
      const int offset = comm.exscan(2);
      EXPECT_EQ(sum, 8);
      EXPECT_EQ(all[3], 3 + iter);
      EXPECT_EQ(offset, comm.rank() * 2);
    }
  });
}

TEST(Smpi, RankExceptionPropagates) {
  EXPECT_THROW(
      run_spmd(1, [](Comm&) { throw UsageError("rank failure"); }),
      UsageError);
}

TEST(Smpi, RejectsBadWorldAndRanks) {
  EXPECT_THROW(run_spmd(0, [](Comm&) {}), UsageError);
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> msg{std::byte(1)};
      EXPECT_THROW(comm.send(5, msg), UsageError);
      EXPECT_THROW(comm.recv(-1), UsageError);
    }
  });
}

// --- ULFM-style failure semantics -------------------------------------------

TEST(SmpiUlfm, BarrierRaisesTypedErrorOnRankFailure) {
  // The victim dies; every survivor's barrier raises RankFailedError — no
  // rank hangs, no rank sees a different error type.
  std::atomic<int> typed{0};
  run_spmd(4, [&](Comm& comm) {
    if (comm.rank() == 3) {
      comm.mark_self_failed();
      return;
    }
    try {
      while (true) comm.barrier();
    } catch (const RankFailedError&) {
      typed.fetch_add(1);
    }
  });
  EXPECT_EQ(typed.load(), 3);
}

TEST(SmpiUlfm, EveryCollectivePathObservesMidRunFailure) {
  // Stress the whole collective surface: survivors loop the operation while
  // the victim participates for a few rounds and then dies mid-run.  Every
  // survivor must get RankFailedError from whichever call it is in.
  enum class Path { barrier, allreduce, exscan, allgather, gatherv };
  for (const Path path : {Path::barrier, Path::allreduce, Path::exscan,
                          Path::allgather, Path::gatherv}) {
    std::atomic<int> typed{0};
    run_spmd(4, [&](Comm& comm) {
      auto op = [&] {
        switch (path) {
          case Path::barrier: comm.barrier(); break;
          case Path::allreduce: comm.allreduce(comm.rank(), Op::sum); break;
          case Path::exscan: comm.exscan(1); break;
          case Path::allgather: comm.allgather(comm.rank()); break;
          case Path::gatherv: {
            std::vector<std::byte> local(3, std::byte(comm.rank()));
            comm.gatherv_bytes(local, 0);
            break;
          }
        }
      };
      if (comm.rank() == 2) {
        for (int i = 0; i < 5; ++i) op();
        comm.mark_self_failed();
        return;
      }
      try {
        while (true) op();
      } catch (const RankFailedError&) {
        typed.fetch_add(1);
      }
    });
    EXPECT_EQ(typed.load(), 3) << "path " << int(path);
  }
}

TEST(SmpiUlfm, SendRecvObservesPeerFailure) {
  // Queued messages from a now-dead peer still deliver; the recv *after*
  // the queue drains raises RankFailedError instead of hanging.
  std::atomic<int> typed{0};
  run_spmd(2, [&](Comm& comm) {
    if (comm.rank() == 1) {
      for (int i = 0; i < 3; ++i) {
        std::vector<std::byte> msg{std::byte(i)};
        comm.send(0, msg);
      }
      comm.mark_self_failed();
      return;
    }
    for (int i = 0; i < 3; ++i) {
      const auto msg = comm.recv(1);
      ASSERT_EQ(msg.size(), 1u);
      EXPECT_EQ(int(msg[0]), i);
    }
    try {
      comm.recv(1);
    } catch (const RankFailedError&) {
      typed.fetch_add(1);
    }
  });
  EXPECT_EQ(typed.load(), 1);
}

TEST(SmpiUlfm, RecvDeadlineRaisesTimeoutNotHang) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() != 0) return;  // peer alive but silent
    EXPECT_THROW(comm.recv(1, std::chrono::milliseconds(50)), TimeoutError);
  });
}

TEST(SmpiUlfm, RevokePoisonsEveryRank) {
  std::atomic<int> typed{0};
  run_spmd(3, [&](Comm& comm) {
    if (comm.rank() == 0) comm.revoke();
    try {
      while (true) comm.barrier();
    } catch (const RankFailedError&) {
      typed.fetch_add(1);
    }
    EXPECT_TRUE(comm.revoked());
  });
  EXPECT_EQ(typed.load(), 3);
}

TEST(SmpiUlfm, AgreeAndShrinkRebuildDenseCommunicator) {
  run_spmd(4, [](Comm& comm) {
    if (comm.rank() == 1) {
      comm.mark_self_failed();
      return;
    }
    try {
      while (true) comm.barrier();
    } catch (const RankFailedError&) {
    }
    // ULFM recovery sequence on the survivors.
    EXPECT_TRUE(comm.agree(true));
    EXPECT_EQ(comm.alive_count(), 3);
    EXPECT_EQ(comm.failed_ranks(), std::vector<int>{1});
    Comm next = comm.shrink();
    EXPECT_EQ(next.size(), 3);
    // Dense renumbering in ascending old-rank order: 0,2,3 -> 0,1,2.
    const auto olds = next.allgather(comm.rank());
    EXPECT_EQ(olds, (std::vector<int>{0, 2, 3}));
    // The shrunken communicator is fully functional.
    EXPECT_EQ(next.allreduce(1, Op::sum), 3);
    next.barrier();
  });
}

TEST(SmpiUlfm, AgreeIsAndConsensusOverSurvivors) {
  run_spmd(3, [](Comm& comm) {
    // One survivor votes false: everyone must learn false.
    EXPECT_FALSE(comm.agree(comm.rank() != 2));
    // All-true round returns true.
    EXPECT_TRUE(comm.agree(true));
  });
}

TEST(SmpiUlfm, SupervisedRunShrinksAndReenters) {
  std::atomic<int> recovered_entries{0};
  const auto report = run_spmd_supervised(4, [&](Comm& comm,
                                                 RecoveryContext& ctx) {
    if (!ctx.recovered && ctx.original_rank == 2)
      throw RankFailure(comm.rank(), "injected crash");
    for (int i = 0; i < 3; ++i) comm.barrier();
    if (ctx.recovered) {
      recovered_entries.fetch_add(1);
      EXPECT_EQ(comm.size(), 3);
      EXPECT_EQ(ctx.generation, 1);
      EXPECT_EQ(ctx.original_size, 4);
      EXPECT_EQ(ctx.failed_ranks, std::vector<int>{2});
      EXPECT_EQ(comm.allreduce(1, Op::sum), 3);
    }
  });
  EXPECT_EQ(recovered_entries.load(), 3);
  EXPECT_EQ(report.recoveries, 1);
  EXPECT_EQ(report.final_size, 3);
  EXPECT_EQ(report.crashed_ranks, std::vector<int>{2});
}

TEST(SmpiUlfm, SupervisedRunWithoutFailuresIsPlain) {
  const auto report = run_spmd_supervised(3, [](Comm& comm,
                                                RecoveryContext& ctx) {
    EXPECT_FALSE(ctx.recovered);
    EXPECT_EQ(ctx.generation, 0);
    comm.barrier();
  });
  EXPECT_EQ(report.recoveries, 0);
  EXPECT_EQ(report.final_size, 3);
  EXPECT_TRUE(report.crashed_ranks.empty());
}

TEST(SmpiUlfm, SupervisedRunExhaustsRecoveryBudget) {
  // max_recoveries = 0 is the "abort" policy: the survivors' typed error
  // becomes the run error instead of triggering a shrink.
  EXPECT_THROW(
      run_spmd_supervised(
          3,
          [](Comm& comm, RecoveryContext& ctx) {
            if (ctx.original_rank == 1)
              throw RankFailure(comm.rank(), "crash");
            comm.barrier();
          },
          0),
      RankFailedError);
}

}  // namespace
}  // namespace bitio::smpi
