// Unit tests for the simulated MPI subset: collectives have exact MPI
// semantics and are deterministic regardless of thread scheduling.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "smpi/comm.hpp"

namespace bitio::smpi {
namespace {

TEST(Smpi, SelfCommIsSerial) {
  Comm comm = Comm::self();
  EXPECT_EQ(comm.rank(), 0);
  EXPECT_EQ(comm.size(), 1);
  EXPECT_EQ(comm.allreduce(5, Op::sum), 5);
  EXPECT_EQ(comm.exscan(7), 0);
  EXPECT_EQ(comm.allgather(3.5), std::vector<double>{3.5});
}

TEST(Smpi, AllreduceSumMinMax) {
  run_spmd(8, [](Comm& comm) {
    const int r = comm.rank();
    EXPECT_EQ(comm.allreduce(r, Op::sum), 28);
    EXPECT_EQ(comm.allreduce(r, Op::min), 0);
    EXPECT_EQ(comm.allreduce(r, Op::max), 7);
    EXPECT_DOUBLE_EQ(comm.allreduce(double(r) * 0.5, Op::sum), 14.0);
  });
}

TEST(Smpi, ExscanComputesOffsets) {
  // The exact pattern the openPMD adaptor uses: each rank contributes its
  // local extent; exscan yields its offset in the global array.
  run_spmd(6, [](Comm& comm) {
    const std::uint64_t local = std::uint64_t(comm.rank() + 1) * 10;
    const std::uint64_t offset = comm.exscan(local);
    // offset = 10+20+...+rank*10
    std::uint64_t expect = 0;
    for (int r = 0; r < comm.rank(); ++r) expect += std::uint64_t(r + 1) * 10;
    EXPECT_EQ(offset, expect);
  });
}

TEST(Smpi, AllgatherOrdersByRank) {
  run_spmd(5, [](Comm& comm) {
    const auto all = comm.allgather(comm.rank() * comm.rank());
    ASSERT_EQ(all.size(), 5u);
    for (int r = 0; r < 5; ++r) EXPECT_EQ(all[std::size_t(r)], r * r);
  });
}

TEST(Smpi, GatherOnlyAtRoot) {
  run_spmd(4, [](Comm& comm) {
    const auto at_root = comm.gather(comm.rank() + 100, 2);
    if (comm.rank() == 2) {
      ASSERT_EQ(at_root.size(), 4u);
      EXPECT_EQ(at_root[0], 100);
      EXPECT_EQ(at_root[3], 103);
    } else {
      EXPECT_TRUE(at_root.empty());
    }
  });
}

TEST(Smpi, Broadcast) {
  run_spmd(7, [](Comm& comm) {
    const double v = comm.bcast(comm.rank() == 3 ? 2.75 : -1.0, 3);
    EXPECT_DOUBLE_EQ(v, 2.75);
  });
}

TEST(Smpi, GathervBytesVariableSizes) {
  run_spmd(4, [](Comm& comm) {
    // Rank r contributes r bytes of value r (rank 0 contributes none).
    std::vector<std::byte> local(std::size_t(comm.rank()),
                                 std::byte(comm.rank()));
    const auto gathered = comm.gatherv_bytes(local, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(gathered.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(gathered[std::size_t(r)].size(), std::size_t(r));
        for (auto b : gathered[std::size_t(r)])
          EXPECT_EQ(int(b), r);
      }
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
}

TEST(Smpi, SendRecvPreservesOrder) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        std::vector<std::byte> msg{std::byte(i)};
        comm.send(1, msg);
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        const auto msg = comm.recv(0);
        ASSERT_EQ(msg.size(), 1u);
        EXPECT_EQ(int(msg[0]), i);
      }
    }
  });
}

TEST(Smpi, BarrierIsReusable) {
  std::atomic<int> counter{0};
  run_spmd(4, [&](Comm& comm) {
    for (int iter = 0; iter < 50; ++iter) {
      if (comm.rank() == 0) counter.fetch_add(1);
      comm.barrier();
      EXPECT_EQ(counter.load(), iter + 1);
      comm.barrier();
    }
  });
}

TEST(Smpi, CollectivesInterleaveSafely) {
  // Back-to-back different collectives must not corrupt each other's slots.
  run_spmd(8, [](Comm& comm) {
    for (int iter = 0; iter < 20; ++iter) {
      const int sum = comm.allreduce(1, Op::sum);
      const auto all = comm.allgather(comm.rank() + iter);
      const int offset = comm.exscan(2);
      EXPECT_EQ(sum, 8);
      EXPECT_EQ(all[3], 3 + iter);
      EXPECT_EQ(offset, comm.rank() * 2);
    }
  });
}

TEST(Smpi, RankExceptionPropagates) {
  EXPECT_THROW(
      run_spmd(1, [](Comm&) { throw UsageError("rank failure"); }),
      UsageError);
}

TEST(Smpi, RejectsBadWorldAndRanks) {
  EXPECT_THROW(run_spmd(0, [](Comm&) {}), UsageError);
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> msg{std::byte(1)};
      EXPECT_THROW(comm.send(5, msg), UsageError);
      EXPECT_THROW(comm.recv(-1), UsageError);
    }
  });
}

}  // namespace
}  // namespace bitio::smpi
