// Tests for the shared binary serialization helpers used by the BP
// container format, darshan logs, and PIC checkpoints.
#include <gtest/gtest.h>

#include "util/binio.hpp"
#include "util/error.hpp"

namespace bitio {
namespace {

TEST(BinIo, ScalarRoundTrip) {
  BinWriter writer;
  writer.u8(0xAB);
  writer.u32(0xDEADBEEF);
  writer.u64(0x0123456789ABCDEFull);
  writer.f64(-2.5e-7);
  writer.str("openPMD");
  writer.dims({1, 2, 30000000000ull});

  BinReader reader(writer.buffer());
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(reader.f64(), -2.5e-7);
  EXPECT_EQ(reader.str(), "openPMD");
  EXPECT_EQ(reader.dims(), (std::vector<std::uint64_t>{1, 2, 30000000000ull}));
  EXPECT_TRUE(reader.done());
}

TEST(BinIo, EmptyStringAndDims) {
  BinWriter writer;
  writer.str("");
  writer.dims({});
  BinReader reader(writer.buffer());
  EXPECT_EQ(reader.str(), "");
  EXPECT_TRUE(reader.dims().empty());
  EXPECT_TRUE(reader.done());
}

TEST(BinIo, BytesPassThrough) {
  BinWriter writer;
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  writer.u32(5);
  writer.bytes(payload);
  BinReader reader(writer.buffer());
  const auto n = reader.u32();
  const auto span = reader.bytes(n);
  EXPECT_EQ(std::vector<std::uint8_t>(span.begin(), span.end()), payload);
}

TEST(BinIo, TruncationThrows) {
  BinWriter writer;
  writer.u64(42);
  const auto& full = writer.buffer();
  for (std::size_t keep = 0; keep < 8; ++keep) {
    BinReader reader(std::span<const std::uint8_t>(full.data(), keep));
    EXPECT_THROW(reader.u64(), FormatError) << "keep=" << keep;
  }
  BinReader reader(full);
  reader.u64();
  EXPECT_THROW(reader.u8(), FormatError);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(BinIo, StringLengthBeyondBufferThrows) {
  BinWriter writer;
  writer.u32(1000);  // claims 1000 chars, provides none
  BinReader reader(writer.buffer());
  EXPECT_THROW(reader.str(), FormatError);
}

TEST(BinIo, PositionTracking) {
  BinWriter writer;
  writer.u32(1);
  writer.u32(2);
  BinReader reader(writer.buffer());
  EXPECT_EQ(reader.position(), 0u);
  reader.u32();
  EXPECT_EQ(reader.position(), 4u);
  EXPECT_FALSE(reader.done());
}

}  // namespace
}  // namespace bitio
