// Tests for incremental checkpoint epochs: the full/delta cadence of
// checkpoint_full_interval, content-hash dedup against the last committed
// epoch, random-access chain restore (bit-exact, shrink-tolerant, reading
// only the referenced blocks), chain-aware retention and restart fallback,
// crash-during-prune orphan cleanup, and the Darshan v6 job counters the
// machinery feeds.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "darshan/darshan.hpp"
#include "fsim/posix_fs.hpp"
#include "fsim/storage_model.hpp"
#include "fsim/system_profiles.hpp"
#include "picmc/simulation.hpp"
#include "resil/chain_source.hpp"
#include "resil/checkpoint_manager.hpp"
#include "util/error.hpp"

namespace bitio::resil {
namespace {

using fsim::FsClient;
using fsim::SharedFs;
using picmc::SimConfig;
using picmc::Simulation;

core::Bit1IoConfig delta_config(int full_interval, int retain = 8) {
  core::Bit1IoConfig config;
  config.checkpoint_interval = 4;
  config.checkpoint_retain = retain;
  config.checkpoint_full_interval = full_interval;
  return config;
}

SimConfig small_case() {
  auto config = SimConfig::ionization_case(32, 16);
  config.last_step = 12;
  return config;
}

void run_until(Simulation& sim, std::uint64_t step) {
  while (sim.current_step() < step) sim.step();
}

/// Total bytes of the epoch's data subfiles — the physically stored
/// checkpoint payload.
std::uint64_t epoch_payload_bytes(SharedFs& fs,
                                  const CheckpointManager& manager,
                                  std::uint64_t epoch) {
  std::uint64_t total = 0;
  for (const auto* node : fs.store().list_recursive(manager.epoch_dir(epoch)))
    if (node->path.find("/data.") != std::string::npos) total += node->size;
  return total;
}

// ------------------------------------------------------------- cadence ---

TEST(CkptDelta, FullIntervalControlsEpochKinds) {
  SharedFs fs(8);
  auto config = small_case();
  config.last_step = 100;
  Simulation sim(config);
  sim.initialize();
  CheckpointManager manager(fs, "run", delta_config(/*full_interval=*/3), 1);
  for (int i = 0; i < 5; ++i) {
    run_until(sim, std::uint64_t(2 * (i + 1)));
    manager.stage(0, sim);
    manager.commit();
  }
  // Interval 3: full, delta, delta, full, delta.
  const std::vector<std::string> expect{"full", "delta", "delta", "full",
                                        "delta"};
  for (std::uint64_t epoch = 1; epoch <= 5; ++epoch) {
    const auto manifest = manager.read_manifest(epoch);
    ASSERT_TRUE(manifest.has_value()) << "epoch " << epoch;
    EXPECT_EQ(manifest->kind, expect[epoch - 1]) << "epoch " << epoch;
    if (manifest->kind == "full") {
      EXPECT_TRUE(manifest->refs.empty()) << "epoch " << epoch;
      EXPECT_TRUE(manifest->base_epochs.empty()) << "epoch " << epoch;
    }
  }
  EXPECT_EQ(manager.stats().delta_epochs, 3u);
}

TEST(CkptDelta, IntervalOneWritesOnlyFullEpochs) {
  SharedFs fs(8);
  Simulation sim(small_case());
  sim.initialize();
  CheckpointManager manager(fs, "run", delta_config(/*full_interval=*/1), 1);
  for (int i = 0; i < 3; ++i) {
    manager.stage(0, sim);
    manager.commit();
  }
  for (std::uint64_t epoch = 1; epoch <= 3; ++epoch)
    EXPECT_EQ(manager.read_manifest(epoch)->kind, "full");
  EXPECT_EQ(manager.stats().delta_epochs, 0u);
  EXPECT_EQ(manager.stats().dedup_bytes_saved, 0u);
}

// --------------------------------------------------------------- dedup ---

TEST(CkptDelta, DeltaDedupsUnchangedBlocks) {
  SharedFs fs(8);
  Simulation sim(small_case());
  sim.initialize();
  run_until(sim, 4);
  CheckpointManager manager(fs, "run", delta_config(/*full_interval=*/4), 1);
  manager.stage(0, sim);
  manager.commit();  // epoch 1: full
  manager.stage(0, sim);
  manager.commit();  // epoch 2: same state — every block dedups

  const auto manifest = manager.read_manifest(2);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->kind, "delta");
  EXPECT_FALSE(manifest->refs.empty());
  for (const BlockRef& ref : manifest->refs) EXPECT_EQ(ref.epoch, 1u);
  EXPECT_EQ(manifest->base_epochs, (std::vector<std::uint64_t>{1}));

  // The saved bytes are real: the delta container stores (near) nothing,
  // and the stat matches the referenced payload.
  const std::uint64_t full_payload = epoch_payload_bytes(fs, manager, 1);
  const std::uint64_t delta_payload = epoch_payload_bytes(fs, manager, 2);
  EXPECT_GT(full_payload, 0u);
  EXPECT_EQ(delta_payload, 0u);
  std::uint64_t ref_bytes = 0;
  for (const BlockRef& ref : manifest->refs) ref_bytes += ref.bytes;
  EXPECT_EQ(manager.stats().dedup_bytes_saved, ref_bytes);
  EXPECT_EQ(ref_bytes, full_payload);
}

TEST(CkptDelta, ChangedBlocksAreWrittenNotReferenced) {
  SharedFs fs(8);
  auto config = small_case();
  Simulation sim(config);
  sim.initialize();
  run_until(sim, 4);
  CheckpointManager manager(fs, "run", delta_config(/*full_interval=*/4), 1);
  manager.stage(0, sim);
  manager.commit();  // epoch 1: full @ step 4
  run_until(sim, 8);
  manager.stage(0, sim);
  manager.commit();  // epoch 2: delta @ step 8 — the state moved

  const auto manifest = manager.read_manifest(2);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->kind, "delta");
  // Particles moved and the RNG advanced, so the delta must physically
  // store payload of its own.
  EXPECT_GT(epoch_payload_bytes(fs, manager, 2), 0u);
}

// ------------------------------------------------------- chain restore ---

TEST(CkptDelta, ChainRestoreIsBitExactAndResumable) {
  const auto config = small_case();

  // Unfaulted reference: one continuous 0 -> 12 run.
  Simulation reference(config);
  reference.initialize();
  run_until(reference, 12);

  SharedFs fs(8);
  CheckpointManager manager(fs, "run", delta_config(/*full_interval=*/4), 1);
  {
    Simulation sim(config);
    sim.initialize();
    run_until(sim, 4);
    manager.stage(0, sim);
    manager.commit();  // epoch 1: full @ 4
    run_until(sim, 8);
    manager.stage(0, sim);
    manager.commit();  // epoch 2: delta @ 8
  }
  ASSERT_EQ(manager.read_manifest(2)->kind, "delta");

  Simulation restarted(config);
  restarted.initialize();
  const RestartReport report = manager.restore(restarted);
  ASSERT_TRUE(report.recovered);
  EXPECT_EQ(report.epoch, 2u);
  EXPECT_EQ(report.step, 8u);

  run_until(restarted, 12);
  EXPECT_EQ(restarted.current_step(), reference.current_step());
  EXPECT_EQ(restarted.rng().state(), reference.rng().state());
  EXPECT_EQ(restarted.ionization_events(), reference.ionization_events());
  EXPECT_EQ(restarted.ionized_weight(), reference.ionized_weight());
  ASSERT_EQ(restarted.species_count(), reference.species_count());
  for (std::size_t s = 0; s < reference.species_count(); ++s) {
    const auto& a = restarted.species(s).particles;
    const auto& b = reference.species(s).particles;
    ASSERT_EQ(a.size(), b.size()) << "species " << s;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.x()[i], b.x()[i]);
      EXPECT_EQ(a.vx()[i], b.vx()[i]);
      EXPECT_EQ(a.w()[i], b.w()[i]);
    }
  }
}

TEST(CkptDelta, ShrinkRestoreFromDeltaChainPreservesPopulation) {
  SharedFs fs(8);
  const auto config = small_case();
  CheckpointManager manager(fs, "run", delta_config(/*full_interval=*/4), 4);

  std::vector<std::unique_ptr<Simulation>> old_sims;
  for (int r = 0; r < 4; ++r) {
    old_sims.push_back(std::make_unique<Simulation>(config, r, 4));
    old_sims.back()->initialize();
    run_until(*old_sims.back(), 8);
    manager.stage(r, *old_sims.back());
  }
  ASSERT_EQ(manager.commit(), 1u);  // full
  for (int r = 0; r < 4; ++r) manager.stage(r, *old_sims[r]);
  ASSERT_EQ(manager.commit(), 2u);  // delta: all blocks reference epoch 1
  ASSERT_EQ(manager.read_manifest(2)->kind, "delta");

  // Restore the delta epoch onto 3 survivors: the chain walk re-slices the
  // concatenated population contiguously.
  std::vector<std::unique_ptr<Simulation>> new_sims;
  for (int r = 0; r < 3; ++r) {
    new_sims.push_back(std::make_unique<Simulation>(config, r, 3));
    manager.restore_epoch(2, *new_sims.back());
    EXPECT_EQ(new_sims.back()->current_step(), 8u);
  }

  const std::size_t n_species = old_sims[0]->species_count();
  ASSERT_EQ(new_sims[0]->species_count(), n_species);
  for (std::size_t s = 0; s < n_species; ++s) {
    std::vector<double> old_x, new_x;
    for (const auto& sim : old_sims) {
      const auto& sp = sim->species(s);
      for (std::size_t i = 0; i < sp.particles.size(); ++i)
        old_x.push_back(sp.particles.x()[i]);
    }
    for (const auto& sim : new_sims) {
      const auto& sp = sim->species(s);
      for (std::size_t i = 0; i < sp.particles.size(); ++i)
        new_x.push_back(sp.particles.x()[i]);
    }
    EXPECT_EQ(old_x, new_x) << "species " << s;
  }
}

TEST(CkptDelta, RestoreReadsEachReferencedBlockExactlyOnce) {
  SharedFs fs(8);
  Simulation sim(small_case());
  sim.initialize();
  run_until(sim, 4);
  CheckpointManager manager(fs, "run", delta_config(/*full_interval=*/4), 1);
  manager.stage(0, sim);
  manager.commit();  // epoch 1: full
  manager.stage(0, sim);
  manager.commit();  // epoch 2: delta, all blocks in epoch 1

  const auto manifest = manager.read_manifest(2);
  ASSERT_TRUE(manifest.has_value());
  std::uint64_t nonempty_refs = 0;
  for (const BlockRef& ref : manifest->refs)
    if (ref.count > 0) ++nonempty_refs;
  ASSERT_GT(nonempty_refs, 0u);

  fs.clear_trace();
  Simulation restored(small_case());
  restored.initialize();
  manager.restore_epoch(2, restored);

  // Every fetched block is counted, and each referenced block is fetched
  // exactly once — the restore never re-reads or over-reads the chain.
  EXPECT_EQ(manager.stats().blocks_restored, nonempty_refs);

  // fsim read-byte accounting: per base-epoch data subfile, the bytes read
  // never exceed the file's size (each stored block is pread once), and
  // the payload read comes from the base epoch, not a full-container copy.
  std::map<std::string, std::uint64_t> read_by_file;
  for (const auto& op : fs.trace())
    if (op.kind == fsim::OpKind::read && op.file != fsim::kNoFile)
      read_by_file[fs.store().file_by_id(op.file).path] += op.bytes;
  std::uint64_t base_payload_read = 0;
  for (const auto& [path, bytes] : read_by_file) {
    if (path.find("epoch_1") == std::string::npos ||
        path.find("/data.") == std::string::npos)
      continue;
    EXPECT_LE(bytes, fs.store().file(path).size) << path;
    base_payload_read += bytes;
  }
  EXPECT_GT(base_payload_read, 0u);
  EXPECT_LE(base_payload_read, epoch_payload_bytes(fs, manager, 1));
}

// ---------------------------------------------------- retention & scrub ---

TEST(CkptRobust, PruneKeepsBaseEpochsOfRetainedDeltas) {
  SharedFs fs(8);
  auto config = small_case();
  config.last_step = 100;
  Simulation sim(config);
  sim.initialize();
  run_until(sim, 4);
  CheckpointManager manager(fs, "run",
                            delta_config(/*full_interval=*/3, /*retain=*/1),
                            1);
  manager.stage(0, sim);
  manager.commit();  // epoch 1: full
  manager.stage(0, sim);
  manager.commit();  // epoch 2: delta -> base 1
  manager.stage(0, sim);
  manager.commit();  // epoch 3: delta -> base 1

  // retain=1 keeps epoch 3, whose chain pins base epoch 1; epoch 2 is
  // prunable.  The base epoch outlives the retention window because a
  // retained delta still references it.
  EXPECT_EQ(manager.committed_epochs(), (std::vector<std::uint64_t>{1, 3}));
  EXPECT_GE(manager.stats().epochs_pruned, 1u);

  // The retained chain is intact and restorable.
  Simulation restored(config);
  restored.initialize();
  manager.restore_epoch(3, restored);
  EXPECT_EQ(restored.current_step(), 4u);
  EXPECT_EQ(restored.rng().state(), sim.rng().state());

  // The next commit is a full epoch (interval 3), which unpins the old
  // base: everything but the new epoch is pruned.
  run_until(sim, 8);
  manager.stage(0, sim);
  manager.commit();  // epoch 4: full
  EXPECT_EQ(manager.committed_epochs(), (std::vector<std::uint64_t>{4}));
}

TEST(CkptRobust, RestartFallsBackChainByChain) {
  SharedFs fs(8);
  const auto config = small_case();
  Simulation sim(config);
  sim.initialize();
  run_until(sim, 4);
  CheckpointManager manager(fs, "run",
                            delta_config(/*full_interval=*/4, /*retain=*/8),
                            1);
  manager.stage(0, sim);
  manager.commit();  // epoch 1: full @ 4
  manager.stage(0, sim);
  manager.commit();  // epoch 2: delta @ 4 -> base 1
  run_until(sim, 8);
  manager.stage(0, sim);
  manager.commit();  // epoch 3: delta @ 8 (own blocks + refs into 1)

  // Rot epoch 3's own payload after its validated commit: the newest chain
  // fails verification, epoch 2's chain (entirely epoch 1's bytes) still
  // verifies, and restart lands on it.
  bool corrupted = false;
  for (const auto* node :
       fs.store().list_recursive(manager.epoch_dir(3))) {
    if (node->path.find("/data.") == std::string::npos || node->size == 0)
      continue;
    fs.store().file(node->path).data[0] ^= 0x10;
    corrupted = true;
    break;
  }
  ASSERT_TRUE(corrupted);

  Simulation restarted(config);
  restarted.initialize();
  const RestartReport report = manager.restore(restarted);
  ASSERT_TRUE(report.recovered);
  EXPECT_EQ(report.epoch, 2u);
  EXPECT_EQ(report.step, 4u);
  EXPECT_EQ(report.rejected, (std::vector<std::uint64_t>{3}));
  // The fallback epoch is sim@4; advancing it replays the same trajectory.
  run_until(restarted, 8);
  EXPECT_EQ(restarted.rng().state(), sim.rng().state());
  EXPECT_EQ(restarted.ionization_events(), sim.ionization_events());
}

TEST(CkptRobust, CorruptBaseBlockBreaksEveryDependentChain) {
  SharedFs fs(8);
  const auto config = small_case();
  Simulation sim(config);
  sim.initialize();
  run_until(sim, 4);
  CheckpointManager manager(fs, "run",
                            delta_config(/*full_interval=*/4, /*retain=*/8),
                            1);
  manager.stage(0, sim);
  manager.commit();  // epoch 1: full
  manager.stage(0, sim);
  manager.commit();  // epoch 2: delta -> base 1

  // Rot the BASE payload: epoch 2's own container is pristine, but its
  // chain resolves through epoch 1, so verification of BOTH must fail.
  bool corrupted = false;
  for (const auto* node :
       fs.store().list_recursive(manager.epoch_dir(1))) {
    if (node->path.find("/data.") == std::string::npos || node->size == 0)
      continue;
    fs.store().file(node->path).data[0] ^= 0x10;
    corrupted = true;
    break;
  }
  ASSERT_TRUE(corrupted);

  const ScrubReport scrubbed = manager.scrub();
  EXPECT_EQ(scrubbed.corrupt_epochs, (std::vector<std::uint64_t>{1, 2}));

  Simulation restarted(config);
  restarted.initialize();
  const RestartReport report = manager.restore(restarted);
  EXPECT_FALSE(report.recovered);
  EXPECT_EQ(report.rejected, (std::vector<std::uint64_t>{2, 1}));
}

TEST(CkptRobust, CrashDuringPruneLeavesRestorableStateAndScrubCleans) {
  SharedFs fs(8);
  const auto config = small_case();
  Simulation sim(config);
  sim.initialize();
  run_until(sim, 4);
  {
    CheckpointManager manager(fs, "run", delta_config(1, /*retain=*/8), 1);
    manager.stage(0, sim);
    manager.commit();  // epoch 1
    run_until(sim, 8);
    manager.stage(0, sim);
    manager.commit();  // epoch 2
  }
  // Simulate a crash inside the prune window: remove_epoch_files unlinks
  // the MANIFEST first, so the on-disk residue of the crash is an epoch
  // directory with data files but no MANIFEST.
  FsClient io(fs, 0);
  io.unlink("run/resil/epoch_1/MANIFEST");
  ASSERT_FALSE(fs.store().list_recursive("run/resil/epoch_1").empty());

  // A fresh manager sees only the committed epoch, resumes numbering after
  // it, and restores from it.
  CheckpointManager manager(fs, "run", delta_config(1, /*retain=*/8), 1);
  EXPECT_EQ(manager.committed_epochs(), (std::vector<std::uint64_t>{2}));
  Simulation restored(config);
  restored.initialize();
  const RestartReport report = manager.restore(restored);
  ASSERT_TRUE(report.recovered);
  EXPECT_EQ(report.epoch, 2u);
  EXPECT_EQ(report.step, 8u);

  // scrub() clears the orphaned files of the half-pruned epoch.
  const ScrubReport scrubbed = manager.scrub();
  EXPECT_EQ(scrubbed.orphans_cleaned, 1);
  EXPECT_TRUE(fs.store().list_recursive("run/resil/epoch_1").empty());
  EXPECT_EQ(scrubbed.corrupt_epochs.size(), 0u);

  // The next commit does not collide with the cleaned epoch.
  manager.stage(0, restored);
  EXPECT_EQ(manager.commit(), 3u);
}

// -------------------------------------------------------------- darshan ---

TEST(CkptDarshan, CheckpointCountersFlowIntoTheLog) {
  SharedFs fs(8);
  Simulation sim(small_case());
  sim.initialize();
  run_until(sim, 4);
  CheckpointManager manager(fs, "run", delta_config(/*full_interval=*/4), 1);
  manager.stage(0, sim);
  manager.commit();
  manager.stage(0, sim);
  manager.commit();  // delta
  Simulation restored(small_case());
  restored.initialize();
  manager.restore_epoch(2, restored);

  auto profile = fsim::dardel();
  profile.ranks_per_node = 4;
  const auto replay =
      fsim::replay_trace(profile, fs.store(), fs.trace(), 1);
  const auto log = darshan::capture(fs, replay, {"bit1", 1, 0.0, "/lustre"});
  EXPECT_EQ(log.job.delta_epochs, 1u);
  EXPECT_EQ(log.job.dedup_bytes_saved, manager.stats().dedup_bytes_saved);
  EXPECT_EQ(log.job.blocks_restored, manager.stats().blocks_restored);
  EXPECT_GE(log.job.t_restore_s, 0.0);
  const auto bytes = log.serialize();
  EXPECT_EQ(darshan::DarshanLog::parse(bytes).job.delta_epochs, 1u);
}

}  // namespace
}  // namespace bitio::resil
