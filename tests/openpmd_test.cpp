// Tests for the miniPMD layer: series/iteration/record hierarchy, both
// backends, constants, attributes, TOML configuration, SPMD writing.
#include <gtest/gtest.h>

#include <numeric>

#include "openpmd/series.hpp"
#include "smpi/comm.hpp"
#include "util/error.hpp"

namespace bitio::pmd {
namespace {

using fsim::SharedFs;

std::vector<double> ramp(std::size_t n, double start = 0.0) {
  std::vector<double> v(n);
  std::iota(v.begin(), v.end(), start);
  return v;
}

class OpenPmdBackends : public ::testing::TestWithParam<const char*> {
protected:
  std::string series_path() const {
    const std::string ext = GetParam();
    return ext == "json" ? "out/data_%T.json" : "out/data." + ext;
  }
};

TEST_P(OpenPmdBackends, WriteReadMeshAndParticles) {
  SharedFs fs(8);
  {
    Series series(fs, series_path(), Access::create, /*nranks=*/2);
    auto& it = series.write_iteration(100);
    it.set_time(2.5);
    it.set_dt(0.5);

    auto& rho = it.mesh("density").component();
    rho.reset_dataset(Datatype::float64, {8});
    rho.set_unit_si(1e-3);
    auto lo = ramp(4, 0.0), hi = ramp(4, 4.0);
    rho.store_chunk<double>(0, lo, {0}, {4});
    rho.store_chunk<double>(1, hi, {4}, {4});

    auto& e = it.particles("e");
    auto& x = e["position"]["x"];
    x.reset_dataset(Datatype::float64, {6});
    auto px0 = ramp(3, 10.0), px1 = ramp(3, 13.0);
    x.store_chunk<double>(0, px0, {0}, {3});
    x.store_chunk<double>(1, px1, {3}, {3});
    e["positionOffset"]["x"].make_constant(0.25, {6});

    it.close();
    series.close();
  }
  {
    Series series(fs, series_path(), Access::read_only);
    EXPECT_EQ(series.iterations(), std::vector<std::uint64_t>{100});
    auto& it = series.read_iteration(100);
    EXPECT_DOUBLE_EQ(it.time(), 2.5);
    EXPECT_DOUBLE_EQ(it.dt(), 0.5);
    EXPECT_EQ(it.mesh_names(), std::vector<std::string>{"density"});
    EXPECT_EQ(it.species_names(), std::vector<std::string>{"e"});

    auto& rho = it.mesh("density").component();
    EXPECT_DOUBLE_EQ(rho.unit_si(), 1e-3);
    EXPECT_EQ(rho.load<double>(), ramp(8));

    auto& x = it.particles("e")["position"]["x"];
    EXPECT_EQ(x.load<double>(), ramp(6, 10.0));

    auto& off = it.particles("e")["positionOffset"]["x"];
    EXPECT_TRUE(off.is_constant());
    EXPECT_DOUBLE_EQ(off.constant_value(), 0.25);
    const auto materialized = off.load<double>();
    ASSERT_EQ(materialized.size(), 6u);
    EXPECT_DOUBLE_EQ(materialized[5], 0.25);
  }
}

TEST_P(OpenPmdBackends, MultipleIterations) {
  SharedFs fs(8);
  {
    Series series(fs, series_path(), Access::create, 1);
    for (std::uint64_t step : {0u, 10u, 20u}) {
      auto& it = series.write_iteration(step);
      auto& m = it.mesh("f").component();
      m.reset_dataset(Datatype::float64, {4});
      auto v = ramp(4, double(step));
      m.store_chunk<double>(0, v, {0}, {4});
      it.close();
    }
    series.close();
  }
  Series series(fs, series_path(), Access::read_only);
  EXPECT_EQ(series.iterations(), (std::vector<std::uint64_t>{0, 10, 20}));
  EXPECT_EQ(series.read_iteration(10).mesh("f").component().load<double>(),
            ramp(4, 10.0));
}

INSTANTIATE_TEST_SUITE_P(Backends, OpenPmdBackends,
                         ::testing::Values("bp4", "bp5", "json"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(OpenPmd, BackendSelectionByExtension) {
  SharedFs fs(4);
  EXPECT_EQ(Series(fs, "a.bp4", Access::create).backend_name(), "bp4");
  EXPECT_EQ(Series(fs, "b.bp", Access::create).backend_name(), "bp4");
  EXPECT_EQ(Series(fs, "c.bp5", Access::create).backend_name(), "bp5");
  EXPECT_EQ(Series(fs, "d_%T.json", Access::create).backend_name(), "json");
  EXPECT_THROW(Series(fs, "e.h5", Access::create), UsageError);
  EXPECT_THROW(Series(fs, "noext", Access::create), UsageError);
}

TEST(OpenPmd, TomlConfigControlsEngine) {
  SharedFs fs(8);
  const std::string config = R"(
[adios2.engine]
type = "bp4"

[adios2.engine.parameters]
NumAggregators = 2

[adios2.dataset]
operators = [ { type = "blosc" } ]
)";
  {
    Series series(fs, "cfg.bp4", Access::create, 4, config);
    auto& it = series.write_iteration(0);
    auto& m = it.mesh("v").component();
    const std::size_t n = 1 << 14;
    m.reset_dataset(Datatype::float64, {4 * n});
    std::vector<double> smooth(n);
    for (std::size_t i = 0; i < n; ++i) smooth[i] = double(i) * 1e-4;
    for (int r = 0; r < 4; ++r)
      m.store_chunk<double>(r, smooth, {std::uint64_t(r) * n}, {n});
    it.close();
    series.close();
  }
  // NumAggregators=2 -> data.0 + data.1 + md.0 + md.idx.
  EXPECT_EQ(fs.store().list_recursive("cfg.bp4").size(), 4u);
  // blosc operator shrank the data.
  EXPECT_LT(fs.store().file("cfg.bp4/data.0").size,
            2u * (1 << 14) * sizeof(double));
  // And it reads back exactly.
  Series series(fs, "cfg.bp4", Access::read_only);
  const auto back = series.read_iteration(0).mesh("v").component().load<double>();
  EXPECT_DOUBLE_EQ(back[(1 << 14) + 5], 5e-4);
}

TEST(OpenPmd, CheckpointSlotRewriteLatestWins) {
  // The BIT1 pattern: iteration 0 is re-opened periodically and overwritten
  // with the latest system state.
  SharedFs fs(4);
  {
    Series series(fs, "ckpt.bp4", Access::create, 1);
    for (int epoch = 0; epoch < 3; ++epoch) {
      auto& it = series.write_iteration(0);
      auto& m = it.mesh("state").component();
      m.reset_dataset(Datatype::float64, {4});
      auto v = ramp(4, epoch * 100.0);
      m.store_chunk<double>(0, v, {0}, {4});
      it.close();
    }
    series.close();
  }
  Series series(fs, "ckpt.bp4", Access::read_only);
  EXPECT_EQ(series.read_iteration(0).mesh("state").component().load<double>(),
            ramp(4, 200.0));
}

TEST(OpenPmd, EmptyChunksAreSkipped) {
  // "if the local vector is not empty, it is stored to disk" — ranks with
  // no particles contribute nothing and that must be legal.
  SharedFs fs(4);
  {
    Series series(fs, "sparse.bp4", Access::create, 3);
    auto& it = series.write_iteration(0);
    auto& x = it.particles("d")["position"]["x"];
    x.reset_dataset(Datatype::float64, {4});
    std::vector<double> empty;
    auto all = ramp(4);
    x.store_chunk<double>(0, all, {0}, {4});
    x.store_chunk<double>(1, empty, {4}, {0});
    x.store_chunk<double>(2, empty, {4}, {0});
    it.close();
    series.close();
  }
  Series series(fs, "sparse.bp4", Access::read_only);
  EXPECT_EQ(series.read_iteration(0).particles("d")["position"]["x"]
                .load<double>(),
            ramp(4));
}

TEST(OpenPmd, UsageErrors) {
  SharedFs fs(4);
  Series series(fs, "err.bp4", Access::create, 2);
  auto& it = series.write_iteration(0);
  auto& m = it.mesh("v").component();
  auto v = ramp(4);
  // store before reset_dataset
  EXPECT_THROW(m.store_chunk<double>(0, v, {0}, {4}), UsageError);
  m.reset_dataset(Datatype::float64, {8});
  // dtype mismatch
  std::vector<float> f(4, 0.f);
  EXPECT_THROW(m.store_chunk<float>(0, f, {0}, {4}), UsageError);
  // second open iteration while one is open
  EXPECT_THROW(series.write_iteration(1), UsageError);
  m.store_chunk<double>(0, v, {0}, {4});
  it.close();
  // write to closed iteration
  EXPECT_THROW(it.mesh("other"), UsageError);
  series.close();
  EXPECT_THROW(series.write_iteration(2), UsageError);

  // Read-mode misuse.
  Series reader(fs, "err.bp4", Access::read_only);
  EXPECT_THROW(reader.write_iteration(0), UsageError);
  EXPECT_THROW(reader.read_iteration(99), UsageError);
  auto& rit = reader.read_iteration(0);
  EXPECT_THROW(rit.mesh("ghost"), UsageError);
  EXPECT_THROW(rit.mesh("v").component().load<float>(), UsageError);
}

TEST(OpenPmd, SpmdRanksWriteConcurrently) {
  // Live-mode pattern: rank threads store their chunks concurrently; rank 0
  // closes the iteration between barriers.
  SharedFs fs(8);
  Series series(fs, "spmd.bp4", Access::create, 8);
  auto& it = series.write_iteration(0);
  auto& x = it.particles("e")["position"]["x"];
  x.reset_dataset(Datatype::float64, {8 * 100});

  smpi::run_spmd(8, [&](smpi::Comm& comm) {
    const std::uint64_t local = 100;
    const std::uint64_t offset = comm.exscan(local);
    auto mine = ramp(local, double(offset));
    x.store_chunk<double>(comm.rank(), mine, {offset}, {local});
    comm.barrier();
    if (comm.rank() == 0) it.close();
    comm.barrier();
  });
  series.close();

  Series reader(fs, "spmd.bp4", Access::read_only);
  EXPECT_EQ(
      reader.read_iteration(0).particles("e")["position"]["x"].load<double>(),
      ramp(800));
}

TEST(OpenPmd, AsyncEngineFlushJoinsDrains) {
  SharedFs fs(8);
  const std::string config = R"(
[adios2.engine]
type = "bp5"

[adios2.engine.parameters]
NumAggregators = 2
AsyncWrite = "On"
BufferChunkSize = 1
)";
  {
    Series series(fs, "async.bp5", Access::create, 2, config);
    for (std::uint64_t step = 0; step < 4; ++step) {
      auto& it = series.write_iteration(step);
      auto& m = it.mesh("v").component();
      m.reset_dataset(Datatype::float64, {16});
      auto lo = ramp(8, double(step)), hi = ramp(8, double(step) + 8.0);
      m.store_chunk<double>(0, lo, {0}, {8});
      m.store_chunk<double>(1, hi, {8}, {8});
      it.close();  // async: submitted to the drain, returns immediately
      series.flush(FlushMode::async);  // kick only, no join
    }
    // sync flush joins every outstanding drain: the data bytes are on
    // storage while the series is still open.
    series.flush(FlushMode::sync);
    EXPECT_GT(fs.store().file("async.bp5/data.0").size, 0u);
    EXPECT_GT(fs.store().file("async.bp5/md.0").size, 0u);
    series.close();
  }
  Series series(fs, "async.bp5", Access::read_only);
  ASSERT_EQ(series.iterations().size(), 4u);
  for (std::uint64_t step = 0; step < 4; ++step) {
    const auto v =
        series.read_iteration(step).mesh("v").component().load<double>();
    ASSERT_EQ(v.size(), 16u);
    EXPECT_DOUBLE_EQ(v[0], double(step));
    EXPECT_DOUBLE_EQ(v[15], double(step) + 15.0);
  }
}

TEST(OpenPmd, FlushIsWriteModeOnly) {
  SharedFs fs(4);
  {
    Series series(fs, "f.bp4", Access::create, 1);
    auto& it = series.write_iteration(0);
    auto& m = it.mesh("v").component();
    m.reset_dataset(Datatype::float64, {2});
    auto v = ramp(2);
    m.store_chunk<double>(0, v, {0}, {2});
    it.close();
    series.flush();  // defaults to sync; no-op for the synchronous engine
    series.close();
  }
  Series reader(fs, "f.bp4", Access::read_only);
  EXPECT_THROW(reader.flush(), UsageError);
}

}  // namespace
}  // namespace bitio::pmd
