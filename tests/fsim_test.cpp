// Tests for the storage simulator: object store + striping semantics,
// POSIX facade + trace coalescing, and the queueing replay model.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>

#include "fsim/des.hpp"
#include "fsim/posix_fs.hpp"
#include "fsim/storage_model.hpp"
#include "fsim/system_profiles.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace bitio::fsim {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = std::uint8_t(seed + i * 131 % 251);
  return out;
}

// ----------------------------------------------------------- ObjectStore ---

TEST(ObjectStore, PathHelpers) {
  EXPECT_EQ(split_path("/a//b/c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(parent_path("a/b/c"), "a/b");
  EXPECT_EQ(parent_path("a"), "");
  EXPECT_EQ(base_name("x/y/data.0"), "data.0");
}

TEST(ObjectStore, CreateWriteReadBack) {
  ObjectStore store(4);
  FileNode& f = store.create_file("out/run1/data.0");
  auto data = pattern(1000);
  store.pwrite(f, 0, data.data(), data.size());
  EXPECT_EQ(f.size, 1000u);
  std::vector<std::uint8_t> back(1000);
  EXPECT_EQ(store.pread(f, 0, back.data(), 1000), 1000u);
  EXPECT_EQ(back, data);
  // Sparse write extends with zeros.
  store.pwrite(f, 2000, data.data(), 10);
  EXPECT_EQ(f.size, 2010u);
  std::uint8_t byte = 0xFF;
  EXPECT_EQ(store.pread(f, 1500, &byte, 1), 1u);
  EXPECT_EQ(byte, 0);
}

TEST(ObjectStore, DuplicateCreateAndMissingLookupFail) {
  ObjectStore store(2);
  store.create_file("a/f");
  EXPECT_THROW(store.create_file("a/f"), IoError);
  EXPECT_THROW(store.file("a/missing"), IoError);
  EXPECT_THROW(store.file_by_id(99), IoError);
}

TEST(ObjectStore, StripeInheritanceFromDirectory) {
  ObjectStore store(16);
  store.set_dir_stripe("out", {8, 16 * MiB});
  FileNode& f = store.create_file("out/sub/data.0");  // subdir inherits
  EXPECT_EQ(f.layout.settings.stripe_count, 8);
  EXPECT_EQ(f.layout.settings.stripe_size, 16 * MiB);
  EXPECT_EQ(f.layout.ost_indices.size(), 8u);
  EXPECT_EQ(f.layout.pattern, "raid0");
}

TEST(ObjectStore, StripePlacementIsRoundRobinAndDisjoint) {
  ObjectStore store(8);
  store.set_dir_stripe("d", {4, 1 * MiB});
  FileNode& a = store.create_file("d/a");
  FileNode& b = store.create_file("d/b");
  // Within one file: consecutive distinct OSTs (RAID0 rotation).
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(a.layout.ost_indices[std::size_t(i)],
              (a.layout.stripe_offset + i) % 8);
  // Across files: allocation cursor advances (load balancing).
  EXPECT_NE(a.layout.stripe_offset, b.layout.stripe_offset);
}

TEST(ObjectStore, SetstripeValidation) {
  ObjectStore store(4);
  EXPECT_THROW(store.set_dir_stripe("x", {0, MiB}), UsageError);
  EXPECT_THROW(store.set_dir_stripe("x", {2, 0}), UsageError);
  EXPECT_THROW(store.set_dir_stripe("x", {5, MiB}), UsageError);  // > OSTs
}

TEST(ObjectStore, ListRecursiveInCreationOrder) {
  ObjectStore store(2);
  store.create_file("r/b");
  store.create_file("r/sub/a");
  store.create_file("r/c");
  auto files = store.list_recursive("r");
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0]->path, "r/b");
  EXPECT_EQ(files[1]->path, "r/sub/a");
  EXPECT_EQ(files[2]->path, "r/c");
}

TEST(ObjectStore, UnlinkKeepsNodeForReplay) {
  ObjectStore store(2);
  FileNode& f = store.create_file("r/x");
  const FileId id = f.id;
  store.unlink("r/x");
  EXPECT_FALSE(store.file_exists("r/x"));
  EXPECT_NO_THROW(store.file_by_id(id));  // layout still resolvable
  EXPECT_TRUE(store.list_recursive("r").empty());
}

TEST(ObjectStore, NoDataRetentionMode) {
  ObjectStore store(2, /*store_data=*/false);
  FileNode& f = store.create_file("big");
  auto data = pattern(100);
  store.pwrite(f, 0, data.data(), data.size());
  EXPECT_EQ(f.size, 100u);
  EXPECT_TRUE(f.data.empty());  // sizes only
  std::uint8_t byte;
  EXPECT_THROW(store.pread(f, 0, &byte, 1), IoError);
}

// --------------------------------------------------------------- PosixFs ---

TEST(PosixFs, SequentialWritesCoalesceInTrace) {
  SharedFs fs(4);
  FsClient client(fs, 0);
  const int fd = client.open("out/f.dat", OpenMode::create);
  auto rec = pattern(512);
  for (int i = 0; i < 100; ++i) client.write(fd, rec);
  client.close(fd);

  // create + ONE coalesced write + close.
  ASSERT_EQ(fs.trace().size(), 3u);
  const TraceOp& w = fs.trace()[1];
  EXPECT_EQ(w.kind, OpKind::write);
  EXPECT_EQ(w.bytes, 51200u);
  EXPECT_EQ(w.op_count, 100u);
  EXPECT_EQ(fs.traced_bytes_written(), 51200u);
  EXPECT_EQ(fs.store().file("out/f.dat").size, 51200u);
}

TEST(PosixFs, InterleavedClientsDoNotCoalesceAcrossEachOther) {
  SharedFs fs(4);
  FsClient a(fs, 0), b(fs, 1);
  const int fa = a.open("fa", OpenMode::create);
  const int fb = b.open("fb", OpenMode::create);
  auto rec = pattern(8);
  a.write(fa, rec);
  b.write(fb, rec);
  a.write(fa, rec);
  std::size_t writes = 0;
  for (const auto& op : fs.trace())
    if (op.kind == OpKind::write) ++writes;
  EXPECT_EQ(writes, 3u);  // a, b, a — the b op breaks a's run
}

TEST(PosixFs, ReadBackAndModes) {
  SharedFs fs(4);
  FsClient client(fs, 0);
  auto data = pattern(1000, 7);
  client.write_file("dir/file", data);
  EXPECT_EQ(client.read_all("dir/file"), data);

  // Append mode continues at the end.
  const int fd = client.open("dir/file", OpenMode::append);
  client.write(fd, pattern(10, 9));
  client.close(fd);
  EXPECT_EQ(client.read_all("dir/file").size(), 1010u);

  // create_or_truncate resets the checkpoint slot.
  const int fd2 = client.open("dir/file", OpenMode::create_or_truncate);
  client.write(fd2, pattern(5, 3));
  client.close(fd2);
  EXPECT_EQ(client.read_all("dir/file"), pattern(5, 3));
}

TEST(PosixFs, DescriptorDiscipline) {
  SharedFs fs(4);
  FsClient a(fs, 0), b(fs, 1);
  const int fd = a.open("f", OpenMode::create);
  auto rec = pattern(4);
  EXPECT_THROW(b.write(fd, rec), IoError);  // foreign descriptor
  a.close(fd);
  EXPECT_THROW(a.write(fd, rec), IoError);  // closed
  EXPECT_THROW(a.open("f", OpenMode::create), IoError);  // exists
  const int rd = a.open("f", OpenMode::read);
  EXPECT_THROW(a.write(rd, rec), IoError);  // read-only
}

TEST(PosixFs, GetstripeTextLooksLikeListing1) {
  SharedFs fs(48);
  FsClient client(fs, 0);
  client.setstripe("io_openPMD", {8, 16 * MiB});
  client.write_file("io_openPMD/dat_file.bp4/data.0", pattern(64));
  const std::string text =
      client.getstripe_text("io_openPMD/dat_file.bp4/data.0");
  EXPECT_NE(text.find("lmm_stripe_count:  8"), std::string::npos);
  EXPECT_NE(text.find("16777216"), std::string::npos);
  EXPECT_NE(text.find("raid0"), std::string::npos);
  EXPECT_NE(text.find("obdidx"), std::string::npos);
}

TEST(PosixFs, CpuChargeAppearsInTrace) {
  SharedFs fs(4);
  FsClient client(fs, 2);
  client.charge_cpu(0.25, "compress");
  ASSERT_EQ(fs.trace().size(), 1u);
  EXPECT_EQ(fs.trace()[0].kind, OpKind::cpu);
  EXPECT_DOUBLE_EQ(fs.trace()[0].cpu_seconds, 0.25);
  EXPECT_EQ(fs.trace()[0].tag, "compress");
}

// ------------------------------------------------------------------- DES ---

TEST(Des, FifoSingleSlotQueues) {
  FifoResource r(1);
  EXPECT_DOUBLE_EQ(r.submit(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(r.submit(0.0, 1.0), 2.0);   // queued behind first
  EXPECT_DOUBLE_EQ(r.submit(5.0, 1.0), 6.0);   // idle gap
  EXPECT_DOUBLE_EQ(r.busy_until(), 6.0);
  EXPECT_DOUBLE_EQ(r.busy_seconds(), 3.0);
}

TEST(Des, FifoMultiSlotRunsInParallel) {
  FifoResource r(3);
  EXPECT_DOUBLE_EQ(r.submit(0.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(r.submit(0.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(r.submit(0.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(r.submit(0.0, 2.0), 4.0);  // fourth job waits
}

TEST(Des, NoiseIsBoundedAndDeterministic) {
  NoiseStream a(0.3, 42), b(0.3, 42);
  for (int i = 0; i < 1000; ++i) {
    const double v = a.next();
    EXPECT_GE(v, 0.7);
    EXPECT_LE(v, 1.3);
    EXPECT_DOUBLE_EQ(v, b.next());
  }
  NoiseStream off(0.0, 42);
  EXPECT_DOUBLE_EQ(off.next(), 1.0);
}

// ------------------------------------------------------------- Replay -----

SystemProfile flat_profile() {
  // A deliberately simple profile for analytic checks: no noise, 1 OST,
  // negligible latencies.
  SystemProfile p;
  p.name = "flat";
  p.ranks_per_node = 4;
  p.ost_count = 1;
  p.ost_bandwidth_bps = 1e9;
  p.ost_stream_latency_s = 0.0;
  p.ost_small_service_s = 1e-3;
  p.slice_bytes = 1 * MiB;
  p.mds_slots = 1;
  p.mds_create_service_s = 1e-3;
  p.mds_meta_service_s = 0.5e-3;
  p.link_bandwidth_bps = 1e12;
  p.link_latency_s = 0.0;
  p.sync_write_threshold = 64 * KiB;
  p.small_write_meta_s = 1.5e-3;
  p.small_write_data_s = 0.5e-3;
  p.ost_sync_extra_s = 0.0;
  p.client_stream_bandwidth_bps = 1e12;  // isolate server-side effects
  p.syscall_overhead_s = 0.0;
  p.noise_amplitude = 0.0;
  return p;
}

TEST(Replay, SingleLargeWriteIsBandwidthBound) {
  SharedFs fs(1);
  FsClient client(fs, 0);
  const int fd = client.open("f", OpenMode::create);
  std::vector<std::uint8_t> big(8 * MiB);
  client.write(fd, big);
  client.close(fd);

  auto report = replay_trace(flat_profile(), fs.store(), fs.trace(), 1);
  EXPECT_EQ(report.bytes_written, 8 * MiB);
  // 8 MiB at 1e9 B/s ≈ 8.39 ms plus create+close metadata.
  EXPECT_NEAR(report.clients[0].write, 8.39e-3, 0.5e-3);
  EXPECT_NEAR(report.clients[0].meta, 1.5e-3, 1e-6);
  EXPECT_GT(report.write_throughput_bps(), 0.5e9);
}

TEST(Replay, SmallSyncRecordsPayPerRecordRtt) {
  SharedFs fs(1);
  FsClient client(fs, 0);
  const int fd = client.open("f", OpenMode::create);
  std::vector<std::uint8_t> rec(2 * KiB);
  for (int i = 0; i < 100; ++i) client.write(fd, rec);
  client.close(fd);

  auto report = replay_trace(flat_profile(), fs.store(), fs.trace(), 1);
  // 100 records x 0.5 ms in-call data handling; the 1.5 ms/record lock
  // round trip lands in metadata time (write-back model).
  EXPECT_NEAR(report.clients[0].write, 0.05, 0.005);
  EXPECT_GT(report.clients[0].meta, 0.15);
  // The async OST drain extends the makespan beyond the client's own time.
  EXPECT_GE(report.makespan, 0.1);
}

TEST(Replay, MetadataStormQueuesAtMds) {
  // 64 clients each create 4 files: 256 creates + 256 closes through a
  // single-slot MDS => serialized.
  SharedFs fs(4);
  for (ClientId c = 0; c < 64; ++c) {
    FsClient client(fs, c);
    for (int f = 0; f < 4; ++f) {
      const int fd = client.open(
          "out/rank" + std::to_string(c) + "." + std::to_string(f),
          OpenMode::create);
      client.close(fd);
    }
  }
  auto report = replay_trace(flat_profile(), fs.store(), fs.trace(), 64);
  // Total MDS busy time: 256*1ms + 256*0.5ms = 0.384 s; the makespan must
  // be at least that (single slot), and mean meta wait grows with load.
  EXPECT_GE(report.makespan, 0.384 - 1e-9);
  EXPECT_GT(report.mean_meta_time(), 0.0);
}

TEST(Replay, StripingSpreadsLoadAcrossOsts) {
  auto run = [](int stripe_count) {
    SharedFs fs(8);
    FsClient client(fs, 0);
    client.setstripe("d", {stripe_count, 1 * MiB});
    const int fd = client.open("d/f", OpenMode::create);
    std::vector<std::uint8_t> big(32 * MiB);
    client.write(fd, big);
    client.close(fd);
    auto profile = flat_profile();
    profile.ost_count = 8;
    return replay_trace(profile, fs.store(), fs.trace(), 1)
        .clients[0]
        .write;
  };
  const double t1 = run(1);
  const double t8 = run(8);
  // 8-way striping must be much faster than single-OST for one big file.
  EXPECT_LT(t8, t1 / 4.0);
}

TEST(Replay, ConcurrentWritersContendOnOneOst) {
  auto run = [](int nclients) {
    SharedFs fs(1);
    std::vector<std::uint8_t> big(4 * MiB);
    for (ClientId c = 0; c < ClientId(nclients); ++c) {
      FsClient client(fs, c);
      const int fd = client.open("f" + std::to_string(c), OpenMode::create);
      client.write(fd, big);
      client.close(fd);
    }
    return replay_trace(flat_profile(), fs.store(), fs.trace(), nclients)
        .makespan;
  };
  // Twice the writers to the same OST => roughly twice the makespan.
  const double t2 = run(2);
  const double t4 = run(4);
  EXPECT_NEAR(t4 / t2, 2.0, 0.3);
}

TEST(Replay, CpuOpsChargeOnlyTheClient) {
  SharedFs fs(1);
  FsClient a(fs, 0), b(fs, 1);
  a.charge_cpu(1.0, "compress");
  b.charge_cpu(0.5, "memcopy");
  auto report = replay_trace(flat_profile(), fs.store(), fs.trace(), 2);
  EXPECT_DOUBLE_EQ(report.clients[0].cpu, 1.0);
  EXPECT_DOUBLE_EQ(report.clients[1].cpu, 0.5);
  EXPECT_DOUBLE_EQ(report.cpu_by_tag.at("compress"), 1.0);
  EXPECT_DOUBLE_EQ(report.cpu_by_tag.at("memcopy"), 0.5);
  EXPECT_DOUBLE_EQ(report.makespan, 1.0);
}

TEST(Replay, ValidatesInput) {
  SharedFs fs(1);
  FsClient client(fs, 5);
  client.charge_cpu(0.1, "x");
  EXPECT_THROW(replay_trace(flat_profile(), fs.store(), fs.trace(), 2),
               UsageError);
  EXPECT_THROW(replay_trace(flat_profile(), fs.store(), {}, 0), UsageError);
}

// ------------------------------------------------------- System profiles ---

TEST(Profiles, NamedLookup) {
  EXPECT_EQ(system_profile("dardel").ost_count, 48);
  EXPECT_EQ(system_profile("discoverer").ost_count, 4);
  EXPECT_EQ(system_profile("vega").ost_count, 80);
  EXPECT_THROW(system_profile("frontier"), UsageError);
}

TEST(Profiles, VegaIsNoisyDardelIsNot) {
  EXPECT_GT(system_profile("vega").noise_amplitude, 0.3);
  EXPECT_LT(system_profile("dardel").noise_amplitude, 0.1);
}

// ----------------------------------------------------------- stall faults ---

TEST(StallFaults, CancelStallsReleasesWedgedWritesWithTimeoutError) {
  // An injected stall wedges the write (releasing the fs lock so other
  // clients keep running) until cancel_stalls() aborts it with a typed
  // error — the primitive the bp drain watchdog is built on.
  SharedFs fs(8);
  fs.set_fault_plan(FaultPlan(1, {{FaultKind::stall, "f", 1, 0.0, 1, -1, 0}}));

  std::atomic<bool> timed_out{false};
  std::thread victim([&] {
    FsClient io(fs, 0);
    const int fd = io.open("f", OpenMode::create);
    try {
      io.write(fd, pattern(1024));
    } catch (const TimeoutError&) {
      timed_out = true;
    }
    io.close(fd);
  });

  // Wait for the write to wedge, then prove an unrelated client still makes
  // progress while it hangs.
  while (fs.stalled_op_count() == 0) std::this_thread::yield();
  FsClient other(fs, 1);
  const int fd = other.open("g", OpenMode::create);
  other.write(fd, pattern(64));
  other.close(fd);
  EXPECT_EQ(fs.stalled_op_count(), 1);

  EXPECT_EQ(fs.cancel_stalls(), 1);
  victim.join();
  EXPECT_TRUE(timed_out.load());
  EXPECT_EQ(fs.stalled_op_count(), 0);
  // Nothing further to release.
  EXPECT_EQ(fs.cancel_stalls(), 0);

  // The stall fired within its times bound: a fresh write goes through.
  FsClient io(fs, 0);
  const int fd2 = io.open("f2", OpenMode::create);
  EXPECT_NO_THROW(io.write(fd2, pattern(1024)));
  io.close(fd2);
}

// ------------------------------------------------------------- queue pair ---

namespace {

/// Batch trace records appended by queue-pair submissions.
std::vector<TraceOp> batch_ops(const SharedFs& fs) {
  std::vector<TraceOp> out;
  for (const TraceOp& op : fs.trace())
    if (op.kind == OpKind::batch_write) out.push_back(op);
  return out;
}

}  // namespace

TEST(QueuePair, VectoredBatchPersistsAndTracesOneDoorbell) {
  SharedFs fs(8);
  FsClient io(fs, 0);
  const int fd = io.open("q", OpenMode::create);

  SubmissionQueue sq(io, 4);
  const auto first = pattern(96, 1);
  const auto second = pattern(64, 7);
  Sqe a;
  a.fd = fd;
  a.offset = 0;
  // Vectored: two segments of one sqe land contiguously.
  a.iov.push_back(std::span<const std::uint8_t>(first).first(32));
  a.iov.push_back(std::span<const std::uint8_t>(first).subspan(32));
  a.user_data = 11;
  Sqe b;
  b.fd = fd;
  b.offset = 96;
  b.iov.push_back(std::span<const std::uint8_t>(second));
  b.user_data = 22;
  sq.push(std::move(a));
  sq.push(std::move(b));
  EXPECT_EQ(sq.pending(), 2u);
  EXPECT_EQ(sq.submit(), 2u);
  EXPECT_EQ(sq.pending(), 0u);

  const auto cqes = sq.reap_all();
  ASSERT_EQ(cqes.size(), 2u);
  EXPECT_TRUE(cqes[0].ok);
  EXPECT_EQ(cqes[0].user_data, 11u);
  EXPECT_EQ(cqes[0].bytes_persisted, 96u);
  EXPECT_TRUE(cqes[1].ok);
  EXPECT_EQ(cqes[1].user_data, 22u);
  EXPECT_FALSE(cqes[1].short_write());

  // The bytes landed exactly as one pwritev would have put them.
  std::vector<std::uint8_t> back(160);
  EXPECT_EQ(io.pread(fd, 0, back), 160u);
  EXPECT_TRUE(std::equal(first.begin(), first.end(), back.begin()));
  EXPECT_TRUE(std::equal(second.begin(), second.end(), back.begin() + 96));
  io.close(fd);

  EXPECT_EQ(sq.stats().batches_submitted, 1u);
  EXPECT_EQ(sq.stats().sqes_submitted, 2u);
  EXPECT_EQ(sq.stats().coalesced_bytes, 0u);
  // One doorbell-tagged record per submit; one record per sqe without
  // coalescing.
  const auto ops = batch_ops(fs);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].tag, kBatchDoorbellTag);
  EXPECT_EQ(ops[0].op_count, 1u);
  EXPECT_TRUE(ops[1].tag.empty());
}

TEST(QueuePair, CoalescesAdjacentSqesIntoVectoredRecords) {
  SharedFs fs(8);
  FsClient io(fs, 0);
  const int fd = io.open("q", OpenMode::create);

  SubmissionQueue sq(io, 8, /*coalesce=*/true);
  const auto data = pattern(256, 3);
  for (int i = 0; i < 3; ++i) {
    // Three adjacent 64-byte sqes: one vectored device record.
    Sqe sqe;
    sqe.fd = fd;
    sqe.offset = std::uint64_t(i) * 64;
    sqe.iov.push_back(
        std::span<const std::uint8_t>(data).subspan(std::size_t(i) * 64, 64));
    sq.push(std::move(sqe));
  }
  Sqe gap;  // a hole before it: starts its own record
  gap.fd = fd;
  gap.offset = 512;
  gap.iov.push_back(std::span<const std::uint8_t>(data).first(64));
  sq.push(std::move(gap));
  EXPECT_EQ(sq.submit(), 4u);
  for (const Cqe& cqe : sq.reap_all()) EXPECT_TRUE(cqe.ok);

  const auto ops = batch_ops(fs);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].op_count, 3u);  // the coalesced run
  EXPECT_EQ(ops[0].bytes, 192u);
  EXPECT_EQ(ops[0].tag, kBatchDoorbellTag);
  EXPECT_EQ(ops[1].op_count, 1u);
  EXPECT_EQ(ops[1].offset, 512u);
  EXPECT_EQ(sq.stats().coalesced_bytes, 192u);

  // Coalescing changed only the trace shape, never the stored bytes.
  std::vector<std::uint8_t> back(192);
  EXPECT_EQ(io.pread(fd, 0, back), 192u);
  EXPECT_TRUE(std::equal(back.begin(), back.end(), data.begin()));
  io.close(fd);
}

TEST(QueuePair, EioMidBatchFailsOnlyTheAffectedSqe) {
  SharedFs fs(8);
  fs.set_fault_plan(FaultPlan(1, {{FaultKind::eio, "q", 2, 0.0, 1, -1, 0}}));
  FsClient io(fs, 0);
  const int fd = io.open("q", OpenMode::create);

  SubmissionQueue sq(io, 4, /*coalesce=*/true);
  const auto data = pattern(192, 5);
  for (int i = 0; i < 3; ++i) {
    Sqe sqe;
    sqe.fd = fd;
    sqe.offset = std::uint64_t(i) * 64;
    sqe.iov.push_back(
        std::span<const std::uint8_t>(data).subspan(std::size_t(i) * 64, 64));
    sqe.user_data = std::uint64_t(i);
    sq.push(std::move(sqe));
  }
  // No throw: the fault surfaces as a failed Cqe, not an exception.
  EXPECT_EQ(sq.submit(), 3u);
  const auto cqes = sq.reap_all();
  ASSERT_EQ(cqes.size(), 3u);
  EXPECT_TRUE(cqes[0].ok);
  EXPECT_FALSE(cqes[1].ok);
  EXPECT_EQ(cqes[1].fault, FaultKind::eio);
  EXPECT_EQ(cqes[1].bytes_persisted, 0u);
  EXPECT_NE(cqes[1].error.find("eio"), std::string::npos);
  EXPECT_TRUE(cqes[2].ok);  // the batch continued past the failure

  // Sqes 0 and 2 persisted; the failed extent holds nothing (file length
  // covers it because sqe 2 wrote past it, so it reads back as zeros).
  std::vector<std::uint8_t> back(192);
  EXPECT_EQ(io.pread(fd, 0, back), 192u);
  EXPECT_TRUE(std::equal(back.begin(), back.begin() + 64, data.begin()));
  EXPECT_TRUE(std::all_of(back.begin() + 64, back.begin() + 128,
                          [](std::uint8_t b) { return b == 0; }));
  EXPECT_TRUE(
      std::equal(back.begin() + 128, back.end(), data.begin() + 128));
  io.close(fd);

  // The faulted record never coalesces, so each injection stays
  // attributable: three separate records, no vectored run.
  const auto ops = batch_ops(fs);
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[1].fault, FaultKind::eio);
  EXPECT_EQ(sq.stats().coalesced_bytes, 0u);
}

TEST(QueuePair, TornWriteMidBatchReportsShortCompletion) {
  SharedFs fs(8);
  fs.set_fault_plan(
      FaultPlan(9, {{FaultKind::torn_write, "q", 2, 0.0, 1, -1, 0}}));
  FsClient io(fs, 0);
  const int fd = io.open("q", OpenMode::create);

  SubmissionQueue sq(io, 4);
  const auto data = pattern(192, 9);
  for (int i = 0; i < 3; ++i) {
    Sqe sqe;
    sqe.fd = fd;
    sqe.offset = std::uint64_t(i) * 64;
    sqe.iov.push_back(
        std::span<const std::uint8_t>(data).subspan(std::size_t(i) * 64, 64));
    sq.push(std::move(sqe));
  }
  EXPECT_EQ(sq.submit(), 3u);
  const auto cqes = sq.reap_all();
  ASSERT_EQ(cqes.size(), 3u);
  // io_uring res semantics: the torn sqe completes "successfully" with a
  // short byte count — the caller detects the lost tail from the count.
  EXPECT_TRUE(cqes[1].ok);
  EXPECT_TRUE(cqes[1].short_write());
  EXPECT_LT(cqes[1].bytes_persisted, cqes[1].bytes_requested);
  EXPECT_EQ(cqes[1].fault, FaultKind::torn_write);
  EXPECT_FALSE(cqes[0].short_write());
  EXPECT_FALSE(cqes[2].short_write());

  // The persisted prefix matches the source; the lost tail reads back as
  // zeros (sqe 3 extended the file past it).
  const std::size_t persisted = std::size_t(cqes[1].bytes_persisted);
  std::vector<std::uint8_t> back(192);
  EXPECT_EQ(io.pread(fd, 0, back), 192u);
  EXPECT_TRUE(std::equal(back.begin() + 64, back.begin() + 64 + persisted,
                         data.begin() + 64));
  EXPECT_TRUE(std::all_of(back.begin() + 64 + persisted, back.begin() + 128,
                          [](std::uint8_t b) { return b == 0; }));
  io.close(fd);
}

TEST(QueuePair, StallMidBatchIsCancellableAndBatchContinues) {
  // A stall wedges submit() exactly like a wedged posix write; the prior
  // sqes' completions stay valid, cancel_stalls() converts the wedged sqe
  // into a failed Cqe, and the rest of the batch proceeds — so a drain
  // watchdog built on cancel_stalls() never wedges on the batched path.
  SharedFs fs(8);
  fs.set_fault_plan(FaultPlan(3, {{FaultKind::stall, "q", 2, 0.0, 1, -1, 0}}));

  std::vector<Cqe> cqes;
  std::thread victim([&] {
    FsClient io(fs, 0);
    const int fd = io.open("q", OpenMode::create);
    SubmissionQueue sq(io, 4);
    const auto data = pattern(192, 2);
    for (int i = 0; i < 3; ++i) {
      Sqe sqe;
      sqe.fd = fd;
      sqe.offset = std::uint64_t(i) * 64;
      sqe.iov.push_back(std::span<const std::uint8_t>(data).subspan(
          std::size_t(i) * 64, 64));
      sq.push(std::move(sqe));
    }
    EXPECT_EQ(sq.submit(), 3u);  // blocks on sqe 2 until cancel_stalls()
    cqes = sq.reap_all();
    io.close(fd);
  });

  // Wait for the batch to wedge mid-flight, prove an unrelated client
  // still makes progress, then cancel.
  while (fs.stalled_op_count() == 0) std::this_thread::yield();
  FsClient other(fs, 1);
  const int fd = other.open("g", OpenMode::create);
  other.write(fd, pattern(64));
  other.close(fd);
  EXPECT_EQ(fs.cancel_stalls(), 1);
  victim.join();

  ASSERT_EQ(cqes.size(), 3u);
  EXPECT_TRUE(cqes[0].ok);
  EXPECT_FALSE(cqes[1].ok);
  EXPECT_EQ(cqes[1].fault, FaultKind::stall);
  EXPECT_TRUE(cqes[2].ok);  // the batch continued after the cancel
  EXPECT_EQ(fs.stalled_op_count(), 0);

  // The queue pair stays usable after the cancelled stall.
  FsClient io(fs, 0);
  const int fd2 = io.open("q2", OpenMode::create);
  SubmissionQueue sq(io, 2);
  Sqe sqe;
  sqe.fd = fd2;
  const auto tail = pattern(64, 4);
  sqe.iov.push_back(std::span<const std::uint8_t>(tail));
  sq.push(std::move(sqe));
  EXPECT_EQ(sq.submit(), 1u);
  EXPECT_TRUE(sq.reap()->ok);
  io.close(fd2);
}

TEST(QueuePair, SimulatedSqesGrowTheFileLikeWriteSimulated) {
  SharedFs fs(8);
  FsClient io(fs, 0);
  const int fd = io.open("q", OpenMode::create);
  SubmissionQueue sq(io, 4, /*coalesce=*/true);
  for (int i = 0; i < 3; ++i) {
    Sqe sqe;
    sqe.fd = fd;
    sqe.offset = std::uint64_t(i) * 1024;
    sqe.simulated_bytes = 1024;
    sq.push(std::move(sqe));
  }
  EXPECT_EQ(sq.submit(), 3u);
  for (const Cqe& cqe : sq.reap_all()) {
    EXPECT_TRUE(cqe.ok);
    EXPECT_EQ(cqe.bytes_persisted, 1024u);
  }
  io.close(fd);
  EXPECT_EQ(io.stat_size("q"), 3072u);
  // Size-only sqes coalesce exactly like payload sqes.
  const auto ops = batch_ops(fs);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].op_count, 3u);
  EXPECT_EQ(ops[0].bytes, 3072u);
}

TEST(QueuePair, RejectsBadUsageBeforeTouchingAnySqe) {
  SharedFs fs(8);
  FsClient io(fs, 0);
  EXPECT_THROW(SubmissionQueue(io, 0), UsageError);  // zero-depth ring

  const int fd = io.open("q", OpenMode::create);
  SubmissionQueue sq(io, 1);
  const auto data = pattern(64, 6);
  Sqe first;
  first.fd = fd;
  first.iov.push_back(std::span<const std::uint8_t>(data));
  sq.push(std::move(first));
  Sqe overflow;
  overflow.fd = fd;
  overflow.iov.push_back(std::span<const std::uint8_t>(data));
  EXPECT_FALSE(sq.try_push(overflow));        // full ring: try_push declines
  EXPECT_THROW(sq.push(std::move(overflow)), UsageError);  // push throws

  // A batch mixing a bad descriptor with a valid sqe fails upfront: no
  // completions generated, nothing persisted.
  SubmissionQueue bad(io, 4);
  Sqe valid;
  valid.fd = fd;
  valid.offset = 0;
  valid.iov.push_back(std::span<const std::uint8_t>(data));
  bad.push(std::move(valid));
  Sqe dangling;
  dangling.fd = 99;
  dangling.iov.push_back(std::span<const std::uint8_t>(data));
  bad.push(std::move(dangling));
  EXPECT_THROW(bad.submit(), IoError);
  EXPECT_EQ(bad.completions().ready(), 0u);
  EXPECT_EQ(io.stat_size("q"), 0u);

  // An sqe cannot be both payload and size-only.
  SubmissionQueue mixed(io, 2);
  Sqe both;
  both.fd = fd;
  both.iov.push_back(std::span<const std::uint8_t>(data));
  both.simulated_bytes = 64;
  mixed.push(std::move(both));
  EXPECT_THROW(mixed.submit(), UsageError);
  io.close(fd);
}

}  // namespace
}  // namespace bitio::fsim
