// Tests for the topology subsystem: the declarative Cluster/Mapper model,
// the two-level gather path in the BP engine (flat-topology byte-identity
// and the flat-vs-two-level differential), and the per-level gather
// counters that land in the Darshan log.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <map>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "bp/engine.hpp"
#include "bp/reader.hpp"
#include "core/io_config.hpp"
#include "darshan/darshan.hpp"
#include "fsim/posix_fs.hpp"
#include "fsim/storage_model.hpp"
#include "fsim/system_profiles.hpp"
#include "topo/topology.hpp"
#include "util/error.hpp"
#include "util/toml.hpp"

namespace bitio {
namespace {

using topo::Cluster;
using topo::Mapper;

// --------------------------------------------------------------- cluster ---

TEST(TopoCluster, FlatPresetPutsEveryRankOnOneNode) {
  const Cluster flat = Cluster::flat();
  EXPECT_FALSE(flat.multi_node());
  flat.validate();

  const Mapper mapper(flat, 1000);
  EXPECT_EQ(mapper.nodes(), 1);
  EXPECT_FALSE(mapper.multi_node());
  EXPECT_TRUE(mapper.same_node(0, 999));
  EXPECT_EQ(mapper.node_leader(0), 0);
  EXPECT_EQ(mapper.leader_of(999), 0);
}

TEST(TopoCluster, DardelPresetMatchesTheMachine) {
  const Cluster dardel = Cluster::dardel_like();
  EXPECT_TRUE(dardel.multi_node());
  EXPECT_EQ(dardel.ranks_per_node, 128);
  EXPECT_EQ(dardel.numa_per_node, 8);
  EXPECT_EQ(dardel.nics_per_node, 1);
  dardel.validate();
}

TEST(TopoCluster, PresetNamesMatchTheConfigRegistry) {
  // preset() and core::kBit1IoTopologies are kept in lockstep by the
  // topology-registry lint rule; this is the runtime half of that check.
  const auto names = topo::preset_names();
  ASSERT_EQ(names.size(), std::size(core::kBit1IoTopologies));
  for (const char* name : core::kBit1IoTopologies)
    EXPECT_NO_THROW(Cluster::preset(name)) << name;
}

TEST(TopoCluster, UnknownPresetListsTheNames) {
  try {
    Cluster::preset("summit");
    FAIL() << "unknown preset accepted";
  } catch (const UsageError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("\"flat\""), std::string::npos) << what;
    EXPECT_NE(what.find("\"dardel\""), std::string::npos) << what;
  }
}

TEST(TopoCluster, ValidateRejectsIncoherentShapes) {
  Cluster c = Cluster::dardel_like();
  c.numa_per_node = 0;
  EXPECT_THROW(c.validate(), UsageError);

  Cluster uneven = Cluster::dardel_like();
  uneven.ranks_per_node = 10;
  uneven.numa_per_node = 4;  // 10 % 4 != 0
  EXPECT_THROW(uneven.validate(), UsageError);
}

// ---------------------------------------------------------------- mapper ---

TEST(TopoMapper, BlockPlacementMathMatchesFsim) {
  Cluster c;
  c.name = "test";
  c.ranks_per_node = 4;
  c.numa_per_node = 2;
  c.nics_per_node = 2;
  const Mapper mapper(c, 10);

  EXPECT_EQ(mapper.nodes(), 3);  // ceil(10 / 4): the last node is partial
  EXPECT_TRUE(mapper.multi_node());
  // Block placement, the same client -> node math as the fsim replay.
  EXPECT_EQ(mapper.node_of(0), 0);
  EXPECT_EQ(mapper.node_of(3), 0);
  EXPECT_EQ(mapper.node_of(4), 1);
  EXPECT_EQ(mapper.node_of(9), 2);
  EXPECT_EQ(mapper.ranks_on_node(0), 4);
  EXPECT_EQ(mapper.ranks_on_node(2), 2);
  // Leaders are the lowest rank on each node.
  EXPECT_EQ(mapper.node_leader(1), 4);
  EXPECT_EQ(mapper.leader_of(7), 4);
  EXPECT_EQ(mapper.leader_of(9), 8);
  // NUMA domains split the node evenly; NICs interleave.
  EXPECT_EQ(mapper.numa_of(0), mapper.numa_of(1));
  EXPECT_NE(mapper.numa_of(0), mapper.numa_of(2));
  EXPECT_TRUE(mapper.same_numa(0, 1));
  EXPECT_FALSE(mapper.same_numa(0, 2));
  EXPECT_FALSE(mapper.same_numa(0, 4));  // different node, same in-node slot
  EXPECT_TRUE(mapper.same_node(4, 7));
  EXPECT_FALSE(mapper.same_node(3, 4));
  EXPECT_NE(mapper.nic_of(0), mapper.nic_of(1));
}

TEST(TopoMapper, RangeChecksThrow) {
  const Mapper mapper(Cluster::dardel_like(), 256);
  EXPECT_THROW(mapper.node_of(-1), UsageError);
  EXPECT_THROW(mapper.node_of(256), UsageError);
  EXPECT_THROW(mapper.node_leader(2), UsageError);
}

// ---------------------------------------------------------------- config ---

TEST(TopoConfig, Adios2TomlCarriesTopologyToTheEngine) {
  core::Bit1IoConfig config;
  config.aggregation = "two_level";
  config.topology = "dardel";
  config.numa_per_node = 4;
  config.nics_per_node = 2;
  config.validate();

  const Json cfg = parse_toml(config.adios2_toml());
  const bp::EngineConfig engine = bp::EngineConfig::from_json(cfg.at("adios2"));
  EXPECT_EQ(engine.aggregation, "two_level");
  EXPECT_EQ(engine.topology, "dardel");
  EXPECT_EQ(engine.numa_per_node, 4);
  EXPECT_EQ(engine.nics_per_node, 2);
}

TEST(TopoConfig, FlatConfigEmitsNoTopologyParameters) {
  // Legacy byte-identity: a flat-on-flat config renders the exact adios2
  // TOML it rendered before the topology keys existed.
  const core::Bit1IoConfig config;
  const std::string toml = config.adios2_toml();
  EXPECT_EQ(toml.find("Aggregation"), std::string::npos) << toml;
  EXPECT_EQ(toml.find("Topology"), std::string::npos) << toml;

  const Json cfg = parse_toml(toml);
  const bp::EngineConfig engine = bp::EngineConfig::from_json(cfg.at("adios2"));
  EXPECT_EQ(engine.aggregation, "flat");
  EXPECT_EQ(engine.topology, "flat");
}

TEST(TopoConfig, WriterRejectsUnknownAggregation) {
  fsim::SharedFs fs(2);
  bp::EngineConfig config;
  config.aggregation = "tree";
  try {
    bp::make_engine(fs, "x.bp4", config, 2);
    FAIL() << "unknown aggregation accepted";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("two_level"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------- engine ---

bp::EngineConfig topo_config(const std::string& aggregation,
                             const std::string& topology, int ranks_per_node,
                             int aggregators = 1) {
  bp::EngineConfig config;
  config.aggregation = aggregation;
  config.topology = topology;
  config.ranks_per_node = ranks_per_node;
  config.num_aggregators = aggregators;
  return config;
}

/// Write the same deterministic little series through the factory and
/// return the fs for inspection.
void write_series(fsim::SharedFs& fs, const bp::EngineConfig& config,
                  int nranks, const std::string& path = "out/series.bp4") {
  auto engine = bp::make_engine(fs, path, config, nranks);
  for (std::uint64_t step = 0; step < 2; ++step) {
    engine->begin_step(step);
    for (int r = 0; r < nranks; ++r) {
      std::vector<float> local(64);
      std::iota(local.begin(), local.end(), float(r * 64));
      engine->put<float>(r, "density", {std::uint64_t(nranks) * 64},
                         {std::uint64_t(r) * 64}, {64}, local);
    }
    engine->end_step();
  }
  engine->close();
}

/// Map path -> stored bytes for every file under `dir`.
std::map<std::string, std::vector<std::uint8_t>> container_bytes(
    const fsim::SharedFs& fs, const std::string& dir) {
  std::map<std::string, std::vector<std::uint8_t>> bytes;
  for (const fsim::FileNode* node : fs.store().list_recursive(dir))
    bytes[node->path] = node->data;
  return bytes;
}

int count_xfer(const fsim::SharedFs& fs, const char* tag) {
  int n = 0;
  for (const auto& op : fs.trace())
    if (op.kind == fsim::OpKind::xfer && op.tag == tag) ++n;
  return n;
}

TEST(TopoEngine, FlatTopologyRecordsNoGatherOps) {
  // topology = "flat" puts every rank on one node: even with two_level
  // requested there is nothing to gather across, so the trace — hence the
  // container and every calibrated replay number — is byte-identical to
  // the pre-topology writer.
  fsim::SharedFs fs(8);
  write_series(fs, topo_config("two_level", "flat", 4), 8);
  for (const auto& op : fs.trace())
    EXPECT_NE(op.kind, fsim::OpKind::xfer);
}

TEST(TopoEngine, FlatModeContainerIsByteIdenticalToLegacy) {
  // The differential the issue demands: the gather path only adds timing
  // ops, never changes what lands in the container.  Legacy (default
  // config) vs flat-aggregation-on-dardel vs two-level-on-dardel must all
  // store the same bytes.
  fsim::SharedFs legacy_fs(8), flat_fs(8), two_fs(8);
  bp::EngineConfig legacy;
  legacy.ranks_per_node = 4;
  legacy.num_aggregators = 1;
  write_series(legacy_fs, legacy, 8);
  write_series(flat_fs, topo_config("flat", "dardel", 4), 8);
  write_series(two_fs, topo_config("two_level", "dardel", 4), 8);

  const auto legacy_bytes = container_bytes(legacy_fs, "out/series.bp4");
  ASSERT_FALSE(legacy_bytes.empty());
  EXPECT_EQ(container_bytes(flat_fs, "out/series.bp4"), legacy_bytes);
  EXPECT_EQ(container_bytes(two_fs, "out/series.bp4"), legacy_bytes);

  // The legacy trace has no gather ops; the topology-modeled ones do.
  EXPECT_EQ(count_xfer(legacy_fs, fsim::kShmGatherTag) +
                count_xfer(legacy_fs, fsim::kNetGatherTag),
            0);
  // Flat aggregation on a multi-node topology: every non-leader rank ships
  // to the single aggregator leader; the leader's node-mates go over shm.
  EXPECT_GT(count_xfer(flat_fs, fsim::kNetGatherTag), 0);
  // Two-level: ranks gather to their node leader over shm, node leaders
  // forward one combined transfer each over the NIC.
  EXPECT_GT(count_xfer(two_fs, fsim::kShmGatherTag), 0);
  EXPECT_GT(count_xfer(two_fs, fsim::kNetGatherTag), 0);
  EXPECT_LT(count_xfer(two_fs, fsim::kNetGatherTag),
            count_xfer(flat_fs, fsim::kNetGatherTag));

  // And the data still reads back.
  bp::Reader reader = bp::Reader::open(two_fs, 0, "out/series.bp4");
  const auto data = reader.read_as<float>(1, "density");
  ASSERT_EQ(data.size(), 512u);
  EXPECT_FLOAT_EQ(data[100], 100.f);
}

TEST(TopoEngine, TwoLevelBeatsFlatOnAHierarchicalTopology) {
  // The mechanism behind the bench's headline curve, at test scale:
  // 64 ranks on 4 nodes, one aggregator.  Flat aggregation pays the NIC
  // per-message latency for every remote rank; two-level folds each node
  // into one NIC transfer and does the fan-in over shared memory.
  const int nranks = 64, rpn = 16;
  fsim::SharedFs flat_fs(nranks), two_fs(nranks);
  write_series(flat_fs, topo_config("flat", "dardel", rpn), nranks);
  write_series(two_fs, topo_config("two_level", "dardel", rpn), nranks);

  fsim::SystemProfile profile = fsim::dardel();
  profile.ranks_per_node = rpn;
  profile.noise_amplitude = 0.0;  // deterministic differential
  const auto flat = fsim::replay_trace(profile, flat_fs.store(),
                                       flat_fs.trace(), nranks);
  const auto two = fsim::replay_trace(profile, two_fs.store(), two_fs.trace(),
                                      nranks);
  EXPECT_LT(two.makespan, flat.makespan)
      << "two_level=" << two.makespan << " flat=" << flat.makespan;
}

// --------------------------------------------------------------- darshan ---

TEST(TopoDarshan, GatherCountersLandInTheLog) {
  const int nranks = 8, rpn = 4;
  fsim::SharedFs fs(nranks);
  write_series(fs, topo_config("two_level", "dardel", rpn), nranks);

  fsim::SystemProfile profile = fsim::dardel();
  profile.ranks_per_node = rpn;
  const auto replay =
      fsim::replay_trace(profile, fs.store(), fs.trace(), nranks);

  darshan::JobInfo job;
  job.nprocs = nranks;
  const darshan::DarshanLog log = darshan::capture(fs, replay, job);

  std::uint64_t shm = 0, net = 0, shm_bytes = 0, net_bytes = 0;
  double gather_s = 0.0;
  for (const auto& record : log.records) {
    shm += record.shm_gathers;
    net += record.net_gathers;
    shm_bytes += record.shm_gather_bytes;
    net_bytes += record.net_gather_bytes;
    gather_s += record.gather_time_s;
  }
  EXPECT_GT(shm, 0u);
  EXPECT_GT(net, 0u);
  EXPECT_GT(shm_bytes, 0u);
  EXPECT_GT(net_bytes, 0u);
  EXPECT_GT(gather_s, 0.0);

  // The counters survive the v5 log format round trip.
  const darshan::DarshanLog parsed = darshan::DarshanLog::parse(log.serialize());
  std::uint64_t shm_back = 0, net_back = 0;
  for (const auto& record : parsed.records) {
    shm_back += record.shm_gathers;
    net_back += record.net_gathers;
  }
  EXPECT_EQ(shm_back, shm);
  EXPECT_EQ(net_back, net);
}

TEST(TopoDarshan, AggregationTags) {
  EXPECT_EQ(darshan::aggregation_tag("flat"), "FLAT");
  EXPECT_EQ(darshan::aggregation_tag("two_level"), "TWO_LEVEL");
  EXPECT_EQ(darshan::aggregation_tag("exotic"), "EXOTIC");
}

// --------------------------------------------------------------- factory ---

TEST(TopoFactory, RegistryCoversEveryBuiltinEngineName) {
  // With the deprecated raw-ctor shims gone, the factory registry is the
  // only construction seam — so prove directly that every built-in engine
  // name resolves: registered, listed, and constructible by make_engine.
  const auto names = bp::registered_engines();
  for (bp::EngineType type :
       {bp::EngineType::bp4, bp::EngineType::bp5, bp::EngineType::stream}) {
    const std::string name{bp::engine_name(type)};
    EXPECT_TRUE(bp::engine_registered(name)) << name;
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end());
    fsim::SharedFs fs(4);
    auto engine = bp::make_engine(name, fs, "reg." + name, {}, 1);
    ASSERT_NE(engine, nullptr) << name;
    EXPECT_EQ(engine->engine_name(), name);
    engine->close();
  }
  EXPECT_THROW(
      {
        fsim::SharedFs fs(4);
        bp::make_engine("hdf5", fs, "reg.hdf5", {}, 1);
      },
      UsageError);
}

}  // namespace
}  // namespace bitio
