// Differential tests for the batched queue-pair I/O path: with
// io_batch_depth / coalesce_writes on, the bp::Writer must store containers
// byte-identical to the per-op posix writer — batching and coalescing may
// only change the *trace* shape (op kinds, op_count, doorbell tags), never
// what lands on disk.  The same differential the topology engine holds for
// its "flat" mode.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "bp/reader.hpp"
#include "bp/writer.hpp"
#include "darshan/darshan.hpp"
#include "fsim/posix_fs.hpp"
#include "fsim/storage_model.hpp"
#include "fsim/system_profiles.hpp"
#include "util/error.hpp"

namespace bitio {
namespace {

bp::EngineConfig batched_config(bp::EngineConfig base, int depth,
                                bool coalesce) {
  base.io_batch_depth = depth;
  base.coalesce_writes = coalesce;
  return base;
}

/// Write a 3-step float series from 8 ranks, staged or borrowed puts.
void write_series(fsim::SharedFs& fs, const bp::EngineConfig& config,
                  bool borrowed = false) {
  const int ranks = 8;
  const std::uint64_t elems = 64;
  // Borrowed payloads must outlive the drain; keep them all alive.
  std::vector<std::vector<float>> payloads;
  payloads.reserve(8 * 3);
  bp::Writer writer = bp::Writer::open(fs, "out/series.bp4", config, ranks);
  for (std::uint64_t step = 0; step < 3; ++step) {
    writer.begin_step(step);
    for (int r = 0; r < ranks; ++r) {
      auto& local = payloads.emplace_back(std::size_t(elems));
      std::iota(local.begin(), local.end(), float(r * 64) + float(step));
      const bp::Dims shape{std::uint64_t(ranks) * elems};
      const bp::Dims offset{std::uint64_t(r) * elems};
      const bp::Dims count{elems};
      if (borrowed)
        writer.put_borrowed(r, "density", shape,
                            bp::ChunkView::of<float>(
                                std::span<const float>(local), offset, count));
      else
        writer.put<float>(r, "density", shape, offset, count, local);
    }
    writer.end_step();
  }
  writer.close();
}

/// Map path -> stored bytes for every file under `dir`.
std::map<std::string, std::vector<std::uint8_t>> container_bytes(
    const fsim::SharedFs& fs, const std::string& dir) {
  std::map<std::string, std::vector<std::uint8_t>> bytes;
  for (const fsim::FileNode* node : fs.store().list_recursive(dir))
    bytes[node->path] = node->data;
  return bytes;
}

int count_kind(const fsim::SharedFs& fs, fsim::OpKind kind) {
  int n = 0;
  for (const auto& op : fs.trace())
    if (op.kind == kind) ++n;
  return n;
}

}  // namespace

TEST(IoPathDifferential, BatchedContainersAreByteIdenticalToPerOp) {
  bp::EngineConfig base;
  base.num_aggregators = 2;

  fsim::SharedFs per_op(8), batched(8), coalesced(8);
  write_series(per_op, base);
  write_series(batched, batched_config(base, 64, false));
  write_series(coalesced, batched_config(base, 64, true));

  const auto expected = container_bytes(per_op, "out/series.bp4");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(container_bytes(batched, "out/series.bp4"), expected);
  EXPECT_EQ(container_bytes(coalesced, "out/series.bp4"), expected);

  // Only the trace shape changed: the per-op run never records a
  // batch_write, the batched runs never record a plain data write to the
  // container (their data/metadata appends all ride the ring).
  EXPECT_EQ(count_kind(per_op, fsim::OpKind::batch_write), 0);
  EXPECT_GT(count_kind(batched, fsim::OpKind::batch_write), 0);
  // Coalescing merges adjacent sqes: fewer batch records, same doorbells.
  EXPECT_LT(count_kind(coalesced, fsim::OpKind::batch_write),
            count_kind(batched, fsim::OpKind::batch_write));

  // The batched+coalesced container still reads back.
  bp::Reader reader = bp::Reader::open(coalesced, 0, "out/series.bp4");
  const auto data = reader.read_as<float>(1, "density");
  ASSERT_EQ(data.size(), 512u);
  EXPECT_FLOAT_EQ(data[64], 65.0f);  // rank 1, step 1: 64 + 1
}

TEST(IoPathDifferential, AsyncBatchedContainersMatchPerOp) {
  bp::EngineConfig base;
  base.num_aggregators = 2;
  base.async_write = true;
  base.buffer_chunk_mb = 1;

  fsim::SharedFs per_op(8), coalesced(8);
  write_series(per_op, base);
  write_series(coalesced, batched_config(base, 16, true));

  const auto expected = container_bytes(per_op, "out/series.bp4");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(container_bytes(coalesced, "out/series.bp4"), expected);
}

TEST(IoPathDifferential, Czp1ParallelCompressionContainersMatch) {
  // Operator path: blosc through the CZP1 parallel-codec frames
  // (compress_threads > 1).  The ring submits the compressed extents; the
  // frames must stay byte-identical to the per-op writer's.
  bp::EngineConfig base;
  base.num_aggregators = 2;
  base.codec = "blosc";
  base.compress_threads = 4;
  base.compress_block_kb = 1;  // several blocks per chunk

  fsim::SharedFs per_op(8), coalesced(8);
  write_series(per_op, base);
  write_series(coalesced, batched_config(base, 32, true));

  const auto expected = container_bytes(per_op, "out/series.bp4");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(container_bytes(coalesced, "out/series.bp4"), expected);

  // Compressed chunks still decode from the batched container.
  bp::Reader reader = bp::Reader::open(coalesced, 0, "out/series.bp4");
  const auto data = reader.read_as<float>(2, "density");
  ASSERT_EQ(data.size(), 512u);
  EXPECT_FLOAT_EQ(data[0], 2.0f);
}

TEST(IoPathDifferential, TwoLevelAggregationOnDardelMatches) {
  // The gather path (rank -> node leader -> aggregator) composes with the
  // queue pair: gathers only add timing ops, the ring only changes write
  // records, the container bytes survive both.
  bp::EngineConfig base;
  base.num_aggregators = 2;
  base.ranks_per_node = 4;  // 8 ranks -> 2 modelled nodes
  base.aggregation = "two_level";
  base.topology = "dardel";

  fsim::SharedFs per_op(8), coalesced(8);
  write_series(per_op, base);
  write_series(coalesced, batched_config(base, 64, true));

  const auto expected = container_bytes(per_op, "out/series.bp4");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(container_bytes(coalesced, "out/series.bp4"), expected);
  // Both runs still model the two-level gather.
  EXPECT_GT(count_kind(coalesced, fsim::OpKind::xfer), 0);
}

TEST(IoPathDifferential, BorrowedPutsStoreTheSameBytesAsStagedPuts) {
  // Zero-copy marshalling must be invisible in the container: put_borrowed
  // skips the staging copy but stores exactly what put() stores.
  bp::EngineConfig base;
  base.num_aggregators = 2;

  fsim::SharedFs staged(8), borrowed(8);
  write_series(staged, batched_config(base, 64, true), /*borrowed=*/false);
  write_series(borrowed, batched_config(base, 64, true), /*borrowed=*/true);

  const auto expected = container_bytes(staged, "out/series.bp4");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(container_bytes(borrowed, "out/series.bp4"), expected);
}

TEST(IoPathDifferential, SyntheticBatchedStepsMatchPerOpSizes) {
  // Size-only steps ride the ring as simulated sqes; the files must grow
  // to the same sizes the per-op write_simulated path produces.
  const int ranks = 8;
  const auto run = [&](fsim::SharedFs& fs, int depth) {
    bp::EngineConfig config;
    config.num_aggregators = 2;
    config.io_batch_depth = depth;
    config.coalesce_writes = depth > 0;
    bp::Writer writer = bp::Writer::open(fs, "out/synth.bp4", config, ranks);
    for (std::uint64_t step = 0; step < 3; ++step) {
      writer.begin_step(step);
      for (int r = 0; r < ranks; ++r)
        writer.put_synthetic(r, "vdf", bp::Datatype::float32, {8 * 1024},
                             {std::uint64_t(r) * 1024}, {1024});
      writer.end_step();
    }
    writer.close();
  };
  fsim::SharedFs per_op(8), batched(8);
  run(per_op, 0);
  run(batched, 64);

  const auto expected = container_bytes(per_op, "out/synth.bp4");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(container_bytes(batched, "out/synth.bp4"), expected);
}

TEST(IoPathDifferential, DarshanCapturesBatchCountersAndHistogram) {
  bp::EngineConfig base;
  base.num_aggregators = 2;
  fsim::SharedFs fs(8);
  write_series(fs, batched_config(base, 64, true));

  const auto replay =
      fsim::replay_trace(fsim::dardel(), fs.store(), fs.trace(), 8);
  const auto log = darshan::capture(fs, replay, {"bit1", 8, 0.0, "/lustre"});

  std::uint64_t batches = 0, sqes = 0, coalesced = 0;
  for (const auto& r : log.records) {
    batches += r.batches_submitted;
    sqes += r.batched_sqes;
    coalesced += r.coalesced_bytes;
  }
  // Per step: one data doorbell per aggregator (4 chunk-extent sqes each)
  // + rank 0's metadata doorbell (md.0 + md.idx sqes).
  EXPECT_EQ(batches, 9u);
  EXPECT_EQ(sqes, 30u);
  EXPECT_GT(coalesced, 0u);
  // The vectored data submissions land in the 2-4 bucket, the metadata
  // pairs too; nothing above.
  std::uint64_t histogram_total = 0;
  for (const std::uint64_t bucket : log.job.ops_per_batch)
    histogram_total += bucket;
  EXPECT_EQ(histogram_total, batches);
  EXPECT_EQ(log.job.ops_per_batch[1], 9u);  // every batch carried 2-4 sqes

  // The counters survive the wire format.
  const auto back = darshan::DarshanLog::parse(log.serialize());
  std::uint64_t back_batches = 0;
  for (const auto& r : back.records) back_batches += r.batches_submitted;
  EXPECT_EQ(back_batches, batches);
  for (std::size_t i = 0; i < darshan::JobInfo::kBatchHistBuckets; ++i)
    EXPECT_EQ(back.job.ops_per_batch[i], log.job.ops_per_batch[i]) << i;
}

}  // namespace bitio
