// Tests for the contribution layer: I/O config parsing, the BIT1->openPMD
// adaptor (staging pattern, Table II file population, checkpoint/restart),
// the scale workload generators, and the tuning advisor.
#include <gtest/gtest.h>

#include <cmath>

#include "bp/writer.hpp"
#include "core/adaptor.hpp"
#include "core/diagnostics_sink.hpp"
#include "core/tuning.hpp"
#include "core/workload.hpp"
#include "fsim/system_profiles.hpp"
#include "picmc/checkpoint.hpp"
#include "picmc/diagnostics.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace bitio::core {
namespace {

// ---------------------------------------------------------------- config ---

TEST(IoConfig, FromTomlFullySpecified) {
  const auto config = Bit1IoConfig::from_toml(R"(
[io]
mode = "openpmd"
engine = "bp5"
aggregators = 400
checkpoint_aggregators = 2
codec = "bzip2"
profiling = true
ranks_per_node = 64

[io.striping]
count = 8
size = "16M"
)");
  EXPECT_EQ(config.mode, IoMode::openpmd);
  EXPECT_EQ(config.engine, "bp5");
  EXPECT_EQ(config.num_aggregators, 400);
  EXPECT_EQ(config.checkpoint_aggregators, 2);
  EXPECT_EQ(config.codec, "bzip2");
  EXPECT_TRUE(config.profiling);
  EXPECT_EQ(config.ranks_per_node, 64);
  EXPECT_TRUE(config.use_striping);
  EXPECT_EQ(config.striping.stripe_count, 8);
  EXPECT_EQ(config.striping.stripe_size, 16 * MiB);
}

TEST(IoConfig, DefaultsAndValidation) {
  const auto config = Bit1IoConfig::from_toml("[io]\nmode = \"original\"\n");
  EXPECT_EQ(config.mode, IoMode::original);
  EXPECT_FALSE(config.use_striping);
  EXPECT_THROW(Bit1IoConfig::from_toml("[io]\nmode = \"hdf5\"\n"),
               UsageError);
  EXPECT_THROW(Bit1IoConfig::from_toml("[io]\ncodec = \"zstd\"\n"),
               UsageError);
  EXPECT_THROW(Bit1IoConfig::from_toml("[io]\nengine = \"bp3\"\n"),
               UsageError);
}

TEST(IoConfig, Adios2TomlRendersAndParses) {
  Bit1IoConfig config;
  config.num_aggregators = 7;
  config.codec = "blosc";
  config.profiling = true;
  const Json parsed = parse_toml(config.adios2_toml());
  EXPECT_EQ(parsed.at("adios2")
                .at("engine")
                .at("parameters")
                .at("NumAggregators")
                .as_int(),
            7);
  EXPECT_EQ(parsed.at("adios2")
                .at("dataset")
                .at("operators")
                .at(0)
                .at("type")
                .as_string(),
            "blosc");
}

TEST(IoConfig, Labels) {
  Bit1IoConfig config;
  config.mode = IoMode::original;
  EXPECT_EQ(config.label(), "BIT1 Original I/O");
  config.mode = IoMode::openpmd;
  config.codec = "blosc";
  config.num_aggregators = 1;
  EXPECT_EQ(config.label(), "BIT1 openPMD + BP4 + Blosc + 1 AGGR");
}

TEST(IoConfig, StrictValidation) {
  Bit1IoConfig config;
  config.validate();  // defaults are consistent

  auto expect_invalid = [](Bit1IoConfig broken) {
    EXPECT_THROW(broken.validate(), UsageError);
  };
  { auto c = config; c.engine = "hdf5"; expect_invalid(c); }
  { auto c = config; c.codec = "zstd"; expect_invalid(c); }
  { auto c = config; c.num_aggregators = -1; expect_invalid(c); }
  { auto c = config; c.checkpoint_aggregators = 0; expect_invalid(c); }
  { auto c = config; c.checkpoint_aggregators = -3; expect_invalid(c); }
  { auto c = config; c.buffer_chunk_mb = 0; expect_invalid(c); }
  { auto c = config; c.ranks_per_node = 0; expect_invalid(c); }
  {
    auto c = config;
    c.use_striping = true;
    c.striping.stripe_size = 3 * MiB;  // not a power of two
    expect_invalid(c);
  }
  {
    auto c = config;
    c.use_striping = true;
    c.striping.stripe_count = 0;
    expect_invalid(c);
  }
  // A non-power-of-two stripe size without use_striping is ignored.
  { auto c = config; c.striping.stripe_size = 3 * MiB; c.validate(); }

  // from_toml validates too.
  EXPECT_THROW(Bit1IoConfig::from_toml("[io]\naggregators = -4\n"),
               UsageError);
  EXPECT_THROW(Bit1IoConfig::from_toml("[io]\nbuffer_chunk_mb = 0\n"),
               UsageError);
  EXPECT_THROW(Bit1IoConfig::from_toml(
                   "[io]\n[io.striping]\ncount = 2\nsize = \"3M\"\n"),
               UsageError);
}

TEST(IoConfig, TomlRoundTripIsLossless) {
  // Defaults survive the render -> parse cycle.
  const Bit1IoConfig defaults;
  EXPECT_EQ(Bit1IoConfig::from_toml(defaults.to_toml()), defaults);

  // So does a config with every field off its default.
  Bit1IoConfig config;
  config.mode = IoMode::openpmd;
  config.engine = "bp5";
  config.num_aggregators = 400;
  config.checkpoint_aggregators = 2;
  config.codec = "blosc";
  config.profiling = true;
  config.async_write = true;
  config.buffer_chunk_mb = 8;
  config.use_striping = true;
  config.striping.stripe_count = 8;
  config.striping.stripe_size = 16 * MiB;
  config.ranks_per_node = 64;
  EXPECT_EQ(Bit1IoConfig::from_toml(config.to_toml()), config);

  // Resilience keys round-trip too, including the fault plan's rules.
  config.checkpoint_interval = 5;
  config.checkpoint_retain = 3;
  config.fault_plan = fsim::FaultPlan(
      42, {{fsim::FaultKind::bit_flip, "epoch_1", 1, 0.0, 1, -1, 0},
           {fsim::FaultKind::eio, "data.0", 0, 0.25, 0, 2, 0},
           {fsim::FaultKind::rank_crash, "", 0, 0.0, 1, 3, 70}});
  EXPECT_EQ(Bit1IoConfig::from_toml(config.to_toml()), config);

  // ... and the online-recovery keys (watchdog, ladder, policy).
  config.drain_timeout_ms = 250;
  config.max_drain_retries = 4;
  config.degrade_threshold = 2;
  config.degrade_cooldown = 16;
  config.recovery = "shrink";
  EXPECT_EQ(Bit1IoConfig::from_toml(config.to_toml()), config);

  Bit1IoConfig original;
  original.mode = IoMode::original;
  EXPECT_EQ(Bit1IoConfig::from_toml(original.to_toml()), original);
}

TEST(IoConfig, ResilienceKeysParseAndValidate) {
  const auto config = Bit1IoConfig::from_toml(R"(
[io]
checkpoint_interval = 10
checkpoint_retain = 4

[io.fault_plan]
seed = 7
rules = [ { kind = "torn_write", path = "md.0", nth = 2 } ]
)");
  EXPECT_EQ(config.checkpoint_interval, 10);
  EXPECT_EQ(config.checkpoint_retain, 4);
  EXPECT_EQ(config.fault_plan.seed(), 7u);
  ASSERT_EQ(config.fault_plan.rules().size(), 1u);
  EXPECT_EQ(config.fault_plan.rules()[0].kind, fsim::FaultKind::torn_write);
  EXPECT_EQ(config.fault_plan.rules()[0].path, "md.0");
  EXPECT_EQ(config.fault_plan.rules()[0].nth, 2u);

  Bit1IoConfig bad;
  bad.checkpoint_interval = -1;
  EXPECT_THROW(bad.validate(), UsageError);
  bad = Bit1IoConfig{};
  bad.checkpoint_retain = 0;
  EXPECT_THROW(bad.validate(), UsageError);
  // An inconsistent fault rule is rejected through the config too.
  bad = Bit1IoConfig{};
  bad.fault_plan = fsim::FaultPlan(
      1, {{fsim::FaultKind::bit_flip, "", 0, 0.0, 1, -1, 0}});
  EXPECT_THROW(bad.validate(), UsageError);
  EXPECT_THROW(
      Bit1IoConfig::from_toml("[io]\ncheckpoint_retain = 0\n"), UsageError);
}

TEST(IoConfig, RecoveryKeysParseAndValidate) {
  const auto config = Bit1IoConfig::from_toml(R"(
[io]
drain_timeout_ms = 100
max_drain_retries = 3
degrade_threshold = 2
degrade_cooldown = 4
recovery = "shrink"
)");
  EXPECT_EQ(config.drain_timeout_ms, 100);
  EXPECT_EQ(config.max_drain_retries, 3);
  EXPECT_EQ(config.degrade_threshold, 2);
  EXPECT_EQ(config.degrade_cooldown, 4);
  EXPECT_EQ(config.recovery, "shrink");

  Bit1IoConfig bad;
  bad.drain_timeout_ms = -1;
  EXPECT_THROW(bad.validate(), UsageError);
  bad = Bit1IoConfig{};
  bad.max_drain_retries = -1;
  EXPECT_THROW(bad.validate(), UsageError);
  bad = Bit1IoConfig{};
  bad.degrade_threshold = 0;
  EXPECT_THROW(bad.validate(), UsageError);
  bad = Bit1IoConfig{};
  bad.degrade_cooldown = 0;
  EXPECT_THROW(bad.validate(), UsageError);
  bad = Bit1IoConfig{};
  bad.recovery = "retry";  // only "abort" and "shrink" are policies
  EXPECT_THROW(bad.validate(), UsageError);

  // The watchdog keys reach the engine parameters only for async configs.
  Bit1IoConfig async;
  async.async_write = true;
  async.drain_timeout_ms = 100;
  async.max_drain_retries = 3;
  const Json parsed = parse_toml(async.adios2_toml());
  const Json& params = parsed.at("adios2").at("engine").at("parameters");
  EXPECT_EQ(params.at("DrainTimeoutMs").as_int(), 100);
  EXPECT_EQ(params.at("MaxDrainRetries").as_int(), 3);
  const auto engine = bp::EngineConfig::from_json(parsed.at("adios2"));
  EXPECT_EQ(engine.drain_timeout_ms, 100);
  EXPECT_EQ(engine.max_drain_retries, 3);

  Bit1IoConfig sync;
  sync.drain_timeout_ms = 100;
  EXPECT_FALSE(parse_toml(sync.adios2_toml())
                   .at("adios2").at("engine").at("parameters")
                   .contains("DrainTimeoutMs"));
}

TEST(IoConfig, AsyncKeysReachTheEngineConfig) {
  Bit1IoConfig config;
  config.async_write = true;
  config.buffer_chunk_mb = 4;
  const Json parsed = parse_toml(config.adios2_toml());
  const Json& params = parsed.at("adios2").at("engine").at("parameters");
  EXPECT_EQ(params.at("AsyncWrite").as_string(), "On");
  EXPECT_EQ(params.at("BufferChunkSize").as_int(), 4);

  // And the miniBP engine parses them back (BP5 AsyncWrite semantics).
  const auto engine = bp::EngineConfig::from_json(parsed.at("adios2"));
  EXPECT_TRUE(engine.async_write);
  EXPECT_EQ(engine.buffer_chunk_mb, 4u);

  // Sync configs render no async keys, keeping the engine path identical.
  Bit1IoConfig sync;
  const Json sync_parsed = parse_toml(sync.adios2_toml());
  EXPECT_FALSE(sync_parsed.at("adios2").at("engine").at("parameters")
                   .contains("AsyncWrite"));
}

// --------------------------------------------------------------- adaptor ---

picmc::SimConfig small_case() {
  auto config = picmc::SimConfig::ionization_case(32, 8);
  config.last_step = 20;
  return config;
}

TEST(Adaptor, Table2FilePopulation) {
  // One node / one aggregator: exactly 6 files — dat series (data.0, md.0,
  // md.idx) + dmp series (same three).
  fsim::SharedFs fs(8);
  Bit1IoConfig io;
  io.ranks_per_node = 4;
  {
    Bit1OpenPmdAdaptor adaptor(fs, "run", io, 4);
    auto config = small_case();
    for (int rank = 0; rank < 4; ++rank) {
      picmc::Simulation sim(config, rank, 4);
      sim.initialize();
      sim.run();
      adaptor.stage_diagnostics(rank, sim,
                                picmc::Diagnostics::sample_now(sim));
      adaptor.stage_checkpoint(rank, sim);
    }
    adaptor.flush_diagnostics(20, 2.0);
    adaptor.flush_checkpoint();
    adaptor.close();
  }
  EXPECT_EQ(fs.store().list_recursive("run").size(), 6u);
}

TEST(Adaptor, DiagnosticsRoundTripThroughOpenPmd) {
  fsim::SharedFs fs(8);
  Bit1IoConfig io;
  io.ranks_per_node = 2;
  auto config = small_case();
  std::vector<double> expected_weights;
  {
    Bit1OpenPmdAdaptor adaptor(fs, "run", io, 2);
    for (int rank = 0; rank < 2; ++rank) {
      picmc::Simulation sim(config, rank, 2);
      sim.initialize();
      sim.run();
      const auto snap = picmc::Diagnostics::sample_now(sim);
      expected_weights.push_back(snap.species[0].total_weight);
      adaptor.stage_diagnostics(rank, sim, snap);
    }
    adaptor.flush_diagnostics(20, 2.0);
    adaptor.close();
  }
  pmd::Series series(fs, "run/dat_file.bp4", pmd::Access::read_only);
  auto& it = series.read_iteration(20);
  EXPECT_DOUBLE_EQ(it.time(), 2.0);
  const auto weights = it.mesh("weight_e").component().load<double>();
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights[0], expected_weights[0]);
  EXPECT_DOUBLE_EQ(weights[1], expected_weights[1]);
  // Rank-0 density profile present with the grid's node count.
  const auto density = it.mesh("density_e").component().load<double>();
  EXPECT_EQ(density.size(), 33u);  // 32 cells -> 33 nodes
}

TEST(Adaptor, MultiRankCheckpointRestartIsExact) {
  fsim::SharedFs fs(8);
  Bit1IoConfig io;
  io.ranks_per_node = 3;
  auto config = small_case();
  std::vector<std::vector<double>> positions(3);
  {
    Bit1OpenPmdAdaptor adaptor(fs, "run", io, 3);
    for (int rank = 0; rank < 3; ++rank) {
      picmc::Simulation sim(config, rank, 3);
      sim.initialize();
      sim.run();
      positions[std::size_t(rank)] = sim.species(0).particles.x();
      adaptor.stage_checkpoint(rank, sim);
    }
    adaptor.flush_checkpoint();
    adaptor.close();
  }
  for (int rank = 0; rank < 3; ++rank) {
    picmc::Simulation restored(config, rank, 3);
    Bit1OpenPmdAdaptor::restore(fs, "run", io, restored);
    EXPECT_EQ(restored.current_step(), 20u);
    EXPECT_EQ(restored.species(0).particles.x(), positions[std::size_t(rank)])
        << "rank " << rank;
  }
}

TEST(Adaptor, CheckpointSlotIsRewritten) {
  fsim::SharedFs fs(8);
  Bit1IoConfig io;
  io.ranks_per_node = 1;
  auto config = small_case();
  picmc::Simulation sim(config);
  sim.initialize();
  Bit1OpenPmdAdaptor adaptor(fs, "run", io, 1);
  // Checkpoint twice at different steps; restore must see the second.
  while (sim.current_step() < 10) sim.step();
  adaptor.stage_checkpoint(0, sim);
  adaptor.flush_checkpoint();
  while (sim.current_step() < 20) sim.step();
  adaptor.stage_checkpoint(0, sim);
  adaptor.flush_checkpoint();
  adaptor.close();

  picmc::Simulation restored(config);
  Bit1OpenPmdAdaptor::restore(fs, "run", io, restored);
  EXPECT_EQ(restored.current_step(), 20u);
}

TEST(Adaptor, AppliesStripingToRunDirectory) {
  fsim::SharedFs fs(48);
  Bit1IoConfig io;
  io.ranks_per_node = 1;
  io.use_striping = true;
  io.striping = {8, 16 * MiB};
  Bit1OpenPmdAdaptor adaptor(fs, "striped", io, 1);
  const auto layout = fs.store().file("striped/dat_file.bp4/data.0").layout;
  EXPECT_EQ(layout.settings.stripe_count, 8);
  EXPECT_EQ(layout.settings.stripe_size, 16 * MiB);
  adaptor.close();
}

TEST(Adaptor, UsageErrors) {
  fsim::SharedFs fs(4);
  Bit1IoConfig io;
  EXPECT_THROW(Bit1OpenPmdAdaptor(fs, "x", io, 0), UsageError);
  Bit1IoConfig original;
  original.mode = IoMode::original;
  EXPECT_THROW(Bit1OpenPmdAdaptor(fs, "x", original, 1), UsageError);

  Bit1OpenPmdAdaptor adaptor(fs, "y", io, 2);
  EXPECT_THROW(adaptor.flush_diagnostics(0, 0.0), UsageError);  // nothing staged
  EXPECT_THROW(adaptor.flush_checkpoint(), UsageError);
  auto config = small_case();
  picmc::Simulation sim(config);
  sim.initialize();
  EXPECT_THROW(
      adaptor.stage_diagnostics(5, sim, picmc::Diagnostics::sample_now(sim)),
      UsageError);
}

// -------------------------------------------------------------- workload ---

TEST(Workload, VolumeModelIsExactAcrossRanks) {
  const auto spec = ScaleSpec::throughput(2);
  std::uint64_t ckpt_total = 0;
  for (int r = 0; r < spec.ranks(); ++r)
    ckpt_total += spec.ckpt_bytes_for_rank(r);
  EXPECT_EQ(ckpt_total, spec.checkpoint_bytes);
  // Rank 0 writes more diagnostics than anyone else.
  EXPECT_GT(spec.diag_bytes_for_rank(0), spec.diag_bytes_for_rank(1));
  EXPECT_EQ(spec.diag_bytes_for_rank(1), spec.diag_bytes_for_rank(100));
}

TEST(Workload, OriginalEpochFilePopulation) {
  // 2 files per rank + 6 globals (Table II's 256N + 6 at production scale).
  const auto spec = ScaleSpec::table2(1);
  const auto result =
      run_original_epoch(fsim::dardel(), spec, /*timing=*/false);
  EXPECT_EQ(result.total_files, 2u * 128 + 5);  // +5: 4 histories + bit1.dmp
  EXPECT_EQ(result.write_gibps, 0.0);           // census only
}

TEST(Workload, OpenPmdEpochFilePopulation) {
  const auto spec = ScaleSpec::table2(1);
  Bit1IoConfig config;
  config.num_aggregators = 1;
  const auto result =
      run_openpmd_epoch(fsim::dardel(), spec, config, /*timing=*/false);
  EXPECT_EQ(result.total_files, 6u);
  Bit1IoConfig node_agg;  // default: per-node aggregation
  const auto spec4 = ScaleSpec::table2(4);
  const auto result4 =
      run_openpmd_epoch(fsim::dardel(), spec4, node_agg, /*timing=*/false);
  EXPECT_EQ(result4.total_files, 4u + 5u);
}

TEST(Workload, BloscShrinksFilesBzip2DoesNot) {
  const auto spec = ScaleSpec::table2(1);
  Bit1IoConfig plain, blosc, bzip2;
  plain.num_aggregators = blosc.num_aggregators = bzip2.num_aggregators = 1;
  blosc.codec = "blosc";
  bzip2.codec = "bzip2";
  const auto p = run_openpmd_epoch(fsim::dardel(), spec, plain, false);
  const auto b = run_openpmd_epoch(fsim::dardel(), spec, blosc, false);
  const auto z = run_openpmd_epoch(fsim::dardel(), spec, bzip2, false);
  // Table II: Blosc ~11% smaller at one node; bzip2 ~unchanged.
  EXPECT_NEAR(double(b.avg_file_bytes) / double(p.avg_file_bytes), 0.89,
              0.03);
  EXPECT_NEAR(double(z.avg_file_bytes) / double(p.avg_file_bytes), 1.0,
              0.01);
}

TEST(Workload, OpenPmdBeatsOriginalAtScale) {
  // The paper's headline: at 200 nodes the openPMD path is an order of
  // magnitude faster than original I/O.
  const auto profile = fsim::dardel();
  const auto spec = ScaleSpec::throughput(20);  // cheaper than 200 in a test
  const auto original = run_original_epoch(profile, spec);
  Bit1IoConfig config;
  const auto openpmd = run_openpmd_epoch(profile, spec, config);
  EXPECT_GT(openpmd.write_gibps, 5.0 * original.write_gibps);
  EXPECT_LT(openpmd.mean_meta_s, original.mean_meta_s / 10.0);
}

TEST(Workload, AggregatorSweepShape) {
  // Fig 6's shape: 1 aggregator is slow and a moderate count is much
  // faster (tested at small scale); the collapse under extreme aggregation
  // needs tiny per-subfile chunks plus a create storm, so it is checked at
  // 100 nodes where those regimes exist.
  const auto profile = fsim::dardel();
  {
    const auto spec = ScaleSpec::throughput(10);
    Bit1IoConfig one, twenty;
    one.num_aggregators = 1;
    twenty.num_aggregators = 20;
    EXPECT_GT(run_openpmd_epoch(profile, spec, twenty).write_gibps,
              2.0 * run_openpmd_epoch(profile, spec, one).write_gibps);
  }
  {
    const auto spec = ScaleSpec::throughput(100);
    Bit1IoConfig peak, extreme;
    peak.num_aggregators = 200;             // ~2 per node
    extreme.num_aggregators = spec.ranks(); // one subfile per rank
    const double at_peak = run_openpmd_epoch(profile, spec, peak).write_gibps;
    const double at_extreme =
        run_openpmd_epoch(profile, spec, extreme).write_gibps;
    EXPECT_GT(at_peak, at_extreme);
    EXPECT_GT(at_extreme, 0.0);
  }
}

TEST(Workload, StripingChangesLayout) {
  const auto spec = ScaleSpec::table2(1);
  Bit1IoConfig config;
  config.num_aggregators = 1;
  config.use_striping = true;
  config.striping = {8, 4 * MiB};
  const auto result =
      run_openpmd_epoch(fsim::dardel(), spec, config, /*timing=*/false);
  EXPECT_EQ(result.total_files, 6u);  // striping does not change counts
}

// ---------------------------------------------------------------- tuning ---

TEST(Tuning, FindsAggregationOverSharedFile) {
  const auto profile = fsim::dardel();
  const auto spec = ScaleSpec::throughput(4);
  Bit1IoConfig base;
  TuningSpace space;
  space.aggregators = {1, 8};
  space.stripe_counts = {1};
  space.stripe_sizes = {1 * MiB};
  space.codecs = {"none"};
  const auto report = tune_io(profile, spec, base, space);
  EXPECT_EQ(report.explored.size(), 2u);
  EXPECT_EQ(report.best.config.num_aggregators, 8);
  EXPECT_GE(report.explored[0].result.write_gibps,
            report.explored[1].result.write_gibps);
}

TEST(Tuning, RejectsEmptySpace) {
  const auto profile = fsim::dardel();
  const auto spec = ScaleSpec::throughput(1);
  Bit1IoConfig base;
  TuningSpace space;
  space.aggregators = {-1};  // filtered out -> empty
  space.stripe_counts = {1};
  space.stripe_sizes = {MiB};
  space.codecs = {"none"};
  EXPECT_THROW(tune_io(profile, spec, base, space), UsageError);
}

// ------------------------------------------------------- diagnostics sink ---

TEST(DiagnosticsSink, FactorySelectsByModeAndValidates) {
  fsim::SharedFs fs(8);
  Bit1IoConfig io;
  io.ranks_per_node = 1;
  EXPECT_EQ(make_diagnostics_sink(fs, "p", io, 1)->sink_name(), "openpmd");
  io.mode = IoMode::original;
  EXPECT_EQ(make_diagnostics_sink(fs, "o", io, 1)->sink_name(), "original");
  io.num_aggregators = -1;
  EXPECT_THROW(make_diagnostics_sink(fs, "x", io, 1), UsageError);
}

TEST(DiagnosticsSink, SerialSinkWritesOriginalLayout) {
  fsim::SharedFs fs(8);
  const auto config = small_case();
  picmc::Simulation sim(config);
  sim.initialize();
  while (sim.current_step() < 10) sim.step();

  Bit1IoConfig io;
  io.mode = IoMode::original;
  io.ranks_per_node = 1;
  auto sink = make_diagnostics_sink(fs, "orig", io, 1);
  sink->stage_diagnostics(0, sim, picmc::Diagnostics::sample_now(sim));
  sink->flush_diagnostics(sim.current_step(), 1.0);
  sink->stage_checkpoint(0, sim);
  sink->flush_checkpoint();
  sink->synchronize();  // no-op for the serial path
  sink->close();

  for (const char* path : {"orig/slow_0.dat", "orig/slow1_0.dat",
                           "orig/history.dat", "orig/energy.dat",
                           "orig/bit1.dmp"})
    EXPECT_TRUE(fs.store().file_exists(path)) << path;

  // Double flush without staging is a usage error.
  auto again = make_diagnostics_sink(fs, "orig2", io, 1);
  EXPECT_THROW(again->flush_diagnostics(0, 0.0), UsageError);
  EXPECT_THROW(again->flush_checkpoint(), UsageError);

  // The serial dmp restores the staged state exactly.
  picmc::Simulation restored(config);
  picmc::Bit1SerialWriter reader(fs, "orig", 0, 1);
  picmc::load_checkpoint(restored, reader.read_checkpoint()[0]);
  EXPECT_EQ(restored.local_particles(), sim.local_particles());
}

TEST(DiagnosticsSink, AsyncOpenPmdSinkSynchronizesForReadAfterWrite) {
  // async_write through the whole seam: sink -> series -> staged engine.
  fsim::SharedFs fs(8);
  const auto config = small_case();
  picmc::Simulation sim(config);
  sim.initialize();
  while (sim.current_step() < 10) sim.step();

  Bit1IoConfig io;
  io.engine = "bp5";
  io.async_write = true;
  io.buffer_chunk_mb = 1;
  io.ranks_per_node = 1;
  auto sink = make_diagnostics_sink(fs, "pmd", io, 1);
  sink->stage_diagnostics(0, sim, picmc::Diagnostics::sample_now(sim));
  sink->flush_diagnostics(10, 1.0);
  sink->stage_checkpoint(0, sim);
  sink->flush_checkpoint();
  // flush_* returned at submit; synchronize joins the drains, so the data
  // subfiles are populated while both series are still open.
  sink->synchronize();
  EXPECT_GT(fs.store().file("pmd/dat_file.bp5/data.0").size, 0u);
  EXPECT_GT(fs.store().file("pmd/dmp_file.bp5/data.0").size, 0u);
  sink->close();

  picmc::Simulation restored(config, 0, 1);
  Bit1OpenPmdAdaptor::restore(fs, "pmd", io, restored);
  EXPECT_EQ(restored.local_particles(), sim.local_particles());
  EXPECT_EQ(restored.current_step(), 10u);
}

TEST(Workload, AsyncEpochKeepsLayoutAndMovesTimeToDrain) {
  const auto profile = fsim::dardel();
  const auto spec = ScaleSpec::throughput(1);
  Bit1IoConfig sync_io;
  sync_io.num_aggregators = 2;
  Bit1IoConfig async_io = sync_io;
  async_io.async_write = true;

  const auto sync_result = run_openpmd_epoch(profile, spec, sync_io);
  const auto async_result = run_openpmd_epoch(profile, spec, async_io);

  // Same container layout and byte volume either way.
  EXPECT_EQ(async_result.total_files, sync_result.total_files);
  EXPECT_EQ(async_result.bytes_written, sync_result.bytes_written);

  // Sync attributes subfile time to the write path; async moves it to the
  // overlapped drain lane.
  EXPECT_DOUBLE_EQ(sync_result.mean_drain_s, 0.0);
  EXPECT_GT(async_result.mean_drain_s, 0.0);
  EXPECT_LT(async_result.mean_write_s, sync_result.mean_write_s);
}

}  // namespace
}  // namespace bitio::core
