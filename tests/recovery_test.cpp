// Tests for the online failure-recovery stack: the full detect -> agree ->
// shrink -> restore -> resume sequence (resil::run_resilient_spmd), the
// shrink-aware checkpoint re-partitioning, the bp drain-lane watchdog
// (wedged lanes are detected, retried, or abandoned with a typed error so
// close() can never hang), and the graceful I/O degradation ladder
// (core::DegradingSink) under ENOSPC pressure.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <numeric>

#include "bp/engine.hpp"
#include "bp/reader.hpp"
#include "bp/writer.hpp"
#include "core/checkpoint_payload.hpp"
#include "core/degrade.hpp"
#include "darshan/darshan.hpp"
#include "fsim/fault_plan.hpp"
#include "fsim/posix_fs.hpp"
#include "fsim/storage_model.hpp"
#include "fsim/system_profiles.hpp"
#include "openpmd/series.hpp"
#include "picmc/diagnostics.hpp"
#include "picmc/simulation.hpp"
#include "resil/recovery.hpp"
#include "smpi/comm.hpp"
#include "util/error.hpp"

namespace bitio::resil {
namespace {

using fsim::FaultKind;
using fsim::FaultPlan;
using fsim::FaultRule;
using fsim::FsClient;
using fsim::SharedFs;
using picmc::SimConfig;
using picmc::Simulation;

SimConfig recovery_case(std::uint64_t last_step) {
  auto config = SimConfig::ionization_case(64, 16);
  config.last_step = last_step;
  config.datfile = 10;
  config.dmpstep = 0;  // checkpoints go through the manager, not the sink
  return config;
}

ResilientRunConfig shrink_config(std::uint64_t last_step, int nranks,
                                 int crash_rank, std::uint64_t crash_step,
                                 int interval) {
  ResilientRunConfig cfg;
  cfg.sim = recovery_case(last_step);
  cfg.io.checkpoint_interval = interval;
  cfg.io.checkpoint_retain = 3;
  cfg.io.recovery = "shrink";
  cfg.io.fault_plan = FaultPlan(
      11, {{FaultKind::rank_crash, "", 0, 0.0, 1, crash_rank, crash_step}});
  cfg.run_dir = "run";
  cfg.nranks = nranks;
  return cfg;
}

/// Committed epoch numbers found on storage (MANIFEST present), ascending.
std::vector<std::uint64_t> epochs_on_disk(SharedFs& fs,
                                          const std::string& run) {
  std::vector<std::uint64_t> epochs;
  for (std::uint64_t e = 1; e <= 64; ++e)
    if (fs.store().file_exists(run + "/resil/epoch_" + std::to_string(e) +
                               "/MANIFEST"))
      epochs.push_back(e);
  return epochs;
}

// ------------------------------------------------- shrink/restart (E2E) ---

TEST(OnlineRecovery, EightRankCrashShrinksRestoresAndCompletes) {
  SharedFs fs(8);
  const auto cfg = shrink_config(/*last_step=*/40, /*nranks=*/8,
                                 /*crash_rank=*/3, /*crash_step=*/30,
                                 /*interval=*/5);
  const auto report = run_resilient_spmd(fs, cfg);

  // Detect -> agree -> shrink: one recovery, 8 -> 7 survivors, rank 3 dead.
  EXPECT_EQ(report.recoveries, 1);
  EXPECT_EQ(report.final_size, 7);
  EXPECT_EQ(report.crashed_ranks, (std::vector<int>{3}));

  // Restore: the crash at step 30 fires before that step's checkpoint, so
  // the newest verifying epoch is the one committed at step 25.
  EXPECT_FALSE(report.restarted_from_scratch);
  EXPECT_GT(report.last_restored_epoch, 0u);
  EXPECT_EQ(report.restored_step, 25u);

  // Resume: the shrunken run finished the remaining steps.
  EXPECT_EQ(report.final_step, 40u);
  EXPECT_EQ(report.stats.recoveries, 1u);
  EXPECT_GT(report.stats.epochs_written, 0u);
  EXPECT_GT(report.t_recovery_s, 0.0);

  // Every surviving checkpoint epoch passes a full per-chunk CRC scrub.
  const auto epochs = epochs_on_disk(fs, "run");
  ASSERT_FALSE(epochs.empty());
  for (const std::uint64_t e : epochs) {
    bp::Reader reader = bp::Reader::open(fs, 0,
                      "run/resil/epoch_" + std::to_string(e) + "/dmp_file.bp4");
    const auto verdicts = reader.verify();
    EXPECT_FALSE(verdicts.empty());
    EXPECT_TRUE(bp::Reader::all_ok(verdicts)) << "epoch " << e;
  }

  // So does the post-recovery generation's diagnostics series.
  bp::Reader diag = bp::Reader::open(fs, 0, "run/gen_1/dat_file.bp4");
  EXPECT_TRUE(bp::Reader::all_ok(diag.verify()));

  // resilience.json carries the recovery counters.
  const auto bytes = FsClient(fs, 0).read_all("run/resil/resilience.json");
  const Json stats = Json::parse(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  EXPECT_EQ(stats.at("recoveries").as_uint(), 1u);
  EXPECT_GT(stats.at("t_recovery_s").as_number(), 0.0);
}

TEST(OnlineRecovery, CrashingRunIsDeterministicUnderFixedSeed) {
  // The same seeded config run twice (fresh file systems) must crash,
  // shrink, restore, and finish identically — including the bytes of the
  // final checkpoint epoch.
  auto run_once = [](SharedFs& fs) {
    return run_resilient_spmd(
        fs, shrink_config(/*last_step=*/30, /*nranks=*/4, /*crash_rank=*/1,
                          /*crash_step=*/15, /*interval=*/5));
  };
  SharedFs fs_a(8), fs_b(8);
  const auto a = run_once(fs_a);
  const auto b = run_once(fs_b);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.restored_step, b.restored_step);
  EXPECT_EQ(a.final_step, b.final_step);

  const auto epochs_a = epochs_on_disk(fs_a, "run");
  const auto epochs_b = epochs_on_disk(fs_b, "run");
  ASSERT_EQ(epochs_a, epochs_b);
  ASSERT_FALSE(epochs_a.empty());
  const std::string path =
      "run/resil/epoch_" + std::to_string(epochs_a.back()) + "/dmp_file.bp4";
  bp::Reader ra = bp::Reader::open(fs_a, 0, path), rb = bp::Reader::open(fs_b, 0, path);
  const auto vars = ra.variables(0);
  ASSERT_EQ(vars, rb.variables(0));
  ASSERT_FALSE(vars.empty());
  for (const auto& var : vars)
    EXPECT_EQ(ra.read(0, var), rb.read(0, var)) << "variable " << var;
}

TEST(OnlineRecovery, AbortPolicySurfacesTheFailureInstead) {
  SharedFs fs(8);
  auto cfg = shrink_config(/*last_step=*/20, /*nranks=*/4, /*crash_rank=*/2,
                           /*crash_step=*/10, /*interval=*/5);
  cfg.io.recovery = "abort";
  EXPECT_THROW(run_resilient_spmd(fs, cfg), smpi::RankFailedError);
}

// ------------------------------------------- checkpoint re-partitioning ---

TEST(OnlineRecovery, RestoreRepartitionedPreservesThePopulation) {
  // Write a 4-rank checkpoint epoch through the real manager, then restore
  // it onto 3 survivors and check the global population is a contiguous
  // re-slicing with the Monte Carlo counters summed onto the new rank 0.
  SharedFs fs(8);
  const auto sim_config = recovery_case(/*last_step=*/8);
  core::Bit1IoConfig io;
  io.checkpoint_interval = 8;

  std::vector<std::unique_ptr<Simulation>> old_sims;
  CheckpointManager manager(fs, "run", io, 4);
  for (int r = 0; r < 4; ++r) {
    old_sims.push_back(std::make_unique<Simulation>(sim_config, r, 4));
    old_sims.back()->initialize();
    old_sims.back()->run();
    manager.stage(r, *old_sims.back());
  }
  ASSERT_EQ(manager.commit(), 1u);

  std::vector<std::unique_ptr<Simulation>> new_sims;
  for (int r = 0; r < 3; ++r) {
    new_sims.push_back(std::make_unique<Simulation>(sim_config, r, 3));
    pmd::Series series(fs, "run/resil/epoch_1/dmp_file.bp4",
                       pmd::Access::read_only);
    core::restore_repartitioned(series, *new_sims.back());
    EXPECT_EQ(new_sims.back()->current_step(), 8u);
  }

  const std::size_t n_species = old_sims[0]->species_count();
  ASSERT_EQ(new_sims[0]->species_count(), n_species);
  for (std::size_t s = 0; s < n_species; ++s) {
    // Totals and contiguous order: concatenating the survivors' positions
    // reproduces the old ranks' concatenation exactly.
    std::vector<double> old_x, new_x;
    std::uint64_t old_absorbed = 0, new_absorbed = 0;
    for (const auto& sim : old_sims) {
      const auto& sp = sim->species(s);
      for (std::size_t i = 0; i < sp.particles.size(); ++i)
        old_x.push_back(sp.particles.x()[i]);
      old_absorbed += sp.absorbed_left + sp.absorbed_right;
    }
    for (const auto& sim : new_sims) {
      const auto& sp = sim->species(s);
      for (std::size_t i = 0; i < sp.particles.size(); ++i)
        new_x.push_back(sp.particles.x()[i]);
      new_absorbed += sp.absorbed_left + sp.absorbed_right;
    }
    EXPECT_EQ(old_x, new_x) << "species " << s;
    EXPECT_EQ(old_absorbed, new_absorbed) << "species " << s;
    // Counters live on the new rank 0 only.
    EXPECT_EQ(new_sims[1]->species(s).absorbed_left, 0u);
    EXPECT_EQ(new_sims[2]->species(s).absorbed_right, 0u);

    // Near-even split: every survivor holds total/3 or total/3 + 1.
    const std::size_t total = new_x.size();
    for (const auto& sim : new_sims) {
      const std::size_t mine = sim->species(s).particles.size();
      EXPECT_GE(mine, total / 3);
      EXPECT_LE(mine, total / 3 + 1);
    }
  }

  // Monte Carlo totals: summed onto rank 0, zero elsewhere.
  std::uint64_t old_events = 0;
  for (const auto& sim : old_sims) old_events += sim->ionization_events();
  EXPECT_EQ(new_sims[0]->ionization_events(), old_events);
  EXPECT_EQ(new_sims[1]->ionization_events(), 0u);
}

// ------------------------------------------------- drain-lane watchdog ---

bp::EngineConfig watchdog_engine(int timeout_ms, int retries) {
  bp::EngineConfig config;
  config.num_aggregators = 1;
  config.async_write = true;
  config.drain_timeout_ms = timeout_ms;
  config.max_drain_retries = retries;
  return config;
}

std::vector<float> iota_floats(std::size_t n) {
  std::vector<float> v(n);
  std::iota(v.begin(), v.end(), 0.0f);
  return v;
}

TEST(DrainWatchdog, WedgedLaneIsCancelledAndRetried) {
  // One injected stall wedges the first subfile append; the watchdog
  // cancels it within drain_timeout and the retry lands the step intact.
  SharedFs fs(8);
  fs.set_fault_plan(
      FaultPlan(3, {{FaultKind::stall, "data.", 1, 0.0, 1, -1, 0}}));

  auto writer = bp::make_engine(fs, "w.bp4", watchdog_engine(50, 2), 2);
  const auto data = iota_floats(16);
  writer->begin_step(0);
  writer->put<float>(0, "x", {32}, {0}, {16}, data);
  writer->put<float>(1, "x", {32}, {16}, {16}, data);
  writer->end_step();
  writer->close();  // must neither hang nor throw

  const auto stats = writer->watchdog_stats();
  EXPECT_GE(stats.timeouts, 1u);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_EQ(stats.steps_abandoned, 0u);
  EXPECT_EQ(fs.stalled_op_count(), 0);

  bp::Reader reader = bp::Reader::open(fs, 0, "w.bp4");
  EXPECT_EQ(reader.read_as<float>(0, "x").size(), 32u);
  EXPECT_TRUE(bp::Reader::all_ok(reader.verify()));
}

TEST(DrainWatchdog, PermanentlyWedgedStepIsAbandonedAndCloseCannotHang) {
  // An unlimited stall rule re-wedges every retry: past the retry bound the
  // step must be abandoned with a typed error.  close() runs under a hard
  // outer deadline to prove it cannot hang on the wedged lane.
  SharedFs fs(8);
  fs.set_fault_plan(
      FaultPlan(3, {{FaultKind::stall, "data.", 0, 1.0, 0, -1, 0}}));

  auto writer = bp::make_engine(fs, "w.bp4", watchdog_engine(50, 1), 1);
  const auto data = iota_floats(16);
  writer->begin_step(0);
  writer->put<float>(0, "x", {16}, {0}, {16}, data);
  writer->end_step();

  auto closing = std::async(std::launch::async, [&] { writer->close(); });
  ASSERT_EQ(closing.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "close() hung on a wedged drain lane";
  EXPECT_THROW(closing.get(), TimeoutError);
  EXPECT_EQ(writer->watchdog_stats().steps_abandoned, 1u);
  EXPECT_EQ(fs.stalled_op_count(), 0);
}

// ------------------------------------------------- degradation ladder ---

core::Bit1IoConfig ladder_config(bool async, int threshold, int cooldown) {
  core::Bit1IoConfig io;
  io.mode = core::IoMode::openpmd;
  io.async_write = async;
  io.num_aggregators = 1;
  io.degrade_threshold = threshold;
  io.degrade_cooldown = cooldown;
  if (async) {
    io.drain_timeout_ms = 50;
    io.max_drain_retries = 1;
  }
  return io;
}

TEST(DegradationLadder, EnospcPressureStepsDownToSerialAndRunCompletes) {
  // Every append to a bp data subfile fails with ENOSPC; the openPMD levels
  // (async, then sync) keep failing, the ladder steps down to the serial
  // stdio path (whose files never match the rule), and the run finishes
  // with readable output instead of dying.
  SharedFs fs(8);
  fs.set_fault_plan(
      FaultPlan(5, {{FaultKind::enospc, "data.", 0, 1.0, 0, -1, 0}}));

  auto sink = core::make_degrading_sink(
      fs, "run", ladder_config(/*async=*/true, /*threshold=*/2,
                               /*cooldown=*/100),
      1);
  EXPECT_EQ(sink->level(), core::IoServiceLevel::async);

  Simulation sim(recovery_case(/*last_step=*/2));
  sim.initialize();
  sim.run();
  for (std::uint64_t step = 1; step <= 10; ++step) {
    sink->stage_diagnostics(0, sim, picmc::Diagnostics::sample_now(sim));
    sink->flush_diagnostics(step, double(step));
    sink->synchronize();  // surfaces async drain failures deterministically
  }
  EXPECT_NO_THROW(sink->close());

  EXPECT_EQ(sink->level(), core::IoServiceLevel::serial);
  const auto stats = sink->stats();
  EXPECT_EQ(stats.degradations, 2);  // async -> sync -> serial
  EXPECT_EQ(stats.rebuilds, 2);
  EXPECT_GE(stats.failures_absorbed, 4);
  EXPECT_EQ(stats.recoveries, 0);

  // The serial floor produced readable per-rank output.
  EXPECT_EQ(sink->current_dir(), "run/ladder_2_serial");
  EXPECT_TRUE(fs.store().file_exists("run/ladder_2_serial/slow_0.dat"));
  EXPECT_GT(fs.store().file("run/ladder_2_serial/slow_0.dat").size, 0u);
}

TEST(DegradationLadder, StepsBackUpAfterCooldown) {
  // A single transient EIO degrades the sink (threshold 1); once the fault
  // is exhausted, `degrade_cooldown` clean calls step it back up to its
  // initial level.
  SharedFs fs(8);
  fs.set_fault_plan(
      FaultPlan(5, {{FaultKind::eio, "data.", 1, 0.0, 1, -1, 0}}));

  auto sink = core::make_degrading_sink(
      fs, "run", ladder_config(/*async=*/false, /*threshold=*/1,
                               /*cooldown=*/2),
      1);
  EXPECT_EQ(sink->level(), core::IoServiceLevel::sync);

  Simulation sim(recovery_case(/*last_step=*/2));
  sim.initialize();
  sim.run();
  for (std::uint64_t step = 1; step <= 4; ++step) {
    sink->stage_diagnostics(0, sim, picmc::Diagnostics::sample_now(sim));
    sink->flush_diagnostics(step, double(step));
  }
  sink->close();

  const auto stats = sink->stats();
  EXPECT_EQ(stats.degradations, 1);
  EXPECT_EQ(stats.recoveries, 1);
  EXPECT_EQ(sink->level(), core::IoServiceLevel::sync);
}

// ------------------------------------------------------ darshan counters ---

TEST(OnlineRecovery, DarshanCapturesRecoveryCounters) {
  SharedFs fs(8);
  const auto report = run_resilient_spmd(
      fs, shrink_config(/*last_step=*/20, /*nranks=*/4, /*crash_rank=*/2,
                        /*crash_step=*/12, /*interval=*/4));
  ASSERT_EQ(report.recoveries, 1);

  auto profile = fsim::dardel();
  profile.ranks_per_node = 4;
  const auto replay = fsim::replay_trace(profile, fs.store(), fs.trace(), 4);
  const auto log = darshan::capture(fs, replay, {"bit1", 4, 0.0, "/lustre"});
  EXPECT_EQ(log.job.recoveries, 1u);
  EXPECT_GT(log.job.t_recovery_s, 0.0);
  EXPECT_DOUBLE_EQ(log.job.t_recovery_s, report.t_recovery_s);

  // The counters survive the log round trip and show in the text report.
  const auto back = darshan::DarshanLog::parse(log.serialize());
  EXPECT_EQ(back.job.recoveries, 1u);
  EXPECT_DOUBLE_EQ(back.job.t_recovery_s, log.job.t_recovery_s);
  EXPECT_NE(back.text_report().find("recoveries: 1"), std::string::npos);
}

}  // namespace
}  // namespace bitio::resil
