// Tests for the PIC MC substrate: field operations against analytic
// solutions, mover kinematics, MC ionization vs. the paper's rate ODE,
// diagnostics semantics, checkpoint round trip, and the original serial
// I/O's file population.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "picmc/checkpoint.hpp"
#include "picmc/diagnostics.hpp"
#include "picmc/fields.hpp"
#include "picmc/serial_io.hpp"
#include "picmc/simulation.hpp"
#include "util/error.hpp"

namespace bitio::picmc {
namespace {

// ---------------------------------------------------------------- fields ---

TEST(Fields, UniformPlasmaDepositsUniformDensity) {
  Grid1D grid(0.0, 10.0, 50);
  ParticleBuffer particles;
  Rng rng(1);
  const std::size_t n = 200000;
  const double weight = 3.0 * grid.length() / double(n);  // density 3.0
  for (std::size_t i = 0; i < n; ++i)
    particles.push_back(grid.x0() + rng.uniform() * grid.length(), 0, 0, 0,
                        weight);
  std::vector<double> density(grid.nnodes());
  deposit_density(grid, particles, density);
  for (std::size_t i = 0; i < density.size(); ++i)
    EXPECT_NEAR(density[i], 3.0, 0.15) << "node " << i;
}

TEST(Fields, DepositConservesWeight) {
  Grid1D grid(0.0, 4.0, 16);
  ParticleBuffer particles;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i)
    particles.push_back(grid.x0() + rng.uniform() * grid.length(), 0, 0, 0,
                        rng.uniform(0.5, 2.0));
  std::vector<double> density(grid.nnodes());
  deposit_density(grid, particles, density);
  // Trapezoid integral of node density (half weights at walls are exact
  // because deposit doubles the boundary nodes).
  double integral = 0.0;
  for (std::size_t i = 0; i < density.size(); ++i) {
    const double w = (i == 0 || i + 1 == density.size()) ? 0.5 : 1.0;
    integral += w * density[i] * grid.dx();
  }
  EXPECT_NEAR(integral, particles.total_weight(), 1e-9);
}

TEST(Fields, SmootherPreservesSumAndDamps) {
  std::vector<double> field(64, 0.0);
  field[32] = 100.0;  // spike = highest-frequency content
  const double sum_before =
      std::accumulate(field.begin(), field.end(), 0.0);
  smooth_binomial(field, 3);
  const double sum_after = std::accumulate(field.begin(), field.end(), 0.0);
  EXPECT_NEAR(sum_after, sum_before, 1e-9);
  EXPECT_LT(field[32], 40.0);        // spike damped
  EXPECT_GT(field[31], 0.0);         // spread to neighbours
}

TEST(Fields, PoissonMatchesQuadraticSolution) {
  // rho = const => phi = rho/(2 eps0) x (L - x), the textbook parabola.
  Grid1D grid(0.0, 1.0, 128);
  std::vector<double> rho(grid.nnodes(), 2.0);
  std::vector<double> phi(grid.nnodes());
  solve_poisson(grid, rho, phi);
  for (std::size_t i = 0; i < grid.nnodes(); ++i) {
    const double x = grid.node_position(i);
    EXPECT_NEAR(phi[i], x * (1.0 - x), 1e-9) << "node " << i;
  }
}

TEST(Fields, PoissonMatchesSineEigenfunction) {
  // For rho = sin(k x), the second-difference operator has eigenvalue
  // (2 - 2cos(k dx))/dx^2, so the discrete solution is exactly
  // sin(k x) / lambda at the nodes.
  Grid1D grid(0.0, 1.0, 64);
  const double k = 3.0 * M_PI;  // integer half-waves: sin vanishes at walls
  std::vector<double> rho(grid.nnodes()), phi(grid.nnodes());
  for (std::size_t i = 0; i < grid.nnodes(); ++i)
    rho[i] = std::sin(k * grid.node_position(i));
  solve_poisson(grid, rho, phi);
  const double lambda =
      (2.0 - 2.0 * std::cos(k * grid.dx())) / (grid.dx() * grid.dx());
  for (std::size_t i = 0; i < grid.nnodes(); ++i)
    EXPECT_NEAR(phi[i], rho[i] / lambda, 1e-9);
}

TEST(Fields, ElectricFieldOfLinearPotential) {
  Grid1D grid(0.0, 2.0, 10);
  std::vector<double> phi(grid.nnodes()), e(grid.nnodes());
  for (std::size_t i = 0; i < grid.nnodes(); ++i)
    phi[i] = 5.0 * grid.node_position(i);
  electric_field(grid, phi, e);
  for (double v : e) EXPECT_NEAR(v, -5.0, 1e-12);
}

TEST(Fields, GatherInterpolatesLinearly) {
  Grid1D grid(0.0, 1.0, 4);
  std::vector<double> f{0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(gather(grid, f, 0.125), 0.5, 1e-12);
  EXPECT_NEAR(gather(grid, f, 0.25), 1.0, 1e-12);
  EXPECT_NEAR(gather(grid, f, 1.0), 4.0, 1e-12);  // right edge clamps
}

// ----------------------------------------------------------------- mover ---

TEST(Mover, ConstantFieldKinematics) {
  // Leapfrog in a uniform field: after n steps, v = v0 + n qE/m dt.
  Grid1D grid(0.0, 1000.0, 10);
  std::vector<double> efield(grid.nnodes(), 2.0);
  ParticleBuffer p;
  p.push_back(500.0, 0.0, 0.0, 0.0, 1.0);
  PushParams params;
  params.charge = -1.0;
  params.mass = 1.0;
  params.dt = 0.01;
  params.walls = WallMode::absorb;
  for (int n = 0; n < 100; ++n) push_species(grid, efield, p, params);
  EXPECT_NEAR(p.vx()[0], -2.0, 1e-9);  // qE/m t = -2 * 1.0
}

TEST(Mover, AbsorbingWallsCountFlux) {
  Grid1D grid(0.0, 1.0, 4);
  std::vector<double> efield(grid.nnodes(), 0.0);
  ParticleBuffer p;
  p.push_back(0.1, -1.0, 0, 0, 2.0);  // exits left
  p.push_back(0.9, +1.0, 0, 0, 3.0);  // exits right
  p.push_back(0.5, 0.01, 0, 0, 1.0);  // stays
  PushParams params;
  params.charge = 0.0;
  params.dt = 0.5;
  params.walls = WallMode::absorb;
  const PushResult result = push_species(grid, efield, p, params);
  EXPECT_EQ(result.absorbed_left, 1u);
  EXPECT_EQ(result.absorbed_right, 1u);
  EXPECT_DOUBLE_EQ(result.absorbed_weight_left, 2.0);
  EXPECT_DOUBLE_EQ(result.absorbed_weight_right, 3.0);
  EXPECT_EQ(p.size(), 1u);
}

TEST(Mover, ReflectingWallsConserveParticlesAndSpeed) {
  Grid1D grid(0.0, 1.0, 4);
  std::vector<double> efield(grid.nnodes(), 0.0);
  ParticleBuffer p;
  p.push_back(0.05, -1.0, 0, 0, 1.0);
  PushParams params;
  params.charge = 0.0;
  params.dt = 0.2;
  params.walls = WallMode::reflect;
  push_species(grid, efield, p, params);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_NEAR(p.x()[0], 0.15, 1e-12);  // reflected off x=0
  EXPECT_DOUBLE_EQ(p.vx()[0], 1.0);
}

TEST(Mover, PeriodicWrapsPosition) {
  Grid1D grid(0.0, 1.0, 4);
  std::vector<double> efield(grid.nnodes(), 0.0);
  ParticleBuffer p;
  p.push_back(0.9, 1.0, 0, 0, 1.0);
  PushParams params;
  params.charge = 0.0;
  params.dt = 0.3;
  params.walls = WallMode::periodic;
  push_species(grid, efield, p, params);
  EXPECT_NEAR(p.x()[0], 0.2, 1e-12);
}

TEST(Mover, BorisRotationPreservesSpeed) {
  Grid1D grid(0.0, 10.0, 4);
  std::vector<double> efield(grid.nnodes(), 0.0);
  ParticleBuffer p;
  p.push_back(5.0, 1.0, 0.5, 0.25, 1.0);
  PushParams params;
  params.charge = -1.0;
  params.mass = 1.0;
  params.dt = 0.05;
  params.bz = 2.0;
  params.walls = WallMode::periodic;
  const double speed2_before = 1.0 + 0.25 + 0.0625;
  for (int i = 0; i < 200; ++i) push_species(grid, efield, p, params);
  const double speed2 = p.vx()[0] * p.vx()[0] + p.vy()[0] * p.vy()[0] +
                        p.vz()[0] * p.vz()[0];
  EXPECT_NEAR(speed2, speed2_before, 1e-9);  // Boris is norm-preserving
}

// -------------------------------------------------------------------- mc ---

TEST(Mc, IonizationFollowsRateEquation) {
  // dn/dt = -n n_e R with uniform n_e: neutral weight decays exponentially.
  Grid1D grid(0.0, 32.0, 32);
  std::vector<double> n_e(grid.nnodes(), 4.0);
  ParticleBuffer neutrals, ions, electrons;
  Rng rng(3);
  const std::size_t n0 = 100000;
  for (std::size_t i = 0; i < n0; ++i)
    neutrals.push_back(rng.uniform() * 32.0, 0, 0, 0, 1.0);

  IonizationParams params;
  params.rate_coefficient = 5e-3;
  params.dt = 1.0;
  const int steps = 50;
  for (int s = 0; s < steps; ++s)
    ionize(grid, n_e, neutrals, ions, electrons, params, rng);

  const double expected =
      double(n0) *
      std::exp(-4.0 * params.rate_coefficient * params.dt * steps);
  EXPECT_NEAR(double(neutrals.size()), expected, 0.02 * double(n0));
  // Bookkeeping: every ionization makes exactly one ion and one electron.
  EXPECT_EQ(ions.size(), n0 - neutrals.size());
  EXPECT_EQ(electrons.size(), n0 - neutrals.size());
}

TEST(Mc, ElasticScatteringPreservesSpeedAndCount) {
  Grid1D grid(0.0, 8.0, 8);
  std::vector<double> n_n(grid.nnodes(), 100.0);
  ParticleBuffer electrons;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i)
    electrons.push_back(rng.uniform() * 8.0, 3.0, 4.0, 0.0, 1.0);  // |v|=5
  ElasticParams params{1.0, 1.0};  // probability ~ 1
  const std::uint64_t events =
      elastic_scatter(grid, n_n, electrons, params, rng);
  EXPECT_GT(events, 900u);
  EXPECT_EQ(electrons.size(), 1000u);
  for (std::size_t i = 0; i < electrons.size(); ++i) {
    const double v2 = electrons.vx()[i] * electrons.vx()[i] +
                      electrons.vy()[i] * electrons.vy()[i] +
                      electrons.vz()[i] * electrons.vz()[i];
    EXPECT_NEAR(v2, 25.0, 1e-9);
  }
}

// ------------------------------------------------------------- simulation ---

TEST(Simulation, IonizationCaseRunsAndDecaysNeutrals) {
  auto config = SimConfig::ionization_case(64, 64);
  config.last_step = 200;
  config.ionization_rate = 5e-2;  // fast decay at test scale
  Simulation sim(config);
  sim.initialize();
  const double neutrals0 =
      sim.species_named("D").particles.total_weight();
  const double electrons0 =
      sim.species_named("e").particles.total_weight();
  sim.run();
  EXPECT_EQ(sim.current_step(), 200u);
  const double neutrals1 = sim.species_named("D").particles.total_weight();
  // Neutral depletion happened and is mirrored by new electrons + ions.
  EXPECT_LT(neutrals1, neutrals0 * 0.9);
  EXPECT_NEAR(sim.species_named("e").particles.total_weight(),
              electrons0 + (neutrals0 - neutrals1), 1e-6);
  EXPECT_NEAR(sim.ionized_weight(), neutrals0 - neutrals1, 1e-6);
  // Exponential-decay sanity: match dn/dt = -n n_e R within MC noise.
  const double n_e = 1.0;  // initial electron density in the case config
  const double expected = neutrals0 *
      std::exp(-n_e * config.ionization_rate * config.dt * 200.0);
  EXPECT_NEAR(neutrals1, expected, 0.15 * neutrals0);
}

TEST(Simulation, FieldSolverKeepsQuasiNeutralPlasmaStable) {
  auto config = SimConfig::ionization_case(32, 64);
  config.use_field_solver = true;
  config.smoothing_passes = 2;
  config.ionization_rate = 0.0;
  config.last_step = 50;
  Simulation sim(config);
  sim.initialize();
  sim.run();
  // A quasi-neutral plasma must not blow up: field energy stays small.
  double max_e = 0.0;
  for (double e : sim.efield()) max_e = std::max(max_e, std::abs(e));
  EXPECT_LT(max_e, 1.0);
  EXPECT_GT(sim.local_particles(), 0u);
}

TEST(Simulation, RankDecompositionPartitionsParticles) {
  auto config = SimConfig::ionization_case(32, 40);
  std::uint64_t total = 0;
  for (int r = 0; r < 4; ++r) {
    Simulation sim(config, r, 4);
    sim.initialize();
    total += sim.local_particles();
  }
  Simulation whole(config);
  whole.initialize();
  EXPECT_EQ(total, whole.local_particles());
}

TEST(Simulation, ValidatesConfig) {
  SimConfig config;  // no species
  EXPECT_THROW(Simulation sim(config), UsageError);
  auto good = SimConfig::ionization_case(8, 2);
  EXPECT_THROW(Simulation(good, 5, 4), UsageError);
  Simulation sim(good);
  EXPECT_THROW(sim.species_named("W"), UsageError);
}

// ------------------------------------------------------------- diagnostics ---

TEST(Diagnostics, MvflagAveragingSemantics) {
  auto config = SimConfig::ionization_case(16, 8);
  config.mvflag = 3;   // average over 3 samples
  config.mvstep = 5;   // sample every 5 steps
  config.last_step = 40;
  Simulation sim(config);
  sim.initialize();
  Diagnostics diag;
  std::vector<std::uint64_t> completed_at;
  sim.run({}, [&](Simulation& s) {
    if (diag.observe(s)) completed_at.push_back(s.current_step());
  });
  // Samples at 5,10,15 (complete), 20,25,30 (complete), 35,40 (incomplete).
  EXPECT_EQ(completed_at, (std::vector<std::uint64_t>{15, 30}));
  EXPECT_EQ(diag.snapshots_completed(), 2u);
  const auto& snap = diag.latest();
  EXPECT_EQ(snap.step, 30u);
  ASSERT_EQ(snap.species.size(), 3u);
  EXPECT_EQ(snap.species[0].density.size(), sim.grid().nnodes());
  EXPECT_GT(snap.species[0].total_weight, 0.0);
}

TEST(Diagnostics, DisabledWhenMvflagZero) {
  auto config = SimConfig::ionization_case(16, 8);
  config.mvflag = 0;
  config.last_step = 20;
  Simulation sim(config);
  sim.initialize();
  Diagnostics diag;
  sim.run({}, [&](Simulation& s) { EXPECT_FALSE(diag.observe(s)); });
  EXPECT_EQ(diag.snapshots_completed(), 0u);
}

TEST(Diagnostics, SampleNowReflectsState) {
  auto config = SimConfig::ionization_case(16, 16);
  Simulation sim(config);
  sim.initialize();
  const auto snap = Diagnostics::sample_now(sim);
  ASSERT_EQ(snap.species.size(), 3u);
  for (const auto& sp : snap.species) {
    const double vdf_total =
        std::accumulate(sp.vdf_vx.begin(), sp.vdf_vx.end(), 0.0);
    // Essentially all Maxwellian particles fall inside +-6 vth.
    EXPECT_NEAR(vdf_total, sp.total_weight, 0.01 * sp.total_weight);
  }
}

// -------------------------------------------------------------- checkpoint ---

TEST(Checkpoint, RoundTripIsBitExact) {
  auto config = SimConfig::ionization_case(32, 16);
  config.last_step = 30;
  Simulation sim(config);
  sim.initialize();
  sim.run();
  const auto blob = save_checkpoint(sim);

  Simulation restored(config);
  load_checkpoint(restored, blob);
  EXPECT_EQ(restored.current_step(), sim.current_step());
  EXPECT_EQ(restored.ionization_events(), sim.ionization_events());
  for (std::size_t s = 0; s < sim.species_count(); ++s) {
    const auto& a = sim.species(s).particles;
    const auto& b = restored.species(s).particles;
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.x(), b.x());
    EXPECT_EQ(a.vx(), b.vx());
    EXPECT_EQ(a.w(), b.w());
  }
  // RNG state restored => continued evolution is bit-identical.
  sim.step();
  restored.step();
  EXPECT_EQ(sim.species(0).particles.x(), restored.species(0).particles.x());
}

TEST(Checkpoint, CrossStepBoundaryResumeIsBitIdentical) {
  // Run N steps, checkpoint, run M more; a fresh simulation restored from
  // the checkpoint and run the same M steps must be bit-identical — the
  // restart crosses the step boundary with no drift in particles, RNG, or
  // Monte Carlo counters.
  auto config = SimConfig::ionization_case(32, 16);
  config.last_step = 60;
  Simulation sim(config);
  sim.initialize();
  while (sim.current_step() < 25) sim.step();
  const auto blob = save_checkpoint(sim);
  while (sim.current_step() < 60) sim.step();

  Simulation resumed(config);
  load_checkpoint(resumed, blob);
  EXPECT_EQ(resumed.current_step(), 25u);
  while (resumed.current_step() < 60) resumed.step();

  EXPECT_EQ(resumed.current_step(), sim.current_step());
  EXPECT_EQ(resumed.ionization_events(), sim.ionization_events());
  EXPECT_EQ(resumed.ionized_weight(), sim.ionized_weight());
  EXPECT_EQ(resumed.rng().state(), sim.rng().state());
  for (std::size_t s = 0; s < sim.species_count(); ++s) {
    const auto& a = sim.species(s).particles;
    const auto& b = resumed.species(s).particles;
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.x(), b.x());
    EXPECT_EQ(a.vx(), b.vx());
    EXPECT_EQ(a.vy(), b.vy());
    EXPECT_EQ(a.vz(), b.vz());
    EXPECT_EQ(a.w(), b.w());
    EXPECT_EQ(resumed.species(s).absorbed_left, sim.species(s).absorbed_left);
    EXPECT_EQ(resumed.species(s).absorbed_right,
              sim.species(s).absorbed_right);
  }
}

TEST(Checkpoint, DetectsCorruptionAndMismatch) {
  auto config = SimConfig::ionization_case(16, 4);
  Simulation sim(config);
  sim.initialize();
  auto blob = save_checkpoint(sim);
  auto bad = blob;
  bad[0] ^= 0xFF;
  EXPECT_THROW(load_checkpoint(sim, bad), FormatError);
  bad = blob;
  bad.resize(bad.size() / 2);
  EXPECT_THROW(load_checkpoint(sim, bad), FormatError);

  auto other_config = SimConfig::ionization_case(16, 4);
  other_config.species.pop_back();
  Simulation other(other_config);
  EXPECT_THROW(load_checkpoint(other, blob), UsageError);
}

// ---------------------------------------------------------------- serial io ---

TEST(SerialIo, FilePopulationMatchesTable2Formula) {
  // 2 .dat files per rank + 6 globals = 2N + 6 (Table II: 262 at 128x2).
  fsim::SharedFs fs(8);
  const int nranks = 4;
  auto config = SimConfig::ionization_case(16, 8);
  config.last_step = 10;

  std::vector<std::vector<std::uint8_t>> states;
  for (int r = 0; r < nranks; ++r) {
    Simulation sim(config, r, nranks);
    sim.initialize();
    sim.run();
    Bit1SerialWriter writer(fs, "run", r, nranks);
    writer.write_input_echo(config);
    const auto snap = Diagnostics::sample_now(sim);
    writer.write_diagnostics(sim, snap);
    writer.write_diagnostics(sim, snap);  // second dump appends, no new file
    if (r == 0) writer.write_history(sim, sim.local_particles(), 1.0);
    states.push_back(save_checkpoint(sim));
  }
  Bit1SerialWriter root(fs, "run", 0, nranks);
  root.write_checkpoint(states);

  EXPECT_EQ(fs.store().list_recursive("run").size(),
            std::size_t(2 * nranks + 6));
}

TEST(SerialIo, CheckpointGatherRestoresEveryRank) {
  fsim::SharedFs fs(4);
  auto config = SimConfig::ionization_case(16, 8);
  config.last_step = 5;
  std::vector<std::vector<std::uint8_t>> states;
  std::vector<std::uint64_t> counts;
  for (int r = 0; r < 3; ++r) {
    Simulation sim(config, r, 3);
    sim.initialize();
    sim.run();
    states.push_back(save_checkpoint(sim));
    counts.push_back(sim.local_particles());
  }
  Bit1SerialWriter root(fs, "run", 0, 3);
  root.write_checkpoint(states);

  const auto blobs = root.read_checkpoint();
  ASSERT_EQ(blobs.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    Simulation restored(config, r, 3);
    load_checkpoint(restored, blobs[std::size_t(r)]);
    EXPECT_EQ(restored.local_particles(), counts[std::size_t(r)]);
  }
}

TEST(SerialIo, WritesAreStdioSizedRecords) {
  fsim::SharedFs fs(4);
  auto config = SimConfig::ionization_case(64, 32);
  Simulation sim(config);
  sim.initialize();
  Bit1SerialWriter writer(fs, "run", 0, 1);
  writer.write_diagnostics(sim, Diagnostics::sample_now(sim));
  for (const auto& op : fs.trace()) {
    if (op.kind != fsim::OpKind::write) continue;
    // Every coalesced record is at most the stdio buffer size.
    EXPECT_LE(op.bytes / op.op_count, Bit1SerialWriter::kStdioRecord);
  }
}

}  // namespace
}  // namespace bitio::picmc
