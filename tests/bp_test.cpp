// Tests for the miniBP container engine: format round trips, writer/reader
// end-to-end, aggregation mapping, operators, steps, and failure detection.
#include <gtest/gtest.h>

#include <numeric>

#include "bp/reader.hpp"
#include "bp/writer.hpp"
#include "fsim/storage_model.hpp"
#include "util/binio.hpp"
#include "fsim/system_profiles.hpp"
#include "smpi/comm.hpp"
#include "util/error.hpp"
#include "util/toml.hpp"

namespace bitio::bp {
namespace {

std::vector<float> iota_floats(std::size_t n, float start = 0.f) {
  std::vector<float> v(n);
  std::iota(v.begin(), v.end(), start);
  return v;
}

// ---------------------------------------------------------------- format ---

TEST(BpFormat, StepRecordRoundTrip) {
  StepRecord record;
  record.step = 42;
  VarRecord var{"e/position/x", Datatype::float32, {1000}, {}};
  var.chunks.push_back({{0}, {600}, 0, 0, 0, 2400, 2400, ""});
  var.chunks.push_back({{600}, {400}, 1, 0, 2400, 900, 1600, "blosc"});
  record.variables.push_back(var);
  record.attributes.emplace_back("unitSI", AttrValue(1.0));
  record.attributes.emplace_back("comment", AttrValue(std::string("hi")));
  record.attributes.emplace_back("count", AttrValue(std::uint64_t(7)));

  const auto bytes = encode_step(record);
  const StepRecord back = decode_step(bytes);
  EXPECT_EQ(back.step, 42u);
  ASSERT_EQ(back.variables.size(), 1u);
  EXPECT_EQ(back.variables[0].name, "e/position/x");
  EXPECT_EQ(back.variables[0].shape, Dims{1000});
  ASSERT_EQ(back.variables[0].chunks.size(), 2u);
  EXPECT_EQ(back.variables[0].chunks[1].operator_name, "blosc");
  EXPECT_EQ(back.variables[0].chunks[1].raw_bytes, 1600u);
  ASSERT_EQ(back.attributes.size(), 3u);
  EXPECT_DOUBLE_EQ(std::get<double>(back.attributes[0].second), 1.0);
  EXPECT_EQ(std::get<std::string>(back.attributes[1].second), "hi");
  EXPECT_EQ(std::get<std::uint64_t>(back.attributes[2].second), 7u);
}

TEST(BpFormat, DetectsCorruption) {
  StepRecord record;
  record.step = 1;
  auto bytes = encode_step(record);
  bytes[0] ^= 0xFF;  // magic
  EXPECT_THROW(decode_step(bytes), FormatError);

  auto good = encode_step(record);
  good.pop_back();
  EXPECT_THROW(decode_step(good), FormatError);
  good = encode_step(record);
  good.push_back(0);
  EXPECT_THROW(decode_step(good), FormatError);
}

TEST(BpFormat, IndexRoundTripAndSizeCheck) {
  std::vector<IndexEntry> index{{0, 0, 100}, {1, 100, 80}};
  auto bytes = encode_index(index);
  auto back = decode_index(bytes);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[1].md_offset, 100u);
  bytes.pop_back();
  EXPECT_THROW(decode_index(bytes), FormatError);
}

// ---------------------------------------------------------------- config ---

TEST(BpConfig, FromTomlConfig) {
  const Json cfg = parse_toml(R"(
[adios2.engine]
type = "bp4"

[adios2.engine.parameters]
NumAggregators = 400
Profile = "On"

[adios2.dataset]
operators = [ { type = "blosc", typesize = 4 } ]
)");
  const EngineConfig engine = EngineConfig::from_json(cfg.at("adios2"));
  EXPECT_EQ(engine.engine, EngineType::bp4);
  EXPECT_EQ(engine.num_aggregators, 400);
  EXPECT_TRUE(engine.profiling);
  EXPECT_EQ(engine.codec, "blosc");
  EXPECT_EQ(engine.codec_typesize, 4u);
}

TEST(BpConfig, RejectsUnknownEngine) {
  Json cfg{JsonObject{}};
  cfg["engine"]["type"] = "hdf5";
  EXPECT_THROW(EngineConfig::from_json(cfg), UsageError);
}

// ---------------------------------------------------------------- writer ---

EngineConfig small_config(int aggregators = 0, const std::string& codec = "none") {
  EngineConfig config;
  config.num_aggregators = aggregators;
  config.ranks_per_node = 4;
  config.codec = codec;
  return config;
}

TEST(BpWriter, WriteReadRoundTrip1D) {
  fsim::SharedFs fs(8);
  {
    Writer writer = Writer::open(fs, "out/series.bp4", small_config(), /*nranks=*/4);
    writer.begin_step(0);
    const Dims shape{40};
    for (int r = 0; r < 4; ++r) {
      auto local = iota_floats(10, float(r) * 10.f);
      writer.put<float>(r, "density", shape, {std::uint64_t(r) * 10}, {10},
                        local);
    }
    writer.add_attribute("unitSI", AttrValue(1.0));
    writer.end_step();
    writer.close();
  }
  Reader reader = Reader::open(fs, 0, "out/series.bp4");
  EXPECT_EQ(reader.steps(), std::vector<std::uint64_t>{0});
  const auto data = reader.read_as<float>(0, "density");
  EXPECT_EQ(data, iota_floats(40));
  ASSERT_TRUE(reader.attribute(0, "unitSI").has_value());
  EXPECT_DOUBLE_EQ(std::get<double>(*reader.attribute(0, "unitSI")), 1.0);
  EXPECT_FALSE(reader.attribute(0, "nope").has_value());
}

TEST(BpWriter, MultiStepAndLatestWinsOnRewrite) {
  fsim::SharedFs fs(4);
  {
    Writer writer = Writer::open(fs, "ck.bp4", small_config(), 2);
    for (std::uint64_t rewrite = 0; rewrite < 3; ++rewrite) {
      writer.begin_step(0);  // checkpoint slot, rewritten
      auto payload = iota_floats(8, float(rewrite) * 100.f);
      writer.put<float>(0, "state", {16}, {0}, {8}, payload);
      writer.put<float>(1, "state", {16}, {8}, {8}, payload);
      writer.end_step();
    }
    writer.begin_step(7);
    auto last = iota_floats(4, 7.f);
    writer.put<float>(0, "other", {4}, {0}, {4}, last);
    writer.end_step();
    writer.close();
  }
  Reader reader = Reader::open(fs, 0, "ck.bp4");
  EXPECT_EQ(reader.steps(), (std::vector<std::uint64_t>{0, 7}));
  // The step-0 record must be the LAST rewrite.
  const auto state = reader.read_as<float>(0, "state");
  EXPECT_FLOAT_EQ(state[0], 200.f);
  EXPECT_FLOAT_EQ(state[8], 200.f);
}

TEST(BpWriter, AggregatorMappingIsContiguousAndBalanced) {
  fsim::SharedFs fs(4);
  Writer writer = Writer::open(fs, "x.bp4", small_config(3), 10);
  EXPECT_EQ(writer.aggregator_count(), 3);
  int previous = 0;
  std::vector<int> counts(3, 0);
  for (int r = 0; r < 10; ++r) {
    const int a = writer.aggregator_of(r);
    EXPECT_GE(a, previous);  // monotone => contiguous blocks
    previous = a;
    ++counts[std::size_t(a)];
  }
  for (int c : counts) EXPECT_NEAR(double(c), 10.0 / 3.0, 1.0);
  writer.begin_step(0);
  writer.end_step();
  writer.close();
}

TEST(BpWriter, SubfileCountMatchesAggregators) {
  // Table II: a BP4 container holds M data files + md.0 + md.idx.
  fsim::SharedFs fs(4);
  {
    Writer writer = Writer::open(fs, "t.bp4", small_config(5), 20);
    writer.begin_step(0);
    for (int r = 0; r < 20; ++r) {
      auto v = iota_floats(4);
      writer.put<float>(r, "v", {80}, {std::uint64_t(r) * 4}, {4}, v);
    }
    writer.end_step();
    writer.close();
  }
  const auto files = fs.store().list_recursive("t.bp4");
  EXPECT_EQ(files.size(), 5u + 2u);
  std::size_t data_files = 0;
  for (const auto* f : files)
    if (f->path.find("/data.") != std::string::npos) ++data_files;
  EXPECT_EQ(data_files, 5u);
}

TEST(BpWriter, DefaultAggregationIsPerNode) {
  fsim::SharedFs fs(4);
  Writer writer = Writer::open(fs, "n.bp4", small_config(0), 12);  // 4 ranks/node => 3 nodes
  EXPECT_EQ(writer.aggregator_count(), 3);
  writer.begin_step(0);
  writer.end_step();
  writer.close();
}

TEST(BpWriter, OperatorCompressesAndRoundTrips) {
  fsim::SharedFs fs(4);
  const std::size_t n = 1 << 16;
  std::vector<float> smooth(n);
  for (std::size_t i = 0; i < n; ++i) smooth[i] = float(i) * 0.001f;
  {
    Writer writer = Writer::open(fs, "c.bp4", small_config(1, "blosc"), 2);
    writer.begin_step(3);
    writer.put<float>(0, "x", {n}, {0}, {n / 2},
                      std::span<const float>(smooth.data(), n / 2));
    writer.put<float>(1, "x", {n}, {n / 2}, {n / 2},
                      std::span<const float>(smooth.data() + n / 2, n / 2));
    writer.end_step();
    writer.close();
  }
  // Stored bytes must be smaller than raw (compressible data).
  EXPECT_LT(fs.store().file("c.bp4/data.0").size, n * sizeof(float));
  Reader reader = Reader::open(fs, 0, "c.bp4");
  const auto var = reader.find_variable(3, "x");
  ASSERT_NE(var, nullptr);
  EXPECT_EQ(var->chunks[0].operator_name, "blosc");
  const auto back = reader.read_as<float>(3, "x");
  EXPECT_EQ(back, smooth);
}

TEST(BpWriter, CompressionChargesCompressNotMemcopy) {
  fsim::SharedFs fs(4);
  {
    Writer writer = Writer::open(fs, "p.bp4", small_config(1, "blosc"), 1);
    writer.begin_step(0);
    auto v = iota_floats(1024);
    writer.put<float>(0, "x", {1024}, {0}, {1024}, v);
    writer.end_step();
    writer.close();
  }
  double compress = 0.0, memcopy = 0.0;
  for (const auto& op : fs.trace()) {
    if (op.kind != fsim::OpKind::cpu) continue;
    if (op.tag == "compress") compress += op.cpu_seconds;
    if (op.tag == "memcopy") memcopy += op.cpu_seconds;
  }
  EXPECT_GT(compress, 0.0);
  EXPECT_DOUBLE_EQ(memcopy, 0.0);  // Fig 8: memcopy eliminated
}

TEST(BpWriter, NoCompressionChargesMemcopy) {
  fsim::SharedFs fs(4);
  {
    Writer writer = Writer::open(fs, "p2.bp4", small_config(1, "none"), 1);
    writer.begin_step(0);
    auto v = iota_floats(1024);
    writer.put<float>(0, "x", {1024}, {0}, {1024}, v);
    writer.end_step();
    writer.close();
  }
  double memcopy = 0.0;
  for (const auto& op : fs.trace())
    if (op.kind == fsim::OpKind::cpu && op.tag == "memcopy")
      memcopy += op.cpu_seconds;
  EXPECT_GT(memcopy, 0.0);
}

TEST(BpWriter, ParallelCompressionRoundTripThroughContainer) {
  // compress_threads > 1 wraps the codec in the block-parallel pipeline, so
  // the container stores CZP1 frames; the reader must decode them.
  fsim::SharedFs fs(8);
  auto config = small_config(1, "blosc");
  config.compress_threads = 4;
  config.compress_block_kb = 16;  // several blocks per 64 KiB chunk
  const std::size_t n = 1 << 14;
  std::vector<float> smooth(n);
  for (std::size_t i = 0; i < n; ++i) smooth[i] = float(i) * 0.001f;
  {
    Writer writer = Writer::open(fs, "par.bp4", config, 2);
    writer.begin_step(0);
    writer.put<float>(0, "x", {2 * n}, {0}, {n}, smooth);
    writer.put<float>(1, "x", {2 * n}, {n}, {n}, smooth);
    writer.end_step();
    writer.close();
  }
  EXPECT_LT(fs.store().file("par.bp4/data.0").size, 2 * n * sizeof(float));
  Reader reader = Reader::open(fs, 0, "par.bp4");
  const auto var = reader.find_variable(0, "x");
  ASSERT_NE(var, nullptr);
  EXPECT_EQ(var->chunks[0].operator_name, "blosc");
  const auto back = reader.read_as<float>(0, "x");
  ASSERT_EQ(back.size(), 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(back[i], smooth[i]) << i;
    ASSERT_EQ(back[n + i], smooth[i]) << i;
  }
}

TEST(BpWriter, SteadyStateStepsHitTheBufferPool) {
  // After a warmup step populates the size-class freelists, repeated
  // identical steps must recycle every buffer: put() staging, aggregation
  // targets, and the parallel codec's per-block scratch all come from the
  // pool (hit rate >= 99%, i.e. zero steady-state heap allocation).
  fsim::SharedFs fs(8);
  auto config = small_config(1, "blosc");
  config.compress_threads = 4;
  config.compress_block_kb = 16;
  const std::size_t n = 1 << 14;
  std::vector<float> smooth(n);
  for (std::size_t i = 0; i < n; ++i) smooth[i] = float(i) * 0.001f;
  Writer writer = Writer::open(fs, "pool.bp4", config, 2);
  auto put_step = [&](std::uint64_t step) {
    writer.begin_step(step);
    writer.put<float>(0, "x", {2 * n}, {0}, {n}, smooth);
    writer.put<float>(1, "x", {2 * n}, {n}, {n}, smooth);
    writer.end_step();
  };
  put_step(0);
  put_step(1);  // two warmup steps: freelists reach steady state
  writer.reset_pool_stats();
  for (std::uint64_t step = 2; step < 12; ++step) put_step(step);
  const auto stats = writer.pool_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GE(stats.hit_rate(), 0.99) << "hits=" << stats.hits
                                    << " misses=" << stats.misses;
  writer.close();
}

TEST(BpWriter, ProfilingJsonEmitted) {
  fsim::SharedFs fs(4);
  auto config = small_config(1, "blosc");
  config.profiling = true;
  {
    Writer writer = Writer::open(fs, "prof.bp4", config, 1);
    writer.begin_step(0);
    auto v = iota_floats(256);
    writer.put<float>(0, "x", {256}, {0}, {256}, v);
    writer.end_step();
    writer.close();
  }
  fsim::FsClient io(fs, 0);
  const auto text = io.read_all("prof.bp4/profiling.json");
  const Json profile = Json::parse(
      std::string(reinterpret_cast<const char*>(text.data()), text.size()));
  EXPECT_EQ(profile.at("engine").as_string(), "bp4");
  EXPECT_GT(profile.at("transport_0").at("compress_us").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(profile.at("transport_0").at("memcopy_us").as_number(),
                   0.0);
}

TEST(BpWriter, Bp5WritesSecondMetadataFile) {
  fsim::SharedFs fs(4);
  auto config = small_config(1);
  config.engine = EngineType::bp5;
  {
    Writer writer = Writer::open(fs, "b5.bp5", config, 1);
    writer.begin_step(0);
    writer.end_step();
    writer.close();
  }
  EXPECT_TRUE(fs.store().file_exists("b5.bp5/mmd.0"));
  EXPECT_FALSE(fs.store().file_exists("b5.bp5/profiling.json"));
}

TEST(BpWriter, TwoDimensionalChunks) {
  fsim::SharedFs fs(4);
  const Dims shape{4, 6};
  {
    Writer writer = Writer::open(fs, "2d.bp4", small_config(1), 2);
    writer.begin_step(0);
    // Rank 0 owns rows 0-1, rank 1 rows 2-3.
    std::vector<float> top(12), bottom(12);
    std::iota(top.begin(), top.end(), 0.f);
    std::iota(bottom.begin(), bottom.end(), 12.f);
    writer.put<float>(0, "grid", shape, {0, 0}, {2, 6}, top);
    writer.put<float>(1, "grid", shape, {2, 0}, {2, 6}, bottom);
    writer.end_step();
    writer.close();
  }
  Reader reader = Reader::open(fs, 0, "2d.bp4");
  EXPECT_EQ(reader.read_as<float>(0, "grid"), iota_floats(24));
}

TEST(BpWriter, ColumnChunks2D) {
  fsim::SharedFs fs(4);
  const Dims shape{3, 4};
  {
    Writer writer = Writer::open(fs, "col.bp4", small_config(1), 2);
    writer.begin_step(0);
    // Rank 0 owns columns 0-1, rank 1 columns 2-3 (non-contiguous rows).
    std::vector<float> left{0, 1, 4, 5, 8, 9};
    std::vector<float> right{2, 3, 6, 7, 10, 11};
    writer.put<float>(0, "g", shape, {0, 0}, {3, 2}, left);
    writer.put<float>(1, "g", shape, {0, 2}, {3, 2}, right);
    writer.end_step();
    writer.close();
  }
  Reader reader = Reader::open(fs, 0, "col.bp4");
  EXPECT_EQ(reader.read_as<float>(0, "g"), iota_floats(12));
}

TEST(BpWriter, UsageErrors) {
  fsim::SharedFs fs(4);
  Writer writer = Writer::open(fs, "e.bp4", small_config(1), 2);
  auto v = iota_floats(4);
  EXPECT_THROW(writer.put<float>(0, "x", {4}, {0}, {4}, v), UsageError);
  writer.begin_step(0);
  EXPECT_THROW(writer.begin_step(1), UsageError);
  EXPECT_THROW(writer.put<float>(5, "x", {4}, {0}, {4}, v), UsageError);
  EXPECT_THROW(writer.put<float>(0, "x", {4}, {2}, {4}, v), UsageError);
  EXPECT_THROW(writer.put<float>(0, "x", {4}, {0}, {3}, v), UsageError);
  writer.put<float>(0, "x", {4}, {0}, {4}, v);
  std::vector<double> d(4, 0.0);
  EXPECT_THROW(writer.put<double>(1, "x", {4}, {0}, {4}, d), UsageError);
  EXPECT_THROW(writer.close(), UsageError);  // step still open
  writer.end_step();
  writer.close();
  EXPECT_THROW(writer.begin_step(2), UsageError);  // closed
}

TEST(BpReader, DetectsCorruptContainer) {
  fsim::SharedFs fs(4);
  {
    Writer writer = Writer::open(fs, "bad.bp4", small_config(1), 1);
    writer.begin_step(0);
    auto v = iota_floats(16);
    writer.put<float>(0, "x", {16}, {0}, {16}, v);
    writer.end_step();
    writer.close();
  }
  // Corrupt md.0 in place.  Also zap the footer trailer magic: with an
  // intact footer the open is satisfied by the (self-CRC'd) footer copy of
  // the metadata and never touches the corrupt block; breaking the trailer
  // forces the scan path, which must reject the container.
  auto& node = fs.store().file("bad.bp4/md.0");
  node.data[4] ^= 0xFF;
  node.data[node.data.size() - 1] ^= 0xFF;
  EXPECT_THROW(Reader::open(fs, 0, "bad.bp4"), FormatError);
}

TEST(BpReader, MissingVariableAndStep) {
  fsim::SharedFs fs(4);
  {
    Writer writer = Writer::open(fs, "m.bp4", small_config(1), 1);
    writer.begin_step(0);
    writer.end_step();
    writer.close();
  }
  Reader reader = Reader::open(fs, 0, "m.bp4");
  EXPECT_THROW(reader.read(0, "ghost"), UsageError);
  EXPECT_THROW(reader.step(9), UsageError);
  EXPECT_FALSE(reader.has_step(9));
  EXPECT_EQ(reader.find_variable(0, "ghost"), nullptr);
}

// ----------------------------------------------------------------- footer ---

namespace {

/// Writes a tiny closed two-step container at `path` and returns the
/// expected step-1 payload.
std::vector<float> write_footer_fixture(fsim::SharedFs& fs,
                                        const std::string& path) {
  Writer writer = Writer::open(fs, path, EngineConfig{}, 2);
  for (std::uint64_t step = 0; step < 2; ++step) {
    writer.begin_step(step);
    for (int r = 0; r < 2; ++r) {
      auto local = iota_floats(8, float(step * 100) + float(r) * 8.f);
      writer.put<float>(r, "density", {16}, {std::uint64_t(r) * 8}, {8},
                        local);
    }
    writer.end_step();
  }
  writer.close();
  return iota_floats(16, 100.f);
}

/// The footer trailer's first field: byte offset of the footer in md.0.
std::uint64_t footer_offset_of(const fsim::FileNode& md) {
  BinReader trailer(
      std::span(md.data).subspan(md.data.size() - 24, 8));
  return trailer.u64();
}

}  // namespace

TEST(BpFooter, ClosedContainerOpensThroughTheFooterIndex) {
  fsim::SharedFs fs(4);
  const auto expect = write_footer_fixture(fs, "f.bp4");
  Reader reader = Reader::open(fs, 0, "f.bp4");
  EXPECT_TRUE(reader.used_footer_index());
  EXPECT_EQ(reader.steps(), (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(reader.read_as<float>(1, "density"), expect);
  EXPECT_TRUE(reader.all_ok(reader.verify()));
}

TEST(BpFooter, PreFooterContainerFallsBackToScan) {
  fsim::SharedFs fs(4);
  const auto expect = write_footer_fixture(fs, "v5.bp4");
  // A pre-v6 container is exactly a v6 one minus the appended footer:
  // truncate md.0 back to the footer offset and the md.idx scan path must
  // serve the open, bit-for-bit.
  auto& md = fs.store().file("v5.bp4/md.0");
  md.data.resize(footer_offset_of(md));
  md.size = md.data.size();
  Reader reader = Reader::open(fs, 0, "v5.bp4");
  EXPECT_FALSE(reader.used_footer_index());
  EXPECT_EQ(reader.read_as<float>(1, "density"), expect);
}

TEST(BpFooter, CorruptFooterBodyFallsBackToScan) {
  fsim::SharedFs fs(4);
  const auto expect = write_footer_fixture(fs, "cf.bp4");
  auto& md = fs.store().file("cf.bp4/md.0");
  // Flip a byte inside the footer body: the trailer CRC no longer matches,
  // so open must reject the footer and scan — never crash, never serve the
  // poisoned copy.
  md.data[footer_offset_of(md) + 6] ^= 0xFF;
  Reader reader = Reader::open(fs, 0, "cf.bp4");
  EXPECT_FALSE(reader.used_footer_index());
  EXPECT_EQ(reader.read_as<float>(1, "density"), expect);
  EXPECT_TRUE(reader.all_ok(reader.verify()));
}

TEST(BpFooter, TruncatedTrailerFallsBackToScan) {
  fsim::SharedFs fs(4);
  const auto expect = write_footer_fixture(fs, "tt.bp4");
  // Tear the tail mid-trailer (a torn final write): the trailer magic is
  // gone, the step records before the footer are intact.
  auto& md = fs.store().file("tt.bp4/md.0");
  md.data.resize(md.data.size() - 5);
  md.size = md.data.size();
  Reader reader = Reader::open(fs, 0, "tt.bp4");
  EXPECT_FALSE(reader.used_footer_index());
  EXPECT_EQ(reader.read_as<float>(1, "density"), expect);
}

TEST(BpFooter, MidRunPublishOpensWithoutFooter) {
  fsim::SharedFs fs(4);
  Writer writer = Writer::open(fs, "mid.bp4", EngineConfig{}, 1);
  writer.begin_step(0);
  auto v = iota_floats(8);
  writer.put<float>(0, "x", {8}, {0}, {8}, v);
  writer.end_step();
  writer.publish_index();  // mid-run attach: no footer yet
  Reader reader = Reader::open(fs, 0, "mid.bp4");
  EXPECT_FALSE(reader.used_footer_index());
  EXPECT_EQ(reader.read_as<float>(0, "x"), iota_floats(8));
  writer.close();
  Reader closed = Reader::open(fs, 0, "mid.bp4");
  EXPECT_TRUE(closed.used_footer_index());
}

TEST(BpFooter, RandomAccessChunkAndSliceReads) {
  fsim::SharedFs fs(4);
  write_footer_fixture(fs, "ra.bp4");
  Reader reader = Reader::open(fs, 0, "ra.bp4");
  // find_chunk addresses one writer rank's block.
  const ChunkRecord* chunk = reader.find_chunk(1, "density", 1);
  ASSERT_NE(chunk, nullptr);
  EXPECT_EQ(chunk->offset, Dims{8});
  EXPECT_EQ(reader.find_chunk(1, "density", 7), nullptr);
  // read_chunk fetches exactly that block, CRC-verified.
  const auto raw = reader.read_chunk(1, "density", 1);
  ASSERT_EQ(raw.size(), 8 * sizeof(float));
  std::vector<float> block(8);
  std::memcpy(block.data(), raw.data(), raw.size());
  EXPECT_EQ(block, iota_floats(8, 108.f));
  // read_slice touches only overlapping chunks and honors bounds.
  const auto slice = reader.read_slice(1, "density", 6, 4);
  std::vector<float> four(4);
  std::memcpy(four.data(), slice.data(), slice.size());
  EXPECT_EQ(four, iota_floats(4, 106.f));
  EXPECT_THROW(reader.read_slice(1, "density", 10, 8), UsageError);
  EXPECT_THROW(reader.read_chunk(1, "ghost", 0), UsageError);
}

// -------------------------------------------------------------- hardening ---

StepRecord sample_record() {
  StepRecord record;
  record.step = 3;
  VarRecord var{"x", Datatype::float32, {8}, {}};
  var.chunks.push_back({{0}, {8}, 0, 0, 0, 32, 32, ""});
  record.variables.push_back(var);
  record.attributes.emplace_back("time", AttrValue(1.5));
  return record;
}

TEST(BpHardening, TruncatedStepMetadataAlwaysFormatError) {
  // Every possible truncation of an encoded step record must surface as a
  // typed FormatError — never a crash, hang, or silent partial parse.
  const auto bytes = encode_step(sample_record());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    SCOPED_TRACE("prefix length " + std::to_string(len));
    EXPECT_THROW(
        decode_step(std::span<const std::uint8_t>(bytes.data(), len)),
        FormatError);
  }
}

TEST(BpHardening, TruncatedIndexAlwaysFormatError) {
  const auto bytes =
      encode_index({{0, 0, 100, 0x1234, true}, {1, 100, 80, 0x5678, true}});
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    SCOPED_TRACE("prefix length " + std::to_string(len));
    EXPECT_THROW(
        decode_index(std::span<const std::uint8_t>(bytes.data(), len)),
        FormatError);
  }
}

TEST(BpHardening, UnknownFormatVersionIsTypedFormatError) {
  // A future (or garbage) magic must be rejected up front, not parsed as
  // whichever version the bytes happen to resemble.
  BinWriter md;
  md.u32(0x4D443036);  // "MD06": plausible next version, unknown to us
  md.u64(1);
  md.u32(0);
  md.u32(0);
  EXPECT_THROW(decode_step(md.take()), FormatError);

  BinWriter idx;
  idx.u32(0x49445836);  // "IDX6"
  idx.u32(0);
  EXPECT_THROW(decode_index(idx.take()), FormatError);
}

TEST(BpHardening, LegacyV4ContainersStillDecode) {
  // Format v5 added CRCs; v4 bytes (no chunk CRC fields, no trailing
  // metadata CRC, 24-byte index entries) must stay readable.
  BinWriter md;
  md.u32(kMdMagic);
  md.u64(7);
  md.u32(1);  // one variable
  md.str("x");
  md.u8(std::uint8_t(Datatype::float32));
  md.dims({8});
  md.u32(1);  // one chunk
  md.dims({0});
  md.dims({8});
  md.u32(0);   // writer_rank
  md.u32(0);   // subfile
  md.u64(0);   // file_offset
  md.u64(32);  // stored_bytes
  md.u64(32);  // raw_bytes
  md.str("");
  md.f64(0.0);
  md.f64(7.0);
  md.u32(0);  // no attributes
  const StepRecord record = decode_step(md.take());
  EXPECT_EQ(record.step, 7u);
  ASSERT_EQ(record.variables.size(), 1u);
  ASSERT_EQ(record.variables[0].chunks.size(), 1u);
  EXPECT_FALSE(record.variables[0].chunks[0].has_crc);

  BinWriter idx;
  idx.u32(kIdxMagic);
  idx.u32(1);
  idx.u64(3);   // step
  idx.u64(0);   // md_offset
  idx.u64(40);  // md_length
  const auto entries = decode_index(idx.take());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].step, 3u);
  EXPECT_EQ(entries[0].md_length, 40u);
  EXPECT_FALSE(entries[0].has_crc);
}

// -------------------------------------------------------------- integrity ---

TEST(BpIntegrity, ChunkCrcCatchesEveryBitFlipInData) {
  fsim::SharedFs fs(4);
  {
    Writer writer = Writer::open(fs, "c.bp4", small_config(1), 1);
    writer.begin_step(0);
    auto v = iota_floats(16);
    writer.put<float>(0, "x", {16}, {0}, {16}, v);
    writer.end_step();
    writer.close();
  }
  Reader reader = Reader::open(fs, 0, "c.bp4");
  EXPECT_TRUE(Reader::all_ok(reader.verify()));

  // Flip every bit of the data subfile in turn: the per-chunk CRC32C must
  // catch each one (100% detection of single-bit silent corruption).
  auto& node = fs.store().file("c.bp4/data.0");
  ASSERT_EQ(node.data.size(), 64u);
  for (std::size_t bit = 0; bit < node.data.size() * 8; ++bit) {
    node.data[bit / 8] ^= std::uint8_t(1u << (bit % 8));
    EXPECT_FALSE(Reader::all_ok(reader.verify()))
        << "bit flip at " << bit << " went undetected";
    EXPECT_THROW(reader.read(0, "x"), FormatError);
    node.data[bit / 8] ^= std::uint8_t(1u << (bit % 8));
  }
  EXPECT_TRUE(Reader::all_ok(reader.verify()));
}

TEST(BpIntegrity, TornDataSubfileReportedAsShortRead) {
  fsim::SharedFs fs(4);
  {
    Writer writer = Writer::open(fs, "t.bp4", small_config(1), 1);
    writer.begin_step(0);
    auto v = iota_floats(16);
    writer.put<float>(0, "x", {16}, {0}, {16}, v);
    writer.end_step();
    writer.close();
  }
  auto& node = fs.store().file("t.bp4/data.0");
  fs.store().truncate(node, node.size - 1);  // the classic lost tail

  Reader reader = Reader::open(fs, 0, "t.bp4");
  const auto verdicts = reader.verify();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].status, Reader::ChunkVerdict::Status::short_read);
  EXPECT_FALSE(Reader::all_ok(verdicts));
  EXPECT_THROW(reader.read(0, "x"), FormatError);
}

TEST(BpIntegrity, IndexCrossChecksStepMetadata) {
  fsim::SharedFs fs(4);
  {
    Writer writer = Writer::open(fs, "x.bp4", small_config(1), 1);
    writer.begin_step(0);
    auto v = iota_floats(8);
    writer.put<float>(0, "x", {8}, {0}, {8}, v);
    writer.end_step();
    writer.close();
  }
  // Flip one byte inside the md.0 step block: the md.idx entry's CRC of
  // that block must reject the container at open.  The footer trailer is
  // zapped first so the open takes the md.idx + md.0 scan path (the footer
  // holds its own self-CRC'd copy of the step metadata).
  auto& node = fs.store().file("x.bp4/md.0");
  node.data[node.data.size() - 1] ^= 0xFF;
  node.data[16] ^= 0x01;  // inside the first (only) step block
  EXPECT_THROW(Reader::open(fs, 0, "x.bp4"), FormatError);
}

TEST(BpChunkView, ValidatesGeometryAtConstruction) {
  const std::vector<float> data = iota_floats(8);
  const auto bytes = std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size() * 4);
  // Offset/count dimensionality must agree.
  EXPECT_THROW(ChunkView(Datatype::float32, bytes, {0, 0}, {8}), UsageError);
  // Byte length must equal element_count(count) * sizeof(dtype).
  EXPECT_THROW(ChunkView(Datatype::float32, bytes, {0}, {7}), UsageError);
  EXPECT_THROW(ChunkView(Datatype::float64, bytes, {0}, {8}), UsageError);
  const ChunkView ok = ChunkView::of<float>(data, {4}, {8});
  EXPECT_EQ(ok.dtype(), Datatype::float32);
  EXPECT_EQ(ok.count(), Dims{8});
  EXPECT_EQ(ok.bytes().size(), 32u);
}

// ------------------------------------------------------------ async drain ---

// One multi-step, multi-aggregator workload, written with or without the
// background drain.  Real payloads so container bytes can be compared.
void write_workload(fsim::SharedFs& fs, const std::string& path,
                    EngineConfig config, int* peak = nullptr) {
  const int ranks = 4;
  Writer writer = Writer::open(fs, path, config, ranks);
  for (std::uint64_t step = 0; step < 6; ++step) {
    writer.begin_step(step);
    for (int r = 0; r < ranks; ++r) {
      auto local = iota_floats(64, float(step * 1000 + std::uint64_t(r)));
      writer.put<float>(r, "density", {256}, {std::uint64_t(r) * 64}, {64},
                        local);
    }
    writer.add_attribute("time", AttrValue(double(step)));
    writer.end_step();
  }
  writer.close();
  if (peak != nullptr) *peak = writer.peak_inflight();
}

TEST(BpAsync, DrainedChunksCarryVerifiableCrcs) {
  // The CRCs are computed inside the drain worker; the async container must
  // come out fully checksummed (and identical to sync, which the test
  // below checks byte-for-byte).
  fsim::SharedFs fs(8);
  auto config = small_config(2);
  config.async_write = true;
  write_workload(fs, "acrc.bp4", config);
  Reader reader = Reader::open(fs, 0, "acrc.bp4");
  const auto verdicts = reader.verify();
  EXPECT_FALSE(verdicts.empty());
  for (const auto& v : verdicts)
    EXPECT_EQ(v.status, Reader::ChunkVerdict::Status::ok)
        << "step " << v.step << " var " << v.var;
}

TEST(BpAsync, ContainerBytesIdenticalToSync) {
  fsim::SharedFs fs(8);
  auto config = small_config(2);
  write_workload(fs, "sync.bp4", config);
  config.async_write = true;
  config.buffer_chunk_mb = 1;
  write_workload(fs, "async.bp4", config);

  const auto sync_files = fs.store().list_recursive("sync.bp4");
  const auto async_files = fs.store().list_recursive("async.bp4");
  ASSERT_EQ(sync_files.size(), async_files.size());
  fsim::FsClient io(fs, 0);
  for (const char* name : {"data.0", "data.1", "md.0", "md.idx"}) {
    const auto a = io.read_all(std::string("sync.bp4/") + name);
    const auto b = io.read_all(std::string("async.bp4/") + name);
    EXPECT_EQ(a, b) << "file " << name << " differs between sync and async";
  }
}

TEST(BpAsync, ReaderSeesEveryStepAfterClose) {
  fsim::SharedFs fs(8);
  auto config = small_config(2);
  config.async_write = true;
  write_workload(fs, "a.bp4", config);
  Reader reader = Reader::open(fs, 0, "a.bp4");
  ASSERT_EQ(reader.steps().size(), 6u);
  for (std::uint64_t step = 0; step < 6; ++step) {
    const auto data = reader.read_as<float>(step, "density");
    ASSERT_EQ(data.size(), 256u);
    EXPECT_FLOAT_EQ(data[0], float(step * 1000));
    EXPECT_FLOAT_EQ(data[64], float(step * 1000 + 1));
    ASSERT_TRUE(reader.attribute(step, "time").has_value());
    EXPECT_DOUBLE_EQ(std::get<double>(*reader.attribute(step, "time")),
                     double(step));
  }
}

TEST(BpAsync, WaitDrainsMakesContainerReadable) {
  fsim::SharedFs fs(8);
  auto config = small_config(1);
  config.async_write = true;
  Writer writer = Writer::open(fs, "w.bp4", config, 2);
  writer.begin_step(0);
  auto a = iota_floats(16);
  writer.put<float>(0, "x", {32}, {0}, {16}, a);
  writer.put<float>(1, "x", {32}, {16}, {16}, a);
  writer.end_step();
  writer.wait_drains();
  // The step landed even though the writer is still open: its subfile and
  // step metadata bytes are on storage (the md.idx header is only patched
  // at close, so use the raw subfile instead of a Reader).
  EXPECT_GT(fs.store().file("w.bp4/data.0").size, 0u);
  EXPECT_GT(fs.store().file("w.bp4/md.0").size, 0u);
  writer.close();
  Reader reader = Reader::open(fs, 0, "w.bp4");
  EXPECT_EQ(reader.read_as<float>(0, "x").size(), 32u);
}

TEST(BpAsync, BackpressureBoundsInflightSteps) {
  fsim::SharedFs fs(8);
  for (const int max_inflight : {1, 2}) {
    auto config = small_config(1);
    config.async_write = true;
    config.max_inflight_steps = max_inflight;
    int peak = 0;
    const std::string path = "bp" + std::to_string(max_inflight) + ".bp4";
    write_workload(fs, path, config, &peak);
    EXPECT_GE(peak, 1);
    EXPECT_LE(peak, max_inflight);
  }
  auto config = small_config(1);
  config.async_write = true;
  config.max_inflight_steps = 0;
  EXPECT_THROW(Writer::open(fs, "bad.bp4", config, 1), UsageError);
}

TEST(BpAsync, SpmdConcurrentPutsAcrossOverlappedSteps) {
  // Satellite stress: every rank puts concurrently while earlier steps are
  // still draining in the background; the result must equal the sync run.
  fsim::SharedFs fs(16);
  const int ranks = 8;
  const std::uint64_t steps = 10;
  const std::size_t elems = 128;

  auto run = [&](const std::string& path, bool async) {
    auto config = small_config(2);
    config.ranks_per_node = ranks;
    config.async_write = async;
    config.max_inflight_steps = 2;
    Writer writer = Writer::open(fs, path, config, ranks);
    smpi::run_spmd(ranks, [&](smpi::Comm& comm) {
      const int r = comm.rank();
      for (std::uint64_t step = 0; step < steps; ++step) {
        if (r == 0) writer.begin_step(step);
        comm.barrier();
        auto local =
            iota_floats(elems, float(step * 10000 + std::uint64_t(r) * 100));
        writer.put<float>(r, "phase", {std::uint64_t(ranks) * elems},
                          {std::uint64_t(r) * elems}, {elems}, local);
        comm.barrier();
        if (r == 0) writer.end_step();
        comm.barrier();
      }
    });
    writer.close();
    return writer.peak_inflight();
  };

  run("spmd_sync.bp4", false);
  const int peak = run("spmd_async.bp4", true);
  EXPECT_GE(peak, 1);
  EXPECT_LE(peak, 2);

  Reader sync_reader = Reader::open(fs, 0, "spmd_sync.bp4");
  Reader async_reader = Reader::open(fs, 0, "spmd_async.bp4");
  ASSERT_EQ(async_reader.steps().size(), steps);
  for (std::uint64_t step = 0; step < steps; ++step) {
    const auto expect = sync_reader.read_as<float>(step, "phase");
    const auto got = async_reader.read_as<float>(step, "phase");
    EXPECT_EQ(expect, got) << "step " << step;
  }
  // Byte-identical containers, not merely equal decoded values.
  fsim::FsClient io(fs, 0);
  for (const char* name : {"data.0", "data.1", "md.0", "md.idx"}) {
    EXPECT_EQ(io.read_all(std::string("spmd_sync.bp4/") + name),
              io.read_all(std::string("spmd_async.bp4/") + name))
        << name;
  }
}

TEST(BpAsync, ProfilingAttributesDrainTimeOffCriticalPath) {
  fsim::SharedFs fs(4);
  auto config = small_config(1);
  config.profiling = true;
  config.async_write = true;
  {
    Writer writer = Writer::open(fs, "prof_async.bp4", config, 1);
    writer.begin_step(0);
    auto v = iota_floats(256);
    writer.put<float>(0, "x", {256}, {0}, {256}, v);
    writer.end_step();
    writer.close();
  }
  fsim::FsClient io(fs, 0);
  const auto text = io.read_all("prof_async.bp4/profiling.json");
  const Json profile = Json::parse(
      std::string(reinterpret_cast<const char*>(text.data()), text.size()));
  EXPECT_TRUE(profile.at("async_write").as_bool());
  // The memcopy cost moved off the critical path into the drain lane.
  EXPECT_GT(profile.at("transport_0").at("drain_us").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(profile.at("transport_0").at("memcopy_us").as_number(),
                   0.0);
}

TEST(BpAsync, DrainLanesInTraceAndReplay) {
  fsim::SharedFs fs(8);
  auto config = small_config(2);
  config.async_write = true;
  write_workload(fs, "lanes.bp4", config);

  bool saw_drain_lane = false;
  for (const auto& op : fs.trace())
    if (op.lane > 0 && op.kind == fsim::OpKind::write) saw_drain_lane = true;
  EXPECT_TRUE(saw_drain_lane);

  const auto replay =
      fsim::replay_trace(fsim::dardel(), fs.store(), fs.trace(), 4);
  EXPECT_GT(replay.mean_drain_time(), 0.0);

  // The identical sync workload has no drain lane anywhere.
  fsim::SharedFs sync_fs(8);
  write_workload(sync_fs, "lanes.bp4", small_config(2));
  for (const auto& op : sync_fs.trace()) EXPECT_EQ(op.lane, 0u);
  const auto sync_replay =
      fsim::replay_trace(fsim::dardel(), sync_fs.store(), sync_fs.trace(), 4);
  EXPECT_DOUBLE_EQ(sync_replay.mean_drain_time(), 0.0);
}

}  // namespace
}  // namespace bitio::bp
