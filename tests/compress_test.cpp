// Unit + property tests for the compression stack: shuffle, LZ, Huffman,
// BWT/MTF, and the self-framing blosc-like / bzip2-like codecs.
#include <gtest/gtest.h>

#include <cstring>

#include "compress/bwt.hpp"
#include "compress/codec.hpp"
#include "compress/huffman.hpp"
#include "compress/lz.hpp"
#include "compress/parallel.hpp"
#include "compress/reference.hpp"
#include "compress/shuffle.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bitio::cz {
namespace {

Bytes ascii(const char* s) {
  return Bytes(reinterpret_cast<const std::uint8_t*>(s),
               reinterpret_cast<const std::uint8_t*>(s) + std::strlen(s));
}

/// Data classes used across the property tests.
Bytes make_data(const std::string& kind, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  if (kind == "random") {
    for (auto& b : out) b = std::uint8_t(rng.below(256));
  } else if (kind == "zeros") {
    std::fill(out.begin(), out.end(), 0);
  } else if (kind == "text") {
    const char* words[] = {"plasma ", "particle ", "divertor ", "flux ",
                           "tokamak "};
    std::size_t i = 0;
    while (i < n) {
      const char* w = words[rng.below(5)];
      for (const char* p = w; *p && i < n; ++p) out[i++] = std::uint8_t(*p);
    }
  } else if (kind == "floats") {
    // Smooth float series: the realistic PIC particle payload.
    std::size_t i = 0;
    float x = 1.0f;
    while (i + 4 <= n) {
      x += 0.001f * float(rng.normal());
      std::memcpy(&out[i], &x, 4);
      i += 4;
    }
  } else {
    ADD_FAILURE() << "unknown data kind " << kind;
  }
  return out;
}

// -------------------------------------------------------------- shuffle ---

TEST(Shuffle, RoundTripAllTypesizes) {
  Rng rng(1);
  for (std::size_t typesize : {1u, 2u, 4u, 8u, 3u}) {
    for (std::size_t n : {0u, 1u, 5u, 16u, 1000u, 1003u}) {
      Bytes data(n);
      for (auto& b : data) b = std::uint8_t(rng.below(256));
      EXPECT_EQ(unshuffle(shuffle(data, typesize), typesize), data)
          << "typesize=" << typesize << " n=" << n;
    }
  }
}

TEST(Shuffle, TransposesBytes) {
  Bytes data = {0x01, 0x02, 0x03, 0x04, 0x11, 0x12, 0x13, 0x14};
  Bytes s = shuffle(data, 4);
  Bytes expect = {0x01, 0x11, 0x02, 0x12, 0x03, 0x13, 0x04, 0x14};
  EXPECT_EQ(s, expect);
}

TEST(Shuffle, RejectsZeroTypesize) {
  EXPECT_THROW(shuffle(Bytes{1, 2}, 0), UsageError);
  EXPECT_THROW(unshuffle(Bytes{1, 2}, 0), UsageError);
}

// ------------------------------------------------------------------- lz ---

TEST(Lz, RoundTripSimple) {
  for (const char* s :
       {"", "a", "abcd", "aaaaaaaaaaaaaaaaaaaaaaa",
        "abcabcabcabcabcabcabcabc", "the quick brown fox the quick brown"}) {
    Bytes data = ascii(s);
    Bytes packed = lz_compress_block(data);
    EXPECT_EQ(lz_decompress_block(packed, data.size()), data) << s;
  }
}

TEST(Lz, CompressesRepetitiveData) {
  Bytes data = make_data("zeros", 64 * 1024, 0);
  Bytes packed = lz_compress_block(data);
  EXPECT_LT(packed.size(), data.size() / 50);
  EXPECT_EQ(lz_decompress_block(packed, data.size()), data);
}

TEST(Lz, DetectsCorruption) {
  Bytes data = make_data("text", 5000, 2);
  Bytes packed = lz_compress_block(data);
  EXPECT_THROW(lz_decompress_block(packed, data.size() + 1), FormatError);
  Bytes truncated(packed.begin(), packed.begin() + long(packed.size() / 2));
  EXPECT_THROW(lz_decompress_block(truncated, data.size()), FormatError);
}

struct LzCase {
  const char* kind;
  std::size_t size;
};

class LzProperty : public ::testing::TestWithParam<LzCase> {};

TEST_P(LzProperty, RoundTrip) {
  const auto& param = GetParam();
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Bytes data = make_data(param.kind, param.size, seed);
    Bytes packed = lz_compress_block(data);
    EXPECT_EQ(lz_decompress_block(packed, data.size()), data)
        << param.kind << "/" << param.size << "/" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DataClasses, LzProperty,
    ::testing::Values(LzCase{"random", 1}, LzCase{"random", 100},
                      LzCase{"random", 70000}, LzCase{"zeros", 300},
                      LzCase{"zeros", 70000}, LzCase{"text", 10},
                      LzCase{"text", 4096}, LzCase{"text", 300000},
                      LzCase{"floats", 4096}, LzCase{"floats", 200000}),
    [](const auto& info) {
      return std::string(info.param.kind) + "_" +
             std::to_string(info.param.size);
    });

// -------------------------------------------------------------- huffman ---

TEST(Huffman, RoundTripSkewedDistribution) {
  Rng rng(4);
  std::vector<std::uint16_t> symbols;
  for (int i = 0; i < 50000; ++i) {
    // Geometric-ish: small symbols dominate, like post-MTF data.
    std::uint16_t s = 0;
    while (s < 200 && rng.uniform() < 0.6) ++s;
    symbols.push_back(s);
  }
  Bytes enc = huffman_encode(symbols, 257);
  EXPECT_EQ(huffman_decode(enc), symbols);
  // Skewed data must beat the 9.01-bit trivial encoding comfortably.
  EXPECT_LT(enc.size(), symbols.size());
}

TEST(Huffman, DegenerateAlphabets) {
  std::vector<std::uint16_t> empty;
  EXPECT_EQ(huffman_decode(huffman_encode(empty, 257)), empty);

  std::vector<std::uint16_t> single(1000, 42);
  EXPECT_EQ(huffman_decode(huffman_encode(single, 257)), single);

  std::vector<std::uint16_t> two{0, 1, 0, 1, 1, 0};
  EXPECT_EQ(huffman_decode(huffman_encode(two, 2)), two);
}

TEST(Huffman, UniformAlphabetRoundTrip) {
  std::vector<std::uint16_t> symbols;
  for (int rep = 0; rep < 20; ++rep)
    for (std::uint16_t s = 0; s < 256; ++s) symbols.push_back(s);
  Bytes enc = huffman_encode(symbols, 256);
  EXPECT_EQ(huffman_decode(enc), symbols);
}

TEST(Huffman, RejectsBadInput) {
  std::vector<std::uint16_t> bad{300};
  EXPECT_THROW(huffman_encode(bad, 257), UsageError);
  EXPECT_THROW(huffman_decode(Bytes{1, 2}), FormatError);
}

TEST(BitIo, WriterReaderAgree) {
  BitWriter writer;
  writer.put(0b101, 3);
  writer.put(0b1, 1);
  writer.put(0xABCD, 16);
  writer.put(0, 5);
  Bytes bits = writer.finish();
  BitReader reader(bits);
  EXPECT_EQ(reader.get(3), 0b101u);
  EXPECT_EQ(reader.get(1), 0b1u);
  EXPECT_EQ(reader.get(16), 0xABCDu);
  EXPECT_EQ(reader.get(5), 0u);
  EXPECT_THROW(reader.get(8), FormatError);
}

// ------------------------------------------------------------------ bwt ---

TEST(Bwt, KnownTransform) {
  // The canonical "banana" example.
  Bytes data = ascii("banana");
  BwtResult r = bwt_forward(data);
  EXPECT_EQ(bwt_inverse(r.last_column, r.primary_index), data);
}

TEST(Bwt, RoundTripClasses) {
  for (const char* kind : {"random", "zeros", "text", "floats"}) {
    for (std::size_t n : {0u, 1u, 2u, 100u, 5000u}) {
      Bytes data = make_data(kind, n, 7);
      BwtResult r = bwt_forward(data);
      ASSERT_EQ(r.last_column.size(), data.size());
      EXPECT_EQ(bwt_inverse(r.last_column, r.primary_index), data)
          << kind << "/" << n;
    }
  }
}

TEST(Bwt, PeriodicInput) {
  Bytes data = ascii("abababababab");
  BwtResult r = bwt_forward(data);
  EXPECT_EQ(bwt_inverse(r.last_column, r.primary_index), data);
}

TEST(Bwt, InverseRejectsBadPrimary) {
  EXPECT_THROW(bwt_inverse(Bytes{1, 2, 3}, 3), FormatError);
}

TEST(Mtf, RoundTripAndFrontLoading) {
  Bytes data = ascii("aaabbbcccaaa");
  Bytes enc = mtf_encode(data);
  EXPECT_EQ(mtf_decode(enc), data);
  // Runs of a repeated byte become zeros after the first occurrence.
  EXPECT_EQ(enc[1], 0);
  EXPECT_EQ(enc[2], 0);
}

// --------------------------------------------------------------- codecs ---

class CodecProperty
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
protected:
  std::unique_ptr<Codec> codec() const {
    return make_codec(std::get<0>(GetParam()), 4);
  }
};

TEST_P(CodecProperty, RoundTripsEveryDataClass) {
  const std::string kind = std::get<1>(GetParam());
  auto c = codec();
  for (std::size_t n : {0u, 1u, 17u, 4096u, 300000u}) {
    Bytes data = make_data(kind, n, 11);
    Bytes frame = c->compress(data);
    EXPECT_EQ(c->decompress(frame), data)
        << c->name() << "/" << kind << "/" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecProperty,
    ::testing::Combine(::testing::Values("none", "blosc", "bzip2"),
                       ::testing::Values("random", "zeros", "text", "floats")),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

TEST(Codec, BloscShrinksShuffledFloats) {
  Bytes data = make_data("floats", 1 << 20, 3);
  auto blosc = make_blosc_codec(4);
  Bytes frame = blosc->compress(data);
  // The paper's Table II sees ~11% reduction on BIT1 float data at 1 node;
  // smooth synthetic floats shuffle-compress at least that well.
  EXPECT_LT(frame.size(), data.size() * 90 / 100);
}

TEST(Codec, Bzip2BeatsBloscOnText) {
  Bytes data = make_data("text", 1 << 18, 5);
  auto blosc = make_blosc_codec(1);
  auto bz = make_bzip2_codec();
  EXPECT_LT(bz->compress(data).size(), blosc->compress(data).size());
}

TEST(Codec, IncompressibleDataFallsBackToRaw) {
  Bytes data = make_data("random", 100000, 9);
  for (const char* name : {"blosc", "bzip2"}) {
    auto c = make_codec(name);
    Bytes frame = c->compress(data);
    // Raw fallback: bounded overhead even on incompressible input.
    EXPECT_LT(frame.size(), data.size() + 64u) << name;
    EXPECT_EQ(c->decompress(frame), data) << name;
  }
}

TEST(Codec, RegistryNamesAndErrors) {
  EXPECT_EQ(make_codec("none")->name(), "none");
  EXPECT_EQ(make_codec("blosc")->name(), "blosc");
  EXPECT_EQ(make_codec("bzip2")->name(), "bzip2");
  EXPECT_EQ(make_codec("")->name(), "none");
  EXPECT_THROW(make_codec("zstd"), UsageError);
}

TEST(Codec, DecompressRejectsWrongMagic) {
  auto blosc = make_blosc_codec();
  auto bz = make_bzip2_codec();
  Bytes frame = blosc->compress(make_data("text", 100, 1));
  EXPECT_THROW(bz->decompress(frame), FormatError);
  EXPECT_THROW(blosc->decompress(Bytes{}), FormatError);
}

TEST(Codec, SpeedModelOrdering) {
  // The storage simulator relies on blosc being modelled much faster than
  // bzip2 (that is the whole Fig 7 / Table II trade-off).
  auto blosc = make_blosc_codec();
  auto bz = make_bzip2_codec();
  EXPECT_GT(blosc->compress_speed_bps(), 10 * bz->compress_speed_bps());
}

// ------------------------------------------------- seed differentials ----
// The optimised kernels must stay stream-compatible with the frozen seed
// kernels: same formats, mutually decodable, identical results.

TEST(SeedDifferential, ShuffleMatchesSeed) {
  for (std::size_t typesize : {1u, 2u, 4u, 8u, 16u, 3u}) {
    // Include sizes with a partial trailing element.
    for (std::size_t n : {0u, 1u, 63u, 4096u, 4098u, 100003u}) {
      Bytes data = make_data("random", n, 21);
      EXPECT_EQ(shuffle(data, typesize), seed_shuffle(data, typesize))
          << typesize << "/" << n;
      Bytes shuf = shuffle(data, typesize);
      EXPECT_EQ(unshuffle(shuf, typesize), seed_unshuffle(shuf, typesize))
          << typesize << "/" << n;
    }
  }
}

TEST(SeedDifferential, LzStreamsInterchangeable) {
  for (const char* kind : {"random", "zeros", "text", "floats"}) {
    Bytes data = make_data(kind, 70000, 23);
    // Seed-compressed decodes with the optimised decoder and vice versa.
    EXPECT_EQ(lz_decompress_block(seed_lz_compress_block(data), data.size()),
              data)
        << kind;
    EXPECT_EQ(seed_lz_decompress_block(lz_compress_block(data), data.size()),
              data)
        << kind;
  }
}

TEST(SeedDifferential, HuffmanDecodersAgree) {
  Rng rng(29);
  std::vector<std::uint16_t> symbols(50000);
  for (auto& s : symbols)
    s = std::uint16_t(rng.below(7) == 0 ? rng.below(257) : rng.below(4));
  const Bytes enc = huffman_encode(symbols, 257);
  EXPECT_EQ(huffman_decode(enc), symbols);
  EXPECT_EQ(seed_huffman_decode(enc), symbols);
}

TEST(SeedDifferential, SeedBloscFramesDecode) {
  Bytes data = make_data("floats", 600000, 31);
  const Bytes seed_frame = seed_blosc_compress(data, 4);
  // Seed frames are standard BLL1: both the codec and the magic-dispatching
  // frame decoder accept them.
  EXPECT_EQ(make_blosc_codec(4)->decompress(seed_frame), data);
  EXPECT_EQ(decompress_frame(seed_frame), data);
}

// ----------------------------------------------------- parallel codec ----

/// (inner codec name, thread count) for the parallel property suite.
class ParallelCodecProperty
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {
protected:
  static constexpr std::size_t kBlock = 4096;  // smallest legal block

  std::unique_ptr<Codec> codec() const {
    return make_parallel_codec(make_codec(std::get<0>(GetParam()), 4),
                               std::get<1>(GetParam()), kBlock);
  }
};

TEST_P(ParallelCodecProperty, RoundTripsEdgeSizes) {
  auto c = codec();
  // Empty, one byte, exact block multiples, straddling sizes, and a size
  // with a partial trailing 4-byte shuffle element (4097, 12289).
  for (std::size_t n : {0u, 1u, 4095u, 4096u, 4097u, 8192u, 12289u, 40000u}) {
    for (const char* kind : {"zeros", "random", "floats"}) {
      Bytes data = make_data(kind, n, 37);
      Bytes frame = c->compress(data);
      EXPECT_EQ(c->decompress(frame), data) << kind << "/" << n;
      EXPECT_EQ(decompress_frame(frame, 4), data) << kind << "/" << n;
    }
  }
}

TEST_P(ParallelCodecProperty, FramesIdenticalAcrossThreadCounts) {
  // The determinism guarantee: bytes depend on (input, inner, block_size)
  // only, never the thread count.
  const std::string inner = std::get<0>(GetParam());
  auto serial = make_parallel_codec(make_codec(inner, 4), 1, kBlock);
  auto c = codec();
  for (std::size_t n : {0u, 4096u, 12289u, 50000u}) {
    Bytes data = make_data("floats", n, 41);
    EXPECT_EQ(c->compress(data), serial->compress(data)) << n;
  }
}

TEST_P(ParallelCodecProperty, DecodesLegacySingleBlockFrames) {
  // Satellite fix: readers of old containers need no migration — the
  // parallel codec (and decompress_frame) accept the seed formats.
  const std::string inner = std::get<0>(GetParam());
  auto legacy = make_codec(inner, 4);
  auto c = codec();
  Bytes data = make_data("floats", 30000, 43);
  EXPECT_EQ(c->decompress(legacy->compress(data)), data);
}

INSTANTIATE_TEST_SUITE_P(
    BothCodecs, ParallelCodecProperty,
    ::testing::Combine(::testing::Values("blosc", "bzip2"),
                       ::testing::Values(1, 4)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ParallelCodec, FrameVersionIsChecked) {
  auto c = make_parallel_codec(make_blosc_codec(4), 2, 4096);
  Bytes data = make_data("floats", 20000, 47);
  Bytes frame = c->compress(data);
  ASSERT_GT(frame.size(), 5u);
  frame[4] = 9;  // unsupported version
  EXPECT_THROW(c->decompress(frame), FormatError);
  EXPECT_THROW(decompress_frame(frame), FormatError);
}

TEST(ParallelCodec, RejectsCorruptFrames) {
  auto c = make_parallel_codec(make_blosc_codec(4), 2, 4096);
  Bytes data = make_data("floats", 20000, 53);  // 5 blocks of 4096
  const Bytes frame = c->compress(data);

  // Truncated block table: cut inside the u32 table after the header.
  Bytes truncated(frame.begin(), frame.begin() + 23);
  EXPECT_THROW(c->decompress(truncated), FormatError);

  // Bad block count: nblocks inconsistent with orig_size/block_size.
  Bytes bad_count = frame;
  bad_count[17] = std::uint8_t(bad_count[17] + 1);  // nblocks lo byte
  EXPECT_THROW(c->decompress(bad_count), FormatError);

  // Trailing garbage after the last block body.
  Bytes trailing = frame;
  trailing.push_back(0xAB);
  EXPECT_THROW(c->decompress(trailing), FormatError);

  // Bad magic dispatch.
  EXPECT_THROW(decompress_frame(ascii("XXXXnope")), FormatError);
}

}  // namespace
}  // namespace bitio::cz
