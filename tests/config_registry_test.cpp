// Exhaustive Bit1IoConfig round-trip, driven off core::kBit1IoConfigKeys —
// the same registry tools/lint_invariants enforces.  For every registered
// key the suite mutates exactly the field that key populates and checks
// from_toml(to_toml(config)) reproduces the config bit-for-bit, so a knob
// cannot be added to the registry without also surviving the TOML surface.
// An unrecognized registry key fails the suite: extending the registry
// forces this file to learn the new knob's mutation.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/io_config.hpp"
#include "fsim/fault_plan.hpp"
#include "util/error.hpp"

using bitio::core::Bit1IoConfig;
using bitio::core::IoMode;
using bitio::core::kBit1IoConfigKeys;

namespace {

/// Flip `config`'s field for registry key `key` to a non-default value.
/// Returns false when the key is unknown — the exhaustiveness tripwire.
bool mutate_for_key(const std::string& key, Bit1IoConfig& config) {
  if (key == "mode") {
    config.mode = IoMode::original;
  } else if (key == "engine") {
    config.engine = "bp5";
  } else if (key == "aggregators") {
    config.num_aggregators = 7;
  } else if (key == "checkpoint_aggregators") {
    config.checkpoint_aggregators = 3;
  } else if (key == "codec") {
    config.codec = "blosc";
  } else if (key == "compress_threads") {
    config.compress_threads = 4;
  } else if (key == "compress_block_kb") {
    config.compress_block_kb = 256;
  } else if (key == "profiling") {
    config.profiling = true;
  } else if (key == "async_write") {
    config.async_write = true;
  } else if (key == "buffer_chunk_mb") {
    config.buffer_chunk_mb = 32;
  } else if (key == "io_batch_depth") {
    config.io_batch_depth = 64;
  } else if (key == "coalesce_writes") {
    config.coalesce_writes = true;
  } else if (key == "ranks_per_node") {
    config.ranks_per_node = 64;
  } else if (key == "checkpoint_interval") {
    config.checkpoint_interval = 5;
  } else if (key == "checkpoint_retain") {
    config.checkpoint_retain = 4;
  } else if (key == "checkpoint_full_interval") {
    config.checkpoint_full_interval = 3;
  } else if (key == "drain_timeout_ms") {
    config.drain_timeout_ms = 150;
  } else if (key == "max_drain_retries") {
    config.max_drain_retries = 5;
  } else if (key == "degrade_threshold") {
    config.degrade_threshold = 2;
  } else if (key == "degrade_cooldown") {
    config.degrade_cooldown = 3;
  } else if (key == "recovery") {
    config.recovery = "shrink";
  } else if (key == "striping") {
    config.use_striping = true;
  } else if (key == "count") {
    config.use_striping = true;
    config.striping.stripe_count = 8;
  } else if (key == "size") {
    config.use_striping = true;
    config.striping.stripe_size = 16ull << 20;
  } else if (key == "stream_max_steps") {
    config.stream_max_steps = 9;
  } else if (key == "stream_policy") {
    config.stream_policy = "drop_oldest";
  } else if (key == "aggregation") {
    config.aggregation = "two_level";
    config.topology = "dardel";  // two_level needs a hierarchical topology
  } else if (key == "topology") {
    config.topology = "dardel";
  } else if (key == "numa_per_node") {
    config.numa_per_node = 4;
  } else if (key == "nics_per_node") {
    config.nics_per_node = 2;
  } else if (key == "fault_plan") {
    bitio::fsim::FaultRule rule;
    rule.kind = bitio::fsim::FaultKind::eio;
    rule.nth = 1;
    config.fault_plan = bitio::fsim::FaultPlan(42, {rule});
  } else {
    return false;
  }
  return true;
}

/// Every registered field flipped at once — the maximal configuration.
Bit1IoConfig maximal_config() {
  Bit1IoConfig config;
  for (const auto& row : kBit1IoConfigKeys) {
    // mode=original and the openPMD knobs coexist in the TOML surface;
    // skip nothing.
    EXPECT_TRUE(mutate_for_key(row.key, config)) << row.key;
  }
  // mode=original plus async knobs is legal for the config type itself.
  return config;
}

}  // namespace

TEST(ConfigRegistry, RegistryHasNoDuplicateKeysOrFields) {
  std::set<std::string> keys, fields;
  for (const auto& row : kBit1IoConfigKeys) {
    EXPECT_TRUE(keys.insert(row.key).second) << "duplicate key " << row.key;
    EXPECT_TRUE(fields.insert(row.field).second)
        << "duplicate field " << row.field;
  }
}

TEST(ConfigRegistry, EveryKeyRoundTripsIndividually) {
  for (const auto& row : kBit1IoConfigKeys) {
    Bit1IoConfig mutated;
    ASSERT_TRUE(mutate_for_key(row.key, mutated))
        << "registry key '" << row.key
        << "' has no mutation in this suite — teach mutate_for_key about "
           "the new knob";
    mutated.validate();
    const Bit1IoConfig parsed = Bit1IoConfig::from_toml(mutated.to_toml());
    EXPECT_EQ(parsed, mutated) << "key '" << row.key
                               << "' does not survive to_toml/from_toml";
  }
}

TEST(ConfigRegistry, MaximalConfigRoundTrips) {
  const Bit1IoConfig config = maximal_config();
  config.validate();
  const Bit1IoConfig parsed = Bit1IoConfig::from_toml(config.to_toml());
  EXPECT_EQ(parsed, config);
}

TEST(ConfigRegistry, ToTomlRendersEveryRegisteredKey) {
  const std::string toml = maximal_config().to_toml();
  for (const auto& row : kBit1IoConfigKeys)
    EXPECT_NE(toml.find(row.key), std::string::npos)
        << "key '" << row.key << "' missing from to_toml output";
}

TEST(ConfigRegistry, DefaultConfigRoundTripsToo) {
  const Bit1IoConfig config;
  const Bit1IoConfig parsed = Bit1IoConfig::from_toml(config.to_toml());
  EXPECT_EQ(parsed, config);
}

namespace {

/// validate() must throw, and the message must carry `hint` so the error
/// is actionable, not just "invalid config".
void expect_rejected(const Bit1IoConfig& config, const std::string& hint) {
  try {
    config.validate();
    FAIL() << "config validated but should be rejected (" << hint << ")";
  } catch (const bitio::UsageError& e) {
    EXPECT_NE(std::string(e.what()).find(hint), std::string::npos)
        << "message '" << e.what() << "' lacks hint '" << hint << "'";
  }
}

}  // namespace

TEST(ConfigValidation, UnknownEngineListsTheRegisteredNames) {
  Bit1IoConfig config;
  config.engine = "hdf5";
  // The message enumerates kBit1IoEngines so the fix is in the error.
  expect_rejected(config, "\"stream\"");
}

TEST(ConfigValidation, StreamRejectsFileOnlyKnobs) {
  Bit1IoConfig stream;
  stream.engine = "stream";
  stream.validate();  // the engine itself is fine

  Bit1IoConfig ckpt = stream;
  ckpt.checkpoint_interval = 10;
  expect_rejected(ckpt, "cannot take checkpoints");

  Bit1IoConfig striped = stream;
  striped.use_striping = true;
  expect_rejected(striped, "nothing to stripe");

  Bit1IoConfig async = stream;
  async.async_write = true;
  expect_rejected(async, "async_write");
}

TEST(ConfigValidation, StreamKnobsAreRangeChecked) {
  Bit1IoConfig config;
  config.stream_max_steps = 0;
  expect_rejected(config, "stream_max_steps");

  Bit1IoConfig policy;
  policy.stream_policy = "banana";
  expect_rejected(policy, "stream_policy");
}

TEST(ConfigValidation, CompressThreadsBoundedByBufferPoolDepth) {
  Bit1IoConfig config;
  config.compress_threads = 17;  // cz::BufferPool::kDefaultMaxPerClass is 16
  expect_rejected(config, "buffer-pool per-class depth");
  config.compress_threads = 16;
  config.validate();
}

TEST(ConfigValidation, UnknownAggregationListsTheModes) {
  Bit1IoConfig config;
  config.aggregation = "tree";
  // The message enumerates kBit1IoAggregationModes so the fix is in the
  // error, mirroring the unknown-engine diagnostics.
  expect_rejected(config, "\"two_level\"");
}

TEST(ConfigValidation, UnknownTopologyListsThePresets) {
  Bit1IoConfig config;
  config.topology = "summit";
  expect_rejected(config, "\"dardel\"");
}

TEST(ConfigValidation, StreamTwoLevelNeedsMultiNodeTopology) {
  Bit1IoConfig config;
  config.engine = "stream";
  config.aggregation = "two_level";
  // topology = "flat" puts every rank on one node: nothing to gather
  // across.  The error lists the valid aggregation modes.
  expect_rejected(config, "\"flat\", \"two_level\"");
  config.topology = "dardel";
  config.validate();
}

TEST(ConfigValidation, ValidStreamConfigRoundTrips) {
  Bit1IoConfig config;
  config.engine = "stream";
  config.stream_max_steps = 8;
  config.stream_policy = "disconnect";
  config.codec = "blosc";
  config.validate();
  const Bit1IoConfig parsed = Bit1IoConfig::from_toml(config.to_toml());
  EXPECT_EQ(parsed, config);
  // The adios2 rendering carries the window knobs to the bp layer.
  const std::string adios2 = config.adios2_toml();
  EXPECT_NE(adios2.find("StreamMaxSteps = 8"), std::string::npos) << adios2;
  EXPECT_NE(adios2.find("StreamPolicy = \"disconnect\""), std::string::npos)
      << adios2;
}
