// Fixture tests for tools/lint_invariants: each rule runs against a tiny
// synthetic tree with one seeded violation and must report the exact
// file:line, then the whole suite runs against the real sources and must
// come back clean (the same invariant the `lint`-labeled ctest enforces).

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using bitio::lint::Diagnostic;

namespace {

/// A throwaway fixture tree rooted in the test's temp dir.
class FixtureTree {
public:
  FixtureTree() : root_(fs::path(testing::TempDir()) / unique_name()) {
    fs::create_directories(root_);
  }
  ~FixtureTree() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  std::string root() const { return root_.string(); }

  void write(const std::string& rel, const std::string& text) {
    const fs::path path = root_ / rel;
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary);
    out << text;
  }

private:
  static std::string unique_name() {
    static int counter = 0;
    return "lint_fixture_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++);
  }

  fs::path root_;
};

/// 1-based line of the first occurrence of `needle` in `text` — the tests
/// derive expected line numbers from the fixture source itself so edits to
/// the fixtures cannot silently desynchronize the assertions.
std::size_t expect_line(const std::string& text, const std::string& needle) {
  const std::size_t at = text.find(needle);
  EXPECT_NE(at, std::string::npos) << "fixture lost marker: " << needle;
  return bitio::lint::line_of(text, at);
}

bool has_diag(const std::vector<Diagnostic>& diags, const std::string& file,
              std::size_t line, const std::string& substring) {
  for (const auto& d : diags) {
    if (d.file == file && d.line == line &&
        d.message.find(substring) != std::string::npos)
      return true;
  }
  return false;
}

std::string dump(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const auto& d : diags) out += bitio::lint::format_diagnostic(d) + "\n";
  return out;
}

}  // namespace

TEST(LintHelpers, StripCommentsPreservesLineStructure) {
  const std::string text = "int a; // trailing\n/* block\n spans */ int b;\n";
  const std::string stripped = bitio::lint::strip_comments(text);
  EXPECT_EQ(stripped.size(), text.size());
  EXPECT_EQ(bitio::lint::line_of(stripped, stripped.find("int b")), 3u);
  EXPECT_EQ(stripped.find("trailing"), std::string::npos);
  EXPECT_EQ(stripped.find("spans"), std::string::npos);
}

TEST(LintHelpers, StripStringLiteralsBlanksContents) {
  const std::string text = "call(\"std::ofstream inside\");\n";
  const std::string stripped = bitio::lint::strip_string_literals(text);
  EXPECT_EQ(stripped.find("ofstream"), std::string::npos);
  EXPECT_NE(stripped.find("call("), std::string::npos);
}

TEST(LintHelpers, BodyAfterBraceMatches) {
  const std::string text = "int f() { if (x) { y(); } return 0; }\nint g();";
  const std::string body = bitio::lint::body_after(text, "int f()");
  EXPECT_NE(body.find("return 0;"), std::string::npos);
  EXPECT_EQ(body.find("int g"), std::string::npos);
}

TEST(LintRawIo, FlagsNakedFileIoOutsideFsim) {
  FixtureTree tree;
  const std::string bad =
      "#include <fstream>\n"
      "void leak() {\n"
      "  std::ofstream out(\"direct.txt\");\n"
      "}\n";
  tree.write("src/core/bad.cpp", bad);
  // The same token inside fsim, a comment, or a string must not fire.
  tree.write("src/fsim/ok.cpp", "void fsim_owns() { auto f = fopen; }\n");
  tree.write("src/util/ok.cpp",
             "// std::ofstream mentioned in prose\n"
             "const char* doc = \"std::ofstream\";\n"
             "void log_ok() { fprintf(stderr, \"x\"); }\n");

  const auto diags = bitio::lint::check_raw_io(tree.root());
  ASSERT_EQ(diags.size(), 1u) << dump(diags);
  EXPECT_TRUE(has_diag(diags, "src/core/bad.cpp",
                       expect_line(bad, "std::ofstream"), "raw file I/O"))
      << dump(diags);
}

TEST(LintConfigRegistry, FlagsEveryDriftDirection) {
  FixtureTree tree;
  const std::string header =
      "struct IoConfigKey { const char* k; const char* f; bool v; };\n"
      "inline constexpr IoConfigKey kBit1IoConfigKeys[] = {\n"
      "    {\"engine\", \"engine\", true},\n"
      "    {\"codec\", \"codec\", true},\n"
      "    {\"ghost\", \"ghost_field\", false},\n"
      "};\n"
      "struct Bit1IoConfig {\n"
      "  std::string engine;\n"
      "  std::string codec;\n"
      "};\n";
  const std::string impl =
      "#include \"core/io_config.hpp\"\n"
      "void Bit1IoConfig::validate() const {\n"
      "  if (engine != \"bp4\") throw UsageError(\"bad engine\");\n"
      "}\n"
      "Bit1IoConfig Bit1IoConfig::from_toml(const std::string& text) {\n"
      "  config.engine = io.get_or(\"engine\", Json(\"bp4\")).as_string();\n"
      "  config.codec = io.get_or(\"codec\", Json(\"none\")).as_string();\n"
      "  config.x = io.get_or(\"mystery\", Json(0)).as_int();\n"
      "}\n"
      "std::string Bit1IoConfig::to_toml() const {\n"
      "  out += \"engine = bp4\";\n"
      "  out += \"codec = none\";\n"
      "}\n";
  tree.write("src/core/io_config.hpp", header);
  tree.write("src/core/io_config.cpp", impl);

  const auto diags = bitio::lint::check_config_registry(tree.root());
  // 'codec' is flagged validated but validate() never touches it.
  EXPECT_TRUE(has_diag(diags, "src/core/io_config.cpp",
                       expect_line(impl, "Bit1IoConfig::validate"),
                       "'codec'"))
      << dump(diags);
  // 'ghost' is registered but neither a member nor parsed nor rendered.
  EXPECT_TRUE(has_diag(diags, "src/core/io_config.hpp",
                       expect_line(header, "{\"ghost\""),
                       "not a Bit1IoConfig member"))
      << dump(diags);
  EXPECT_TRUE(has_diag(diags, "src/core/io_config.cpp",
                       expect_line(impl, "Bit1IoConfig::from_toml"),
                       "'ghost' from the registry is never parsed"))
      << dump(diags);
  EXPECT_TRUE(has_diag(diags, "src/core/io_config.cpp",
                       expect_line(impl, "Bit1IoConfig::to_toml"),
                       "'ghost' from the registry is never rendered"))
      << dump(diags);
  // from_toml reads 'mystery', which the registry does not declare.
  EXPECT_TRUE(has_diag(diags, "src/core/io_config.cpp",
                       expect_line(impl, "Bit1IoConfig::from_toml"),
                       "'mystery'"))
      << dump(diags);
  EXPECT_EQ(diags.size(), 5u) << dump(diags);
}

TEST(LintDarshanCounters, FlagsTableAndWireFormatDrift) {
  FixtureTree tree;
  const std::string header =
      "struct FileRecord {\n"
      "  std::string path;\n"
      "  std::uint64_t opens = 0;\n"
      "  std::uint64_t writes = 0;\n"
      "  std::uint64_t zots = 0;\n"
      "};\n"
      "inline constexpr const char* kFileRecordCounters[] = {\n"
      "    \"opens\",\n"
      "    \"writes\",\n"
      "    \"phantom\",\n"
      "};\n";
  const std::string impl =
      "#include \"darshan/darshan.hpp\"\n"
      "std::vector<std::uint8_t> DarshanLog::serialize() const {\n"
      "  put_u64(out, r.opens);\n"
      "}\n"
      "DarshanLog DarshanLog::parse(std::span<const std::uint8_t> data) {\n"
      "  r.opens = cur.u64();\n"
      "}\n"
      "DarshanLog capture(const fsim::SharedFs& fs) {\n"
      "  r.opens += op.op_count;\n"
      "  r.writes += op.op_count;\n"
      "}\n";
  tree.write("src/darshan/darshan.hpp", header);
  tree.write("src/darshan/darshan.cpp", impl);

  const auto diags = bitio::lint::check_darshan_counters(tree.root());
  // 'phantom' is declared in the table but not a struct member.
  EXPECT_TRUE(has_diag(diags, "src/darshan/darshan.hpp",
                       expect_line(header, "\"phantom\""), "'phantom'"))
      << dump(diags);
  // 'writes' is a registered member but serialize()/parse() both miss it.
  EXPECT_TRUE(has_diag(diags, "src/darshan/darshan.cpp",
                       expect_line(impl, "DarshanLog::serialize"),
                       "'writes' is never referenced by serialize()"))
      << dump(diags);
  EXPECT_TRUE(has_diag(diags, "src/darshan/darshan.cpp",
                       expect_line(impl, "DarshanLog::parse"),
                       "'writes' is never referenced by parse()"))
      << dump(diags);
  // 'zots' is a numeric member missing from the table.
  EXPECT_TRUE(has_diag(diags, "src/darshan/darshan.hpp",
                       expect_line(header, "struct FileRecord"), "'zots'"))
      << dump(diags);
}

TEST(LintDarshanCounters, FlagsCounterNeverAccumulatedByCapture) {
  FixtureTree tree;
  const std::string header =
      "struct FileRecord {\n"
      "  std::uint64_t opens = 0;\n"
      "  std::uint64_t writes = 0;\n"
      "};\n"
      "inline constexpr const char* kFileRecordCounters[] = {\n"
      "    \"opens\",\n"
      "    \"writes\",\n"
      "};\n";
  // serialize()/parse() cover both counters, so the wire format is fine;
  // capture() only ever touches 'opens' — 'writes' would read back zero
  // from every live log.
  const std::string impl =
      "#include \"darshan/darshan.hpp\"\n"
      "std::vector<std::uint8_t> DarshanLog::serialize() const {\n"
      "  put_u64(out, r.opens);\n"
      "  put_u64(out, r.writes);\n"
      "}\n"
      "DarshanLog DarshanLog::parse(std::span<const std::uint8_t> data) {\n"
      "  r.opens = cur.u64();\n"
      "  r.writes = cur.u64();\n"
      "}\n"
      "DarshanLog capture(const fsim::SharedFs& fs) {\n"
      "  r.opens += op.op_count;\n"
      "}\n";
  tree.write("src/darshan/darshan.hpp", header);
  tree.write("src/darshan/darshan.cpp", impl);

  const auto diags = bitio::lint::check_darshan_counters(tree.root());
  ASSERT_EQ(diags.size(), 1u) << dump(diags);
  EXPECT_TRUE(has_diag(diags, "src/darshan/darshan.cpp",
                       expect_line(impl, "DarshanLog capture"),
                       "'writes' is never accumulated by capture()"))
      << dump(diags);
}

TEST(LintTraceOpKinds, FlagsUnhandledEnumerator) {
  FixtureTree tree;
  const std::string types =
      "enum class OpKind : std::uint8_t {\n"
      "  alpha,\n"
      "  beta,\n"
      "  cpu,\n"
      "};\n"
      "inline const char* op_name(OpKind kind) {\n"
      "  switch (kind) {\n"
      "    case OpKind::alpha: return \"alpha\";\n"
      "    case OpKind::cpu: return \"cpu\";\n"
      "  }\n"
      "  return \"?\";\n"
      "}\n"
      "inline ServiceClass service_class(OpKind kind) {\n"
      "  switch (kind) {\n"
      "    case OpKind::alpha: return ServiceClass::meta;\n"
      "    case OpKind::beta: return ServiceClass::data;\n"
      "    case OpKind::cpu: return ServiceClass::cpu;\n"
      "  }\n"
      "}\n";
  const std::string capture =
      "DarshanLog capture(const fsim::SharedFs& fs) {\n"
      "  switch (op.kind) {\n"
      "    case OpKind::alpha: break;\n"
      "    case OpKind::beta: break;\n"
      "    case OpKind::cpu: break;\n"
      "  }\n"
      "}\n";
  tree.write("src/fsim/types.hpp", types);
  tree.write("src/darshan/darshan.cpp", capture);

  const auto diags = bitio::lint::check_traceop_kinds(tree.root());
  ASSERT_EQ(diags.size(), 1u) << dump(diags);
  EXPECT_TRUE(has_diag(diags, "src/fsim/types.hpp",
                       expect_line(types, "beta,"),
                       "OpKind::beta has no case in op_name()"))
      << dump(diags);
}

TEST(LintEngineRegistry, FlagsEveryDriftDirection) {
  FixtureTree tree;
  // "stream" is declared but never registered / labelled / tagged;
  // "ghostfs" is registered but missing from the declaration list.
  const std::string header =
      "inline constexpr const char* kBit1IoEngines[] = {\n"
      "    \"bp4\",\n"
      "    \"stream\",\n"
      "};\n"
      "struct Bit1IoConfig { std::string engine; };\n";
  const std::string config =
      "#include \"core/io_config.hpp\"\n"
      "std::string Bit1IoConfig::label() const {\n"
      "  if (engine == \"bp4\") return \"BP4\";\n"
      "  return engine;\n"
      "}\n";
  const std::string engine =
      "#include \"bp/engine.hpp\"\n"
      "void builtin_engines() {\n"
      "  register_engine(\"bp4\", make_file_engine);\n"
      "  register_engine(\"ghostfs\", make_ghost_engine);\n"
      "}\n";
  const std::string darshan =
      "#include \"darshan/darshan.hpp\"\n"
      "std::string engine_tag(const std::string& engine) {\n"
      "  if (engine == \"bp4\") return \"BP4\";\n"
      "  return engine;\n"
      "}\n";
  tree.write("src/core/io_config.hpp", header);
  tree.write("src/core/io_config.cpp", config);
  tree.write("src/bp/engine.cpp", engine);
  tree.write("src/darshan/darshan.cpp", darshan);

  const auto diags = bitio::lint::check_engine_registry(tree.root());
  // "stream" missing from all three handling sites.
  EXPECT_TRUE(has_diag(diags, "src/bp/engine.cpp",
                       expect_line(engine, "builtin_engines"),
                       "\"stream\" from kBit1IoEngines has no "
                       "register_engine call"))
      << dump(diags);
  EXPECT_TRUE(has_diag(diags, "src/core/io_config.cpp",
                       expect_line(config, "Bit1IoConfig::label"),
                       "\"stream\" from kBit1IoEngines is never spelled"))
      << dump(diags);
  EXPECT_TRUE(has_diag(diags, "src/darshan/darshan.cpp",
                       expect_line(darshan, "engine_tag"),
                       "\"stream\" from kBit1IoEngines has no tag"))
      << dump(diags);
  // "ghostfs" registered by the factory but undeclared in the config layer.
  EXPECT_TRUE(has_diag(diags, "src/bp/engine.cpp",
                       expect_line(engine, "builtin_engines"),
                       "\"ghostfs\" which is missing from "
                       "core::kBit1IoEngines"))
      << dump(diags);
  EXPECT_EQ(diags.size(), 4u) << dump(diags);
}

TEST(LintTopologyRegistry, FlagsEveryDriftDirection) {
  FixtureTree tree;
  // "two_level" is declared but neither dispatched by the writer nor
  // tagged; "dardel" has no preset branch; "summit" has a branch but is
  // undeclared; core/leak.cpp references bp::Writer outside src/bp.
  const std::string header =
      "inline constexpr const char* kBit1IoAggregationModes[] = {\n"
      "    \"flat\", \"two_level\"};\n"
      "inline constexpr const char* kBit1IoTopologies[] = {\n"
      "    \"flat\", \"dardel\"};\n";
  const std::string writer =
      "#include \"bp/writer.hpp\"\n"
      "void Writer::gather() {\n"
      "  if (config_.aggregation == \"flat\") return;\n"
      "}\n";
  const std::string darshan =
      "#include \"darshan/darshan.hpp\"\n"
      "std::string aggregation_tag(const std::string& aggregation) {\n"
      "  if (aggregation == \"flat\") return \"FLAT\";\n"
      "  return aggregation;\n"
      "}\n";
  const std::string topo =
      "#include \"topo/topology.hpp\"\n"
      "Cluster Cluster::preset(const std::string& name) {\n"
      "  if (name == \"flat\") return flat();\n"
      "  if (name == \"summit\") return summit_like();\n"
      "  throw UsageError(\"unknown\");\n"
      "}\n";
  const std::string leak =
      "#include \"bp/writer.hpp\"\n"
      "void build() {\n"
      "  bp::Writer writer(fs, \"x.bp4\", config, 4);\n"
      "}\n";
  tree.write("src/core/io_config.hpp", header);
  tree.write("src/bp/writer.cpp", writer);
  tree.write("src/darshan/darshan.cpp", darshan);
  tree.write("src/topo/topology.cpp", topo);
  tree.write("src/core/leak.cpp", leak);

  const auto diags = bitio::lint::check_topology_registry(tree.root());
  EXPECT_TRUE(has_diag(diags, "src/bp/writer.cpp", 1,
                       "\"two_level\" from kBit1IoAggregationModes is never "
                       "dispatched"))
      << dump(diags);
  EXPECT_TRUE(has_diag(diags, "src/darshan/darshan.cpp",
                       expect_line(darshan, "aggregation_tag"),
                       "\"two_level\" from kBit1IoAggregationModes has no "
                       "tag"))
      << dump(diags);
  EXPECT_TRUE(has_diag(diags, "src/topo/topology.cpp",
                       expect_line(topo, "Cluster::preset"),
                       "\"dardel\" from kBit1IoTopologies has no branch"))
      << dump(diags);
  EXPECT_TRUE(has_diag(diags, "src/topo/topology.cpp",
                       expect_line(topo, "Cluster::preset"),
                       "\"summit\" which is missing from "
                       "core::kBit1IoTopologies"))
      << dump(diags);
  EXPECT_TRUE(has_diag(diags, "src/core/leak.cpp",
                       expect_line(leak, "bp::Writer"),
                       "direct bp::Writer reference outside src/bp"))
      << dump(diags);
  EXPECT_EQ(diags.size(), 5u) << dump(diags);
}

// The invariant the `lint` ctest label enforces, exercised from the unit
// suite too: the real tree is clean under every rule.
TEST(LintRealTree, AllRulesPass) {
  const auto diags = bitio::lint::run_all(BITIO_SOURCE_ROOT);
  EXPECT_TRUE(diags.empty()) << dump(diags);
}
