// Tests for the IOR-like benchmark: CLI parsing (Table I syntax), both
// file layouts, API differences, and scoring plausibility.
#include <gtest/gtest.h>

#include "fsim/system_profiles.hpp"
#include "ior/ior.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace bitio::ior {
namespace {

TEST(IorCli, ParsesTable1Commands) {
  const IorConfig fpp = IorConfig::parse_cli("-N=25600 -a POSIX -F -C -e");
  EXPECT_EQ(fpp.ntasks, 25600);
  EXPECT_EQ(fpp.api, "POSIX");
  EXPECT_TRUE(fpp.file_per_proc);
  EXPECT_TRUE(fpp.reorder_tasks);
  EXPECT_TRUE(fpp.fsync_on_close);

  const IorConfig shared = IorConfig::parse_cli("ior -N 16 -a MPIIO -C -e");
  EXPECT_EQ(shared.ntasks, 16);
  EXPECT_EQ(shared.api, "MPIIO");
  EXPECT_FALSE(shared.file_per_proc);
}

TEST(IorCli, ParsesSizes) {
  const IorConfig c = IorConfig::parse_cli("-N 4 -a POSIX -b 16M -t 1M -s 2");
  EXPECT_EQ(c.block_size, 16 * MiB);
  EXPECT_EQ(c.transfer_size, 1 * MiB);
  EXPECT_EQ(c.segments, 2);
}

TEST(IorCli, RoundTripsCommandLine) {
  const IorConfig c = IorConfig::parse_cli("-N=25600 -a POSIX -F -C -e");
  EXPECT_EQ(c.command_line(), "ior -N=25600 -a POSIX -F -C -e");
}

TEST(IorCli, RejectsBadInput) {
  EXPECT_THROW(IorConfig::parse_cli("-a RADOS -N 2"), UsageError);
  EXPECT_THROW(IorConfig::parse_cli("-N"), UsageError);
  EXPECT_THROW(IorConfig::parse_cli("-Z 1"), UsageError);
  EXPECT_THROW(IorConfig::parse_cli("-N 0"), UsageError);
}

TEST(IorRun, FilePerProcCreatesOneFilePerTask) {
  auto profile = fsim::dardel();
  IorConfig config = IorConfig::parse_cli("-N 64 -a POSIX -F -e");
  config.block_size = 4 * MiB;
  const IorResult result = run_write(profile, config);
  EXPECT_EQ(result.files_created, 64u);
  EXPECT_EQ(result.bytes_written, 64u * 4 * MiB);
  EXPECT_GT(result.write_gibps, 0.0);
}

TEST(IorRun, SharedModeCreatesOneFile) {
  auto profile = fsim::dardel();
  IorConfig config = IorConfig::parse_cli("-N 64 -a POSIX -C -e");
  config.block_size = 4 * MiB;
  const IorResult result = run_write(profile, config);
  EXPECT_EQ(result.files_created, 1u);
  EXPECT_EQ(result.bytes_written, 64u * 4 * MiB);
}

TEST(IorRun, ManyTasksBeatOneTask) {
  auto profile = fsim::dardel();
  IorConfig one = IorConfig::parse_cli("-N 1 -a POSIX -F");
  one.block_size = 64 * MiB;
  IorConfig many = IorConfig::parse_cli("-N 256 -a POSIX -F");
  many.block_size = 64 * MiB;
  EXPECT_GT(run_write(profile, many).write_gibps,
            2.0 * run_write(profile, one).write_gibps);
}

TEST(IorRun, MpiioCollectiveBuffersThroughNodeAggregators) {
  // MPIIO shared-file mode funnels through one writer per node; with 256
  // tasks on 2 nodes both modes move the same bytes.
  auto profile = fsim::dardel();
  IorConfig posix = IorConfig::parse_cli("-N 256 -a POSIX");
  posix.block_size = 1 * MiB;
  IorConfig mpiio = IorConfig::parse_cli("-N 256 -a MPIIO");
  mpiio.block_size = 1 * MiB;
  const auto posix_result = run_write(profile, posix);
  const auto mpiio_result = run_write(profile, mpiio);
  EXPECT_EQ(posix_result.bytes_written, mpiio_result.bytes_written);
  EXPECT_GT(mpiio_result.write_gibps, 0.0);
}

TEST(IorRun, NonSyntheticModeStoresRealBytes) {
  auto profile = fsim::dardel();
  IorConfig config = IorConfig::parse_cli("-N 2 -a POSIX -F");
  config.block_size = 256 * KiB;
  config.transfer_size = 64 * KiB;
  const IorResult result = run_write(profile, config, /*synthetic=*/false);
  EXPECT_EQ(result.bytes_written, 512 * KiB);
}

}  // namespace
}  // namespace bitio::ior
