// Tests for the pluggable engine registry (bp::make_engine) and the miniSST
// stream engine: factory registration, byte-identical compatibility of the
// named Writer/Reader constructors, reader lifecycle edges (attach before
// the first step, detach mid-stream), the three slow-reader policies, the
// in-situ QueryService, and multi-consumer hammers for the TSan suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>

#include "bp/engine.hpp"
#include "bp/query.hpp"
#include "bp/reader.hpp"
#include "bp/stream.hpp"
#include "bp/writer.hpp"
#include "util/error.hpp"
#include "util/toml.hpp"

namespace bitio::bp {
namespace {

std::vector<float> iota_floats(std::size_t n, float start = 0.f) {
  std::vector<float> v(n);
  std::iota(v.begin(), v.end(), start);
  return v;
}

EngineConfig stream_config(int max_steps, const std::string& policy,
                           const std::string& codec = "none") {
  EngineConfig config;
  config.ranks_per_node = 4;
  config.codec = codec;
  config.stream_max_steps = max_steps;
  config.stream_policy = policy;
  return config;
}

/// One step of a 2-rank float variable, put through any Engine.
void put_step(Engine& engine, std::uint64_t step, float base) {
  engine.begin_step(step);
  const Dims shape{16};
  for (int r = 0; r < 2; ++r) {
    auto local = iota_floats(8, base + float(r) * 8.f);
    engine.put<float>(r, "density", shape, {std::uint64_t(r) * 8}, {8},
                      local);
  }
  engine.add_attribute("unitSI", AttrValue(1.0));
  engine.end_step();
}

std::vector<float> as_floats(const std::vector<std::uint8_t>& bytes) {
  std::vector<float> out(bytes.size() / sizeof(float));
  std::memcpy(out.data(), bytes.data(), out.size() * sizeof(float));
  return out;
}

// -------------------------------------------------------------- registry ---

TEST(EngineRegistry, BuiltinsAreRegistered) {
  for (const char* name : {"bp4", "bp5", "stream"})
    EXPECT_TRUE(engine_registered(name)) << name;
  const auto names = registered_engines();
  for (const char* name : {"bp4", "bp5", "stream"})
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
}

TEST(EngineRegistry, UnknownNameThrowsListingRegistered) {
  fsim::SharedFs fs(4);
  try {
    make_engine("hdf5", fs, "x.hdf5", EngineConfig{}, 2);
    FAIL() << "make_engine accepted an unregistered name";
  } catch (const UsageError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("hdf5"), std::string::npos) << message;
    EXPECT_NE(message.find("bp4"), std::string::npos) << message;
    EXPECT_NE(message.find("stream"), std::string::npos) << message;
  }
}

TEST(EngineRegistry, CustomEngineResolvesThroughFactory) {
  register_engine("bp4-alias",
                  [](fsim::SharedFs& fs, std::string path,
                     EngineConfig config, int nranks) {
                    return make_engine("bp4", fs, std::move(path),
                                       std::move(config), nranks);
                  });
  ASSERT_TRUE(engine_registered("bp4-alias"));
  fsim::SharedFs fs(4);
  auto engine = make_engine("bp4-alias", fs, "alias.bp4", EngineConfig{}, 2);
  put_step(*engine, 0, 0.f);
  engine->close();
  Reader reader = Reader::open(fs, 0, "alias.bp4");
  EXPECT_EQ(reader.read_as<float>(0, "density"), iota_floats(16));
}

// ------------------------------------------- named-ctor compatibility -------

// The concrete Writer::open / Reader::open entry points (the replacement
// for the removed deprecated raw constructors) produce a container
// byte-identical to the factory path for both file engines.
TEST(EngineCompat, NamedCtorsByteIdenticalToFactory) {
  for (const char* name : {"bp4", "bp5"}) {
    fsim::SharedFs fs(8);
    EngineConfig config;
    config.num_aggregators = 2;
    config.ranks_per_node = 4;
    config.engine = std::string(name) == "bp4" ? EngineType::bp4
                                               : EngineType::bp5;

    const std::string raw_path = std::string("raw.") + name;
    {
      Writer writer = Writer::open(fs, raw_path, config, 2);
      writer.begin_step(0);
      const Dims shape{16};
      for (int r = 0; r < 2; ++r) {
        auto local = iota_floats(8, float(r) * 8.f);
        writer.put<float>(r, "density", shape, {std::uint64_t(r) * 8}, {8},
                          local);
      }
      writer.add_attribute("unitSI", AttrValue(1.0));
      writer.end_step();
      writer.close();
    }
    const std::string fac_path = std::string("fac.") + name;
    {
      auto engine = make_engine(name, fs, fac_path, config, 2);
      put_step(*engine, 0, 0.f);
      engine->close();
    }

    const auto raw_files = fs.store().list_recursive(raw_path);
    const auto fac_files = fs.store().list_recursive(fac_path);
    ASSERT_EQ(raw_files.size(), fac_files.size()) << name;
    fsim::FsClient io(fs, 0);
    for (const auto* file : raw_files) {
      const std::string rel = file->path.substr(raw_path.size());
      const auto a = io.read_all(file->path);
      const auto b = io.read_all(fac_path + rel);
      EXPECT_EQ(a, b) << "file " << rel << " differs for " << name;
    }

    // Reader::open parses both containers to the same decoded data.
    Reader direct = Reader::open(fs, 0, raw_path);
    Reader via_factory = Reader::open(fs, 0, fac_path);
    EXPECT_EQ(direct.read_as<float>(0, "density"),
              via_factory.read_as<float>(0, "density"));
  }
}

TEST(EngineCompat, FileEngineAttachWalksLandedSteps) {
  fsim::SharedFs fs(4);
  auto engine = make_engine("bp4", fs, "walk.bp4", EngineConfig{}, 2);
  put_step(*engine, 3, 0.f);
  put_step(*engine, 7, 100.f);

  auto reader = engine->attach(0);
  ASSERT_EQ(reader->next_step(), std::optional<std::uint64_t>(3));
  EXPECT_EQ(as_floats(reader->get("density")), iota_floats(16));
  ASSERT_EQ(reader->next_step(), std::optional<std::uint64_t>(7));
  EXPECT_EQ(as_floats(reader->get("density")), iota_floats(16, 100.f));
  ASSERT_TRUE(reader->attribute("unitSI").has_value());
  EXPECT_EQ(reader->next_step(), std::nullopt);
  EXPECT_EQ(reader->steps_dropped(), 0u);
  EXPECT_FALSE(reader->disconnected());
  engine->close();
}

// ---------------------------------------------------------- stream engine ---

TEST(StreamEngine, AttachBeforeFirstStepSeesEveryStep) {
  fsim::SharedFs fs(4);
  auto engine = make_engine("stream", fs, "live.stream",
                            stream_config(4, "block", "blosc"), 2);
  // Attach before any begin_step: the consumer must receive step 0.
  auto reader = engine->attach(0);
  put_step(*engine, 0, 0.f);
  put_step(*engine, 1, 50.f);

  ASSERT_EQ(reader->next_step(), std::optional<std::uint64_t>(0));
  EXPECT_EQ(reader->variables(), std::vector<std::string>{"density"});
  EXPECT_EQ(as_floats(reader->get("density")), iota_floats(16));
  ASSERT_TRUE(reader->attribute("unitSI").has_value());
  EXPECT_DOUBLE_EQ(std::get<double>(*reader->attribute("unitSI")), 1.0);

  ASSERT_EQ(reader->next_step(), std::optional<std::uint64_t>(1));
  EXPECT_EQ(as_floats(reader->get("density")), iota_floats(16, 50.f));

  engine->close();
  EXPECT_EQ(reader->next_step(), std::nullopt);  // stream ended
  EXPECT_EQ(engine->steps_written(), 2u);
}

TEST(StreamEngine, AttachDoesNotReplayEarlierSteps) {
  fsim::SharedFs fs(4);
  auto engine = make_engine("stream", fs, "mid.stream",
                            stream_config(4, "block"), 2);
  put_step(*engine, 0, 0.f);
  auto reader = engine->attach(0);  // step 0 predates the attach
  put_step(*engine, 1, 50.f);
  engine->close();

  ASSERT_EQ(reader->next_step(), std::optional<std::uint64_t>(1));
  EXPECT_EQ(reader->next_step(), std::nullopt);
}

TEST(StreamEngine, DetachReleasesTheProducer) {
  fsim::SharedFs fs(4);
  // Window of 1 under the block policy: a lagging attached consumer would
  // stall the producer, so detach must release it.
  auto engine = make_engine("stream", fs, "det.stream",
                            stream_config(1, "block"), 2);
  auto reader = engine->attach(0);
  put_step(*engine, 0, 0.f);
  ASSERT_EQ(reader->next_step(), std::optional<std::uint64_t>(0));
  reader->detach();
  // With the consumer detached these publishes must not block even though
  // the window can hold a single step.
  for (std::uint64_t step = 1; step <= 4; ++step)
    put_step(*engine, step, float(step) * 10.f);
  EXPECT_EQ(reader->next_step(), std::nullopt);  // detached cursor
  engine->close();
  EXPECT_EQ(engine->steps_written(), 5u);
}

TEST(StreamEngine, BlockPolicyDeliversEveryStepBounded) {
  fsim::SharedFs fs(4);
  auto engine = make_engine("stream", fs, "blk.stream",
                            stream_config(2, "block", "blosc"), 2);
  auto* stream = dynamic_cast<StreamEngine*>(engine.get());
  ASSERT_NE(stream, nullptr);
  auto reader = engine->attach(0);

  constexpr std::uint64_t kSteps = 12;
  std::thread producer([&] {
    for (std::uint64_t step = 0; step < kSteps; ++step)
      put_step(*engine, step, float(step));
    engine->close();
  });

  std::uint64_t received = 0;
  while (auto step = reader->next_step()) {
    EXPECT_EQ(*step, received);
    EXPECT_EQ(as_floats(reader->get("density")),
              iota_floats(16, float(received)));
    ++received;
  }
  producer.join();

  EXPECT_EQ(received, kSteps);  // block never drops
  EXPECT_EQ(reader->steps_dropped(), 0u);
  EXPECT_EQ(stream->channel().steps_lost(), 0u);
  // The backpressure guarantee: the window never outgrew its bound.
  EXPECT_LE(stream->channel().peak_depth(), 2);
  EXPECT_LE(engine->peak_inflight(), 2);
}

TEST(StreamEngine, DropOldestPolicySkipsAndCounts) {
  fsim::SharedFs fs(4);
  auto engine = make_engine("stream", fs, "drop.stream",
                            stream_config(2, "drop_oldest"), 2);
  auto* stream = dynamic_cast<StreamEngine*>(engine.get());
  ASSERT_NE(stream, nullptr);
  auto reader = engine->attach(0);
  // Publish 5 steps without consuming: a window of 2 keeps the last two.
  for (std::uint64_t step = 0; step < 5; ++step)
    put_step(*engine, step, float(step));

  ASSERT_EQ(reader->next_step(), std::optional<std::uint64_t>(3));
  EXPECT_EQ(reader->steps_dropped(), 3u);
  EXPECT_EQ(as_floats(reader->get("density")), iota_floats(16, 3.f));
  ASSERT_EQ(reader->next_step(), std::optional<std::uint64_t>(4));
  EXPECT_FALSE(reader->disconnected());
  EXPECT_GE(stream->channel().steps_lost(), 3u);
  engine->close();
  EXPECT_EQ(reader->next_step(), std::nullopt);
}

TEST(StreamEngine, DisconnectPolicyCutsOffTheLaggard) {
  fsim::SharedFs fs(4);
  auto engine = make_engine("stream", fs, "cut.stream",
                            stream_config(1, "disconnect"), 2);
  auto slow = engine->attach(0);
  put_step(*engine, 0, 0.f);
  // The second publish finds the window full with `slow` still needing
  // step 0: disconnect evicts the step and cuts the consumer off.
  put_step(*engine, 1, 10.f);
  EXPECT_TRUE(slow->disconnected());
  EXPECT_EQ(slow->next_step(), std::nullopt);

  // A fresh consumer is unaffected.
  auto fresh = engine->attach(1);
  put_step(*engine, 2, 20.f);
  ASSERT_EQ(fresh->next_step(), std::optional<std::uint64_t>(2));
  engine->close();
}

TEST(StreamEngine, LifecycleErrorsAreUsageErrors) {
  fsim::SharedFs fs(4);
  auto engine = make_engine("stream", fs, "err.stream",
                            stream_config(2, "block"), 2);
  EXPECT_THROW(engine->end_step(), UsageError);         // no open step
  engine->begin_step(0);
  EXPECT_THROW(engine->begin_step(1), UsageError);      // nested step
  EXPECT_THROW(engine->close(), UsageError);            // close mid-step
  engine->end_step();
  engine->close();
  engine->close();                                      // idempotent
  EXPECT_THROW(engine->begin_step(2), UsageError);      // closed
}

TEST(StreamEngine, RejectsBadStreamKnobs) {
  fsim::SharedFs fs(4);
  EXPECT_THROW(
      make_engine("stream", fs, "bad.stream", stream_config(0, "block"), 2),
      UsageError);
  EXPECT_THROW(
      make_engine("stream", fs, "bad.stream", stream_config(2, "banana"), 2),
      UsageError);
}

TEST(StreamEngine, ConfigParsesStreamKnobsFromAdios2Toml) {
  const Json cfg = parse_toml(R"(
[adios2.engine]
type = "stream"

[adios2.engine.parameters]
StreamMaxSteps = 2
StreamPolicy = "drop_oldest"
)");
  const EngineConfig engine = EngineConfig::from_json(cfg.at("adios2"));
  EXPECT_EQ(engine.engine, EngineType::stream);
  EXPECT_EQ(engine.stream_max_steps, 2);
  EXPECT_EQ(engine.stream_policy, "drop_oldest");
}

// A TSan-facing hammer: one producer, several consumers attaching at
// different times, some detaching mid-stream, under the block policy (every
// attached consumer throttles the window, so the schedule interleaves).
TEST(StreamEngine, MultiConsumerHammer) {
  fsim::SharedFs fs(8);
  auto engine = make_engine("stream", fs, "ham.stream",
                            stream_config(3, "block", "blosc"), 2);
  auto* stream = dynamic_cast<StreamEngine*>(engine.get());
  ASSERT_NE(stream, nullptr);

  constexpr std::uint64_t kSteps = 24;
  constexpr int kConsumers = 6;

  // All consumers attach before the first publish so each one either reads
  // a prefix (detaching early) or the whole stream.
  std::vector<std::unique_ptr<EngineReader>> readers;
  for (int c = 0; c < kConsumers; ++c)
    readers.push_back(engine->attach(fsim::ClientId(c)));

  std::atomic<std::uint64_t> decoded{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      EngineReader& reader = *readers[std::size_t(c)];
      std::uint64_t expected = 0;
      while (auto step = reader.next_step()) {
        EXPECT_EQ(*step, expected);
        const auto data = reader.get("density");
        EXPECT_EQ(as_floats(data), iota_floats(16, float(*step)));
        decoded.fetch_add(1, std::memory_order_relaxed);
        ++expected;
        // Odd consumers bail out part-way: detach-mid-stream coverage.
        if (c % 2 == 1 && expected == std::uint64_t(2 + c)) {
          reader.detach();
          break;
        }
      }
    });
  }

  for (std::uint64_t step = 0; step < kSteps; ++step)
    put_step(*engine, step, float(step));
  engine->close();
  for (auto& thread : consumers) thread.join();

  EXPECT_EQ(stream->channel().steps_lost(), 0u);
  EXPECT_LE(stream->channel().peak_depth(), 3);
  // Even consumers read everything; odd ones read their prefix.
  std::uint64_t expected_total = 0;
  for (int c = 0; c < kConsumers; ++c)
    expected_total += c % 2 == 1 ? std::uint64_t(2 + c) : kSteps;
  EXPECT_EQ(decoded.load(), expected_total);
}

// ----------------------------------------------------------- query service ---

TEST(QueryService, ServesDecodedBlocksWithLruCache) {
  fsim::SharedFs fs(4);
  auto engine = make_engine("stream", fs, "q.stream",
                            stream_config(8, "block", "blosc"), 2);
  auto* stream = dynamic_cast<StreamEngine*>(engine.get());
  ASSERT_NE(stream, nullptr);

  QueryService service(*stream, 0);
  for (std::uint64_t step = 0; step < 3; ++step)
    put_step(*engine, step, float(step) * 10.f);
  engine->close();
  EXPECT_EQ(service.wait_steps(3), 3u);

  EXPECT_EQ(service.steps(), (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_EQ(service.latest_step(), std::optional<std::uint64_t>(2));
  EXPECT_EQ(service.variables(1), std::vector<std::string>{"density"});

  const auto miss = service.query(1, "density");
  ASSERT_NE(miss, nullptr);
  EXPECT_EQ(as_floats(*miss), iota_floats(16, 10.f));
  const auto hit = service.query(1, "density");
  EXPECT_EQ(hit.get(), miss.get());  // shared cached block

  const auto stats = service.stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.steps_indexed, 3u);

  // Unknown step / variable are nullptr, not exceptions.
  EXPECT_EQ(service.query(99, "density"), nullptr);
  EXPECT_EQ(service.query(1, "nope"), nullptr);
}

TEST(QueryService, RetainStepsBoundsTheIndex) {
  fsim::SharedFs fs(4);
  auto engine = make_engine("stream", fs, "ret.stream",
                            stream_config(8, "block"), 2);
  auto* stream = dynamic_cast<StreamEngine*>(engine.get());
  QueryService::Options options;
  options.retain_steps = 2;
  QueryService service(*stream, 0, options);
  for (std::uint64_t step = 0; step < 5; ++step)
    put_step(*engine, step, float(step));
  engine->close();
  service.wait_steps(5);

  EXPECT_EQ(service.steps(), (std::vector<std::uint64_t>{3, 4}));
  EXPECT_EQ(service.query(0, "density"), nullptr);  // pruned from the index
  EXPECT_NE(service.query(4, "density"), nullptr);
}

TEST(QueryService, TinyBudgetEvicts) {
  fsim::SharedFs fs(4);
  auto engine = make_engine("stream", fs, "ev.stream",
                            stream_config(8, "block"), 2);
  auto* stream = dynamic_cast<StreamEngine*>(engine.get());
  QueryService::Options options;
  options.cache_bytes = 64;  // far below one 64-byte-per-step decoded block
  options.shards = 1;
  QueryService service(*stream, 0, options);
  for (std::uint64_t step = 0; step < 4; ++step)
    put_step(*engine, step, float(step));
  engine->close();
  service.wait_steps(4);

  for (std::uint64_t step = 0; step < 4; ++step)
    ASSERT_NE(service.query(step, "density"), nullptr);
  const auto stats = service.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.misses, 4u);
}

TEST(QueryService, ConcurrentClientsShareTheCache) {
  fsim::SharedFs fs(8);
  auto engine = make_engine("stream", fs, "cc.stream",
                            stream_config(8, "block", "blosc"), 2);
  auto* stream = dynamic_cast<StreamEngine*>(engine.get());
  QueryService service(*stream, 0);

  constexpr std::uint64_t kSteps = 6;
  for (std::uint64_t step = 0; step < kSteps; ++step)
    put_step(*engine, step, float(step));
  engine->close();
  service.wait_steps(kSteps);

  constexpr int kClients = 8;
  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < 32; ++round) {
        const std::uint64_t step =
            std::uint64_t(c + round) % kSteps;
        const auto block = service.query(step, "density");
        ASSERT_NE(block, nullptr);
        EXPECT_EQ(as_floats(*block), iota_floats(16, float(step)));
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : clients) thread.join();

  const auto stats = service.stats();
  EXPECT_EQ(served.load(), std::uint64_t(kClients) * 32u);
  EXPECT_EQ(stats.queries, std::uint64_t(kClients) * 32u);
  // Each (step, var) decodes a bounded number of times (a decode race may
  // decode twice); the rest are cache hits.
  EXPECT_GE(stats.hits, stats.queries - 2u * kSteps);
  EXPECT_GT(stats.hit_rate(), 0.9);

  service.stop();
  // Queries keep working on the retained index after stop().
  EXPECT_NE(service.query(0, "density"), nullptr);
}

TEST(QueryService, LiveIngestWhileClientsQuery) {
  fsim::SharedFs fs(8);
  auto engine = make_engine("stream", fs, "live-q.stream",
                            stream_config(4, "block"), 2);
  auto* stream = dynamic_cast<StreamEngine*>(engine.get());
  QueryService service(*stream, 0);

  constexpr std::uint64_t kSteps = 16;
  std::thread producer([&] {
    for (std::uint64_t step = 0; step < kSteps; ++step)
      put_step(*engine, step, float(step));
    engine->close();
  });

  std::atomic<bool> done{false};
  std::thread client([&] {
    while (!done.load(std::memory_order_relaxed)) {
      if (const auto latest = service.latest_step()) {
        const auto block = service.query(*latest, "density");
        // The step may age out between latest_step() and query(): nullptr
        // is acceptable, a wrong payload is not.
        if (block) {
          EXPECT_EQ(as_floats(*block).at(0), float(*latest));
        }
      }
    }
  });

  EXPECT_EQ(service.wait_steps(kSteps), kSteps);
  done.store(true, std::memory_order_relaxed);
  producer.join();
  client.join();
  EXPECT_EQ(service.stats().steps_indexed, kSteps);
}

}  // namespace
}  // namespace bitio::bp
