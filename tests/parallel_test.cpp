// Concurrency tests for the block-parallel compression pipeline's shared
// infrastructure: util::ThreadPool fork/join semantics, cz::BufferPool
// recycling and stats, and an 8-thread hammer over ParallelCodec +
// BufferPool (labelled `concurrency`, so the TSan preset runs it:
// ctest --test-dir build-tsan -L concurrency).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "compress/buffer_pool.hpp"
#include "compress/parallel.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bitio {
namespace {

// ---------------------------------------------------------- thread pool ---

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(3);
  for (std::size_t n : {0u, 1u, 7u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, 4, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
  }
}

TEST(ThreadPool, ZeroWorkersDegradesToSerial) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  std::size_t sum = 0;
  // Serial inline loop: unsynchronized accumulation is safe.
  pool.parallel_for(100, 8, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, RethrowsFirstException) {
  util::ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(64, 3,
                        [&](std::size_t i) {
                          ran.fetch_add(1, std::memory_order_relaxed);
                          if (i == 13) throw UsageError("boom");
                        }),
      UsageError);
  // Remaining indices still run (blocks are independent).
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ConcurrentCallersShareThePool) {
  util::ThreadPool pool(4);
  constexpr int kCallers = 4;
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 20; ++round)
        pool.parallel_for(50, 3, [&](std::size_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), std::size_t(kCallers) * 20 * 50);
}

// ---------------------------------------------------------- buffer pool ---

TEST(BufferPool, RecyclesByCapacityClass) {
  cz::BufferPool pool;
  auto a = pool.acquire(1000);
  EXPECT_EQ(a.size(), 1000u);
  const auto* ptr = a.data();
  pool.release(std::move(a));
  // Same class, warm buffer back.
  auto b = pool.acquire(800);
  EXPECT_EQ(b.size(), 800u);
  EXPECT_EQ(b.data(), ptr);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.released, 1u);
}

TEST(BufferPool, AcquireReserveGivesEmptyWarmBuffer) {
  cz::BufferPool pool;
  auto a = pool.acquire_reserve(4096);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_GE(a.capacity(), 4096u);
  a.insert(a.end(), 3000, std::uint8_t(7));
  pool.release(std::move(a));
  auto b = pool.acquire_reserve(4000);  // same 4 KiB class: warm hit
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPool, GrownBuffersComeBackToTheLargerClass) {
  cz::BufferPool pool;
  auto a = pool.acquire(64);
  a.resize(std::size_t(1) << 17);  // grew while in use
  pool.release(std::move(a));
  auto b = pool.acquire(100000);  // served by the grown buffer's class
  EXPECT_EQ(pool.stats().hits, 1u);
  pool.release(std::move(b));
  pool.trim();
  auto c = pool.acquire(100000);  // trim dropped the freelists
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST(BufferPool, ZeroCapacityReleaseIgnored) {
  cz::BufferPool pool;
  pool.release(std::vector<std::uint8_t>{});
  EXPECT_EQ(pool.stats().released, 0u);
}

TEST(BufferPool, ResetStatsKeepsWarmFreelists) {
  cz::BufferPool pool;
  pool.release(pool.acquire(4096));
  pool.reset_stats();
  EXPECT_EQ(pool.stats().hits, 0u);
  pool.acquire(4096);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
}

// --------------------------------------------------------------- hammer ---

TEST(ParallelHammer, CodecAndPoolFromEightThreads) {
  // 8 threads concurrently compress/decompress through shared ParallelCodec
  // instances (which share ThreadPool::shared() and a common BufferPool)
  // while recycling buffers through the same pool — the TSan target for the
  // whole pipeline.
  cz::BufferPool buffers;
  util::ThreadPool pool(3);
  const cz::ParallelCodec codec(cz::make_blosc_codec(4), 4, 4096, &pool,
                                &buffers);

  constexpr int kThreads = 8;
  constexpr int kRounds = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(std::uint64_t(t) + 1);
      for (int round = 0; round < kRounds; ++round) {
        // Mixed sizes: multi-block, single-block, empty.
        const std::size_t n = std::size_t(rng.below(3)) == 0
                                  ? 0
                                  : 3000 + std::size_t(rng.below(30000));
        auto data = buffers.acquire(n);
        float x = float(t);
        for (std::size_t i = 0; i + 4 <= n; i += 4) {
          x += 0.01f * float(rng.normal());
          std::memcpy(&data[i], &x, 4);
        }
        cz::Bytes frame;
        codec.compress_append(cz::ByteSpan(data.data(), data.size()), frame);
        const cz::Bytes back = codec.decompress(frame);
        if (back != data) failures.fetch_add(1, std::memory_order_relaxed);
        buffers.release(std::move(data));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // Steady state: after the first rounds the pool serves from freelists.
  EXPECT_GT(buffers.stats().hits, 0u);
}

}  // namespace
}  // namespace bitio
