// bitio-analyzer internals: units for the semantic index building blocks
// (tokenizer, symbol table, include scanner) plus seeded-violation fixture
// trees for the cross-file rules (lock-order, wire-format,
// unchecked-status, pool-pairing, submit-reap, include-graph), each
// asserting the exact
// file:line of the seeded violation.  Finally the cross-file rules run
// against the real sources and must come back clean.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "index.hpp"
#include "lint.hpp"

namespace fs = std::filesystem;
using bitio::lint::Diagnostic;
using bitio::lint::SemanticIndex;
using bitio::lint::Token;

namespace {

class FixtureTree {
public:
  FixtureTree() : root_(fs::path(testing::TempDir()) / unique_name()) {
    fs::create_directories(root_);
  }
  ~FixtureTree() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  std::string root() const { return root_.string(); }

  void write(const std::string& rel, const std::string& text) {
    const fs::path path = root_ / rel;
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary);
    out << text;
  }

private:
  static std::string unique_name() {
    static int counter = 0;
    return "analyzer_fixture_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++);
  }

  fs::path root_;
};

std::size_t expect_line(const std::string& text, const std::string& needle) {
  const std::size_t at = text.find(needle);
  EXPECT_NE(at, std::string::npos) << "fixture lost marker: " << needle;
  return bitio::lint::line_of(text, at);
}

bool has_diag(const std::vector<Diagnostic>& diags, const std::string& file,
              std::size_t line, const std::string& substring) {
  for (const auto& d : diags) {
    if (d.file == file && d.line == line &&
        d.message.find(substring) != std::string::npos)
      return true;
  }
  return false;
}

std::string dump(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const auto& d : diags) out += bitio::lint::format_diagnostic(d) + "\n";
  return out;
}

std::vector<std::string> texts(const std::vector<Token>& toks) {
  std::vector<std::string> out;
  for (const auto& t : toks) out.push_back(t.text);
  return out;
}

bool has_token(const std::vector<Token>& toks, const std::string& text) {
  for (const auto& t : toks)
    if (t.text == text) return true;
  return false;
}

}  // namespace

// --- tokenizer --------------------------------------------------------------

TEST(AnalyzerTokenizer, RawStringIsOneToken) {
  const auto toks = bitio::lint::tokenize(
      "auto s = R\"x(quote \" paren ) brace { )y\" )x\";\nint after;\n");
  // The raw string survives as a single literal token; the braces and
  // quotes inside it cannot desynchronize anything downstream.
  bool found = false;
  for (const auto& t : toks)
    if (t.kind == Token::Kind::str &&
        t.text.find("paren ) brace {") != std::string::npos)
      found = true;
  EXPECT_TRUE(found);
  EXPECT_TRUE(has_token(toks, "after"));
  EXPECT_FALSE(has_token(toks, "paren"));
}

TEST(AnalyzerTokenizer, NestedTemplatesAndScopeFusion) {
  const auto toks =
      bitio::lint::tokenize("std::map<std::string, std::vector<int>> m;");
  const auto t = texts(toks);
  const std::vector<std::string> expected = {
      "std", "::", "map", "<",   "std", "::", "string", ",", "std", "::",
      "vector", "<", "int", ">", ">",   "m",  ";"};
  EXPECT_EQ(t, expected);
}

TEST(AnalyzerTokenizer, ArrowFusedAndStringsOpaque) {
  const auto toks = bitio::lint::tokenize(
      "ptr->call(\"a // not a comment\");\nchar c = '}';\n");
  EXPECT_TRUE(has_token(toks, "->"));
  EXPECT_FALSE(has_token(toks, "comment"));
  // The char literal is one token, so its brace cannot unbalance matching.
  bool chr = false;
  for (const auto& t : toks)
    if (t.kind == Token::Kind::chr && t.text == "'}'") chr = true;
  EXPECT_TRUE(chr);
}

TEST(AnalyzerTokenizer, PreprocessorLinesSkipped) {
  const auto toks = bitio::lint::tokenize(
      "#define FOO(x) expand(x) \\\n    more(x)\nint kept = 1;\n");
  EXPECT_FALSE(has_token(toks, "expand"));
  EXPECT_FALSE(has_token(toks, "more"));  // continuation line skipped too
  EXPECT_TRUE(has_token(toks, "kept"));
  // Line numbers survive the skip: `kept` sits on line 3.
  for (const auto& t : toks) {
    if (t.text == "kept") {
      EXPECT_EQ(t.line, 3u);
    }
  }
}

// --- include scanner --------------------------------------------------------

TEST(AnalyzerIncludes, ConditionalIncludesAreKept) {
  const std::string text =
      "#if defined(USE_A)\n"
      "#include \"a/first.hpp\"\n"
      "#else\n"
      "#include <vector>\n"
      "#endif\n"
      "#  include \"b/second.hpp\"\n";
  const auto incs = bitio::lint::scan_includes(text);
  ASSERT_EQ(incs.size(), 3u);
  EXPECT_EQ(incs[0].target, "a/first.hpp");
  EXPECT_FALSE(incs[0].angled);
  EXPECT_EQ(incs[0].line, 2u);
  EXPECT_EQ(incs[1].target, "vector");
  EXPECT_TRUE(incs[1].angled);
  EXPECT_EQ(incs[2].target, "b/second.hpp");
  EXPECT_EQ(incs[2].line, 6u);
}

// --- symbol table -----------------------------------------------------------

TEST(AnalyzerSymbols, ClassMembersMethodsAndAnnotations) {
  FixtureTree tree;
  const std::string header =
      "#include \"util/thread_annotations.hpp\"\n"
      "namespace bitio::bp {\n"
      "class Base {};\n"
      "class Thing : public Base {\n"
      "public:\n"
      "  Thing(int seed, std::string name);\n"
      "  void poke() REQUIRES(mutex_);\n"
      "  int peek() const;\n"
      "private:\n"
      "  util::Mutex mutex_ ACQUIRED_BEFORE(drain_mutex_);\n"
      "  util::Mutex drain_mutex_;\n"
      "  std::map<std::string, std::vector<int>> table_;\n"
      "};\n"
      "}  // namespace bitio::bp\n";
  tree.write("src/bp/thing.hpp", header);
  tree.write("src/bp/thing.cpp",
             "#include \"bp/thing.hpp\"\n"
             "namespace bitio::bp {\n"
             "int Thing::peek() const { return 1; }\n"
             "}\n");

  const SemanticIndex index = SemanticIndex::build(tree.root());
  const auto* cls = index.find_class("Thing");
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(cls->name, "bp::Thing");
  ASSERT_EQ(cls->bases.size(), 1u);
  EXPECT_EQ(cls->bases[0], "Base");

  ASSERT_EQ(cls->members.size(), 3u);
  EXPECT_EQ(cls->members[0].name, "mutex_");  // not the annotation's arg
  EXPECT_EQ(cls->members[0].type, "util::Mutex");
  EXPECT_NE(cls->members[0].annotations.find("ACQUIRED_BEFORE"),
            std::string::npos);
  EXPECT_NE(cls->members[0].annotations.find("drain_mutex_"),
            std::string::npos);
  EXPECT_EQ(cls->members[1].name, "drain_mutex_");
  EXPECT_EQ(cls->members[2].name, "table_");
  EXPECT_NE(cls->members[2].type.find("map"), std::string::npos);

  const auto* poke = index.method_declaration(*cls, "poke");
  ASSERT_NE(poke, nullptr);
  EXPECT_NE(poke->annotations.find("REQUIRES"), std::string::npos);
  EXPECT_FALSE(poke->has_body());

  const auto defs = index.method_definitions(*cls, "peek");
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_TRUE(defs[0].fn->has_body());
  EXPECT_EQ(defs[0].file->rel, "src/bp/thing.cpp");
}

// --- include-graph ----------------------------------------------------------

TEST(AnalyzerIncludeGraph, FlagsCycleAtClosingInclude) {
  FixtureTree tree;
  tree.write("src/core/a.hpp", "#pragma once\n#include \"core/b.hpp\"\n");
  const std::string b = "#pragma once\n#include \"core/a.hpp\"\n";
  tree.write("src/core/b.hpp", b);
  tree.write("src/core/ok.hpp", "#pragma once\n#include <vector>\n");

  const auto diags = bitio::lint::check_include_graph(tree.root());
  ASSERT_EQ(diags.size(), 1u) << dump(diags);
  EXPECT_TRUE(has_diag(diags, "src/core/b.hpp",
                       expect_line(b, "#include \"core/a.hpp\""),
                       "include cycle"))
      << dump(diags);
}

TEST(AnalyzerIncludeGraph, FlagsBpInternalIncludeOutsideBp) {
  FixtureTree tree;
  const std::string user =
      "#include \"bp/engine.hpp\"\n"
      "#include \"bp/stream.hpp\"\n";
  tree.write("src/core/user.cpp", user);
  // bench/ may include bp internals (micro-benchmarks drive them directly).
  tree.write("bench/micro.cpp", "#include \"bp/stream.hpp\"\n");

  const auto diags = bitio::lint::check_include_graph(tree.root());
  ASSERT_EQ(diags.size(), 1u) << dump(diags);
  EXPECT_TRUE(has_diag(diags, "src/core/user.cpp",
                       expect_line(user, "#include \"bp/stream.hpp\""),
                       "writer internals"))
      << dump(diags);
}

// --- lock-order -------------------------------------------------------------

TEST(AnalyzerLockOrder, FlagsTwoMutexInversion) {
  FixtureTree tree;
  const std::string src =
      "namespace bitio::core {\n"
      "class Pair {\n"
      "public:\n"
      "  void forward() {\n"
      "    util::MutexLock l1(mu_a_);\n"
      "    util::MutexLock l2(mu_b_);\n"
      "  }\n"
      "  void backward() {\n"
      "    util::MutexLock l3(mu_b_);\n"
      "    util::MutexLock l4(mu_a_);\n"
      "  }\n"
      "private:\n"
      "  util::Mutex mu_a_;\n"
      "  util::Mutex mu_b_;\n"
      "};\n"
      "}  // namespace bitio::core\n";
  tree.write("src/core/pair.cpp", src);

  const auto diags = bitio::lint::check_lock_order(tree.root());
  ASSERT_EQ(diags.size(), 1u) << dump(diags);
  EXPECT_EQ(diags[0].rule, "lock-order");
  // The closing edge is backward()'s second acquisition (b held, a taken).
  EXPECT_TRUE(has_diag(diags, "src/core/pair.cpp", expect_line(src, "l4"),
                       "lock-order cycle"))
      << dump(diags);
  EXPECT_NE(diags[0].message.find("mu_a_"), std::string::npos);
  EXPECT_NE(diags[0].message.find("mu_b_"), std::string::npos);
}

TEST(AnalyzerLockOrder, ConsistentOrderIsClean) {
  FixtureTree tree;
  tree.write("src/core/pair.cpp",
             "namespace bitio::core {\n"
             "class Pair {\n"
             "public:\n"
             "  void one() {\n"
             "    util::MutexLock l1(mu_a_);\n"
             "    util::MutexLock l2(mu_b_);\n"
             "  }\n"
             "  void two() {\n"
             "    util::MutexLock l3(mu_a_);\n"
             "    util::MutexLock l4(mu_b_);\n"
             "  }\n"
             "private:\n"
             "  util::Mutex mu_a_;\n"
             "  util::Mutex mu_b_;\n"
             "};\n"
             "}\n");
  const auto diags = bitio::lint::check_lock_order(tree.root());
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

TEST(AnalyzerLockOrder, CrossFunctionCycleThroughCall) {
  FixtureTree tree;
  const std::string src =
      "namespace bitio::core {\n"
      "class Owner {\n"
      "public:\n"
      "  void outer() {\n"
      "    util::MutexLock l1(mu_a_);\n"
      "    helper();\n"
      "  }\n"
      "  void other() {\n"
      "    util::MutexLock l2(mu_b_);\n"
      "    util::MutexLock l3(mu_a_);\n"
      "  }\n"
      "private:\n"
      "  void helper() {\n"
      "    util::MutexLock l4(mu_b_);\n"
      "  }\n"
      "  util::Mutex mu_a_;\n"
      "  util::Mutex mu_b_;\n"
      "};\n"
      "}  // namespace bitio::core\n";
  tree.write("src/core/owner.cpp", src);

  // outer() holds a and calls helper() which takes b; other() inverts.
  const auto diags = bitio::lint::check_lock_order(tree.root());
  ASSERT_EQ(diags.size(), 1u) << dump(diags);
  EXPECT_EQ(diags[0].rule, "lock-order");
  EXPECT_NE(diags[0].message.find("cycle"), std::string::npos);
}

// --- wire-format ------------------------------------------------------------

namespace {

std::vector<bitio::lint::FormatSurface> toy_surface() {
  return {{"toy", "src/toy/fmt.cpp", "encode", "src/toy/fmt.hpp",
           "kToyVersion"}};
}

}  // namespace

TEST(AnalyzerWireFormat, FieldChangeWithoutVersionBumpFails) {
  FixtureTree tree;
  tree.write("src/toy/fmt.hpp", "constexpr int kToyVersion = 1;\n");
  const std::string v1 =
      "void encode(Bytes& out) {\n"
      "  out.push_back('T');\n"
      "  put_u32(out, 7);\n"
      "}\n";
  tree.write("src/toy/fmt.cpp", v1);

  // No golden yet: the check demands one, update writes it, check passes.
  {
    const SemanticIndex index = SemanticIndex::build(tree.root());
    auto diags =
        bitio::lint::check_wire_format(index, toy_surface(), "golden.txt");
    ASSERT_EQ(diags.size(), 1u) << dump(diags);
    EXPECT_NE(diags[0].message.find("missing"), std::string::npos);
    diags =
        bitio::lint::update_fingerprints(index, toy_surface(), "golden.txt");
    EXPECT_TRUE(diags.empty()) << dump(diags);
    diags =
        bitio::lint::check_wire_format(index, toy_surface(), "golden.txt");
    EXPECT_TRUE(diags.empty()) << dump(diags);
  }

  // Serialize one more field without touching kToyVersion: the check fails
  // at the serializer, and --update-fingerprints refuses to look away.
  const std::string v2 =
      "void encode(Bytes& out) {\n"
      "  out.push_back('T');\n"
      "  out.push_back('X');\n"
      "  put_u32(out, 7);\n"
      "}\n";
  tree.write("src/toy/fmt.cpp", v2);
  {
    const SemanticIndex index = SemanticIndex::build(tree.root());
    auto diags =
        bitio::lint::check_wire_format(index, toy_surface(), "golden.txt");
    ASSERT_EQ(diags.size(), 1u) << dump(diags);
    EXPECT_TRUE(has_diag(diags, "src/toy/fmt.cpp",
                         expect_line(v2, "void encode"),
                         "bump the version constant"))
        << dump(diags);
    diags =
        bitio::lint::update_fingerprints(index, toy_surface(), "golden.txt");
    ASSERT_EQ(diags.size(), 1u) << dump(diags);
    EXPECT_NE(diags[0].message.find("refusing"), std::string::npos);
  }

  // Bumping the version unblocks the update, after which the check passes.
  tree.write("src/toy/fmt.hpp", "constexpr int kToyVersion = 2;\n");
  {
    const SemanticIndex index = SemanticIndex::build(tree.root());
    auto diags =
        bitio::lint::check_wire_format(index, toy_surface(), "golden.txt");
    ASSERT_EQ(diags.size(), 1u) << dump(diags);  // stale until regenerated
    EXPECT_NE(diags[0].message.find("--update-fingerprints"),
              std::string::npos);
    diags =
        bitio::lint::update_fingerprints(index, toy_surface(), "golden.txt");
    EXPECT_TRUE(diags.empty()) << dump(diags);
    diags =
        bitio::lint::check_wire_format(index, toy_surface(), "golden.txt");
    EXPECT_TRUE(diags.empty()) << dump(diags);
  }
}

TEST(AnalyzerWireFormat, FormattingOnlyChangeKeepsFingerprint) {
  FixtureTree tree;
  tree.write("src/toy/fmt.hpp", "constexpr int kToyVersion = 1;\n");
  tree.write("src/toy/fmt.cpp",
             "void encode(Bytes& out) {\n"
             "  out.push_back('T');\n"
             "}\n");
  {
    const SemanticIndex index = SemanticIndex::build(tree.root());
    const auto diags =
        bitio::lint::update_fingerprints(index, toy_surface(), "golden.txt");
    ASSERT_TRUE(diags.empty()) << dump(diags);
  }
  // Reformat: comments, whitespace, line breaks — the fingerprint holds.
  tree.write("src/toy/fmt.cpp",
             "// the toy wire format\n"
             "void encode(Bytes& out)\n"
             "{\n"
             "  out.push_back(\n"
             "      'T');  // magic\n"
             "}\n");
  const SemanticIndex index = SemanticIndex::build(tree.root());
  const auto diags =
      bitio::lint::check_wire_format(index, toy_surface(), "golden.txt");
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

// --- unchecked-status -------------------------------------------------------

TEST(AnalyzerUncheckedStatus, FlagsDroppedResultOnly) {
  FixtureTree tree;
  tree.write("src/fsim/client.hpp",
             "namespace bitio::fsim {\n"
             "class FsClient {\n"
             "public:\n"
             "  int open_file(const char* path);\n"
             "  int close_file(int fd);\n"
             "  void note(int fd);\n"
             "};\n"
             "}\n");
  const std::string use =
      "#include \"fsim/client.hpp\"\n"
      "namespace bitio::core {\n"
      "void use(fsim::FsClient& client) {\n"
      "  client.open_file(\"a\");\n"
      "  int fd = client.open_file(\"b\");\n"
      "  (void)client.close_file(fd);\n"
      "  client.note(fd);\n"
      "  client.close_file(fd);  // lint: ignore-status\n"
      "}\n"
      "}\n";
  tree.write("src/core/use.cpp", use);

  const auto diags = bitio::lint::check_unchecked_status(tree.root());
  ASSERT_EQ(diags.size(), 1u) << dump(diags);
  EXPECT_TRUE(has_diag(diags, "src/core/use.cpp",
                       expect_line(use, "client.open_file(\"a\")"),
                       "drops"))
      << dump(diags);
  EXPECT_EQ(diags[0].rule, "unchecked-status");
}

// --- pool-pairing -----------------------------------------------------------

TEST(AnalyzerPoolPairing, FlagsLeakAndEarlyReturn) {
  FixtureTree tree;
  tree.write("src/compress/pool.hpp",
             "namespace bitio::cz {\n"
             "class BufferPool {\n"
             "public:\n"
             "  Bytes acquire(std::size_t n);\n"
             "  void release(Bytes b);\n"
             "};\n"
             "}\n");
  const std::string use =
      "#include \"compress/pool.hpp\"\n"
      "namespace bitio::core {\n"
      "int bail_path(cz::BufferPool& pool, bool bail) {\n"
      "  Bytes buf = pool.acquire(16);\n"
      "  if (bail) return -1;\n"
      "  pool.release(std::move(buf));\n"
      "  return 0;\n"
      "}\n"
      "void drops(cz::BufferPool& pool) {\n"
      "  Bytes lost = pool.acquire(8);\n"
      "}\n"
      "void fine(cz::BufferPool& pool) {\n"
      "  Bytes buf = pool.acquire(8);\n"
      "  pool.release(std::move(buf));\n"
      "}\n"
      "}\n";
  tree.write("src/core/poolsites.cpp", use);

  const auto diags = bitio::lint::check_pool_pairing(tree.root());
  ASSERT_EQ(diags.size(), 2u) << dump(diags);
  EXPECT_TRUE(has_diag(diags, "src/core/poolsites.cpp",
                       expect_line(use, "if (bail) return -1;"),
                       "early return leaks"))
      << dump(diags);
  EXPECT_TRUE(has_diag(diags, "src/core/poolsites.cpp",
                       expect_line(use, "pool.acquire(8);"),
                       "never released"))
      << dump(diags);
}

// --- submit-reap ------------------------------------------------------------

TEST(AnalyzerSubmitReap, FlagsUnreapedSubmitAndEarlyReturn) {
  FixtureTree tree;
  tree.write("src/fsim/ring.hpp",
             "namespace bitio::fsim {\n"
             "class SubmissionQueue {\n"
             "public:\n"
             "  void push(Sqe sqe);\n"
             "  std::size_t submit();\n"
             "  std::vector<Cqe> reap_all();\n"
             "  CompletionQueue& completions();\n"
             "};\n"
             "}\n");
  const std::string use =
      "#include \"fsim/ring.hpp\"\n"
      "namespace bitio::core {\n"
      "void drain_helper(fsim::SubmissionQueue& sq);\n"
      "std::size_t forgets(fsim::SubmissionQueue& sq) {\n"
      "  const std::size_t n = sq.submit();\n"
      "  return n;\n"
      "}\n"
      "int bails(fsim::SubmissionQueue& sq, bool bail) {\n"
      "  sq.submit();\n"
      "  if (bail) return -1;\n"
      "  use_cqes(sq.reap_all());\n"
      "  return 0;\n"
      "}\n"
      "void fine(fsim::SubmissionQueue& sq) {\n"
      "  sq.submit();\n"
      "  use_cqes(sq.reap_all());\n"
      "}\n"
      "void delegates(fsim::SubmissionQueue& sq) {\n"
      "  sq.submit();\n"
      "  drain_helper(sq);\n"
      "}\n"
      "void opts_out(fsim::SubmissionQueue& sq) {\n"
      "  sq.submit();  // lint: ignore-reap\n"
      "}\n"
      "}\n";
  tree.write("src/core/ringsites.cpp", use);

  const auto diags = bitio::lint::check_submit_reap(tree.root());
  ASSERT_EQ(diags.size(), 2u) << dump(diags);
  EXPECT_TRUE(has_diag(diags, "src/core/ringsites.cpp",
                       expect_line(use, "const std::size_t n = sq.submit();"),
                       "never reaped"))
      << dump(diags);
  EXPECT_TRUE(has_diag(diags, "src/core/ringsites.cpp",
                       expect_line(use, "if (bail) return -1;"),
                       "early return drops"))
      << dump(diags);
  EXPECT_EQ(diags[0].rule, "submit-reap");
}

// --- real tree --------------------------------------------------------------

TEST(AnalyzerRealTree, CrossFileRulesPass) {
  const SemanticIndex index = SemanticIndex::build(BITIO_SOURCE_ROOT);
  EXPECT_TRUE(bitio::lint::check_lock_order(index).empty())
      << dump(bitio::lint::check_lock_order(index));
  EXPECT_TRUE(bitio::lint::check_wire_format(index).empty())
      << dump(bitio::lint::check_wire_format(index));
  EXPECT_TRUE(bitio::lint::check_unchecked_status(index).empty())
      << dump(bitio::lint::check_unchecked_status(index));
  EXPECT_TRUE(bitio::lint::check_pool_pairing(index).empty())
      << dump(bitio::lint::check_pool_pairing(index));
  EXPECT_TRUE(bitio::lint::check_submit_reap(index).empty())
      << dump(bitio::lint::check_submit_reap(index));
  EXPECT_TRUE(bitio::lint::check_include_graph(index).empty())
      << dump(bitio::lint::check_include_graph(index));
}

TEST(AnalyzerRealTree, LockOrderDotDescribesRealMutexes) {
  const SemanticIndex index = SemanticIndex::build(BITIO_SOURCE_ROOT);
  const std::string dot = bitio::lint::lock_order_dot(index);
  EXPECT_NE(dot.find("digraph lock_order"), std::string::npos);
  // The bp writer's drain handshake is the canonical ordered pair.
  EXPECT_NE(dot.find("mutex_"), std::string::npos);
}
