// End-to-end integration tests across the whole stack: live SPMD PIC runs
// writing through both I/O paths, full read-back verification, Darshan
// capture of a real run, and the original-vs-openPMD contrast on live (not
// synthetic) workloads.
#include <gtest/gtest.h>

#include <cmath>

#include "core/adaptor.hpp"
#include "core/diagnostics_sink.hpp"
#include "darshan/darshan.hpp"
#include "fsim/system_profiles.hpp"
#include "picmc/checkpoint.hpp"
#include "picmc/diagnostics.hpp"
#include "picmc/serial_io.hpp"
#include "smpi/comm.hpp"

namespace bitio {
namespace {

using core::Bit1IoConfig;
using core::Bit1OpenPmdAdaptor;
using picmc::Diagnostics;
using picmc::SimConfig;
using picmc::Simulation;

SimConfig test_case() {
  auto config = SimConfig::ionization_case(48, 8);
  config.last_step = 60;
  config.datfile = 20;
  config.dmpstep = 60;
  return config;
}

TEST(Integration, SpmdRunWritesBothPathsAndDecaysNeutrals) {
  fsim::SharedFs fs(16);
  const int nranks = 4;
  const auto config = test_case();
  Bit1IoConfig io;
  io.ranks_per_node = nranks;

  // Both output paths behind the same seam, selected only by config.mode.
  Bit1IoConfig original_io = io;
  original_io.mode = core::IoMode::original;
  auto original =
      core::make_diagnostics_sink(fs, "original_run", original_io, nranks);
  auto openpmd = core::make_diagnostics_sink(fs, "openpmd_run", io, nranks);
  ASSERT_EQ(original->sink_name(), "original");
  ASSERT_EQ(openpmd->sink_name(), "openpmd");
  auto& serial_sink = dynamic_cast<core::SerialDiagnosticsSink&>(*original);

  double neutrals_start = 0.0, neutrals_end = 0.0;
  smpi::run_spmd(nranks, [&](smpi::Comm& comm) {
    Simulation sim(config, comm.rank(), comm.size());
    sim.initialize();
    serial_sink.writer(comm.rank()).write_input_echo(config);

    const double start = comm.allreduce(
        sim.species_named("D").particles.total_weight(), smpi::Op::sum);
    if (comm.rank() == 0) neutrals_start = start;

    auto reduce = [&](std::span<double> density) {
      for (auto& v : density) v = comm.allreduce(v, smpi::Op::sum);
    };
    sim.run(reduce, [&](Simulation& s) {
      if (s.current_step() % config.datfile != 0) return;
      const auto snap = Diagnostics::sample_now(s);
      original->stage_diagnostics(comm.rank(), s, snap);
      openpmd->stage_diagnostics(comm.rank(), s, snap);
      openpmd->stage_checkpoint(comm.rank(), s);
      comm.barrier();
      if (comm.rank() == 0) {
        const double t = double(s.current_step()) * config.dt;
        original->flush_diagnostics(s.current_step(), t);
        openpmd->flush_diagnostics(s.current_step(), t);
        openpmd->flush_checkpoint();
      }
      comm.barrier();
    });

    const double end = comm.allreduce(
        sim.species_named("D").particles.total_weight(), smpi::Op::sum);
    if (comm.rank() == 0) neutrals_end = end;
  });
  original->close();
  openpmd->close();

  // Physics: neutrals decayed, and by roughly the rate-equation amount.
  EXPECT_LT(neutrals_end, neutrals_start);
  const double t = double(config.last_step) * config.dt;
  const double expected =
      neutrals_start * std::exp(-config.ionization_rate * t);
  EXPECT_NEAR(neutrals_end, expected, 0.1 * neutrals_start);

  // File population: original = 2/rank + input echo + globals written;
  // openPMD = exactly 6 (both series, 1 node / default aggregation).
  EXPECT_EQ(fs.store().list_recursive("openpmd_run").size(), 6u);
  EXPECT_GE(fs.store().list_recursive("original_run").size(),
            std::size_t(2 * nranks + 1));

  // Read-back: the last iteration's per-rank particle counts must sum to
  // the total electron count at the end of the run.
  pmd::Series series(fs, "openpmd_run/dat_file.bp4",
                     pmd::Access::read_only);
  const auto iterations = series.iterations();
  ASSERT_FALSE(iterations.empty());
  auto& last = series.read_iteration(iterations.back());
  const auto counts =
      last.mesh("particle_count_e").component().load<std::uint64_t>();
  ASSERT_EQ(counts.size(), std::size_t(nranks));

  // Restart every rank from the openPMD checkpoint and compare against the
  // per-rank counts recorded in the diagnostics.
  std::uint64_t restored_total = 0;
  for (int rank = 0; rank < nranks; ++rank) {
    Simulation restored(config, rank, nranks);
    Bit1OpenPmdAdaptor::restore(fs, "openpmd_run", io, restored);
    EXPECT_EQ(restored.current_step(), 60u);
    restored_total += restored.species_named("e").particles.size();
  }
  std::uint64_t diag_total = 0;
  for (auto c : counts) diag_total += c;
  EXPECT_EQ(restored_total, diag_total);
}

TEST(Integration, DarshanSeesBothPathsOfALiveRun) {
  fsim::SharedFs fs(16);
  const auto config = test_case();
  Simulation sim(config);
  sim.initialize();
  sim.run();

  picmc::Bit1SerialWriter serial(fs, "orig", 0, 1);
  serial.write_diagnostics(sim, Diagnostics::sample_now(sim));
  std::vector<std::vector<std::uint8_t>> states{picmc::save_checkpoint(sim)};
  serial.write_checkpoint(states);

  Bit1IoConfig io;
  io.ranks_per_node = 1;
  {
    Bit1OpenPmdAdaptor adaptor(fs, "pmd", io, 1);
    adaptor.stage_diagnostics(0, sim, Diagnostics::sample_now(sim));
    adaptor.flush_diagnostics(60, 6.0);
    adaptor.close();
  }

  const auto replay =
      fsim::replay_trace(fsim::dardel(), fs.store(), fs.trace(), 1);
  const auto log = darshan::capture(fs, replay, {"bit1", 1, 0.0, "/lustre"});

  // Darshan must account for at least every byte the store holds; rewrites
  // of the md.idx header count twice in the written-bytes counter, so allow
  // a small surplus.
  std::uint64_t store_bytes = 0;
  for (const auto* file : fs.store().all_files()) store_bytes += file->size;
  EXPECT_GE(log.total_bytes_written(), store_bytes);
  EXPECT_LE(log.total_bytes_written(), store_bytes + 64);

  // The original path's small-record writes dominate the call counts (the
  // v6 footer costs two extra metadata writes per container close, so the
  // openpmd side is slightly chattier than under v5).
  std::uint64_t original_calls = 0, openpmd_calls = 0;
  for (const auto& record : log.records) {
    if (record.path.rfind("orig", 0) == 0) original_calls += record.writes;
    if (record.path.rfind("pmd", 0) == 0) openpmd_calls += record.writes;
  }
  EXPECT_GT(original_calls, 2 * openpmd_calls);
}

TEST(Integration, SerialDmpAndOpenPmdCheckpointAgree) {
  // The same state checkpointed through both mechanisms restores
  // identically.
  fsim::SharedFs fs(8);
  const auto config = test_case();
  Simulation sim(config);
  sim.initialize();
  while (sim.current_step() < 30) sim.step();

  // Original: gathered binary .dmp.
  picmc::Bit1SerialWriter serial(fs, "orig", 0, 1);
  std::vector<std::vector<std::uint8_t>> states{picmc::save_checkpoint(sim)};
  serial.write_checkpoint(states);

  // openPMD: iteration-0 rewrite.
  Bit1IoConfig io;
  io.ranks_per_node = 1;
  {
    Bit1OpenPmdAdaptor adaptor(fs, "pmd", io, 1);
    adaptor.stage_checkpoint(0, sim);
    adaptor.flush_checkpoint();
    adaptor.close();
  }

  Simulation from_dmp(config);
  picmc::load_checkpoint(from_dmp, serial.read_checkpoint()[0]);
  Simulation from_pmd(config);
  Bit1OpenPmdAdaptor::restore(fs, "pmd", io, from_pmd);

  ASSERT_EQ(from_dmp.local_particles(), from_pmd.local_particles());
  for (std::size_t s = 0; s < sim.species_count(); ++s) {
    EXPECT_EQ(from_dmp.species(s).particles.x(),
              from_pmd.species(s).particles.x());
    EXPECT_EQ(from_dmp.species(s).particles.vz(),
              from_pmd.species(s).particles.vz());
  }
  // Both continue identically.
  from_dmp.step();
  from_pmd.step();
  EXPECT_EQ(from_dmp.species(0).particles.x(),
            from_pmd.species(0).particles.x());
}

TEST(Integration, CompressedContainerRoundTripsLiveData) {
  // Full pipeline with a real codec: live particle data -> blosc-compressed
  // BP4 chunks -> decompress on read -> bit-exact doubles.
  fsim::SharedFs fs(8);
  auto config = test_case();
  Simulation sim(config);
  sim.initialize();
  sim.run();

  Bit1IoConfig io;
  io.ranks_per_node = 1;
  io.codec = "blosc";
  {
    Bit1OpenPmdAdaptor adaptor(fs, "z", io, 1);
    adaptor.stage_checkpoint(0, sim);
    adaptor.flush_checkpoint();
    adaptor.close();
  }
  Simulation restored(config);
  Bit1OpenPmdAdaptor::restore(fs, "z", io, restored);
  for (std::size_t s = 0; s < sim.species_count(); ++s) {
    EXPECT_EQ(restored.species(s).particles.x(),
              sim.species(s).particles.x());
    EXPECT_EQ(restored.species(s).particles.w(),
              sim.species(s).particles.w());
  }
}

}  // namespace
}  // namespace bitio
