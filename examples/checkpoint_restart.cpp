// Checkpoint/restart round trip — the resilience mechanism Section III-B
// builds on iteration 0.  Runs a simulation half way, checkpoints through
// the openPMD adaptor, "crashes", restores into a fresh Simulation, and
// verifies the continuation is bit-exact against an uninterrupted run.
#include <cstdio>

#include "core/adaptor.hpp"
#include "picmc/simulation.hpp"

using namespace bitio;

int main() {
  fsim::SharedFs fs(8);
  auto config = picmc::SimConfig::ionization_case(/*cells=*/64, /*ppc=*/16);
  config.last_step = 200;

  core::Bit1IoConfig io;
  io.mode = core::IoMode::openpmd;
  io.ranks_per_node = 1;

  // Reference: run straight to the end.
  picmc::Simulation reference(config);
  reference.initialize();
  reference.run();

  // Interrupted run: stop at step 100, checkpoint, "crash".
  {
    picmc::Simulation sim(config);
    sim.initialize();
    while (sim.current_step() < 100) sim.step();
    core::Bit1OpenPmdAdaptor adaptor(fs, "ckpt_run", io, 1);
    adaptor.stage_checkpoint(0, sim);
    adaptor.flush_checkpoint();
    adaptor.close();
    std::printf("checkpointed at step %llu (%llu particles)\n",
                static_cast<unsigned long long>(sim.current_step()),
                static_cast<unsigned long long>(sim.local_particles()));
  }

  // Restart from the container and continue to the end.
  picmc::Simulation restored(config);
  core::Bit1OpenPmdAdaptor::restore(fs, "ckpt_run", io, restored);
  std::printf("restored at step %llu\n",
              static_cast<unsigned long long>(restored.current_step()));
  restored.run();

  // The continuation must be bit-exact (particle state + RNG state).
  bool identical = restored.local_particles() == reference.local_particles();
  for (std::size_t s = 0; identical && s < reference.species_count(); ++s) {
    identical = restored.species(s).particles.x() ==
                    reference.species(s).particles.x() &&
                restored.species(s).particles.vx() ==
                    reference.species(s).particles.vx();
  }
  std::printf("continuation vs uninterrupted run: %s\n",
              identical ? "BIT-EXACT" : "DIVERGED");
  std::printf("ionization events: restored %llu, reference %llu\n",
              static_cast<unsigned long long>(restored.ionization_events()),
              static_cast<unsigned long long>(reference.ionization_events()));
  return identical ? 0 : 1;
}
