// Model-driven I/O tuning (what Section IV does by hand): explore
// aggregator counts, Lustre striping and compressors for a target system
// and scale, print the ranked configurations, and show the resulting
// `lfs setstripe` command and `lfs getstripe` layout (Table III/Listing 1).
#include <cstdio>

#include "core/tuning.hpp"
#include "fsim/posix_fs.hpp"
#include "fsim/system_profiles.hpp"
#include "util/units.hpp"

using namespace bitio;

int main(int argc, char** argv) {
  const std::string system = argc > 1 ? argv[1] : "dardel";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 20;
  const auto profile = fsim::system_profile(system);
  const auto spec = core::ScaleSpec::throughput(nodes);

  std::printf("tuning BIT1 I/O for %s at %d nodes (%d ranks)...\n",
              system.c_str(), nodes, spec.ranks());
  core::Bit1IoConfig base;
  base.mode = core::IoMode::openpmd;
  const auto report = core::tune_io(profile, spec, base);

  std::printf("\n%zu configurations explored; top five:\n",
              report.explored.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(5, report.explored.size());
       ++i) {
    const auto& option = report.explored[i];
    std::printf("  %5.2f GiB/s  %s\n", option.result.write_gibps,
                option.config.label().c_str());
  }

  const auto& best = report.best.config;
  std::printf("\nrecommended configuration: %s\n", best.label().c_str());
  std::printf("apply with:\n  lfs setstripe -c %d -S %s io_openPMD\n",
              best.striping.stripe_count,
              format_bytes(best.striping.stripe_size).c_str());
  std::printf("  export OPENPMD_ADIOS2_BP5_NumAgg=%d\n",
              best.num_aggregators);

  // Demonstrate the striping on the simulated Lustre (Listing 1).
  fsim::SharedFs fs(profile.ost_count);
  fsim::FsClient client(fs, 0);
  client.setstripe("io_openPMD", best.striping);
  std::vector<std::uint8_t> payload(192, 0x42);
  client.write_file("io_openPMD/dat_file.bp4/data.0", payload);
  std::printf("\n$ lfs getstripe io_openPMD/dat_file.bp4/data.0\n%s",
              client.getstripe_text("io_openPMD/dat_file.bp4/data.0").c_str());
  return 0;
}
