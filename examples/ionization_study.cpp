// The paper's physics use case at laptop scale: neutral-particle ionization
// by electron impact in an unbounded, unmagnetized plasma (Section III-C).
// Runs the 3-species PIC MC simulation across 4 SPMD ranks, checks the
// neutral decay against the rate equation dn/dt = -n n_e R, writes
// diagnostics BOTH ways (original .dat files and openPMD BP4), and prints
// the Darshan comparison of the two I/O paths.
#include <cmath>
#include <cstdio>

#include "core/diagnostics_sink.hpp"
#include "darshan/darshan.hpp"
#include "fsim/system_profiles.hpp"
#include "smpi/comm.hpp"

using namespace bitio;

int main() {
  fsim::SharedFs fs(48);

  auto config = picmc::SimConfig::ionization_case(/*cells=*/128, /*ppc=*/32);
  config.last_step = 400;
  config.datfile = 100;
  config.dmpstep = 400;
  config.mvflag = 4;    // average time-dependent diagnostics over 4 samples
  config.mvstep = 20;   // sampled every 20 steps
  config.ionization_rate = 4e-3;

  // Both I/O paths behind the same DiagnosticsSink seam; only `mode`
  // differs between the two configs.
  const int nranks = 4;
  core::Bit1IoConfig io;
  io.mode = core::IoMode::openpmd;
  io.ranks_per_node = nranks;
  auto openpmd = core::make_diagnostics_sink(fs, "ion_openpmd", io, nranks);
  core::Bit1IoConfig original_io = io;
  original_io.mode = core::IoMode::original;
  auto original =
      core::make_diagnostics_sink(fs, "ion_original", original_io, nranks);

  double neutral_weight_start = 0.0;
  double neutral_weight_end = 0.0;

  smpi::run_spmd(nranks, [&](smpi::Comm& comm) {
    picmc::Simulation sim(config, comm.rank(), comm.size());
    sim.initialize();
    picmc::Diagnostics diagnostics;
    dynamic_cast<core::SerialDiagnosticsSink&>(*original)
        .writer(comm.rank())
        .write_input_echo(config);

    const double local0 = sim.species_named("D").particles.total_weight();
    const double global0 = comm.allreduce(local0, smpi::Op::sum);
    if (comm.rank() == 0) neutral_weight_start = global0;

    // Densities are partial per rank; sum them across ranks each step.
    auto reduce = [&](std::span<double> density) {
      for (auto& v : density) v = comm.allreduce(v, smpi::Op::sum);
    };

    sim.run(reduce, [&](picmc::Simulation& s) {
      diagnostics.observe(s);
      if (s.current_step() % config.datfile == 0) {
        const auto snapshot =
            config.mvflag > 0 && diagnostics.snapshots_completed() > 0
                ? diagnostics.latest()
                : picmc::Diagnostics::sample_now(s);
        // Same stage/flush protocol for both sinks: stage per rank, then
        // rank 0 flushes the collective tail after the barrier.
        original->stage_diagnostics(comm.rank(), s, snapshot);
        openpmd->stage_diagnostics(comm.rank(), s, snapshot);
        comm.barrier();
        if (comm.rank() == 0) {
          const double time = double(s.current_step()) * config.dt;
          original->flush_diagnostics(s.current_step(), time);
          openpmd->flush_diagnostics(s.current_step(), time);
        }
        comm.barrier();
      }
    });

    const double local1 = sim.species_named("D").particles.total_weight();
    const double global1 = comm.allreduce(local1, smpi::Op::sum);
    if (comm.rank() == 0) neutral_weight_end = global1;
  });
  original->close();
  openpmd->close();

  // Physics check: exponential decay at rate n_e * R.
  const double t = double(config.last_step) * config.dt;
  const double expected =
      neutral_weight_start * std::exp(-1.0 * config.ionization_rate * t);
  std::printf("neutral weight: %.1f -> %.1f after t=%.0f\n",
              neutral_weight_start, neutral_weight_end, t);
  std::printf("rate-equation prediction: %.1f (deviation %.1f%%)\n", expected,
              100.0 * std::fabs(neutral_weight_end - expected) / expected);

  // Darshan view of everything this process wrote, both I/O paths.
  const auto replay = fsim::replay_trace(fsim::dardel(), fs.store(),
                                         fs.trace(), nranks);
  const auto log = darshan::capture(
      fs, replay, {"ionization_study", std::uint32_t(nranks), 0.0, "/lustre"});
  std::uint64_t original_files = 0, openpmd_files = 0;
  for (const auto* file : fs.store().all_files()) {
    if (file->path.rfind("ion_original", 0) == 0) ++original_files;
    if (file->path.rfind("ion_openpmd", 0) == 0) ++openpmd_files;
  }
  std::printf("\noriginal path wrote %llu files; openPMD path wrote %llu\n",
              static_cast<unsigned long long>(original_files),
              static_cast<unsigned long long>(openpmd_files));
  const auto cost = log.per_process_cost();
  std::printf("darshan per-process costs: read %.6fs meta %.6fs write %.6fs\n",
              cost.read_s, cost.meta_s, cost.write_s);
  std::printf("aggregate write throughput: %.3f GiB/s (simulated Dardel)\n",
              log.write_throughput_bps() / double(1ull << 30));
  return 0;
}
