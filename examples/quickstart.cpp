// Quickstart: run a small PIC MC simulation, stream its diagnostics and a
// checkpoint through the openPMD adaptor to a BP4 container, and read the
// data back.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/adaptor.hpp"
#include "openpmd/series.hpp"
#include "picmc/diagnostics.hpp"
#include "picmc/simulation.hpp"

using namespace bitio;

int main() {
  // A simulated 48-OST Lustre file system (bytes are stored in memory and
  // can be read back bit-exactly).
  fsim::SharedFs fs(48);

  // The paper's use case, scaled down: electrons + D+ ions + D neutrals,
  // ionization on, field solver off.
  auto config = picmc::SimConfig::ionization_case(/*cells=*/128, /*ppc=*/16);
  config.last_step = 300;
  config.datfile = 100;  // diagnostics every 100 steps
  picmc::Simulation sim(config);
  sim.initialize();
  std::printf("initialized %llu particles across %zu species\n",
              static_cast<unsigned long long>(sim.local_particles()),
              sim.species_count());

  // I/O configuration: openPMD with the BP4 engine (TOML-configurable).
  core::Bit1IoConfig io = core::Bit1IoConfig::from_toml(R"(
[io]
mode = "openpmd"
engine = "bp4"
codec = "blosc"
)");
  core::Bit1OpenPmdAdaptor adaptor(fs, "quickstart_run", io, /*nranks=*/1);

  // Run; every `datfile` steps stage + flush a diagnostic iteration.
  sim.run({}, [&](picmc::Simulation& s) {
    if (s.current_step() % config.datfile != 0) return;
    adaptor.stage_diagnostics(0, s, picmc::Diagnostics::sample_now(s));
    adaptor.flush_diagnostics(s.current_step(),
                              double(s.current_step()) * config.dt);
    std::printf("step %llu: wrote diagnostics (neutral weight %.1f)\n",
                static_cast<unsigned long long>(s.current_step()),
                s.species_named("D").particles.total_weight());
  });

  // Checkpoint the final state into iteration 0 of the dmp series.
  adaptor.stage_checkpoint(0, sim);
  adaptor.flush_checkpoint();
  adaptor.close();

  // Read the container back with the openPMD API.
  pmd::Series series(fs, adaptor.diag_path(), pmd::Access::read_only);
  std::printf("\nBP4 container '%s' holds iterations:", adaptor.diag_path().c_str());
  for (auto step : series.iterations())
    std::printf(" %llu", static_cast<unsigned long long>(step));
  std::printf("\n");
  auto& last = series.read_iteration(300);
  const auto density =
      last.mesh("density_e").component().load<double>();
  double mean = 0.0;
  for (double d : density) mean += d;
  mean /= double(density.size());
  std::printf("final mean electron density: %.3f (started at 1.0, grows "
              "with ionization)\n",
              mean);

  // And restart a fresh simulation from the checkpoint.
  picmc::Simulation restored(config);
  core::Bit1OpenPmdAdaptor::restore(fs, "quickstart_run", io, restored);
  std::printf("restored simulation at step %llu with %llu particles\n",
              static_cast<unsigned long long>(restored.current_step()),
              static_cast<unsigned long long>(restored.local_particles()));
  return 0;
}
