// darshan-parser-style tool: generate a two-path BIT1 output window on a
// chosen system, capture the Darshan log, serialize it, parse it back, and
// print the per-file counter report — the workflow Section III-D uses to
// find BIT1's bottlenecks.
#include <cstdio>

#include "darshan/darshan.hpp"
#include "fsim/system_profiles.hpp"
#include "picmc/diagnostics.hpp"
#include "picmc/serial_io.hpp"
#include "picmc/simulation.hpp"

using namespace bitio;

int main(int argc, char** argv) {
  const std::string system = argc > 1 ? argv[1] : "dardel";
  const auto profile = fsim::system_profile(system);
  fsim::SharedFs fs(profile.ost_count);

  // A small live run with the original serial writers on 4 ranks.
  auto config = picmc::SimConfig::ionization_case(/*cells=*/64, /*ppc=*/16);
  config.last_step = 100;
  const int nranks = 4;
  for (int rank = 0; rank < nranks; ++rank) {
    picmc::Simulation sim(config, rank, nranks);
    sim.initialize();
    sim.run();
    picmc::Bit1SerialWriter writer(fs, "darshan_demo", rank, nranks);
    if (rank == 0) writer.write_input_echo(config);
    writer.write_diagnostics(sim, picmc::Diagnostics::sample_now(sim));
    if (rank == 0)
      writer.write_history(sim, sim.local_particles(),
                           sim.kinetic_energy(sim.species(0)));
  }

  // Score it with the system's storage model and capture the log.
  const auto replay =
      fsim::replay_trace(profile, fs.store(), fs.trace(), nranks);
  auto log = darshan::capture(
      fs, replay,
      {"bit1", std::uint32_t(nranks), 0.0, "/" + system + "/lustre"});

  // Round-trip through the binary log format, like darshan-util would.
  const auto bytes = log.serialize();
  const auto parsed = darshan::DarshanLog::parse(bytes);
  std::printf("%s\n", parsed.text_report().c_str());
  std::printf("(log size: %zu bytes, %zu records)\n", bytes.size(),
              parsed.records.size());
  return 0;
}
