#pragma once
// Darshan-like I/O characterization.
//
// The real Darshan instruments POSIX/MPI-IO calls at runtime and emits one
// compact log per job at MPI_Finalize; `darshan-parser` then turns the log
// into per-file counter listings, from which the paper extracts write
// throughput (Figs 2-4) and per-process read/metadata/write costs (Fig 5).
//
// Here the instrumentation is the fsim trace: `capture()` folds a SharedFs
// trace plus its timing replay into per-(rank,file) counter records that
// mirror Darshan's POSIX module counters, `DarshanLog` serializes to a
// compact binary log with round-trip parsing, and `text_report()` renders a
// darshan-parser-style listing.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fsim/posix_fs.hpp"
#include "fsim/storage_model.hpp"
#include "util/stats.hpp"

namespace bitio::darshan {

/// Job-wide header, like Darshan's job record.
struct JobInfo {
  std::string exe = "bit1";
  std::uint32_t nprocs = 1;
  double runtime_s = 0.0;           // simulated job I/O makespan
  std::string mount = "/lustre";    // mounted file system the job wrote to

  // Online-recovery job counters (log format v4).  capture() derives them
  // from the cpu ops the recovery machinery charges to the trace:
  // "recovery"-tagged ops (shrink-restarts and ladder step-ups) and
  // "degrade"-tagged ops (I/O ladder step-downs).
  std::uint64_t recoveries = 0;
  std::uint64_t degradations = 0;
  double t_recovery_s = 0.0;  // seconds charged under the "recovery" tag

  // Incremental-checkpoint job counters (log format v6), derived the same
  // way from the checkpoint manager's tagged cpu ops: "delta_commit" marks
  // a delta epoch, "dedup" carries the payload bytes a commit skipped by
  // referencing a base epoch, and "restore_chain" carries the wall time
  // and block-fetch count of a chain restore.
  std::uint64_t delta_epochs = 0;
  std::uint64_t dedup_bytes_saved = 0;
  std::uint64_t blocks_restored = 0;
  double t_restore_s = 0.0;  // seconds charged under the "restore_chain" tag

  // Batched queue-pair job counters (log format v7): histogram of sqes per
  // submit() doorbell across the whole job, derived from the doorbell-
  // tagged OpKind::batch_write records.  Bucket edges: 1, 2-4, 5-16,
  // 17-64, >= 65 sqes.
  static constexpr std::size_t kBatchHistBuckets = 5;
  std::uint64_t ops_per_batch[kBatchHistBuckets] = {0, 0, 0, 0, 0};
};

/// Counters for one (rank, file) pair — the slice of Darshan's POSIX module
/// the paper's analysis uses.  rank == kSharedRank marks a shared record.
struct FileRecord {
  static constexpr std::int32_t kSharedRank = -1;

  std::string path;
  std::int32_t rank = 0;

  std::uint64_t opens = 0;
  std::uint64_t writes = 0;   // individual write calls (pre-coalescing)
  std::uint64_t reads = 0;
  std::uint64_t stats = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t max_byte_written = 0;  // highest offset+len written
  std::uint64_t max_write_size = 0;    // largest single (coalesced) record

  double write_time_s = 0.0;
  double read_time_s = 0.0;
  double meta_time_s = 0.0;
  // Time spent on overlapped drain lanes (TraceOp::lane > 0, the BP5-style
  // AsyncWrite background writer).  Kept separate from write/meta/read time
  // so those remain the rank's critical-path cost.
  double drain_time_s = 0.0;
  // Operations on this (rank, file) that carried an injected fault
  // (TraceOp::fault != none): torn writes, bit flips, transient failures.
  std::uint64_t faults_injected = 0;
  // Per-level gather counters of the two-level aggregation path (log
  // format v5): OpKind::xfer transfers feeding this file, split by gather
  // level — in-node shared-memory hops (fsim::kShmGatherTag) vs inter-node
  // NIC hops (kNetGatherTag).  Zero for flat aggregation and for every
  // log captured before v5.
  std::uint64_t shm_gathers = 0;
  std::uint64_t net_gathers = 0;
  std::uint64_t shm_gather_bytes = 0;
  std::uint64_t net_gather_bytes = 0;
  double gather_time_s = 0.0;
  // Batched queue-pair counters (log format v7): OpKind::batch_write
  // submissions into this file.  batches_submitted counts doorbells (one
  // per SubmissionQueue::submit), batched_sqes counts the sqes they
  // carried, and coalesced_bytes the bytes that travelled in vectored
  // records merging >= 2 adjacent sqes.  Zero on the posix write path and
  // for every log captured before v7.
  std::uint64_t batches_submitted = 0;
  std::uint64_t batched_sqes = 0;
  std::uint64_t coalesced_bytes = 0;
};

/// Every FileRecord counter, in serialization order — the one table the
/// rest of the module must stay consistent with.  tools/lint_invariants
/// checks that each name here is a declared FileRecord member and is
/// referenced by both DarshanLog::serialize() and DarshanLog::parse(), and
/// that every numeric FileRecord member appears here; adding a counter to
/// the struct without extending the table (or the wire format) fails lint.
inline constexpr const char* kFileRecordCounters[] = {
    "opens",
    "writes",
    "reads",
    "stats",
    "fsyncs",
    "bytes_written",
    "bytes_read",
    "max_byte_written",
    "max_write_size",
    "write_time_s",
    "read_time_s",
    "meta_time_s",
    "drain_time_s",
    "faults_injected",
    "shm_gathers",
    "net_gathers",
    "shm_gather_bytes",
    "net_gather_bytes",
    "gather_time_s",
    "batches_submitted",
    "batched_sqes",
    "coalesced_bytes",
};

/// A captured log: job info + records + per-rank roll-ups.
class DarshanLog {
public:
  JobInfo job;
  std::vector<FileRecord> records;

  // Roll-ups across records.
  std::uint64_t total_bytes_written() const;
  std::uint64_t total_bytes_read() const;
  std::uint64_t total_files() const;  // distinct paths
  double total_write_time() const;
  double total_meta_time() const;
  std::uint64_t total_faults_injected() const;

  /// Aggregate write throughput the way the paper reports it: total bytes
  /// written / job I/O runtime.
  double write_throughput_bps() const;

  /// Per-process average costs (Fig 5): {read, meta, write} seconds, plus
  /// the overlapped async-drain component (not on the critical path).
  struct PerProcessCost {
    double read_s = 0.0;
    double meta_s = 0.0;
    double write_s = 0.0;
    double drain_s = 0.0;
  };
  PerProcessCost per_process_cost() const;

  /// File-size statistics over distinct written files (Table II):
  /// count, average size, max size (sizes = max_byte_written per path).
  struct FileSizeStats {
    std::uint64_t count = 0;
    std::uint64_t average = 0;
    std::uint64_t max = 0;
  };
  FileSizeStats file_size_stats() const;

  /// Serialize to the compact binary log format.
  std::vector<std::uint8_t> serialize() const;
  /// Parse a serialized log.  Throws FormatError on corruption.
  static DarshanLog parse(std::span<const std::uint8_t> data);

  /// darshan-parser-style text listing.
  std::string text_report() const;
};

/// Build a log from an fsim trace and its timing replay.  `job.runtime_s`
/// is overwritten with the replay makespan.
DarshanLog capture(const fsim::SharedFs& fs,
                   const fsim::ReplayReport& replay, JobInfo job);

/// Short tag identifying the I/O engine in Darshan-side reports and bench
/// JSON ("BP4" | "BP5" | "SST").  The engine-registry lint rule
/// (tools/lint_invariants) keeps this switch in lockstep with
/// core::kBit1IoEngines — adding an engine without tagging it here fails
/// lint.  Unknown names come back uppercased rather than throwing so
/// third-party engines registered via bp::register_engine still report.
std::string engine_tag(const std::string& engine);

/// Short tag identifying the aggregation mode in Darshan-side reports and
/// bench JSON ("FLAT" | "TWO_LEVEL").  The topology-registry lint rule
/// (tools/lint_invariants) keeps this switch in lockstep with
/// core::kBit1IoAggregationModes — adding a mode without tagging it here
/// fails lint.  Unknown names come back uppercased.
std::string aggregation_tag(const std::string& aggregation);

}  // namespace bitio::darshan
