#include "darshan/darshan.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <map>
#include <set>

#include "util/error.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace bitio::darshan {

using fsim::OpKind;
using fsim::TraceOp;

std::uint64_t DarshanLog::total_bytes_written() const {
  std::uint64_t sum = 0;
  for (const auto& r : records) sum += r.bytes_written;
  return sum;
}

std::uint64_t DarshanLog::total_bytes_read() const {
  std::uint64_t sum = 0;
  for (const auto& r : records) sum += r.bytes_read;
  return sum;
}

std::uint64_t DarshanLog::total_files() const {
  std::set<std::string> paths;
  for (const auto& r : records) paths.insert(r.path);
  return paths.size();
}

double DarshanLog::total_write_time() const {
  double sum = 0.0;
  for (const auto& r : records) sum += r.write_time_s;
  return sum;
}

double DarshanLog::total_meta_time() const {
  double sum = 0.0;
  for (const auto& r : records) sum += r.meta_time_s;
  return sum;
}

std::uint64_t DarshanLog::total_faults_injected() const {
  std::uint64_t sum = 0;
  for (const auto& r : records) sum += r.faults_injected;
  return sum;
}

double DarshanLog::write_throughput_bps() const {
  return job.runtime_s > 0 ? double(total_bytes_written()) / job.runtime_s
                           : 0.0;
}

DarshanLog::PerProcessCost DarshanLog::per_process_cost() const {
  PerProcessCost cost;
  for (const auto& r : records) {
    cost.read_s += r.read_time_s;
    cost.meta_s += r.meta_time_s;
    cost.write_s += r.write_time_s;
    cost.drain_s += r.drain_time_s;
  }
  const double n = job.nprocs > 0 ? double(job.nprocs) : 1.0;
  cost.read_s /= n;
  cost.meta_s /= n;
  cost.write_s /= n;
  cost.drain_s /= n;
  return cost;
}

DarshanLog::FileSizeStats DarshanLog::file_size_stats() const {
  std::map<std::string, std::uint64_t> size_of;
  for (const auto& r : records) {
    if (r.bytes_written == 0 && r.max_byte_written == 0) continue;
    auto& s = size_of[r.path];
    s = std::max(s, r.max_byte_written);
  }
  FileSizeStats stats;
  stats.count = size_of.size();
  if (stats.count == 0) return stats;
  std::uint64_t sum = 0;
  for (const auto& [path, size] : size_of) {
    (void)path;
    sum += size;
    stats.max = std::max(stats.max, size);
  }
  stats.average = sum / stats.count;
  return stats;
}

namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double d) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, 8);
  put_u64(out, bits);
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

class Cursor {
public:
  explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(data_[pos_++]) << (8 * i);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
  }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  bool done() const { return pos_ == data_.size(); }

private:
  void need(std::size_t n) {
    if (pos_ + n > data_.size())
      throw FormatError("darshan: truncated log");
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// Log format version 3 adds the per-record faults_injected counter;
// version 4 adds the job-level recovery counters; version 5 adds the
// per-record two-level-aggregation gather counters; version 6 adds the
// job-level incremental-checkpoint counters; version 7 adds the batched
// queue-pair counters (per-record batches_submitted / batched_sqes /
// coalesced_bytes plus the job-level ops-per-batch histogram).  parse()
// accepts all of them — older logs read back with the newer counters at
// zero.
constexpr std::uint64_t kLogMagicV3 = 0x4452534e4c4f4733ull;  // "DRSNLOG3"
constexpr std::uint64_t kLogMagicV4 = 0x4452534e4c4f4734ull;  // "DRSNLOG4"
constexpr std::uint64_t kLogMagicV5 = 0x4452534e4c4f4735ull;  // "DRSNLOG5"
constexpr std::uint64_t kLogMagicV6 = 0x4452534e4c4f4736ull;  // "DRSNLOG6"
constexpr std::uint64_t kLogMagic = 0x4452534e4c4f4737ull;    // "DRSNLOG7"

}  // namespace

std::vector<std::uint8_t> DarshanLog::serialize() const {
  std::vector<std::uint8_t> out;
  put_u64(out, kLogMagic);
  put_str(out, job.exe);
  put_u64(out, job.nprocs);
  put_f64(out, job.runtime_s);
  put_str(out, job.mount);
  put_u64(out, job.recoveries);
  put_u64(out, job.degradations);
  put_f64(out, job.t_recovery_s);
  put_u64(out, job.delta_epochs);
  put_u64(out, job.dedup_bytes_saved);
  put_u64(out, job.blocks_restored);
  put_f64(out, job.t_restore_s);
  for (const std::uint64_t bucket : job.ops_per_batch) put_u64(out, bucket);
  put_u64(out, records.size());
  for (const auto& r : records) {
    put_str(out, r.path);
    put_u64(out, std::uint64_t(std::int64_t(r.rank)));
    put_u64(out, r.opens);
    put_u64(out, r.writes);
    put_u64(out, r.reads);
    put_u64(out, r.stats);
    put_u64(out, r.fsyncs);
    put_u64(out, r.bytes_written);
    put_u64(out, r.bytes_read);
    put_u64(out, r.max_byte_written);
    put_u64(out, r.max_write_size);
    put_f64(out, r.write_time_s);
    put_f64(out, r.read_time_s);
    put_f64(out, r.meta_time_s);
    put_f64(out, r.drain_time_s);
    put_u64(out, r.faults_injected);
    put_u64(out, r.shm_gathers);
    put_u64(out, r.net_gathers);
    put_u64(out, r.shm_gather_bytes);
    put_u64(out, r.net_gather_bytes);
    put_f64(out, r.gather_time_s);
    put_u64(out, r.batches_submitted);
    put_u64(out, r.batched_sqes);
    put_u64(out, r.coalesced_bytes);
  }
  return out;
}

DarshanLog DarshanLog::parse(std::span<const std::uint8_t> data) {
  Cursor cur(data);
  const std::uint64_t magic = cur.u64();
  if (magic != kLogMagic && magic != kLogMagicV6 && magic != kLogMagicV5 &&
      magic != kLogMagicV4 && magic != kLogMagicV3)
    throw FormatError("darshan: bad log magic");
  DarshanLog log;
  log.job.exe = cur.str();
  log.job.nprocs = std::uint32_t(cur.u64());
  log.job.runtime_s = cur.f64();
  log.job.mount = cur.str();
  if (magic != kLogMagicV3) {
    log.job.recoveries = cur.u64();
    log.job.degradations = cur.u64();
    log.job.t_recovery_s = cur.f64();
  }
  if (magic == kLogMagic || magic == kLogMagicV6) {
    log.job.delta_epochs = cur.u64();
    log.job.dedup_bytes_saved = cur.u64();
    log.job.blocks_restored = cur.u64();
    log.job.t_restore_s = cur.f64();
  }
  if (magic == kLogMagic)
    for (std::uint64_t& bucket : log.job.ops_per_batch) bucket = cur.u64();
  const std::uint64_t n = cur.u64();
  log.records.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    FileRecord r;
    r.path = cur.str();
    r.rank = std::int32_t(std::int64_t(cur.u64()));
    r.opens = cur.u64();
    r.writes = cur.u64();
    r.reads = cur.u64();
    r.stats = cur.u64();
    r.fsyncs = cur.u64();
    r.bytes_written = cur.u64();
    r.bytes_read = cur.u64();
    r.max_byte_written = cur.u64();
    r.max_write_size = cur.u64();
    r.write_time_s = cur.f64();
    r.read_time_s = cur.f64();
    r.meta_time_s = cur.f64();
    r.drain_time_s = cur.f64();
    r.faults_injected = cur.u64();
    if (magic != kLogMagicV3 && magic != kLogMagicV4) {
      r.shm_gathers = cur.u64();
      r.net_gathers = cur.u64();
      r.shm_gather_bytes = cur.u64();
      r.net_gather_bytes = cur.u64();
      r.gather_time_s = cur.f64();
    }
    if (magic == kLogMagic) {
      r.batches_submitted = cur.u64();
      r.batched_sqes = cur.u64();
      r.coalesced_bytes = cur.u64();
    }
    log.records.push_back(std::move(r));
  }
  if (!cur.done()) throw FormatError("darshan: trailing bytes in log");
  return log;
}

std::string DarshanLog::text_report() const {
  std::string out;
  out += strfmt("# darshan log: exe=%s nprocs=%u runtime=%.6fs mount=%s\n",
                job.exe.c_str(), job.nprocs, job.runtime_s,
                job.mount.c_str());
  out += strfmt("# agg_perf_by_slowest: %s\n",
                format_gibps(write_throughput_bps()).c_str());
  const auto cost = per_process_cost();
  out += strfmt(
      "# per-process cost: read=%.6fs meta=%.6fs write=%.6fs drain=%.6fs\n",
      cost.read_s, cost.meta_s, cost.write_s, cost.drain_s);
  if (const auto faults = total_faults_injected(); faults > 0)
    out += strfmt("# faults_injected: %llu\n",
                  static_cast<unsigned long long>(faults));
  if (job.recoveries > 0 || job.degradations > 0)
    out += strfmt(
        "# recoveries: %llu degradations: %llu t_recovery=%.6fs\n",
        static_cast<unsigned long long>(job.recoveries),
        static_cast<unsigned long long>(job.degradations), job.t_recovery_s);
  if (job.delta_epochs > 0 || job.blocks_restored > 0)
    out += strfmt(
        "# delta_epochs: %llu dedup_saved: %s blocks_restored: %llu "
        "t_restore=%.6fs\n",
        static_cast<unsigned long long>(job.delta_epochs),
        format_bytes(job.dedup_bytes_saved).c_str(),
        static_cast<unsigned long long>(job.blocks_restored), job.t_restore_s);
  std::uint64_t batches = 0, sqes = 0, coalesced = 0;
  for (const auto& r : records) {
    batches += r.batches_submitted;
    sqes += r.batched_sqes;
    coalesced += r.coalesced_bytes;
  }
  if (batches > 0)
    out += strfmt(
        "# batches_submitted: %llu batched_sqes: %llu coalesced: %s\n",
        static_cast<unsigned long long>(batches),
        static_cast<unsigned long long>(sqes),
        format_bytes(coalesced).c_str());
  TextTable table;
  table.header({"rank", "file", "opens", "writes", "bytes_w", "reads",
                "bytes_r", "t_write", "t_meta", "t_drain"});
  for (const auto& r : records) {
    table.row({r.rank == FileRecord::kSharedRank ? "-1"
                                                 : std::to_string(r.rank),
               r.path, std::to_string(r.opens), std::to_string(r.writes),
               format_bytes(r.bytes_written), std::to_string(r.reads),
               format_bytes(r.bytes_read), format_seconds(r.write_time_s),
               format_seconds(r.meta_time_s),
               format_seconds(r.drain_time_s)});
  }
  out += table.render();
  return out;
}

DarshanLog capture(const fsim::SharedFs& fs, const fsim::ReplayReport& replay,
                   JobInfo job) {
  const auto& trace = fs.trace();
  if (!replay.op_durations.empty() &&
      replay.op_durations.size() != trace.size())
    throw UsageError("darshan::capture: replay does not match trace");

  DarshanLog log;
  job.runtime_s = replay.makespan;
  log.job = std::move(job);

  // Sqes of the queue-pair batch currently open per (client, lane): a
  // doorbell-tagged batch_write record flushes the previous batch into the
  // job's ops-per-batch histogram and starts the next one.  Keyed per
  // client+lane because a stalled sqe releases the fs lock, so records of
  // different clients' batches may interleave in the trace.
  std::map<std::pair<fsim::ClientId, std::uint32_t>, std::uint64_t>
      open_batches;
  const auto bucket_of = [](std::uint64_t sqes) -> std::size_t {
    if (sqes <= 1) return 0;
    if (sqes <= 4) return 1;
    if (sqes <= 16) return 2;
    if (sqes <= 64) return 3;
    return 4;
  };

  // (rank, file id) -> record index.
  std::map<std::pair<std::int32_t, fsim::FileId>, std::size_t> index;
  auto record_for = [&](std::int32_t rank, fsim::FileId file) -> FileRecord& {
    auto [it, fresh] = index.try_emplace({rank, file}, log.records.size());
    if (fresh) {
      FileRecord r;
      r.rank = rank;
      r.path = file == fsim::kNoFile
                   ? "<namespace>"
                   : fs.store().file_by_id(file).path;
      log.records.push_back(std::move(r));
    }
    return log.records[it->second];
  };

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceOp& op = trace[i];
    // Fault markers ride on whatever op carried the injection (including
    // cpu-kind notes for harness-level faults), so count them before the
    // cpu skip below.
    if (op.fault != fsim::FaultKind::none)
      record_for(std::int32_t(op.client), op.file).faults_injected +=
          op.op_count > 0 ? op.op_count : 1;
    if (op.kind == OpKind::cpu) {
      // The recovery machinery charges its events to the trace as tagged
      // cpu ops; fold them into the job-level counters.
      if (op.tag == "recovery") {
        log.job.recoveries += 1;
        log.job.t_recovery_s += op.cpu_seconds;
      } else if (op.tag == "degrade") {
        log.job.degradations += 1;
      } else if (op.tag == "delta_commit") {
        log.job.delta_epochs += op.op_count;
      } else if (op.tag == "dedup") {
        log.job.dedup_bytes_saved += op.bytes;
      } else if (op.tag == "restore_chain") {
        log.job.blocks_restored += op.op_count;
        log.job.t_restore_s += op.cpu_seconds;
      }
      continue;  // not an I/O counter
    }
    FileRecord& r = record_for(std::int32_t(op.client), op.file);
    const double dt =
        i < replay.op_durations.size() ? replay.op_durations[i] : 0.0;
    // Call/byte counters accumulate regardless of lane (Darshan counts the
    // I/O wherever it happens); *time* on drain lanes is overlapped, so it
    // lands in drain_time_s instead of the critical-path time counters.
    const bool drain_lane = op.lane > 0;
    double& meta_time = drain_lane ? r.drain_time_s : r.meta_time_s;
    double& write_time = drain_lane ? r.drain_time_s : r.write_time_s;
    double& read_time = drain_lane ? r.drain_time_s : r.read_time_s;
    switch (op.kind) {
      case OpKind::create:
      case OpKind::open:
        r.opens += op.op_count;
        meta_time += dt;
        break;
      case OpKind::close:
      case OpKind::fsync:
        r.fsyncs += op.kind == OpKind::fsync ? op.op_count : 0;
        meta_time += dt;
        break;
      case OpKind::stat:
      case OpKind::unlink:
      case OpKind::mkdir:
      case OpKind::rename:
        r.stats += op.kind == OpKind::stat ? op.op_count : 0;
        meta_time += dt;
        break;
      case OpKind::write:
        r.writes += op.op_count;
        r.bytes_written += op.bytes;
        r.max_byte_written =
            std::max(r.max_byte_written, op.offset + op.bytes);
        r.max_write_size = std::max(r.max_write_size, op.bytes);
        write_time += dt;
        break;
      case OpKind::read:
        r.reads += op.op_count;
        r.bytes_read += op.bytes;
        read_time += dt;
        break;
      case OpKind::xfer:
        // Two-level aggregation gather feeding this file; the tag names
        // the level (fsim::kShmGatherTag / kNetGatherTag).
        if (op.tag == fsim::kShmGatherTag) {
          r.shm_gathers += op.op_count;
          r.shm_gather_bytes += op.bytes;
        } else {
          r.net_gathers += op.op_count;
          r.net_gather_bytes += op.bytes;
        }
        if (drain_lane)
          r.drain_time_s += dt;
        else
          r.gather_time_s += dt;
        break;
      case OpKind::batch_write: {
        // Queue-pair submission: op_count counts the sqes this record
        // carries (>= 2 means adjacent sqes were coalesced into one
        // vectored write); the doorbell tag marks the first record of each
        // submit() call.
        r.writes += op.op_count;
        r.batched_sqes += op.op_count;
        r.bytes_written += op.bytes;
        r.max_byte_written =
            std::max(r.max_byte_written, op.offset + op.bytes);
        r.max_write_size = std::max(r.max_write_size, op.bytes);
        if (op.op_count >= 2) r.coalesced_bytes += op.bytes;
        const auto key = std::make_pair(op.client, op.lane);
        if (op.tag == fsim::kBatchDoorbellTag) {
          r.batches_submitted += 1;
          if (const auto it = open_batches.find(key);
              it != open_batches.end() && it->second > 0)
            log.job.ops_per_batch[bucket_of(it->second)] += 1;
          open_batches[key] = 0;
        }
        open_batches[key] += op.op_count;
        write_time += dt;
        break;
      }
      case OpKind::cpu:
        break;
    }
  }
  for (const auto& [key, sqes] : open_batches) {
    (void)key;
    if (sqes > 0) log.job.ops_per_batch[bucket_of(sqes)] += 1;
  }
  return log;
}

std::string engine_tag(const std::string& engine) {
  if (engine == "bp4") return "BP4";
  if (engine == "bp5") return "BP5";
  if (engine == "stream") return "SST";
  std::string tag = engine;
  for (char& c : tag) c = char(std::toupper(static_cast<unsigned char>(c)));
  return tag;
}

std::string aggregation_tag(const std::string& aggregation) {
  if (aggregation == "flat") return "FLAT";
  if (aggregation == "two_level") return "TWO_LEVEL";
  std::string tag = aggregation;
  for (char& c : tag) c = char(std::toupper(static_cast<unsigned char>(c)));
  return tag;
}

}  // namespace bitio::darshan
