#pragma once
// Seeded, deterministic fault injection for the simulated file system.
//
// A FaultPlan is a list of rules; SharedFs consults the plan on every data
// write (FsClient::write / pwrite / write_simulated).  A rule fires either
// on the nth write whose path matches (deterministic positional targeting,
// `nth`) or with a seeded per-write probability (`probability`) — both are
// reproducible across runs because the draw is a pure hash of (seed, global
// write ordinal).  Fired rules inject:
//
//   torn_write  only a prefix of the extent is persisted; the caller sees
//               success (the classic lost-tail failure a crash leaves behind)
//   bit_flip    the extent is persisted, then one deterministically chosen
//               bit inside it is flipped (silent corruption)
//   eio/enospc  the call throws IoError before persisting anything
//               (transient failures the resilience layer retries through)
//   rank_crash  not applied at the write layer: the harness asks
//               should_crash(rank, step) at step boundaries
//   stall       the call wedges (releasing the fs lock) until
//               SharedFs::cancel_stalls() aborts it with TimeoutError —
//               the wedged-OST scenario bp's drain watchdog detects
//
// Every injection is recorded as a TraceOp with TraceOp::fault set, so
// Darshan capture and timing replay can attribute faults per (rank, file).
// Plans parse from the `[io.fault_plan]` TOML table (see core::Bit1IoConfig)
// and compare by value for config round-trip tests.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fsim/types.hpp"
#include "util/json.hpp"

namespace bitio::fsim {

/// One injection rule.  `path` is a substring match against the target file
/// path ("" matches every file).  Exactly one of `nth` (1-based ordinal
/// among this rule's matching writes) or `probability` selects the firing
/// writes; `times` bounds total firings (0 = unlimited).
struct FaultRule {
  FaultKind kind = FaultKind::bit_flip;
  std::string path;              // substring of the file path; "" = any
  std::uint64_t nth = 0;         // fire on the nth matching write (1-based)
  double probability = 0.0;      // per-matching-write firing probability
  int times = 1;                 // max firings; 0 = unlimited
  int rank = -1;                 // restrict to a client; -1 = any.
                                 // For rank_crash: the crashing rank.
  std::uint64_t step = 0;        // rank_crash only: crash at this step

  friend bool operator==(const FaultRule& a, const FaultRule& b) = default;
};

FaultKind fault_kind_from_name(const std::string& name);

/// The plan: rules plus the seed that makes probabilistic draws
/// reproducible.  Rule state (match/fire counters) lives in the plan, so a
/// plan installed into a SharedFs is consumed as the run progresses.
class FaultPlan {
public:
  FaultPlan() = default;
  FaultPlan(std::uint64_t seed, std::vector<FaultRule> rules);

  std::uint64_t seed() const { return seed_; }
  const std::vector<FaultRule>& rules() const { return rules_; }
  bool empty() const { return rules_.empty(); }

  /// Throws UsageError on an inconsistent rule (unknown kind, probability
  /// outside [0,1], neither — or both — of nth and probability set,
  /// rank_crash without a rank or with a rank already scheduled to crash).
  /// Errors name the offending rule index.
  void validate() const;

  /// Decide the fault (if any) for a data write of `bytes` to `path` by
  /// `client`.  Mutates rule counters; call exactly once per write attempt.
  /// First matching rule wins.
  std::optional<FaultKind> next_write_fault(const std::string& path,
                                            ClientId client,
                                            std::uint64_t bytes);

  /// rank_crash rules: should `rank` die at `step`?  (Harness-level; does
  /// not consume rule firings so every rank observes the same answer.)
  bool should_crash(int rank, std::uint64_t step) const;

  /// Deterministic bit index to flip inside an extent of `bytes` bytes
  /// (pure function of the seed and the firing ordinal).
  std::uint64_t flip_bit_index(std::uint64_t firing, std::uint64_t bytes) const;
  /// Deterministic prefix (in bytes) to keep of a torn write; always
  /// shorter than `bytes` for bytes > 0.
  std::uint64_t torn_prefix(std::uint64_t firing, std::uint64_t bytes) const;

  std::uint64_t injected_count() const { return injected_; }

  /// Parse from the Json tree of the `[io.fault_plan]` TOML table:
  ///   seed = 42
  ///   rules = [ { kind = "bit_flip", path = "epoch_1", nth = 1 } ]
  static FaultPlan from_json(const Json& table);
  /// Render back to the TOML fragment from_json accepts (lossless).
  std::string to_toml() const;

  friend bool operator==(const FaultPlan& a, const FaultPlan& b) {
    return a.seed_ == b.seed_ && a.rules_ == b.rules_;
  }

private:
  std::uint64_t seed_ = 0;
  std::vector<FaultRule> rules_;
  // Per-rule running counters, parallel to rules_.
  std::vector<std::uint64_t> matches_;
  std::vector<std::uint64_t> firings_;
  std::uint64_t write_ordinal_ = 0;  // global write attempts seen
  std::uint64_t injected_ = 0;
};

}  // namespace bitio::fsim
