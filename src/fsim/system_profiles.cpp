#include "fsim/system_profiles.hpp"

#include "util/error.hpp"
#include "util/units.hpp"

namespace bitio::fsim {

SystemProfile dardel() {
  SystemProfile p;
  p.name = "dardel";
  p.ranks_per_node = 128;

  p.ost_count = 48;
  p.ost_bandwidth_bps = 1.3 * double(GiB);
  p.ost_stream_latency_s = 60e-6;
  p.ost_small_service_s = 110e-6;   // buffered small RPC
  p.ost_sync_extra_s = 110e-6;      // unbatched synchronous records
  p.slice_bytes = 4 * MiB;          // max RPC; actual = min(stripe, this)
  p.rpc_overhead_s = 80e-6;         // per streaming RPC issued
  p.stripe_lock_overhead_s = 50e-6; // extent lock per OST touched
  p.client_stream_bandwidth_bps = 0.62 * double(GiB);

  p.mds_slots = 32;
  p.mds_create_service_s = 62e-6;
  p.mds_meta_service_s = 30e-6;

  p.link_bandwidth_bps = 12.5e9;    // Slingshot 100 Gb/s per NIC direction
  p.link_latency_s = 4e-6;
  p.nics_per_node = 1;              // one Cassini NIC per CPU node
  p.shm_bandwidth_bps = 40e9;       // in-node gather over DDR4 (8 channels)
  p.shm_latency_s = 0.4e-6;
  p.shm_numa_factor = 1.6;          // cross-chiplet hop on Zen2
  p.numa_per_node = 8;              // 8 NUMA domains x 16 ranks

  p.sync_write_threshold = 64 * KiB;
  p.small_write_meta_s = 0.55e-3;   // per-line lock/ack round trip
  p.small_write_data_s = 1.04e-3;
  p.syscall_overhead_s = 2e-6;
  p.client_mem_bandwidth_bps = 8e9;
  p.cached_read_service_s = 10e-6;

  p.noise_amplitude = 0.06;
  p.noise_seed = 0xDA9DE1;
  p.default_stripe = {1, 1 * MiB};
  return p;
}

SystemProfile discoverer() {
  SystemProfile p;
  p.name = "discoverer";
  p.ranks_per_node = 128;

  p.ost_count = 4;                  // the paper: 2.1 PB LFS, 4 OSTs
  p.ost_bandwidth_bps = 1.4 * double(GiB);
  p.ost_stream_latency_s = 80e-6;
  p.ost_small_service_s = 15e-6;    // fewer, faster (NVMe-backed) OSTs
  p.ost_sync_extra_s = 15e-6;
  p.slice_bytes = 1 * MiB;
  p.client_stream_bandwidth_bps = 0.7 * double(GiB);

  p.mds_slots = 8;
  p.mds_create_service_s = 45e-6;
  p.mds_meta_service_s = 25e-6;

  p.link_bandwidth_bps = 10e9;
  p.link_latency_s = 5e-6;
  p.nics_per_node = 1;
  p.shm_bandwidth_bps = 30e9;
  p.shm_latency_s = 0.5e-6;
  p.shm_numa_factor = 1.4;
  p.numa_per_node = 2;              // dual-socket Ice Lake

  p.sync_write_threshold = 64 * KiB;
  p.small_write_meta_s = 0.30e-3;
  p.small_write_data_s = 0.28e-3;
  p.syscall_overhead_s = 2e-6;
  p.client_mem_bandwidth_bps = 8e9;
  p.cached_read_service_s = 10e-6;

  p.noise_amplitude = 0.18;         // Fig 2 shows visible fluctuation
  p.noise_seed = 0xD15C0;
  p.default_stripe = {1, 1 * MiB};
  return p;
}

SystemProfile vega() {
  SystemProfile p;
  p.name = "vega";
  p.ranks_per_node = 128;

  p.ost_count = 80;                 // 1 PB LFS, 80 OSTs
  p.ost_bandwidth_bps = 0.5 * double(GiB);
  p.ost_stream_latency_s = 120e-6;
  p.ost_small_service_s = 250e-6;   // busy shared OSTs
  p.ost_sync_extra_s = 250e-6;
  p.slice_bytes = 1 * MiB;
  p.client_stream_bandwidth_bps = 0.45 * double(GiB);

  p.mds_slots = 8;
  p.mds_create_service_s = 80e-6;
  p.mds_meta_service_s = 40e-6;

  p.link_bandwidth_bps = 12.5e9;    // ConnectX-6 HDR100
  p.link_latency_s = 4e-6;
  p.nics_per_node = 1;
  p.shm_bandwidth_bps = 35e9;
  p.shm_latency_s = 0.4e-6;
  p.shm_numa_factor = 1.6;          // Zen3 chiplets
  p.numa_per_node = 8;

  p.sync_write_threshold = 64 * KiB;
  p.small_write_meta_s = 0.60e-3;
  p.small_write_data_s = 0.40e-3;
  p.syscall_overhead_s = 2e-6;
  p.client_mem_bandwidth_bps = 8e9;
  p.cached_read_service_s = 10e-6;

  // Shared, busy file system: large background noise gives Fig 2's
  // "inconsistent performance, lacking clear scaling behaviour".
  p.noise_amplitude = 0.55;
  p.noise_seed = 0x3E6A;
  p.default_stripe = {1, 1 * MiB};
  return p;
}

SystemProfile system_profile(const std::string& name) {
  if (name == "dardel") return dardel();
  if (name == "discoverer") return discoverer();
  if (name == "vega") return vega();
  throw UsageError("unknown system profile '" + name + "'");
}

}  // namespace bitio::fsim
