#pragma once
// In-memory object store with Lustre-flavoured semantics: a directory tree
// whose files carry a RAID0 stripe layout over simulated OSTs.
//
// This is the *correctness* half of the storage simulator: bytes written
// through PosixFs land here and can be read back bit-exactly, and
// `lfs getstripe`-style layout queries (Listing 1 in the paper) are answered
// from the recorded layout.  The *timing* half (fsim::StorageModel) replays
// the operation trace against a queueing model.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fsim/types.hpp"

namespace bitio::fsim {

/// Split "a/b/c" into {"a","b","c"}; leading '/' and repeated '/' ignored.
std::vector<std::string> split_path(const std::string& path);
/// Parent of "a/b/c" is "a/b"; parent of "a" is "".
std::string parent_path(const std::string& path);
/// Last component of the path.
std::string base_name(const std::string& path);

struct FileNode {
  FileId id = kNoFile;
  std::string path;
  std::vector<std::uint8_t> data;   // absent when store_data is off
  std::uint64_t size = 0;           // authoritative size
  StripeLayout layout;
  std::uint64_t create_order = 0;   // global creation sequence number
};

struct DirNode {
  std::string path;
  StripeSettings default_stripe;    // inherited by files created inside
  bool has_explicit_stripe = false;
  std::map<std::string, std::unique_ptr<DirNode>> dirs;
  std::map<std::string, FileId> files;
};

/// The shared store.  Not thread-safe by itself; PosixFs serializes access.
class ObjectStore {
public:
  /// `ost_count` bounds stripe placement; `store_data=false` keeps only
  /// sizes (used by large modelled runs that never read back).
  explicit ObjectStore(int ost_count, bool store_data = true,
                       StripeSettings default_stripe = {});

  int ost_count() const { return ost_count_; }
  bool stores_data() const { return store_data_; }

  // -- namespace operations ------------------------------------------------
  /// Create directories along the path (mkdir -p).  Returns the leaf.
  DirNode& mkdirs(const std::string& path);
  bool dir_exists(const std::string& path) const;
  bool file_exists(const std::string& path) const;

  /// `lfs setstripe` on a directory: future files inherit these settings.
  void set_dir_stripe(const std::string& path, StripeSettings settings);
  StripeSettings dir_stripe(const std::string& path) const;

  /// Create a file (parent directories are created implicitly, matching the
  /// behaviour of the real code which mkdir-s its output tree up front).
  /// `stripe_override` beats the directory default.  Fails if it exists.
  FileNode& create_file(const std::string& path,
                        std::optional<StripeSettings> stripe_override = {});

  /// Lookup; throws IoError if missing.
  FileNode& file(const std::string& path);
  const FileNode& file(const std::string& path) const;
  FileNode& file_by_id(FileId id);
  const FileNode& file_by_id(FileId id) const;

  void unlink(const std::string& path);

  /// Atomic namespace move: `to` is replaced if it exists (POSIX rename
  /// semantics — the commit primitive for write-tmp-then-rename manifests).
  /// Both paths must be files; throws IoError if `from` is missing.
  void rename(const std::string& from, const std::string& to);

  /// All files under `path` (recursive), in creation order.
  std::vector<const FileNode*> list_recursive(const std::string& path) const;
  /// Every file in the store, in creation order.
  std::vector<const FileNode*> all_files() const;

  // -- data operations (used by PosixFs) ------------------------------------
  void pwrite(FileNode& node, std::uint64_t offset,
              const std::uint8_t* data, std::uint64_t n);
  std::uint64_t pread(const FileNode& node, std::uint64_t offset,
                      std::uint8_t* out, std::uint64_t n) const;
  /// Drop stored bytes for a file (truncate-to-zero + rewrite pattern used
  /// by checkpoint "iteration 0 overwrite").
  void truncate(FileNode& node, std::uint64_t size);

private:
  const DirNode* find_dir(const std::string& path) const;
  DirNode* find_dir(const std::string& path);
  StripeLayout make_layout(StripeSettings settings);

  int ost_count_;
  bool store_data_;
  DirNode root_;
  std::vector<std::unique_ptr<FileNode>> files_;  // index == FileId
  std::uint64_t next_create_order_ = 0;
  std::uint64_t next_object_id_ = 0x11b00000;  // cosmetic, Listing-1 style
  int next_ost_ = 0;                           // round-robin base allocation
};

}  // namespace bitio::fsim
