#include "fsim/storage_model.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <utility>

#include "fsim/des.hpp"
#include "util/error.hpp"

namespace bitio::fsim {

namespace {

double mean_over_clients(const std::vector<ClientTimes>& clients,
                         double ClientTimes::* member) {
  if (clients.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& c : clients) sum += c.*member;
  return sum / double(clients.size());
}

/// Pick the OST serving byte `offset` of a file under RAID0 striping.
int ost_for_offset(const StripeLayout& layout, std::uint64_t offset) {
  const auto& s = layout.settings;
  const std::uint64_t stripe_index = (offset / s.stripe_size) %
                                     std::uint64_t(s.stripe_count);
  return layout.ost_indices[std::size_t(stripe_index)];
}

}  // namespace

double ReplayReport::mean_meta_time() const {
  return mean_over_clients(clients, &ClientTimes::meta);
}
double ReplayReport::mean_write_time() const {
  return mean_over_clients(clients, &ClientTimes::write);
}
double ReplayReport::mean_read_time() const {
  return mean_over_clients(clients, &ClientTimes::read);
}
double ReplayReport::mean_cpu_time() const {
  return mean_over_clients(clients, &ClientTimes::cpu);
}
double ReplayReport::mean_drain_time() const {
  return mean_over_clients(clients, &ClientTimes::drain);
}

ReplayReport replay_trace(const SystemProfile& profile,
                          const ObjectStore& store,
                          const std::vector<TraceOp>& trace, int nclients) {
  if (nclients <= 0) throw UsageError("replay_trace: nclients must be > 0");

  // Group op indices into FIFO sequences keyed by (client, lane),
  // preserving program order within each sequence.  Lane 0 is the client's
  // critical path; every drain lane is an independent concurrent program of
  // the same client (all lanes start at t = 0 and share the client's node
  // link and the OSTs).
  struct Sequence {
    ClientId client = 0;
    std::uint32_t lane = 0;
    std::vector<std::uint32_t> ops;
  };
  std::vector<Sequence> sequences;
  std::map<std::pair<ClientId, std::uint32_t>, std::size_t> sequence_of;
  for (std::uint32_t i = 0; i < trace.size(); ++i) {
    const TraceOp& op = trace[i];
    if (op.client >= ClientId(nclients))
      throw UsageError("replay_trace: client id out of range");
    const auto key = std::make_pair(op.client, op.lane);
    auto [it, inserted] = sequence_of.try_emplace(key, sequences.size());
    if (inserted) sequences.push_back({op.client, op.lane, {}});
    sequences[it->second].ops.push_back(i);
  }

  const int nnodes =
      (nclients + profile.ranks_per_node - 1) / profile.ranks_per_node;

  FifoResource mds(profile.mds_slots);
  std::vector<FifoResource> osts(std::size_t(profile.ost_count),
                                 FifoResource(1));
  // One FIFO per (node, NIC); nics_per_node = 1 keeps the historical
  // one-link-per-node layout (and byte-identical replay timings).
  const int nics = std::max(1, profile.nics_per_node);
  std::vector<FifoResource> links(std::size_t(nnodes) * std::size_t(nics),
                                  FifoResource(1));
  const auto link_of = [&](ClientId client) -> FifoResource& {
    const int node = int(client) / profile.ranks_per_node;
    return links[std::size_t(node) * std::size_t(nics) +
                 std::size_t(int(client) % nics)];
  };
  // Intra-node shared-memory channel, one per node (xfer gathers).
  std::vector<FifoResource> shm(std::size_t(nnodes), FifoResource(1));
  NoiseStream noise(profile.noise_amplitude, profile.noise_seed);

  ReplayReport report;
  report.clients.assign(std::size_t(nclients), ClientTimes{});
  report.op_durations.assign(trace.size(), 0.0);

  // Min-heap of (ready time, sequence, next op index within the sequence).
  struct Pending {
    double time;
    std::size_t sequence;
    std::uint32_t index;
    bool operator>(const Pending& other) const { return time > other.time; }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> heap;
  for (std::size_t s = 0; s < sequences.size(); ++s)
    if (!sequences[s].ops.empty()) heap.push({0.0, s, 0});

  // Files already read once: later readers hit the page cache.
  std::set<FileId> first_read;

  while (!heap.empty()) {
    const Pending pending = heap.top();
    heap.pop();
    const Sequence& seq = sequences[pending.sequence];
    const std::uint32_t trace_index = seq.ops[pending.index];
    const TraceOp& op = trace[trace_index];
    ClientTimes& times = report.clients[std::size_t(seq.client)];
    // Drain lanes accumulate into `drain` only; the critical-path buckets
    // stay untouched by overlapped work.
    const bool drain_lane = seq.lane > 0;
    const auto charge = [&](double ClientTimes::* member, double dt) {
      if (drain_lane)
        times.drain += dt;
      else
        times.*member += dt;
    };
    const double t0 = pending.time;
    double done = t0;

    // Dispatch on the op's service class (exhaustive over ServiceClass —
    // a new OpKind must pick its bucket in fsim/types.hpp first).
    switch (service_class(op.kind)) {
    case ServiceClass::meta: {
      const double service =
          (op.kind == OpKind::create || op.kind == OpKind::mkdir)
              ? profile.mds_create_service_s
              : profile.mds_meta_service_s;
      done = mds.submit(t0, service * noise.next() * double(op.op_count));
      charge(&ClientTimes::meta, done - t0);
      if (!drain_lane) times.meta_ops += op.op_count;
      break;
    }
    case ServiceClass::cpu: {
      done = t0 + op.cpu_seconds;
      charge(&ClientTimes::cpu, op.cpu_seconds);
      report.cpu_by_tag[op.tag] += op.cpu_seconds;
      break;
    }
    case ServiceClass::net: {
      // Rank-to-rank gather transfer (topology-modeled aggregation).  The
      // *receiving* rank records the op — seq.client is the gatherer,
      // op.peer the sender — so the fan-in gates the receiver's later
      // ops (its forward hop or container write).  The tag carries the
      // gather level: kShmGatherTag streams through the node's shared-
      // memory channel (with a NUMA penalty when sender and receiver sit
      // in different domains); anything else is an inter-node hop that
      // occupies the sender's NIC and then the receiver's NIC store-and-
      // forward, so concurrent gathers into one aggregator contend on its
      // link.
      if (op.peer >= ClientId(nclients))
        throw UsageError("replay_trace: xfer peer out of range");
      const int recv_node = int(seq.client) / profile.ranks_per_node;
      if (op.tag == kShmGatherTag) {
        double service = profile.shm_latency_s * double(op.op_count) +
                         double(op.bytes) / profile.shm_bandwidth_bps;
        const int per_numa =
            std::max(1, profile.ranks_per_node /
                            std::max(1, profile.numa_per_node));
        const int recv_numa =
            (int(seq.client) % profile.ranks_per_node) / per_numa;
        const int send_numa =
            (int(op.peer) % profile.ranks_per_node) / per_numa;
        if (recv_numa != send_numa) service *= profile.shm_numa_factor;
        done = shm[std::size_t(recv_node)].submit(t0, service * noise.next());
      } else {
        const double occupancy =
            double(op.bytes) / profile.link_bandwidth_bps;
        FifoResource& snd = link_of(op.peer);
        FifoResource& rcv = link_of(seq.client);
        const double sent = snd.submit(
            t0, (profile.link_latency_s * double(op.op_count) + occupancy) *
                    noise.next());
        done = (&rcv == &snd) ? sent : rcv.submit(sent, occupancy);
      }
      charge(&ClientTimes::write, done - t0);
      report.bytes_transferred += op.bytes;
      break;
    }
    case ServiceClass::data: {
      const StripeLayout& layout = store.file_by_id(op.file).layout;
      FifoResource& link = link_of(seq.client);
      const std::uint64_t record =
          op.op_count > 0 ? op.bytes / op.op_count : op.bytes;
      const bool is_batch = op.kind == OpKind::batch_write;
      const bool is_write = op.kind == OpKind::write || is_batch;

      if (op.kind == OpKind::write && record < profile.sync_write_threshold) {
        // Small records (stdio lines, tiny buffered appends): per-record
        // lock/ack round trips charge the caller (meta + data split), while
        // the payload drains through write-back caching — the OST service
        // extends the job makespan but not the caller's syscall time.  All
        // records of this coalesced op hit the stripe object holding the
        // starting offset.
        const double meta_serial = double(op.op_count) *
                                   profile.small_write_meta_s * noise.next();
        const double data_serial =
            double(op.op_count) * profile.small_write_data_s;
        FifoResource& ost =
            osts[std::size_t(ost_for_offset(layout, op.offset))];
        const double per_record =
            profile.ost_small_service_s +
            (op.op_count >= 2 ? profile.ost_sync_extra_s : 0.0);
        const double service =
            double(op.op_count) * per_record * noise.next() +
            double(op.bytes) / profile.ost_bandwidth_bps;
        const double drain_done = ost.submit(t0, service);
        report.makespan = std::max(report.makespan, drain_done);
        done = t0 + meta_serial + data_serial;
        charge(&ClientTimes::meta, meta_serial);
        charge(&ClientTimes::write, data_serial);
        if (drain_lane)
          times.drain_calls += op.op_count;
        else
          times.write_calls += op.op_count;
        report.bytes_written += op.bytes;
        report.op_durations[trace_index] = done - t0;
        times.end = std::max(times.end, done);
        report.makespan = std::max(report.makespan, done);
        const std::uint32_t next_index = pending.index + 1;
        if (next_index < seq.ops.size())
          heap.push({done, pending.sequence, next_index});
        continue;
      }
      if (op.kind == OpKind::read && !first_read.insert(op.file).second) {
        // Page-cache hit: everyone after the first reader of this file.
        done = link.submit(t0, profile.cached_read_service_s +
                                   double(op.bytes) /
                                       profile.link_bandwidth_bps);
        charge(&ClientTimes::read, done - t0);
        if (!drain_lane) times.read_calls += op.op_count;
        report.bytes_read += op.bytes;
        report.op_durations[trace_index] = done - t0;
        times.end = std::max(times.end, done);
        report.makespan = std::max(report.makespan, done);
        const std::uint32_t next_index = pending.index + 1;
        if (next_index < seq.ops.size())
          heap.push({done, pending.sequence, next_index});
        continue;
      }
      {
        // Streaming path: syscall overhead, then sliced transfers through
        // the node link and the stripe-mapped OSTs.  OST request latency
        // pipelines across queued slices (it delays completion, not server
        // occupancy); one client's pipeline is capped at its streaming
        // bandwidth.  A batch_write reaches here regardless of record size
        // (the ring bypasses the small-record synchronous round trip) and
        // pays one doorbell plus a tiny per-sqe charge instead of
        // per-call syscalls.
        const double setup =
            is_batch ? (op.tag == kBatchDoorbellTag ? profile.batch_setup_s
                                                    : 0.0) +
                           double(op.op_count) * profile.sqe_overhead_s
                     : double(op.op_count) * profile.syscall_overhead_s;
        const double t_start = t0 + setup;
        // RPC size: stripe size clamped to [64 KiB, slice_bytes].
        const std::uint64_t slice = std::clamp<std::uint64_t>(
            layout.settings.stripe_size, 64 * 1024, profile.slice_bytes);
        const std::uint64_t nslices = (op.bytes + slice - 1) / slice;
        const std::uint64_t osts_touched = std::min<std::uint64_t>(
            std::uint64_t(layout.settings.stripe_count), nslices);
        done = t_start + double(nslices) * profile.rpc_overhead_s +
               double(osts_touched) * profile.stripe_lock_overhead_s +
               double(op.bytes) / profile.client_stream_bandwidth_bps;
        std::uint64_t remaining = op.bytes;
        std::uint64_t offset = op.offset;
        while (remaining > 0) {
          const std::uint64_t n = std::min<std::uint64_t>(remaining, slice);
          const double link_done = link.submit(
              t_start, profile.link_latency_s +
                           double(n) / profile.link_bandwidth_bps);
          FifoResource& ost =
              osts[std::size_t(ost_for_offset(layout, offset))];
          const double occupancy =
              double(n) / profile.ost_bandwidth_bps * noise.next();
          done = std::max(done, ost.submit(link_done, occupancy) +
                                    profile.ost_stream_latency_s);
          remaining -= n;
          offset += n;
        }
      }

      if (is_write) {
        charge(&ClientTimes::write, done - t0);
        if (drain_lane)
          times.drain_calls += op.op_count;
        else
          times.write_calls += op.op_count;
        report.bytes_written += op.bytes;
      } else {
        charge(&ClientTimes::read, done - t0);
        if (!drain_lane) times.read_calls += op.op_count;
        report.bytes_read += op.bytes;
      }
      break;
    }
    }

    report.op_durations[trace_index] = done - t0;
    times.end = std::max(times.end, done);
    report.makespan = std::max(report.makespan, done);
    const std::uint32_t next = pending.index + 1;
    if (next < seq.ops.size())
      heap.push({done, pending.sequence, next});
  }
  for (const auto& ost : osts) {
    report.ost_busy_seconds.push_back(ost.busy_seconds());
    report.ost_busy_until.push_back(ost.busy_until());
  }
  report.mds_busy_seconds = mds.busy_seconds();
  return report;
}

double parallel_cpu_seconds(double serial_seconds, int threads,
                            std::uint64_t nblocks,
                            double per_block_overhead_s) {
  if (serial_seconds <= 0.0 || nblocks == 0) return 0.0;
  const std::uint64_t lanes = threads < 1 ? 1 : std::uint64_t(threads);
  const std::uint64_t waves = (nblocks + lanes - 1) / lanes;
  return serial_seconds * double(waves) / double(nblocks) +
         double(waves) * per_block_overhead_s;
}

}  // namespace bitio::fsim
