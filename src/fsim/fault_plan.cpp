#include "fsim/fault_plan.hpp"

#include <set>

#include "util/error.hpp"
#include "util/table.hpp"

namespace bitio::fsim {

namespace {

/// splitmix64: the one-shot mixer used for all deterministic draws, so a
/// plan's behaviour is a pure function of (seed, ordinal).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

FaultKind fault_kind_from_name(const std::string& name) {
  if (name == "torn_write") return FaultKind::torn_write;
  if (name == "bit_flip") return FaultKind::bit_flip;
  if (name == "eio") return FaultKind::eio;
  if (name == "enospc") return FaultKind::enospc;
  if (name == "rank_crash") return FaultKind::rank_crash;
  if (name == "stall") return FaultKind::stall;
  throw UsageError("fault plan: unknown fault kind '" + name + "'");
}

FaultPlan::FaultPlan(std::uint64_t seed, std::vector<FaultRule> rules)
    : seed_(seed), rules_(std::move(rules)) {
  matches_.assign(rules_.size(), 0);
  firings_.assign(rules_.size(), 0);
}

void FaultPlan::validate() const {
  std::set<int> crash_ranks;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& rule = rules_[i];
    if (rule.probability < 0.0 || rule.probability > 1.0)
      throw UsageError(strfmt(
          "fault plan: probability must be in [0,1], got %g", rule.probability));
    if (rule.times < 0)
      throw UsageError(strfmt("fault plan: times must be >= 0, got %d",
                              rule.times));
    if (rule.kind == FaultKind::none)
      throw UsageError("fault plan: rule kind must not be 'none'");
    if (rule.kind == FaultKind::rank_crash) {
      if (rule.rank < 0)
        throw UsageError("fault plan: rank_crash rule needs a rank >= 0");
      if (!crash_ranks.insert(rule.rank).second)
        throw UsageError(strfmt(
            "fault plan: rule %zu schedules a second rank_crash for rank %d",
            i, rule.rank));
      continue;
    }
    if (rule.nth > 0 && rule.probability > 0.0)
      throw UsageError(strfmt(
          "fault plan: rule %zu sets both nth and probability; pick one "
          "targeting mode per rule",
          i));
    if (rule.nth == 0 && rule.probability == 0.0)
      throw UsageError(
          "fault plan: rule needs nth >= 1 or probability > 0 to ever fire");
  }
}

std::optional<FaultKind> FaultPlan::next_write_fault(const std::string& path,
                                                     ClientId client,
                                                     std::uint64_t bytes) {
  (void)bytes;
  const std::uint64_t ordinal = write_ordinal_++;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    FaultRule& rule = rules_[i];
    if (rule.kind == FaultKind::rank_crash) continue;
    if (rule.rank >= 0 && ClientId(rule.rank) != client) continue;
    if (!rule.path.empty() && path.find(rule.path) == std::string::npos)
      continue;
    const std::uint64_t match = ++matches_[i];
    if (rule.times > 0 && firings_[i] >= std::uint64_t(rule.times)) continue;
    bool fire = false;
    if (rule.nth > 0) {
      fire = match == rule.nth;
    } else {
      // Uniform draw in [0,1) from the (seed, rule, ordinal) hash.
      const std::uint64_t h = mix(seed_ ^ mix(ordinal ^ (i << 48)));
      fire = double(h >> 11) * 0x1.0p-53 < rule.probability;
    }
    if (!fire) continue;
    ++firings_[i];
    ++injected_;
    return rule.kind;
  }
  return std::nullopt;
}

bool FaultPlan::should_crash(int rank, std::uint64_t step) const {
  for (const FaultRule& rule : rules_)
    if (rule.kind == FaultKind::rank_crash && rule.rank == rank &&
        rule.step == step)
      return true;
  return false;
}

std::uint64_t FaultPlan::flip_bit_index(std::uint64_t firing,
                                        std::uint64_t bytes) const {
  if (bytes == 0) return 0;
  return mix(seed_ ^ mix(firing + 0x5151ull)) % (bytes * 8);
}

std::uint64_t FaultPlan::torn_prefix(std::uint64_t firing,
                                     std::uint64_t bytes) const {
  if (bytes == 0) return 0;
  // Keep [0, bytes) bytes — always drops at least the last byte.
  return mix(seed_ ^ mix(firing + 0x70e7ull)) % bytes;
}

FaultPlan FaultPlan::from_json(const Json& table) {
  std::vector<FaultRule> rules;
  if (table.contains("rules")) {
    for (const Json& entry : table.at("rules").as_array()) {
      FaultRule rule;
      rule.kind =
          fault_kind_from_name(entry.get_or("kind", Json("")).as_string());
      rule.path = entry.get_or("path", Json("")).as_string();
      rule.nth = entry.get_or("nth", Json(0)).as_uint();
      rule.probability = entry.get_or("probability", Json(0.0)).as_number();
      rule.times = int(entry.get_or("times", Json(1)).as_int());
      rule.rank = int(entry.get_or("rank", Json(-1)).as_int());
      rule.step = entry.get_or("step", Json(0)).as_uint();
      rules.push_back(std::move(rule));
    }
  }
  FaultPlan plan(table.get_or("seed", Json(0)).as_uint(), std::move(rules));
  plan.validate();
  return plan;
}

std::string FaultPlan::to_toml() const {
  std::string out;
  out += strfmt("seed = %llu\n", static_cast<unsigned long long>(seed_));
  out += "rules = [";
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& r = rules_[i];
    out += i == 0 ? " " : ", ";
    out += strfmt("{ kind = \"%s\", path = \"%s\", nth = %llu, "
                  "probability = %g, times = %d, rank = %d, step = %llu }",
                  fault_name(r.kind), r.path.c_str(),
                  static_cast<unsigned long long>(r.nth), r.probability,
                  r.times, r.rank, static_cast<unsigned long long>(r.step));
  }
  out += " ]\n";
  return out;
}

}  // namespace bitio::fsim
