#pragma once
// Shared vocabulary types for the storage simulator.

#include <cstdint>
#include <string>
#include <vector>

namespace bitio::fsim {

using FileId = std::uint64_t;
using ClientId = std::uint32_t;

inline constexpr FileId kNoFile = ~FileId(0);

/// Lustre-style striping parameters.  `lfs setstripe -c <count> -S <size>`.
struct StripeSettings {
  int stripe_count = 1;                    // -c; number of OSTs per file
  std::uint64_t stripe_size = 1 << 20;     // -S; bytes per stripe
};

/// Resolved layout of one file, as `lfs getstripe` reports it.
struct StripeLayout {
  StripeSettings settings;
  int stripe_offset = 0;           // first OST index (lmm_stripe_offset)
  std::vector<int> ost_indices;    // obdidx list, RAID0 round-robin order
  std::vector<std::uint64_t> object_ids;  // objid per OST object
  std::string pattern = "raid0";
};

/// Kinds of operation in an I/O trace.  `create` implies `open`.
enum class OpKind : std::uint8_t {
  create,   // metadata: allocate file + objects
  open,     // metadata: lookup
  close,    // metadata: size/commit update
  fsync,    // metadata: commit
  stat,     // metadata: attribute read
  unlink,   // metadata: remove
  mkdir,    // metadata: directory create
  rename,   // metadata: atomic namespace swap (manifest commit)
  write,    // data transfer to OSTs
  read,     // data transfer from OSTs
  xfer,     // rank-to-rank gather transfer (shm in-node, NIC across nodes)
  cpu,      // client-local compute charged by upper layers (compress, copy)
  batch_write,  // queue-pair submission: op_count sqes in one ring doorbell
};

/// Tags carried by OpKind::xfer records, naming the gather level of the
/// two-level aggregation path.  The recording site (bp::Writer via
/// FsClient::transfer) picks the tag from the topo::Mapper placement; the
/// timing replay selects the modeled channel from it and Darshan capture
/// buckets the per-level gather counters by it.  tools/lint_invariants
/// (topology-registry rule) checks all three stay in lockstep.
inline constexpr const char* kShmGatherTag = "shm_gather";
inline constexpr const char* kNetGatherTag = "net_gather";

/// Tag carried by the first OpKind::batch_write record of each
/// SubmissionQueue::submit() call (the ring doorbell).  The timing replay
/// charges SystemProfile::batch_setup_s only on doorbell-tagged records, so
/// the setup cost is amortized over the whole batch while every record pays
/// the tiny per-sqe charge; Darshan capture counts doorbells as
/// batches_submitted and uses them to delimit the ops-per-batch histogram.
inline constexpr const char* kBatchDoorbellTag = "doorbell";

/// How the timing replay and Darshan capture bucket an operation: against
/// the metadata server, as a data transfer to/from the OSTs, or as
/// client-local compute.  service_class() is the exhaustive mapping —
/// tools/lint_invariants checks that every OpKind enumerator has a case
/// here, in op_name(), and in the Darshan capture switch, so a new kind
/// cannot silently fall into a catch-all bucket.
enum class ServiceClass : std::uint8_t { meta, data, net, cpu };

inline ServiceClass service_class(OpKind kind) {
  switch (kind) {
    case OpKind::create: return ServiceClass::meta;
    case OpKind::open: return ServiceClass::meta;
    case OpKind::close: return ServiceClass::meta;
    case OpKind::fsync: return ServiceClass::meta;
    case OpKind::stat: return ServiceClass::meta;
    case OpKind::unlink: return ServiceClass::meta;
    case OpKind::mkdir: return ServiceClass::meta;
    case OpKind::rename: return ServiceClass::meta;
    case OpKind::write: return ServiceClass::data;
    case OpKind::read: return ServiceClass::data;
    case OpKind::xfer: return ServiceClass::net;
    case OpKind::cpu: return ServiceClass::cpu;
    case OpKind::batch_write: return ServiceClass::data;
  }
  return ServiceClass::meta;
}

inline bool is_meta(OpKind kind) {
  return service_class(kind) == ServiceClass::meta;
}

inline const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::create: return "create";
    case OpKind::open: return "open";
    case OpKind::close: return "close";
    case OpKind::fsync: return "fsync";
    case OpKind::stat: return "stat";
    case OpKind::unlink: return "unlink";
    case OpKind::mkdir: return "mkdir";
    case OpKind::rename: return "rename";
    case OpKind::write: return "write";
    case OpKind::read: return "read";
    case OpKind::xfer: return "xfer";
    case OpKind::cpu: return "cpu";
    case OpKind::batch_write: return "batch_write";
  }
  return "?";
}

/// Kinds of fault the resilience layer can inject at the FsClient boundary
/// (see fsim::FaultPlan).  Tagged on the TraceOp of the affected operation
/// so Darshan capture and timing replay can attribute every injection.
enum class FaultKind : std::uint8_t {
  none = 0,
  torn_write,   // only a prefix of the extent was persisted
  bit_flip,     // one bit inside the persisted extent was flipped
  eio,          // transient I/O error: the call throws, nothing persisted
  enospc,       // transient out-of-space: the call throws, nothing persisted
  rank_crash,   // the rank dies at a configured step (harness-level)
  stall,        // the write wedges until SharedFs::cancel_stalls() aborts it
};

inline const char* fault_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::none: return "none";
    case FaultKind::torn_write: return "torn_write";
    case FaultKind::bit_flip: return "bit_flip";
    case FaultKind::eio: return "eio";
    case FaultKind::enospc: return "enospc";
    case FaultKind::rank_crash: return "rank_crash";
    case FaultKind::stall: return "stall";
  }
  return "?";
}

/// One record of a client I/O trace.  Consecutive sequential writes by the
/// same client to the same descriptor are coalesced into a single record
/// with op_count > 1 so huge runs stay tractable; the timing model charges
/// per-op overhead `op_count` times.
struct TraceOp {
  ClientId client = 0;
  OpKind kind = OpKind::open;
  FileId file = kNoFile;
  std::uint64_t offset = 0;      // starting byte offset (write/read)
  std::uint64_t bytes = 0;       // total bytes (write/read)
  std::uint32_t op_count = 1;    // number of coalesced calls
  double cpu_seconds = 0.0;      // only for OpKind::cpu
  std::string tag;               // cpu subcategory ("compress", "memcopy",
                                 // ...) or xfer gather level (kShmGatherTag
                                 // / kNetGatherTag)
  // Logical execution lane within the client.  Lane 0 is the rank's
  // critical path; lanes > 0 are overlapped drain lanes (BP5 AsyncWrite):
  // their ops replay concurrently with lane 0 and are attributed to
  // ClientTimes::drain instead of meta/write/read.
  std::uint32_t lane = 0;
  // Fault injected into this operation, if any.  For torn writes `bytes`
  // is the *persisted* prefix; for eio/enospc the write threw and `bytes`
  // is 0.  Faulted ops are never coalesced.
  FaultKind fault = FaultKind::none;
  // Remote endpoint of an OpKind::xfer gather transfer — the *sending*
  // rank (the receiver records the op so the fan-in gates its later trace
  // ops); unused by every other kind.  The replay derives the remote node
  // / NIC from it.  (Deliberately last: the rest of the struct keeps its
  // historical aggregate-initialization order.)
  ClientId peer = 0;
};

}  // namespace bitio::fsim
