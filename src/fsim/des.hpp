#pragma once
// Discrete-event building blocks for the storage timing model.
//
// Resources are deterministic FIFO queues with a fixed number of service
// slots.  Because service times do not depend on future arrivals, a job's
// completion time can be computed greedily at submission: jobs are submitted
// in nondecreasing arrival order (the replay loop pops clients from a time-
// ordered heap), so FIFO fairness is preserved without callback plumbing.

#include <cstdint>
#include <queue>
#include <vector>

namespace bitio::fsim {

/// FIFO resource with `slots` parallel servers and deterministic service
/// times.  submit() must be called with nondecreasing arrival times to keep
/// FIFO semantics (the replay loop guarantees this).
class FifoResource {
public:
  explicit FifoResource(int slots = 1);

  /// Submit a job arriving at `arrival` needing `service` seconds; returns
  /// its completion time.
  double submit(double arrival, double service);

  /// Time at which the resource last finishes work (0 if never used).
  double busy_until() const { return busy_until_; }

  /// Total service seconds performed.
  double busy_seconds() const { return busy_seconds_; }

private:
  // Min-heap of per-slot free times.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_;
  double busy_until_ = 0.0;
  double busy_seconds_ = 0.0;
};

/// Deterministic multiplicative noise stream: factor(i) in
/// [1-amplitude, 1+amplitude], reproducible for a given seed.
class NoiseStream {
public:
  NoiseStream(double amplitude, std::uint64_t seed)
      : amplitude_(amplitude), state_(seed ^ 0x9E3779B97F4A7C15ull) {}

  double next();

private:
  double amplitude_;
  std::uint64_t state_;
};

}  // namespace bitio::fsim
