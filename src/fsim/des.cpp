#include "fsim/des.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace bitio::fsim {

FifoResource::FifoResource(int slots) {
  if (slots <= 0) throw UsageError("FifoResource: slots must be positive");
  for (int i = 0; i < slots; ++i) free_.push(0.0);
}

double FifoResource::submit(double arrival, double service) {
  const double slot_free = free_.top();
  free_.pop();
  const double start = std::max(arrival, slot_free);
  const double done = start + service;
  free_.push(done);
  busy_until_ = std::max(busy_until_, done);
  busy_seconds_ += service;
  return done;
}

double NoiseStream::next() {
  if (amplitude_ <= 0.0) return 1.0;
  const std::uint64_t z = splitmix64(state_);
  const double u = double(z >> 11) * 0x1.0p-53;  // [0,1)
  return 1.0 + amplitude_ * (2.0 * u - 1.0);
}

}  // namespace bitio::fsim
