#pragma once
// Queueing-model replay of an I/O trace: the *timing* half of the storage
// simulator.
//
// Model (per system profile):
//   * MDS: one FIFO resource with a few service slots; every metadata op
//     (create/open/close/stat/unlink/mkdir/fsync) queues here.  At 25600
//     ranks creating 51k files per dump this queue is what reproduces the
//     paper's 17.9 s/process metadata cost for the original I/O (Fig 5).
//   * OSTs: one FIFO resource each.  Large sequential writes are sliced
//     (slice_bytes) and streamed through the client's node link and then
//     the stripe-mapped OST (service = latency + bytes/bandwidth).  Small
//     synchronous records (record size < sync_write_threshold — the stdio
//     pattern of BIT1's original .dat output) instead pay a per-record
//     client round-trip AND occupy the OST for an IOPS-limited service
//     time; this is what keeps original-I/O throughput at ~0.1-0.4 GiB/s.
//   * Node links: one FIFO per node, shared by its ranks_per_node clients.
//   * CPU ops (compression, memcopy) advance only the issuing client.
//
// Absolute constants are calibrated per system (system_profiles.cpp) to the
// paper's anchor numbers; the *shapes* (who wins, where the crossovers are)
// come from the queueing structure itself.

#include <map>
#include <string>
#include <vector>

#include "fsim/object_store.hpp"
#include "fsim/types.hpp"

namespace bitio::fsim {

/// Calibrated constants for one HPC system's storage stack.
struct SystemProfile {
  std::string name = "generic";
  int ranks_per_node = 128;

  // Object storage targets.
  int ost_count = 48;
  double ost_bandwidth_bps = 0.6e9;     // streaming bandwidth per OST
  // Per-slice completion latency.  Queued requests pipeline: latency adds
  // to each request's completion but does not occupy the server, so deep
  // queues reach full bandwidth while a lone stream sees lat + transfer.
  double ost_stream_latency_s = 250e-6;
  double ost_small_service_s = 110e-6;  // per small buffered RPC (IOPS cap)
  // Extra per-record service when small records arrive as a synchronous
  // stream (stdio, op_count >= 2): no write-back batching on the server.
  double ost_sync_extra_s = 110e-6;
  // Transfer slicing granularity: the RPC size is the file's stripe size
  // clamped to [64 KiB, slice_bytes] (Lustre clients cannot batch dirty
  // pages across stripe boundaries, so small stripes force small RPCs —
  // the stripe-size sensitivity of Fig 9).
  std::uint64_t slice_bytes = 1 << 20;
  // Client-side cost per streaming RPC issued (marshalling + request
  // bookkeeping); more, smaller slices cost more caller time.
  double rpc_overhead_s = 0.0;
  // Extent-lock acquisition per distinct OST a write touches: wider
  // striping costs slightly more caller time per operation (Fig 9's
  // diminishing returns at high stripe counts).
  double stripe_lock_overhead_s = 0.0;
  // One client's maximum streaming rate (RPC pipeline depth limit); this is
  // what bounds a single-aggregator configuration to ~0.6 GiB/s (Fig 6).
  double client_stream_bandwidth_bps = 0.6e9;

  // Metadata server.
  int mds_slots = 4;
  double mds_create_service_s = 60e-6;
  double mds_meta_service_s = 30e-6;

  // Per-node interconnect links.  Traffic from a node's clients spreads
  // over nics_per_node independent link FIFOs (client % nics_per_node
  // picks the NIC), so nics_per_node = 1 reproduces the historical
  // one-link-per-node model exactly.
  double link_bandwidth_bps = 12.5e9;
  double link_latency_s = 5e-6;
  int nics_per_node = 1;

  // Intra-node shared-memory channel, used by OpKind::xfer gathers tagged
  // kShmGatherTag (rank -> node-leader hop of two-level aggregation).  One
  // FIFO per node: concurrent in-node gathers contend for the memory bus.
  double shm_bandwidth_bps = 20e9;
  double shm_latency_s = 0.5e-6;
  // Service multiplier when an in-node transfer crosses NUMA domains
  // (numa_per_node domains of ranks_per_node / numa_per_node ranks each).
  double shm_numa_factor = 1.0;
  int numa_per_node = 1;

  // Client-side costs.
  std::uint64_t sync_write_threshold = 64 * 1024;  // record size boundary
  // Per-record costs of line-buffered stdio appends (record < threshold,
  // multiple records per call sequence).  The lock/ack round trip is
  // metadata time, the in-call data handling is write time; the payload
  // drains to the OST asynchronously (write-back caching), so OST service
  // extends the job makespan but not the caller's syscall time.
  double small_write_meta_s = 1.8e-3;
  double small_write_data_s = 0.1e-3;
  double syscall_overhead_s = 2e-6;   // per call, streaming path
  // Queue-pair (io_uring-style) batched submission, OpKind::batch_write:
  // one ring doorbell per submit() pays batch_setup_s once, and each sqe
  // in the batch costs only sqe_overhead_s — no per-call syscall and never
  // the small-record synchronous round trip (the ring replaces the
  // per-record lock/ack pattern that dominates stdio-sized appends).
  double batch_setup_s = 3e-6;
  double sqe_overhead_s = 150e-9;
  double client_mem_bandwidth_bps = 8e9;  // for memcopy modelling
  // Re-reads of an already-read file hit the client/OST page cache: only
  // this service time is charged instead of the full OST path.
  double cached_read_service_s = 10e-6;

  // System noise (Vega's "inconsistent performance").
  double noise_amplitude = 0.0;
  std::uint64_t noise_seed = 1;

  // Default striping for files created without an explicit setting.
  StripeSettings default_stripe{1, 1 << 20};
};

/// Per-client time breakdown from a replay.
///
/// Ops on drain lanes (TraceOp::lane > 0) replay concurrently with the
/// client's lane-0 program: their time lands in `drain`, never in
/// meta/write/read/cpu, so the latter four remain the rank's critical
/// path while `drain` is the overlapped background cost (BP5 AsyncWrite).
struct ClientTimes {
  double meta = 0.0;   // waiting on MDS
  double write = 0.0;  // write ops incl. queueing
  double read = 0.0;
  double cpu = 0.0;    // charged compute (compression, copies)
  double drain = 0.0;  // overlapped drain-lane time (lane > 0 ops)
  double end = 0.0;    // completion time of the client's last op (any lane)
  std::uint64_t meta_ops = 0;
  std::uint64_t write_calls = 0;  // coalesced call count, lane 0
  std::uint64_t read_calls = 0;
  std::uint64_t drain_calls = 0;  // coalesced call count, lanes > 0
};

struct ReplayReport {
  std::vector<ClientTimes> clients;
  double makespan = 0.0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  /// Bytes moved rank-to-rank by OpKind::xfer gathers (two-level
  /// aggregation).  Not part of bytes_written: the same payload still
  /// lands on the OSTs through the aggregator's write.
  std::uint64_t bytes_transferred = 0;
  /// Aggregate CPU seconds by tag ("compress", "memcopy", ...).
  std::map<std::string, double> cpu_by_tag;
  /// Simulated duration of each trace op, indexed like the input trace
  /// (used by the darshan module to attribute time per file).
  std::vector<double> op_durations;
  /// Resource utilization: total service seconds per OST, and the MDS.
  std::vector<double> ost_busy_seconds;
  std::vector<double> ost_busy_until;
  double mds_busy_seconds = 0.0;

  double write_throughput_bps() const {
    return makespan > 0 ? double(bytes_written) / makespan : 0.0;
  }
  double mean_meta_time() const;
  double mean_write_time() const;
  double mean_read_time() const;
  double mean_cpu_time() const;
  double mean_drain_time() const;
};

/// Replay `trace` against the queueing model.  `store` supplies file
/// layouts (stripe -> OST mapping); `nclients` sizes the client table (ids
/// in the trace must be < nclients).
ReplayReport replay_trace(const SystemProfile& profile,
                          const ObjectStore& store,
                          const std::vector<TraceOp>& trace, int nclients);

/// Per-block dispatch/stitch cost of the block-parallel compression
/// pipeline (thread wake-up, block table patch, frame stitch) charged by
/// parallel_cpu_seconds per wave of blocks.
inline constexpr double kParallelBlockOverhead_s = 5e-6;

/// Wall-clock seconds a block-parallel CPU stage occupies the issuing
/// client: `serial_seconds` of work split into `nblocks` equal blocks run
/// on `threads` lanes.  Blocks execute in ceil(nblocks/threads) waves, so
///   wall = serial * waves / nblocks + waves * overhead
/// which degrades gracefully: threads=1 or nblocks=1 reproduces the serial
/// charge (plus per-block overhead), and perfect speedup is only reached
/// when threads divides nblocks.  Used by bp::Writer to charge compression
/// CPU time when compress_threads > 1.
double parallel_cpu_seconds(double serial_seconds, int threads,
                            std::uint64_t nblocks,
                            double per_block_overhead_s =
                                kParallelBlockOverhead_s);

}  // namespace bitio::fsim
