#pragma once
// Calibrated storage profiles of the three systems the paper measures on
// (Section III-C).  Hardware constants (OST counts, link bandwidths, cores
// per node) follow the paper's system descriptions; queueing/service
// constants are calibrated so the reproduced curves hit the paper's anchor
// numbers (DESIGN.md Section 5) — the shapes then follow from the model.

#include "fsim/storage_model.hpp"

namespace bitio::fsim {

/// Dardel (HPE Cray EX, PDC): 2x64-core EPYC per node, Slingshot network,
/// 12 PB Lustre with 48 OSTs.  The paper's main measurement platform.
SystemProfile dardel();

/// Discoverer (EuroHPC petascale): 2x64-core EPYC per node, 2.1 PB Lustre
/// with only 4 OSTs — strong MDS/OST contention, declining original-I/O
/// curve in Fig 2.
SystemProfile discoverer();

/// Vega (EuroHPC petascale): 2x64-core EPYC per node, 1 PB Lustre with 80
/// OSTs, shared with a large CephFS — modelled with a large background-
/// noise amplitude to reproduce Fig 2's erratic curve.
SystemProfile vega();

/// Lookup by lower-case name ("dardel", "discoverer", "vega").
SystemProfile system_profile(const std::string& name);

}  // namespace bitio::fsim
