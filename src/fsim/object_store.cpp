#include "fsim/object_store.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"

namespace bitio::fsim {

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '/') {
      if (!cur.empty()) parts.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) parts.push_back(std::move(cur));
  return parts;
}

std::string parent_path(const std::string& path) {
  auto parts = split_path(path);
  if (parts.size() <= 1) return "";
  std::string out;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (i) out += '/';
    out += parts[i];
  }
  return out;
}

std::string base_name(const std::string& path) {
  auto parts = split_path(path);
  if (parts.empty()) throw UsageError("base_name: empty path");
  return parts.back();
}

ObjectStore::ObjectStore(int ost_count, bool store_data,
                         StripeSettings default_stripe)
    : ost_count_(ost_count), store_data_(store_data) {
  if (ost_count <= 0) throw UsageError("ObjectStore: need at least one OST");
  root_.path = "";
  root_.default_stripe = default_stripe;
  root_.has_explicit_stripe = true;
}

DirNode& ObjectStore::mkdirs(const std::string& path) {
  DirNode* node = &root_;
  std::string so_far;
  for (const auto& part : split_path(path)) {
    so_far = so_far.empty() ? part : so_far + "/" + part;
    if (node->files.count(part))
      throw IoError("mkdirs: '" + so_far + "' is a file");
    auto& slot = node->dirs[part];
    if (!slot) {
      slot = std::make_unique<DirNode>();
      slot->path = so_far;
      // Inherit striping from the parent, Lustre-style.
      slot->default_stripe = node->default_stripe;
    }
    node = slot.get();
  }
  return *node;
}

const DirNode* ObjectStore::find_dir(const std::string& path) const {
  const DirNode* node = &root_;
  for (const auto& part : split_path(path)) {
    auto it = node->dirs.find(part);
    if (it == node->dirs.end()) return nullptr;
    node = it->second.get();
  }
  return node;
}

DirNode* ObjectStore::find_dir(const std::string& path) {
  return const_cast<DirNode*>(
      static_cast<const ObjectStore*>(this)->find_dir(path));
}

bool ObjectStore::dir_exists(const std::string& path) const {
  return find_dir(path) != nullptr;
}

bool ObjectStore::file_exists(const std::string& path) const {
  const DirNode* dir = find_dir(parent_path(path));
  return dir && dir->files.count(base_name(path)) > 0;
}

void ObjectStore::set_dir_stripe(const std::string& path,
                                 StripeSettings settings) {
  if (settings.stripe_count <= 0 || settings.stripe_size == 0)
    throw UsageError("setstripe: count and size must be positive");
  if (settings.stripe_count > ost_count_)
    throw UsageError("setstripe: stripe count " +
                     std::to_string(settings.stripe_count) + " exceeds " +
                     std::to_string(ost_count_) + " OSTs");
  DirNode& dir = mkdirs(path);
  dir.default_stripe = settings;
  dir.has_explicit_stripe = true;
}

StripeSettings ObjectStore::dir_stripe(const std::string& path) const {
  const DirNode* dir = find_dir(path);
  if (!dir) throw IoError("dir_stripe: no such directory '" + path + "'");
  return dir->default_stripe;
}

StripeLayout ObjectStore::make_layout(StripeSettings settings) {
  StripeLayout layout;
  layout.settings = settings;
  layout.stripe_offset = next_ost_;
  for (int i = 0; i < settings.stripe_count; ++i) {
    layout.ost_indices.push_back((next_ost_ + i) % ost_count_);
    layout.object_ids.push_back(next_object_id_);
    next_object_id_ += 0x15263;  // arbitrary stride, purely cosmetic
  }
  // Lustre allocates the next file's first object on a different OST to
  // balance load; emulate with a simple rotation.
  next_ost_ = (next_ost_ + settings.stripe_count) % ost_count_;
  return layout;
}

FileNode& ObjectStore::create_file(
    const std::string& path, std::optional<StripeSettings> stripe_override) {
  const std::string parent = parent_path(path);
  DirNode& dir = mkdirs(parent);
  const std::string name = base_name(path);
  if (dir.files.count(name))
    throw IoError("create_file: '" + path + "' exists");
  if (dir.dirs.count(name))
    throw IoError("create_file: '" + path + "' is a directory");

  auto node = std::make_unique<FileNode>();
  node->id = files_.size();
  node->path = path;
  node->layout =
      make_layout(stripe_override ? *stripe_override : dir.default_stripe);
  node->create_order = next_create_order_++;
  dir.files[name] = node->id;
  files_.push_back(std::move(node));
  return *files_.back();
}

FileNode& ObjectStore::file(const std::string& path) {
  DirNode* dir = find_dir(parent_path(path));
  if (dir) {
    auto it = dir->files.find(base_name(path));
    if (it != dir->files.end()) return *files_[it->second];
  }
  throw IoError("file: no such file '" + path + "'");
}

const FileNode& ObjectStore::file(const std::string& path) const {
  return const_cast<ObjectStore*>(this)->file(path);
}

FileNode& ObjectStore::file_by_id(FileId id) {
  if (id >= files_.size() || !files_[id])
    throw IoError("file_by_id: bad id " + std::to_string(id));
  return *files_[id];
}

const FileNode& ObjectStore::file_by_id(FileId id) const {
  return const_cast<ObjectStore*>(this)->file_by_id(id);
}

void ObjectStore::unlink(const std::string& path) {
  DirNode* dir = find_dir(parent_path(path));
  if (!dir) throw IoError("unlink: no such file '" + path + "'");
  auto it = dir->files.find(base_name(path));
  if (it == dir->files.end())
    throw IoError("unlink: no such file '" + path + "'");
  // The FileNode stays alive (only the namespace entry goes away) so that
  // trace replay can still resolve layouts of files written before unlink.
  dir->files.erase(it);
}

void ObjectStore::rename(const std::string& from, const std::string& to) {
  DirNode* src_dir = find_dir(parent_path(from));
  if (!src_dir) throw IoError("rename: no such file '" + from + "'");
  auto src = src_dir->files.find(base_name(from));
  if (src == src_dir->files.end())
    throw IoError("rename: no such file '" + from + "'");
  const FileId id = src->second;
  DirNode& dst_dir = mkdirs(parent_path(to));
  const std::string dst_name = base_name(to);
  if (dst_dir.dirs.count(dst_name))
    throw IoError("rename: '" + to + "' is a directory");
  src_dir->files.erase(src);
  dst_dir.files[dst_name] = id;  // replaces any existing entry, like POSIX
  files_[id]->path = to;
}

namespace {
void collect(const DirNode& dir,
             const std::vector<std::unique_ptr<FileNode>>& files,
             std::vector<const FileNode*>& out) {
  for (const auto& [name, id] : dir.files) {
    (void)name;
    if (files[id]) out.push_back(files[id].get());
  }
  for (const auto& [name, sub] : dir.dirs) {
    (void)name;
    collect(*sub, files, out);
  }
}
}  // namespace

std::vector<const FileNode*> ObjectStore::list_recursive(
    const std::string& path) const {
  const DirNode* dir = find_dir(path);
  if (!dir) throw IoError("list_recursive: no such directory '" + path + "'");
  std::vector<const FileNode*> out;
  collect(*dir, files_, out);
  std::sort(out.begin(), out.end(),
            [](const FileNode* a, const FileNode* b) {
              return a->create_order < b->create_order;
            });
  return out;
}

std::vector<const FileNode*> ObjectStore::all_files() const {
  return list_recursive("");
}

void ObjectStore::pwrite(FileNode& node, std::uint64_t offset,
                         const std::uint8_t* data, std::uint64_t n) {
  node.size = std::max(node.size, offset + n);
  if (!store_data_) return;
  if (node.data.size() < offset + n) node.data.resize(offset + n, 0);
  std::memcpy(node.data.data() + offset, data, n);
}

std::uint64_t ObjectStore::pread(const FileNode& node, std::uint64_t offset,
                                 std::uint8_t* out, std::uint64_t n) const {
  if (!store_data_)
    throw IoError("pread: store was configured without data retention");
  if (offset >= node.size) return 0;
  const std::uint64_t avail = std::min(n, node.size - offset);
  std::memcpy(out, node.data.data() + offset, avail);
  return avail;
}

void ObjectStore::truncate(FileNode& node, std::uint64_t size) {
  node.size = size;
  if (store_data_) node.data.resize(size, 0);
}

}  // namespace bitio::fsim
