#include "fsim/posix_fs.hpp"

#include "util/error.hpp"
#include "util/table.hpp"

namespace bitio::fsim {

SharedFs::SharedFs(int ost_count, bool store_data,
                   StripeSettings default_stripe)
    : store_(ost_count, store_data, default_stripe) {}

void SharedFs::append_op(TraceOp op) {
  if (!tracing_) return;
  // Coalesce a sequential write with the immediately preceding one from the
  // same client and file.  Faulted ops are never coalesced so each injection
  // stays attributable.  (The lock is already held by the caller.)
  if (op.kind == OpKind::write && op.fault == FaultKind::none &&
      !trace_.empty()) {
    TraceOp& last = trace_.back();
    if (last.kind == OpKind::write && last.fault == FaultKind::none &&
        last.client == op.client && last.lane == op.lane &&
        last.file == op.file && last.offset + last.bytes == op.offset) {
      last.bytes += op.bytes;
      last.op_count += op.op_count;
      return;
    }
  }
  trace_.push_back(std::move(op));
}

void SharedFs::set_fault_plan(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan.validate();
  fault_plan_ = std::move(plan);
}

void SharedFs::clear_fault_plan() {
  std::lock_guard<std::mutex> lock(mutex_);
  fault_plan_.reset();
}

std::uint64_t SharedFs::injected_fault_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fault_plan_ ? fault_plan_->injected_count() : 0;
}

bool SharedFs::should_crash(int rank, std::uint64_t step) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fault_plan_ && fault_plan_->should_crash(rank, step);
}

FaultKind SharedFs::next_write_fault(const FileNode& node, ClientId client,
                                     std::uint64_t bytes) {
  if (!fault_plan_) return FaultKind::none;
  const auto fault = fault_plan_->next_write_fault(node.path, client, bytes);
  return fault ? *fault : FaultKind::none;
}

void SharedFs::stall_write(std::unique_lock<std::mutex>& lock,
                           const char* call, std::string path) {
  ++stalled_ops_;
  const std::uint64_t epoch = stall_epoch_;
  // Release the fs lock while wedged: every other client keeps running, only
  // this write hangs — exactly like one OST going unresponsive.
  stall_cv_.wait(lock, [&] { return stall_epoch_ != epoch; });
  --stalled_ops_;
  throw TimeoutError(std::string(call) + ": injected stall on '" + path +
                     "' cancelled by watchdog");
}

int SharedFs::cancel_stalls() {
  std::lock_guard<std::mutex> lock(mutex_);
  const int released = stalled_ops_;
  ++stall_epoch_;
  stall_cv_.notify_all();
  return released;
}

int SharedFs::stalled_op_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stalled_ops_;
}

std::uint64_t SharedFs::traced_bytes_written() const {
  std::uint64_t sum = 0;
  for (const auto& op : trace_)
    if (op.kind == OpKind::write || op.kind == OpKind::batch_write)
      sum += op.bytes;
  return sum;
}

std::uint64_t SharedFs::traced_bytes_read() const {
  std::uint64_t sum = 0;
  for (const auto& op : trace_)
    if (op.kind == OpKind::read) sum += op.bytes;
  return sum;
}

void FsClient::mkdir(const std::string& path) {
  std::lock_guard<std::mutex> lock(fs_->mutex_);
  fs_->store_.mkdirs(path);
  fs_->append_op({client_, OpKind::mkdir, kNoFile, 0, 0, 1, 0.0, {}, lane_});
}

void FsClient::setstripe(const std::string& dir, StripeSettings settings) {
  std::lock_guard<std::mutex> lock(fs_->mutex_);
  fs_->store_.set_dir_stripe(dir, settings);
}

StripeLayout FsClient::getstripe(const std::string& file) const {
  std::lock_guard<std::mutex> lock(fs_->mutex_);
  return fs_->store_.file(file).layout;
}

std::string FsClient::getstripe_text(const std::string& file) const {
  const StripeLayout layout = getstripe(file);
  std::string out = file + "\n";
  out += strfmt("lmm_stripe_count:  %d\n", layout.settings.stripe_count);
  out += strfmt("lmm_stripe_size:   %llu\n",
                static_cast<unsigned long long>(layout.settings.stripe_size));
  out += strfmt("lmm_pattern:       %s\n", layout.pattern.c_str());
  out += strfmt("lmm_stripe_offset: %d\n", layout.stripe_offset);
  out += "\tobdidx\t\tobjid\t\tobjid\t\tgroup\n";
  for (std::size_t i = 0; i < layout.ost_indices.size(); ++i) {
    out += strfmt("\t%6d\t%12llu\t%#14llx\t%#10llx\n", layout.ost_indices[i],
                  static_cast<unsigned long long>(layout.object_ids[i]),
                  static_cast<unsigned long long>(layout.object_ids[i]),
                  static_cast<unsigned long long>(i));
  }
  return out;
}

bool FsClient::exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(fs_->mutex_);
  return fs_->store_.file_exists(path) || fs_->store_.dir_exists(path);
}

std::uint64_t FsClient::stat_size(const std::string& path) {
  std::lock_guard<std::mutex> lock(fs_->mutex_);
  const FileNode& node = fs_->store_.file(path);
  fs_->append_op({client_, OpKind::stat, node.id, 0, 0, 1, 0.0, {}, lane_});
  return node.size;
}

void FsClient::unlink(const std::string& path) {
  std::lock_guard<std::mutex> lock(fs_->mutex_);
  const FileId id = fs_->store_.file(path).id;
  fs_->store_.unlink(path);
  fs_->append_op({client_, OpKind::unlink, id, 0, 0, 1, 0.0, {}, lane_});
}

void FsClient::rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(fs_->mutex_);
  const FileId id = fs_->store_.file(from).id;
  fs_->store_.rename(from, to);
  fs_->append_op({client_, OpKind::rename, id, 0, 0, 1, 0.0, {}, lane_});
}

int FsClient::open(const std::string& path, OpenMode mode) {
  std::lock_guard<std::mutex> lock(fs_->mutex_);
  FileNode* node = nullptr;
  OpKind meta = OpKind::open;
  switch (mode) {
    case OpenMode::create:
      node = &fs_->store_.create_file(path);
      meta = OpKind::create;
      break;
    case OpenMode::create_or_truncate:
      if (fs_->store_.file_exists(path)) {
        node = &fs_->store_.file(path);
        fs_->store_.truncate(*node, 0);
        meta = OpKind::open;
      } else {
        node = &fs_->store_.create_file(path);
        meta = OpKind::create;
      }
      break;
    case OpenMode::write:
    case OpenMode::append:
    case OpenMode::read:
      node = &fs_->store_.file(path);
      break;
  }
  SharedFs::Descriptor desc;
  desc.file = node->id;
  desc.client = client_;
  desc.position = mode == OpenMode::append ? node->size : 0;
  desc.writable = mode != OpenMode::read;
  desc.open = true;
  fs_->append_op({client_, meta, node->id, 0, 0, 1, 0.0, {}, lane_});
  fs_->fds_.push_back(desc);
  return int(fs_->fds_.size() - 1);
}

namespace {
SharedFs::Descriptor& checked_fd(std::vector<SharedFs::Descriptor>& fds,
                                 int fd, ClientId client) {
  if (fd < 0 || std::size_t(fd) >= fds.size() || !fds[std::size_t(fd)].open)
    throw IoError("bad file descriptor " + std::to_string(fd));
  auto& desc = fds[std::size_t(fd)];
  if (desc.client != client)
    throw IoError("descriptor " + std::to_string(fd) +
                  " belongs to another client");
  return desc;
}
}  // namespace

namespace {
/// Transient-failure tail shared by the data-write entry points: the caller
/// has already traced the failed attempt; surface it as an IoError.
[[noreturn]] void throw_injected(const char* call, FaultKind fault,
                                 const std::string& path) {
  throw IoError(std::string(call) + ": injected " + fault_name(fault) +
                " on '" + path + "'");
}
}  // namespace

void FsClient::write(int fd, std::span<const std::uint8_t> data) {
  std::unique_lock<std::mutex> lock(fs_->mutex_);
  auto& desc = checked_fd(fs_->fds_, fd, client_);
  if (!desc.writable) throw IoError("write: descriptor is read-only");
  FileNode& node = fs_->store_.file_by_id(desc.file);
  const FaultKind fault = fs_->next_write_fault(node, client_, data.size());
  if (fault == FaultKind::eio || fault == FaultKind::enospc) {
    fs_->append_op({client_, OpKind::write, desc.file, desc.position, 0, 1,
                    0.0, {}, lane_, fault});
    throw_injected("write", fault, node.path);
  }
  if (fault == FaultKind::stall) {
    fs_->append_op({client_, OpKind::write, desc.file, desc.position, 0, 1,
                    0.0, {}, lane_, fault});
    fs_->stall_write(lock, "write", node.path);
  }
  std::uint64_t persist = data.size();
  if (fault == FaultKind::torn_write)
    persist = fs_->fault_plan_->torn_prefix(fs_->fault_plan_->injected_count(),
                                            data.size());
  fs_->store_.pwrite(node, desc.position, data.data(), persist);
  if (fault == FaultKind::bit_flip && fs_->store_.stores_data() &&
      !data.empty()) {
    const std::uint64_t bit = fs_->fault_plan_->flip_bit_index(
        fs_->fault_plan_->injected_count(), data.size());
    node.data[desc.position + bit / 8] ^= std::uint8_t(1u << (bit % 8));
  }
  fs_->append_op({client_, OpKind::write, desc.file, desc.position, persist,
                  1, 0.0, {}, lane_, fault});
  // The caller saw a successful full write (torn tails are a *silent*
  // failure, discovered only on verification).
  desc.position += data.size();
}

void FsClient::pwrite(int fd, std::uint64_t offset,
                      std::span<const std::uint8_t> data) {
  std::unique_lock<std::mutex> lock(fs_->mutex_);
  auto& desc = checked_fd(fs_->fds_, fd, client_);
  if (!desc.writable) throw IoError("pwrite: descriptor is read-only");
  FileNode& node = fs_->store_.file_by_id(desc.file);
  const FaultKind fault = fs_->next_write_fault(node, client_, data.size());
  if (fault == FaultKind::eio || fault == FaultKind::enospc) {
    fs_->append_op(
        {client_, OpKind::write, desc.file, offset, 0, 1, 0.0, {}, lane_, fault});
    throw_injected("pwrite", fault, node.path);
  }
  if (fault == FaultKind::stall) {
    fs_->append_op(
        {client_, OpKind::write, desc.file, offset, 0, 1, 0.0, {}, lane_, fault});
    fs_->stall_write(lock, "pwrite", node.path);
  }
  std::uint64_t persist = data.size();
  if (fault == FaultKind::torn_write)
    persist = fs_->fault_plan_->torn_prefix(fs_->fault_plan_->injected_count(),
                                            data.size());
  fs_->store_.pwrite(node, offset, data.data(), persist);
  if (fault == FaultKind::bit_flip && fs_->store_.stores_data() &&
      !data.empty()) {
    const std::uint64_t bit = fs_->fault_plan_->flip_bit_index(
        fs_->fault_plan_->injected_count(), data.size());
    node.data[offset + bit / 8] ^= std::uint8_t(1u << (bit % 8));
  }
  fs_->append_op(
      {client_, OpKind::write, desc.file, offset, persist, 1, 0.0, {}, lane_,
       fault});
}

void FsClient::write_simulated(int fd, std::uint64_t bytes,
                               std::uint32_t op_count) {
  if (op_count == 0) throw UsageError("write_simulated: op_count must be > 0");
  std::unique_lock<std::mutex> lock(fs_->mutex_);
  auto& desc = checked_fd(fs_->fds_, fd, client_);
  if (!desc.writable)
    throw IoError("write_simulated: descriptor is read-only");
  FileNode& node = fs_->store_.file_by_id(desc.file);
  const FaultKind fault = fs_->next_write_fault(node, client_, bytes);
  if (fault == FaultKind::eio || fault == FaultKind::enospc) {
    fs_->append_op({client_, OpKind::write, desc.file, desc.position, 0, 1,
                    0.0, {}, lane_, fault});
    throw_injected("write_simulated", fault, node.path);
  }
  if (fault == FaultKind::stall) {
    fs_->append_op({client_, OpKind::write, desc.file, desc.position, 0, 1,
                    0.0, {}, lane_, fault});
    fs_->stall_write(lock, "write_simulated", node.path);
  }
  std::uint64_t persist = bytes;
  if (fault == FaultKind::torn_write)
    persist = fs_->fault_plan_->torn_prefix(fs_->fault_plan_->injected_count(),
                                            bytes);
  node.size = std::max(node.size, desc.position + persist);
  if (fs_->store_.stores_data() && node.data.size() < node.size)
    node.data.resize(node.size, 0);
  fs_->append_op({client_, OpKind::write, desc.file, desc.position, persist,
                  op_count, 0.0, {}, lane_, fault});
  desc.position += bytes;
}

void FsClient::read_simulated(int fd, std::uint64_t bytes,
                              std::uint32_t op_count) {
  if (op_count == 0) throw UsageError("read_simulated: op_count must be > 0");
  std::lock_guard<std::mutex> lock(fs_->mutex_);
  auto& desc = checked_fd(fs_->fds_, fd, client_);
  const FileNode& node = fs_->store_.file_by_id(desc.file);
  const std::uint64_t avail =
      desc.position < node.size ? node.size - desc.position : 0;
  const std::uint64_t n = std::min(bytes, avail);
  fs_->append_op(
      {client_, OpKind::read, desc.file, desc.position, n, op_count, 0.0, {}, lane_});
  desc.position += n;
}

std::uint64_t FsClient::read(int fd, std::span<std::uint8_t> out) {
  std::lock_guard<std::mutex> lock(fs_->mutex_);
  auto& desc = checked_fd(fs_->fds_, fd, client_);
  const FileNode& node = fs_->store_.file_by_id(desc.file);
  const std::uint64_t n =
      fs_->store_.pread(node, desc.position, out.data(), out.size());
  fs_->append_op(
      {client_, OpKind::read, desc.file, desc.position, n, 1, 0.0, {}, lane_});
  desc.position += n;
  return n;
}

std::uint64_t FsClient::pread(int fd, std::uint64_t offset,
                              std::span<std::uint8_t> out) {
  std::lock_guard<std::mutex> lock(fs_->mutex_);
  auto& desc = checked_fd(fs_->fds_, fd, client_);
  const FileNode& node = fs_->store_.file_by_id(desc.file);
  const std::uint64_t n =
      fs_->store_.pread(node, offset, out.data(), out.size());
  fs_->append_op({client_, OpKind::read, desc.file, offset, n, 1, 0.0, {}, lane_});
  return n;
}

void FsClient::seek(int fd, std::uint64_t position) {
  std::lock_guard<std::mutex> lock(fs_->mutex_);
  auto& desc = checked_fd(fs_->fds_, fd, client_);
  desc.position = position;
}

void FsClient::fsync(int fd) {
  std::lock_guard<std::mutex> lock(fs_->mutex_);
  auto& desc = checked_fd(fs_->fds_, fd, client_);
  fs_->append_op({client_, OpKind::fsync, desc.file, 0, 0, 1, 0.0, {}, lane_});
}

void FsClient::close(int fd) {
  std::lock_guard<std::mutex> lock(fs_->mutex_);
  auto& desc = checked_fd(fs_->fds_, fd, client_);
  desc.open = false;
  fs_->append_op({client_, OpKind::close, desc.file, 0, 0, 1, 0.0, {}, lane_});
}

std::vector<std::uint8_t> FsClient::read_all(const std::string& path) {
  std::uint64_t size = 0;
  {
    std::lock_guard<std::mutex> lock(fs_->mutex_);
    size = fs_->store_.file(path).size;
  }
  const int fd = open(path, OpenMode::read);
  std::vector<std::uint8_t> out(size);
  const std::uint64_t n = read(fd, out);
  close(fd);
  out.resize(n);
  return out;
}

void FsClient::write_file(const std::string& path,
                          std::span<const std::uint8_t> data) {
  const int fd = open(path, OpenMode::create);
  write(fd, data);
  close(fd);
}

void FsClient::transfer(int fd, ClientId peer, std::uint64_t bytes,
                        bool intra_node, std::uint32_t op_count) {
  if (op_count == 0) throw UsageError("transfer: op_count must be > 0");
  std::lock_guard<std::mutex> lock(fs_->mutex_);
  // Unlike read/write, a gather transfer targets a descriptor another
  // client opened by design: the sender ships its payload toward the
  // aggregator that owns the destination file.  Only the file identity is
  // needed, so skip the ownership half of checked_fd.
  if (fd < 0 || std::size_t(fd) >= fs_->fds_.size() ||
      !fs_->fds_[std::size_t(fd)].open)
    throw IoError("bad file descriptor " + std::to_string(fd));
  const auto& desc = fs_->fds_[std::size_t(fd)];
  TraceOp op{client_,  OpKind::xfer, desc.file, 0, bytes,
             op_count, 0.0,          intra_node ? kShmGatherTag
                                                : kNetGatherTag,
             lane_};
  op.peer = peer;
  fs_->append_op(std::move(op));
}

void FsClient::charge_cpu(double seconds, const std::string& tag,
                          std::uint64_t bytes, std::uint32_t op_count) {
  std::lock_guard<std::mutex> lock(fs_->mutex_);
  fs_->append_op({client_, OpKind::cpu, kNoFile, 0, bytes, op_count, seconds,
                  tag, lane_});
}

void FsClient::note_fault(FaultKind kind) {
  std::lock_guard<std::mutex> lock(fs_->mutex_);
  fs_->append_op({client_, OpKind::cpu, kNoFile, 0, 0, 1, 0.0, "fault", lane_,
                  kind});
}

// ---------------------------------------------------------------- queue pair

std::optional<Cqe> CompletionQueue::reap() {
  if (head_ >= cqes_.size()) return std::nullopt;
  Cqe out = std::move(cqes_[head_]);
  if (++head_ == cqes_.size()) {
    cqes_.clear();
    head_ = 0;
  }
  return out;
}

std::vector<Cqe> CompletionQueue::reap_all() {
  std::vector<Cqe> out;
  out.reserve(cqes_.size() - head_);
  for (; head_ < cqes_.size(); ++head_) out.push_back(std::move(cqes_[head_]));
  cqes_.clear();
  head_ = 0;
  return out;
}

SubmissionQueue::SubmissionQueue(FsClient client, std::size_t depth,
                                 bool coalesce)
    : io_(client), depth_(depth), coalesce_(coalesce) {
  if (depth_ == 0)
    throw UsageError("SubmissionQueue: depth must be > 0");
  sqes_.reserve(depth_);
}

void SubmissionQueue::push(Sqe sqe) {
  if (!try_push(sqe))
    throw UsageError("SubmissionQueue::push: ring is full (depth " +
                     std::to_string(depth_) + "); submit() first");
}

bool SubmissionQueue::try_push(Sqe& sqe) {
  if (sqes_.size() >= depth_) return false;
  sqes_.push_back(std::move(sqe));
  return true;
}

std::size_t SubmissionQueue::submit() {
  if (sqes_.empty()) return 0;
  SharedFs& fs = io_.shared();
  const ClientId client = io_.client();
  const std::uint32_t lane = io_.lane();
  std::unique_lock<std::mutex> lock(fs.mutex_);

  // Validate every descriptor before touching any sqe: a bad fd is a
  // programming error and must not leave a half-processed batch behind.
  for (const Sqe& sqe : sqes_) {
    const auto& desc = checked_fd(fs.fds_, sqe.fd, client);
    if (!desc.writable) throw IoError("submit: descriptor is read-only");
    if (sqe.simulated_bytes > 0 && !sqe.iov.empty())
      throw UsageError(
          "submit: an sqe is either payload (iov) or size-only "
          "(simulated_bytes), not both");
  }

  stats_.batches_submitted += 1;
  stats_.sqes_submitted += sqes_.size();
  const std::size_t generated = sqes_.size();

  // The first trace record of the batch carries the doorbell tag: the
  // timing replay charges batch_setup_s only there, so setup is amortized
  // over the whole submission.
  bool doorbell = true;
  // Coalescing accumulator: a run of adjacent fault-free sqes on one file
  // becomes a single vectored trace record (op_count = sqes merged).
  struct Run {
    FileId file = kNoFile;
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint32_t sqes = 0;
  };
  Run run;
  const auto trace_op = [&](TraceOp op) {
    if (doorbell) {
      op.tag = kBatchDoorbellTag;
      doorbell = false;
    }
    fs.append_op(std::move(op));
  };
  const auto flush_run = [&] {
    if (run.sqes == 0) return;
    trace_op({client, OpKind::batch_write, run.file, run.offset, run.bytes,
              run.sqes, 0.0, {}, lane});
    run = Run{};
  };

  for (Sqe& sqe : sqes_) {
    Cqe cqe;
    cqe.user_data = sqe.user_data;
    cqe.bytes_requested = sqe.bytes();
    // Re-resolve descriptor and node each iteration: a stall on an earlier
    // sqe released the fs lock, so cached references may have moved.
    auto& desc = checked_fd(fs.fds_, sqe.fd, client);
    FileNode& node = fs.store_.file_by_id(desc.file);
    const FaultKind fault =
        fs.next_write_fault(node, client, cqe.bytes_requested);
    cqe.fault = fault;
    if (fault == FaultKind::eio || fault == FaultKind::enospc) {
      flush_run();
      trace_op({client, OpKind::batch_write, desc.file, sqe.offset, 0, 1, 0.0,
                {}, lane, fault});
      cqe.ok = false;
      cqe.error = "submit: injected " + std::string(fault_name(fault)) +
                  " on '" + node.path + "'";
      cq_.cqes_.push_back(std::move(cqe));
      continue;
    }
    if (fault == FaultKind::stall) {
      flush_run();
      trace_op({client, OpKind::batch_write, desc.file, sqe.offset, 0, 1, 0.0,
                {}, lane, fault});
      try {
        fs.stall_write(lock, "submit", node.path);
      } catch (const TimeoutError& err) {
        // The watchdog cancelled the wedged sqe; everything reaped so far
        // stays valid and the rest of the batch proceeds.
        cqe.ok = false;
        cqe.error = err.what();
        cq_.cqes_.push_back(std::move(cqe));
        continue;
      }
    }
    std::uint64_t persist = cqe.bytes_requested;
    if (fault == FaultKind::torn_write)
      persist = fs.fault_plan_->torn_prefix(
          fs.fault_plan_->injected_count(), cqe.bytes_requested);
    std::uint64_t written = 0;
    for (const auto& segment : sqe.iov) {
      if (written >= persist) break;
      const std::uint64_t n =
          std::min<std::uint64_t>(segment.size(), persist - written);
      fs.store_.pwrite(node, sqe.offset + written, segment.data(), n);
      written += n;
    }
    if (sqe.simulated_bytes > 0) {
      // Size-only sqe: grow the node like write_simulated does.
      node.size = std::max(node.size, sqe.offset + persist);
      if (fs.store_.stores_data() && node.data.size() < node.size)
        node.data.resize(node.size, 0);
    }
    if (fault == FaultKind::bit_flip && fs.store_.stores_data() &&
        persist > 0) {
      const std::uint64_t bit = fs.fault_plan_->flip_bit_index(
          fs.fault_plan_->injected_count(), persist);
      node.data[sqe.offset + bit / 8] ^= std::uint8_t(1u << (bit % 8));
    }
    cqe.bytes_persisted = persist;
    if (fault != FaultKind::none) {
      // Faulted records are never coalesced, so each injection stays
      // attributable in the trace.
      flush_run();
      trace_op({client, OpKind::batch_write, desc.file, sqe.offset, persist,
                1, 0.0, {}, lane, fault});
    } else if (coalesce_ && run.sqes > 0 && run.file == desc.file &&
               run.offset + run.bytes == sqe.offset) {
      // Counts every byte of a vectored record merging >= 2 sqes (the same
      // definition darshan::capture uses), so the opening sqe's bytes join
      // the tally the moment a run becomes vectored.
      if (run.sqes == 1) stats_.coalesced_bytes += run.bytes;
      run.bytes += persist;
      run.sqes += 1;
      stats_.coalesced_bytes += persist;
    } else {
      flush_run();
      run = {desc.file, sqe.offset, persist, 1};
      if (!coalesce_) flush_run();
    }
    cq_.cqes_.push_back(std::move(cqe));
  }
  flush_run();
  sqes_.clear();
  return generated;
}

}  // namespace bitio::fsim
