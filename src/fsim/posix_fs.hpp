#pragma once
// POSIX-like file API over the simulated object store, with operation
// tracing.
//
// Every rank of the simulated application holds an FsClient bound to its
// client id.  Calls mutate the shared ObjectStore (bit-exact data) and
// append TraceOps to the shared trace; the trace is later replayed against
// a StorageModel to obtain simulated times, and summarized by the
// darshan module into per-file counters.
//
// Sequential writes through the same descriptor are coalesced into one
// TraceOp (op_count counts the calls) so that stdio-style record-at-a-time
// output from 25600 ranks stays tractable to replay.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fsim/fault_plan.hpp"
#include "fsim/object_store.hpp"
#include "fsim/types.hpp"

namespace bitio::fsim {

/// Open mode for FsClient::open.
enum class OpenMode {
  create,      // create new file (error if it exists)
  write,       // open existing for write (position 0)
  append,      // open existing, position at end
  read,        // open existing read-only
  create_or_truncate,  // create, or truncate existing to 0 (checkpoint slot)
};

/// Shared state: object store + trace + descriptor table.
class SharedFs {
public:
  explicit SharedFs(int ost_count, bool store_data = true,
                    StripeSettings default_stripe = {});

  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }

  const std::vector<TraceOp>& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

  /// Disable trace recording (layout-census runs that skip timing replay).
  void set_tracing(bool enabled) { tracing_ = enabled; }
  bool tracing() const { return tracing_; }

  /// Total bytes recorded as written / read in the trace.
  std::uint64_t traced_bytes_written() const;
  std::uint64_t traced_bytes_read() const;

  /// Install (or clear) the fault-injection plan consulted on every data
  /// write.  The plan is stateful; installing it hands its counters over.
  void set_fault_plan(FaultPlan plan);
  void clear_fault_plan();
  bool has_fault_plan() const { return fault_plan_.has_value(); }
  /// Faults injected so far (0 without a plan).
  std::uint64_t injected_fault_count() const;
  /// rank_crash rules: should `rank` die at `step`?  False without a plan.
  bool should_crash(int rank, std::uint64_t step) const;

  /// Abort every write currently wedged in an injected stall fault; each
  /// one wakes and throws TimeoutError.  This is the watchdog's cancel
  /// primitive (bp::Writer's drain watchdog calls it when a lane stops
  /// heartbeating).  Returns how many stalled ops were released.
  int cancel_stalls();
  /// Writes currently blocked in an injected stall.
  int stalled_op_count() const;

  /// Descriptor-table entry (public so the implementation's helpers can
  /// name the type; not part of the user-facing API).
  struct Descriptor {
    FileId file = kNoFile;
    ClientId client = 0;
    std::uint64_t position = 0;
    bool writable = false;
    bool open = false;
  };

private:
  friend class FsClient;
  friend class SubmissionQueue;
  void append_op(TraceOp op);
  /// Consult the fault plan for a data write (mutex must be held).
  FaultKind next_write_fault(const FileNode& node, ClientId client,
                             std::uint64_t bytes);
  /// Block the calling write in an injected stall (releases `lock` while
  /// wedged so other clients keep running) until cancel_stalls(), then
  /// throw TimeoutError.  Never returns.
  [[noreturn]] void stall_write(std::unique_lock<std::mutex>& lock,
                                const char* call, std::string path);

  mutable std::mutex mutex_;
  ObjectStore store_;
  std::vector<TraceOp> trace_;
  std::vector<Descriptor> fds_;
  bool tracing_ = true;
  std::optional<FaultPlan> fault_plan_;
  // Stall-fault gate: wedged writes wait here; cancel_stalls() bumps the
  // epoch to release them.
  std::condition_variable stall_cv_;
  std::uint64_t stall_epoch_ = 0;
  int stalled_ops_ = 0;
};

/// Per-rank POSIX-like handle.  Cheap; copyable.  All methods are
/// thread-safe with respect to other clients of the same SharedFs.
///
/// `lane` selects the client's logical execution lane for every op this
/// handle records: lane 0 (default) is the rank's critical path, lanes > 0
/// replay as overlapped drain lanes (see TraceOp::lane).
class FsClient {
public:
  FsClient(SharedFs& fs, ClientId client, std::uint32_t lane = 0)
      : fs_(&fs), client_(client), lane_(lane) {}

  ClientId client() const { return client_; }
  std::uint32_t lane() const { return lane_; }
  SharedFs& shared() const { return *fs_; }

  // -- namespace ------------------------------------------------------------
  void mkdir(const std::string& path);
  /// `lfs setstripe -c count -S size <dir>`
  void setstripe(const std::string& dir, StripeSettings settings);
  /// `lfs getstripe <file>`: resolved layout of an existing file.
  StripeLayout getstripe(const std::string& file) const;
  /// Human-readable getstripe output in the style of the paper's Listing 1.
  std::string getstripe_text(const std::string& file) const;

  bool exists(const std::string& path) const;
  std::uint64_t stat_size(const std::string& path);  // records a stat op
  void unlink(const std::string& path);
  /// POSIX rename: atomic namespace swap, replacing `to` if it exists (the
  /// write-tmp-validate-rename commit primitive).
  void rename(const std::string& from, const std::string& to);

  // -- descriptor I/O ---------------------------------------------------------
  int open(const std::string& path, OpenMode mode);
  void write(int fd, std::span<const std::uint8_t> data);
  void pwrite(int fd, std::uint64_t offset, std::span<const std::uint8_t> data);

  /// Size-only append for modelled large-scale runs: advances the file size
  /// and records a write of `bytes` split over `op_count` calls, without
  /// materializing data (valid on any store; the file then holds zeros when
  /// data retention is on).  Timing replay treats it exactly like write().
  void write_simulated(int fd, std::uint64_t bytes,
                       std::uint32_t op_count = 1);

  /// Size-only read: records a read of min(bytes, file size - position)
  /// without touching data.  Timing replay treats it exactly like read().
  void read_simulated(int fd, std::uint64_t bytes,
                      std::uint32_t op_count = 1);
  std::uint64_t read(int fd, std::span<std::uint8_t> out);
  std::uint64_t pread(int fd, std::uint64_t offset, std::span<std::uint8_t> out);
  void seek(int fd, std::uint64_t position);
  void fsync(int fd);
  void close(int fd);

  /// Convenience: whole-file read (records open/read/close).
  std::vector<std::uint8_t> read_all(const std::string& path);
  /// Convenience: create + write + close.
  void write_file(const std::string& path, std::span<const std::uint8_t> data);

  /// Record a rank-to-rank gather transfer of `bytes` from `peer` into
  /// this client (the receiver records the op, so the fan-in gates its
  /// subsequent trace ops in the replay), attributed to the open
  /// descriptor `fd` (the container file the gather feeds, so Darshan can
  /// bucket per-level gather counters by file).  `intra_node` selects the
  /// modeled channel: the node's shared-memory channel (tag
  /// fsim::kShmGatherTag) or the inter-node NIC links (kNetGatherTag).
  /// Only the timing model moves bytes — no store data changes hands; the
  /// payload still reaches the OSTs through the aggregator's write.
  void transfer(int fd, ClientId peer, std::uint64_t bytes, bool intra_node,
                std::uint32_t op_count = 1);

  /// Charge modeled client CPU time (compression, memcopy) to this client's
  /// timeline; shows up in replay reports and profiling.json.  `bytes` and
  /// `op_count` annotate the op for counters keyed on the tag (e.g. the
  /// Darshan log's dedup_bytes_saved / blocks_restored) — cpu ops never
  /// contribute to the traced read/write byte totals regardless.
  void charge_cpu(double seconds, const std::string& tag,
                  std::uint64_t bytes = 0, std::uint32_t op_count = 1);

  /// Record a harness-level fault (e.g. rank_crash) as a zero-cost tagged
  /// TraceOp so Darshan capture attributes it like write-layer injections.
  void note_fault(FaultKind kind);

private:
  SharedFs* fs_;
  ClientId client_;
  std::uint32_t lane_ = 0;
};

// ---------------------------------------------------------------- queue pair

/// One submission-queue entry: a vectored pwritev-shaped write.  The iov
/// segments land contiguously at `offset` of the file behind `fd`.  Spans
/// are *borrowed* — the referenced bytes must stay valid until the sqe's
/// completion is generated by submit() (same deferred-Put contract as
/// bp::ChunkView), which is what lets the writer submit straight out of its
/// pooled aggregation buffer with zero staging copies.
struct Sqe {
  int fd = -1;
  std::uint64_t offset = 0;
  std::vector<std::span<const std::uint8_t>> iov;
  /// Size-only sqe for modelled large-scale runs (the write_simulated
  /// analogue): with an empty iov and simulated_bytes > 0 the op grows the
  /// file and lands in the trace like a payload write, but no bytes are
  /// materialized.  Mixing iov segments and simulated_bytes in one sqe is
  /// rejected at submit().
  std::uint64_t simulated_bytes = 0;
  std::uint64_t user_data = 0;  // opaque cookie echoed in the Cqe

  std::uint64_t bytes() const {
    std::uint64_t sum = simulated_bytes;
    for (const auto& segment : iov) sum += segment.size();
    return sum;
  }
};

/// One completion-queue entry.  `ok` is false only for transient failures
/// (eio/enospc) and cancelled stalls; a torn write reports ok with a short
/// `bytes_persisted` (io_uring-style: the result carries the byte count, so
/// short writes are caller-visible even though the posix write() path hides
/// them).  `fault` records any injection for attribution either way.
struct Cqe {
  std::uint64_t user_data = 0;
  std::uint64_t bytes_requested = 0;
  std::uint64_t bytes_persisted = 0;
  FaultKind fault = FaultKind::none;
  bool ok = true;
  std::string error;  // human-readable reason when !ok

  bool short_write() const { return ok && bytes_persisted < bytes_requested; }
};

/// Reap side of the queue pair.  Completions arrive in submission order;
/// reaping is independent of further submissions (the writer reaps a lane's
/// completions after the lane's last doorbell of the step).
class CompletionQueue {
public:
  std::size_t ready() const { return cqes_.size(); }
  /// Pop the oldest completion, or nullopt when none are pending.
  std::optional<Cqe> reap();
  /// Drain every pending completion, oldest first.
  std::vector<Cqe> reap_all();

private:
  friend class SubmissionQueue;
  std::vector<Cqe> cqes_;
  std::size_t head_ = 0;
};

/// Counters for one queue pair's lifetime, mirrored into the Darshan batch
/// counters by trace capture.
struct BatchStats {
  std::uint64_t batches_submitted = 0;  // submit() calls with >= 1 sqe
  std::uint64_t sqes_submitted = 0;
  // Bytes carried by vectored records merging >= 2 adjacent sqes (the same
  // definition darshan::capture applies to the trace).
  std::uint64_t coalesced_bytes = 0;
};

/// io_uring-style queue pair over the simulated filesystem: the client
/// enqueues up to `depth` vectored sqes, rings the doorbell with submit(),
/// and reaps Cqes from the paired CompletionQueue.  One submit() records
/// one doorbell-tagged OpKind::batch_write TraceOp plus one per sqe (or per
/// coalesced run of adjacent sqes when `coalesce` is on), so the timing
/// replay charges batch setup once per doorbell and a tiny per-sqe cost —
/// never the per-record synchronous round trip of the posix write path.
///
/// Faults inject per-sqe: eio/enospc fail only the affected sqe's Cqe,
/// a stall wedges submit() until SharedFs::cancel_stalls() (the watchdog
/// primitive) converts it into a failed Cqe, and earlier completions of the
/// same batch stay valid throughout.  Every submit() must be paired with a
/// reachable reap()/reap_all() — tools/lint_invariants (submit-reap rule)
/// enforces this.
class SubmissionQueue {
public:
  /// `depth` is the ring size (must be > 0); push() throws when the ring is
  /// full, try_push() returns false.  `coalesce` merges adjacent same-file
  /// sqes into single vectored trace records.
  SubmissionQueue(FsClient client, std::size_t depth, bool coalesce = false);

  std::size_t depth() const { return depth_; }
  std::size_t pending() const { return sqes_.size(); }
  bool coalesce() const { return coalesce_; }

  /// Enqueue without submitting; throws UsageError when the ring is full.
  void push(Sqe sqe);
  /// Enqueue if the ring has room; false (sqe untouched) when full.
  bool try_push(Sqe& sqe);

  /// Ring the doorbell: process every pending sqe in order, append the
  /// batch trace records, and generate one Cqe per sqe.  Returns how many
  /// completions were generated.  Never throws on injected faults — they
  /// surface as failed/short Cqes (bad descriptors still throw, before any
  /// sqe is processed).
  std::size_t submit();

  CompletionQueue& completions() { return cq_; }
  /// Convenience forwarders to the paired CompletionQueue.
  std::optional<Cqe> reap() { return cq_.reap(); }
  std::vector<Cqe> reap_all() { return cq_.reap_all(); }

  const BatchStats& stats() const { return stats_; }

private:
  FsClient io_;
  std::size_t depth_;
  bool coalesce_;
  std::vector<Sqe> sqes_;
  CompletionQueue cq_;
  BatchStats stats_;
};

}  // namespace bitio::fsim
