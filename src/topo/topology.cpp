#include "topo/topology.hpp"

#include "util/error.hpp"

namespace bitio::topo {

Cluster Cluster::flat() {
  Cluster c;
  c.name = "flat";
  c.ranks_per_node = 0;
  c.numa_per_node = 1;
  c.nics_per_node = 1;
  return c;
}

Cluster Cluster::dardel_like() {
  Cluster c;
  c.name = "dardel";
  c.ranks_per_node = 128;
  c.numa_per_node = 8;
  c.nics_per_node = 1;
  return c;
}

Cluster Cluster::preset(const std::string& name) {
  // Keep the name comparisons literal: the topology-registry lint rule
  // (tools/lint_invariants) checks every core::kBit1IoTopologies entry
  // appears here.
  if (name == "flat") return flat();
  if (name == "dardel") return dardel_like();
  std::string known;
  for (const auto& preset : preset_names()) {
    if (!known.empty()) known += ", ";
    known += "\"" + preset + "\"";
  }
  throw UsageError("topo::Cluster::preset: unknown topology \"" + name +
                   "\" (presets: " + known + ")");
}

void Cluster::validate() const {
  if (ranks_per_node < 0)
    throw UsageError("topo::Cluster: ranks_per_node must be >= 0 (0 = flat)");
  if (numa_per_node < 1)
    throw UsageError("topo::Cluster: numa_per_node must be >= 1");
  if (nics_per_node < 1)
    throw UsageError("topo::Cluster: nics_per_node must be >= 1");
  if (ranks_per_node > 0 && numa_per_node > ranks_per_node)
    throw UsageError(
        "topo::Cluster: numa_per_node exceeds ranks_per_node — a NUMA "
        "domain would hold no ranks");
  if (ranks_per_node > 0 && ranks_per_node % numa_per_node != 0)
    throw UsageError(
        "topo::Cluster: numa_per_node must divide ranks_per_node evenly");
}

std::vector<std::string> preset_names() { return {"flat", "dardel"}; }

Mapper::Mapper(Cluster cluster, int nranks)
    : cluster_(std::move(cluster)), nranks_(nranks) {
  if (nranks_ <= 0) throw UsageError("topo::Mapper: nranks must be > 0");
  cluster_.validate();
  ranks_per_node_ =
      cluster_.ranks_per_node > 0 ? cluster_.ranks_per_node : nranks_;
  nodes_ = (nranks_ + ranks_per_node_ - 1) / ranks_per_node_;
}

void Mapper::require_rank(int rank) const {
  if (rank < 0 || rank >= nranks_)
    throw UsageError("topo::Mapper: rank out of range");
}

void Mapper::require_node(int node) const {
  if (node < 0 || node >= nodes_)
    throw UsageError("topo::Mapper: node out of range");
}

int Mapper::ranks_on_node(int node) const {
  require_node(node);
  const int first = node * ranks_per_node_;
  const int remaining = nranks_ - first;
  return remaining < ranks_per_node_ ? remaining : ranks_per_node_;
}

int Mapper::node_of(int rank) const {
  require_rank(rank);
  return rank / ranks_per_node_;
}

int Mapper::numa_of(int rank) const {
  require_rank(rank);
  const int within = rank % ranks_per_node_;
  const int per_numa =
      ranks_per_node_ / cluster_.numa_per_node > 0
          ? ranks_per_node_ / cluster_.numa_per_node
          : 1;
  const int numa = within / per_numa;
  // Remainder ranks of an uneven split fold into the last domain.
  return numa < cluster_.numa_per_node ? numa : cluster_.numa_per_node - 1;
}

int Mapper::nic_of(int rank) const {
  require_rank(rank);
  return (rank % ranks_per_node_) % cluster_.nics_per_node;
}

int Mapper::node_leader(int node) const {
  require_node(node);
  return node * ranks_per_node_;
}

}  // namespace bitio::topo
