#pragma once
// Declarative cluster-topology model for the two-level aggregation path.
//
// The paper's Fig 6 aggregator sweep treats all ranks as a flat pool, but
// the machines it targets are node-hierarchical: ranks share NUMA domains
// and NICs inside a node, and the inter-node links — not rank count —
// bound aggregation throughput.  `Cluster` declares that hierarchy (TOML-
// configured through core::Bit1IoConfig's `topology` / `numa_per_node` /
// `nics_per_node` keys, with presets for a flat pool and a Dardel-like
// machine) and `Mapper` places a concrete world of simulated ranks onto
// it: node / NUMA-domain / NIC of each rank, node leaders, and the
// intra-node vs inter-node distinction the bp::Writer gather path and the
// fsim timing replay both key off.
//
// A flat cluster (ranks_per_node == 0) puts every rank on one node, so no
// gather is ever modeled and the writer's trace — hence the container and
// every calibrated replay number — stays byte-identical to the
// pre-topology behavior.

#include <string>
#include <vector>

namespace bitio::topo {

/// Declarative cluster shape: how many ranks share a node, and how each
/// node subdivides into NUMA domains and NIC links.  Node *count* is not
/// part of the shape — it falls out of the world size when a Mapper is
/// built (ceil(nranks / ranks_per_node)).
struct Cluster {
  std::string name = "flat";
  // Ranks per node; 0 declares a flat (single-node) pool of any size.
  int ranks_per_node = 0;
  int numa_per_node = 1;  // NUMA domains per node
  int nics_per_node = 1;  // independent NIC links per node

  /// All ranks on one node: the historical flat-pool model.
  static Cluster flat();
  /// Dardel-like CPU partition: 128 ranks/node, 8 NUMA domains (Zen2
  /// chiplets), one Slingshot NIC.
  static Cluster dardel_like();
  /// Preset by registry name (core::kBit1IoTopologies).  The topology-
  /// registry lint rule keeps the names here and in the registry in
  /// lockstep.  Throws UsageError for unknown names, listing the presets.
  static Cluster preset(const std::string& name);

  /// Does this shape ever place ranks on more than one node?
  bool multi_node() const { return ranks_per_node > 0; }

  /// Throws UsageError unless the shape is coherent (non-negative ranks
  /// per node, >= 1 NUMA domains and NICs, NUMA domains dividing the node
  /// evenly when both are set).
  void validate() const;
};

/// Placement of a concrete world of `nranks` simulated ranks onto a
/// Cluster: block assignment, rank r lives on node r / ranks_per_node
/// (matching fsim's client -> node math), in NUMA domain and on the NIC
/// derived from its in-node index.  Immutable after construction; cheap
/// to copy.
class Mapper {
 public:
  Mapper(Cluster cluster, int nranks);

  const Cluster& cluster() const { return cluster_; }
  int nranks() const { return nranks_; }
  int nodes() const { return nodes_; }
  /// Ranks actually placed on `node` (the last node may be partial).
  int ranks_on_node(int node) const;

  int node_of(int rank) const;
  /// NUMA domain of `rank` within its node.
  int numa_of(int rank) const;
  /// NIC serving `rank` within its node (rank % nics_per_node, matching
  /// the replay's client -> NIC math).
  int nic_of(int rank) const;
  /// Lowest rank on `node` — the node leader of the two-level gather.
  int node_leader(int node) const;
  /// Node leader responsible for `rank`.
  int leader_of(int rank) const { return node_leader(node_of(rank)); }

  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }
  bool same_numa(int a, int b) const {
    return same_node(a, b) && numa_of(a) == numa_of(b);
  }
  /// Does the world actually span more than one node?
  bool multi_node() const { return nodes_ > 1; }

 private:
  void require_rank(int rank) const;
  void require_node(int node) const;

  Cluster cluster_;
  int nranks_ = 0;
  int nodes_ = 1;
  int ranks_per_node_ = 0;  // resolved: nranks for a flat cluster
};

/// Registry names of the built-in presets, in Cluster::preset order.
std::vector<std::string> preset_names();

}  // namespace bitio::topo
