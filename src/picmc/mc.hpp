#pragma once
// Monte Carlo collision module.
//
// The paper's use case: "neutral particle ionization resulting from
// interactions with electrons ... neutral concentration decreases with time
// according to dn/dt = -n n_e R", with three species (e, D+ ions, D
// neutrals).  Each step, every neutral is ionized with probability
// p = 1 - exp(-n_e(x) R dt) using the local electron density; an ionization
// event converts the neutral into a D+ ion and spawns a new electron that
// inherits the neutral's velocity plus a thermal kick.
//
// A simple elastic electron-neutral scattering channel (isotropic velocity
// redirection at fixed speed) is included as well — BIT1 carries a large
// set of atomic collision channels; elastic scattering is the
// representative second channel our diagnostics ("slow1", self-consistent
// atomic collisions) exercise.

#include <span>

#include "picmc/grid.hpp"
#include "picmc/particles.hpp"
#include "util/rng.hpp"

namespace bitio::picmc {

struct IonizationParams {
  double rate_coefficient = 1e-3;  // R in dn/dt = -n n_e R
  double dt = 0.1;
  double electron_thermal_speed = 1.0;  // kick for the freed electron
};

struct IonizationResult {
  std::uint64_t events = 0;
  double ionized_weight = 0.0;
};

/// Apply one ionization step: neutrals may convert into (ion, electron)
/// pairs.  `electron_density` is the node-centered n_e used for the local
/// collision probability.
IonizationResult ionize(const Grid1D& grid,
                        std::span<const double> electron_density,
                        ParticleBuffer& neutrals, ParticleBuffer& ions,
                        ParticleBuffer& electrons,
                        const IonizationParams& params, Rng& rng);

struct ElasticParams {
  double rate_coefficient = 0.0;  // nu = n_n R_el
  double dt = 0.1;
};

/// Elastic electron-neutral scattering: with probability
/// 1 - exp(-n_n(x) R dt), redirect the electron's velocity isotropically,
/// preserving its speed (energy-conserving in the heavy-scatterer limit).
std::uint64_t elastic_scatter(const Grid1D& grid,
                              std::span<const double> neutral_density,
                              ParticleBuffer& electrons,
                              const ElasticParams& params, Rng& rng);

}  // namespace bitio::picmc
