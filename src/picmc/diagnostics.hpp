#pragma once
// Time-dependent diagnostics with mvflag/mvstep semantics.
//
// BIT1's `mvflag` "activates time-dependent diagnostics of plasma profiles
// and particle angular, velocity and energy distribution functions; if > 0
// it determines the number of time steps at which time-dependent
// diagnostics are averaged", and `mvstep` counts the interval between them.
// Here: every `mvstep` steps a sample of profiles and velocity-distribution
// histograms is accumulated; after `mvflag` samples the average is frozen
// into a snapshot the I/O layer (serial .dat or openPMD) writes out.

#include <span>
#include <vector>

#include "picmc/simulation.hpp"

namespace bitio::picmc {

/// One frozen, averaged diagnostic snapshot for one species.
struct SpeciesSnapshot {
  std::string name;
  std::vector<double> density;     // node profile, time-averaged
  std::vector<double> vdf_vx;      // velocity distribution over vx bins
  double kinetic_energy = 0.0;
  double total_weight = 0.0;
  std::uint64_t particle_count = 0;
};

struct DiagnosticSnapshot {
  std::uint64_t step = 0;          // step at which the average completed
  double time = 0.0;
  std::vector<SpeciesSnapshot> species;
  std::uint64_t ionization_events = 0;
};

class Diagnostics {
public:
  /// `vdf_bins` histogram bins over [-vmax, vmax] for the vx distribution.
  Diagnostics(std::size_t vdf_bins = 64, double vmax = 6.0)
      : vdf_bins_(vdf_bins), vmax_(vmax) {}

  /// Call once per simulation step; samples and possibly completes an
  /// average according to mvflag/mvstep.  Returns true when a snapshot just
  /// completed (retrieve it with latest()).
  bool observe(const Simulation& sim);

  /// Most recently completed snapshot (empty before the first completes).
  const DiagnosticSnapshot& latest() const { return latest_; }
  std::uint64_t snapshots_completed() const { return completed_; }

  /// Immediate (unaveraged) snapshot of the current state — used by
  /// `datfile` writes when mvflag == 0.
  static DiagnosticSnapshot sample_now(const Simulation& sim,
                                       std::size_t vdf_bins = 64,
                                       double vmax = 6.0);

private:
  void accumulate(const Simulation& sim);

  std::size_t vdf_bins_;
  double vmax_;
  int samples_ = 0;
  std::vector<SpeciesSnapshot> accum_;
  DiagnosticSnapshot latest_;
  std::uint64_t completed_ = 0;
};

}  // namespace bitio::picmc
