#pragma once
// Field operations of the PIC cycle: charge deposition (particle-to-grid),
// binomial density smoothing, the electrostatic field solve, and the
// grid-to-particle gather.

#include <span>
#include <vector>

#include "picmc/grid.hpp"
#include "picmc/particles.hpp"

namespace bitio::picmc {

/// CIC (cloud-in-cell) deposition of particle weight onto grid nodes.
/// Returns / accumulates number density per node (weight / dx), so that a
/// uniform plasma of N physical particles over length L deposits N/L
/// everywhere.  Boundary nodes receive the half-cell correction (weights
/// are doubled) so the density is unbiased at the walls.
void deposit_density(const Grid1D& grid, const ParticleBuffer& particles,
                     std::span<double> density, bool accumulate = false);

/// One pass of the 1-2-1 binomial filter ("density smoothing process to
/// eliminate spurious frequencies").  Reflecting boundaries preserve the
/// integral of the field.  `passes` repeats the filter.
void smooth_binomial(std::span<double> field, int passes = 1);

/// Solve the 1D Poisson equation  -phi'' = rho / eps0  on grid nodes with
/// Dirichlet boundaries phi(x0) = phi(x1) = 0 (grounded walls), using the
/// Thomas tridiagonal algorithm.  `rho` is charge density per node.
void solve_poisson(const Grid1D& grid, std::span<const double> rho,
                   std::span<double> phi, double eps0 = 1.0);

/// Electric field on nodes from the potential: E = -dphi/dx (central
/// differences inside, one-sided at the walls).
void electric_field(const Grid1D& grid, std::span<const double> phi,
                    std::span<double> efield);

/// CIC gather of a node field at position x.
double gather(const Grid1D& grid, std::span<const double> field, double x);

}  // namespace bitio::picmc
