#pragma once
// The BIT1-like simulation driver: configuration, species bookkeeping, and
// the five-phase PIC MC cycle (deposit -> smooth -> field solve -> move +
// wall MC -> collision MC).
//
// Parallel model (BIT1's): particles are distributed over MPI ranks, grids
// and fields are replicated; after local deposition the densities are
// summed across ranks.  The reduction is injected by the caller (a
// smpi::Comm allreduce in SPMD runs, identity when serial), so the
// simulation itself stays communication-agnostic.
//
// Normalized units: lengths in Debye lengths, times in inverse plasma
// frequencies, charge/mass in electron units — the conventions of
// electrostatic PIC textbooks (Birdsall & Langdon).

#include <functional>
#include <string>
#include <vector>

#include "picmc/grid.hpp"
#include "picmc/mc.hpp"
#include "picmc/mover.hpp"
#include "picmc/particles.hpp"
#include "util/rng.hpp"

namespace bitio::picmc {

enum class SpeciesRole { electron, ion, neutral };

struct SpeciesConfig {
  std::string name;
  SpeciesRole role = SpeciesRole::electron;
  double mass = 1.0;
  double charge = -1.0;
  double temperature = 1.0;       // k_B T in normalized units
  double density = 1.0;           // initial uniform density
  std::size_t particles_per_cell = 16;
};

/// The five critical BIT1 input parameters (Section I of the paper) plus
/// the physics configuration of the ionization use case.
struct SimConfig {
  // Geometry and time stepping.
  double x0 = 0.0, x1 = 100.0;
  std::size_t ncells = 100;
  double dt = 0.1;
  std::uint64_t last_step = 1000;  // time step at which the code concludes

  // Output control.
  std::uint64_t datfile = 100;  // diagnostic snapshot every N steps
  std::uint64_t dmpstep = 500;  // checkpoint every N steps
  int mvflag = 0;    // >0: number of steps time-dependent diags average over
  std::uint64_t mvstep = 10;  // interval between time-dependent diagnostics

  // Physics switches.  The paper's scaling test runs WITHOUT the field
  // solver and smoother phases.
  bool use_field_solver = false;
  int smoothing_passes = 0;
  double bz = 0.0;
  WallMode walls = WallMode::periodic;  // use case: unbounded plasma
  double ionization_rate = 1e-3;
  double electron_thermal_kick = 1.0;
  double elastic_rate = 0.0;

  std::uint64_t seed = 0xB171;
  std::vector<SpeciesConfig> species;

  /// The paper's use case, scaled: electrons + D+ ions + D neutrals in an
  /// unbounded unmagnetized plasma, field solver off.  `cells` and `ppc`
  /// shrink the 100K-cell / 100-ppc production run to test size.
  static SimConfig ionization_case(std::size_t cells = 256,
                                   std::size_t ppc = 32);
};

/// One species' live state.
struct Species {
  SpeciesConfig config;
  ParticleBuffer particles;
  std::vector<double> density;  // node-centered, globally reduced
  // Cumulative wall-flux bookkeeping.
  std::uint64_t absorbed_left = 0, absorbed_right = 0;
  double absorbed_weight = 0.0;
};

class Simulation {
public:
  /// In-place density reduction across ranks (allreduce-sum); identity when
  /// empty (serial run).
  using DensityReducer = std::function<void(std::span<double>)>;

  Simulation(SimConfig config, int rank = 0, int nranks = 1);

  /// Sample initial particles (each rank gets a 1/nranks share).
  void initialize();

  /// Advance one PIC MC cycle.
  void step(const DensityReducer& reduce = {});

  /// Run until `last_step`, invoking `on_step(sim)` after every step.
  void run(const DensityReducer& reduce = {},
           const std::function<void(Simulation&)>& on_step = {});

  // -- state access ----------------------------------------------------------
  const Grid1D& grid() const { return grid_; }
  const SimConfig& config() const { return config_; }
  int rank() const { return rank_; }
  int nranks() const { return nranks_; }
  std::uint64_t current_step() const { return step_; }
  void set_current_step(std::uint64_t step) { step_ = step; }

  std::size_t species_count() const { return species_.size(); }
  Species& species(std::size_t i) { return species_.at(i); }
  const Species& species(std::size_t i) const { return species_.at(i); }
  Species& species_named(const std::string& name);
  Species* find_role(SpeciesRole role);

  const std::vector<double>& phi() const { return phi_; }
  const std::vector<double>& efield() const { return efield_; }

  std::uint64_t ionization_events() const { return ionization_events_; }
  double ionized_weight() const { return ionized_weight_; }
  /// Restore cumulative MC counters (checkpoint load).
  void set_ionization_totals(std::uint64_t events, double weight) {
    ionization_events_ = events;
    ionized_weight_ = weight;
  }

  /// Local (this rank's) kinetic energy of one species.
  double kinetic_energy(const Species& s) const;
  /// Local particle count across species.
  std::uint64_t local_particles() const;

  Rng& rng() { return rng_; }

private:
  SimConfig config_;
  int rank_, nranks_;
  Grid1D grid_;
  std::vector<Species> species_;
  std::vector<double> rho_;     // charge density
  std::vector<double> phi_;
  std::vector<double> efield_;
  std::uint64_t step_ = 0;
  std::uint64_t ionization_events_ = 0;
  double ionized_weight_ = 0.0;
  Rng rng_;
};

}  // namespace bitio::picmc
