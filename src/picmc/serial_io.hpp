#pragma once
// BIT1's original serial stdio-style output, reproduced faithfully as the
// baseline the paper measures first (Figs 2-5, Table II "BIT1 Original
// I/O"):
//
//   * every rank appends ASCII diagnostics to its own two .dat files
//     ("slow" plasma profiles / distribution functions, and "slow1"
//     self-consistent atomic collision diagnostics) — 2 files x ranks;
//   * rank 0 maintains six global files: the input echo, the particle-
//     number time history, wall fluxes, energy history, the ionization
//     diagnostic, and the gathered binary checkpoint bit1.dmp —
//     which yields the 256 N + 6 total files of Table II;
//   * every output event re-opens and closes its file (fopen/fprintf/
//     fclose), and text is flushed in small line-buffered records — the
//     access pattern whose metadata and small-write costs Darshan exposes.

#include <span>
#include <string>
#include <vector>

#include "fsim/posix_fs.hpp"
#include "picmc/diagnostics.hpp"
#include "picmc/simulation.hpp"

namespace bitio::picmc {

class Bit1SerialWriter {
public:
  /// Record size of the simulated stdio buffer (bytes per write call).
  static constexpr std::size_t kStdioRecord = 2048;

  Bit1SerialWriter(fsim::SharedFs& fs, std::string run_dir, int rank,
                   int nranks);

  /// Write the input echo (rank 0, once).
  void write_input_echo(const SimConfig& config);

  /// Per-rank diagnostic dump (the `datfile` event): appends profiles to
  /// slow_<rank>.dat and collision diagnostics to slow1_<rank>.dat.
  void write_diagnostics(const Simulation& sim,
                         const DiagnosticSnapshot& snapshot);

  /// Rank-0 global histories (appended every datfile event).
  void write_history(const Simulation& sim, std::uint64_t global_particles,
                     double global_energy);

  /// Rank-0 gathered checkpoint (the `dmpstep` event): one serial bit1.dmp
  /// holding every rank's state blob.
  void write_checkpoint(
      std::span<const std::vector<std::uint8_t>> rank_states);

  /// Read back the gathered checkpoint; element r is rank r's blob.
  std::vector<std::vector<std::uint8_t>> read_checkpoint();

  const std::string& run_dir() const { return run_dir_; }

  /// File names (for tests and the darshan analysis).
  std::string slow_path() const;
  std::string slow1_path() const;
  std::string dmp_path() const { return run_dir_ + "/bit1.dmp"; }

private:
  /// stdio-style append: open(append or create), write `text` in
  /// kStdioRecord-sized records, close.
  void append_text(const std::string& path, const std::string& text);

  fsim::SharedFs& fs_;
  std::string run_dir_;
  int rank_, nranks_;
};

}  // namespace bitio::picmc
