#pragma once
// Particle push and wall interaction.
//
// Leapfrog scheme in 1D3V: the electric field accelerates v_x only (the
// paper's use case is unmagnetized); an optional uniform B along z rotates
// (v_x, v_y) with the standard Boris rotation, which BIT1 needs for
// magnetized flux-tube runs.  Particles crossing a wall are absorbed and
// counted as wall flux (the plasma-wall transition is BIT1's whole topic)
// or specularly reflected, per config.

#include <span>

#include "picmc/fields.hpp"
#include "picmc/grid.hpp"
#include "picmc/particles.hpp"

namespace bitio::picmc {

enum class WallMode { absorb, reflect, periodic };

struct PushResult {
  std::uint64_t absorbed_left = 0;
  std::uint64_t absorbed_right = 0;
  double absorbed_weight_left = 0.0;
  double absorbed_weight_right = 0.0;
};

struct PushParams {
  double charge = -1.0;  // species charge (normalized units)
  double mass = 1.0;
  double dt = 0.1;
  double bz = 0.0;       // uniform magnetic field along z
  WallMode walls = WallMode::absorb;
};

/// Advance one species: v-update from the gathered E field (+ optional
/// Boris rotation), x-update, then wall handling.  Absorbed particles are
/// removed from the buffer.
PushResult push_species(const Grid1D& grid, std::span<const double> efield,
                        ParticleBuffer& particles, const PushParams& params);

}  // namespace bitio::picmc
