#include "picmc/checkpoint.hpp"

#include "util/binio.hpp"
#include "util/error.hpp"

namespace bitio::picmc {

namespace {
constexpr std::uint32_t kDmpMagic = 0x444D5031;  // "DMP1"

void write_array(BinWriter& out, const std::vector<double>& v) {
  out.u64(v.size());
  for (double d : v) out.f64(d);
}

std::vector<double> read_array(BinReader& in) {
  const std::uint64_t n = in.u64();
  std::vector<double> v(n);
  for (auto& d : v) d = in.f64();
  return v;
}
}  // namespace

std::vector<std::uint8_t> save_checkpoint(const Simulation& sim) {
  BinWriter out;
  out.u32(kDmpMagic);
  out.u64(sim.current_step());
  out.u64(sim.ionization_events());
  out.f64(sim.ionized_weight());
  const auto rng_state = const_cast<Simulation&>(sim).rng().state();
  for (auto s : rng_state) out.u64(s);
  out.u32(std::uint32_t(sim.species_count()));
  for (std::size_t i = 0; i < sim.species_count(); ++i) {
    const Species& s = sim.species(i);
    out.str(s.config.name);
    out.u64(s.absorbed_left);
    out.u64(s.absorbed_right);
    out.f64(s.absorbed_weight);
    write_array(out, s.particles.x());
    write_array(out, s.particles.vx());
    write_array(out, s.particles.vy());
    write_array(out, s.particles.vz());
    write_array(out, s.particles.w());
  }
  return out.take();
}

void load_checkpoint(Simulation& sim, std::span<const std::uint8_t> data) {
  BinReader in(data);
  if (in.u32() != kDmpMagic)
    throw FormatError("checkpoint: bad .dmp magic");
  const std::uint64_t step = in.u64();
  const std::uint64_t ionization_events = in.u64();
  const double ionized_weight = in.f64();
  std::array<std::uint64_t, 4> rng_state;
  for (auto& s : rng_state) s = in.u64();
  const std::uint32_t nspecies = in.u32();
  if (nspecies != sim.species_count())
    throw UsageError("checkpoint: species count mismatch");

  // Parse everything before mutating the simulation, so a truncated
  // checkpoint cannot leave it half-restored.
  struct SpeciesState {
    std::string name;
    std::uint64_t absorbed_left, absorbed_right;
    double absorbed_weight;
    std::vector<double> x, vx, vy, vz, w;
  };
  std::vector<SpeciesState> parsed;
  for (std::uint32_t i = 0; i < nspecies; ++i) {
    SpeciesState state;
    state.name = in.str();
    state.absorbed_left = in.u64();
    state.absorbed_right = in.u64();
    state.absorbed_weight = in.f64();
    state.x = read_array(in);
    state.vx = read_array(in);
    state.vy = read_array(in);
    state.vz = read_array(in);
    state.w = read_array(in);
    const std::size_t n = state.x.size();
    if (state.vx.size() != n || state.vy.size() != n ||
        state.vz.size() != n || state.w.size() != n)
      throw FormatError("checkpoint: inconsistent particle arrays");
    if (sim.species(i).config.name != state.name)
      throw UsageError("checkpoint: species order mismatch ('" + state.name +
                       "')");
    parsed.push_back(std::move(state));
  }
  if (!in.done()) throw FormatError("checkpoint: trailing bytes");

  sim.set_current_step(step);
  sim.set_ionization_totals(ionization_events, ionized_weight);
  sim.rng().set_state(rng_state);
  for (std::uint32_t i = 0; i < nspecies; ++i) {
    Species& s = sim.species(i);
    SpeciesState& state = parsed[i];
    s.absorbed_left = state.absorbed_left;
    s.absorbed_right = state.absorbed_right;
    s.absorbed_weight = state.absorbed_weight;
    s.particles.clear();
    s.particles.reserve(state.x.size());
    for (std::size_t p = 0; p < state.x.size(); ++p)
      s.particles.push_back(state.x[p], state.vx[p], state.vy[p],
                            state.vz[p], state.w[p]);
  }
}

}  // namespace bitio::picmc
