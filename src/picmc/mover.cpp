#include "picmc/mover.hpp"

#include <cmath>

namespace bitio::picmc {

PushResult push_species(const Grid1D& grid, std::span<const double> efield,
                        ParticleBuffer& particles, const PushParams& params) {
  PushResult result;
  const double qm_dt = params.charge / params.mass * params.dt;
  auto& x = particles.x();
  auto& vx = particles.vx();
  auto& vy = particles.vy();
  const bool magnetized = params.bz != 0.0;

  // Boris rotation half-angle terms for a uniform Bz (rotation in the
  // x-y velocity plane).
  const double t = magnetized
                       ? params.charge * params.bz / params.mass *
                             (0.5 * params.dt)
                       : 0.0;
  const double s = magnetized ? 2.0 * t / (1.0 + t * t) : 0.0;

  for (std::size_t p = 0; p < particles.size();) {
    const double e_here = gather(grid, efield, x[p]);
    // Half acceleration.
    double ux = vx[p] + 0.5 * qm_dt * e_here;
    double uy = vy[p];
    if (magnetized) {
      // v' = v + v x t ; v+ = v + v' x s  (z-rotation only).
      const double px = ux + uy * t;
      const double py = uy - ux * t;
      ux = ux + py * s;
      uy = uy - px * s;
    }
    // Second half acceleration.
    vx[p] = ux + 0.5 * qm_dt * e_here;
    vy[p] = uy;
    x[p] += vx[p] * params.dt;

    if (x[p] >= grid.x0() && x[p] <= grid.x1()) {
      ++p;
      continue;
    }
    switch (params.walls) {
      case WallMode::periodic: {
        const double length = grid.length();
        while (x[p] < grid.x0()) x[p] += length;
        while (x[p] > grid.x1()) x[p] -= length;
        ++p;
        break;
      }
      case WallMode::reflect: {
        if (x[p] < grid.x0()) x[p] = 2.0 * grid.x0() - x[p];
        if (x[p] > grid.x1()) x[p] = 2.0 * grid.x1() - x[p];
        vx[p] = -vx[p];
        // A particle deep past the wall (v dt >> L) could still be outside;
        // clamp defensively.
        if (x[p] < grid.x0()) x[p] = grid.x0();
        if (x[p] > grid.x1()) x[p] = grid.x1();
        ++p;
        break;
      }
      case WallMode::absorb: {
        if (x[p] < grid.x0()) {
          ++result.absorbed_left;
          result.absorbed_weight_left += particles.w()[p];
        } else {
          ++result.absorbed_right;
          result.absorbed_weight_right += particles.w()[p];
        }
        particles.swap_remove(p);  // do not advance p
        break;
      }
    }
  }
  return result;
}

}  // namespace bitio::picmc
