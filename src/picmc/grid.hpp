#pragma once
// 1D spatial grid.  Node-centered fields: ncells cells bounded by
// ncells + 1 nodes; densities and potentials live on nodes.

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace bitio::picmc {

class Grid1D {
public:
  Grid1D(double x0, double x1, std::size_t ncells)
      : x0_(x0), x1_(x1), ncells_(ncells) {
    if (ncells == 0 || x1 <= x0)
      throw UsageError("Grid1D: need x1 > x0 and ncells > 0");
    dx_ = (x1 - x0) / double(ncells);
  }

  double x0() const { return x0_; }
  double x1() const { return x1_; }
  double dx() const { return dx_; }
  double length() const { return x1_ - x0_; }
  std::size_t ncells() const { return ncells_; }
  std::size_t nnodes() const { return ncells_ + 1; }

  double node_position(std::size_t i) const { return x0_ + double(i) * dx_; }

  bool contains(double x) const { return x >= x0_ && x <= x1_; }

  /// Lower node index and CIC weight of a position (weight of the *upper*
  /// node is the returned fraction).
  std::pair<std::size_t, double> locate(double x) const {
    const double s = (x - x0_) / dx_;
    std::size_t i = std::size_t(s);
    if (i >= ncells_) i = ncells_ - 1;  // clamp x == x1 into the last cell
    return {i, s - double(i)};
  }

private:
  double x0_, x1_, dx_;
  std::size_t ncells_;
};

}  // namespace bitio::picmc
