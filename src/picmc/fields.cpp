#include "picmc/fields.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bitio::picmc {

void deposit_density(const Grid1D& grid, const ParticleBuffer& particles,
                     std::span<double> density, bool accumulate) {
  if (density.size() != grid.nnodes())
    throw UsageError("deposit_density: field size != nnodes");
  if (!accumulate) std::fill(density.begin(), density.end(), 0.0);
  const double inv_dx = 1.0 / grid.dx();
  const auto& x = particles.x();
  const auto& w = particles.w();
  for (std::size_t p = 0; p < particles.size(); ++p) {
    const auto [i, frac] = grid.locate(x[p]);
    density[i] += w[p] * (1.0 - frac) * inv_dx;
    density[i + 1] += w[p] * frac * inv_dx;
  }
  // Half-cell volume correction at the walls.
  density[0] *= 2.0;
  density[grid.ncells()] *= 2.0;
}

void smooth_binomial(std::span<double> field, int passes) {
  const std::size_t n = field.size();
  if (n < 3 || passes <= 0) return;
  std::vector<double> tmp(n);
  for (int pass = 0; pass < passes; ++pass) {
    // Reflecting boundaries: ghost values mirror the interior, which keeps
    // the filter's total mass exactly.
    tmp[0] = 0.25 * field[1] + 0.5 * field[0] + 0.25 * field[1];
    tmp[n - 1] = 0.25 * field[n - 2] + 0.5 * field[n - 1] + 0.25 * field[n - 2];
    for (std::size_t i = 1; i + 1 < n; ++i)
      tmp[i] = 0.25 * field[i - 1] + 0.5 * field[i] + 0.25 * field[i + 1];
    std::copy(tmp.begin(), tmp.end(), field.begin());
  }
}

void solve_poisson(const Grid1D& grid, std::span<const double> rho,
                   std::span<double> phi, double eps0) {
  const std::size_t n = grid.nnodes();
  if (rho.size() != n || phi.size() != n)
    throw UsageError("solve_poisson: field size != nnodes");
  phi[0] = 0.0;
  phi[n - 1] = 0.0;
  if (n <= 2) return;

  // Interior unknowns i = 1..n-2:  (-phi[i-1] + 2 phi[i] - phi[i+1]) =
  // dx^2 rho[i] / eps0.  Thomas algorithm with constant coefficients.
  const std::size_t m = n - 2;
  const double h2 = grid.dx() * grid.dx() / eps0;
  std::vector<double> c(m), d(m);
  // Forward sweep.  a = -1, b = 2, c = -1.
  double beta = 2.0;
  c[0] = -1.0 / beta;
  d[0] = h2 * rho[1] / beta;
  for (std::size_t i = 1; i < m; ++i) {
    beta = 2.0 + c[i - 1];
    c[i] = -1.0 / beta;
    d[i] = (h2 * rho[i + 1] + d[i - 1]) / beta;
  }
  // Back substitution.
  phi[m] = d[m - 1];
  for (std::size_t i = m - 1; i > 0; --i)
    phi[i] = d[i - 1] - c[i - 1] * phi[i + 1];
}

void electric_field(const Grid1D& grid, std::span<const double> phi,
                    std::span<double> efield) {
  const std::size_t n = grid.nnodes();
  if (phi.size() != n || efield.size() != n)
    throw UsageError("electric_field: field size != nnodes");
  const double inv_2dx = 0.5 / grid.dx();
  if (n == 1) {
    efield[0] = 0.0;
    return;
  }
  efield[0] = -(phi[1] - phi[0]) / grid.dx();
  efield[n - 1] = -(phi[n - 1] - phi[n - 2]) / grid.dx();
  for (std::size_t i = 1; i + 1 < n; ++i)
    efield[i] = -(phi[i + 1] - phi[i - 1]) * inv_2dx;
}

double gather(const Grid1D& grid, std::span<const double> field, double x) {
  if (field.size() != grid.nnodes())
    throw UsageError("gather: field size != nnodes");
  const auto [i, frac] = grid.locate(x);
  return field[i] * (1.0 - frac) + field[i + 1] * frac;
}

}  // namespace bitio::picmc
