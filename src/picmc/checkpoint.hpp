#pragma once
// Bit-exact binary checkpointing of the full simulation state (particles,
// step counter, RNG state, wall-flux counters) — the `.dmp` mechanism that
// "saves the present state on the disk" for restart.  Used by both the
// original serial writer (one gathered .dmp) and as the payload the openPMD
// adaptor stores under iteration 0.

#include <span>
#include <vector>

#include "picmc/simulation.hpp"

namespace bitio::picmc {

/// Serialize this rank's state.  Format is versioned and validated.
std::vector<std::uint8_t> save_checkpoint(const Simulation& sim);

/// Restore state saved by save_checkpoint() into `sim`.  The simulation
/// must have been constructed with the same config (species list, grid).
/// Throws FormatError on corrupt data, UsageError on config mismatch.
void load_checkpoint(Simulation& sim, std::span<const std::uint8_t> data);

}  // namespace bitio::picmc
