#include "picmc/diagnostics.hpp"

#include <algorithm>

namespace bitio::picmc {

namespace {

SpeciesSnapshot sample_species(const Simulation& sim, const Species& s,
                               std::size_t vdf_bins, double vmax) {
  SpeciesSnapshot snap;
  snap.name = s.config.name;
  snap.density = s.density;
  snap.vdf_vx.assign(vdf_bins, 0.0);
  const double vth = std::sqrt(s.config.temperature / s.config.mass);
  const double scale = vmax * vth;
  const auto& p = s.particles;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double u = (p.vx()[i] / scale + 1.0) * 0.5;  // [0,1) if in range
    if (u < 0.0 || u >= 1.0) continue;
    snap.vdf_vx[std::size_t(u * double(vdf_bins))] += p.w()[i];
  }
  snap.kinetic_energy = sim.kinetic_energy(s);
  snap.total_weight = p.total_weight();
  snap.particle_count = p.size();
  return snap;
}

DiagnosticSnapshot sample_all(const Simulation& sim, std::size_t vdf_bins,
                              double vmax) {
  DiagnosticSnapshot snap;
  snap.step = sim.current_step();
  snap.time = double(sim.current_step()) * sim.config().dt;
  snap.ionization_events = sim.ionization_events();
  for (std::size_t i = 0; i < sim.species_count(); ++i)
    snap.species.push_back(
        sample_species(sim, sim.species(i), vdf_bins, vmax));
  return snap;
}

}  // namespace

DiagnosticSnapshot Diagnostics::sample_now(const Simulation& sim,
                                           std::size_t vdf_bins,
                                           double vmax) {
  return sample_all(sim, vdf_bins, vmax);
}

void Diagnostics::accumulate(const Simulation& sim) {
  DiagnosticSnapshot now = sample_all(sim, vdf_bins_, vmax_);
  if (accum_.empty()) {
    accum_ = std::move(now.species);
    samples_ = 1;
    return;
  }
  for (std::size_t s = 0; s < accum_.size(); ++s) {
    auto& acc = accum_[s];
    const auto& cur = now.species[s];
    for (std::size_t i = 0; i < acc.density.size(); ++i)
      acc.density[i] += cur.density[i];
    for (std::size_t i = 0; i < acc.vdf_vx.size(); ++i)
      acc.vdf_vx[i] += cur.vdf_vx[i];
    acc.kinetic_energy += cur.kinetic_energy;
    acc.total_weight += cur.total_weight;
    acc.particle_count += cur.particle_count;
  }
  ++samples_;
}

bool Diagnostics::observe(const Simulation& sim) {
  const auto& config = sim.config();
  if (config.mvflag <= 0) return false;
  if (config.mvstep == 0 || sim.current_step() % config.mvstep != 0)
    return false;
  accumulate(sim);
  if (samples_ < config.mvflag) return false;

  // Average and freeze.
  latest_ = DiagnosticSnapshot{};
  latest_.step = sim.current_step();
  latest_.time = double(sim.current_step()) * config.dt;
  latest_.ionization_events = sim.ionization_events();
  const double inv = 1.0 / double(samples_);
  for (auto& acc : accum_) {
    SpeciesSnapshot avg = acc;
    for (auto& d : avg.density) d *= inv;
    for (auto& v : avg.vdf_vx) v *= inv;
    avg.kinetic_energy *= inv;
    avg.total_weight *= inv;
    avg.particle_count =
        std::uint64_t(double(avg.particle_count) * inv + 0.5);
    latest_.species.push_back(std::move(avg));
  }
  accum_.clear();
  samples_ = 0;
  ++completed_;
  return true;
}

}  // namespace bitio::picmc
