#include "picmc/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "picmc/fields.hpp"
#include "util/error.hpp"

namespace bitio::picmc {

SimConfig SimConfig::ionization_case(std::size_t cells, std::size_t ppc) {
  SimConfig config;
  config.ncells = cells;
  config.x0 = 0.0;
  config.x1 = double(cells);  // dx = 1 Debye length
  config.dt = 0.1;
  config.use_field_solver = false;  // the paper's test skips solve + smooth
  config.smoothing_passes = 0;
  config.walls = WallMode::periodic;
  config.ionization_rate = 2e-3;
  config.elastic_rate = 0.0;

  SpeciesConfig electrons{"e", SpeciesRole::electron, 1.0, -1.0,
                          1.0, 1.0, ppc};
  // Deuterium: m_D / m_e = 3671.5.
  SpeciesConfig ions{"D+", SpeciesRole::ion, 3671.5, 1.0, 0.03, 1.0, ppc};
  SpeciesConfig neutrals{"D", SpeciesRole::neutral, 3671.5, 0.0,
                         0.03, 1.0, ppc};
  config.species = {electrons, ions, neutrals};
  return config;
}

Simulation::Simulation(SimConfig config, int rank, int nranks)
    : config_(std::move(config)),
      rank_(rank),
      nranks_(nranks),
      grid_(config_.x0, config_.x1, config_.ncells),
      rho_(grid_.nnodes(), 0.0),
      phi_(grid_.nnodes(), 0.0),
      efield_(grid_.nnodes(), 0.0),
      rng_(config_.seed, std::uint64_t(rank)) {
  if (nranks <= 0 || rank < 0 || rank >= nranks)
    throw UsageError("Simulation: bad rank/nranks");
  if (config_.species.empty())
    throw UsageError("Simulation: no species configured");
  for (const auto& sc : config_.species) {
    Species s;
    s.config = sc;
    s.density.assign(grid_.nnodes(), 0.0);
    species_.push_back(std::move(s));
  }
}

void Simulation::initialize() {
  for (auto& s : species_) {
    const std::uint64_t global_total =
        std::uint64_t(s.config.particles_per_cell) * grid_.ncells();
    // Contiguous block split across ranks; weights chosen so the summed
    // physical density equals config.density.
    const std::uint64_t begin =
        global_total * std::uint64_t(rank_) / std::uint64_t(nranks_);
    const std::uint64_t end =
        global_total * std::uint64_t(rank_ + 1) / std::uint64_t(nranks_);
    const double weight =
        s.config.density * grid_.length() / double(global_total);
    const double vth = std::sqrt(s.config.temperature / s.config.mass);
    s.particles.reserve(end - begin);
    for (std::uint64_t p = begin; p < end; ++p) {
      const double x = grid_.x0() + rng_.uniform() * grid_.length();
      s.particles.push_back(x, vth * rng_.normal(), vth * rng_.normal(),
                            vth * rng_.normal(), weight);
    }
  }
}

Species& Simulation::species_named(const std::string& name) {
  for (auto& s : species_)
    if (s.config.name == name) return s;
  throw UsageError("Simulation: no species '" + name + "'");
}

Species* Simulation::find_role(SpeciesRole role) {
  for (auto& s : species_)
    if (s.config.role == role) return &s;
  return nullptr;
}

double Simulation::kinetic_energy(const Species& s) const {
  double energy = 0.0;
  const auto& p = s.particles;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double v2 = p.vx()[i] * p.vx()[i] + p.vy()[i] * p.vy()[i] +
                      p.vz()[i] * p.vz()[i];
    energy += 0.5 * s.config.mass * p.w()[i] * v2;
  }
  return energy;
}

std::uint64_t Simulation::local_particles() const {
  std::uint64_t total = 0;
  for (const auto& s : species_) total += s.particles.size();
  return total;
}

void Simulation::step(const DensityReducer& reduce) {
  // Phase 1: plasma density calculation (particle-to-grid interpolation).
  for (auto& s : species_) {
    deposit_density(grid_, s.particles, s.density);
    if (reduce) reduce(s.density);
  }

  // Phase 2: density smoothing (off in the paper's scaling test).
  if (config_.smoothing_passes > 0)
    for (auto& s : species_)
      smooth_binomial(s.density, config_.smoothing_passes);

  // Phase 3: field solve (off in the paper's scaling test).
  if (config_.use_field_solver) {
    std::fill(rho_.begin(), rho_.end(), 0.0);
    for (const auto& s : species_)
      for (std::size_t i = 0; i < rho_.size(); ++i)
        rho_[i] += s.config.charge * s.density[i];
    solve_poisson(grid_, rho_, phi_);
    electric_field(grid_, phi_, efield_);
  } else {
    std::fill(efield_.begin(), efield_.end(), 0.0);
  }

  // Phase 4: particle advance + wall interaction.
  for (auto& s : species_) {
    PushParams push;
    push.charge = s.config.charge;
    push.mass = s.config.mass;
    push.dt = config_.dt;
    push.bz = config_.bz;
    push.walls = config_.walls;
    const PushResult result =
        push_species(grid_, efield_, s.particles, push);
    s.absorbed_left += result.absorbed_left;
    s.absorbed_right += result.absorbed_right;
    s.absorbed_weight +=
        result.absorbed_weight_left + result.absorbed_weight_right;
  }

  // Phase 5: Monte Carlo collisions.
  Species* electrons = find_role(SpeciesRole::electron);
  Species* ions = find_role(SpeciesRole::ion);
  Species* neutrals = find_role(SpeciesRole::neutral);
  if (electrons && ions && neutrals && config_.ionization_rate > 0.0) {
    IonizationParams ion_params;
    ion_params.rate_coefficient = config_.ionization_rate;
    ion_params.dt = config_.dt;
    ion_params.electron_thermal_speed = config_.electron_thermal_kick;
    const IonizationResult result =
        ionize(grid_, electrons->density, neutrals->particles,
               ions->particles, electrons->particles, ion_params, rng_);
    ionization_events_ += result.events;
    ionized_weight_ += result.ionized_weight;
  }
  if (electrons && neutrals && config_.elastic_rate > 0.0) {
    ElasticParams elastic{config_.elastic_rate, config_.dt};
    elastic_scatter(grid_, neutrals->density, electrons->particles, elastic,
                    rng_);
  }

  ++step_;
}

void Simulation::run(const DensityReducer& reduce,
                     const std::function<void(Simulation&)>& on_step) {
  while (step_ < config_.last_step) {
    step(reduce);
    if (on_step) on_step(*this);
  }
}

}  // namespace bitio::picmc
