#include "picmc/serial_io.hpp"

#include "util/binio.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace bitio::picmc {

Bit1SerialWriter::Bit1SerialWriter(fsim::SharedFs& fs, std::string run_dir,
                                   int rank, int nranks)
    : fs_(fs), run_dir_(std::move(run_dir)), rank_(rank), nranks_(nranks) {
  if (rank < 0 || nranks <= 0 || rank >= nranks)
    throw UsageError("Bit1SerialWriter: bad rank/nranks");
}

std::string Bit1SerialWriter::slow_path() const {
  return run_dir_ + "/slow_" + std::to_string(rank_) + ".dat";
}

std::string Bit1SerialWriter::slow1_path() const {
  return run_dir_ + "/slow1_" + std::to_string(rank_) + ".dat";
}

void Bit1SerialWriter::append_text(const std::string& path,
                                   const std::string& text) {
  fsim::FsClient io(fs_, fsim::ClientId(rank_));
  const int fd = io.open(path, io.exists(path) ? fsim::OpenMode::append
                                               : fsim::OpenMode::create);
  for (std::size_t pos = 0; pos < text.size(); pos += kStdioRecord) {
    const std::size_t n = std::min(kStdioRecord, text.size() - pos);
    io.write(fd, std::span<const std::uint8_t>(
                     reinterpret_cast<const std::uint8_t*>(text.data() + pos),
                     n));
  }
  io.close(fd);
}

void Bit1SerialWriter::write_input_echo(const SimConfig& config) {
  if (rank_ != 0) return;
  std::string text;
  text += strfmt("# BIT1 input echo\n");
  text += strfmt("ncells   = %zu\n", config.ncells);
  text += strfmt("dt       = %g\n", config.dt);
  text += strfmt("last_step= %llu\n",
                 static_cast<unsigned long long>(config.last_step));
  text += strfmt("datfile  = %llu\n",
                 static_cast<unsigned long long>(config.datfile));
  text += strfmt("dmpstep  = %llu\n",
                 static_cast<unsigned long long>(config.dmpstep));
  text += strfmt("mvflag   = %d\n", config.mvflag);
  text += strfmt("mvstep   = %llu\n",
                 static_cast<unsigned long long>(config.mvstep));
  for (const auto& s : config.species)
    text += strfmt("species %s: m=%g q=%g T=%g ppc=%zu\n",
                   s.name.c_str(), s.mass, s.charge, s.temperature,
                   s.particles_per_cell);
  append_text(run_dir_ + "/input.echo", text);
}

void Bit1SerialWriter::write_diagnostics(const Simulation& sim,
                                         const DiagnosticSnapshot& snapshot) {
  // "slow": plasma profiles and velocity distribution functions.
  std::string slow;
  slow += strfmt("# step %llu t=%g\n",
                 static_cast<unsigned long long>(snapshot.step),
                 snapshot.time);
  for (const auto& sp : snapshot.species) {
    slow += strfmt("## %s density\n", sp.name.c_str());
    for (std::size_t i = 0; i < sp.density.size(); ++i)
      slow += strfmt("%g %.6e\n", sim.grid().node_position(i),
                     sp.density[i]);
    slow += strfmt("## %s f(vx)\n", sp.name.c_str());
    for (std::size_t i = 0; i < sp.vdf_vx.size(); ++i)
      slow += strfmt("%zu %.6e\n", i, sp.vdf_vx[i]);
  }
  append_text(slow_path(), slow);

  // "slow1": self-consistent atomic collision diagnostics.
  std::string slow1;
  slow1 += strfmt("# step %llu collisions\n",
                  static_cast<unsigned long long>(snapshot.step));
  slow1 += strfmt("ionization_events %llu\n",
                  static_cast<unsigned long long>(snapshot.ionization_events));
  for (const auto& sp : snapshot.species)
    slow1 += strfmt("%s count %llu weight %.6e energy %.6e\n",
                    sp.name.c_str(),
                    static_cast<unsigned long long>(sp.particle_count),
                    sp.total_weight, sp.kinetic_energy);
  append_text(slow1_path(), slow1);
}

void Bit1SerialWriter::write_history(const Simulation& sim,
                                     std::uint64_t global_particles,
                                     double global_energy) {
  if (rank_ != 0) return;
  const double t = double(sim.current_step()) * sim.config().dt;
  append_text(run_dir_ + "/history.dat",
              strfmt("%g %llu\n", t,
                     static_cast<unsigned long long>(global_particles)));
  append_text(run_dir_ + "/energy.dat", strfmt("%g %.8e\n", t, global_energy));
  std::string flux;
  for (std::size_t i = 0; i < sim.species_count(); ++i) {
    const Species& s = sim.species(i);
    flux += strfmt("%g %s %llu %llu %.6e\n", t, s.config.name.c_str(),
                   static_cast<unsigned long long>(s.absorbed_left),
                   static_cast<unsigned long long>(s.absorbed_right),
                   s.absorbed_weight);
  }
  append_text(run_dir_ + "/pwall.dat", flux);
  append_text(run_dir_ + "/iondiag.dat",
              strfmt("%g %llu %.6e\n", t,
                     static_cast<unsigned long long>(sim.ionization_events()),
                     sim.ionized_weight()));
}

void Bit1SerialWriter::write_checkpoint(
    std::span<const std::vector<std::uint8_t>> rank_states) {
  if (rank_ != 0)
    throw UsageError("Bit1SerialWriter: only rank 0 writes bit1.dmp");
  BinWriter out;
  out.u32(std::uint32_t(rank_states.size()));
  for (const auto& blob : rank_states) {
    out.u64(blob.size());
    out.bytes(blob);
  }
  fsim::FsClient io(fs_, 0);
  const int fd = io.open(dmp_path(), fsim::OpenMode::create_or_truncate);
  // The gathered state is written serially in stdio-sized records — this
  // is exactly the pattern that makes original-BIT1 checkpoints slow.
  const auto& bytes = out.buffer();
  for (std::size_t pos = 0; pos < bytes.size(); pos += kStdioRecord) {
    const std::size_t n = std::min(kStdioRecord, bytes.size() - pos);
    io.write(fd, std::span<const std::uint8_t>(bytes.data() + pos, n));
  }
  io.fsync(fd);
  io.close(fd);
}

std::vector<std::vector<std::uint8_t>> Bit1SerialWriter::read_checkpoint() {
  fsim::FsClient io(fs_, fsim::ClientId(rank_));
  const auto bytes = io.read_all(dmp_path());
  BinReader in(bytes);
  const std::uint32_t count = in.u32();
  std::vector<std::vector<std::uint8_t>> blobs;
  blobs.reserve(count);
  for (std::uint32_t r = 0; r < count; ++r) {
    const std::uint64_t n = in.u64();
    const auto span = in.bytes(n);
    blobs.emplace_back(span.begin(), span.end());
  }
  if (!in.done()) throw FormatError("bit1.dmp: trailing bytes");
  return blobs;
}

}  // namespace bitio::picmc
