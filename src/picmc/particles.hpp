#pragma once
// Particle storage for the 1D3V PIC MC code.
//
// Structure-of-arrays layout: one contiguous array per coordinate, the
// memory organization BIT1 adopted for cache efficiency (Tskhakaya et al.,
// "Optimization of PIC codes by improved memory management").  Positions are
// 1D; velocities keep all three components (1D3V).

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace bitio::picmc {

class ParticleBuffer {
public:
  std::size_t size() const { return x_.size(); }
  bool empty() const { return x_.empty(); }

  void reserve(std::size_t n) {
    x_.reserve(n);
    vx_.reserve(n);
    vy_.reserve(n);
    vz_.reserve(n);
    w_.reserve(n);
  }

  void push_back(double x, double vx, double vy, double vz,
                 double weight = 1.0) {
    x_.push_back(x);
    vx_.push_back(vx);
    vy_.push_back(vy);
    vz_.push_back(vz);
    w_.push_back(weight);
  }

  /// O(1) removal: move the last particle into slot i.  Order is not
  /// preserved (irrelevant for PIC).
  void swap_remove(std::size_t i) {
    if (i >= size()) throw UsageError("ParticleBuffer: swap_remove range");
    x_[i] = x_.back();
    vx_[i] = vx_.back();
    vy_[i] = vy_.back();
    vz_[i] = vz_.back();
    w_[i] = w_.back();
    x_.pop_back();
    vx_.pop_back();
    vy_.pop_back();
    vz_.pop_back();
    w_.pop_back();
  }

  void clear() {
    x_.clear();
    vx_.clear();
    vy_.clear();
    vz_.clear();
    w_.clear();
  }

  // Coordinate arrays (SoA access for movers/deposits and for I/O, which
  // stores each component as one openPMD record component).
  std::vector<double>& x() { return x_; }
  std::vector<double>& vx() { return vx_; }
  std::vector<double>& vy() { return vy_; }
  std::vector<double>& vz() { return vz_; }
  std::vector<double>& w() { return w_; }
  const std::vector<double>& x() const { return x_; }
  const std::vector<double>& vx() const { return vx_; }
  const std::vector<double>& vy() const { return vy_; }
  const std::vector<double>& vz() const { return vz_; }
  const std::vector<double>& w() const { return w_; }

  /// Total particle weight (physical particles represented).
  double total_weight() const {
    double sum = 0.0;
    for (double w : w_) sum += w;
    return sum;
  }

private:
  std::vector<double> x_, vx_, vy_, vz_, w_;
};

}  // namespace bitio::picmc
