#include "picmc/mc.hpp"

#include <cmath>

#include "picmc/fields.hpp"

namespace bitio::picmc {

IonizationResult ionize(const Grid1D& grid,
                        std::span<const double> electron_density,
                        ParticleBuffer& neutrals, ParticleBuffer& ions,
                        ParticleBuffer& electrons,
                        const IonizationParams& params, Rng& rng) {
  IonizationResult result;
  for (std::size_t p = 0; p < neutrals.size();) {
    const double n_e = gather(grid, electron_density, neutrals.x()[p]);
    const double probability =
        1.0 - std::exp(-n_e * params.rate_coefficient * params.dt);
    if (rng.uniform() >= probability) {
      ++p;
      continue;
    }
    // Convert: the ion keeps the neutral's full kinematic state.
    const double x = neutrals.x()[p];
    const double vx = neutrals.vx()[p];
    const double vy = neutrals.vy()[p];
    const double vz = neutrals.vz()[p];
    const double w = neutrals.w()[p];
    ions.push_back(x, vx, vy, vz, w);
    // The freed electron: neutral velocity plus an isotropic thermal kick.
    const double vt = params.electron_thermal_speed;
    electrons.push_back(x, vx + vt * rng.normal(), vy + vt * rng.normal(),
                        vz + vt * rng.normal(), w);
    neutrals.swap_remove(p);  // do not advance p
    ++result.events;
    result.ionized_weight += w;
  }
  return result;
}

std::uint64_t elastic_scatter(const Grid1D& grid,
                              std::span<const double> neutral_density,
                              ParticleBuffer& electrons,
                              const ElasticParams& params, Rng& rng) {
  if (params.rate_coefficient <= 0.0) return 0;
  std::uint64_t events = 0;
  for (std::size_t p = 0; p < electrons.size(); ++p) {
    const double n_n = gather(grid, neutral_density, electrons.x()[p]);
    const double probability =
        1.0 - std::exp(-n_n * params.rate_coefficient * params.dt);
    if (rng.uniform() >= probability) continue;
    // Isotropic redirection at constant speed.
    const double vx = electrons.vx()[p];
    const double vy = electrons.vy()[p];
    const double vz = electrons.vz()[p];
    const double speed = std::sqrt(vx * vx + vy * vy + vz * vz);
    const double cos_theta = 2.0 * rng.uniform() - 1.0;
    const double sin_theta = std::sqrt(1.0 - cos_theta * cos_theta);
    const double phi = 2.0 * 3.14159265358979323846 * rng.uniform();
    electrons.vx()[p] = speed * cos_theta;
    electrons.vy()[p] = speed * sin_theta * std::cos(phi);
    electrons.vz()[p] = speed * sin_theta * std::sin(phi);
    ++events;
  }
  return events;
}

}  // namespace bitio::picmc
