#pragma once
// Binary (de)serialization of miniBP metadata: StepRecords for md.0 and
// IndexEntries for md.idx.  The format is versioned and bounds-checked so a
// truncated or corrupt container fails loudly on read (the original BIT1
// failure mode the paper reports — corrupted output files beyond 20k ranks —
// must be *detectable* here).

#include <span>

#include "bp/types.hpp"

namespace bitio::bp {

inline constexpr std::uint32_t kMdMagic = 0x4D443034;   // "MD04"
inline constexpr std::uint32_t kIdxMagic = 0x49445834;  // "IDX4"
inline constexpr std::uint32_t kIdxEntryBytes = 24;     // fixed-size records

/// Serialize one step's metadata (appended to md.0).
std::vector<std::uint8_t> encode_step(const StepRecord& record);
/// Parse one step's metadata.  Throws FormatError on corruption.
StepRecord decode_step(std::span<const std::uint8_t> data);

/// Serialize/parse the whole md.idx file (header + fixed-size entries).
std::vector<std::uint8_t> encode_index(const std::vector<IndexEntry>& index);
std::vector<IndexEntry> decode_index(std::span<const std::uint8_t> data);

}  // namespace bitio::bp
