#pragma once
// Binary (de)serialization of miniBP metadata: StepRecords for md.0 and
// IndexEntries for md.idx.  The format is versioned and bounds-checked so a
// truncated or corrupt container fails loudly on read (the original BIT1
// failure mode the paper reports — corrupted output files beyond 20k ranks —
// must be *detectable* here).
//
// Three on-disk versions coexist:
//   v4 ("MD04"/"IDX4")  the original layout, no checksums; still readable.
//   v5 ("MD05"/"IDX5")  every chunk record carries the CRC32C of its stored
//       bytes, every step-metadata block ends in its own CRC32C, and every
//       index entry repeats the CRC of the metadata block it points at.  A
//       torn or bit-flipped write anywhere in the container is therefore
//       detectable on read.
//   v6 ("MD06")  adds a per-chunk FNV-1a content hash of the raw bytes (the
//       dedup key of incremental checkpoints) and a *footer index* appended
//       to the end of md.0 at close: the complete step records followed by a
//       fixed-size trailer ("FTR6") pointing back at them.  A reader that
//       finds a valid trailer opens the container from the footer alone —
//       O(1) seeks, no md.idx/md.0 scan; a missing, torn, or corrupt footer
//       falls back to the v5 scan path (md.idx entries never point into the
//       footer region, so the scan ignores it).
// Any other magic is a wrong-version/corrupt input and raises FormatError.

#include <span>

#include "bp/types.hpp"

namespace bitio::bp {

inline constexpr std::uint32_t kMdMagic = 0x4D443034;     // "MD04" (legacy)
inline constexpr std::uint32_t kIdxMagic = 0x49445834;    // "IDX4" (legacy)
inline constexpr std::uint32_t kIdxEntryBytes = 24;       // v4 record size
inline constexpr std::uint32_t kMdMagicV5 = 0x4D443035;   // "MD05"
inline constexpr std::uint32_t kIdxMagicV5 = 0x49445835;  // "IDX5"
inline constexpr std::uint32_t kIdxEntryBytesV5 = 32;     // v5 record size
inline constexpr std::uint32_t kMdMagicV6 = 0x4D443036;   // "MD06"
inline constexpr std::uint32_t kFtrMagic = 0x46545236;    // "FTR6"
/// Fixed-size footer trailer at the very end of md.0:
///   u64 footer_offset | u64 footer_length | u32 crc32c(footer) | u32 magic
inline constexpr std::uint32_t kFtrTrailerBytes = 24;

/// Serialize one step's metadata (appended to md.0).  Writes v6: chunk CRCs
/// and content hashes plus a trailing CRC32C over the whole block.
std::vector<std::uint8_t> encode_step(const StepRecord& record);
/// Parse one step's metadata (v4, v5 or v6; v5+ blocks are CRC-verified).
/// Throws FormatError on corruption or an unknown version magic.
StepRecord decode_step(std::span<const std::uint8_t> data);

/// Serialize/parse the whole md.idx file (header + fixed-size entries).
/// encode writes v5; decode accepts v4 and v5.
std::vector<std::uint8_t> encode_index(const std::vector<IndexEntry>& index);
std::vector<IndexEntry> decode_index(std::span<const std::uint8_t> data);

/// Serialize/parse the footer index: every drained step record, in drain
/// order (repeated step ids keep their write order so "latest record wins"
/// matches the scan path).  The footer body is
///   u32 magic | u32 nsteps | { u64 length, encode_step() bytes } * nsteps
/// and is itself protected by the CRC32C in the trailer.
std::vector<std::uint8_t> encode_footer(const std::vector<StepRecord>& steps);
std::vector<StepRecord> decode_footer(std::span<const std::uint8_t> data);

}  // namespace bitio::bp
