#pragma once
// miniBP writer: an ADIOS2-BP4-style container engine over the simulated
// file system.
//
// Layout of `<path>` (a directory, like ADIOS2's <name>.bp4):
//   data.0 .. data.M-1   one subfile per aggregator
//   md.0                 step metadata records (appended per step)
//   md.idx               fixed-size step index (header count patched at close)
//   profiling.json       optional per-rank timing profile (Fig 8)
//   mmd.0                BP5 engines only (second metadata file)
//
// Write path per step (matching the paper's description of BP4):
//   * every rank's put() is deferred into a rank-local pending buffer
//     ("key operations between storeChunk() and flush() must not modify the
//     referenced data");
//   * end_step() applies the configured operator per chunk — with a codec
//     the data is compressed straight into the aggregation buffer (no
//     separate memcopy, which is why Fig 8 shows memcopy time eliminated
//     under compression; without a codec a plain memcopy is charged);
//   * ranks are mapped onto M aggregators in contiguous blocks
//     (OPENPMD_ADIOS2_BP5_NumAgg in the paper); each aggregator leader
//     appends its ranks' chunks to its subfile in one sequential write;
//   * rank 0 appends the step's metadata to md.0 and its index entry to
//     md.idx.
//
// Asynchronous drain (BP5's AsyncWrite): with EngineConfig::async_write,
// end_step() snapshots the pending chunk table into an immutable StepJob
// and returns immediately; a background worker drains jobs FIFO, issuing
// each aggregator's subfile append on that leader's overlapped drain lane
// in buffer_chunk_mb slices.  A bounded queue applies backpressure —
// begin_step() of step N + max_inflight_steps blocks until step N's drain
// has landed — and close()/wait_drains() join outstanding work.  Output is
// byte-identical to the synchronous path.
//
// Thread safety: put() may be called concurrently by SPMD rank threads;
// begin_step/end_step/close are collective-like and must be called by
// exactly one thread at a time (the openPMD layer funnels them through
// rank 0 between barriers).

#include <atomic>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <optional>
#include <thread>

#include "bp/format.hpp"
#include "bp/types.hpp"
#include "compress/buffer_pool.hpp"
#include "compress/codec.hpp"
#include "fsim/posix_fs.hpp"
#include "topo/topology.hpp"
#include "util/json.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace bitio::bp {

enum class EngineType { bp4, bp5, stream };

inline const char* engine_name(EngineType t) {
  switch (t) {
    case EngineType::bp4: return "bp4";
    case EngineType::bp5: return "bp5";
    case EngineType::stream: return "stream";
  }
  return "?";
}

/// Slow-reader backpressure policy of the stream engine's bounded channel
/// (see src/bp/stream.hpp).  Parsed from the `stream_policy` config string:
/// "block" | "drop_oldest" | "disconnect" ("drop-oldest" is accepted too).
enum class StreamPolicy { block, drop_oldest, disconnect };

StreamPolicy stream_policy_of(const std::string& name);
const char* stream_policy_name(StreamPolicy policy);

struct EngineConfig {
  EngineType engine = EngineType::bp4;
  /// Number of subfiles; 0 means one aggregator per node (ADIOS2's default
  /// of node-level aggregation).
  int num_aggregators = 0;
  int ranks_per_node = 128;
  std::string codec = "none";      // operator applied to every chunk
  std::size_t codec_typesize = 4;
  /// Block-parallel compression (the operator's `threads`/`block_kb`
  /// parameters): with threads > 1 the codec is wrapped in a
  /// cz::ParallelCodec that splits each chunk into compress_block_kb-KiB
  /// blocks compressed concurrently, and the CPU charge uses
  /// fsim::parallel_cpu_seconds instead of the serial figure.  Frames stay
  /// byte-identical for any thread count.
  int compress_threads = 1;
  std::size_t compress_block_kb = 1024;
  bool profiling = false;          // emit profiling.json
  double mem_bandwidth_bps = 8e9;  // modelled memcopy speed
  /// Stored/raw size ratio applied to put_synthetic() chunks when a codec
  /// is configured (measured once on representative data by the scale
  /// harness; real put() chunks always run the real codec).
  double synthetic_codec_ratio = 1.0;
  /// BP5-style AsyncWrite: end_step() snapshots the pending chunk table
  /// into an immutable step job and returns immediately; a background
  /// worker drains jobs through per-aggregator lanes that overlap with the
  /// callers' compute.  Off by default (BP4 semantics: fully synchronous
  /// end_step, byte-identical output either way).
  bool async_write = false;
  /// Drain append granularity in MiB (BP5's BufferChunkSize): async subfile
  /// appends are issued in slices of at most this size.
  std::size_t buffer_chunk_mb = 16;
  /// io_uring-style queue-pair submission on the drain path: with a depth
  /// > 0 each aggregator's subfile appends and rank 0's md.0/md.idx appends
  /// go through an fsim::SubmissionQueue of that ring size — one doorbell
  /// per submit, OpKind::batch_write trace records — instead of per-op
  /// pwrites.  The per-step metadata records in particular stop paying the
  /// synchronous small-record round trip.  Container bytes are identical
  /// either way; only the trace shape (op kinds, op_count, tags) changes.
  /// 0 selects the per-op posix path.
  int io_batch_depth = 0;
  /// With batching, merge adjacent contiguous same-file sqes into single
  /// vectored records (fewer, larger device ops; Darshan reports the merged
  /// bytes as coalesced_bytes).  Inert when io_batch_depth == 0.
  bool coalesce_writes = false;
  /// Backpressure bound on outstanding drain jobs: begin_step() of step
  /// N + max_inflight_steps blocks until step N's drain has landed.
  int max_inflight_steps = 2;
  /// Drain-lane watchdog (async only): if an in-flight drain job stops
  /// heartbeating for this long (wall-clock), the wedged simulated I/O is
  /// cancelled (SharedFs::cancel_stalls) and the job retried from a rolled-
  /// back state.  0 disables the watchdog.
  int drain_timeout_ms = 0;
  /// Bounded retries of a cancelled/failed drain job before the step is
  /// abandoned with a TimeoutError.  The queue is then poisoned (later jobs
  /// are skipped) so end_step()/close() can never hang on a wedged lane.
  int max_drain_retries = 2;
  /// Stream engine only: bound on buffered published steps in the in-memory
  /// channel (the miniSST window) and the slow-reader policy applied when a
  /// publish finds the channel full.  Ignored by the file engines.
  int stream_max_steps = 4;
  std::string stream_policy = "block";
  /// Topology-modeled gather path (src/topo).  `topology` names a
  /// topo::Cluster preset; `aggregation` selects how marshalled bytes reach
  /// the aggregator leaders on it ("flat" = every rank ships straight to
  /// its aggregator over the NICs; "two_level" = rank -> node-leader over
  /// intra-node shared memory, node-leader -> aggregator over the NICs).
  /// With the "flat" topology every rank sits on one modelled node, no
  /// gather op is ever recorded, and the trace — hence the container bytes
  /// and every replay number — is identical to the pre-topology writer.
  /// numa_per_node / nics_per_node override the preset hierarchy when > 0.
  /// The topology-registry lint rule keeps the mode names in lockstep with
  /// core::kBit1IoAggregationModes.
  std::string aggregation = "flat";
  std::string topology = "flat";
  int numa_per_node = 0;
  int nics_per_node = 0;

  /// Parse the "adios2" section of an openPMD-style JSON/TOML config, e.g.
  /// {engine:{type:"bp4", parameters:{NumAggregators:400, Profile:"On"}},
  ///  dataset:{operators:[{type:"blosc"}]}}.
  static EngineConfig from_json(const Json& adios2);
};

/// Drain-watchdog counters (all zero when the watchdog is disabled).
/// Namespace-scoped so the abstract Engine can report them for any engine;
/// Writer::WatchdogStats remains a valid spelling.
struct WatchdogStats {
  std::uint64_t timeouts = 0;         // stalled-lane cancellations issued
  std::uint64_t retries = 0;          // drain attempts retried
  std::uint64_t steps_abandoned = 0;  // jobs given up after max retries
};

class Writer {
public:
  /// Construction path used by the engine factory and Writer::open.  The
  /// once-deprecated raw `Writer(fs, path, config, nranks)` constructor is
  /// gone: application call sites select engines by name through
  /// bp::make_engine (src/bp/engine.hpp) so they stay engine-agnostic
  /// (README "Engines" has the migration note).
  Writer(ForEngineFactory, fsim::SharedFs& fs, std::string path,
         EngineConfig config, int nranks);
  ~Writer();

  /// Preferred named constructor for code that needs the concrete file
  /// writer (format tests, benches); creates the container directory and
  /// all its files.  `nranks` is the size of the writing communicator.
  /// Writer is not movable, but C++17 guaranteed elision makes this
  /// returnable, mirroring Reader::open.
  static Writer open(fsim::SharedFs& fs, std::string path,
                     EngineConfig config, int nranks) {
    return Writer(ForEngineFactory{}, fs, std::move(path), std::move(config),
                  nranks);
  }

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  int aggregator_count() const { return num_aggregators_; }
  int aggregator_of(int rank) const;
  const std::string& path() const { return path_; }

  /// Opens a step.  With async_write, applies backpressure: blocks until
  /// fewer than max_inflight_steps drain jobs are outstanding.
  void begin_step(std::uint64_t step) EXCLUDES(mutex_, drain_mutex_);

  /// Deferred put of one chunk of an n-dimensional variable.  All ranks
  /// putting the same variable in a step must agree on shape and dtype;
  /// the chunk's placement and byte length were validated at ChunkView
  /// construction.
  void put(int rank, const std::string& name, const Dims& shape,
           const ChunkView& chunk) EXCLUDES(mutex_);

  template <typename T>
  void put(int rank, const std::string& name, const Dims& shape,
           const Dims& offset, const Dims& count, std::span<const T> data) {
    put(rank, name, shape, ChunkView::of<T>(data, offset, count));
  }

  /// Zero-copy put: the chunk's bytes are borrowed, not staged.  The span
  /// must stay valid and unmodified until the step's drain completes —
  /// end_step() on the synchronous path, wait_drains()/close() with
  /// async_write — mirroring ADIOS2's deferred Put contract.  Skips put()'s
  /// staging memcpy entirely: marshalling reads the caller's SoA particle
  /// arrays exactly once (a single pass through the SIMD marshal into the
  /// pooled aggregation buffer, or compress_append under an operator), so
  /// bytes flow source arrays -> aggregation buffer -> device with no
  /// intermediate copy.  Output is byte-identical to put() of the same
  /// bytes; only the Fig 8 memcopy accounting changes.
  void put_borrowed(int rank, const std::string& name, const Dims& shape,
                    const ChunkView& chunk) EXCLUDES(mutex_);

  /// Size-only put for modelled large-scale runs: the chunk participates in
  /// aggregation, metadata, and timing exactly like a real one, but no
  /// payload bytes are materialized (subfile writes go through the
  /// simulated-size path).  A step must be all-real or all-synthetic.
  void put_synthetic(int rank, const std::string& name, Datatype dtype,
                     const Dims& shape, const Dims& offset,
                     const Dims& count) EXCLUDES(mutex_);

  /// Step-scoped attribute (recorded in the step's metadata).
  void add_attribute(const std::string& name, AttrValue value)
      EXCLUDES(mutex_);

  /// Aggregate, compress, write data subfiles, append metadata.  With
  /// async_write the pending chunk table is snapshotted into an immutable
  /// step job, handed to the drain worker, and the call returns
  /// immediately; otherwise the drain runs on the caller.
  void end_step() EXCLUDES(mutex_, drain_mutex_);

  /// Join every outstanding drain job (no-op without async_write).
  /// Rethrows the first drain error, if any.  Required before reading the
  /// container back without closing it.
  void wait_drains() EXCLUDES(drain_mutex_);

  /// Highest number of simultaneously outstanding drain jobs observed;
  /// bounded by config.max_inflight_steps (the backpressure guarantee).
  int peak_inflight() const EXCLUDES(drain_mutex_);

  /// Patch the md.idx header with the current step count so a reader can
  /// open the container mid-run (close() writes the same bytes again, so
  /// the final container is unchanged).  Call wait_drains() first; no-op
  /// after close().  The factory's file engines use this for
  /// Engine::attach().
  void publish_index() EXCLUDES(mutex_);

  /// Join outstanding drains, patch the md.idx header, emit
  /// profiling.json / mmd.0, close all files.
  void close() EXCLUDES(mutex_, drain_mutex_);

  std::uint64_t steps_written() const EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return steps_written_;
  }

  /// Buffer-pool counters for the marshalling hot path: staged put()
  /// payloads and per-aggregator aggregation buffers all cycle through the
  /// writer's private pool, so after a one-step warmup every steady-state
  /// acquire is a hit (no per-chunk heap allocation — asserted >= 99% in
  /// tests).
  cz::BufferPool::Stats pool_stats() const { return buffer_pool_.stats(); }

  /// Zero the pool counters (keeps the warm freelists) so steady-state hit
  /// rate can be measured after a warmup step.
  void reset_pool_stats() { buffer_pool_.reset_stats(); }

  /// Drain-watchdog counters (all zero when the watchdog is disabled).
  using WatchdogStats = bitio::bp::WatchdogStats;
  WatchdogStats watchdog_stats() const;

private:
  struct PendingChunk {
    std::string var;
    Datatype dtype;
    Dims shape, offset, count;
    std::vector<std::uint8_t> data;  // empty for synthetic/borrowed chunks
    // Caller-owned bytes of a put_borrowed() chunk (valid until the step's
    // drain completes, per the deferred-Put contract).
    std::span<const std::uint8_t> borrowed;
    bool synthetic = false;

    bool is_borrowed() const { return borrowed.data() != nullptr; }
    /// The chunk's payload wherever it lives (staged or borrowed).
    std::span<const std::uint8_t> payload() const {
      return is_borrowed() ? borrowed
                           : std::span<const std::uint8_t>(data);
    }
  };

  /// Immutable snapshot of one step, handed to the drain worker.
  struct StepJob {
    std::uint64_t step = 0;
    int kind = 0;  // see step_kind_
    std::vector<std::pair<std::string, AttrValue>> attributes;
    std::vector<std::vector<PendingChunk>> chunks;  // per rank
  };

  // Drain-lane ids (TraceOp::lane).  Lane 0 is the caller's critical path;
  // with async_write each aggregator leader drains its subfile on
  // kDataLane (leaders are distinct clients, so this is one logical lane
  // per aggregator) and rank 0 appends metadata on kMetaLane so it
  // overlaps with its own subfile drain.
  static constexpr std::uint32_t kDataLane = 1;
  static constexpr std::uint32_t kMetaLane = 2;

  /// Rollback point for retrying a failed drain attempt: everything
  /// drain_step() mutates.  A retry re-issues the same pwrites at the same
  /// offsets, so a partially landed attempt is simply overwritten.
  struct DrainSnapshot {
    std::vector<std::uint64_t> data_offsets;
    std::uint64_t md_offset = 0;
    std::size_t index_size = 0;
    std::size_t footer_steps = 0;
    double memcopy_us = 0.0, compress_us = 0.0, drain_us = 0.0, crc_us = 0.0;
    std::uint64_t raw_bytes = 0, stored_bytes = 0;
    std::uint64_t zero_copy_chunks = 0;
  };

  void validate_put(int rank, const std::string& name, Datatype dtype,
                    const Dims& shape, const Dims& offset, const Dims& count)
      REQUIRES(mutex_);
  /// Resolve the configured topology preset (with the engine's
  /// ranks_per_node and any numa/nic overrides applied) into the writer's
  /// rank placement.  Returns a trivial single-node mapper for inputs the
  /// constructor body is about to reject anyway.
  static topo::Mapper build_mapper(const EngineConfig& config, int nranks);
  static void compute_stats(const PendingChunk& chunk, ChunkRecord& meta);
  int leader_of(int aggregator) const;
  void drain_step(const StepJob& job);
  void drain_job_with_retries(const StepJob& job) EXCLUDES(drain_mutex_);
  /// Return a drained job's chunk buffers to the pool (after the last
  /// retry — a retried attempt re-reads the same buffers).
  void recycle_job(StepJob& job);
  /// CPU seconds charged for compressing `raw_bytes` (parallel wall time
  /// when compress_threads > 1, serial otherwise).
  double compress_cpu_seconds(std::uint64_t raw_bytes) const;
  DrainSnapshot snapshot_drain_state() const;
  void restore_drain_state(const DrainSnapshot& snap);
  void drain_loop() EXCLUDES(drain_mutex_);
  void stop_drain_thread() EXCLUDES(drain_mutex_);
  void watchdog_loop() EXCLUDES(watchdog_mutex_);
  void stop_watchdog_thread() EXCLUDES(watchdog_mutex_);
  void touch_heartbeat() {
    heartbeat_.fetch_add(1, std::memory_order_relaxed);
  }

  fsim::SharedFs& fs_;
  std::string path_;
  EngineConfig config_;
  int nranks_;
  // Rank placement on the modelled cluster (the config.topology preset).
  // On the flat topology every rank shares one node and drain_step records
  // no gather ops at all — the trace stays byte-identical to the
  // pre-topology writer.
  const topo::Mapper mapper_;
  int num_aggregators_;
  // Recycles every hot-path buffer (declared before codec_: a ParallelCodec
  // wrapper keeps a pointer to it).  Thread-safe; shared by rank threads in
  // put() and whichever thread drains.
  cz::BufferPool buffer_pool_;
  std::unique_ptr<cz::Codec> codec_;  // null when config_.codec == "none"

  // Step-state lock.  Taken before drain_mutex_ (begin_step holds it while
  // waiting out the backpressure bound); never the other way around.
  mutable util::Mutex mutex_ ACQUIRED_BEFORE(drain_mutex_);
  bool step_open_ GUARDED_BY(mutex_) = false;
  bool closed_ GUARDED_BY(mutex_) = false;
  // 0 = no puts yet, 1 = real payloads, 2 = synthetic
  int step_kind_ GUARDED_BY(mutex_) = 0;
  std::uint64_t current_step_ GUARDED_BY(mutex_) = 0;
  std::uint64_t steps_written_ GUARDED_BY(mutex_) = 0;
  // Per-rank pending chunk tables of the open step.
  std::vector<std::vector<PendingChunk>> pending_ GUARDED_BY(mutex_);
  std::vector<std::pair<std::string, AttrValue>> attributes_
      GUARDED_BY(mutex_);
  // Shape/dtype seen per variable within the open step (put validation).
  std::map<std::string, std::pair<Datatype, Dims>> step_vars_
      GUARDED_BY(mutex_);

  // Open descriptors, one per subfile plus metadata files (rank-0 client).
  // NOT lock-protected: the descriptor/offset tables, the step index, and
  // the profiling accumulators below are owned by whichever thread is
  // draining — the caller on the synchronous path, the drain worker between
  // submit and join on the async path — and handed back at
  // wait_drains()/close() via the thread join.  The annotations cover the
  // genuinely mutex-protected state only.
  std::vector<int> data_fds_;
  std::vector<std::uint64_t> data_offsets_;
  int md_fd_ = -1;
  std::uint64_t md_offset_ = 0;
  int idx_fd_ = -1;
  std::vector<IndexEntry> index_;
  // Every drained step record, retained for the md.0 footer index close()
  // appends (format v6 random-access open).  Drain-side state like index_.
  std::vector<StepRecord> footer_steps_;

  // profiling.json accumulators (microseconds, like ADIOS2's profiler).
  // With async_write, marshalling/compression time lands in drain_us_total_
  // (the overlapped lane) instead of memcopy/compress (the critical path).
  double memcopy_us_total_ = 0.0;
  double compress_us_total_ = 0.0;
  double drain_us_total_ = 0.0;
  double crc_us_total_ = 0.0;  // per-chunk CRC32C time (both paths)
  std::uint64_t raw_bytes_total_ = 0;
  std::uint64_t stored_bytes_total_ = 0;
  // Zero-copy marshal accounting (the Fig 8 extension): how many chunks
  // paid the put() staging copy vs rode the borrowed-span path.  Emitted in
  // profiling.json only when a borrowed put occurred, so staged-only
  // containers keep the legacy profile byte-for-byte.  stage_copies is
  // put-side (guarded by mutex_); zero_copy_chunks is drain-side state.
  std::uint64_t stage_copies_total_ GUARDED_BY(mutex_) = 0;
  std::uint64_t zero_copy_chunks_total_ = 0;

  // Async drain state.  The worker owns the file-offset tables and
  // profiling accumulators between submit and join; callers only touch
  // them again after wait_drains()/close().
  std::thread drain_thread_;
  mutable util::Mutex drain_mutex_;
  util::CondVar drain_cv_;       // worker wake-ups
  util::CondVar drain_done_cv_;  // backpressure + joins
  std::deque<StepJob> drain_queue_ GUARDED_BY(drain_mutex_);
  // Queued + actively draining jobs.
  int inflight_ GUARDED_BY(drain_mutex_) = 0;
  int peak_inflight_ GUARDED_BY(drain_mutex_) = 0;
  bool drain_stop_ GUARDED_BY(drain_mutex_) = false;
  std::exception_ptr drain_error_ GUARDED_BY(drain_mutex_);

  // Drain-lane watchdog.  The worker bumps heartbeat_ at every unit of
  // progress; the watchdog thread cancels the fs's stalled writes when an
  // active job's heartbeat freezes for longer than drain_timeout_ms.
  std::thread watchdog_thread_;
  util::Mutex watchdog_mutex_;
  util::CondVar watchdog_cv_;
  bool watchdog_stop_ GUARDED_BY(watchdog_mutex_) = false;
  std::atomic<std::uint64_t> heartbeat_{0};
  std::atomic<bool> drain_active_{false};
  std::atomic<std::uint64_t> watchdog_timeouts_{0};
  std::atomic<std::uint64_t> drain_retries_{0};
  std::atomic<std::uint64_t> steps_abandoned_{0};
};

}  // namespace bitio::bp
