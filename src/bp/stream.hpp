#pragma once
// miniSST: the in-memory streaming engine behind bp::make_engine("stream").
//
// ADIOS2's SST engine moves steps from a writer to concurrently attached
// readers without touching the file system; the queue between them is
// bounded and a QueueFullPolicy decides what happens when readers fall
// behind.  This is that shape over the simulated cluster: StreamEngine
// implements the bp::Engine write surface, compresses and CRC-stamps each
// chunk exactly like the file engines, and at end_step() publishes the
// completed, CRC-verified step into a bounded StreamChannel.  Consumers
// attach/detach mid-run; each one holds a cursor into the shared window and
// receives every step published after its attach (never a partial step).
//
// Backpressure (EngineConfig::stream_max_steps / stream_policy): when a
// publish finds the window full and the oldest buffered step is still
// unread by some attached consumer,
//   block        the producer waits until the slowest consumer advances;
//   drop_oldest  the oldest step is evicted and lagging consumers' cursors
//                jump forward, counting the miss in steps_dropped();
//   disconnect   the oldest step is evicted and every consumer still
//                needing it is cut off (disconnected() turns true, its
//                next_step() returns nullopt).
// A step already read by every attached consumer is always evicted freely —
// with zero consumers the producer never blocks.
//
// Steps are published as shared_ptr<const StreamStep>, so a consumer (or
// the query service's cache, src/bp/query.hpp) can keep a step alive after
// the window evicted it and after the engine itself is destroyed.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bp/engine.hpp"
#include "bp/types.hpp"
#include "bp/writer.hpp"
#include "compress/buffer_pool.hpp"
#include "compress/codec.hpp"
#include "fsim/posix_fs.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace bitio::bp {

/// One published step: the metadata record (same StepRecord the file
/// engines persist to md.0) plus the stored bytes of every chunk —
/// compressed if an operator is configured, CRC32C-stamped either way.
/// payload[v][c] holds chunk c of record.variables[v]; synthetic chunks
/// have an empty payload and decode to zeroes.
struct StreamStep {
  std::uint64_t seq = 0;  // channel sequence number, monotonic from 0
  StepRecord record;
  std::vector<std::vector<std::vector<std::uint8_t>>> payload;
};

/// Decode one variable of a published step into its full global array:
/// per-chunk CRC verification, frame decompression, and the same n-d
/// scatter bp::Reader performs.  Throws FormatError on CRC mismatch or a
/// payload/extent disagreement; UsageError if the variable is absent.
std::vector<std::uint8_t> decode_stream_variable(const StreamStep& step,
                                                 const std::string& name);

/// Bounded single-producer / multi-consumer step window.  All methods are
/// thread-safe; next() blocks until a step is available for that consumer,
/// the stream closes, or the consumer is detached/disconnected.
class StreamChannel {
 public:
  using ConsumerId = std::uint64_t;

  StreamChannel(int max_steps, StreamPolicy policy);

  /// Subscribe a consumer starting at the next published step (steps
  /// already in the window predate the attach and are not replayed).
  ConsumerId attach() EXCLUDES(mutex_);

  /// Unsubscribe (idempotent).  The producer stops waiting for this
  /// consumer; a concurrent next() on it returns nullptr.
  void detach(ConsumerId id) EXCLUDES(mutex_);

  /// Publish the next step (producer side).  Applies the slow-reader
  /// policy when the window is full; with `block` this waits until the
  /// oldest still-needed step has been read by every attached consumer.
  void publish(std::shared_ptr<const StreamStep> step) EXCLUDES(mutex_);

  /// End of stream: consumers drain what is buffered, then next() returns
  /// nullptr.  Publishing after close is a UsageError.
  void close() EXCLUDES(mutex_);

  /// Next step for `id`, blocking.  nullptr at end of stream, after
  /// detach(id), or once the disconnect policy cut this consumer off.
  std::shared_ptr<const StreamStep> next(ConsumerId id) EXCLUDES(mutex_);

  std::uint64_t dropped(ConsumerId id) const EXCLUDES(mutex_);
  bool disconnected(ConsumerId id) const EXCLUDES(mutex_);

  // Window diagnostics.
  std::uint64_t steps_published() const EXCLUDES(mutex_);
  /// Steps evicted before some attached consumer could read them (the sum
  /// of all consumers' losses is >= this; 0 under the block policy).
  std::uint64_t steps_lost() const EXCLUDES(mutex_);
  int peak_depth() const EXCLUDES(mutex_);
  std::size_t consumers() const EXCLUDES(mutex_);

 private:
  struct Cursor {
    std::uint64_t next_seq = 0;
    std::uint64_t dropped = 0;
    bool disconnected = false;
    bool detached = false;
  };

  /// Smallest next_seq over live (attached, connected) cursors, or nullopt
  /// when no consumer is live.
  std::optional<std::uint64_t> oldest_needed() const REQUIRES(mutex_);
  void evict_front() REQUIRES(mutex_);

  const std::size_t max_steps_;
  const StreamPolicy policy_;

  mutable util::Mutex mutex_;
  util::CondVar data_cv_;   // consumers: a step landed / stream closed
  util::CondVar space_cv_;  // producer: a slow consumer advanced
  std::deque<std::shared_ptr<const StreamStep>> window_ GUARDED_BY(mutex_);
  std::uint64_t base_seq_ GUARDED_BY(mutex_) = 0;  // seq of window_.front()
  std::uint64_t next_seq_ GUARDED_BY(mutex_) = 0;  // seq of the next publish
  std::map<ConsumerId, Cursor> cursors_ GUARDED_BY(mutex_);
  ConsumerId next_id_ GUARDED_BY(mutex_) = 0;
  bool closed_ GUARDED_BY(mutex_) = false;
  std::uint64_t published_ GUARDED_BY(mutex_) = 0;
  std::uint64_t lost_ GUARDED_BY(mutex_) = 0;
  int peak_depth_ GUARDED_BY(mutex_) = 0;
};

class StreamConsumer;

/// The `stream` engine.  Same step/put surface and validation as
/// bp::Writer, but end_step() publishes into the channel instead of
/// draining to subfiles.  `path` is kept as a label only — nothing is
/// written to the file system.  put() may be called concurrently by rank
/// threads; begin_step/end_step/close are single-threaded, like Writer.
class StreamEngine final : public Engine {
 public:
  StreamEngine(fsim::SharedFs& fs, std::string path, EngineConfig config,
               int nranks);
  ~StreamEngine() override;

  std::string engine_name() const override { return "stream"; }
  const std::string& path() const override { return path_; }

  void begin_step(std::uint64_t step) override EXCLUDES(mutex_);
  void put(int rank, const std::string& name, const Dims& shape,
           const ChunkView& chunk) override EXCLUDES(mutex_);
  void put_synthetic(int rank, const std::string& name, Datatype dtype,
                     const Dims& shape, const Dims& offset,
                     const Dims& count) override EXCLUDES(mutex_);
  void add_attribute(const std::string& name, AttrValue value) override
      EXCLUDES(mutex_);
  void end_step() override EXCLUDES(mutex_);
  void flush() override {}  // publishing completes inside end_step
  void close() override EXCLUDES(mutex_);

  std::uint64_t steps_written() const override EXCLUDES(mutex_);
  /// Peak buffered steps in the channel window (bounded by
  /// config.stream_max_steps — the backpressure guarantee).
  int peak_inflight() const override;
  cz::BufferPool::Stats pool_stats() const override {
    return buffer_pool_.stats();
  }
  void reset_pool_stats() override { buffer_pool_.reset_stats(); }

  std::unique_ptr<EngineReader> attach(fsim::ClientId client) override;

  /// Typed attach for in-situ services that want the raw published steps
  /// (shared_ptr ownership, compressed payloads) instead of the decoded
  /// EngineReader view — see bp::QueryService.
  std::unique_ptr<StreamConsumer> attach_stream(fsim::ClientId client);

  /// The shared channel (outlives the engine via shared_ptr; consumers
  /// keep it alive).
  const StreamChannel& channel() const { return *channel_; }

 private:
  struct PendingVar {
    VarRecord record;
    std::vector<std::vector<std::uint8_t>> payload;
  };

  void validate_put(int rank, const std::string& name, Datatype dtype,
                    const Dims& shape, const Dims& offset, const Dims& count)
      REQUIRES(mutex_);

  fsim::SharedFs& fs_;
  std::string path_;
  EngineConfig config_;
  int nranks_;
  StreamPolicy policy_;
  cz::BufferPool buffer_pool_;
  std::unique_ptr<cz::Codec> codec_;  // null when config_.codec == "none"
  std::shared_ptr<StreamChannel> channel_;

  mutable util::Mutex mutex_;
  bool step_open_ GUARDED_BY(mutex_) = false;
  bool closed_ GUARDED_BY(mutex_) = false;
  int step_kind_ GUARDED_BY(mutex_) = 0;  // 0 none, 1 real, 2 synthetic
  std::uint64_t current_step_ GUARDED_BY(mutex_) = 0;
  std::uint64_t steps_written_ GUARDED_BY(mutex_) = 0;
  std::vector<PendingVar> pending_ GUARDED_BY(mutex_);
  std::vector<std::pair<std::string, AttrValue>> attributes_
      GUARDED_BY(mutex_);
};

/// Read-side session over a live stream.  Owns a channel cursor; also
/// usable through the EngineReader interface.  next_raw() exposes the
/// shared published step for zero-copy fan-out services.
class StreamConsumer final : public EngineReader {
 public:
  /// `fs` must outlive the consumer (decoding charges CPU to `client`,
  /// like bp::Reader charges its reads).
  StreamConsumer(std::shared_ptr<StreamChannel> channel, fsim::SharedFs& fs,
                 fsim::ClientId client);
  ~StreamConsumer() override;

  std::optional<std::uint64_t> next_step() override;
  std::uint64_t current_step() const override;
  std::vector<std::string> variables() const override;
  const VarRecord* find_variable(const std::string& name) const override;
  std::vector<std::uint8_t> get(const std::string& name) override;
  std::optional<AttrValue> attribute(const std::string& name) const override;

  std::uint64_t steps_dropped() const override;
  bool disconnected() const override;
  void detach() override;

  /// Advance and return the raw published step (compressed payloads,
  /// shared ownership); nullptr at end of stream.
  std::shared_ptr<const StreamStep> next_raw();
  /// The raw step the cursor is currently on (nullptr before the first
  /// next_step/next_raw).
  std::shared_ptr<const StreamStep> current_raw() const { return step_; }

 private:
  std::shared_ptr<StreamChannel> channel_;
  StreamChannel::ConsumerId id_;
  fsim::SharedFs& fs_;
  fsim::ClientId client_;
  std::shared_ptr<const StreamStep> step_;
  bool detached_ = false;
};

}  // namespace bitio::bp
