#include "bp/format.hpp"

#include "util/binio.hpp"

namespace bitio::bp {

namespace {

void encode_attr(BinWriter& writer, const std::string& name,
                 const AttrValue& value) {
  writer.str(name);
  writer.u8(std::uint8_t(value.index()));
  if (const auto* s = std::get_if<std::string>(&value)) {
    writer.str(*s);
  } else if (const auto* d = std::get_if<double>(&value)) {
    writer.f64(*d);
  } else {
    writer.u64(std::get<std::uint64_t>(value));
  }
}

std::pair<std::string, AttrValue> decode_attr(BinReader& reader) {
  std::string name = reader.str();
  const std::uint8_t kind = reader.u8();
  switch (kind) {
    case 0: return {std::move(name), AttrValue(reader.str())};
    case 1: return {std::move(name), AttrValue(reader.f64())};
    case 2: return {std::move(name), AttrValue(reader.u64())};
    default: throw FormatError("bp: unknown attribute kind");
  }
}

}  // namespace

std::vector<std::uint8_t> encode_step(const StepRecord& record) {
  BinWriter writer;
  writer.u32(kMdMagic);
  writer.u64(record.step);
  writer.u32(std::uint32_t(record.variables.size()));
  for (const auto& var : record.variables) {
    writer.str(var.name);
    writer.u8(std::uint8_t(var.dtype));
    writer.dims(var.shape);
    writer.u32(std::uint32_t(var.chunks.size()));
    for (const auto& chunk : var.chunks) {
      writer.dims(chunk.offset);
      writer.dims(chunk.count);
      writer.u32(chunk.writer_rank);
      writer.u32(chunk.subfile);
      writer.u64(chunk.file_offset);
      writer.u64(chunk.stored_bytes);
      writer.u64(chunk.raw_bytes);
      writer.str(chunk.operator_name);
      writer.f64(chunk.stat_min);
      writer.f64(chunk.stat_max);
    }
  }
  writer.u32(std::uint32_t(record.attributes.size()));
  for (const auto& [name, value] : record.attributes)
    encode_attr(writer, name, value);
  return writer.take();
}

StepRecord decode_step(std::span<const std::uint8_t> data) {
  BinReader reader(data);
  if (reader.u32() != kMdMagic)
    throw FormatError("bp: bad step metadata magic");
  StepRecord record;
  record.step = reader.u64();
  const std::uint32_t nvars = reader.u32();
  record.variables.reserve(nvars);
  for (std::uint32_t v = 0; v < nvars; ++v) {
    VarRecord var;
    var.name = reader.str();
    const std::uint8_t dtype = reader.u8();
    if (dtype > std::uint8_t(Datatype::float64))
      throw FormatError("bp: bad datatype tag");
    var.dtype = Datatype(dtype);
    var.shape = reader.dims();
    const std::uint32_t nchunks = reader.u32();
    var.chunks.reserve(nchunks);
    for (std::uint32_t c = 0; c < nchunks; ++c) {
      ChunkRecord chunk;
      chunk.offset = reader.dims();
      chunk.count = reader.dims();
      chunk.writer_rank = reader.u32();
      chunk.subfile = reader.u32();
      chunk.file_offset = reader.u64();
      chunk.stored_bytes = reader.u64();
      chunk.raw_bytes = reader.u64();
      chunk.operator_name = reader.str();
      chunk.stat_min = reader.f64();
      chunk.stat_max = reader.f64();
      var.chunks.push_back(std::move(chunk));
    }
    record.variables.push_back(std::move(var));
  }
  const std::uint32_t nattrs = reader.u32();
  for (std::uint32_t a = 0; a < nattrs; ++a)
    record.attributes.push_back(decode_attr(reader));
  if (!reader.done()) throw FormatError("bp: trailing bytes in step metadata");
  return record;
}

std::vector<std::uint8_t> encode_index(const std::vector<IndexEntry>& index) {
  BinWriter writer;
  writer.u32(kIdxMagic);
  writer.u32(std::uint32_t(index.size()));
  for (const auto& e : index) {
    writer.u64(e.step);
    writer.u64(e.md_offset);
    writer.u64(e.md_length);
  }
  return writer.take();
}

std::vector<IndexEntry> decode_index(std::span<const std::uint8_t> data) {
  BinReader reader(data);
  if (reader.u32() != kIdxMagic) throw FormatError("bp: bad md.idx magic");
  const std::uint32_t n = reader.u32();
  if (reader.remaining() != std::size_t(n) * kIdxEntryBytes)
    throw FormatError("bp: md.idx size mismatch");
  std::vector<IndexEntry> index;
  index.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    IndexEntry e;
    e.step = reader.u64();
    e.md_offset = reader.u64();
    e.md_length = reader.u64();
    index.push_back(e);
  }
  return index;
}

}  // namespace bitio::bp
