#include "bp/format.hpp"

#include "util/binio.hpp"
#include "util/crc32c.hpp"

namespace bitio::bp {

namespace {

void encode_attr(BinWriter& writer, const std::string& name,
                 const AttrValue& value) {
  writer.str(name);
  writer.u8(std::uint8_t(value.index()));
  if (const auto* s = std::get_if<std::string>(&value)) {
    writer.str(*s);
  } else if (const auto* d = std::get_if<double>(&value)) {
    writer.f64(*d);
  } else {
    writer.u64(std::get<std::uint64_t>(value));
  }
}

std::pair<std::string, AttrValue> decode_attr(BinReader& reader) {
  std::string name = reader.str();
  const std::uint8_t kind = reader.u8();
  switch (kind) {
    case 0: return {std::move(name), AttrValue(reader.str())};
    case 1: return {std::move(name), AttrValue(reader.f64())};
    case 2: return {std::move(name), AttrValue(reader.u64())};
    default: throw FormatError("bp: unknown attribute kind");
  }
}

}  // namespace

std::vector<std::uint8_t> encode_step(const StepRecord& record) {
  BinWriter writer;
  writer.u32(kMdMagicV6);
  writer.u64(record.step);
  writer.u32(std::uint32_t(record.variables.size()));
  for (const auto& var : record.variables) {
    writer.str(var.name);
    writer.u8(std::uint8_t(var.dtype));
    writer.dims(var.shape);
    writer.u32(std::uint32_t(var.chunks.size()));
    for (const auto& chunk : var.chunks) {
      writer.dims(chunk.offset);
      writer.dims(chunk.count);
      writer.u32(chunk.writer_rank);
      writer.u32(chunk.subfile);
      writer.u64(chunk.file_offset);
      writer.u64(chunk.stored_bytes);
      writer.u64(chunk.raw_bytes);
      writer.str(chunk.operator_name);
      writer.f64(chunk.stat_min);
      writer.f64(chunk.stat_max);
      writer.u8(chunk.has_crc ? 1 : 0);
      writer.u32(chunk.crc32c);
      writer.u8(chunk.has_content_hash ? 1 : 0);
      writer.u64(chunk.content_hash);
    }
  }
  writer.u32(std::uint32_t(record.attributes.size()));
  for (const auto& [name, value] : record.attributes)
    encode_attr(writer, name, value);
  // The metadata block protects itself: trailing CRC32C over everything
  // above, verified before any field is trusted on decode.
  writer.u32(crc32c(writer.buffer()));
  return writer.take();
}

StepRecord decode_step(std::span<const std::uint8_t> data) {
  if (data.size() < 4) throw FormatError("bp: truncated step metadata");
  const std::uint32_t magic = BinReader(data).u32();
  if (magic != kMdMagic && magic != kMdMagicV5 && magic != kMdMagicV6)
    throw FormatError("bp: bad step metadata magic (unknown format version)");
  const bool v6 = magic == kMdMagicV6;
  const bool v5 = magic == kMdMagicV5 || v6;

  std::span<const std::uint8_t> body = data;
  if (v5) {
    if (data.size() < 8) throw FormatError("bp: truncated step metadata");
    const std::uint32_t stored = BinReader(data.last(4)).u32();
    if (crc32c(data.first(data.size() - 4)) != stored)
      throw FormatError("bp: step metadata CRC mismatch");
    body = data.first(data.size() - 4);
  }

  BinReader reader(body);
  reader.u32();  // magic, validated above
  StepRecord record;
  record.step = reader.u64();
  const std::uint32_t nvars = reader.u32();
  record.variables.reserve(nvars);
  for (std::uint32_t v = 0; v < nvars; ++v) {
    VarRecord var;
    var.name = reader.str();
    const std::uint8_t dtype = reader.u8();
    if (dtype > std::uint8_t(Datatype::float64))
      throw FormatError("bp: bad datatype tag");
    var.dtype = Datatype(dtype);
    var.shape = reader.dims();
    const std::uint32_t nchunks = reader.u32();
    var.chunks.reserve(nchunks);
    for (std::uint32_t c = 0; c < nchunks; ++c) {
      ChunkRecord chunk;
      chunk.offset = reader.dims();
      chunk.count = reader.dims();
      chunk.writer_rank = reader.u32();
      chunk.subfile = reader.u32();
      chunk.file_offset = reader.u64();
      chunk.stored_bytes = reader.u64();
      chunk.raw_bytes = reader.u64();
      chunk.operator_name = reader.str();
      chunk.stat_min = reader.f64();
      chunk.stat_max = reader.f64();
      if (v5) {
        chunk.has_crc = reader.u8() != 0;
        chunk.crc32c = reader.u32();
      }
      if (v6) {
        chunk.has_content_hash = reader.u8() != 0;
        chunk.content_hash = reader.u64();
      }
      var.chunks.push_back(std::move(chunk));
    }
    record.variables.push_back(std::move(var));
  }
  const std::uint32_t nattrs = reader.u32();
  for (std::uint32_t a = 0; a < nattrs; ++a)
    record.attributes.push_back(decode_attr(reader));
  if (!reader.done()) throw FormatError("bp: trailing bytes in step metadata");
  return record;
}

std::vector<std::uint8_t> encode_index(const std::vector<IndexEntry>& index) {
  BinWriter writer;
  writer.u32(kIdxMagicV5);
  writer.u32(std::uint32_t(index.size()));
  for (const auto& e : index) {
    writer.u64(e.step);
    writer.u64(e.md_offset);
    writer.u64(e.md_length);
    writer.u32(e.md_crc);
    writer.u32(0);  // reserved, keeps entries 8-byte aligned
  }
  return writer.take();
}

std::vector<IndexEntry> decode_index(std::span<const std::uint8_t> data) {
  BinReader reader(data);
  const std::uint32_t magic = reader.u32();
  if (magic != kIdxMagic && magic != kIdxMagicV5)
    throw FormatError("bp: bad md.idx magic (unknown format version)");
  const bool v5 = magic == kIdxMagicV5;
  const std::uint32_t n = reader.u32();
  const std::size_t entry_bytes = v5 ? kIdxEntryBytesV5 : kIdxEntryBytes;
  if (reader.remaining() != std::size_t(n) * entry_bytes)
    throw FormatError("bp: md.idx size mismatch");
  std::vector<IndexEntry> index;
  index.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    IndexEntry e;
    e.step = reader.u64();
    e.md_offset = reader.u64();
    e.md_length = reader.u64();
    if (v5) {
      e.md_crc = reader.u32();
      reader.u32();  // reserved
      e.has_crc = true;
    }
    index.push_back(e);
  }
  return index;
}

std::vector<std::uint8_t> encode_footer(const std::vector<StepRecord>& steps) {
  BinWriter writer;
  writer.u32(kFtrMagic);
  writer.u32(std::uint32_t(steps.size()));
  for (const auto& record : steps) {
    const std::vector<std::uint8_t> md = encode_step(record);
    writer.u64(md.size());
    writer.bytes(md);
  }
  return writer.take();
}

std::vector<StepRecord> decode_footer(std::span<const std::uint8_t> data) {
  BinReader reader(data);
  if (reader.u32() != kFtrMagic)
    throw FormatError("bp: bad footer magic");
  const std::uint32_t n = reader.u32();
  std::vector<StepRecord> steps;
  steps.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t length = reader.u64();
    if (length > reader.remaining())
      throw FormatError("bp: truncated footer step record");
    steps.push_back(decode_step(reader.bytes(std::size_t(length))));
  }
  if (!reader.done()) throw FormatError("bp: trailing bytes in footer");
  return steps;
}

}  // namespace bitio::bp
