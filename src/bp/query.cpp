#include "bp/query.hpp"

#include <functional>
#include <utility>

#include "compress/buffer_pool.hpp"
#include "util/error.hpp"

namespace bitio::bp {

namespace {

/// Wrap a decoded buffer so its storage returns to the process-wide pool
/// when the cache and every client have let go of it.
QueryService::Block pooled_block(std::vector<std::uint8_t>&& bytes) {
  auto* vec = new std::vector<std::uint8_t>(std::move(bytes));
  return QueryService::Block(vec, [](const std::vector<std::uint8_t>* p) {
    auto* mut = const_cast<std::vector<std::uint8_t>*>(p);
    cz::BufferPool::shared().release(std::move(*mut));
    delete mut;
  });
}

std::string cache_key(std::uint64_t step, const std::string& var) {
  return std::to_string(step) + "/" + var;
}

}  // namespace

QueryService::QueryService(StreamEngine& engine, fsim::ClientId client,
                           Options options)
    : options_(options) {
  if (options_.shards < 1)
    throw UsageError("bp::QueryService: shards must be >= 1");
  if (options_.retain_steps < 1)
    throw UsageError("bp::QueryService: retain_steps must be >= 1");
  shard_budget_ = options_.cache_bytes / std::size_t(options_.shards);
  shards_.reserve(std::size_t(options_.shards));
  for (int s = 0; s < options_.shards; ++s)
    shards_.push_back(std::make_unique<Shard>());
  consumer_ = engine.attach_stream(client);
  ingest_thread_ = std::thread([this] { ingest_loop(); });
}

QueryService::~QueryService() { stop(); }

void QueryService::ingest_loop() {
  while (auto step = consumer_->next_raw()) {
    util::MutexLock lock(index_mutex_);
    index_[step->record.step] = step;
    while (index_.size() > std::size_t(options_.retain_steps))
      index_.erase(index_.begin());
    ++steps_indexed_;
    index_cv_.notify_all();
  }
  util::MutexLock lock(index_mutex_);
  ingest_done_ = true;
  index_cv_.notify_all();
}

std::vector<std::uint64_t> QueryService::steps() const {
  util::MutexLock lock(index_mutex_);
  std::vector<std::uint64_t> out;
  out.reserve(index_.size());
  for (const auto& [id, step] : index_) {
    (void)step;
    out.push_back(id);
  }
  return out;
}

std::optional<std::uint64_t> QueryService::latest_step() const {
  util::MutexLock lock(index_mutex_);
  if (index_.empty()) return std::nullopt;
  return index_.rbegin()->first;
}

std::vector<std::string> QueryService::variables(std::uint64_t step) const {
  auto record = find_step(step);
  std::vector<std::string> out;
  if (!record) return out;
  for (const auto& var : record->record.variables) out.push_back(var.name);
  return out;
}

std::uint64_t QueryService::wait_steps(std::uint64_t n) {
  util::MutexLock lock(index_mutex_);
  while (steps_indexed_ < n && !ingest_done_) index_cv_.wait(lock);
  return steps_indexed_;
}

std::shared_ptr<const StreamStep> QueryService::find_step(
    std::uint64_t step) const {
  util::MutexLock lock(index_mutex_);
  auto it = index_.find(step);
  return it == index_.end() ? nullptr : it->second;
}

QueryService::Shard& QueryService::shard_of(const std::string& key) {
  const std::size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

QueryService::Block QueryService::query(std::uint64_t step,
                                        const std::string& var) {
  {
    util::MutexLock lock(stats_mutex_);
    ++stats_.queries;
  }
  const std::string key = cache_key(step, var);
  Shard& shard = shard_of(key);

  // Fast path: cache hit, promote to the front of the shard's LRU.
  {
    util::MutexLock lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      Block block = it->second->block;
      lock.unlock();
      util::MutexLock slock(stats_mutex_);
      ++stats_.hits;
      return block;
    }
  }

  // Miss: look the step up in the index and decode outside any shard lock
  // (two clients may race to decode the same block; the second insert
  // finds the key present and keeps the first block — wasted work, never
  // a wrong answer).
  auto record = find_step(step);
  if (!record) {
    util::MutexLock slock(stats_mutex_);
    ++stats_.misses;
    return nullptr;
  }
  bool present = false;
  for (const auto& v : record->record.variables)
    if (v.name == var) present = true;
  if (!present) {
    util::MutexLock slock(stats_mutex_);
    ++stats_.misses;
    return nullptr;
  }

  Block block = pooled_block(decode_stream_variable(*record, var));
  const std::size_t block_bytes = block->size();
  {
    util::MutexLock slock(stats_mutex_);
    ++stats_.misses;
    stats_.bytes_decoded += block_bytes;
  }

  std::uint64_t evicted = 0;
  {
    util::MutexLock lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Lost the decode race; serve the cached block.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->block;
    }
    shard.lru.push_front(CacheEntry{key, block});
    shard.index[key] = shard.lru.begin();
    shard.bytes += block_bytes;
    while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
      CacheEntry& victim = shard.lru.back();
      shard.bytes -= victim.block->size();
      shard.index.erase(victim.key);
      shard.lru.pop_back();
      ++evicted;
    }
  }
  if (evicted > 0) {
    util::MutexLock slock(stats_mutex_);
    stats_.evictions += evicted;
  }
  return block;
}

QueryService::Stats QueryService::stats() const {
  Stats out;
  {
    util::MutexLock lock(stats_mutex_);
    out = stats_;
  }
  util::MutexLock lock(index_mutex_);
  out.steps_indexed = steps_indexed_;
  return out;
}

void QueryService::stop() {
  if (stopped_) return;
  stopped_ = true;
  // Detaching unblocks the ingest consumer if it is parked in next().
  consumer_->detach();
  if (ingest_thread_.joinable()) ingest_thread_.join();
}

}  // namespace bitio::bp
