#include "bp/stream.hpp"

#include <algorithm>
#include <cstring>

#include "compress/parallel.hpp"
#include "fsim/storage_model.hpp"
#include "util/crc32c.hpp"
#include "util/error.hpp"

namespace bitio::bp {

namespace {

// Same modelled CRC32C bandwidth as the file engines (writer.cpp).
constexpr double kCrcBandwidthBps = 12e9;

template <typename T>
void minmax(std::span<const std::uint8_t> bytes, double& lo, double& hi) {
  const std::size_t n = bytes.size() / sizeof(T);
  if (n == 0) return;
  const T* p = reinterpret_cast<const T*>(bytes.data());
  T mn = p[0], mx = p[0];
  for (std::size_t i = 1; i < n; ++i) {
    mn = std::min(mn, p[i]);
    mx = std::max(mx, p[i]);
  }
  lo = double(mn);
  hi = double(mx);
}

void compute_stats(Datatype dtype, std::span<const std::uint8_t> bytes,
                   ChunkRecord& meta) {
  switch (dtype) {
    case Datatype::uint8:
      minmax<std::uint8_t>(bytes, meta.stat_min, meta.stat_max);
      break;
    case Datatype::int32:
      minmax<std::int32_t>(bytes, meta.stat_min, meta.stat_max);
      break;
    case Datatype::uint64:
      minmax<std::uint64_t>(bytes, meta.stat_min, meta.stat_max);
      break;
    case Datatype::float32:
      minmax<float>(bytes, meta.stat_min, meta.stat_max);
      break;
    case Datatype::float64:
      minmax<double>(bytes, meta.stat_min, meta.stat_max);
      break;
  }
}

}  // namespace

// --- decode ----------------------------------------------------------------

std::vector<std::uint8_t> decode_stream_variable(const StreamStep& step,
                                                 const std::string& name) {
  const VarRecord* var = nullptr;
  std::size_t var_index = 0;
  for (std::size_t v = 0; v < step.record.variables.size(); ++v) {
    if (step.record.variables[v].name == name) {
      var = &step.record.variables[v];
      var_index = v;
      break;
    }
  }
  if (!var)
    throw UsageError("bp::stream: no variable '" + name + "' in step " +
                     std::to_string(step.record.step));

  const std::size_t elem = dtype_size(var->dtype);
  std::vector<std::uint8_t> out(element_count(var->shape) * elem, 0);
  const auto& payloads = step.payload.at(var_index);

  for (std::size_t c = 0; c < var->chunks.size(); ++c) {
    const ChunkRecord& chunk = var->chunks[c];
    const std::vector<std::uint8_t>& stored = payloads.at(c);
    if (stored.empty() && !chunk.has_crc) continue;  // synthetic: zeroes
    if (chunk.has_crc && crc32c(stored) != chunk.crc32c)
      throw FormatError("bp::stream: chunk CRC mismatch for '" + name +
                        "' in step " + std::to_string(step.record.step));

    std::vector<std::uint8_t> raw;
    if (chunk.operator_name.empty()) {
      raw = stored;
    } else {
      // Frames are self-framing (RAW1/BLL1/BZL1/CZP1): decompress_frame
      // dispatches on the magic, same as bp::Reader.
      raw = cz::decompress_frame(stored);
    }
    if (raw.size() != element_count(chunk.count) * elem)
      throw FormatError("bp::stream: chunk payload size mismatch for '" +
                        name + "'");

    // Scatter into the global array — the same row-major walk as
    // bp::Reader::read().
    const std::size_t ndim = var->shape.size();
    if (ndim == 0) {
      std::memcpy(out.data(), raw.data(), raw.size());
      continue;
    }
    std::vector<std::uint64_t> stride(ndim, 1);
    for (std::size_t d = ndim - 1; d-- > 0;)
      stride[d] = stride[d + 1] * var->shape[d + 1];
    const std::uint64_t row_elems = chunk.count.back();
    std::uint64_t rows = 1;
    for (std::size_t d = 0; d + 1 < ndim; ++d) rows *= chunk.count[d];

    std::vector<std::uint64_t> cursor(ndim, 0);
    for (std::uint64_t r = 0; r < rows; ++r) {
      std::uint64_t dst = 0;
      for (std::size_t d = 0; d < ndim; ++d)
        dst += (chunk.offset[d] + cursor[d]) * stride[d];
      std::memcpy(out.data() + dst * elem, raw.data() + r * row_elems * elem,
                  row_elems * elem);
      for (std::size_t d = ndim - 1; d-- > 0;) {
        if (++cursor[d] < chunk.count[d]) break;
        cursor[d] = 0;
      }
    }
  }
  return out;
}

// --- StreamChannel ---------------------------------------------------------

StreamChannel::StreamChannel(int max_steps, StreamPolicy policy)
    : max_steps_(std::size_t(max_steps)), policy_(policy) {
  if (max_steps < 1)
    throw UsageError("bp::StreamChannel: max_steps must be >= 1");
}

StreamChannel::ConsumerId StreamChannel::attach() {
  util::MutexLock lock(mutex_);
  const ConsumerId id = next_id_++;
  Cursor cursor;
  cursor.next_seq = next_seq_;  // future steps only, never a replay
  cursors_.emplace(id, cursor);
  return id;
}

void StreamChannel::detach(ConsumerId id) {
  util::MutexLock lock(mutex_);
  auto it = cursors_.find(id);
  if (it == cursors_.end() || it->second.detached) return;
  it->second.detached = true;
  // The producer may have been blocking on this consumer; a concurrent
  // next() on it must wake and observe the detach.
  space_cv_.notify_all();
  data_cv_.notify_all();
}

std::optional<std::uint64_t> StreamChannel::oldest_needed() const {
  std::optional<std::uint64_t> oldest;
  for (const auto& [id, cursor] : cursors_) {
    (void)id;
    if (cursor.detached || cursor.disconnected) continue;
    if (!oldest || cursor.next_seq < *oldest) oldest = cursor.next_seq;
  }
  return oldest;
}

void StreamChannel::evict_front() {
  window_.pop_front();
  ++base_seq_;
}

void StreamChannel::publish(std::shared_ptr<const StreamStep> step) {
  util::MutexLock lock(mutex_);
  if (closed_)
    throw UsageError("bp::StreamChannel: publish after close");
  while (window_.size() >= max_steps_) {
    const auto needed = oldest_needed();
    if (!needed || *needed > base_seq_) {
      // The oldest buffered step was read by every live consumer (or there
      // are none): retire it freely.  This is what keeps a zero-consumer
      // producer from ever blocking.
      evict_front();
      continue;
    }
    if (policy_ == StreamPolicy::block) {
      space_cv_.wait(lock);
      continue;
    }
    // drop_oldest / disconnect: the window advances at the producer's pace
    // and the slow consumers pay.
    ++lost_;
    if (policy_ == StreamPolicy::disconnect) {
      for (auto& [id, cursor] : cursors_) {
        (void)id;
        if (cursor.detached || cursor.disconnected) continue;
        if (cursor.next_seq <= base_seq_) cursor.disconnected = true;
      }
    }
    evict_front();
    if (policy_ == StreamPolicy::drop_oldest) {
      for (auto& [id, cursor] : cursors_) {
        (void)id;
        if (cursor.detached || cursor.disconnected) continue;
        if (cursor.next_seq < base_seq_) {
          cursor.dropped += base_seq_ - cursor.next_seq;
          cursor.next_seq = base_seq_;
        }
      }
    }
    // Wake consumers parked in next(): the disconnected ones must return,
    // the dropped ones re-aim their cursor.
    data_cv_.notify_all();
  }
  window_.push_back(std::move(step));
  ++next_seq_;
  ++published_;
  peak_depth_ = std::max(peak_depth_, int(window_.size()));
  data_cv_.notify_all();
}

void StreamChannel::close() {
  util::MutexLock lock(mutex_);
  closed_ = true;
  data_cv_.notify_all();
  space_cv_.notify_all();
}

std::shared_ptr<const StreamStep> StreamChannel::next(ConsumerId id) {
  util::MutexLock lock(mutex_);
  auto it = cursors_.find(id);
  if (it == cursors_.end())
    throw UsageError("bp::StreamChannel: unknown consumer");
  Cursor& cursor = it->second;
  while (true) {
    if (cursor.detached || cursor.disconnected) return nullptr;
    if (cursor.next_seq < base_seq_) {
      // Steps were evicted from under this cursor between wake-ups
      // (drop_oldest bumps cursors eagerly, so this is belt-and-braces).
      cursor.dropped += base_seq_ - cursor.next_seq;
      cursor.next_seq = base_seq_;
    }
    if (cursor.next_seq < next_seq_) {
      auto step = window_[std::size_t(cursor.next_seq - base_seq_)];
      ++cursor.next_seq;
      // The slowest consumer advancing is what a blocked producer waits on.
      space_cv_.notify_all();
      return step;
    }
    if (closed_) return nullptr;  // drained and no more to come
    data_cv_.wait(lock);
  }
}

std::uint64_t StreamChannel::dropped(ConsumerId id) const {
  util::MutexLock lock(mutex_);
  auto it = cursors_.find(id);
  return it == cursors_.end() ? 0 : it->second.dropped;
}

bool StreamChannel::disconnected(ConsumerId id) const {
  util::MutexLock lock(mutex_);
  auto it = cursors_.find(id);
  return it != cursors_.end() && it->second.disconnected;
}

std::uint64_t StreamChannel::steps_published() const {
  util::MutexLock lock(mutex_);
  return published_;
}

std::uint64_t StreamChannel::steps_lost() const {
  util::MutexLock lock(mutex_);
  return lost_;
}

int StreamChannel::peak_depth() const {
  util::MutexLock lock(mutex_);
  return peak_depth_;
}

std::size_t StreamChannel::consumers() const {
  util::MutexLock lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, cursor] : cursors_) {
    (void)id;
    if (!cursor.detached && !cursor.disconnected) ++n;
  }
  return n;
}

// --- StreamEngine ----------------------------------------------------------

StreamEngine::StreamEngine(fsim::SharedFs& fs, std::string path,
                           EngineConfig config, int nranks)
    : fs_(fs),
      path_(std::move(path)),
      config_(std::move(config)),
      nranks_(nranks),
      policy_(stream_policy_of(config_.stream_policy)) {
  if (nranks_ <= 0)
    throw UsageError("bp::StreamEngine: nranks must be positive");
  if (config_.stream_max_steps < 1)
    throw UsageError("bp::StreamEngine: stream_max_steps must be >= 1");
  if (config_.compress_threads < 1)
    throw UsageError("bp::StreamEngine: compress_threads must be >= 1");
  if (config_.compress_block_kb < 1)
    throw UsageError("bp::StreamEngine: compress_block_kb must be >= 1");
  if (config_.codec != "none" && !config_.codec.empty()) {
    codec_ = cz::make_codec(config_.codec, config_.codec_typesize);
    if (config_.compress_threads > 1) {
      codec_ = std::make_unique<cz::ParallelCodec>(
          std::move(codec_), config_.compress_threads,
          config_.compress_block_kb * 1024, nullptr, &buffer_pool_);
    }
  }
  channel_ = std::make_shared<StreamChannel>(config_.stream_max_steps,
                                             policy_);
}

StreamEngine::~StreamEngine() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; close() is idempotent.
  }
}

void StreamEngine::begin_step(std::uint64_t step) {
  util::MutexLock lock(mutex_);
  if (closed_) throw UsageError("bp::StreamEngine: engine is closed");
  if (step_open_) throw UsageError("bp::StreamEngine: step already open");
  step_open_ = true;
  current_step_ = step;
  step_kind_ = 0;
  pending_.clear();
  attributes_.clear();
}

void StreamEngine::validate_put(int rank, const std::string& name,
                                Datatype dtype, const Dims& shape,
                                const Dims& offset, const Dims& count) {
  if (!step_open_)
    throw UsageError("bp::StreamEngine: put outside a step");
  if (rank < 0 || rank >= nranks_)
    throw UsageError("bp::StreamEngine: rank out of range");
  if (shape.size() != offset.size() || shape.size() != count.size())
    throw UsageError("bp::StreamEngine: dimension rank mismatch for '" +
                     name + "'");
  for (std::size_t d = 0; d < shape.size(); ++d) {
    if (offset[d] + count[d] > shape[d])
      throw UsageError("bp::StreamEngine: chunk of '" + name +
                       "' exceeds global shape");
  }
  for (const auto& var : pending_) {
    if (var.record.name != name) continue;
    if (var.record.dtype != dtype || var.record.shape != shape)
      throw UsageError("bp::StreamEngine: inconsistent shape/dtype for '" +
                       name + "'");
    return;
  }
}

void StreamEngine::put(int rank, const std::string& name, const Dims& shape,
                       const ChunkView& view) {
  util::MutexLock lock(mutex_);
  validate_put(rank, name, view.dtype(), shape, view.offset(), view.count());
  if (step_kind_ == 2)
    throw UsageError("bp::StreamEngine: cannot mix real and synthetic puts");
  step_kind_ = 1;

  // Marshal under the lock (the codec and pool are shared): compress into
  // a recycled pool buffer and CRC32C-stamp the stored bytes, exactly the
  // treatment the file engines give a chunk on its way to a subfile.
  std::vector<std::uint8_t> stored;
  std::string operator_name;
  double compress_s = 0.0;
  if (codec_) {
    operator_name = codec_->name();
    stored = buffer_pool_.acquire_reserve(view.bytes().size() + 64);
    codec_->compress_append(view.bytes(), stored);
    const double serial =
        double(view.bytes().size()) / codec_->compress_speed_bps();
    if (config_.compress_threads > 1) {
      const std::uint64_t block =
          std::uint64_t(config_.compress_block_kb) * 1024;
      const std::uint64_t nblocks =
          view.bytes().empty()
              ? 0
              : (view.bytes().size() + block - 1) / block;
      compress_s = fsim::parallel_cpu_seconds(
          serial, config_.compress_threads, nblocks);
    } else {
      compress_s = serial;
    }
  } else {
    stored = buffer_pool_.acquire(view.bytes().size());
    if (!view.bytes().empty())
      std::memcpy(stored.data(), view.bytes().data(), view.bytes().size());
  }

  ChunkRecord meta;
  meta.offset = view.offset();
  meta.count = view.count();
  meta.writer_rank = std::uint32_t(rank);
  meta.stored_bytes = stored.size();
  meta.raw_bytes = view.bytes().size();
  meta.operator_name = operator_name;
  meta.crc32c = crc32c(stored);
  meta.has_crc = true;
  compute_stats(view.dtype(), view.bytes(), meta);

  // Charge the marshalling cost to the putting rank's critical path, same
  // accounting as the synchronous file engines.
  fsim::FsClient client(fs_, fsim::ClientId(rank));
  if (compress_s > 0.0) client.charge_cpu(compress_s, "compress");
  client.charge_cpu(double(stored.size()) / kCrcBandwidthBps, "crc32c");

  for (auto& var : pending_) {
    if (var.record.name != name) continue;
    var.record.chunks.push_back(std::move(meta));
    var.payload.push_back(std::move(stored));
    return;
  }
  PendingVar var;
  var.record.name = name;
  var.record.dtype = view.dtype();
  var.record.shape = shape;
  var.record.chunks.push_back(std::move(meta));
  var.payload.push_back(std::move(stored));
  pending_.push_back(std::move(var));
}

void StreamEngine::put_synthetic(int rank, const std::string& name,
                                 Datatype dtype, const Dims& shape,
                                 const Dims& offset, const Dims& count) {
  util::MutexLock lock(mutex_);
  validate_put(rank, name, dtype, shape, offset, count);
  if (step_kind_ == 1)
    throw UsageError("bp::StreamEngine: cannot mix real and synthetic puts");
  step_kind_ = 2;

  ChunkRecord meta;
  meta.offset = offset;
  meta.count = count;
  meta.writer_rank = std::uint32_t(rank);
  meta.raw_bytes = element_count(count) * dtype_size(dtype);
  meta.stored_bytes =
      codec_ ? std::uint64_t(double(meta.raw_bytes) *
                             config_.synthetic_codec_ratio)
             : meta.raw_bytes;
  if (codec_) meta.operator_name = codec_->name();
  meta.has_crc = false;  // no payload bytes to checksum

  for (auto& var : pending_) {
    if (var.record.name != name) continue;
    var.record.chunks.push_back(std::move(meta));
    var.payload.emplace_back();
    return;
  }
  PendingVar var;
  var.record.name = name;
  var.record.dtype = dtype;
  var.record.shape = shape;
  var.record.chunks.push_back(std::move(meta));
  var.payload.emplace_back();
  pending_.push_back(std::move(var));
}

void StreamEngine::add_attribute(const std::string& name, AttrValue value) {
  util::MutexLock lock(mutex_);
  if (!step_open_)
    throw UsageError("bp::StreamEngine: attribute outside a step");
  attributes_.emplace_back(name, std::move(value));
}

void StreamEngine::end_step() {
  auto step = std::make_shared<StreamStep>();
  {
    util::MutexLock lock(mutex_);
    if (!step_open_) throw UsageError("bp::StreamEngine: no open step");
    step_open_ = false;
    step->seq = steps_written_;
    step->record.step = current_step_;
    step->record.attributes = std::move(attributes_);
    attributes_.clear();
    for (auto& var : pending_) {
      step->record.variables.push_back(std::move(var.record));
      step->payload.push_back(std::move(var.payload));
    }
    pending_.clear();
    ++steps_written_;
  }
  // Publish-side scrub: every real chunk is re-verified against its CRC
  // before consumers can see it ("completed, CRC-verified steps").
  for (std::size_t v = 0; v < step->record.variables.size(); ++v) {
    const auto& var = step->record.variables[v];
    for (std::size_t c = 0; c < var.chunks.size(); ++c) {
      const auto& chunk = var.chunks[c];
      if (!chunk.has_crc) continue;
      if (crc32c(step->payload[v][c]) != chunk.crc32c)
        throw FormatError(
            "bp::StreamEngine: chunk corrupted before publish ('" +
            var.name + "', step " + std::to_string(step->record.step) + ")");
    }
  }
  channel_->publish(std::move(step));
}

void StreamEngine::close() {
  {
    util::MutexLock lock(mutex_);
    if (closed_) return;
    if (step_open_)
      throw UsageError("bp::StreamEngine: close with a step open");
    closed_ = true;
  }
  channel_->close();
}

std::uint64_t StreamEngine::steps_written() const {
  util::MutexLock lock(mutex_);
  return steps_written_;
}

int StreamEngine::peak_inflight() const { return channel_->peak_depth(); }

std::unique_ptr<EngineReader> StreamEngine::attach(fsim::ClientId client) {
  return std::make_unique<StreamConsumer>(channel_, fs_, client);
}

std::unique_ptr<StreamConsumer> StreamEngine::attach_stream(
    fsim::ClientId client) {
  return std::make_unique<StreamConsumer>(channel_, fs_, client);
}

// --- StreamConsumer --------------------------------------------------------

StreamConsumer::StreamConsumer(std::shared_ptr<StreamChannel> channel,
                               fsim::SharedFs& fs, fsim::ClientId client)
    : channel_(std::move(channel)), fs_(fs), client_(client) {
  id_ = channel_->attach();
}

StreamConsumer::~StreamConsumer() { channel_->detach(id_); }

std::shared_ptr<const StreamStep> StreamConsumer::next_raw() {
  if (detached_) return nullptr;
  step_ = channel_->next(id_);
  return step_;
}

std::optional<std::uint64_t> StreamConsumer::next_step() {
  auto step = next_raw();
  if (!step) return std::nullopt;
  return step->record.step;
}

std::uint64_t StreamConsumer::current_step() const {
  if (!step_)
    throw UsageError("bp::StreamConsumer: no current step (call next_step)");
  return step_->record.step;
}

std::vector<std::string> StreamConsumer::variables() const {
  if (!step_)
    throw UsageError("bp::StreamConsumer: no current step (call next_step)");
  std::vector<std::string> out;
  for (const auto& var : step_->record.variables) out.push_back(var.name);
  return out;
}

const VarRecord* StreamConsumer::find_variable(const std::string& name) const {
  if (!step_) return nullptr;
  for (const auto& var : step_->record.variables)
    if (var.name == name) return &var;
  return nullptr;
}

std::vector<std::uint8_t> StreamConsumer::get(const std::string& name) {
  if (!step_)
    throw UsageError("bp::StreamConsumer: no current step (call next_step)");
  auto out = decode_stream_variable(*step_, name);
  // Charge the decode cost to this consumer, mirroring bp::Reader::read's
  // accounting (the named codec supplies the modelled speed).
  const VarRecord* var = find_variable(name);
  fsim::FsClient io(fs_, client_);
  for (const auto& chunk : var->chunks) {
    if (chunk.operator_name.empty() || chunk.raw_bytes == 0) continue;
    auto codec = cz::make_codec(chunk.operator_name, dtype_size(var->dtype));
    io.charge_cpu(double(chunk.raw_bytes) / codec->decompress_speed_bps(),
                  "decompress");
  }
  return out;
}

std::optional<AttrValue> StreamConsumer::attribute(
    const std::string& name) const {
  if (!step_) return std::nullopt;
  for (const auto& [key, value] : step_->record.attributes)
    if (key == name) return value;
  return std::nullopt;
}

std::uint64_t StreamConsumer::steps_dropped() const {
  return channel_->dropped(id_);
}

bool StreamConsumer::disconnected() const {
  return channel_->disconnected(id_);
}

void StreamConsumer::detach() {
  if (detached_) return;
  detached_ = true;
  channel_->detach(id_);
}

}  // namespace bitio::bp
