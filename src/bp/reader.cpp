#include "bp/reader.hpp"

#include <cstring>

#include "compress/codec.hpp"
#include "compress/parallel.hpp"
#include "util/binio.hpp"
#include "util/crc32c.hpp"
#include "util/error.hpp"

namespace bitio::bp {

Reader::Reader(ForEngineFactory, fsim::SharedFs& fs, fsim::ClientId client,
               std::string path)
    : fs_(fs), client_(client), path_(std::move(path)) {
  fsim::FsClient io(fs_, client_);
  if (try_open_footer(io)) {
    footer_used_ = true;
    return;
  }
  const auto idx_bytes = io.read_all(path_ + "/md.idx");
  const auto index = decode_index(idx_bytes);
  const auto md_bytes = io.read_all(path_ + "/md.0");
  for (const auto& entry : index) {
    if (entry.md_offset + entry.md_length > md_bytes.size())
      throw FormatError("bp::Reader: md.idx points past md.0");
    const std::span<const std::uint8_t> slice(md_bytes.data() + entry.md_offset,
                                              entry.md_length);
    // v5 index entries repeat the metadata block's CRC: cross-check the
    // md.0 slice against md.idx before parsing a byte of it.
    if (entry.has_crc && crc32c(slice) != entry.md_crc)
      throw FormatError(
          "bp::Reader: step metadata CRC mismatch between md.idx/md.0");
    StepRecord record = decode_step(slice);
    if (record.step != entry.step)
      throw FormatError("bp::Reader: step id mismatch between md.idx/md.0");
    steps_[record.step] = std::move(record);  // later entries win
  }
}

bool Reader::try_open_footer(fsim::FsClient& io) {
  // Every failure mode here — no footer yet (pre-v6 container or mid-run
  // attach), torn tail, bit-flipped footer — degrades to the scan path
  // instead of failing the open; the scan then delivers its own verdicts.
  try {
    const std::string md_path = path_ + "/md.0";
    if (!io.exists(md_path)) return false;
    const std::uint64_t size = io.stat_size(md_path);
    if (size < kFtrTrailerBytes) return false;
    const int fd = io.open(md_path, fsim::OpenMode::read);
    std::vector<std::uint8_t> tail(kFtrTrailerBytes);
    const std::uint64_t got_tail =
        io.pread(fd, size - kFtrTrailerBytes, tail);
    bool ok = got_tail == kFtrTrailerBytes;
    std::uint64_t footer_offset = 0, footer_length = 0;
    std::uint32_t footer_crc = 0;
    if (ok) {
      BinReader trailer{std::span<const std::uint8_t>(tail)};
      footer_offset = trailer.u64();
      footer_length = trailer.u64();
      footer_crc = trailer.u32();
      ok = trailer.u32() == kFtrMagic &&
           footer_offset + footer_length + kFtrTrailerBytes == size;
    }
    std::vector<std::uint8_t> footer(ok ? footer_length : 0);
    if (ok) {
      const std::uint64_t got = io.pread(fd, footer_offset, footer);
      ok = got == footer_length && crc32c(footer) == footer_crc;
    }
    io.close(fd);
    if (!ok) return false;
    for (StepRecord& record : decode_footer(footer)) {
      const std::uint64_t step = record.step;
      steps_[step] = std::move(record);  // later records win, as in the scan
    }
    return true;
  } catch (const Error&) {
    return false;
  }
}

std::vector<std::uint64_t> Reader::steps() const {
  std::vector<std::uint64_t> out;
  out.reserve(steps_.size());
  for (const auto& [id, record] : steps_) {
    (void)record;
    out.push_back(id);
  }
  return out;
}

bool Reader::has_step(std::uint64_t step) const {
  return steps_.count(step) > 0;
}

const StepRecord& Reader::step(std::uint64_t step) const {
  auto it = steps_.find(step);
  if (it == steps_.end())
    throw UsageError("bp::Reader: no step " + std::to_string(step));
  return it->second;
}

std::vector<std::string> Reader::variables(std::uint64_t step) const {
  std::vector<std::string> out;
  for (const auto& var : this->step(step).variables) out.push_back(var.name);
  return out;
}

const VarRecord* Reader::find_variable(std::uint64_t step,
                                       const std::string& name) const {
  auto it = steps_.find(step);
  if (it == steps_.end()) return nullptr;
  for (const auto& var : it->second.variables)
    if (var.name == name) return &var;
  return nullptr;
}

const ChunkRecord* Reader::find_chunk(std::uint64_t step,
                                      const std::string& name,
                                      std::uint32_t writer_rank) const {
  const VarRecord* var = find_variable(step, name);
  if (!var) return nullptr;
  for (const auto& chunk : var->chunks)
    if (chunk.writer_rank == writer_rank) return &chunk;
  return nullptr;
}

std::vector<std::uint8_t> Reader::read_chunk(std::uint64_t step,
                                             const std::string& name,
                                             std::uint32_t writer_rank) {
  const VarRecord* var = find_variable(step, name);
  const ChunkRecord* chunk =
      var ? find_chunk(step, name, writer_rank) : nullptr;
  if (!chunk)
    throw UsageError("bp::Reader: no chunk of '" + name + "' by rank " +
                     std::to_string(writer_rank) + " in step " +
                     std::to_string(step));
  const std::size_t elem = dtype_size(var->dtype);
  fsim::FsClient io(fs_, client_);
  std::vector<std::uint8_t> raw = fetch_chunk(io, name, *chunk, elem);
  if (raw.size() != element_count(chunk->count) * elem)
    throw FormatError("bp::Reader: chunk payload size mismatch");
  return raw;
}

std::vector<std::uint8_t> Reader::read_slice(std::uint64_t step,
                                             const std::string& name,
                                             std::uint64_t elem_offset,
                                             std::uint64_t elem_count) {
  const VarRecord* var = find_variable(step, name);
  if (!var)
    throw UsageError("bp::Reader: no variable '" + name + "' in step " +
                     std::to_string(step));
  if (var->shape.size() != 1)
    throw UsageError("bp::Reader: read_slice requires a 1-D variable");
  if (elem_offset + elem_count > var->shape[0])
    throw UsageError("bp::Reader: slice of '" + name +
                     "' exceeds the global extent");
  const std::size_t elem = dtype_size(var->dtype);
  std::vector<std::uint8_t> out(elem_count * elem, 0);

  fsim::FsClient io(fs_, client_);
  for (const auto& chunk : var->chunks) {
    const std::uint64_t c_begin = chunk.offset[0];
    const std::uint64_t c_end = c_begin + chunk.count[0];
    const std::uint64_t lo = std::max(c_begin, elem_offset);
    const std::uint64_t hi = std::min(c_end, elem_offset + elem_count);
    if (lo >= hi) continue;  // no overlap: this chunk is never read
    std::vector<std::uint8_t> raw = fetch_chunk(io, name, chunk, elem);
    if (raw.size() != element_count(chunk.count) * elem)
      throw FormatError("bp::Reader: chunk payload size mismatch");
    std::memcpy(out.data() + (lo - elem_offset) * elem,
                raw.data() + (lo - c_begin) * elem, (hi - lo) * elem);
  }
  return out;
}

std::vector<std::uint8_t> Reader::fetch_chunk(fsim::FsClient& io,
                                              const std::string& name,
                                              const ChunkRecord& chunk,
                                              std::size_t elem) {
  // Fetch the stored bytes.
  const std::string subfile =
      path_ + "/data." + std::to_string(chunk.subfile);
  const int fd = io.open(subfile, fsim::OpenMode::read);
  std::vector<std::uint8_t> stored(chunk.stored_bytes);
  const std::uint64_t got = io.pread(fd, chunk.file_offset, stored);
  io.close(fd);
  if (got != chunk.stored_bytes)
    throw FormatError("bp::Reader: short read of chunk in " + subfile);
  // Verify the stored bytes before decompressing/scattering them.
  if (chunk.has_crc && crc32c(stored) != chunk.crc32c)
    throw FormatError("bp::Reader: chunk CRC mismatch for '" + name +
                      "' in " + subfile);

  std::vector<std::uint8_t> raw;
  if (chunk.operator_name.empty()) {
    raw = std::move(stored);
  } else {
    // Dispatch on the frame magic: handles both legacy single-block
    // frames and the CZP1 block-parallel container a writer with
    // compress_threads > 1 produces.  The named codec still supplies the
    // modelled decompression speed.
    auto codec = cz::make_codec(chunk.operator_name, elem);
    raw = cz::decompress_frame(stored);
    io.charge_cpu(double(raw.size()) / codec->decompress_speed_bps(),
                  "decompress");
  }
  return raw;
}

std::vector<std::uint8_t> Reader::read(std::uint64_t step,
                                       const std::string& name) {
  const VarRecord* var = find_variable(step, name);
  if (!var)
    throw UsageError("bp::Reader: no variable '" + name + "' in step " +
                     std::to_string(step));
  const std::size_t elem = dtype_size(var->dtype);
  std::vector<std::uint8_t> out(element_count(var->shape) * elem, 0);

  fsim::FsClient io(fs_, client_);
  for (const auto& chunk : var->chunks) {
    std::vector<std::uint8_t> raw = fetch_chunk(io, name, chunk, elem);
    if (raw.size() != element_count(chunk.count) * elem)
      throw FormatError("bp::Reader: chunk payload size mismatch");

    // Scatter the chunk into the global array.  Iterate over the chunk's
    // rows in the slowest dimensions; each row of `count.back()` elements
    // is contiguous in both source and destination.
    const std::size_t ndim = var->shape.size();
    if (ndim == 0) {
      std::memcpy(out.data(), raw.data(), raw.size());
      continue;
    }
    // Strides of the global array (in elements).
    std::vector<std::uint64_t> stride(ndim, 1);
    for (std::size_t d = ndim - 1; d-- > 0;)
      stride[d] = stride[d + 1] * var->shape[d + 1];
    const std::uint64_t row_elems = chunk.count.back();
    std::uint64_t rows = 1;
    for (std::size_t d = 0; d + 1 < ndim; ++d) rows *= chunk.count[d];

    std::vector<std::uint64_t> cursor(ndim, 0);  // index within the chunk
    for (std::uint64_t r = 0; r < rows; ++r) {
      std::uint64_t dst = 0;
      for (std::size_t d = 0; d < ndim; ++d)
        dst += (chunk.offset[d] + cursor[d]) * stride[d];
      std::memcpy(out.data() + dst * elem,
                  raw.data() + r * row_elems * elem, row_elems * elem);
      // Advance the row cursor (last dimension is the contiguous row).
      for (std::size_t d = ndim - 1; d-- > 0;) {
        if (++cursor[d] < chunk.count[d]) break;
        cursor[d] = 0;
      }
    }
  }
  return out;
}

std::vector<Reader::ChunkVerdict> Reader::verify() {
  std::vector<ChunkVerdict> verdicts;
  fsim::FsClient io(fs_, client_);
  for (const auto& [id, record] : steps_) {
    for (const auto& var : record.variables) {
      for (const auto& chunk : var.chunks) {
        ChunkVerdict verdict;
        verdict.step = id;
        verdict.var = var.name;
        verdict.writer_rank = chunk.writer_rank;
        verdict.subfile = chunk.subfile;
        verdict.file_offset = chunk.file_offset;
        if (!chunk.has_crc) {
          verdict.status = ChunkVerdict::Status::no_crc;
          verdicts.push_back(std::move(verdict));
          continue;
        }
        const std::string subfile =
            path_ + "/data." + std::to_string(chunk.subfile);
        const int fd = io.open(subfile, fsim::OpenMode::read);
        std::vector<std::uint8_t> stored(chunk.stored_bytes);
        const std::uint64_t got = io.pread(fd, chunk.file_offset, stored);
        io.close(fd);
        if (got != chunk.stored_bytes)
          verdict.status = ChunkVerdict::Status::short_read;
        else if (crc32c(stored) != chunk.crc32c)
          verdict.status = ChunkVerdict::Status::crc_mismatch;
        else
          verdict.status = ChunkVerdict::Status::ok;
        verdicts.push_back(std::move(verdict));
      }
    }
  }
  return verdicts;
}

bool Reader::all_ok(const std::vector<ChunkVerdict>& verdicts) {
  for (const auto& v : verdicts)
    if (v.status == ChunkVerdict::Status::short_read ||
        v.status == ChunkVerdict::Status::crc_mismatch)
      return false;
  return true;
}

std::optional<AttrValue> Reader::attribute(std::uint64_t step,
                                           const std::string& name) const {
  auto it = steps_.find(step);
  if (it == steps_.end()) return std::nullopt;
  for (const auto& [key, value] : it->second.attributes)
    if (key == name) return value;
  return std::nullopt;
}

}  // namespace bitio::bp
