#pragma once
// miniBP reader: opens a BP4/BP5 container, parses md.idx and md.0, and
// reassembles global arrays from the per-rank chunks (decompressing where
// an operator was recorded).
//
// "Rapid metadata extraction in BP4 format" (the paper's phrase): opening a
// container touches only the two small metadata files, never the data
// subfiles; chunk data is read on demand with exact offsets.
//
// Steps may be appended more than once under the same step id (the
// checkpoint pattern: iteration 0 is periodically overwritten) — the reader
// exposes the *latest* record for each id, like BP4 readers see the final
// state.
//
// Open path: a closed v6 container ends md.0 with a footer index (every
// step record + a fixed trailer), so open() costs O(1) seeks — stat, read
// the trailer, read the footer — regardless of how many steps the file
// holds.  Containers without a footer (pre-v6, or still being written and
// attached mid-run via publish_index) and containers whose footer is torn
// or corrupt fall back transparently to the md.idx + md.0 scan path;
// used_footer_index() reports which path satisfied the open.

#include <cstring>
#include <map>
#include <optional>

#include "bp/format.hpp"
#include "bp/types.hpp"
#include "fsim/posix_fs.hpp"

namespace bitio::bp {

class Reader {
public:
  /// Construction path used by the engine factory and Reader::open (see
  /// ForEngineFactory in bp/types.hpp).  The once-deprecated raw
  /// `Reader(fs, client, path)` constructor is gone: open containers via
  /// Reader::open or bp::attach_reader (src/bp/engine.hpp).
  Reader(ForEngineFactory, fsim::SharedFs& fs, fsim::ClientId client,
         std::string path);

  /// Preferred named constructor (Reader holds a SharedFs reference, so it
  /// is not assignable; C++17 guaranteed elision makes this returnable).
  static Reader open(fsim::SharedFs& fs, fsim::ClientId client,
                     std::string path) {
    return Reader(ForEngineFactory{}, fs, client, std::move(path));
  }

  /// Distinct step ids, ascending.
  std::vector<std::uint64_t> steps() const;
  bool has_step(std::uint64_t step) const;

  /// Latest metadata record for a step.  Throws UsageError if absent.
  const StepRecord& step(std::uint64_t step) const;

  /// Variable names in a step.
  std::vector<std::string> variables(std::uint64_t step) const;

  /// Find a variable's record in a step; nullptr if absent.
  const VarRecord* find_variable(std::uint64_t step,
                                 const std::string& name) const;

  /// Find the chunk a specific writer rank stored for a variable in a step;
  /// nullptr if absent.  The (step, var, writer_rank) triple is the block
  /// address the incremental-checkpoint layer deduplicates on.
  const ChunkRecord* find_chunk(std::uint64_t step, const std::string& name,
                                std::uint32_t writer_rank) const;

  /// True when open() was satisfied by the v6 footer index (O(1) seeks)
  /// rather than the md.idx + md.0 scan path.
  bool used_footer_index() const { return footer_used_; }

  /// Read and reassemble the full global array of a variable.  Chunks whose
  /// metadata carries a CRC (format v5) are verified; a mismatch raises
  /// FormatError.  Use verify() for a non-throwing per-chunk report.
  std::vector<std::uint8_t> read(std::uint64_t step, const std::string& name);

  /// Read one writer rank's chunk of a variable: exactly one data-subfile
  /// pread of the stored bytes, CRC-verified and decompressed.  Throws
  /// UsageError when the chunk is absent, FormatError on corruption.  This
  /// is the random-access primitive of chain restore: only the referenced
  /// block's bytes are read, never the rest of the container.
  std::vector<std::uint8_t> read_chunk(std::uint64_t step,
                                       const std::string& name,
                                       std::uint32_t writer_rank);

  /// Read `elem_count` elements starting at `elem_offset` of a 1-D
  /// variable's global array, touching only the chunks that overlap the
  /// slice (each fetched once, CRC-verified, decompressed).  Throws
  /// UsageError for non-1-D variables or an out-of-extent slice.
  std::vector<std::uint8_t> read_slice(std::uint64_t step,
                                       const std::string& name,
                                       std::uint64_t elem_offset,
                                       std::uint64_t elem_count);

  /// Per-chunk integrity verdict from a verify() scrub.
  struct ChunkVerdict {
    enum class Status {
      ok,            // CRC present and matching
      no_crc,        // legacy v4 or synthetic chunk: nothing to check
      short_read,    // stored extent missing bytes (torn write)
      crc_mismatch,  // bytes present but corrupt (bit flip)
    };
    std::uint64_t step = 0;
    std::string var;
    std::uint32_t writer_rank = 0;
    std::uint32_t subfile = 0;
    std::uint64_t file_offset = 0;
    Status status = Status::ok;
  };

  /// Re-read and re-checksum every chunk of every step, reporting a verdict
  /// per chunk instead of throwing on the first error (the scrub pass the
  /// resilience layer runs over checkpoint epochs).  Metadata was already
  /// CRC-verified at open.
  std::vector<ChunkVerdict> verify();

  /// True iff every verdict in `verify()` is ok or no_crc.
  static bool all_ok(const std::vector<ChunkVerdict>& verdicts);

  template <typename T>
  std::vector<T> read_as(std::uint64_t step, const std::string& name) {
    const VarRecord* var = find_variable(step, name);
    if (!var) throw UsageError("bp::Reader: no variable '" + name + "'");
    if (var->dtype != datatype_of<T>::value)
      throw UsageError("bp::Reader: datatype mismatch for '" + name + "'");
    const auto bytes = read(step, name);
    std::vector<T> out(bytes.size() / sizeof(T));
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  /// Step attribute lookup; nullopt if absent.
  std::optional<AttrValue> attribute(std::uint64_t step,
                                     const std::string& name) const;

private:
  /// O(1) open: read the trailer at the end of md.0, CRC-verify the footer
  /// it points at, and decode every step record from it.  Returns false —
  /// leaving steps_ empty — when there is no valid footer (pre-v6
  /// container, mid-run attach, torn/corrupt tail); the constructor then
  /// falls back to the scan path.
  bool try_open_footer(fsim::FsClient& io);
  /// Fetch one chunk's raw bytes: pread the stored extent, verify its CRC,
  /// undo the operator.  Throws FormatError on short read/CRC mismatch.
  std::vector<std::uint8_t> fetch_chunk(fsim::FsClient& io,
                                        const std::string& name,
                                        const ChunkRecord& chunk,
                                        std::size_t elem);

  fsim::SharedFs& fs_;
  fsim::ClientId client_;
  std::string path_;
  std::map<std::uint64_t, StepRecord> steps_;  // latest record per id
  bool footer_used_ = false;
};

}  // namespace bitio::bp
