#pragma once
// miniBP reader: opens a BP4/BP5 container, parses md.idx and md.0, and
// reassembles global arrays from the per-rank chunks (decompressing where
// an operator was recorded).
//
// "Rapid metadata extraction in BP4 format" (the paper's phrase): opening a
// container touches only the two small metadata files, never the data
// subfiles; chunk data is read on demand with exact offsets.
//
// Steps may be appended more than once under the same step id (the
// checkpoint pattern: iteration 0 is periodically overwritten) — the reader
// exposes the *latest* record for each id, like BP4 readers see the final
// state.

#include <cstring>
#include <map>
#include <optional>

#include "bp/format.hpp"
#include "bp/types.hpp"
#include "fsim/posix_fs.hpp"

namespace bitio::bp {

class Reader {
public:
  /// Opens the container at `path` as `client` (reads are charged to it).
  [[deprecated(
      "open containers via Reader::open(fs, client, path) or "
      "bp::attach_reader (src/bp/engine.hpp); parsing is unchanged")]]
  Reader(fsim::SharedFs& fs, fsim::ClientId client, std::string path)
      : Reader(ForEngineFactory{}, fs, client, std::move(path)) {}

  /// Non-deprecated construction path used by the engine factory and
  /// Reader::open (see ForEngineFactory in bp/types.hpp).
  Reader(ForEngineFactory, fsim::SharedFs& fs, fsim::ClientId client,
         std::string path);

  /// Preferred named constructor (Reader holds a SharedFs reference, so it
  /// is not assignable; C++17 guaranteed elision makes this returnable).
  static Reader open(fsim::SharedFs& fs, fsim::ClientId client,
                     std::string path) {
    return Reader(ForEngineFactory{}, fs, client, std::move(path));
  }

  /// Distinct step ids, ascending.
  std::vector<std::uint64_t> steps() const;
  bool has_step(std::uint64_t step) const;

  /// Latest metadata record for a step.  Throws UsageError if absent.
  const StepRecord& step(std::uint64_t step) const;

  /// Variable names in a step.
  std::vector<std::string> variables(std::uint64_t step) const;

  /// Find a variable's record in a step; nullptr if absent.
  const VarRecord* find_variable(std::uint64_t step,
                                 const std::string& name) const;

  /// Read and reassemble the full global array of a variable.  Chunks whose
  /// metadata carries a CRC (format v5) are verified; a mismatch raises
  /// FormatError.  Use verify() for a non-throwing per-chunk report.
  std::vector<std::uint8_t> read(std::uint64_t step, const std::string& name);

  /// Per-chunk integrity verdict from a verify() scrub.
  struct ChunkVerdict {
    enum class Status {
      ok,            // CRC present and matching
      no_crc,        // legacy v4 or synthetic chunk: nothing to check
      short_read,    // stored extent missing bytes (torn write)
      crc_mismatch,  // bytes present but corrupt (bit flip)
    };
    std::uint64_t step = 0;
    std::string var;
    std::uint32_t writer_rank = 0;
    std::uint32_t subfile = 0;
    std::uint64_t file_offset = 0;
    Status status = Status::ok;
  };

  /// Re-read and re-checksum every chunk of every step, reporting a verdict
  /// per chunk instead of throwing on the first error (the scrub pass the
  /// resilience layer runs over checkpoint epochs).  Metadata was already
  /// CRC-verified at open.
  std::vector<ChunkVerdict> verify();

  /// True iff every verdict in `verify()` is ok or no_crc.
  static bool all_ok(const std::vector<ChunkVerdict>& verdicts);

  template <typename T>
  std::vector<T> read_as(std::uint64_t step, const std::string& name) {
    const VarRecord* var = find_variable(step, name);
    if (!var) throw UsageError("bp::Reader: no variable '" + name + "'");
    if (var->dtype != datatype_of<T>::value)
      throw UsageError("bp::Reader: datatype mismatch for '" + name + "'");
    const auto bytes = read(step, name);
    std::vector<T> out(bytes.size() / sizeof(T));
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  /// Step attribute lookup; nullopt if absent.
  std::optional<AttrValue> attribute(std::uint64_t step,
                                     const std::string& name) const;

private:
  fsim::SharedFs& fs_;
  fsim::ClientId client_;
  std::string path_;
  std::map<std::uint64_t, StepRecord> steps_;  // latest record per id
};

}  // namespace bitio::bp
