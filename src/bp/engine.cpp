#include "bp/engine.hpp"

#include <map>
#include <utility>

#include "bp/reader.hpp"
#include "bp/stream.hpp"
#include "util/error.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace bitio::bp {

namespace {

// --- file-engine adaptor ---------------------------------------------------

/// Cursor over the steps of an opened BP4/BP5 container.  The step list is
/// snapshotted at construction (attach time): steps landed later need a
/// fresh attach, matching how BP readers see a container.
class FileEngineReader final : public EngineReader {
 public:
  FileEngineReader(fsim::SharedFs& fs, fsim::ClientId client,
                   std::string path)
      : reader_(Reader::open(fs, client, std::move(path))),
        step_ids_(reader_.steps()) {}

  std::optional<std::uint64_t> next_step() override {
    if (cursor_ >= step_ids_.size()) return std::nullopt;
    current_ = step_ids_[cursor_++];
    started_ = true;
    return current_;
  }

  std::uint64_t current_step() const override {
    require_step();
    return current_;
  }

  std::vector<std::string> variables() const override {
    require_step();
    return reader_.variables(current_);
  }

  const VarRecord* find_variable(const std::string& name) const override {
    if (!started_) return nullptr;
    return reader_.find_variable(current_, name);
  }

  std::vector<std::uint8_t> get(const std::string& name) override {
    require_step();
    return reader_.read(current_, name);
  }

  std::optional<AttrValue> attribute(const std::string& name) const override {
    if (!started_) return std::nullopt;
    return reader_.attribute(current_, name);
  }

 private:
  void require_step() const {
    if (!started_)
      throw UsageError(
          "bp::EngineReader: no current step (call next_step first)");
  }

  Reader reader_;
  std::vector<std::uint64_t> step_ids_;
  std::size_t cursor_ = 0;
  std::uint64_t current_ = 0;
  bool started_ = false;
};

/// bp::Writer behind the Engine interface — the BP4 and BP5 registry
/// entries.  Pure delegation: the byte stream is identical to direct
/// Writer use.
class FileEngine final : public Engine {
 public:
  FileEngine(fsim::SharedFs& fs, std::string path, EngineConfig config,
             int nranks)
      : fs_(fs),
        name_(bp::engine_name(config.engine)),
        writer_(ForEngineFactory{}, fs, std::move(path), std::move(config),
                nranks) {}

  std::string engine_name() const override { return name_; }
  const std::string& path() const override { return writer_.path(); }

  void begin_step(std::uint64_t step) override { writer_.begin_step(step); }
  void put(int rank, const std::string& name, const Dims& shape,
           const ChunkView& chunk) override {
    writer_.put(rank, name, shape, chunk);
  }
  void put_synthetic(int rank, const std::string& name, Datatype dtype,
                     const Dims& shape, const Dims& offset,
                     const Dims& count) override {
    writer_.put_synthetic(rank, name, dtype, shape, offset, count);
  }
  void add_attribute(const std::string& name, AttrValue value) override {
    writer_.add_attribute(name, std::move(value));
  }
  void end_step() override { writer_.end_step(); }
  void flush() override { writer_.wait_drains(); }
  void close() override { writer_.close(); }

  std::uint64_t steps_written() const override {
    return writer_.steps_written();
  }
  int peak_inflight() const override { return writer_.peak_inflight(); }
  cz::BufferPool::Stats pool_stats() const override {
    return writer_.pool_stats();
  }
  void reset_pool_stats() override { writer_.reset_pool_stats(); }
  WatchdogStats watchdog_stats() const override {
    return writer_.watchdog_stats();
  }

  std::unique_ptr<EngineReader> attach(fsim::ClientId client) override {
    // Outstanding drains must land before the metadata is parsed —
    // attaching mid-run sees every step whose end_step returned.  The
    // md.idx header count is only finalized at close(), so publish it now
    // (same bytes close() writes) for the reader to open against.
    writer_.wait_drains();
    writer_.publish_index();
    return std::make_unique<FileEngineReader>(fs_, client, writer_.path());
  }

  /// The underlying writer, for call sites migrating incrementally.
  Writer& writer() { return writer_; }

 private:
  fsim::SharedFs& fs_;
  std::string name_;
  Writer writer_;
};

// --- registry --------------------------------------------------------------

struct Registry {
  util::Mutex mutex;
  std::map<std::string, EngineFactory> factories GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: engines may outlive main
  return *r;
}

/// EngineType matching a built-in factory name; nullopt for custom engines
/// registered by tests (their factories interpret config.engine as they
/// see fit).
std::optional<EngineType> engine_type_of(const std::string& name) {
  if (name == "bp4") return EngineType::bp4;
  if (name == "bp5") return EngineType::bp5;
  if (name == "stream") return EngineType::stream;
  return std::nullopt;
}

/// Registers the built-in engines on first use.  Keep the three
/// register_engine calls literal: the engine-registry lint rule
/// (tools/lint_invariants) checks every name in core::kBit1IoEngines
/// appears here.
void builtin_engines() {
  static const bool done = [] {
    register_engine("bp4", [](fsim::SharedFs& fs, std::string path,
                              EngineConfig config, int nranks) {
      return std::unique_ptr<Engine>(std::make_unique<FileEngine>(
          fs, std::move(path), std::move(config), nranks));
    });
    register_engine("bp5", [](fsim::SharedFs& fs, std::string path,
                              EngineConfig config, int nranks) {
      return std::unique_ptr<Engine>(std::make_unique<FileEngine>(
          fs, std::move(path), std::move(config), nranks));
    });
    register_engine("stream", [](fsim::SharedFs& fs, std::string path,
                                 EngineConfig config, int nranks) {
      return std::unique_ptr<Engine>(std::make_unique<StreamEngine>(
          fs, std::move(path), std::move(config), nranks));
    });
    return true;
  }();
  (void)done;
}

}  // namespace

void register_engine(const std::string& name, EngineFactory factory) {
  if (name.empty())
    throw UsageError("bp::register_engine: empty engine name");
  if (!factory)
    throw UsageError("bp::register_engine: null factory for '" + name + "'");
  Registry& reg = registry();
  util::MutexLock lock(reg.mutex);
  reg.factories[name] = std::move(factory);
}

bool engine_registered(const std::string& name) {
  builtin_engines();
  Registry& reg = registry();
  util::MutexLock lock(reg.mutex);
  return reg.factories.count(name) > 0;
}

std::vector<std::string> registered_engines() {
  builtin_engines();
  Registry& reg = registry();
  util::MutexLock lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.factories.size());
  for (const auto& [name, factory] : reg.factories) {
    (void)factory;
    names.push_back(name);
  }
  return names;  // std::map iteration is already sorted
}

std::unique_ptr<Engine> make_engine(const std::string& name,
                                    fsim::SharedFs& fs, std::string path,
                                    EngineConfig config, int nranks) {
  builtin_engines();
  EngineFactory factory;
  {
    Registry& reg = registry();
    util::MutexLock lock(reg.mutex);
    auto it = reg.factories.find(name);
    if (it == reg.factories.end()) {
      std::string known;
      for (const auto& [known_name, known_factory] : reg.factories) {
        (void)known_factory;
        if (!known.empty()) known += ", ";
        known += "\"" + known_name + "\"";
      }
      throw UsageError("bp::make_engine: unknown engine \"" + name +
                       "\" (registered: " + known + ")");
    }
    factory = it->second;  // copy so the factory runs outside the lock
  }
  // The name string is the source of truth: for built-in names the config's
  // engine enum is overridden to match before the factory sees it.
  if (auto type = engine_type_of(name)) config.engine = *type;
  return factory(fs, std::move(path), std::move(config), nranks);
}

std::unique_ptr<Engine> make_engine(fsim::SharedFs& fs, std::string path,
                                    EngineConfig config, int nranks) {
  const std::string name = bp::engine_name(config.engine);
  return make_engine(name, fs, std::move(path), std::move(config), nranks);
}

std::unique_ptr<EngineReader> attach_reader(fsim::SharedFs& fs,
                                            fsim::ClientId client,
                                            std::string path) {
  return std::make_unique<FileEngineReader>(fs, client, std::move(path));
}

}  // namespace bitio::bp
