#pragma once
// In-situ diagnostics query service over the stream engine — the
// many-readers / one-producer half of the miniSST story.
//
// One QueryService attaches a single ingest consumer to a live
// StreamEngine and indexes every published step (retaining the raw
// compressed payloads via shared_ptr, so the channel window can keep
// moving).  Thousands of concurrent clients then call query(step, var) and
// are served decoded global arrays from a sharded LRU cache:
//
//   client -> shard (hash of step/var) -> LRU hit: shared decoded block
//                                      -> miss: decode once, insert, evict
//
// Decoded blocks live in std::shared_ptr<const Bytes> whose storage is
// recycled through cz::BufferPool::shared() when the last client and the
// cache both let go — the fan-out path does no per-query allocation once
// the cache is warm.  Shards bound lock contention: a query locks only its
// shard, never the whole cache (the "sharded reader pool" of ROADMAP item
// 1; bench/stream_fanout measures the fan-out throughput).

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bp/stream.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace bitio::bp {

class QueryService {
 public:
  struct Options {
    /// Total decoded-block cache budget, split evenly across shards.
    std::size_t cache_bytes = 64u << 20;
    /// Independent LRU shards (lock granularity under concurrent clients).
    int shards = 8;
    /// Published steps kept queryable; older steps leave the index (their
    /// cached blocks age out of the LRU on their own).
    int retain_steps = 16;
  };

  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t hits = 0;           // served from the decoded-block cache
    std::uint64_t misses = 0;         // decoded on demand
    std::uint64_t evictions = 0;      // blocks pushed out by the budget
    std::uint64_t bytes_decoded = 0;  // decode work actually performed
    std::uint64_t steps_indexed = 0;  // steps ingested from the stream
    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : double(hits) / double(total);
    }
  };

  /// Decoded global array of one variable at one step; shared between the
  /// cache and any number of concurrent clients.
  using Block = std::shared_ptr<const std::vector<std::uint8_t>>;

  /// Attaches the ingest consumer to `engine` (charged to `client`) and
  /// starts indexing published steps on a background thread.  The engine
  /// must outlive the service or be closed before it is destroyed.
  QueryService(StreamEngine& engine, fsim::ClientId client, Options options);
  QueryService(StreamEngine& engine, fsim::ClientId client)
      : QueryService(engine, client, Options()) {}
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Indexed step ids, ascending (bounded by Options::retain_steps).
  std::vector<std::uint64_t> steps() const EXCLUDES(index_mutex_);
  /// Latest indexed step; nullopt before the first publish lands.
  std::optional<std::uint64_t> latest_step() const EXCLUDES(index_mutex_);
  /// Variable names of an indexed step; empty if the step is unknown.
  std::vector<std::string> variables(std::uint64_t step) const
      EXCLUDES(index_mutex_);

  /// Block until at least `n` steps have been ingested or the stream
  /// ended; returns steps_indexed so far.
  std::uint64_t wait_steps(std::uint64_t n) EXCLUDES(index_mutex_);

  /// Decoded global array of `var` at `step`, or nullptr when the step is
  /// not (or no longer) indexed / the variable is absent.  Safe to call
  /// from any number of threads concurrently.
  Block query(std::uint64_t step, const std::string& var);

  Stats stats() const;

  /// Detach the ingest consumer and join the thread (idempotent; also run
  /// by the destructor).  Queries keep working on the retained index.
  void stop();

 private:
  struct CacheEntry {
    std::string key;
    Block block;
  };
  struct Shard {
    mutable util::Mutex mutex;
    // Front = most recent.  A map from key to list position makes hit
    // promotion O(log n); the budget bounds total bytes, not entries.
    std::list<CacheEntry> lru GUARDED_BY(mutex);
    std::map<std::string, std::list<CacheEntry>::iterator> index
        GUARDED_BY(mutex);
    std::size_t bytes GUARDED_BY(mutex) = 0;
  };

  void ingest_loop();
  Shard& shard_of(const std::string& key);
  std::shared_ptr<const StreamStep> find_step(std::uint64_t step) const
      EXCLUDES(index_mutex_);

  Options options_;
  std::size_t shard_budget_;
  std::unique_ptr<StreamConsumer> consumer_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable util::Mutex index_mutex_;
  util::CondVar index_cv_;
  std::map<std::uint64_t, std::shared_ptr<const StreamStep>> index_
      GUARDED_BY(index_mutex_);
  std::uint64_t steps_indexed_ GUARDED_BY(index_mutex_) = 0;
  bool ingest_done_ GUARDED_BY(index_mutex_) = false;

  mutable util::Mutex stats_mutex_;
  Stats stats_ GUARDED_BY(stats_mutex_);

  std::thread ingest_thread_;
  bool stopped_ = false;  // main-thread flag (stop/dtor are not concurrent)
};

}  // namespace bitio::bp
