#pragma once
// The pluggable engine seam of the miniBP layer.
//
// ADIOS2 separates "what the application stores" (steps of variables and
// attributes) from "how the bytes move" (the engine: BP4, BP5, SST, ...),
// selected by a string through the runtime config.  This header is that
// seam for bitio: an abstract write-side Engine plus a read-side
// EngineReader session, and a string-keyed factory that maps the names in
// core::kBit1IoEngines onto concrete engines:
//
//   bp4     synchronous file engine (bp::Writer, BP4 semantics)
//   bp5     file engine with the BP5 AsyncWrite background drain
//   stream  miniSST: completed CRC-verified steps are published into a
//           bounded in-memory channel; consumers attach/detach mid-run
//           (src/bp/stream.hpp)
//
// The file engines stay byte-identical to direct bp::Writer use — the
// factory only decides which object sits behind the interface.  Call sites
// (the openPMD backend, the scale workload, the benches) select an engine
// purely via Bit1IoConfig::engine, so swapping BP4 for the stream engine
// touches a TOML line, not code.
//
// tools/lint_invariants ("engine-registry" rule) checks that every name in
// core::kBit1IoEngines is constructed in builtin_engines() below, rendered
// by Bit1IoConfig::to_toml/label, and tagged by darshan::engine_tag.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bp/types.hpp"
#include "bp/writer.hpp"
#include "compress/buffer_pool.hpp"
#include "fsim/posix_fs.hpp"

namespace bitio::bp {

/// Read-side session obtained from Engine::attach() (or attach_reader() for
/// an on-disk container).  next_step() advances a cursor: for file engines
/// it walks the steps already landed in the container; for the stream
/// engine it blocks until the producer publishes the next step (or the
/// stream ends).  The current-step accessors throw UsageError before the
/// first successful next_step().
class EngineReader {
 public:
  virtual ~EngineReader() = default;

  /// Advance to the next step.  Returns its id, or nullopt at the end of
  /// the stream (container exhausted, engine closed, or this consumer
  /// disconnected by the slow-reader policy).
  virtual std::optional<std::uint64_t> next_step() = 0;

  virtual std::uint64_t current_step() const = 0;
  virtual std::vector<std::string> variables() const = 0;
  virtual const VarRecord* find_variable(const std::string& name) const = 0;

  /// Decoded global array of a current-step variable (CRC-verified,
  /// decompressed, chunks scattered into place).  Synthetic chunks
  /// contribute zeroes.
  virtual std::vector<std::uint8_t> get(const std::string& name) = 0;

  virtual std::optional<AttrValue> attribute(const std::string& name) const = 0;

  // Slow-reader diagnostics; inert for file engines.
  /// Steps this consumer missed (evicted by the drop_oldest policy before
  /// it could read them).
  virtual std::uint64_t steps_dropped() const { return 0; }
  /// True once the disconnect policy cut this consumer off.
  virtual bool disconnected() const { return false; }
  /// Detach from a live stream (idempotent; next_step() then returns
  /// nullopt and the producer stops waiting for this consumer).
  virtual void detach() {}
};

/// Abstract write-side engine: the step/put surface bp::Writer pioneered,
/// decoupled from the file container so the stream engine can implement it
/// too.  Thread-safety contract matches Writer: put() may be called
/// concurrently by rank threads; begin_step/end_step/flush/close are
/// collective-like, one thread at a time.
class Engine {
 public:
  virtual ~Engine() = default;

  virtual std::string engine_name() const = 0;
  virtual const std::string& path() const = 0;

  virtual void begin_step(std::uint64_t step) = 0;
  virtual void put(int rank, const std::string& name, const Dims& shape,
                   const ChunkView& chunk) = 0;

  template <typename T>
  void put(int rank, const std::string& name, const Dims& shape,
           const Dims& offset, const Dims& count, std::span<const T> data) {
    put(rank, name, shape, ChunkView::of<T>(data, offset, count));
  }

  /// Size-only put for modelled large-scale runs (see Writer::put_synthetic).
  virtual void put_synthetic(int rank, const std::string& name, Datatype dtype,
                             const Dims& shape, const Dims& offset,
                             const Dims& count) = 0;
  virtual void add_attribute(const std::string& name, AttrValue value) = 0;
  virtual void end_step() = 0;

  /// Join outstanding background work (the async drain; a no-op for
  /// engines that complete at end_step).  Required before attaching a
  /// reader to a file engine mid-run.
  virtual void flush() = 0;
  virtual void close() = 0;

  virtual std::uint64_t steps_written() const = 0;

  // Optional diagnostics; engines without the notion return zeroes.
  /// Peak simultaneously outstanding units of backpressure: drain jobs for
  /// the file engines, buffered channel steps for the stream engine.
  virtual int peak_inflight() const { return 0; }
  virtual cz::BufferPool::Stats pool_stats() const { return {}; }
  virtual void reset_pool_stats() {}
  virtual WatchdogStats watchdog_stats() const { return {}; }

  /// Attach a read-side consumer charged to `client`.  File engines flush
  /// outstanding drains and return a cursor over the steps landed so far;
  /// the stream engine subscribes the consumer to steps published from now
  /// on (mid-run attach/detach is the point).
  virtual std::unique_ptr<EngineReader> attach(fsim::ClientId client) = 0;
};

// --- factory ---------------------------------------------------------------

using EngineFactory = std::function<std::unique_ptr<Engine>(
    fsim::SharedFs& fs, std::string path, EngineConfig config, int nranks)>;

/// Register (or override) an engine under `name`.  The built-ins ("bp4",
/// "bp5", "stream") are registered on first use; tests may add their own.
void register_engine(const std::string& name, EngineFactory factory);

bool engine_registered(const std::string& name);

/// Registered engine names, sorted.
std::vector<std::string> registered_engines();

/// Construct the engine registered under `name`.  `config.engine` is
/// overridden to match `name` (the string is the source of truth — call
/// sites select it from Bit1IoConfig::engine).  Throws UsageError for an
/// unregistered name, listing the registered ones.
std::unique_ptr<Engine> make_engine(const std::string& name,
                                    fsim::SharedFs& fs, std::string path,
                                    EngineConfig config, int nranks);

/// Convenience: engine name taken from `config.engine`.
std::unique_ptr<Engine> make_engine(fsim::SharedFs& fs, std::string path,
                                    EngineConfig config, int nranks);

/// Open an on-disk BP4/BP5 container for sequential consumption without a
/// live engine (the offline analogue of Engine::attach).
std::unique_ptr<EngineReader> attach_reader(fsim::SharedFs& fs,
                                            fsim::ClientId client,
                                            std::string path);

}  // namespace bitio::bp
